module tdb

go 1.22
