// Quickstart: the temporal data model and one stream join in ~60 lines.
//
// Builds two small temporal relations in the paper's 4-tuple model
// ⟨S, V, ValidFrom, ValidTo⟩, sorts them on ValidFrom, and evaluates
// Contain-join(X,Y) — pair every x with the y whose lifespans it strictly
// contains — in a single pass with a bounded workspace, comparing the
// result against the nested-loop baseline.
package main

import (
	"fmt"

	"tdb/internal/baseline"
	"tdb/internal/core"
	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/relation"
	"tdb/internal/stream"
	"tdb/internal/value"
)

func main() {
	// Projects with their active periods.
	projects := []relation.Tuple{
		{S: "tangram", V: value.String_("project"), Span: interval.New(0, 100)},
		{S: "stream-db", V: value.String_("project"), Span: interval.New(20, 60)},
		{S: "archive", V: value.String_("project"), Span: interval.New(90, 200)},
	}
	// Tasks with their execution windows.
	tasks := []relation.Tuple{
		{S: "design", V: value.String_("task"), Span: interval.New(5, 15)},
		{S: "prototype", V: value.String_("task"), Span: interval.New(25, 40)},
		{S: "eval", V: value.String_("task"), Span: interval.New(95, 150)},
		{S: "retro", V: value.String_("task"), Span: interval.New(190, 260)},
	}
	span := func(t relation.Tuple) interval.Interval { return t.Span }

	// The stream algorithms require sorted input: here ValidFrom ascending
	// on both sides (Table 1 case (a) of the paper).
	order := relation.Order{relation.TSAsc}
	relation.SortSpans(projects, span, order)
	relation.SortSpans(tasks, span, order)

	probe := &metrics.Probe{}
	fmt.Println("tasks executed strictly within a project's active period:")
	err := core.ContainJoinTSTS(
		stream.FromSlice(projects), stream.FromSlice(tasks), span,
		core.Options{Probe: probe, VerifyOrder: true},
		func(p, t relation.Tuple) {
			fmt.Printf("  %-10s %v  contains  %-10s %v\n", p.S, p.Span, t.S, t.Span)
		})
	if err != nil {
		panic(err)
	}
	fmt.Printf("single pass: %s\n\n", probe)

	// The nested-loop baseline agrees, at quadratic comparisons.
	nl := &metrics.Probe{}
	count := 0
	baseline.NestedLoopJoin(projects, tasks, span,
		func(p, t interval.Interval) bool { return p.ContainsInterval(t) },
		nl, func(p, t relation.Tuple) { count++ })
	fmt.Printf("nested-loop baseline found %d pairs with %d comparisons (stream: %d)\n",
		count, nl.Comparisons, probe.Comparisons)
}
