// Superstar: the paper's running query end to end.
//
// Generates a Faculty relation of career histories, declares the
// chronological ordering of ranks, writes the query in the Quel-like
// surface language, and shows every optimization stage: temporal-operator
// expansion, semantic removal of the two redundant inequalities,
// conventional pushdown, and the recognition of the less-than join as a
// Contained-semijoin over the derived lifespan [f1.ValidTo, f2.ValidFrom).
// Finally it executes both the conventional and the stream plan and prints
// the cost difference.
package main

import (
	"fmt"

	"tdb/internal/constraints"
	"tdb/internal/engine"
	"tdb/internal/optimizer"
	"tdb/internal/quel"
	"tdb/internal/workload"
)

const query = `
range of f1 is Faculty
range of f2 is Faculty
range of f3 is Faculty
retrieve into Stars (Name=f1.Name, ValidFrom=f1.ValidFrom, ValidTo=f2.ValidTo)
where f3.Rank="Associate" and f1.Name=f2.Name and f1.Rank="Assistant"
  and f2.Rank="Full" and (f1 overlap f3) and (f2 overlap f3)
`

func main() {
	db := engine.NewDB()
	db.MustRegister(workload.Faculty(workload.FacultyConfig{N: 120, Seed: 7}))
	if err := db.DeclareChronOrder(constraints.ChronOrder{
		Relation: "Faculty", KeyCol: "Name", ValCol: "Rank",
		Order: []string{"Assistant", "Associate", "Full"},
	}); err != nil {
		panic(err)
	}

	prog, err := quel.Parse(query)
	if err != nil {
		panic(err)
	}
	queries, err := quel.Translate(prog, db)
	if err != nil {
		panic(err)
	}
	tree := queries[0].Tree

	fmt.Println("### optimization pipeline (Section 5 / Figure 8)")
	res, err := optimizer.Optimize(tree, db, optimizer.Options{ICs: db.ChronOrders()})
	if err != nil {
		panic(err)
	}
	for _, st := range res.Stages {
		fmt.Printf("-- %s --\n%s\n", st.Name, st.Tree)
	}
	for _, a := range res.Removed {
		fmt.Printf("semantic optimization removed redundant conjunct: %s\n", a)
	}

	fmt.Println("\n### execution")
	conv, err := optimizer.Optimize(tree, db, optimizer.Options{NoSemantic: true, NoRecognition: true})
	if err != nil {
		panic(err)
	}
	outA, statsA, err := engine.Run(db, conv.Tree, engine.Options{ForceNestedLoop: true})
	if err != nil {
		panic(err)
	}
	outB, statsB, err := engine.Run(db, res.Tree, engine.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("conventional plan: %d rows, %d comparisons, %d tuples read\n",
		outA.Cardinality(), statsA.TotalComparisons(), statsA.TotalTuplesRead())
	fmt.Printf("stream plan:       %d rows, %d comparisons, %d tuples read\n",
		outB.Cardinality(), statsB.TotalComparisons(), statsB.TotalTuplesRead())
	fmt.Printf("speedup: %.1f× fewer comparisons\n\n",
		float64(statsA.TotalComparisons())/float64(statsB.TotalComparisons()))

	fmt.Println("### the superstars")
	fmt.Print(outB)
}
