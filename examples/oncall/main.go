// On-call coverage: the temporal set algebra and Allen's composition.
//
// Two engineers share an on-call rotation recorded as validity intervals.
// The example computes, at chronon semantics: the rota's total coverage
// (union), the gaps against the required window (difference), and the
// double-covered handover periods (intersection) — all as coalesced
// maximal lifespans. It closes with Allen's composition algebra inferring
// the relationship between two shifts through a third without comparing
// timestamps.
package main

import (
	"fmt"

	"tdb/internal/interval"
	"tdb/internal/temporalset"
)

func shifts(key string, spans ...[2]interval.Time) []temporalset.Keyed {
	var out []temporalset.Keyed
	for _, s := range spans {
		out = append(out, temporalset.Keyed{Key: key, Span: interval.New(s[0], s[1])})
	}
	return out
}

func show(title string, ks []temporalset.Keyed) {
	fmt.Println(title)
	if len(ks) == 0 {
		fmt.Println("  (none)")
		return
	}
	for _, k := range ks {
		fmt.Printf("  %s %v\n", k.Key, k.Span)
	}
}

func main() {
	// The rotation, keyed by the service being covered.
	ada := shifts("svc", [2]interval.Time{0, 24}, [2]interval.Time{48, 72})
	grace := shifts("svc", [2]interval.Time{20, 50}, [2]interval.Time{90, 110})
	required := shifts("svc", [2]interval.Time{0, 120})

	rota, err := temporalset.Union(temporalset.Normalize(ada), temporalset.Normalize(grace))
	if err != nil {
		panic(err)
	}
	show("combined coverage (union, coalesced):", rota)

	gaps, err := temporalset.Diff(required, temporalset.Normalize(rota))
	if err != nil {
		panic(err)
	}
	show("\nuncovered windows (required ∖ rota):", gaps)

	handovers, err := temporalset.Intersect(temporalset.Normalize(ada), temporalset.Normalize(grace))
	if err != nil {
		panic(err)
	}
	show("\ndouble-covered handovers (ada ∩ grace):", handovers)

	// Composition: ada's first shift vs. grace's first, and grace's first
	// vs. grace's second, let Allen's algebra bound ada₁ vs. grace₂
	// without looking at the timestamps.
	a1 := interval.New(0, 24)
	g1 := interval.New(20, 50)
	g2 := interval.New(90, 110)
	r1 := interval.Classify(a1, g1)
	r2 := interval.Classify(g1, g2)
	possible := interval.Compose(r1, r2)
	fmt.Printf("\nAllen inference: ada₁ %v g₁, g₁ %v g₂ ⇒ ada₁ %v g₂\n", r1, r2, possible)
	fmt.Printf("actual: ada₁ %v g₂ (within the inferred set: %v)\n",
		interval.Classify(a1, g2), possible.Has(interval.Classify(a1, g2)))
}
