// Payroll: the equality-class temporal operators on a salary history.
//
// A salary history relation records ⟨employee, salary, ValidFrom, ValidTo⟩
// periods. The example exercises the merge-based event joins of Figure 2's
// equality relationships: Meets finds immediate salary transitions (raises
// with no gap), Finishes finds salaries that ended together with a
// colleague's, and the self Contained-semijoin finds salary periods wholly
// inside a colleague's longer period — all on sorted streams with
// group-bounded workspace. It finishes with a Quel query over the same
// data through the full optimizer.
package main

import (
	"fmt"

	"tdb/internal/core"
	"tdb/internal/engine"
	"tdb/internal/interval"
	"tdb/internal/optimizer"
	"tdb/internal/quel"
	"tdb/internal/relation"
	"tdb/internal/stream"
	"tdb/internal/value"
)

func salary(emp string, amount int64, from, to interval.Time) relation.Tuple {
	return relation.Tuple{S: emp, V: value.Int(amount), Span: interval.New(from, to)}
}

func main() {
	history := []relation.Tuple{
		salary("ada", 90, 0, 10),
		salary("ada", 110, 10, 25), // immediate raise at 10
		salary("ada", 140, 30, 60), // raise after a sabbatical gap
		salary("grace", 95, 5, 25), // ends together with ada's 110
		salary("grace", 130, 25, 80),
		salary("edsger", 120, 35, 50), // wholly inside grace's 130 period
	}
	span := func(t relation.Tuple) interval.Interval { return t.Span }

	// Meets-join: X.TE = Y.TS — immediate transitions. X sorted on
	// ValidTo, Y on ValidFrom; the merge buffers one key group at a time.
	xs := append([]relation.Tuple{}, history...)
	ys := append([]relation.Tuple{}, history...)
	relation.SortSpans(xs, span, relation.Order{relation.TEAsc})
	relation.SortSpans(ys, span, relation.Order{relation.TSAsc})
	fmt.Println("immediate salary transitions (meets-join, same employee):")
	err := core.MeetsJoin(stream.FromSlice(xs), stream.FromSlice(ys), span, core.Options{},
		func(a, b relation.Tuple) {
			if a.S == b.S {
				fmt.Printf("  %s: %v→%v at t=%d\n", a.S, a.V, b.V, a.Span.End)
			}
		})
	if err != nil {
		panic(err)
	}

	// Finishes-join: X.TE = Y.TE ∧ X.TS > Y.TS — periods ending together.
	relation.SortSpans(xs, span, relation.Order{relation.TEAsc})
	relation.SortSpans(ys, span, relation.Order{relation.TEAsc})
	fmt.Println("\nsalary periods finishing together (finishes-join, different employees):")
	err = core.FinishesJoin(stream.FromSlice(xs), stream.FromSlice(ys), span, core.Options{},
		func(a, b relation.Tuple) {
			if a.S != b.S {
				fmt.Printf("  %s %v %v finishes %s %v %v\n", a.S, a.V, a.Span, b.S, b.V, b.Span)
			}
		})
	if err != nil {
		panic(err)
	}

	// Self Contained-semijoin (Figure 7): one scan, one state tuple.
	all := append([]relation.Tuple{}, history...)
	relation.SortSpans(all, span, relation.Order{relation.TSAsc, relation.TEAsc})
	fmt.Println("\nsalary periods wholly inside another period (single-scan self semijoin):")
	err = core.ContainedSelfSemijoin(stream.FromSlice(all), span, core.Options{},
		func(t relation.Tuple) { fmt.Printf("  %s %v %v\n", t.S, t.V, t.Span) })
	if err != nil {
		panic(err)
	}

	// The same data through the declarative path: who earned during a
	// period overlapping ada's sabbatical-return period?
	db := engine.NewDB()
	rel := relation.New("Salaries", relation.MustSchema([]relation.Column{
		{Name: "Emp", Kind: value.KindString},
		{Name: "Amount", Kind: value.KindInt},
		{Name: "ValidFrom", Kind: value.KindTime},
		{Name: "ValidTo", Kind: value.KindTime},
	}, 2, 3))
	for _, t := range history {
		rel.MustInsert(relation.Row{value.String_(t.S), t.V,
			value.TimeVal(t.Span.Start), value.TimeVal(t.Span.End)})
	}
	db.MustRegister(rel)

	prog, err := quel.Parse(`
range of s is Salaries
range of a is Salaries
retrieve (Emp=s.Emp, ValidFrom=s.ValidFrom, ValidTo=s.ValidTo)
where a.Emp="ada" and a.ValidFrom=30 and s.Emp != "ada" and (s overlap a)
`)
	if err != nil {
		panic(err)
	}
	qs, err := quel.Translate(prog, db)
	if err != nil {
		panic(err)
	}
	res, err := optimizer.Optimize(qs[0].Tree, db, optimizer.Options{})
	if err != nil {
		panic(err)
	}
	out, stats, err := engine.Run(db, res.Tree, engine.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("\ncolleagues paid during ada's post-sabbatical period (Quel + optimizer):")
	fmt.Print(out)
	fmt.Printf("max workspace across operators: %d tuples\n", stats.MaxWorkspace())
}
