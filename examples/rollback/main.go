// Rollback: the transaction-time dimension (the paper's Section 6 future
// work, implemented in internal/rollback).
//
// A Faculty store receives inserts, a retroactive correction, and a
// deletion, each stamped with a transaction time. AsOf reconstructs the
// database exactly as any past transaction saw it, and the same Quel query
// run against two reconstructions gives the answers the database would
// have given then — time travel over the query processor.
package main

import (
	"fmt"

	"tdb/internal/engine"
	"tdb/internal/interval"
	"tdb/internal/optimizer"
	"tdb/internal/quel"
	"tdb/internal/relation"
	"tdb/internal/rollback"
	"tdb/internal/value"
	"tdb/internal/workload"
)

func row(name, rank string, from, to interval.Time) relation.Row {
	return relation.Row{value.String_(name), value.String_(rank), value.TimeVal(from), value.TimeVal(to)}
}

func main() {
	store := rollback.NewStore("Faculty", workload.FacultySchema)

	// Transaction 100: initial records.
	must(store.Insert(100, row("smith", "Assistant", 0, 8)))
	must(store.Insert(100, row("smith", "Associate", 8, 15)))
	must(store.Insert(100, row("jones", "Associate", 5, 20)))

	// Transaction 200: smith's promotion to full is recorded.
	must(store.Insert(200, row("smith", "Full", 15, interval.Forever)))

	// Transaction 300: jones's record is corrected — the associate period
	// actually ended at 12.
	_, err := store.Update(300,
		func(r relation.Row) bool { return r[0].AsString() == "jones" },
		[]relation.Row{row("jones", "Associate", 5, 12)})
	must(err)

	fmt.Println("history with transaction lifespans:")
	fmt.Print(store.History())

	// The same query at two transaction times.
	query := `
range of f is Faculty
retrieve (Name=f.Name, Rank=f.Rank, ValidFrom=f.ValidFrom, ValidTo=f.ValidTo)
where f.Rank="Associate"
`
	for _, tx := range []interval.Time{150, 350} {
		db := engine.NewDB()
		asOf := store.AsOf(tx)
		asOf.Name = "Faculty"
		db.MustRegister(asOf)

		prog, err := quel.Parse(query)
		must(err)
		qs, err := quel.Translate(prog, db)
		must(err)
		res, err := optimizer.Optimize(qs[0].Tree, db, optimizer.Options{})
		must(err)
		out, _, err := engine.Run(db, res.Tree, engine.Options{})
		must(err)
		fmt.Printf("\nassociates as the database stood at transaction %d:\n", tx)
		fmt.Print(out)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
