// Sensors: stream processor networks over temporal data.
//
// Two fleets of sensors report validity intervals (periods during which a
// reading is trusted). The example composes stream processors the way
// Section 4.1 describes — a join processor feeding combinators — to answer:
//
//  1. which calibration windows fully cover a reading's validity
//     (Contain-join as an async pipeline stage),
//  2. how many trusted readings each sensor produced (the Figure 4
//     grouped-sum processor),
//  3. which readings were invalidated before a reference window even
//     started (Before-semijoin).
package main

import (
	"fmt"
	"math/rand"

	"tdb/internal/core"
	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/relation"
	"tdb/internal/stream"
	"tdb/internal/value"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Calibration windows: long, overlapping.
	var calibrations []relation.Tuple
	for i := 0; i < 8; i++ {
		start := interval.Time(i * 40)
		calibrations = append(calibrations, relation.Tuple{
			S:    fmt.Sprintf("cal-%d", i),
			V:    value.String_("calibration"),
			Span: interval.New(start, start+interval.Time(60+rng.Intn(40))),
		})
	}
	// Readings: short validity windows from three sensors, grouped by sensor.
	var readings []relation.Tuple
	for s := 0; s < 3; s++ {
		for r := 0; r < 6; r++ {
			start := interval.Time(rng.Intn(300))
			readings = append(readings, relation.Tuple{
				S:    fmt.Sprintf("sensor-%d", s),
				V:    value.Int(int64(100*s + r)),
				Span: interval.New(start, start+interval.Time(3+rng.Intn(12))),
			})
		}
	}
	span := func(t relation.Tuple) interval.Interval { return t.Span }
	order := relation.Order{relation.TSAsc}
	relation.SortSpans(calibrations, span, order)
	relation.SortSpans(readings, span, order)

	// 1. Contain-join as a pipeline stage: the join runs in its own
	// goroutine; downstream combinators filter its output stream.
	pairs := core.GoRunPairs(func(emit func(c, r relation.Tuple)) error {
		return core.ContainJoinTSTS(
			stream.FromSlice(calibrations), stream.FromSlice(readings),
			span, core.Options{}, emit)
	})
	sensor0 := stream.Filter[stream.Pair[relation.Tuple, relation.Tuple]](pairs,
		func(p stream.Pair[relation.Tuple, relation.Tuple]) bool {
			return p.Second.S == "sensor-0"
		})
	fmt.Println("sensor-0 readings fully inside a calibration window:")
	n := 0
	for {
		p, ok := sensor0.Next()
		if !ok {
			break
		}
		n++
		fmt.Printf("  reading %v %v within %s %v\n", p.Second.V, p.Second.Span, p.First.S, p.First.Span)
	}
	if err := sensor0.Err(); err != nil {
		panic(err)
	}
	fmt.Printf("  (%d pairs)\n\n", n)

	// 2. Figure 4: per-sensor reading counts as a grouped stream sum.
	bySensor := append([]relation.Tuple{}, readings...)
	// Group by surrogate (stable sort on S).
	for i := 1; i < len(bySensor); i++ {
		for j := i; j > 0 && bySensor[j-1].S > bySensor[j].S; j-- {
			bySensor[j-1], bySensor[j] = bySensor[j], bySensor[j-1]
		}
	}
	counts := stream.GroupCount(stream.FromSlice(bySensor),
		func(t relation.Tuple) string { return t.S })
	fmt.Println("trusted readings per sensor (grouped-sum stream processor):")
	for {
		p, ok := counts.Next()
		if !ok {
			break
		}
		fmt.Printf("  %s: %d\n", p.First, p.Second)
	}

	// 3. Before-semijoin: readings whose validity expired before the last
	// calibration window began — candidates for recalibration, found with
	// one unordered scan of each operand.
	probe := &metrics.Probe{}
	fmt.Println("\nreadings expired before some calibration window started:")
	err := core.BeforeSemijoin(
		stream.FromSlice(readings), stream.FromSlice(calibrations),
		span, core.Options{Probe: probe},
		func(t relation.Tuple) { fmt.Printf("  %s reading %v %v\n", t.S, t.V, t.Span) })
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost: %s\n", probe)
}
