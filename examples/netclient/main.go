// Netclient: the temporal engine over the wire through database/sql.
//
// Start a server (any catalog works; F and G are only needed for
// -subscribe):
//
//	go run ./cmd/tdbgen -kind faculty -n 60 -o faculty.csv
//	printf 'Name,Rank,ValidFrom,ValidTo\n' > f.csv && cp f.csv g.csv
//	go run ./cmd/tdb -load Faculty=faculty.csv -load F=f.csv -load G=g.csv \
//	    -listen 127.0.0.1:8080 -serve
//
// then run this client against it:
//
//	go run ./examples/netclient -addr http://127.0.0.1:8080 -subscribe
//
// It runs an ad-hoc TQuel query with an ordinal placeholder, re-executes
// it as a server-side prepared statement rebound to other parameters,
// and — with -subscribe — registers a standing temporal query, appends
// tuples through the wire, and prints the streamed delta batch.
package main

import (
	"context"
	"database/sql"
	"flag"
	"fmt"
	"log"
	"time"

	tdbdriver "tdb/driver"
)

const facultyByRank = `
range of f is Faculty
retrieve (f.Name, f.ValidFrom, f.ValidTo) where f.Rank = $1
`

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "tdb server base URL")
	subscribe := flag.Bool("subscribe", false, "also exercise the subscription extension (needs empty live relations F and G)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	db, err := sql.Open("tdb", *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.PingContext(ctx); err != nil {
		log.Fatalf("ping %s: %v", *addr, err)
	}

	// Ad-hoc query: strings bind string placeholders, integers bind
	// chronons. Interval endpoints come back as int64 and the column
	// metadata marks them TIME_START / TIME_END.
	rows, err := db.QueryContext(ctx, facultyByRank, "Full")
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Println("full professors and their lifespans:")
	n := 0
	for rows.Next() {
		var name string
		var from, to int64
		if err := rows.Scan(&name, &from, &to); err != nil {
			log.Fatalf("scan: %v", err)
		}
		if n < 5 {
			fmt.Printf("  %-12s [%d, %d)\n", name, from, to)
		}
		n++
	}
	if err := rows.Close(); err != nil {
		log.Fatalf("rows: %v", err)
	}
	fmt.Printf("rank Full: %d rows\n", n)

	// Prepared statement: the parse, translation and optimizer plan are
	// cached in the server session; each execution rebinds $1.
	stmt, err := db.PrepareContext(ctx, facultyByRank)
	if err != nil {
		log.Fatalf("prepare: %v", err)
	}
	defer stmt.Close()
	for _, rank := range []string{"Assistant", "Associate"} {
		var count int
		r, err := stmt.QueryContext(ctx, rank)
		if err != nil {
			log.Fatalf("execute %q: %v", rank, err)
		}
		for r.Next() {
			count++
		}
		if err := r.Close(); err != nil {
			log.Fatalf("rows: %v", err)
		}
		fmt.Printf("prepared, rebound to %s: %d rows\n", rank, count)
	}

	if !*subscribe {
		return
	}

	// The subscription extension lives on the Connector, outside
	// database/sql. alice × bob is the one overlapping pair; carol and
	// dave advance both input frontiers past it so the stream operator
	// may emit.
	c, err := tdbdriver.NewConnector(*addr)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := c.Subscribe(ctx, `
range of f is F
range of g is G
subscribe watch (Name=f.Name) where (f overlap g)
`, 10)
	if err != nil {
		log.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()
	fmt.Printf("subscribed %s (%s)\n", sub.Meta().Name, sub.Meta().Mode)
	for _, app := range []struct {
		rel string
		row []any
	}{
		{"F", []any{"alice", "Assistant", 1, 10}},
		{"G", []any{"bob", "Full", 2, 8}},
		{"F", []any{"carol", "Full", 20, 25}},
		{"G", []any{"dave", "Full", 21, 26}},
	} {
		if _, err := c.Append(ctx, app.rel, [][]any{app.row}, 0, true); err != nil {
			log.Fatalf("append %s: %v", app.rel, err)
		}
	}
	d, err := sub.Next()
	if err != nil {
		log.Fatalf("next: %v", err)
	}
	fmt.Printf("deltas seq %d: %v\n", d.Seq, d.Rows)
}
