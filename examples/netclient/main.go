// Netclient: the temporal engine over the wire through database/sql.
//
// Start a server (any catalog works; F and G are only needed for
// -subscribe):
//
//	go run ./cmd/tdbgen -kind faculty -n 60 -o faculty.csv
//	printf 'Name,Rank,ValidFrom,ValidTo\n' > f.csv && cp f.csv g.csv
//	go run ./cmd/tdb -load Faculty=faculty.csv -load F=f.csv -load G=g.csv \
//	    -listen 127.0.0.1:8080 -serve
//
// then run this client against it:
//
//	go run ./examples/netclient -addr http://127.0.0.1:8080 -subscribe
//
// It runs an ad-hoc TQuel query with an ordinal placeholder, re-executes
// it as a server-side prepared statement rebound to other parameters,
// and — with -subscribe — registers a standing temporal query, appends
// tuples through the wire, and prints the streamed delta batch.
//
// -resilience instead runs the server-restart drill: subscribe, append
// under idempotency keys (each sent twice to prove the dedup window),
// read the first delta, then wait for the operator (or CI) to kill and
// restart the server. The old stream must be refused with the typed
// unknown_resume error — never silently resumed against lost state — and
// a fresh subscription over re-sent same-keyed appends must rebuild the
// byte-identical delta. When the restarted server arms
// TDB_FAULTS="server/subscribe-deliver=error:n=1", the rebuilt stream's
// first delivery is severed mid-lifetime and the driver's auto-resume
// heals it transparently, which the drill asserts via resume stats.
package main

import (
	"context"
	"database/sql"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	tdbdriver "tdb/driver"
)

const facultyByRank = `
range of f is Faculty
retrieve (f.Name, f.ValidFrom, f.ValidTo) where f.Rank = $1
`

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "tdb server base URL")
	subscribe := flag.Bool("subscribe", false, "also exercise the subscription extension (needs empty live relations F and G)")
	resilience := flag.Bool("resilience", false, "run the server-restart drill instead (needs empty live relations F and G)")
	flag.Parse()

	if *resilience {
		resilienceDrill(*addr)
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	db, err := sql.Open("tdb", *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.PingContext(ctx); err != nil {
		log.Fatalf("ping %s: %v", *addr, err)
	}

	// Ad-hoc query: strings bind string placeholders, integers bind
	// chronons. Interval endpoints come back as int64 and the column
	// metadata marks them TIME_START / TIME_END.
	rows, err := db.QueryContext(ctx, facultyByRank, "Full")
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Println("full professors and their lifespans:")
	n := 0
	for rows.Next() {
		var name string
		var from, to int64
		if err := rows.Scan(&name, &from, &to); err != nil {
			log.Fatalf("scan: %v", err)
		}
		if n < 5 {
			fmt.Printf("  %-12s [%d, %d)\n", name, from, to)
		}
		n++
	}
	if err := rows.Close(); err != nil {
		log.Fatalf("rows: %v", err)
	}
	fmt.Printf("rank Full: %d rows\n", n)

	// Prepared statement: the parse, translation and optimizer plan are
	// cached in the server session; each execution rebinds $1.
	stmt, err := db.PrepareContext(ctx, facultyByRank)
	if err != nil {
		log.Fatalf("prepare: %v", err)
	}
	defer stmt.Close()
	for _, rank := range []string{"Assistant", "Associate"} {
		var count int
		r, err := stmt.QueryContext(ctx, rank)
		if err != nil {
			log.Fatalf("execute %q: %v", rank, err)
		}
		for r.Next() {
			count++
		}
		if err := r.Close(); err != nil {
			log.Fatalf("rows: %v", err)
		}
		fmt.Printf("prepared, rebound to %s: %d rows\n", rank, count)
	}

	if !*subscribe {
		return
	}

	// The subscription extension lives on the Connector, outside
	// database/sql. alice × bob is the one overlapping pair; carol and
	// dave advance both input frontiers past it so the stream operator
	// may emit.
	c, err := tdbdriver.NewConnector(*addr)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := c.Subscribe(ctx, `
range of f is F
range of g is G
subscribe watch (Name=f.Name) where (f overlap g)
`, 10)
	if err != nil {
		log.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()
	fmt.Printf("subscribed %s (%s)\n", sub.Meta().Name, sub.Meta().Mode)
	for _, app := range []struct {
		rel string
		row []any
	}{
		{"F", []any{"alice", "Assistant", 1, 10}},
		{"G", []any{"bob", "Full", 2, 8}},
		{"F", []any{"carol", "Full", 20, 25}},
		{"G", []any{"dave", "Full", 21, 26}},
	} {
		if _, err := c.Append(ctx, app.rel, [][]any{app.row}, 0, true); err != nil {
			log.Fatalf("append %s: %v", app.rel, err)
		}
	}
	d, err := sub.Next()
	if err != nil {
		log.Fatalf("next: %v", err)
	}
	fmt.Printf("deltas seq %d: %v\n", d.Seq, d.Rows)
}

const overlapWatch = `
range of f is F
range of g is G
subscribe watch (Name=f.Name) where (f overlap g)
`

// firstBatch is the canonical overlap fixture: alice × bob is the one
// released pair; carol and dave advance both frontiers past it.
var firstBatch = []struct {
	rel string
	row []any
}{
	{"F", []any{"alice", "Assistant", 1, 10}},
	{"G", []any{"bob", "Full", 2, 8}},
	{"F", []any{"carol", "Full", 20, 25}},
	{"G", []any{"dave", "Full", 21, 26}},
}

// secondBatch releases exactly the pending carol × dave pair once jack
// — the only G-frontier advance, landing last — arrives.
var secondBatch = []struct {
	rel string
	row []any
}{
	{"F", []any{"iris", "Full", 60, 65}},
	{"G", []any{"jack", "Full", 61, 66}},
}

// feedKeyed sends every append twice under a stable idempotency key:
// the first send must land, the second must be replayed from the
// server's dedup window — the at-least-once producer contract.
func feedKeyed(ctx context.Context, c *tdbdriver.Connector, batch []struct {
	rel string
	row []any
}) {
	for _, app := range batch {
		key := fmt.Sprintf("drill-%s-%v", app.rel, app.row[0])
		first, err := c.AppendKeyed(ctx, app.rel, [][]any{app.row}, 0, true, key)
		if err != nil {
			log.Fatalf("append %s: %v", app.rel, err)
		}
		if first.Deduped || first.Appended != 1 {
			log.Fatalf("append %s: appended %d deduped %v, want a fresh single-row append",
				app.rel, first.Appended, first.Deduped)
		}
		again, err := c.AppendKeyed(ctx, app.rel, [][]any{app.row}, 0, true, key)
		if err != nil {
			log.Fatalf("duplicate append %s: %v", app.rel, err)
		}
		if !again.Deduped {
			log.Fatalf("duplicate append %s was not deduped", app.rel)
		}
	}
}

// awaitRestart polls the ping endpoint until the server goes down and
// comes back, so the drill can be driven by a CI job that SIGKILLs and
// restarts the process underneath it.
func awaitRestart(addr string) {
	client := &http.Client{Timeout: time.Second}
	ping := func() bool {
		resp, err := client.Post(addr+"/v1/ping", "application/json", strings.NewReader("{}"))
		if err != nil {
			return false
		}
		_ = resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}
	deadline := time.Now().Add(2 * time.Minute)
	for ping() {
		if time.Now().After(deadline) {
			log.Fatal("server was never killed")
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Println("server down, awaiting restart")
	for !ping() {
		if time.Now().After(deadline) {
			log.Fatal("server never came back")
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Println("server back up")
}

// resilienceDrill is the server-restart exercise: phase 1 builds a
// subscription and a keyed-append history, then the server is killed and
// restarted underneath it. The drill proves the wire layer's restart
// story end to end: the orphaned stream is refused with a typed error,
// a rebuilt subscription over re-sent same-keyed appends yields the
// byte-identical delta (zero loss, zero duplication), and — when the
// restarted server arms a delivery sever — the rebuilt stream heals a
// mid-lifetime cut through driver auto-resume.
func resilienceDrill(addr string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	c, err := tdbdriver.NewConnector(addr)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := c.Subscribe(ctx, overlapWatch, 10)
	if err != nil {
		log.Fatalf("subscribe: %v", err)
	}
	feedKeyed(ctx, c, firstBatch)
	d, err := sub.Next()
	if err != nil {
		log.Fatalf("phase 1 next: %v", err)
	}
	canonical := fmt.Sprintf("%v", d.Rows)
	fmt.Printf("phase 1: deltas seq %d: %s (appends deduped on the wire)\n", d.Seq, canonical)

	awaitRestart(addr)

	// The orphaned stream must die loudly: auto-resume reaches the new
	// process, which no longer knows the session or subscription, and the
	// typed refusal is terminal — never a silent rewind onto lost state.
	_, err = sub.Next()
	var te *tdbdriver.Error
	if !errors.As(err, &te) ||
		(te.Code != tdbdriver.CodeUnknownSession && te.Code != tdbdriver.CodeUnknownResume) {
		log.Fatalf("orphaned stream Next = %v, want typed unknown_session/unknown_resume", err)
	}
	fmt.Printf("orphaned stream refused: %s\n", te.Code)
	_ = sub.Close()

	// Rebuild: fresh subscription, same idempotency keys. The restarted
	// server's dedup window is empty, so the first sends land and rebuild
	// the live state; the second sends prove the new window. If the
	// server armed a delivery sever (TDB_FAULTS), the first delta is cut
	// mid-stream and auto-resume replays it from the ring.
	c2, err := tdbdriver.NewConnector(addr)
	if err != nil {
		log.Fatal(err)
	}
	sub2, err := c2.Subscribe(ctx, overlapWatch, 10)
	if err != nil {
		log.Fatalf("phase 2 subscribe: %v", err)
	}
	defer sub2.Close()
	feedKeyed(ctx, c2, firstBatch)
	d2, err := sub2.Next()
	if err != nil {
		log.Fatalf("phase 2 next: %v", err)
	}
	rebuilt := fmt.Sprintf("%v", d2.Rows)
	if rebuilt != canonical {
		log.Fatalf("rebuilt delta %s != pre-restart delta %s", rebuilt, canonical)
	}
	if st := sub2.Stats(); st.Resumes > 0 {
		fmt.Printf("phase 2: deltas seq %d: %s (healed %d sever(s) in %v)\n",
			d2.Seq, rebuilt, st.Resumes, st.LastResumeTime.Round(time.Microsecond))
	} else {
		fmt.Printf("phase 2: deltas seq %d: %s\n", d2.Seq, rebuilt)
	}

	// Continue past the restart point: the next batch must arrive exactly
	// once, with the next seq and no replay of the first delta's rows.
	feedKeyed(ctx, c2, secondBatch)
	d3, err := sub2.Next()
	if err != nil {
		log.Fatalf("phase 2 second next: %v", err)
	}
	if d3.Seq != d2.Seq+1 || strings.Contains(fmt.Sprintf("%v", d3.Rows), "alice") {
		log.Fatalf("post-restart continuation = seq %d %v, want seq %d without alice",
			d3.Seq, d3.Rows, d2.Seq+1)
	}
	fmt.Println("resilience drill: zero loss, zero duplication")
}
