package driver_test

import (
	"context"
	"database/sql"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	tdbdriver "tdb/driver"
	"tdb/internal/engine"
	"tdb/internal/experiments"
	"tdb/internal/interval"
	"tdb/internal/optimizer"
	"tdb/internal/quel"
	"tdb/internal/relation"
	"tdb/internal/server"
	"tdb/internal/value"
	"tdb/internal/workload"
)

// startServer runs a server on a real listener and returns its base URL.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = seededDB(t, 40)
	}
	s := server.New(cfg)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start server: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, "http://" + addr
}

func seededDB(t *testing.T, n int) *engine.DB {
	t.Helper()
	db := engine.NewDB()
	db.MustRegister(workload.Faculty(workload.FacultyConfig{N: n, Seed: 7}))
	if err := db.DeclareChronOrder(experiments.RankOrder(false)); err != nil {
		t.Fatal(err)
	}
	return db
}

func openDB(t *testing.T, url string) *sql.DB {
	t.Helper()
	db, err := sql.Open("tdb", url)
	if err != nil {
		t.Fatalf("sql.Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// embeddedRows runs quel through the embedded pipeline exactly the way
// the server does — parse, translate, bind, optimize with catalog ICs,
// execute — and renders rows the way the wire does.
func embeddedRows(t *testing.T, db *engine.DB, text string, params []value.Value) [][]any {
	t.Helper()
	prog, err := quel.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	qs, err := quel.Translate(prog, db)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	tree, err := quel.BindParams(&qs[0], params)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	res, err := optimizer.Optimize(tree, db, optimizer.Options{ICs: db.ChronOrders()})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	out, _, err := engine.Run(db, res.Tree, engine.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rows := make([][]any, 0, len(out.Rows))
	for _, r := range out.Rows {
		vals := make([]any, len(r))
		for j, v := range r {
			if v.Kind() == value.KindString {
				vals[j] = v.AsString()
			} else {
				vals[j] = v.AsInt()
			}
		}
		rows = append(rows, vals)
	}
	return rows
}

// scanAll drains a result set into wire-shaped rows using the driver's
// reported scan types.
func scanAll(t *testing.T, rows *sql.Rows) [][]any {
	t.Helper()
	cts, err := rows.ColumnTypes()
	if err != nil {
		t.Fatalf("column types: %v", err)
	}
	var out [][]any
	for rows.Next() {
		ptrs := make([]any, len(cts))
		for i, ct := range cts {
			if ct.ScanType().Kind() == reflect.String {
				ptrs[i] = new(string)
			} else {
				ptrs[i] = new(int64)
			}
		}
		if err := rows.Scan(ptrs...); err != nil {
			t.Fatalf("scan: %v", err)
		}
		vals := make([]any, len(ptrs))
		for i, p := range ptrs {
			switch v := p.(type) {
			case *string:
				vals[i] = *v
			case *int64:
				vals[i] = *v
			}
		}
		out = append(out, vals)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows: %v", err)
	}
	return out
}

func asJSON(t *testing.T, rows [][]any) string {
	t.Helper()
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestConformance: every seed query returns, through sql.Open("tdb"),
// rows byte-identical to the embedded engine's.
func TestConformance(t *testing.T) {
	s, url := startServer(t, server.Config{DB: seededDB(t, 24)})
	db := openDB(t, url)
	cases := []struct {
		name   string
		quel   string
		args   []any
		params []value.Value
	}{
		{name: "selection", quel: `
			range of f is Faculty
			retrieve (f.Name, f.Rank, f.ValidFrom, f.ValidTo)
			where f.Rank = "Full"`},
		{name: "overlap-self-join", quel: `
			range of a is Faculty
			range of b is Faculty
			retrieve (Name=a.Name, Peer=b.Name, From=a.ValidFrom)
			where a.Rank = "Assistant" and b.Rank = "Full" and (a overlap b)`},
		{name: "placeholders", quel: `
			range of f is Faculty
			retrieve (f.Name, f.ValidFrom)
			where f.Rank = $1 and f.ValidFrom < $2`,
			args:   []any{"Associate", 40},
			params: []value.Value{value.String_("Associate"), value.TimeVal(40)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows, err := db.Query(tc.quel, tc.args...)
			if err != nil {
				t.Fatalf("driver query: %v", err)
			}
			defer rows.Close()
			got := asJSON(t, scanAll(t, rows))
			want := asJSON(t, embeddedRows(t, s.DB(), tc.quel, tc.params))
			if got != want {
				t.Errorf("driver rows diverge from embedded engine\n got: %.300s\nwant: %.300s", got, want)
			}
		})
	}
}

// TestSuperstarIntoSessionScope runs the paper's running query through
// a pinned connection: the "into" result lands in that connection's
// session, matches the embedded engine, and is invisible elsewhere.
func TestSuperstarIntoSessionScope(t *testing.T) {
	s, url := startServer(t, server.Config{})
	db := openDB(t, url)
	ctx := context.Background()
	conn, err := db.Conn(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	res, err := conn.ExecContext(ctx, experiments.SuperstarQuel)
	if err != nil {
		t.Fatalf("superstar into: %v", err)
	}
	n, _ := res.RowsAffected()
	want := embeddedRows(t, s.DB(), experiments.SuperstarQuel, nil)
	if int(n) != len(want) {
		t.Fatalf("rows affected %d, embedded result has %d", n, len(want))
	}

	const stars = `
		range of s is Stars
		retrieve (s.Name, s.ValidFrom, s.ValidTo)`
	rows, err := conn.QueryContext(ctx, stars)
	if err != nil {
		t.Fatalf("query Stars on owning session: %v", err)
	}
	got := scanAll(t, rows)
	rows.Close()
	sortRows := func(rs [][]any) []string {
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = fmt.Sprint(r...)
		}
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(sortRows(got), sortRows(want)) {
		t.Errorf("Stars contents diverge from embedded superstar result")
	}

	// A different connection is a different session: Stars is not there.
	other, err := db.Conn(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if _, err := other.QueryContext(ctx, stars); err == nil {
		t.Error("Stars leaked across sessions")
	} else {
		var te *tdbdriver.Error
		if !errors.As(err, &te) || te.Code != tdbdriver.CodeTranslate {
			t.Errorf("cross-session Stars error = %v, want %s", err, tdbdriver.CodeTranslate)
		}
	}
}

// TestPreparedRebind: one server-side prepare, executed under different
// bindings, each matching the embedded engine.
func TestPreparedRebind(t *testing.T) {
	s, url := startServer(t, server.Config{})
	db := openDB(t, url)
	const q = `
		range of f is Faculty
		retrieve (f.Name, f.ValidFrom)
		where f.Rank = $1`
	stmt, err := db.Prepare(q)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	defer stmt.Close()
	for _, rank := range []string{"Full", "Assistant", "Full"} {
		rows, err := stmt.Query(rank)
		if err != nil {
			t.Fatalf("execute %q: %v", rank, err)
		}
		got := asJSON(t, scanAll(t, rows))
		rows.Close()
		want := asJSON(t, embeddedRows(t, s.DB(), q, []value.Value{value.String_(rank)}))
		if got != want {
			t.Errorf("binding %q diverges from embedded engine", rank)
		}
	}
	// database/sql enforces the server-reported arity client-side.
	if _, err := stmt.Query(); err == nil || !strings.Contains(err.Error(), "expected 1") {
		t.Errorf("missing-parameter error = %v", err)
	}
}

// TestColumnTypes: interval typing travels through database/sql — the
// lifespan endpoints report TIME_START / TIME_END.
func TestColumnTypes(t *testing.T) {
	_, url := startServer(t, server.Config{})
	db := openDB(t, url)
	rows, err := db.Query(`
		range of f is Faculty
		retrieve (f.Name, f.Rank, f.ValidFrom, f.ValidTo)
		where f.Rank = "Full"`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cts, err := rows.ColumnTypes()
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := []string{"STRING", "STRING", "TIME_START", "TIME_END"}
	wantScan := []reflect.Kind{reflect.String, reflect.String, reflect.Int64, reflect.Int64}
	for i, ct := range cts {
		if ct.DatabaseTypeName() != wantTypes[i] {
			t.Errorf("column %s type %s, want %s", ct.Name(), ct.DatabaseTypeName(), wantTypes[i])
		}
		if ct.ScanType().Kind() != wantScan[i] {
			t.Errorf("column %s scans as %s, want %s", ct.Name(), ct.ScanType(), wantScan[i])
		}
	}
}

// TestForeverRoundTrip: the open-ended chronon (2^63-2) scans exactly.
func TestForeverRoundTrip(t *testing.T) {
	db := seededDB(t, 8)
	rel, err := db.Relation("Faculty")
	if err != nil {
		t.Fatal(err)
	}
	rel.Rows = append(rel.Rows, relation.Row{
		value.String_("zz-current"), value.String_("Full"),
		value.TimeVal(100), value.TimeVal(interval.Forever),
	})
	_, url := startServer(t, server.Config{DB: db})
	sdb := openDB(t, url)
	var name string
	var to int64
	err = sdb.QueryRow(`
		range of f is Faculty
		retrieve (f.Name, f.ValidTo)
		where f.ValidFrom = $1`, 100).Scan(&name, &to)
	if err != nil {
		t.Fatal(err)
	}
	if name != "zz-current" || to != int64(interval.Forever) {
		t.Errorf("got (%s, %d), want (zz-current, %d)", name, to, int64(interval.Forever))
	}
}

// TestTypedErrors: wire error codes come back as *tdbdriver.Error.
func TestTypedErrors(t *testing.T) {
	_, url := startServer(t, server.Config{
		Tenants: []server.TenantConfig{{Name: "alpha"}},
	})

	t.Run("parse", func(t *testing.T) {
		db := openDB(t, url+"?tenant=alpha")
		_, err := db.Query("retrieve retrieve retrieve")
		var te *tdbdriver.Error
		if !errors.As(err, &te) || te.Code != tdbdriver.CodeParse {
			t.Errorf("err = %v, want code %s", err, tdbdriver.CodeParse)
		}
	})
	t.Run("unknown-tenant", func(t *testing.T) {
		db := openDB(t, url+"?tenant=beta")
		err := db.Ping()
		var te *tdbdriver.Error
		if !errors.As(err, &te) || te.Code != tdbdriver.CodeUnknownTenant {
			t.Errorf("err = %v, want code %s", err, tdbdriver.CodeUnknownTenant)
		}
	})
	t.Run("unbindable-parameter", func(t *testing.T) {
		db := openDB(t, url+"?tenant=alpha")
		_, err := db.Query(`range of f is Faculty retrieve (f.Name) where f.ValidFrom < $1`, 3.14)
		if err == nil || !strings.Contains(err.Error(), "bind") {
			t.Errorf("float parameter error = %v", err)
		}
	})
	t.Run("no-transactions", func(t *testing.T) {
		db := openDB(t, url+"?tenant=alpha")
		if _, err := db.Begin(); !errors.Is(err, tdbdriver.ErrNoTransactions) {
			t.Errorf("Begin = %v, want ErrNoTransactions", err)
		}
	})
}

// TestCodesMirrorServer pins the driver's error-code vocabulary to the
// server's: the two packages share no Go types, only the protocol.
func TestCodesMirrorServer(t *testing.T) {
	pairs := [][2]string{
		{tdbdriver.CodeBadRequest, server.CodeBadRequest},
		{tdbdriver.CodeParse, server.CodeParse},
		{tdbdriver.CodeTranslate, server.CodeTranslate},
		{tdbdriver.CodeBind, server.CodeBind},
		{tdbdriver.CodePlan, server.CodePlan},
		{tdbdriver.CodeExec, server.CodeExec},
		{tdbdriver.CodeCanceled, server.CodeCanceled},
		{tdbdriver.CodeUnknownSession, server.CodeUnknownSession},
		{tdbdriver.CodeUnknownStatement, server.CodeUnknownStatement},
		{tdbdriver.CodeUnknownTenant, server.CodeUnknownTenant},
		{tdbdriver.CodeUnknownRelation, server.CodeUnknownRelation},
		{tdbdriver.CodeQuotaConcurrency, server.CodeQuotaConcurrency},
		{tdbdriver.CodeQueueTimeout, server.CodeQueueTimeout},
		{tdbdriver.CodeDeclined, server.CodeDeclined},
		{tdbdriver.CodeBreakerOpen, server.CodeBreakerOpen},
		{tdbdriver.CodeDraining, server.CodeDraining},
		{tdbdriver.CodeLateTuple, server.CodeLateTuple},
		{tdbdriver.CodeSessionExpired, server.CodeSessionExpired},
		{tdbdriver.CodeResumeHorizon, server.CodeResumeHorizon},
		{tdbdriver.CodeUnknownResume, server.CodeUnknownResume},
	}
	for _, p := range pairs {
		if p[0] != p[1] {
			t.Errorf("driver code %q != server code %q", p[0], p[1])
		}
	}
}

// TestProtocolVersionMismatch: a server answering another protocol
// version is refused at Connect, not misparsed later.
func TestProtocolVersionMismatch(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{"protocol": "v0", "session": "s1"})
	}))
	defer fake.Close()
	db := openDB(t, fake.URL)
	if err := db.Ping(); err == nil || !strings.Contains(err.Error(), "protocol") {
		t.Errorf("version mismatch error = %v", err)
	}
}

// TestCancellationPropagates: canceling the context aborts the client
// call AND interrupts the query server-side — observed through the
// tenant error counter on /metrics — leaving the server healthy.
func TestCancellationPropagates(t *testing.T) {
	// Two-sided projection defeats the semijoin recognition, so the
	// pairwise join genuinely runs long enough to cancel.
	db := engine.NewDB()
	db.MustRegister(workload.Faculty(workload.FacultyConfig{N: 900, Seed: 7}))
	_, url := startServer(t, server.Config{DB: db})
	sdb := openDB(t, url)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := sdb.QueryContext(ctx, `
		range of a is Faculty
		range of b is Faculty
		retrieve (NameA=a.Name, NameB=b.Name)
		where a.Name != b.Name and a.Rank = "Full" and b.Rank = "Full"`)
	if err == nil {
		t.Fatal("query outlived its deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}

	// The server registered the interrupt: the tenant error counter
	// moves once the aborted handler unwinds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := scrapeCounter(t, url, "tdb_server_tenant_default_errors_total"); n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the canceled query")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var count int64
	if err := sdb.QueryRow(`range of f is Faculty retrieve (f.ValidFrom) where f.Name = $1`,
		"prof0000").Scan(&count); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
}

// scrapeCounter reads one counter from the Prometheus endpoint.
func scrapeCounter(t *testing.T, base, name string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v int64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%d", &v); err == nil {
				return v
			}
		}
	}
	return 0
}
