package driver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// The driver speaks the wire protocol from its JSON shapes alone — it
// deliberately does not share Go types with internal/server, the way an
// out-of-process client could not. The conformance suite pins the two
// sides together.

// protocolVersion is the wire protocol this driver speaks; every
// endpoint lives under "/" + protocolVersion + "/".
const protocolVersion = "v1"

type wireColumn struct {
	Name string `json:"name"`
	// Kind is "string", "time", or "int".
	Kind string `json:"kind"`
	// Temporal is "start" or "end" on the two columns the schema
	// designates as the tuple lifespan endpoints; empty otherwise.
	Temporal string `json:"temporal,omitempty"`
}

type sessionOpenRequest struct {
	Tenant string `json:"tenant,omitempty"`
}

type sessionOpenResponse struct {
	Protocol      string `json:"protocol"`
	Session       string `json:"session"`
	Tenant        string `json:"tenant"`
	IdleTimeoutMS int64  `json:"idle_timeout_ms"`
}

type sessionCloseRequest struct {
	Session string `json:"session"`
}

type queryRequest struct {
	Session string `json:"session,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Quel    string `json:"quel"`
	Params  []any  `json:"params,omitempty"`
}

type queryResponse struct {
	Columns       []wireColumn `json:"columns"`
	Rows          [][]any      `json:"rows"`
	Into          string       `json:"into,omitempty"`
	Contradiction bool         `json:"contradiction,omitempty"`
	Notes         []string     `json:"notes,omitempty"`
	ElapsedNS     int64        `json:"elapsed_ns"`
}

type prepareRequest struct {
	Session string `json:"session"`
	Quel    string `json:"quel"`
}

type prepareResponse struct {
	Stmt      string       `json:"stmt"`
	NumParams int          `json:"num_params"`
	Columns   []wireColumn `json:"columns"`
}

type executeRequest struct {
	Session string `json:"session"`
	Stmt    string `json:"stmt"`
	Params  []any  `json:"params,omitempty"`
}

type closeStmtRequest struct {
	Session string `json:"session"`
	Stmt    string `json:"stmt"`
}

type appendRequest struct {
	Session  string  `json:"session,omitempty"`
	Tenant   string  `json:"tenant,omitempty"`
	Relation string  `json:"relation"`
	Rows     [][]any `json:"rows"`
	Slack    int64   `json:"slack,omitempty"`
	Flush    bool    `json:"flush,omitempty"`
	IdemKey  string  `json:"idem_key,omitempty"`
}

type subscribeRequest struct {
	Session  string `json:"session"`
	Quel     string `json:"quel,omitempty"`
	PollMS   int64  `json:"poll_ms,omitempty"`
	Resume   string `json:"resume,omitempty"`
	AfterSeq int64  `json:"after_seq,omitempty"`
}

type subscribeMeta struct {
	Name      string       `json:"name"`
	Mode      string       `json:"mode"`
	Explain   string       `json:"explain,omitempty"`
	Columns   []wireColumn `json:"columns"`
	Resume    string       `json:"resume,omitempty"`
	ReplayCap int          `json:"replay_cap,omitempty"`
}

type subscribeDeltas struct {
	Seq  int64   `json:"seq"`
	Rows [][]any `json:"rows"`
}

type errorEnvelope struct {
	Error struct {
		Code         string `json:"code"`
		Message      string `json:"message"`
		RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	} `json:"error"`
}

// post runs one protocol request under the retry policy: marshal, POST,
// and either decode the response into out or map the error envelope to
// a typed *Error. Every endpoint routed through post is safe to repeat
// (appends pass through only when keyed); use postOnce otherwise.
// Chronons travel as JSON numbers up to interval.Forever (2^63-2), so
// responses are decoded with json.Number — float64 would corrupt them.
func (c *Connector) post(ctx context.Context, endpoint string, in, out any) error {
	return c.withRetry(ctx, endpoint, func() error {
		return c.postOnce(ctx, endpoint, in, out)
	})
}

// postOnce is one attempt with no retry — the path for requests whose
// repetition is not provably safe (unkeyed appends).
func (c *Connector) postOnce(ctx context.Context, endpoint string, in, out any) error {
	resp, err := c.roundTrip(ctx, endpoint, in)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	if err := dec.Decode(out); err != nil {
		return fmt.Errorf("tdb: decoding %s response: %w", endpoint, err)
	}
	return nil
}

func (c *Connector) roundTrip(ctx context.Context, endpoint string, in any) (*http.Response, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return nil, fmt.Errorf("tdb: encoding %s request: %w", endpoint, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/"+protocolVersion+"/"+endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("tdb: %s: %w", endpoint, err)
	}
	return resp, nil
}

// checkStatus maps a non-2xx response to a typed *Error. The body is
// consumed only on error paths.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var env errorEnvelope
	if json.Unmarshal(raw, &env) == nil && env.Error.Code != "" {
		return &Error{Code: env.Error.Code, Message: env.Error.Message, RetryAfterMS: env.Error.RetryAfterMS}
	}
	return fmt.Errorf("tdb: server returned %s: %.200s", resp.Status, raw)
}
