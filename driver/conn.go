package driver

import (
	"context"
	"database/sql/driver"
	"errors"
	"fmt"
)

// ErrNoTransactions is returned by Begin: temporal relations are
// append-only and queries are individually consistent, so the protocol
// has no transaction surface.
var ErrNoTransactions = errors.New("tdb: transactions are not supported (temporal relations are append-only)")

// Conn is one server session. Prepared statements and "retrieve into"
// results live in it and die with it.
type Conn struct {
	c       *Connector
	session string
	closed  bool
}

var (
	_ driver.Conn               = (*Conn)(nil)
	_ driver.ConnPrepareContext = (*Conn)(nil)
	_ driver.ConnBeginTx        = (*Conn)(nil)
	_ driver.QueryerContext     = (*Conn)(nil)
	_ driver.ExecerContext      = (*Conn)(nil)
	_ driver.Pinger             = (*Conn)(nil)
	_ driver.Validator          = (*Conn)(nil)
	_ driver.NamedValueChecker  = (*Conn)(nil)
)

// Prepare parses, translates and plans the statement server-side.
func (cn *Conn) Prepare(query string) (driver.Stmt, error) {
	return cn.PrepareContext(context.Background(), query)
}

// PrepareContext parses, translates and plans the statement server-side.
func (cn *Conn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	var resp prepareResponse
	err := cn.c.post(ctx, "prepare", prepareRequest{Session: cn.session, Quel: query}, &resp)
	if err != nil {
		return nil, err
	}
	return &Stmt{conn: cn, id: resp.Stmt, numParams: resp.NumParams, cols: resp.Columns}, nil
}

// Close closes the server session, releasing its statements and
// session-private relations.
func (cn *Conn) Close() error {
	if cn.closed {
		return nil
	}
	cn.closed = true
	err := cn.c.post(context.Background(), "session/close", sessionCloseRequest{Session: cn.session}, nil)
	var te *Error
	if errors.As(err, &te) && te.Code == CodeUnknownSession {
		return nil // already idle-expired server-side
	}
	return err
}

// Begin is not supported; see ErrNoTransactions.
func (cn *Conn) Begin() (driver.Tx, error) { return nil, ErrNoTransactions }

// BeginTx is not supported; see ErrNoTransactions.
func (cn *Conn) BeginTx(context.Context, driver.TxOptions) (driver.Tx, error) {
	return nil, ErrNoTransactions
}

// QueryContext runs one retrieve statement without a server-side
// prepare round-trip. Canceling ctx aborts the request and interrupts
// the query on the server.
func (cn *Conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	resp, err := cn.query(ctx, query, args)
	if err != nil {
		return nil, err
	}
	return &Rows{cols: resp.Columns, rows: resp.Rows}, nil
}

// ExecContext runs a statement for its effect — usually "retrieve into",
// which stores the result as a session-private relation. RowsAffected
// reports the result cardinality.
func (cn *Conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	resp, err := cn.query(ctx, query, args)
	if err != nil {
		return nil, err
	}
	return result{rows: int64(len(resp.Rows))}, nil
}

func (cn *Conn) query(ctx context.Context, query string, args []driver.NamedValue) (*queryResponse, error) {
	params, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	var resp queryResponse
	err = cn.c.post(ctx, "query", queryRequest{
		Session: cn.session, Quel: query, Params: params,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Ping verifies the server answers this driver's protocol version.
func (cn *Conn) Ping(ctx context.Context) error {
	var resp struct {
		Protocol string `json:"protocol"`
	}
	if err := cn.c.post(ctx, "ping", struct{}{}, &resp); err != nil {
		return err
	}
	if resp.Protocol != protocolVersion {
		return fmt.Errorf("tdb: server speaks protocol %q, driver speaks %q", resp.Protocol, protocolVersion)
	}
	return nil
}

// IsValid keeps closed conns out of the pool.
func (cn *Conn) IsValid() bool { return !cn.closed }

// CheckNamedValue admits the protocol's two parameter kinds: strings
// (bind string values) and integers (bind chronons). Named parameters
// have no quel surface — placeholders are ordinal ($1…$N).
func (cn *Conn) CheckNamedValue(nv *driver.NamedValue) error {
	if nv.Name != "" {
		return fmt.Errorf("tdb: named parameter %q not supported (placeholders are ordinal $1…$N)", nv.Name)
	}
	v, err := driver.DefaultParameterConverter.ConvertValue(nv.Value)
	if err != nil {
		return fmt.Errorf("tdb: parameter $%d: %w", nv.Ordinal, err)
	}
	switch v.(type) {
	case string, int64:
		nv.Value = v
		return nil
	default:
		return fmt.Errorf("tdb: parameter $%d: %T does not bind (strings bind string values, integers bind chronons)", nv.Ordinal, nv.Value)
	}
}

// convertArgs lays ordinal parameters out in $N order for the wire.
func convertArgs(args []driver.NamedValue) ([]any, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]any, len(args))
	for _, a := range args {
		if a.Ordinal < 1 || a.Ordinal > len(args) {
			return nil, fmt.Errorf("tdb: parameter ordinal %d out of range", a.Ordinal)
		}
		out[a.Ordinal-1] = a.Value
	}
	return out, nil
}

// Stmt is a server-side prepared statement: the parse, translation and
// optimizer plan are cached in the session and re-bound per execution.
type Stmt struct {
	conn      *Conn
	id        string
	numParams int
	cols      []wireColumn
}

var (
	_ driver.Stmt             = (*Stmt)(nil)
	_ driver.StmtQueryContext = (*Stmt)(nil)
	_ driver.StmtExecContext  = (*Stmt)(nil)
)

// NumInput reports the statement's placeholder count; database/sql
// enforces the arity client-side.
func (st *Stmt) NumInput() int { return st.numParams }

// Close releases the server-side statement.
func (st *Stmt) Close() error {
	return st.conn.c.post(context.Background(), "stmt/close",
		closeStmtRequest{Session: st.conn.session, Stmt: st.id}, nil)
}

// Query executes the statement with the given parameter binding.
func (st *Stmt) Query(args []driver.Value) (driver.Rows, error) {
	return st.QueryContext(context.Background(), namedValues(args))
}

// QueryContext executes the statement with the given parameter binding.
func (st *Stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	resp, err := st.execute(ctx, args)
	if err != nil {
		return nil, err
	}
	return &Rows{cols: resp.Columns, rows: resp.Rows}, nil
}

// Exec executes the statement for its effect (see Conn.ExecContext).
func (st *Stmt) Exec(args []driver.Value) (driver.Result, error) {
	return st.ExecContext(context.Background(), namedValues(args))
}

// ExecContext executes the statement for its effect (see Conn.ExecContext).
func (st *Stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	resp, err := st.execute(ctx, args)
	if err != nil {
		return nil, err
	}
	return result{rows: int64(len(resp.Rows))}, nil
}

func (st *Stmt) execute(ctx context.Context, args []driver.NamedValue) (*queryResponse, error) {
	params, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	var resp queryResponse
	err = st.conn.c.post(ctx, "execute", executeRequest{
		Session: st.conn.session, Stmt: st.id, Params: params,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

func namedValues(args []driver.Value) []driver.NamedValue {
	out := make([]driver.NamedValue, len(args))
	for i, v := range args {
		out[i] = driver.NamedValue{Ordinal: i + 1, Value: v}
	}
	return out
}

// result is the driver.Result of an Exec: the statement's cardinality.
type result struct{ rows int64 }

func (r result) LastInsertId() (int64, error) {
	return 0, errors.New("tdb: no insert ids (results are relations, not rows)")
}
func (r result) RowsAffected() (int64, error) { return r.rows, nil }
