package driver_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	tdbdriver "tdb/driver"
	"tdb/internal/fault"
	"tdb/internal/server"
)

// TestRetryHealsTornWrite: with the retry layer on (the default), a
// torn server response is retried transparently and the query succeeds.
func TestRetryHealsTornWrite(t *testing.T) {
	_, url := startServer(t, server.Config{})
	db := openDB(t, url)
	if err := fault.Arm("server/wire-write=torn:n=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	rows, err := db.Query(`range of f is Faculty retrieve (f.Name) where f.Rank = "Full"`)
	if err != nil {
		t.Fatalf("retry did not heal the torn write: %v", err)
	}
	defer rows.Close()
	if n := len(scanAll(t, rows)); n == 0 {
		t.Error("healed query returned no rows")
	}
}

// quotaServer always rejects with a quota envelope, counting attempts.
func quotaServer(t *testing.T, retryAfterMS int64, succeedAfter int32) (*httptest.Server, *int32) {
	t.Helper()
	var attempts int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := atomic.AddInt32(&attempts, 1)
		if succeedAfter > 0 && n > succeedAfter {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"protocol":"v1","session":"s%d","tenant":"default","idle_timeout_ms":300000}`, n)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintf(w, `{"error":{"code":"quota_concurrency","message":"tenant at capacity","retry_after_ms":%d}}`, retryAfterMS)
	}))
	t.Cleanup(ts.Close)
	return ts, &attempts
}

// TestRetryExhaustionWrapChain: when every attempt fails with a typed
// quota rejection, the final error wraps the typed error so both the
// sentinel (errors.Is) and the concrete *Error (errors.As) survive the
// retry layer's wrapping — and the attempt count is policy-bounded.
func TestRetryExhaustionWrapChain(t *testing.T) {
	ts, attempts := quotaServer(t, 1, 0)
	c, err := tdbdriver.NewConnector(ts.URL + "?retry_attempts=2&retry_base_ms=1&retry_max_ms=2")
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Connect(context.Background())
	if err == nil {
		t.Fatal("connect to always-rejecting server succeeded")
	}
	if got := atomic.LoadInt32(attempts); got != 2 {
		t.Errorf("server saw %d attempts, want 2", got)
	}
	if !errors.Is(err, tdbdriver.ErrQuota) {
		t.Errorf("errors.Is(err, ErrQuota) = false through the retry wrap: %v", err)
	}
	var te *tdbdriver.Error
	if !errors.As(err, &te) || te.Code != tdbdriver.CodeQuotaConcurrency {
		t.Errorf("errors.As lost the typed error through the retry wrap: %v", err)
	}
	if !strings.Contains(err.Error(), "giving up after 2 attempts") {
		t.Errorf("final error does not report the attempt count: %v", err)
	}
}

// TestRetryDisabledSurfacesFirstError: retry=off means one attempt, and
// the typed error surfaces unwrapped.
func TestRetryDisabledSurfacesFirstError(t *testing.T) {
	ts, attempts := quotaServer(t, 1, 0)
	c, err := tdbdriver.NewConnector(ts.URL + "?retry=off")
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Connect(context.Background())
	if err == nil {
		t.Fatal("connect succeeded")
	}
	if got := atomic.LoadInt32(attempts); got != 1 {
		t.Errorf("server saw %d attempts, want 1 with retry=off", got)
	}
	if !errors.Is(err, tdbdriver.ErrQuota) {
		t.Errorf("errors.Is(err, ErrQuota) = false: %v", err)
	}
}

// TestRetryHonorsRetryAfter: the server's retry_after_ms advice
// stretches the backoff beyond the policy's own (tiny) base delay.
func TestRetryHonorsRetryAfter(t *testing.T) {
	ts, attempts := quotaServer(t, 300, 1)
	c, err := tdbdriver.NewConnector(ts.URL + "?retry_base_ms=1&retry_max_ms=2")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	conn, err := c.Connect(context.Background())
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer conn.Close()
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Errorf("second attempt after %v, want >= ~300ms per Retry-After advice", elapsed)
	}
	if got := atomic.LoadInt32(attempts); got < 2 {
		t.Errorf("server saw %d attempts, want 2", got)
	}
}

// TestRetryNeverRetriesNonTransient: a typed parse error is not
// transient; the retry layer must surface it on the first attempt.
func TestRetryNeverRetriesNonTransient(t *testing.T) {
	_, url := startServer(t, server.Config{})
	db := openDB(t, url)
	// A parse error round-trips through the full stack once; assert the
	// error is typed and immediate (no multi-second backoff stall).
	start := time.Now()
	_, err := db.Query("this is not quel")
	if err == nil {
		t.Fatal("malformed quel parsed")
	}
	var te *tdbdriver.Error
	if !errors.As(err, &te) || te.Code != tdbdriver.CodeParse {
		t.Fatalf("want typed parse error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("parse error took %v — was it retried?", elapsed)
	}
}

// sseScript serves a canned session + subscribe SSE exchange, for
// protocol-violation tests no honest server would produce.
func sseScript(t *testing.T, events []string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, "/session"):
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"protocol":"v1","session":"s1","tenant":"default","idle_timeout_ms":300000}`)
		case strings.HasSuffix(r.URL.Path, "/subscribe"):
			w.Header().Set("Content-Type", "text/event-stream")
			fl := w.(http.Flusher)
			fmt.Fprint(w, "event: meta\ndata: {\"name\":\"q\",\"mode\":\"incremental\",\"columns\":[{\"name\":\"Name\",\"kind\":\"string\"}],\"resume\":\"q\",\"replay_cap\":8}\n\n")
			fl.Flush()
			for _, ev := range events {
				fmt.Fprint(w, ev)
				fl.Flush()
			}
			<-r.Context().Done()
		default:
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{}`)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func deltaEvent(seq int64, name string) string {
	return fmt.Sprintf("event: deltas\ndata: {\"seq\":%d,\"rows\":[[%q]]}\n\n", seq, name)
}

// TestSeqViolationGap: a server that skips a seq gets a typed
// ErrSeqViolation — the driver never papers over a gap.
func TestSeqViolationGap(t *testing.T) {
	ts := sseScript(t, []string{deltaEvent(1, "a"), deltaEvent(3, "c")})
	c, err := tdbdriver.NewConnector(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(context.Background(), "subscribe ...", 0)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()
	if d, err := sub.Next(); err != nil || d.Seq != 1 {
		t.Fatalf("first delta: %+v, %v", d, err)
	}
	_, err = sub.Next()
	if !errors.Is(err, tdbdriver.ErrSeqViolation) {
		t.Errorf("gap (1 -> 3) error = %v, want ErrSeqViolation", err)
	}
}

// TestSeqViolationDuplicate: a repeated seq is equally fatal — silent
// re-delivery would break exactly-once.
func TestSeqViolationDuplicate(t *testing.T) {
	ts := sseScript(t, []string{deltaEvent(1, "a"), deltaEvent(1, "a")})
	c, err := tdbdriver.NewConnector(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(context.Background(), "subscribe ...", 0)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()
	if _, err := sub.Next(); err != nil {
		t.Fatalf("first delta: %v", err)
	}
	_, err = sub.Next()
	if !errors.Is(err, tdbdriver.ErrSeqViolation) {
		t.Errorf("duplicate seq error = %v, want ErrSeqViolation", err)
	}
}

// feedSecond appends the two frontier-advancers that release exactly
// the pending carol × dave pair — the driver-side twin of the server
// package's second fixture batch. One released pair means one delta
// event, whatever the poll timing.
func feedSecond(t *testing.T, c *tdbdriver.Connector) {
	t.Helper()
	ctx := context.Background()
	for _, app := range []struct {
		rel string
		row []any
	}{
		{"F", []any{"iris", "Full", 60, 65}},
		{"G", []any{"jack", "Full", 61, 66}},
	} {
		if _, err := c.Append(ctx, app.rel, [][]any{app.row}, 0, true); err != nil {
			t.Fatalf("append %s: %v", app.rel, err)
		}
	}
}

// TestChaosAutoResume: a stream severed before delivery heals without
// the caller noticing — Next transparently re-dials with the resume
// token and returns the replayed event exactly once.
func TestChaosAutoResume(t *testing.T) {
	_, url := startServer(t, server.Config{DB: liveDB(t), SubscribePoll: 2 * time.Millisecond})
	c, err := tdbdriver.NewConnector(url)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(context.Background(), overlapSubscribe, 2)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()
	if sub.Meta().Resume == "" {
		t.Fatal("meta carries no resume token")
	}
	if err := fault.Arm("server/subscribe-deliver=error:n=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	feedOverlap(t, c)
	d, err := sub.Next()
	if err != nil {
		t.Fatalf("Next across sever: %v", err)
	}
	if d.Seq != 1 || len(d.Rows) != 1 || d.Rows[0][0] != "alice" {
		t.Errorf("resumed delta %+v, want seq 1 [[alice]]", d)
	}
	if st := sub.Stats(); st.Resumes != 1 || st.LastResumeTime <= 0 {
		t.Errorf("stats %+v, want exactly 1 resume with nonzero latency", st)
	}
}

// TestChaosAutoResumeNoDuplicate: a stream severed after delivery
// resumes past the delivered event — the client sees each seq once.
func TestChaosAutoResumeNoDuplicate(t *testing.T) {
	_, url := startServer(t, server.Config{DB: liveDB(t), SubscribePoll: 2 * time.Millisecond})
	c, err := tdbdriver.NewConnector(url)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(context.Background(), overlapSubscribe, 2)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()
	if err := fault.Arm("server/conn-sever=error:n=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	feedOverlap(t, c)
	d1, err := sub.Next()
	if err != nil || d1.Seq != 1 {
		t.Fatalf("first delta %+v, %v", d1, err)
	}
	feedSecond(t, c)
	d2, err := sub.Next()
	if err != nil {
		t.Fatalf("Next across post-delivery sever: %v", err)
	}
	if d2.Seq != 2 {
		t.Fatalf("second delta seq %d, want 2 (no replay of seq 1)", d2.Seq)
	}
	for _, row := range d2.Rows {
		if row[0] == "alice" {
			t.Errorf("post-resume delta duplicated alice: %+v", d2)
		}
	}
	if st := sub.Stats(); st.Resumes != 1 {
		t.Errorf("stats %+v, want exactly 1 resume", st)
	}
}

// TestAppendDedupOnWire: the connector's generated idempotency keys
// round-trip — an explicit key retried by hand reports the deduped
// replay, proving the append path the retry layer depends on.
func TestAppendDedupOnWire(t *testing.T) {
	_, url := startServer(t, server.Config{DB: liveDB(t)})
	c, err := tdbdriver.NewConnector(url)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, err := c.AppendKeyed(ctx, "F", [][]any{{"kay", "Full", 1, 5}}, 0, true, "wire-key-1")
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if first.Deduped || first.Appended != 1 {
		t.Fatalf("first append %+v", first)
	}
	second, err := c.AppendKeyed(ctx, "F", [][]any{{"kay", "Full", 1, 5}}, 0, true, "wire-key-1")
	if err != nil {
		t.Fatalf("replayed append: %v", err)
	}
	if !second.Deduped || second.Appended != 1 {
		t.Errorf("replayed append %+v, want deduped replay of the original outcome", second)
	}
}

// TestPingReportsReadiness: the ping endpoint exposes the readiness
// state machine to drivers even while draining.
func TestPingReportsReadiness(t *testing.T) {
	s := server.New(server.Config{DB: seededDB(t, 40)})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	url := ts.URL
	resp, err := http.Post(url+"/v1/ping", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var ping struct {
		Protocol string `json:"protocol"`
		Status   string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ping); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ping.Status != "serving" {
		t.Errorf("ping status %q, want serving", ping.Status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(url+"/v1/ping", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("ping after drain: %v", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&ping); err != nil {
		t.Fatal(err)
	}
	if ping.Status != "draining" {
		t.Errorf("post-drain ping status %q, want draining", ping.Status)
	}
}
