package driver

import (
	"database/sql/driver"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"strings"
)

// Rows iterates one result set. String columns scan as string; time
// (chronon) and int columns scan as int64 — chronons up to
// interval.Forever (2^63-2) survive the wire exactly because both ends
// move them as JSON integer literals, never float64.
type Rows struct {
	cols []wireColumn
	rows [][]any
	i    int
}

var (
	_ driver.Rows                           = (*Rows)(nil)
	_ driver.RowsColumnTypeDatabaseTypeName = (*Rows)(nil)
	_ driver.RowsColumnTypeScanType         = (*Rows)(nil)
)

// Columns returns the result column names.
func (r *Rows) Columns() []string {
	out := make([]string, len(r.cols))
	for i, c := range r.cols {
		out[i] = c.Name
	}
	return out
}

// Close releases the buffered rows.
func (r *Rows) Close() error {
	r.rows = nil
	return nil
}

// Next yields the next row, or io.EOF.
func (r *Rows) Next(dest []driver.Value) error {
	if r.i >= len(r.rows) {
		return io.EOF
	}
	row := r.rows[r.i]
	r.i++
	if len(row) != len(dest) {
		return fmt.Errorf("tdb: row arity %d, expected %d", len(row), len(dest))
	}
	for j, cell := range row {
		switch v := cell.(type) {
		case string:
			dest[j] = v
		case json.Number:
			n, err := v.Int64()
			if err != nil {
				return fmt.Errorf("tdb: column %s: %q is not an int64: %w", r.cols[j].Name, v.String(), err)
			}
			dest[j] = n
		default:
			return fmt.Errorf("tdb: column %s: unexpected wire value %T", r.cols[j].Name, cell)
		}
	}
	return nil
}

// ColumnTypeDatabaseTypeName reports STRING, INT or TIME — refined to
// TIME_START / TIME_END on the two columns the schema designates as the
// tuple lifespan interval [ValidFrom, ValidTo).
func (r *Rows) ColumnTypeDatabaseTypeName(i int) string {
	c := r.cols[i]
	if c.Kind == "time" && c.Temporal != "" {
		return "TIME_" + strings.ToUpper(c.Temporal)
	}
	return strings.ToUpper(c.Kind)
}

// ColumnTypeScanType reports string for string columns and int64 for
// time and int columns.
func (r *Rows) ColumnTypeScanType(i int) reflect.Type {
	if r.cols[i].Kind == "string" {
		return reflect.TypeOf("")
	}
	return reflect.TypeOf(int64(0))
}
