package driver

// Error is a typed wire error from the server. Unwrap it with
// errors.As and branch on Code:
//
//	var te *tdbdriver.Error
//	if errors.As(err, &te) && te.Code == tdbdriver.CodeQuotaConcurrency { ... }
type Error struct {
	Code    string
	Message string
}

func (e *Error) Error() string { return "tdb: " + e.Code + ": " + e.Message }

// Wire error codes — the protocol's error vocabulary, mirrored from the
// server (the conformance suite pins the two sets together).
const (
	CodeBadRequest       = "bad_request"        // malformed request body or missing field
	CodeParse            = "parse_error"        // quel text did not parse
	CodeTranslate        = "translate_error"    // semantic analysis failed
	CodeBind             = "bind_error"         // parameter arity or kind mismatch
	CodePlan             = "plan_error"         // optimization failed
	CodeExec             = "exec_error"         // execution failed
	CodeCanceled         = "canceled"           // the context canceled a running query
	CodeUnknownSession   = "unknown_session"    // session not open (or idle-expired)
	CodeUnknownStatement = "unknown_statement"  // prepared-statement id not found
	CodeUnknownTenant    = "unknown_tenant"     // tenant not configured
	CodeUnknownRelation  = "unknown_relation"   // append target not in the catalog
	CodeQuotaConcurrency = "quota_concurrency"  // tenant at MaxConcurrent and queue full
	CodeQueueTimeout     = "queue_timeout"      // queued past the tenant's QueueTimeout
	CodeDeclined         = "subscribe_declined" // standing query declined admission
	CodeBreakerOpen      = "breaker_open"       // standing query's workspace breaker tripped
	CodeDraining         = "draining"           // server is shutting down
	CodeLateTuple        = "late_tuple"         // append behind the relation's watermark
)
