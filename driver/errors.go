package driver

import "errors"

// Error is a typed wire error from the server. Unwrap it with
// errors.As and branch on Code:
//
//	var te *tdbdriver.Error
//	if errors.As(err, &te) && te.Code == tdbdriver.CodeQuotaConcurrency { ... }
//
// The common operational codes also match sentinel errors through
// errors.Is — even when the retry layer has wrapped the error:
//
//	if errors.Is(err, tdbdriver.ErrQuota) { ... }
type Error struct {
	Code    string
	Message string
	// RetryAfterMS is the server's backoff advice when positive (quota
	// and drain rejections carry it); the retry layer honors it.
	RetryAfterMS int64
}

func (e *Error) Error() string { return "tdb: " + e.Code + ": " + e.Message }

// Is matches the operational sentinels, so errors.Is works across the
// retry layer's wrapping.
func (e *Error) Is(target error) bool {
	switch target {
	case ErrQuota:
		return e.Code == CodeQuotaConcurrency
	case ErrQueueTimeout:
		return e.Code == CodeQueueTimeout
	case ErrDraining:
		return e.Code == CodeDraining
	case ErrSessionExpired:
		return e.Code == CodeSessionExpired
	case ErrResumeHorizon:
		return e.Code == CodeResumeHorizon
	}
	return false
}

// Sentinel errors for the operational wire codes a caller most often
// branches on. They match via errors.Is through any wrapping.
var (
	// ErrQuota: the tenant is at MaxConcurrent and its queue is full.
	ErrQuota = errors.New("tdb: tenant concurrency quota exceeded")
	// ErrQueueTimeout: the request queued past the tenant's QueueTimeout.
	ErrQueueTimeout = errors.New("tdb: admission queue timeout")
	// ErrDraining: the server is shutting down.
	ErrDraining = errors.New("tdb: server draining")
	// ErrSessionExpired: the session idle-expired while a request was in
	// flight.
	ErrSessionExpired = errors.New("tdb: session expired")
	// ErrResumeHorizon: the subscription resume point fell behind the
	// server's bounded replay ring — continuing would silently skip
	// deltas, so the stream fails loudly instead.
	ErrResumeHorizon = errors.New("tdb: resume past replay horizon")
	// ErrSeqViolation: the server sent a delta batch whose seq is not
	// exactly lastSeq+1 — a duplicate, gap, or reorder the driver refuses
	// to paper over.
	ErrSeqViolation = errors.New("tdb: delta sequence violation")
)

// Wire error codes — the protocol's error vocabulary, mirrored from the
// server (the conformance suite pins the two sets together).
const (
	CodeBadRequest       = "bad_request"        // malformed request body or missing field
	CodeParse            = "parse_error"        // quel text did not parse
	CodeTranslate        = "translate_error"    // semantic analysis failed
	CodeBind             = "bind_error"         // parameter arity or kind mismatch
	CodePlan             = "plan_error"         // optimization failed
	CodeExec             = "exec_error"         // execution failed
	CodeCanceled         = "canceled"           // the context canceled a running query
	CodeUnknownSession   = "unknown_session"    // session not open (or idle-expired)
	CodeUnknownStatement = "unknown_statement"  // prepared-statement id not found
	CodeUnknownTenant    = "unknown_tenant"     // tenant not configured
	CodeUnknownRelation  = "unknown_relation"   // append target not in the catalog
	CodeQuotaConcurrency = "quota_concurrency"  // tenant at MaxConcurrent and queue full
	CodeQueueTimeout     = "queue_timeout"      // queued past the tenant's QueueTimeout
	CodeDeclined         = "subscribe_declined" // standing query declined admission
	CodeBreakerOpen      = "breaker_open"       // standing query's workspace breaker tripped
	CodeDraining         = "draining"           // server is shutting down
	CodeLateTuple        = "late_tuple"         // append behind the relation's watermark
	CodeSessionExpired   = "session_expired"    // session idle-expired mid-request
	CodeResumeHorizon    = "resume_horizon"     // replay ring evicted the resume seq
	CodeUnknownResume    = "unknown_resume"     // resume token not registered (restart or teardown)
)
