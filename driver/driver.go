// Package driver is a database/sql driver for the tdb temporal query
// server. It speaks the versioned JSON-over-HTTP wire protocol served
// by internal/server (and `tdb -listen`):
//
//	import (
//		"database/sql"
//		_ "tdb/driver"
//	)
//
//	db, err := sql.Open("tdb", "http://127.0.0.1:7171?tenant=research")
//	rows, err := db.Query(`range of f is Faculty
//	    retrieve (f.Name, f.ValidFrom, f.ValidTo) where f.Rank = $1`, "Full")
//
// Each driver connection is one server session: prepared statements,
// "retrieve into" results and idle expiry are scoped to it. Time
// (chronon) columns scan as int64 and report TIME — or TIME_START /
// TIME_END for the two columns the schema designates as the tuple
// lifespan endpoints — via sql.ColumnType.DatabaseTypeName. Parameters
// bind quel placeholders $1…$N in order; strings bind string values,
// integers bind chronons. Query contexts propagate: canceling a context
// aborts the HTTP request AND interrupts the query server-side.
//
// Beyond database/sql, Connector exposes the streaming half of the
// protocol: Subscribe admits a standing temporal query and returns its
// incremental delta stream, and Append ingests rows into live relations.
package driver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"net/http"
	"net/url"
	"strings"
)

func init() { sql.Register("tdb", Driver{}) }

// Driver opens connections to a tdb query server. DSNs are the server's
// base URL with an optional tenant: "http://host:port?tenant=name".
type Driver struct{}

// Open dials the server and opens one session.
func (d Driver) Open(dsn string) (driver.Conn, error) {
	c, err := NewConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector parses the DSN once for the pool to reuse.
func (d Driver) OpenConnector(dsn string) (driver.Connector, error) {
	return NewConnector(dsn)
}

// Connector dials one tdb server under one tenant. It also carries the
// protocol extensions database/sql has no surface for: Subscribe and
// Append — and the retry policy every request runs under.
type Connector struct {
	base   string
	tenant string
	hc     *http.Client
	retry  RetryPolicy
}

// NewConnector parses a DSN of the form "http://host:port?tenant=name".
// Retry tuning rides in the query string: retry=off disables the retry
// layer (and subscription auto-resume); retry_attempts, retry_base_ms,
// retry_max_ms and retry_budget_ms reshape the backoff.
func NewConnector(dsn string) (*Connector, error) {
	u, err := url.Parse(dsn)
	if err != nil {
		return nil, fmt.Errorf("tdb: bad DSN %q: %w", dsn, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("tdb: DSN %q: scheme must be http or https", dsn)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("tdb: DSN %q has no host", dsn)
	}
	if p := strings.TrimSuffix(u.Path, "/"); p != "" {
		return nil, fmt.Errorf("tdb: DSN %q: the server lives at the URL root, not %q", dsn, u.Path)
	}
	retry, err := parseRetryDSN(u.Query(), defaultRetryPolicy())
	if err != nil {
		return nil, fmt.Errorf("tdb: DSN %q: %w", dsn, err)
	}
	return &Connector{
		base:   u.Scheme + "://" + u.Host,
		tenant: u.Query().Get("tenant"),
		hc:     &http.Client{},
		retry:  retry,
	}, nil
}

// Driver returns the shared Driver.
func (c *Connector) Driver() driver.Driver { return Driver{} }

// Connect opens one server session.
func (c *Connector) Connect(ctx context.Context) (driver.Conn, error) {
	var resp sessionOpenResponse
	if err := c.post(ctx, "session", sessionOpenRequest{Tenant: c.tenant}, &resp); err != nil {
		return nil, err
	}
	if resp.Protocol != protocolVersion {
		return nil, fmt.Errorf("tdb: server speaks protocol %q, driver speaks %q", resp.Protocol, protocolVersion)
	}
	return &Conn{c: c, session: resp.Session}, nil
}

// Append ingests rows into a live relation, promoting it to live
// ingestion (reorder slack = slack chronons) on first use. Cell values
// follow the relation's schema: strings for string columns, int/int64
// for time and int columns. flush drains the reorder buffer afterwards,
// releasing every buffered row to storage and the standing queries.
//
// Each call travels under a generated idempotency key, so the retry
// layer may safely replay it after an ambiguous failure: the server
// remembers the outcome and never applies the rows twice. Use
// AppendKeyed to control the key (application-level exactly-once across
// process restarts) or to send an unkeyed, never-retried append.
func (c *Connector) Append(ctx context.Context, relation string, rows [][]any, slack int64, flush bool) (AppendResult, error) {
	return c.AppendKeyed(ctx, relation, rows, slack, flush, newIdemKey())
}

// AppendKeyed is Append with an explicit idempotency key. An empty key
// sends the append unkeyed and disables retries for it — repeating an
// unkeyed append could double-apply rows.
func (c *Connector) AppendKeyed(ctx context.Context, relation string, rows [][]any, slack int64, flush bool, key string) (AppendResult, error) {
	var resp AppendResult
	req := appendRequest{
		Tenant: c.tenant, Relation: relation, Rows: rows, Slack: slack, Flush: flush, IdemKey: key,
	}
	var err error
	if key == "" {
		err = c.postOnce(ctx, "append", req, &resp)
	} else {
		err = c.post(ctx, "append", req, &resp)
	}
	return resp, err
}

// AppendResult reports one append batch: rows accepted, the relation's
// reorder watermark, rows still buffered, and total rows released to
// storage. Deduped marks a replayed outcome: the idempotency key had
// already been applied, so this call appended nothing new.
type AppendResult struct {
	Appended  int   `json:"appended"`
	Watermark int64 `json:"watermark"`
	Buffered  int   `json:"buffered"`
	Released  int64 `json:"released"`
	Deduped   bool  `json:"deduped,omitempty"`
}
