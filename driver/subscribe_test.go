package driver_test

import (
	"context"
	"database/sql"
	"errors"
	"reflect"
	"testing"
	"time"

	tdbdriver "tdb/driver"
	"tdb/internal/engine"
	"tdb/internal/fault"
	"tdb/internal/live"
	"tdb/internal/relation"
	"tdb/internal/server"
	"tdb/internal/workload"
)

func liveDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.NewDB()
	db.MustRegister(relation.New("F", workload.FacultySchema))
	db.MustRegister(relation.New("G", workload.FacultySchema))
	return db
}

const overlapSubscribe = `
range of f is F
range of g is G
subscribe watch (Name=f.Name) where (f overlap g)
`

// feedOverlap appends the canonical fixture: alice × bob is the one
// overlapping pair; carol and dave advance both input frontiers past it
// so the stream operator may emit (their own pair stays below the
// frontier and is never released).
func feedOverlap(t *testing.T, c *tdbdriver.Connector) {
	t.Helper()
	ctx := context.Background()
	for _, app := range []struct {
		rel string
		row []any
	}{
		{"F", []any{"alice", "Assistant", 1, 10}},
		{"G", []any{"bob", "Full", 2, 8}},
		{"F", []any{"carol", "Full", 20, 25}},
		{"G", []any{"dave", "Full", 21, 26}},
	} {
		res, err := c.Append(ctx, app.rel, [][]any{app.row}, 0, true)
		if err != nil {
			t.Fatalf("append %s: %v", app.rel, err)
		}
		if res.Appended != 1 {
			t.Fatalf("append %s accepted %d rows", app.rel, res.Appended)
		}
	}
}

// TestSubscribeStreamsVerifiedDeltas: the subscription extension
// streams exactly the standing query's recorded emission prefix, and
// the server-side delta contract (Verify) holds over the stream.
func TestSubscribeStreamsVerifiedDeltas(t *testing.T) {
	s, url := startServer(t, server.Config{DB: liveDB(t), SubscribePoll: 5 * time.Millisecond})
	c, err := tdbdriver.NewConnector(url)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(context.Background(), overlapSubscribe, 5)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()

	meta := sub.Meta()
	if meta.Mode != "incremental" {
		t.Errorf("mode %q, want incremental", meta.Mode)
	}
	if len(meta.Columns) == 0 || meta.Columns[0].Name != "Name" {
		t.Errorf("meta columns = %+v", meta.Columns)
	}

	feedOverlap(t, c)
	d, err := sub.Next()
	if err != nil {
		t.Fatalf("next: %v", err)
	}
	if d.Seq != 1 || !reflect.DeepEqual(d.Rows, [][]any{{"alice"}}) {
		t.Fatalf("deltas = %+v, want seq 1 [[alice]]", d)
	}

	// The streamed rows are a prefix of the standing query's recorded
	// deltas, and the delta contract holds against a batch reference.
	if err := s.WithLive(func(m *live.Manager) error {
		qs := m.Queries()
		if len(qs) != 1 {
			t.Fatalf("%d standing queries registered", len(qs))
		}
		deltas := qs[0].Deltas()
		if len(deltas) < 1 || deltas[0][0].AsString() != "alice" {
			t.Errorf("recorded deltas = %v", deltas)
		}
		if _, _, err := qs[0].Verify(); err != nil {
			t.Errorf("delta contract: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeDrain: server shutdown ends the stream with ErrDrained,
// never an abrupt cut.
func TestSubscribeDrain(t *testing.T) {
	s, url := startServer(t, server.Config{DB: liveDB(t), SubscribePoll: 5 * time.Millisecond})
	c, err := tdbdriver.NewConnector(url)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(context.Background(), overlapSubscribe, 5)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()
	done := make(chan error, 1)
	go func() {
		_, err := sub.Next()
		done <- err
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, tdbdriver.ErrDrained) {
			t.Errorf("Next after shutdown = %v, want ErrDrained", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription survived the drain")
	}
}

// TestChaosTornWrite: a torn server write surfaces as a hard client
// error — never a silent partial result — and the next query is whole.
// retry=off pins the single-attempt contract; the retry layer would
// heal the tear (TestRetryHealsTornWrite covers that).
func TestChaosTornWrite(t *testing.T) {
	_, url := startServer(t, server.Config{})
	db := openDB(t, url+"?retry=off")
	if err := fault.Arm("server/wire-write=torn:n=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	rows, err := db.Query(`range of f is Faculty retrieve (f.Name) where f.Rank = "Full"`)
	if err == nil {
		// The tear may land mid-body: then the error surfaces at scan.
		n := len(scanAllLenient(rows))
		rows.Close()
		t.Fatalf("torn response parsed as a complete result (%d rows)", n)
	}

	got, err := db.Query(`range of f is Faculty retrieve (f.Name) where f.Rank = "Full"`)
	if err != nil {
		t.Fatalf("query after torn write: %v", err)
	}
	defer got.Close()
	if n := len(scanAll(t, got)); n == 0 {
		t.Error("recovered query returned no rows")
	}
}

// TestChaosSubscribeSever: an armed delivery fault severs the stream
// with a detectable transport error before any poisoned delta.
// retry=off disables auto-resume so the sever stays observable
// (TestChaosAutoResume covers the healed path).
func TestChaosSubscribeSever(t *testing.T) {
	_, url := startServer(t, server.Config{DB: liveDB(t), SubscribePoll: 5 * time.Millisecond})
	c, err := tdbdriver.NewConnector(url + "?retry=off")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(context.Background(), overlapSubscribe, 5)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()
	if err := fault.Arm("server/subscribe-deliver=error:n=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	feedOverlap(t, c)
	if d, err := sub.Next(); err == nil {
		t.Fatalf("stream delivered %+v past the armed delivery fault", d)
	}
}

// scanAllLenient drains rows as strings, ignoring scan errors — used
// only to count what a torn response yielded.
func scanAllLenient(rows *sql.Rows) [][]any {
	var out [][]any
	cols, err := rows.Columns()
	if err != nil {
		return out
	}
	for rows.Next() {
		ptrs := make([]any, len(cols))
		for i := range ptrs {
			ptrs[i] = new(any)
		}
		if rows.Scan(ptrs...) == nil {
			out = append(out, ptrs)
		}
	}
	return out
}
