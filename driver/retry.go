package driver

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	mrand "math/rand"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// RetryPolicy shapes the driver's automatic retries: exponential
// backoff with jitter, capped per attempt and bounded by a total time
// budget. The context deadline always wins over the budget.
//
// Only safe operations retry. Queries, prepares and pings are
// idempotent by construction; appends retry only when they travel under
// an idempotency key (Connector.Append generates one per call), so a
// replayed request can never double-apply rows. Typed server errors
// retry only when the server marked them transient (quota rejections,
// queue timeouts, draining) — and then the server's Retry-After advice
// stretches the backoff.
type RetryPolicy struct {
	// MaxAttempts bounds total tries, first included (default 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 1s).
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt (default 2).
	Multiplier float64
	// Jitter randomizes each delay by ±Jitter fraction (default 0.2).
	Jitter float64
	// Budget bounds the total time spent across attempts and sleeps
	// (default 5s). Zero means "use the default"; retries never outlive
	// the request context either way.
	Budget time.Duration
	// Disabled turns the retry layer off: every error surfaces on the
	// first attempt, and subscriptions do not auto-resume.
	Disabled bool
}

func defaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   25 * time.Millisecond,
		MaxDelay:    time.Second,
		Multiplier:  2,
		Jitter:      0.2,
		Budget:      5 * time.Second,
	}
}

// parseRetryDSN folds retry DSN parameters into a policy: retry=off,
// retry_attempts, retry_base_ms, retry_max_ms, retry_budget_ms.
func parseRetryDSN(q url.Values, p RetryPolicy) (RetryPolicy, error) {
	if v := q.Get("retry"); v != "" {
		switch v {
		case "off":
			p.Disabled = true
		case "on":
			p.Disabled = false
		default:
			return p, fmt.Errorf("retry=%q (want on or off)", v)
		}
	}
	ints := []struct {
		key string
		set func(int64)
	}{
		{"retry_attempts", func(n int64) { p.MaxAttempts = int(n) }},
		{"retry_base_ms", func(n int64) { p.BaseDelay = time.Duration(n) * time.Millisecond }},
		{"retry_max_ms", func(n int64) { p.MaxDelay = time.Duration(n) * time.Millisecond }},
		{"retry_budget_ms", func(n int64) { p.Budget = time.Duration(n) * time.Millisecond }},
	}
	for _, it := range ints {
		v := q.Get(it.key)
		if v == "" {
			continue
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			return p, fmt.Errorf("%s=%q (want a positive integer)", it.key, v)
		}
		it.set(n)
	}
	return p, nil
}

// jitterSource randomizes backoff without seeding from the global
// generator; deterministic seeding keeps test runs reproducible.
var jitterSource = struct {
	mu sync.Mutex
	r  *mrand.Rand
}{r: mrand.New(mrand.NewSource(1))}

func jitterFloat() float64 {
	jitterSource.mu.Lock()
	defer jitterSource.mu.Unlock()
	return jitterSource.r.Float64()
}

// backoffDelay computes the sleep before retry number attempt (0-based
// count of completed attempts), honoring the server's Retry-After
// advice as a floor.
func (p RetryPolicy) backoffDelay(attempt int, retryAfter time.Duration) time.Duration {
	d := float64(p.BaseDelay)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
	}
	if max := float64(p.MaxDelay); d > max {
		d = max
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*jitterFloat()-1)
	}
	delay := time.Duration(d)
	if retryAfter > delay {
		delay = retryAfter
	}
	return delay
}

// retryable classifies an attempt's error: transient server rejections
// and transport/decode failures retry; context cancellation and every
// other typed code do not. The second result is the server's
// Retry-After advice.
func retryable(err error) (bool, time.Duration) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, 0
	}
	var te *Error
	if errors.As(err, &te) {
		switch te.Code {
		case CodeQuotaConcurrency, CodeQueueTimeout, CodeDraining:
			return true, time.Duration(te.RetryAfterMS) * time.Millisecond
		}
		return false, 0
	}
	// Transport or decode failure: the connection died, the response was
	// torn, or the dial failed — all worth another attempt.
	return true, 0
}

// withRetry runs op under the policy. op must be safe to repeat; the
// callers gate that (appends only pass keyed requests through here).
// The returned error wraps the last attempt's error with %w, so
// errors.Is / errors.As see through the retry layer.
func (c *Connector) withRetry(ctx context.Context, label string, op func() error) error {
	p := c.retry
	if p.Disabled {
		return op()
	}
	start := time.Now()
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil {
			return nil
		}
		ok, retryAfter := retryable(err)
		if !ok {
			return err
		}
		if attempt+1 >= p.MaxAttempts {
			return fmt.Errorf("tdb: %s: giving up after %d attempts: %w", label, attempt+1, err)
		}
		delay := p.backoffDelay(attempt, retryAfter)
		if elapsed := time.Since(start); elapsed+delay > p.Budget {
			return fmt.Errorf("tdb: %s: retry budget %v exhausted after %d attempts: %w", label, p.Budget, attempt+1, err)
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("tdb: %s: %w (after %d attempts: %v)", label, ctx.Err(), attempt+1, err)
		case <-t.C:
		}
	}
}

// newIdemKey generates a client-side append idempotency key: 128 random
// bits, unguessable and collision-free for any realistic retry window.
func newIdemKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to the
		// jitter source rather than sending appends unkeyed.
		jitterSource.mu.Lock()
		for i := range b {
			b[i] = byte(jitterSource.r.Intn(256))
		}
		jitterSource.mu.Unlock()
	}
	return hex.EncodeToString(b[:])
}
