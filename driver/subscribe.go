package driver

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"
)

// ErrDrained is returned by Subscription.Next once the server announced
// shutdown: the stream ended cleanly and no deltas were lost up to the
// drain point.
var ErrDrained = errors.New("tdb: subscription drained (server shutting down)")

// Meta describes an admitted standing query: the server-scoped name,
// the evaluation mode ("incremental" or "batch"), the admission explain
// note, the delta row schema, and the resume surface (the token a
// reconnect presents, and how many events the server's replay ring
// retains behind the stream head).
type Meta struct {
	Name      string
	Mode      string
	Explain   string
	Columns   []Column
	Resume    string
	ReplayCap int
}

// Column is one delta column: its name, kind ("string", "time", "int"),
// and — on the two lifespan-endpoint columns — "start" or "end".
type Column struct {
	Name     string
	Kind     string
	Temporal string
}

// Deltas is one batch of incremental result rows. Seq numbers batches
// from 1 with no gaps, so a client can detect a lost event. Cells are
// string or int64 following the Meta column kinds.
type Deltas struct {
	Seq  int64
	Rows [][]any
}

// Stats reports a subscription's resilience counters: how many times
// the stream auto-resumed after a transport failure, and the time the
// reconnects took (wall clock from detecting the failure to the resumed
// stream's meta event).
type Stats struct {
	Resumes         int
	LastResumeTime  time.Duration
	TotalResumeTime time.Duration
}

// Subscription is a standing temporal query's delta stream — the
// protocol extension database/sql has no surface for. Obtain one from
// Connector.Subscribe; read with Next; Close cancels the server-side
// standing query.
//
// Unless the connector's retry layer is disabled, a subscription
// survives transport failures: Next re-dials with the server's resume
// token and the last delivered seq, the server replays exactly the
// missed events from its bounded ring, and delivery stays exactly-once.
// Next enforces that invariant — a duplicate, gap, or reorder from a
// misbehaving server is a typed ErrSeqViolation, never silently
// repaired. A resume that falls behind the replay ring surfaces as
// ErrResumeHorizon; a server that lost the subscription (restart)
// surfaces the typed unknown_resume error. Both are terminal: the
// caller decides whether to re-subscribe from scratch.
type Subscription struct {
	c       *Connector
	ctx     context.Context
	meta    Meta
	session string
	token   string
	lastSeq int64
	stats   Stats

	br     *bufio.Reader
	body   io.ReadCloser
	cancel context.CancelFunc
	closed bool
}

// Subscribe admits the quel subscribe statement as a standing query on
// a dedicated session and streams its deltas. pollMS overrides the
// server's poll cadence when positive. The stream lives until Close,
// ctx cancellation, a terminal server error, or server drain; transport
// failures in between auto-resume (see Subscription).
func (c *Connector) Subscribe(ctx context.Context, quel string, pollMS int64) (*Subscription, error) {
	var sess sessionOpenResponse
	if err := c.post(ctx, "session", sessionOpenRequest{Tenant: c.tenant}, &sess); err != nil {
		return nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	sub := &Subscription{c: c, ctx: sctx, cancel: cancel, session: sess.Session}
	err := sub.dial(subscribeRequest{Session: sess.Session, Quel: quel, PollMS: pollMS})
	if err != nil {
		sub.teardown()
		return nil, err
	}
	return sub, nil
}

// dial opens one subscribe stream (fresh or resume) and consumes its
// meta event, swapping the subscription onto the new connection.
func (s *Subscription) dial(req subscribeRequest) error {
	resp, err := s.c.roundTrip(s.ctx, "subscribe", req)
	if err != nil {
		return err
	}
	if err := checkStatus(resp); err != nil {
		_ = resp.Body.Close()
		return err
	}
	br := bufio.NewReader(resp.Body)
	ev, data, err := readEvent(br)
	if err != nil {
		_ = resp.Body.Close()
		return fmt.Errorf("tdb: subscribe: reading meta event: %w", err)
	}
	if ev != "meta" {
		_ = resp.Body.Close()
		return fmt.Errorf("tdb: subscribe: first event is %q, want meta", ev)
	}
	var m subscribeMeta
	if err := json.Unmarshal(data, &m); err != nil {
		_ = resp.Body.Close()
		return fmt.Errorf("tdb: subscribe: decoding meta: %w", err)
	}
	if s.body != nil {
		_ = s.body.Close()
	}
	s.body = resp.Body
	s.br = br
	s.token = m.Resume
	s.meta = Meta{Name: m.Name, Mode: m.Mode, Explain: m.Explain, Resume: m.Resume, ReplayCap: m.ReplayCap}
	for _, c := range m.Columns {
		s.meta.Columns = append(s.meta.Columns, Column(c))
	}
	return nil
}

// Meta returns the standing query's admission metadata.
func (s *Subscription) Meta() Meta { return s.meta }

// Stats returns the subscription's resilience counters.
func (s *Subscription) Stats() Stats { return s.stats }

// Next blocks for the next delta batch. It returns ErrDrained after a
// server drain and a typed *Error after a server-reported terminal
// condition (the workspace breaker opening, a resume falling past the
// replay horizon). A transport failure triggers auto-resume — only when
// that fails does the transport error surface. Every delivered batch
// has seq exactly lastSeq+1; anything else is ErrSeqViolation.
func (s *Subscription) Next() (Deltas, error) {
	for {
		d, err := s.nextEvent()
		if err == nil {
			if d.Seq != s.lastSeq+1 {
				kind := "gap"
				if d.Seq <= s.lastSeq {
					kind = "duplicate or reorder"
				}
				return Deltas{}, fmt.Errorf("tdb: delta seq %d after %d (%s): %w", d.Seq, s.lastSeq, kind, ErrSeqViolation)
			}
			s.lastSeq = d.Seq
			return d, nil
		}
		var te *Error
		if errors.As(err, &te) || errors.Is(err, ErrDrained) || errors.Is(err, ErrSeqViolation) {
			return Deltas{}, err // server-reported or protocol violation: terminal
		}
		if s.closed || s.c.retry.Disabled || s.token == "" || s.ctx.Err() != nil {
			return Deltas{}, err
		}
		if rerr := s.resume(); rerr != nil {
			return Deltas{}, rerr
		}
	}
}

// nextEvent reads one stream event and maps it like the pre-resume
// protocol: deltas decode, drain is ErrDrained, error events carry the
// typed code.
func (s *Subscription) nextEvent() (Deltas, error) {
	ev, data, err := readEvent(s.br)
	if err != nil {
		return Deltas{}, fmt.Errorf("tdb: subscription stream: %w", err)
	}
	switch ev {
	case "deltas":
		var d subscribeDeltas
		dec := json.NewDecoder(strings.NewReader(string(data)))
		dec.UseNumber()
		if err := dec.Decode(&d); err != nil {
			return Deltas{}, fmt.Errorf("tdb: decoding deltas: %w", err)
		}
		out := Deltas{Seq: d.Seq, Rows: make([][]any, len(d.Rows))}
		for i, row := range d.Rows {
			vals := make([]any, len(row))
			for j, cell := range row {
				switch v := cell.(type) {
				case string:
					vals[j] = v
				case json.Number:
					n, err := v.Int64()
					if err != nil {
						return Deltas{}, fmt.Errorf("tdb: delta cell %q is not an int64: %w", v.String(), err)
					}
					vals[j] = n
				default:
					return Deltas{}, fmt.Errorf("tdb: unexpected delta cell %T", cell)
				}
			}
			out.Rows[i] = vals
		}
		return out, nil
	case "drain":
		return Deltas{}, ErrDrained
	case "error":
		var we struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal(data, &we); err != nil || we.Code == "" {
			return Deltas{}, fmt.Errorf("tdb: malformed stream error event: %s", data)
		}
		return Deltas{}, &Error{Code: we.Code, Message: we.Message}
	default:
		return Deltas{}, fmt.Errorf("tdb: unexpected stream event %q", ev)
	}
}

// resume re-dials the stream with the resume token and last delivered
// seq, under the connector's backoff policy. Typed server errors are
// terminal immediately (retrying a resume_horizon cannot help); only
// transport failures burn further attempts.
func (s *Subscription) resume() error {
	p := s.c.retry
	start := time.Now()
	var err error
	for attempt := 0; ; attempt++ {
		err = s.dial(subscribeRequest{Session: s.session, Resume: s.token, AfterSeq: s.lastSeq})
		if err == nil {
			s.stats.Resumes++
			s.stats.LastResumeTime = time.Since(start)
			s.stats.TotalResumeTime += s.stats.LastResumeTime
			return nil
		}
		ok, retryAfter := retryable(err)
		if !ok {
			return err
		}
		if attempt+1 >= p.MaxAttempts {
			return fmt.Errorf("tdb: resume: giving up after %d attempts: %w", attempt+1, err)
		}
		delay := p.backoffDelay(attempt, retryAfter)
		if elapsed := time.Since(start); elapsed+delay > p.Budget {
			return fmt.Errorf("tdb: resume: retry budget %v exhausted after %d attempts: %w", p.Budget, attempt+1, err)
		}
		t := time.NewTimer(delay)
		select {
		case <-s.ctx.Done():
			t.Stop()
			return fmt.Errorf("tdb: resume: %w (after %d attempts: %v)", s.ctx.Err(), attempt+1, err)
		case <-t.C:
		}
	}
}

// teardown cancels the stream context, closes any open body, and closes
// the dedicated session.
func (s *Subscription) teardown() {
	s.cancel()
	if s.body != nil {
		_ = s.body.Close()
	}
	_ = s.c.post(context.Background(), "session/close", sessionCloseRequest{Session: s.session}, nil)
}

// Close cancels the stream; the server deregisters the standing query
// with the session.
func (s *Subscription) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.teardown()
	return nil
}

// readEvent parses one server-sent event (event: + data: lines up to a
// blank line).
func readEvent(br *bufio.Reader) (event string, data []byte, err error) {
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return "", nil, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "" && event != "":
			return event, data, nil
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
}
