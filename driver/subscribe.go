package driver

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// ErrDrained is returned by Subscription.Next once the server announced
// shutdown: the stream ended cleanly and no deltas were lost up to the
// drain point.
var ErrDrained = errors.New("tdb: subscription drained (server shutting down)")

// Meta describes an admitted standing query: the server-scoped name,
// the evaluation mode ("incremental" or "batch"), the admission explain
// note, and the delta row schema.
type Meta struct {
	Name    string
	Mode    string
	Explain string
	Columns []Column
}

// Column is one delta column: its name, kind ("string", "time", "int"),
// and — on the two lifespan-endpoint columns — "start" or "end".
type Column struct {
	Name     string
	Kind     string
	Temporal string
}

// Deltas is one batch of incremental result rows. Seq numbers batches
// from 1 with no gaps, so a client can detect a lost event. Cells are
// string or int64 following the Meta column kinds.
type Deltas struct {
	Seq  int64
	Rows [][]any
}

// Subscription is a standing temporal query's delta stream — the
// protocol extension database/sql has no surface for. Obtain one from
// Connector.Subscribe; read with Next; Close cancels the server-side
// standing query.
type Subscription struct {
	meta    Meta
	br      *bufio.Reader
	cancel  context.CancelFunc
	close   func()
	session string
}

// Subscribe admits the quel subscribe statement as a standing query on
// a dedicated session and streams its deltas. pollMS overrides the
// server's poll cadence when positive. The stream lives until Close,
// ctx cancellation, a server error, or server drain.
func (c *Connector) Subscribe(ctx context.Context, quel string, pollMS int64) (*Subscription, error) {
	var sess sessionOpenResponse
	if err := c.post(ctx, "session", sessionOpenRequest{Tenant: c.tenant}, &sess); err != nil {
		return nil, err
	}
	closeSession := func() {
		_ = c.post(context.Background(), "session/close", sessionCloseRequest{Session: sess.Session}, nil)
	}
	sctx, cancel := context.WithCancel(ctx)
	resp, err := c.roundTrip(sctx, "subscribe", subscribeRequest{
		Session: sess.Session, Quel: quel, PollMS: pollMS,
	})
	if err != nil {
		cancel()
		closeSession()
		return nil, err
	}
	if err := checkStatus(resp); err != nil {
		_ = resp.Body.Close()
		cancel()
		closeSession()
		return nil, err
	}
	sub := &Subscription{
		br:      bufio.NewReader(resp.Body),
		cancel:  cancel,
		session: sess.Session,
		close: func() {
			cancel()
			_ = resp.Body.Close()
			closeSession()
		},
	}
	ev, data, err := sub.readEvent()
	if err != nil {
		sub.close()
		return nil, fmt.Errorf("tdb: subscribe: reading meta event: %w", err)
	}
	if ev != "meta" {
		sub.close()
		return nil, fmt.Errorf("tdb: subscribe: first event is %q, want meta", ev)
	}
	var m subscribeMeta
	if err := json.Unmarshal(data, &m); err != nil {
		sub.close()
		return nil, fmt.Errorf("tdb: subscribe: decoding meta: %w", err)
	}
	sub.meta = Meta{Name: m.Name, Mode: m.Mode, Explain: m.Explain}
	for _, c := range m.Columns {
		sub.meta.Columns = append(sub.meta.Columns, Column(c))
	}
	return sub, nil
}

// Meta returns the standing query's admission metadata.
func (s *Subscription) Meta() Meta { return s.meta }

// Next blocks for the next delta batch. It returns ErrDrained after a
// server drain, a typed *Error after a server-reported stream error
// (the workspace breaker opening included), and the transport error —
// never a fabricated result — if the stream dies abruptly.
func (s *Subscription) Next() (Deltas, error) {
	ev, data, err := s.readEvent()
	if err != nil {
		return Deltas{}, fmt.Errorf("tdb: subscription stream: %w", err)
	}
	switch ev {
	case "deltas":
		var d subscribeDeltas
		dec := json.NewDecoder(strings.NewReader(string(data)))
		dec.UseNumber()
		if err := dec.Decode(&d); err != nil {
			return Deltas{}, fmt.Errorf("tdb: decoding deltas: %w", err)
		}
		out := Deltas{Seq: d.Seq, Rows: make([][]any, len(d.Rows))}
		for i, row := range d.Rows {
			vals := make([]any, len(row))
			for j, cell := range row {
				switch v := cell.(type) {
				case string:
					vals[j] = v
				case json.Number:
					n, err := v.Int64()
					if err != nil {
						return Deltas{}, fmt.Errorf("tdb: delta cell %q is not an int64: %w", v.String(), err)
					}
					vals[j] = n
				default:
					return Deltas{}, fmt.Errorf("tdb: unexpected delta cell %T", cell)
				}
			}
			out.Rows[i] = vals
		}
		return out, nil
	case "drain":
		return Deltas{}, ErrDrained
	case "error":
		var we struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal(data, &we); err != nil || we.Code == "" {
			return Deltas{}, fmt.Errorf("tdb: malformed stream error event: %s", data)
		}
		return Deltas{}, &Error{Code: we.Code, Message: we.Message}
	default:
		return Deltas{}, fmt.Errorf("tdb: unexpected stream event %q", ev)
	}
}

// Close cancels the stream; the server deregisters the standing query.
func (s *Subscription) Close() error {
	s.close()
	return nil
}

// readEvent parses one server-sent event (event: + data: lines up to a
// blank line).
func (s *Subscription) readEvent() (event string, data []byte, err error) {
	for {
		line, err := s.br.ReadString('\n')
		if err != nil {
			return "", nil, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "" && event != "":
			return event, data, nil
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
}
