package lint

import (
	"strings"
	"testing"
)

// TestDriverTopoOrder: Requires dependencies run before their dependents
// on every package, and the closure is computed from the requested set.
func TestDriverTopoOrder(t *testing.T) {
	pkgs := loadFixture(t)[:1]
	var order []string
	c := &Analyzer{Name: "c", Run: func(p *Pass) any { order = append(order, "c"); return nil }}
	b := &Analyzer{Name: "b", Requires: []*Analyzer{c}, Run: func(p *Pass) any { order = append(order, "b"); return nil }}
	a := &Analyzer{Name: "a", Requires: []*Analyzer{b}, Run: func(p *Pass) any { order = append(order, "a"); return nil }}
	// Request only the root: the driver must pull in b and c.
	if _, err := Check(pkgs, []*Analyzer{a}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "c,b,a" {
		t.Fatalf("execution order %s, want c,b,a", got)
	}
}

// TestDriverResultOf: a dependent sees exactly its Requires' results for
// the current package, and nothing else.
func TestDriverResultOf(t *testing.T) {
	pkgs := loadFixture(t)[:1]
	b := &Analyzer{Name: "b", Run: func(p *Pass) any { return "b-result:" + p.Pkg.Path }}
	c := &Analyzer{Name: "c", Run: func(p *Pass) any { return "c-result" }}
	var got any
	var sawC bool
	a := &Analyzer{Name: "a", Requires: []*Analyzer{b}, Run: func(p *Pass) any {
		got = p.ResultOf[b]
		_, sawC = p.ResultOf[c]
		return nil
	}}
	if _, err := Check(pkgs, []*Analyzer{a, c}); err != nil {
		t.Fatal(err)
	}
	want := "b-result:" + pkgs[0].Path
	if got != want {
		t.Errorf("ResultOf[b] = %v, want %v", got, want)
	}
	if sawC {
		t.Error("ResultOf leaked the result of a non-required analyzer")
	}
}

// TestDriverFactVisibility: facts flow from Run to the finish phase for
// the exporting analyzer and its dependents; unrelated analyzers see nil.
func TestDriverFactVisibility(t *testing.T) {
	pkgs := loadFixture(t)
	b := &Analyzer{Name: "b", Run: func(p *Pass) any {
		p.ExportFact("fact-from-" + p.Pkg.Path)
		return nil
	}}
	var own, dependent, unrelated int
	bFinish := func(p *FinishPass) { own = len(p.Facts()) }
	b.Finish = bFinish
	a := &Analyzer{
		Name: "a", Requires: []*Analyzer{b},
		Run:    func(p *Pass) any { return nil },
		Finish: func(p *FinishPass) { dependent = len(p.FactsOf(b)) },
	}
	d := &Analyzer{
		Name:   "d",
		Run:    func(p *Pass) any { return nil },
		Finish: func(p *FinishPass) { unrelated = len(p.FactsOf(b)) },
	}
	if _, err := Check(pkgs, []*Analyzer{a, d}); err != nil {
		t.Fatal(err)
	}
	if own != len(pkgs) {
		t.Errorf("exporter sees %d of its own facts, want %d (one per package)", own, len(pkgs))
	}
	if dependent != len(pkgs) {
		t.Errorf("dependent sees %d facts, want %d", dependent, len(pkgs))
	}
	if unrelated != 0 {
		t.Errorf("unrelated analyzer sees %d facts, want 0 (visibility contract)", unrelated)
	}
}

// TestDriverFinishReports: diagnostics filed in the finish phase carry
// the analyzer's rule name and join the sorted output.
func TestDriverFinishReports(t *testing.T) {
	pkgs := loadFixture(t)[:1]
	var pos = pkgs[0].Files[0].Pos()
	a := &Analyzer{
		Name:   "finish-reporter",
		Run:    func(p *Pass) any { return nil },
		Finish: func(p *FinishPass) { p.Reportf(pos, "from finish") },
	}
	diags, err := Check(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Rule != "finish-reporter" || diags[0].Message != "from finish" {
		t.Fatalf("finish diagnostics = %v", diags)
	}
}

// TestDriverCycleError: a Requires cycle is a configuration error, not a
// hang or a panic.
func TestDriverCycleError(t *testing.T) {
	a := &Analyzer{Name: "a", Run: func(p *Pass) any { return nil }}
	b := &Analyzer{Name: "b", Requires: []*Analyzer{a}, Run: func(p *Pass) any { return nil }}
	a.Requires = []*Analyzer{b}
	if _, err := Check(nil, []*Analyzer{a}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cyclic Requires: got err %v, want cycle error", err)
	}
}

// TestRegisteredAnalyzersSort: the real registry must topo-sort (no
// Requires cycle creeps in) with dependencies ahead of dependents.
func TestRegisteredAnalyzersSort(t *testing.T) {
	order, err := closeAndSort(Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, a := range order {
		pos[a.Name] = i
	}
	for _, a := range order {
		for _, r := range a.Requires {
			if pos[r.Name] > pos[a.Name] {
				t.Errorf("%s ordered before its dependency %s", a.Name, r.Name)
			}
		}
	}
	if pos["flow"] > pos["hotpath-alloc"] {
		t.Error("flow must run before hotpath-alloc")
	}
}
