package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockOrderAnalyzer derives a lock-ordering graph over the mutexes of the
// concurrent subsystems — the storage buffer pool, the live manager and
// its subscribers, the observability registry — and reports two deadlock
// shapes: a cycle in the acquired-while-holding relation (two goroutines
// taking the same pair of locks in opposite orders can deadlock), and a
// channel operation performed while a mutex is held (the peer of that
// channel may need the same mutex to make progress; close is exempt, it
// never blocks).
//
// Each function is scanned linearly with a conservative held-set: Lock and
// RLock acquire, Unlock and RUnlock release, a deferred unlock holds to
// the end of the function, and a function literal starts a fresh context
// (it runs on its own goroutine or after the frame unwinds). Locks are
// identified structurally — package, receiver type, and field — so every
// instance of a type shares one node, which is exactly the granularity a
// lock *ordering* is declared at. Same-package calls are expanded one
// level deep through per-function acquisition summaries; cycle detection
// runs in the finish phase over edge facts from every package.
var lockOrderAnalyzer = &Analyzer{
	Name: "lock-order",
	Doc:  "mutex acquisition graph must stay acyclic; no channel ops under a held mutex",
	Deep: true,
	Run: func(pass *Pass) any {
		p := pass.Pkg
		if !inScope(p, "internal/storage", "internal/live", "internal/obs") {
			return nil
		}
		summaries := lockSummaries(p)
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				s := &lockScan{pass: pass, p: p, summaries: summaries}
				s.block(fd.Body.List, nil)
			}
		}
		return nil
	},
	Finish: lockOrderFinish,
}

// lockEdge is the exported fact "from was held when to was acquired".
type lockEdge struct {
	From, To string
	Pos      token.Pos
}

// lockID names a mutex structurally: pkg.Type.field for a mutex field,
// pkg.var for a package-level mutex, pkg.func.name for a function-local
// one.
func lockID(p *Package, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	if sel, ok := expr.(*ast.SelectorExpr); ok {
		// x.mu / x.y.mu: identify by the type owning the field.
		if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			owner := s.Recv()
			for {
				ptr, ok := owner.(*types.Pointer)
				if !ok {
					break
				}
				owner = ptr.Elem()
			}
			return types.TypeString(owner, nil) + "." + sel.Sel.Name
		}
		// pkg.Var selector.
		if obj, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj, ok := p.Info.Uses[id].(*types.Var); ok && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name()
			}
			return obj.Pkg().Path() + ".(local)." + obj.Name()
		}
	}
	return ""
}

// mutexOp classifies a call: the lock it addresses plus whether it
// acquires (Lock/RLock/TryLock) or releases (Unlock/RUnlock).
func mutexOp(p *Package, call *ast.CallExpr) (lock string, acquire, release bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return lockID(p, sel.X), true, false
	case "Unlock", "RUnlock":
		return lockID(p, sel.X), false, true
	}
	return "", false, false
}

// lockSummaries builds the one-level call expansion: for every function
// declared in the package, the set of locks its body acquires directly
// (function literals excluded — they run in their own context).
func lockSummaries(p *Package) map[types.Object][]string {
	out := map[types.Object][]string{}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := p.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			var acquired []string
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if lock, acq, _ := mutexOp(p, call); acq && lock != "" {
						acquired = append(acquired, lock)
					}
				}
				return true
			})
			out[obj] = acquired
		}
	}
	return out
}

// lockScan is the linear held-set walk over one function body.
type lockScan struct {
	pass      *Pass
	p         *Package
	summaries map[types.Object][]string
}

// heldLock is one entry of the held set; deferred unlocks pin it to the
// end of the function.
type heldLock struct {
	id       string
	deferred bool
}

// block scans a statement list in order. held is the set on entry; the
// returned set reflects acquisitions and releases at this nesting level.
// Branch bodies are scanned with a copy — locks acquired inside a branch
// are conservatively assumed released at its end (an imbalanced branch is
// a bug the scan cannot model without path analysis).
func (s *lockScan) block(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, st := range stmts {
		held = s.stmt(st, held)
	}
	return held
}

func (s *lockScan) stmt(st ast.Stmt, held []heldLock) []heldLock {
	switch st := st.(type) {
	case *ast.ExprStmt:
		return s.expr(st.X, held)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			held = s.expr(rhs, held)
		}
		return held
	case *ast.DeferStmt:
		if lock, _, rel := mutexOp(s.p, st.Call); rel && lock != "" {
			for i := range held {
				if held[i].id == lock {
					held[i].deferred = true
				}
			}
			return held
		}
		s.scanFuncLitArgs(st.Call)
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.freshContext(lit)
		}
		return held
	case *ast.GoStmt:
		s.scanFuncLitArgs(st.Call)
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.freshContext(lit)
		}
		return held
	case *ast.SendStmt:
		s.chanOp(st.Pos(), "send", held)
		return held
	case *ast.SelectStmt:
		s.chanOp(st.Pos(), "select", held)
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				s.block(cc.Body, append([]heldLock{}, held...))
			}
		}
		return held
	case *ast.BlockStmt:
		return s.block(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		held = s.expr(st.Cond, held)
		s.block(st.Body.List, append([]heldLock{}, held...))
		if st.Else != nil {
			s.stmt(st.Else, append([]heldLock{}, held...))
		}
		return held
	case *ast.ForStmt:
		s.block(st.Body.List, append([]heldLock{}, held...))
		return held
	case *ast.RangeStmt:
		held = s.expr(st.X, held)
		s.block(st.Body.List, append([]heldLock{}, held...))
		return held
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := st.(*ast.SwitchStmt); ok {
			body = sw.Body
		} else {
			body = st.(*ast.TypeSwitchStmt).Body
		}
		for _, cl := range body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				s.block(cc.Body, append([]heldLock{}, held...))
			}
		}
		return held
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			held = s.expr(r, held)
		}
		return held
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt, *ast.LabeledStmt:
		if l, ok := st.(*ast.LabeledStmt); ok {
			return s.stmt(l.Stmt, held)
		}
		return held
	}
	return held
}

// expr scans one expression for mutex operations, channel receives, and
// nested function literals.
func (s *lockScan) expr(e ast.Expr, held []heldLock) []heldLock {
	if e == nil {
		return held
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if lock, acq, rel := mutexOp(s.p, e); lock != "" {
			if acq {
				for _, h := range held {
					if h.id == lock {
						continue // re-entrant RLock of the same lock: not an ordering edge
					}
					s.pass.ExportFact(lockEdge{From: h.id, To: lock, Pos: e.Pos()})
				}
				return append(held, heldLock{id: lock})
			}
			if rel {
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].id == lock && !held[i].deferred {
						return append(append([]heldLock{}, held[:i]...), held[i+1:]...)
					}
				}
				return held
			}
		}
		// close never blocks; other builtin calls carry no channel ops.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, isBuiltin := s.p.Info.Uses[id].(*types.Builtin); isBuiltin {
				for _, arg := range e.Args {
					held = s.expr(arg, held)
				}
				return held
			}
		}
		// One-level same-package expansion: the callee's own
		// acquisitions happen while our held set is in force.
		if callee := calleeObject(s.p, e); callee != nil {
			if acq, ok := s.summaries[callee]; ok {
				for _, lock := range acq {
					for _, h := range held {
						if h.id != lock {
							s.pass.ExportFact(lockEdge{From: h.id, To: lock, Pos: e.Pos()})
						}
					}
				}
			}
		}
		for _, arg := range e.Args {
			held = s.expr(arg, held)
		}
		s.scanFuncLitArgs(e)
		return held
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			s.chanOp(e.Pos(), "receive", held)
		}
		return s.expr(e.X, held)
	case *ast.BinaryExpr:
		held = s.expr(e.X, held)
		return s.expr(e.Y, held)
	case *ast.FuncLit:
		s.freshContext(e)
		return held
	}
	return held
}

// chanOp reports a blocking channel operation under every held lock.
func (s *lockScan) chanOp(pos token.Pos, kind string, held []heldLock) {
	for _, h := range held {
		s.pass.Reportf(pos, "channel %s while holding %s; the peer may need the same lock (deadlock risk)", kind, h.id)
	}
}

// scanFuncLitArgs walks function literals passed as call arguments in a
// fresh context (callbacks typically run later or elsewhere).
func (s *lockScan) scanFuncLitArgs(call *ast.CallExpr) {
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			s.freshContext(lit)
		}
	}
}

// freshContext scans a function literal body with an empty held set.
func (s *lockScan) freshContext(lit *ast.FuncLit) {
	if lit.Body != nil {
		s.block(lit.Body.List, nil)
	}
}

// calleeObject resolves a call to a function object declared in the same
// package, or nil.
func calleeObject(p *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok && fn.Pkg() == p.Types {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() == p.Types {
			return fn
		}
	}
	return nil
}

// lockOrderFinish assembles the module-wide acquisition graph from the
// edge facts and reports every strongly connected component with a cycle.
func lockOrderFinish(pass *FinishPass) {
	type edge struct {
		to  string
		pos token.Pos
	}
	adj := map[string][]edge{}
	var nodes []string
	seen := map[string]bool{}
	note := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for _, f := range pass.Facts() {
		e, ok := f.Value.(lockEdge)
		if !ok {
			continue
		}
		note(e.From)
		note(e.To)
		adj[e.From] = append(adj[e.From], edge{to: e.To, pos: e.Pos})
	}
	sort.Strings(nodes)

	// Tarjan's SCC. Any component with more than one node — or a
	// self-edge — contains a cycle.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 1
	var sccs [][]string
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range adj[v] {
			if index[e.to] == 0 {
				strongconnect(e.to)
				if low[e.to] < low[v] {
					low[v] = low[e.to]
				}
			} else if onStack[e.to] && index[e.to] < low[v] {
				low[v] = index[e.to]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, n := range nodes {
		if index[n] == 0 {
			strongconnect(n)
		}
	}

	for _, comp := range sccs {
		cyclic := len(comp) > 1
		if !cyclic {
			for _, e := range adj[comp[0]] {
				if e.to == comp[0] {
					cyclic = true
					break
				}
			}
		}
		if !cyclic {
			continue
		}
		sort.Strings(comp)
		inComp := map[string]bool{}
		for _, n := range comp {
			inComp[n] = true
		}
		// Anchor the report at the earliest edge inside the component.
		pos := token.NoPos
		for _, n := range comp {
			for _, e := range adj[n] {
				if inComp[e.to] && (pos == token.NoPos || e.pos < pos) {
					pos = e.pos
				}
			}
		}
		pass.Reportf(pos, "lock-order cycle among %s: opposite acquisition orders can deadlock", strings.Join(comp, ", "))
	}
}
