package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// intervalEncapsulationAnalyzer keeps Allen's relationships in one place. An
// endpoint inequality between two different lifespans — x.Start < y.Start,
// x.End <= y.Start, … — is a fragment of a Figure 2 relationship, and the
// interval package's predicates (Before, Meets, During, …) and
// comparators (CmpStart, CmpEnd, Compare) are the single ground truth the
// optimizer's predicate expansion is tested against. Outside package
// interval, such fragments must go through those functions.
//
// Comparing the endpoints of one interval with themselves (iv.Start <
// iv.End, the intra-tuple constraint) and comparing an endpoint with a
// scalar chronon are both fine: neither is an inter-lifespan relationship.
var intervalEncapsulationAnalyzer = &Analyzer{
	Name: "interval-encapsulation",
	Doc:  "no raw Start/End comparisons between two Intervals outside package interval",
	Run: func(pass *Pass) any {
		p := pass.Pkg
		if p.Types.Name() == "interval" {
			return nil
		}
		inspect(p, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || !isComparison(bin.Op) {
				return true
			}
			lx, lok := endpointSelector(p, bin.X)
			ly, rok := endpointSelector(p, bin.Y)
			if !lok || !rok {
				return true
			}
			if types.ExprString(lx) == types.ExprString(ly) {
				return true // intra-tuple constraint on one interval
			}
			pass.Reportf(bin.Pos(), "raw Interval endpoint comparison between two lifespans; use package interval (CmpStart/CmpEnd/Compare or a Figure 2 predicate)")
			return true
		})
		return nil
	},
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// endpointSelector reports whether e is a Start/End field selection on an
// expression of type interval.Interval (possibly through pointers), and
// returns the base expression.
func endpointSelector(p *Package, e ast.Expr) (base ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(e).(*ast.SelectorExpr)
	if !isSel || (sel.Sel.Name != "Start" && sel.Sel.Name != "End") {
		return nil, false
	}
	s, found := p.Info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return nil, false
	}
	t := p.Info.Types[sel.X].Type
	for {
		ptr, isPtr := t.(*types.Pointer)
		if !isPtr {
			break
		}
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Name() != "Interval" {
		return nil, false
	}
	return sel.X, true
}
