// Package flow is the SSA-lite intra-procedural dataflow layer beneath
// tdblint's deep rules. For one function body it builds per-variable
// def-use chains and a conservative escape lattice
//
//	Local ⊑ Passed ⊑ Heap
//
// over assignments, closures, channel sends, and interface conversions:
// Local means the value provably never leaves the function, Passed means
// it flows into a call whose callee is not analyzed (so it *may* be
// retained), and Heap means it is reachable after the function returns —
// returned, stored through a pointer or into a package-level variable,
// sent on a channel, captured by a closure, or boxed into an interface.
//
// The analysis is deliberately syntax-directed rather than a full
// points-to pass: it walks each function once to seed escape levels from
// the contexts a variable appears in, records value-flow edges from
// every assignment (x = y makes y at least as escaped as x), and
// propagates to a fixpoint. Everything unprovable escalates, never the
// other way, so a Local verdict is trustworthy — which is what the
// hotpath-alloc rule needs to declare an allocation stack-bound.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Escape is the lattice of escape verdicts, ordered Local < Passed < Heap.
type Escape uint8

const (
	// Local: the value provably never leaves the function.
	Local Escape = iota
	// Passed: the value flows into a call argument; the callee is not
	// analyzed, so it may be retained.
	Passed
	// Heap: the value is reachable after the function returns.
	Heap
)

// String names the verdict.
func (e Escape) String() string {
	switch e {
	case Local:
		return "local"
	case Passed:
		return "passed"
	}
	return "heap"
}

// Var is the def-use chain and escape verdict of one function-local
// variable (parameters included).
type Var struct {
	Obj *types.Var
	// Defs are the positions where the variable is declared or
	// reassigned, in source order; DefExprs holds the defining RHS
	// expression for each, or nil when the definition has no single
	// expression (tuple assignment, range clause, parameter).
	Defs     []token.Pos
	DefExprs []ast.Expr
	// Uses are the positions where the variable's value is read.
	Uses []token.Pos
	// Esc is the variable's escape verdict; Why and WhyPos document the
	// first (seeding) reason for a non-Local verdict.
	Esc    Escape
	Why    string
	WhyPos token.Pos
}

// Func is the dataflow summary of one function body.
type Func struct {
	Vars map[*types.Var]*Var

	info    *types.Info
	ftype   *ast.FuncType
	body    *ast.BlockStmt
	boxings []Boxing
}

// Boxing is one site where a concrete (non-interface) value converts to
// an interface type — an allocation on most paths, and the operation the
// hotpath-alloc rule bans from annotated loops.
type Boxing struct {
	Pos  token.Pos
	Expr ast.Expr
	From types.Type
	To   types.Type
}

// Analyze builds the dataflow summary of one function given its type and
// body (a *ast.FuncDecl's Type and Body, or a *ast.FuncLit's). info must
// cover the function's package.
func Analyze(info *types.Info, ftype *ast.FuncType, body *ast.BlockStmt) *Func {
	f := &Func{Vars: map[*types.Var]*Var{}, info: info, ftype: ftype, body: body}
	if body == nil {
		return f
	}
	a := &analysis{f: f, edges: map[*types.Var][]*types.Var{}}
	a.collectVars()
	a.walk()
	a.propagate()
	f.sortChains()
	return f
}

// Of returns the summary for obj, or nil for non-local objects.
func (f *Func) Of(obj *types.Var) *Var { return f.Vars[obj] }

// Escape returns the escape verdict for obj; unknown (non-local) objects
// conservatively report Heap.
func (f *Func) Escape(obj *types.Var) Escape {
	if v := f.Vars[obj]; v != nil {
		return v.Esc
	}
	return Heap
}

// Boxings returns every concrete-to-interface conversion site in the
// function, in source order.
func (f *Func) Boxings() []Boxing { return f.boxings }

func (f *Func) sortChains() {
	for _, v := range f.Vars {
		// Defs/DefExprs are appended in walk order, which is source
		// order already; Uses likewise. Sort anyway for determinism
		// against future walk changes.
		idx := make([]int, len(v.Defs))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(i, j int) bool { return v.Defs[idx[i]] < v.Defs[idx[j]] })
		defs := make([]token.Pos, len(idx))
		exprs := make([]ast.Expr, len(idx))
		for i, k := range idx {
			defs[i], exprs[i] = v.Defs[k], v.DefExprs[k]
		}
		v.Defs, v.DefExprs = defs, exprs
		sort.Slice(v.Uses, func(i, j int) bool { return v.Uses[i] < v.Uses[j] })
	}
	sort.Slice(f.boxings, func(i, j int) bool { return f.boxings[i].Pos < f.boxings[j].Pos })
}

// analysis is the single-walk state.
type analysis struct {
	f *Func
	// edges records value flow dst <- srcs: when dst's verdict rises,
	// every src joins it (the value stored in dst is the value of src).
	edges map[*types.Var][]*types.Var
}

// localVar resolves an identifier to a function-local variable, or nil.
func (a *analysis) localVar(id *ast.Ident) *types.Var {
	obj := a.f.info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v == nil {
		return nil
	}
	if _, tracked := a.f.Vars[v]; tracked {
		return v
	}
	return nil
}

// collectVars registers every variable declared inside the function
// (parameters, named results, := definitions, var declarations, range
// variables), then records every read of a tracked variable as a use.
func (a *analysis) collectVars() {
	reg := func(id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		if v, ok := a.f.info.Defs[id].(*types.Var); ok && v != nil {
			if _, dup := a.f.Vars[v]; !dup {
				a.f.Vars[v] = &Var{Obj: v}
			}
		}
	}
	for _, fl := range fieldIdents(a.f.ftype) {
		reg(fl)
	}
	ast.Inspect(a.f.body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			reg(id)
		}
		return true
	})
	ast.Inspect(a.f.body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := a.f.info.Uses[id].(*types.Var); ok {
			if info := a.f.Vars[v]; info != nil {
				info.Uses = append(info.Uses, id.Pos())
			}
		}
		return true
	})
}

func fieldIdents(ft *ast.FuncType) []*ast.Ident {
	var out []*ast.Ident
	lists := []*ast.FieldList{ft.Params, ft.Results}
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			out = append(out, f.Names...)
		}
	}
	return out
}

// seed raises v's escape verdict to at least e, remembering the first
// reason.
func (a *analysis) seed(v *types.Var, e Escape, why string, pos token.Pos) {
	info := a.f.Vars[v]
	if info == nil || info.Esc >= e {
		return
	}
	info.Esc = e
	info.Why = why
	info.WhyPos = pos
}

// seedExpr seeds every local variable whose memory the value of expr may
// reference. A field or index read producing a pure value type copies the
// data out, so the base does not escape; taking an address (&x) always
// reaches the root variable.
func (a *analysis) seedExpr(expr ast.Expr, e Escape, why string, skipCallees bool) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if root := rootIdent(n.X); root != nil {
					if v := a.localVar(root); v != nil {
						a.seed(v, e, why, root.Pos())
					}
				}
			}
		case *ast.SelectorExpr:
			// A read like b.v of a non-reference type copies the value;
			// b's own memory stays put.
			if t := a.typeOf(n); t != nil && !refCarrying(t) {
				if sel, ok := a.f.info.Selections[n]; !ok || sel.Kind() == types.FieldVal {
					return false
				}
			}
		case *ast.IndexExpr:
			if t := a.typeOf(n); t != nil && !refCarrying(t) {
				// Still walk the index expression itself.
				a.seedExpr(n.Index, e, why, skipCallees)
				return false
			}
		case *ast.CallExpr:
			if skipCallees {
				// Nested calls get their own argument treatment in the
				// main walk; don't double-seed through them. Still look
				// at the callee expression (a method's receiver reads it).
				ast.Inspect(n.Fun, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if v := a.localVar(id); v != nil {
							a.seed(v, e, why, id.Pos())
						}
					}
					return true
				})
				return false
			}
		case *ast.Ident:
			if v := a.localVar(n); v != nil {
				a.seed(v, e, why, n.Pos())
			}
		}
		return true
	})
}

// edge records that the value of src flows into dst. Only
// reference-carrying flows matter: a destination of pure value type (an
// int counter, say) cannot retain any source's memory, and a pure-value
// source has no memory to retain — except through an explicit &x, which
// always aliases the root variable.
func (a *analysis) edge(dst *types.Var, srcExpr ast.Expr) {
	if srcExpr == nil || !refCarrying(dst.Type()) {
		return
	}
	add := func(src *types.Var) {
		if src != nil && src != dst {
			a.edges[dst] = append(a.edges[dst], src)
		}
	}
	ast.Inspect(srcExpr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if root := rootIdent(n.X); root != nil {
					add(a.localVar(root))
				}
			}
		case *ast.Ident:
			if src := a.localVar(n); src != nil && refCarrying(src.Type()) {
				add(src)
			}
		}
		return true
	})
}

// refCarrying reports whether values of t can reference heap memory —
// the types escape propagation cares about. Pure value types (numbers,
// booleans, structs and arrays of them) copy on assignment and carry
// nothing.
func refCarrying(t types.Type) bool { return refCarryingDepth(t, 0) }

func refCarryingDepth(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return true // unknown or deeply recursive: stay conservative
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0 || u.Kind() == types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refCarryingDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return refCarryingDepth(u.Elem(), depth+1)
	default:
		// Pointers, slices, maps, chans, funcs, interfaces, tuples.
		return true
	}
}

// walk performs the single seeding pass over the body. Nested function
// literals are walked too (their returns resolve against their own
// signature), and any enclosing-function variable they reference is a
// closure capture — Heap.
func (a *analysis) walk() {
	a.walkBody(a.f.body, a.f.ftype)
}

func (a *analysis) walkBody(body *ast.BlockStmt, ftype *ast.FuncType) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			a.captureClosure(n)
			a.walkBody(n.Body, n.Type)
			return false // walked explicitly with the lit's signature
		case *ast.AssignStmt:
			a.assign(n)
		case *ast.GenDecl:
			a.genDecl(n)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				a.seedExpr(res, Heap, "returned", false)
			}
		case *ast.SendStmt:
			a.seedExpr(n.Value, Heap, "sent on a channel", false)
			a.noteBoxingTo(chanElem(a.typeOf(n.Chan)), n.Value)
		case *ast.GoStmt:
			a.callArgs(n.Call, Heap, "passed to a goroutine")
		case *ast.DeferStmt:
			a.callArgs(n.Call, Heap, "passed to a deferred call")
		case *ast.CallExpr:
			a.callArgs(n, Passed, "passed to a call")
		case *ast.RangeStmt:
			a.rangeDefs(n)
		case *ast.CompositeLit:
			a.compositeBoxings(n)
		}
		return true
	})
}

// captureClosure marks every variable of the enclosing function that the
// literal's body references as captured (Heap): the closure may outlive
// the frame, and a captured variable is heap-allocated by the compiler.
func (a *analysis) captureClosure(lit *ast.FuncLit) {
	own := map[types.Object]bool{}
	for _, id := range fieldIdents(lit.Type) {
		if obj := a.f.info.Defs[id]; obj != nil {
			own[obj] = true
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := a.f.info.Defs[id]; obj != nil {
			own[obj] = true // declared inside the literal
			return true
		}
		if v := a.localVar(id); v != nil && !own[v] {
			a.seed(v, Heap, "captured by a closure", id.Pos())
		}
		return true
	})
}

// assign processes one assignment statement: def-use bookkeeping, flow
// edges, sink classification of each left-hand side, and boxing checks.
func (a *analysis) assign(n *ast.AssignStmt) {
	paired := len(n.Lhs) == len(n.Rhs)
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		if paired {
			rhs = n.Rhs[i]
		}
		a.store(lhs, rhs, n.Tok == token.DEFINE)
	}
	if !paired {
		// Tuple assignment: every RHS var flows into every LHS sink.
		for _, lhs := range n.Lhs {
			for _, rhs := range n.Rhs {
				a.store(lhs, rhs, n.Tok == token.DEFINE)
			}
		}
	}
}

// store classifies one lhs ← rhs pair. define marks a := definition.
func (a *analysis) store(lhs, rhs ast.Expr, define bool) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if v := a.localVar(l); v != nil {
			info := a.f.Vars[v]
			info.Defs = append(info.Defs, l.Pos())
			info.DefExprs = append(info.DefExprs, rhs)
			a.edge(v, rhs)
			a.noteBoxingTo(a.typeOf(lhs), rhs)
			return
		}
		// Package-level variable: the stored value outlives the call.
		a.seedExpr(rhs, Heap, "assigned to a package-level variable", false)
		a.noteBoxingTo(a.typeOf(lhs), rhs)
	case *ast.SelectorExpr:
		// x.f = rhs: the value flows into x; if x is not a local
		// variable the store is to escaped memory.
		if base := rootIdent(l.X); base != nil {
			if v := a.localVar(base); v != nil {
				a.edge(v, rhs)
				a.noteBoxingTo(a.typeOf(lhs), rhs)
				return
			}
		}
		a.seedExpr(rhs, Heap, "stored into escaped memory", false)
		a.noteBoxingTo(a.typeOf(lhs), rhs)
	case *ast.IndexExpr:
		if base := rootIdent(l.X); base != nil {
			if v := a.localVar(base); v != nil {
				a.edge(v, rhs)
				a.edge(v, l.Index)
				a.noteBoxingTo(a.typeOf(lhs), rhs)
				return
			}
		}
		a.seedExpr(rhs, Heap, "stored into escaped memory", false)
		a.noteBoxingTo(a.typeOf(lhs), rhs)
	case *ast.StarExpr:
		a.seedExpr(rhs, Heap, "stored through a pointer", false)
		a.noteBoxingTo(a.typeOf(lhs), rhs)
	default:
		a.seedExpr(rhs, Heap, "stored into escaped memory", false)
	}
	_ = define
}

// genDecl handles `var x T = rhs` declarations inside the body.
func (a *analysis) genDecl(n *ast.GenDecl) {
	if n.Tok != token.VAR {
		return
	}
	for _, spec := range n.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			v, ok := a.f.info.Defs[name].(*types.Var)
			if !ok || a.f.Vars[v] == nil {
				continue
			}
			info := a.f.Vars[v]
			var rhs ast.Expr
			if i < len(vs.Values) && len(vs.Values) == len(vs.Names) {
				rhs = vs.Values[i]
			}
			info.Defs = append(info.Defs, name.Pos())
			info.DefExprs = append(info.DefExprs, rhs)
			if rhs != nil {
				a.edge(v, rhs)
				a.noteBoxingTo(v.Type(), rhs)
			}
		}
	}
}

// rangeDefs registers the key/value variables of a range clause.
func (a *analysis) rangeDefs(n *ast.RangeStmt) {
	for _, e := range []ast.Expr{n.Key, n.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if v := a.localVar(id); v != nil {
			info := a.f.Vars[v]
			info.Defs = append(info.Defs, id.Pos())
			info.DefExprs = append(info.DefExprs, nil)
			a.edge(v, n.X)
		}
	}
}

// callArgs seeds the arguments of a call and records boxing at interface
// parameters. Builtins that provably do not retain their operands are
// exempt; a conversion T(x) flows x onward rather than escaping it.
func (a *analysis) callArgs(call *ast.CallExpr, level Escape, why string) {
	fun := ast.Unparen(call.Fun)
	// Method value/selector bases: x.M(...) passes x too.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		a.seedExpr(sel.X, level, why, true)
	}
	tv, ok := a.f.info.Types[fun]
	if ok && tv.IsType() {
		// Conversion: the operand flows through unchanged; boxing only
		// when the target is an interface.
		for _, arg := range call.Args {
			a.noteBoxingTo(tv.Type, arg)
		}
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := a.f.info.Uses[id].(*types.Builtin); isBuiltin {
			a.builtinArgs(id.Name, call, level, why)
			return
		}
	}
	sig, _ := a.typeOf(fun).(*types.Signature)
	for i, arg := range call.Args {
		a.seedExpr(arg, level, why, true)
		if sig != nil {
			a.noteBoxingTo(paramType(sig, i, call), arg)
		}
	}
}

// builtinArgs handles the builtins with known retention behavior.
func (a *analysis) builtinArgs(name string, call *ast.CallExpr, level Escape, why string) {
	switch name {
	case "len", "cap", "delete", "clear", "min", "max", "make", "new", "close", "real", "imag", "complex":
		// Provably no retention of the operand values.
	case "copy":
		if len(call.Args) == 2 {
			if base := rootIdent(call.Args[0]); base != nil {
				if v := a.localVar(base); v != nil {
					a.edge(v, call.Args[1])
					return
				}
			}
			a.seedExpr(call.Args[1], Heap, "copied into escaped memory", true)
		}
	case "append":
		// append(s, vs...): the values flow into the result slice; the
		// main assignment walk wires result → destination. Nothing to
		// seed here — an append whose result is discarded retains
		// nothing reachable.
	case "panic":
		a.seedExpr(call.Args[0], Heap, "passed to panic", true)
		if len(call.Args) == 1 {
			a.noteBoxingTo(types.NewInterfaceType(nil, nil), call.Args[0])
		}
	default:
		for _, arg := range call.Args {
			a.seedExpr(arg, level, why, true)
		}
	}
}

// propagate runs the worklist: a variable joins the verdict of every
// variable its value flowed into.
func (a *analysis) propagate() {
	for changed := true; changed; {
		changed = false
		for dst, srcs := range a.edges {
			dinfo := a.f.Vars[dst]
			if dinfo == nil || dinfo.Esc == Local {
				continue
			}
			for _, src := range srcs {
				sinfo := a.f.Vars[src]
				if sinfo != nil && sinfo.Esc < dinfo.Esc {
					sinfo.Esc = dinfo.Esc
					if sinfo.Why == "" {
						sinfo.Why = "flows into " + dst.Name() + " (" + dinfo.Why + ")"
						sinfo.WhyPos = dinfo.WhyPos
					}
					changed = true
				}
			}
		}
	}
}

// --- boxing detection ---

// noteBoxingTo records a boxing when expr (of concrete type) is placed
// into a destination of interface type.
func (a *analysis) noteBoxingTo(to types.Type, expr ast.Expr) {
	if to == nil || expr == nil {
		return
	}
	// A type parameter's underlying type is its constraint interface, but
	// instantiation substitutes a concrete type: no box happens at runtime
	// unless the constraint is the actual destination — which go/types
	// models as the TypeParam itself, so exclude it outright.
	if _, ok := to.(*types.TypeParam); ok {
		return
	}
	if !types.IsInterface(to.Underlying()) {
		return
	}
	from := a.typeOf(expr)
	if from == nil || types.IsInterface(from.Underlying()) {
		return
	}
	if _, ok := from.(*types.TypeParam); ok {
		return
	}
	if _, ok := from.(*types.Tuple); ok {
		return // multi-value RHS: assignment pairing, not a conversion
	}
	if b, ok := from.(*types.Basic); ok && b.Info()&types.IsUntyped != 0 && b.Kind() != types.UntypedString && b.Kind() != types.UntypedInt && b.Kind() != types.UntypedFloat && b.Kind() != types.UntypedBool && b.Kind() != types.UntypedRune {
		return // untyped nil and friends
	}
	a.f.boxings = append(a.f.boxings, Boxing{
		Pos: expr.Pos(), Expr: expr, From: from, To: to,
	})
}

// compositeBoxings records boxings of composite-literal elements whose
// field/element type is an interface.
func (a *analysis) compositeBoxings(lit *ast.CompositeLit) {
	t := a.typeOf(lit)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		for _, el := range lit.Elts {
			a.noteBoxingTo(u.Elem(), elValue(el))
		}
	case *types.Array:
		for _, el := range lit.Elts {
			a.noteBoxingTo(u.Elem(), elValue(el))
		}
	case *types.Map:
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				a.noteBoxingTo(u.Key(), kv.Key)
				a.noteBoxingTo(u.Elem(), kv.Value)
			}
		}
	case *types.Struct:
		for i, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					if f := structField(u, id.Name); f != nil {
						a.noteBoxingTo(f.Type(), kv.Value)
					}
				}
				continue
			}
			if i < u.NumFields() {
				a.noteBoxingTo(u.Field(i).Type(), el)
			}
		}
	}
}

func elValue(el ast.Expr) ast.Expr {
	if kv, ok := el.(*ast.KeyValueExpr); ok {
		return kv.Value
	}
	return el
}

func structField(s *types.Struct, name string) *types.Var {
	for i := 0; i < s.NumFields(); i++ {
		if s.Field(i).Name() == name {
			return s.Field(i)
		}
	}
	return nil
}

// --- small helpers ---

func (a *analysis) typeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	if tv, ok := a.f.info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := a.f.info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// paramType resolves the declared type of argument i of a call against
// sig, unfolding the variadic tail (f(args...) spreads excepted).
func paramType(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() {
		if call.Ellipsis.IsValid() {
			if i < n {
				return sig.Params().At(i).Type()
			}
			return nil
		}
		if i >= n-1 {
			last := sig.Params().At(n - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				return sl.Elem()
			}
			return last
		}
		return sig.Params().At(i).Type()
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

func chanElem(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if ch, ok := t.Underlying().(*types.Chan); ok {
		return ch.Elem()
	}
	return nil
}

// rootIdent returns the leftmost identifier of a selector/index/star
// chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}
