package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// analyzeFunc type-checks src (a complete file body without the package
// clause) and returns the summary of the named top-level function.
func analyzeFunc(t *testing.T, src, name string) (*Func, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flowtest.go", "package flowtest\n\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("flowtest", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != name {
			continue
		}
		return Analyze(info, fd.Type, fd.Body), info
	}
	t.Fatalf("function %s not found", name)
	return nil, nil
}

// escOf finds the tracked variable with the given name and returns its
// verdict.
func escOf(t *testing.T, f *Func, name string) Escape {
	t.Helper()
	for obj, v := range f.Vars {
		if obj.Name() == name {
			return v.Esc
		}
	}
	t.Fatalf("variable %s not tracked", name)
	return Heap
}

func TestEscapeLocal(t *testing.T) {
	f, _ := analyzeFunc(t, `
func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}`, "sum")
	// total is returned — Heap; x stays local.
	if got := escOf(t, f, "x"); got != Local {
		t.Errorf("x: got %v, want local", got)
	}
	if got := escOf(t, f, "total"); got != Heap {
		t.Errorf("total: got %v, want heap (returned)", got)
	}
}

func TestEscapeReturn(t *testing.T) {
	f, _ := analyzeFunc(t, `
func build() []int {
	buf := make([]int, 0, 8)
	buf = append(buf, 1)
	return buf
}`, "build")
	if got := escOf(t, f, "buf"); got != Heap {
		t.Errorf("buf: got %v, want heap", got)
	}
}

func TestEscapeSend(t *testing.T) {
	f, _ := analyzeFunc(t, `
func send(ch chan int) {
	v := 42
	ch <- v
}`, "send")
	if got := escOf(t, f, "v"); got != Heap {
		t.Errorf("v: got %v, want heap (sent)", got)
	}
}

func TestEscapePassed(t *testing.T) {
	f, _ := analyzeFunc(t, `
func report(x int) {}
func caller() {
	v := 1
	report(v)
	w := 2
	_ = len([]int{w})
}`, "caller")
	if got := escOf(t, f, "v"); got != Passed {
		t.Errorf("v: got %v, want passed", got)
	}
}

func TestBuiltinsDoNotEscape(t *testing.T) {
	f, _ := analyzeFunc(t, `
func lens() int {
	s := []int{1, 2, 3}
	n := len(s)
	m := map[string]int{}
	delete(m, "k")
	return n
}`, "lens")
	if got := escOf(t, f, "s"); got != Local {
		t.Errorf("s: got %v, want local (len does not retain)", got)
	}
	if got := escOf(t, f, "m"); got != Local {
		t.Errorf("m: got %v, want local (delete does not retain)", got)
	}
}

func TestEscapeClosureCapture(t *testing.T) {
	f, _ := analyzeFunc(t, `
func capture() func() int {
	counter := 0
	free := 7
	_ = free
	return func() int { counter++; return counter }
}`, "capture")
	if got := escOf(t, f, "counter"); got != Heap {
		t.Errorf("counter: got %v, want heap (captured)", got)
	}
	if got := escOf(t, f, "free"); got != Local {
		t.Errorf("free: got %v, want local", got)
	}
}

func TestEscapeGoroutineAndDefer(t *testing.T) {
	f, _ := analyzeFunc(t, `
func spawn(run func(int)) {
	a := 1
	go run(a)
	b := 2
	defer run(b)
}`, "spawn")
	if got := escOf(t, f, "a"); got != Heap {
		t.Errorf("a: got %v, want heap (goroutine arg)", got)
	}
	if got := escOf(t, f, "b"); got != Heap {
		t.Errorf("b: got %v, want heap (deferred arg)", got)
	}
}

func TestEscapePointerStore(t *testing.T) {
	f, _ := analyzeFunc(t, `
func store(p *int) {
	v := 9
	*p = v
}`, "store")
	if got := escOf(t, f, "v"); got != Heap {
		t.Errorf("v: got %v, want heap (stored through pointer)", got)
	}
}

var sinkVar []int

func TestEscapeGlobalStore(t *testing.T) {
	f, _ := analyzeFunc(t, `
var sink []int
func leak() {
	buf := make([]int, 4)
	sink = buf
}`, "leak")
	if got := escOf(t, f, "buf"); got != Heap {
		t.Errorf("buf: got %v, want heap (assigned to package var)", got)
	}
}

func TestFlowPropagation(t *testing.T) {
	// y flows into x, x is returned: y must join Heap.
	f, _ := analyzeFunc(t, `
func chain() []int {
	y := make([]int, 2)
	x := y
	return x
}`, "chain")
	if got := escOf(t, f, "y"); got != Heap {
		t.Errorf("y: got %v, want heap (flows into returned x)", got)
	}
}

func TestFieldStoreIntoLocalStaysLocal(t *testing.T) {
	f, _ := analyzeFunc(t, `
type box struct{ v int }
func fill() int {
	var b box
	tmp := 3
	b.v = tmp
	return b.v
}`, "fill")
	// b is returned by value only through a field read — the struct
	// itself is Local; tmp flows into b and joins b's verdict.
	if got := escOf(t, f, "b"); got != Local {
		t.Errorf("b: got %v, want local", got)
	}
	if got := escOf(t, f, "tmp"); got != Local {
		t.Errorf("tmp: got %v, want local", got)
	}
}

func TestDefUseChains(t *testing.T) {
	f, _ := analyzeFunc(t, `
func uses() int {
	v := 1
	v = 2
	w := v + v
	return w
}`, "uses")
	var vv *Var
	for obj, info := range f.Vars {
		if obj.Name() == "v" {
			vv = info
		}
	}
	if vv == nil {
		t.Fatal("v not tracked")
	}
	if len(vv.Defs) != 2 {
		t.Errorf("v defs: got %d, want 2", len(vv.Defs))
	}
	if len(vv.Uses) == 0 {
		t.Errorf("v uses: got 0, want >0")
	}
	for i := 1; i < len(vv.Defs); i++ {
		if vv.Defs[i] < vv.Defs[i-1] {
			t.Errorf("defs not in source order")
		}
	}
}

func TestBoxingAtAssignment(t *testing.T) {
	f, _ := analyzeFunc(t, `
func boxAssign() any {
	v := 42
	var i any = v
	return i
}`, "boxAssign")
	if n := len(f.Boxings()); n != 1 {
		t.Fatalf("boxings: got %d, want 1", n)
	}
	b := f.Boxings()[0]
	if b.From == nil || b.From.String() != "int" {
		t.Errorf("boxing From: got %v, want int", b.From)
	}
}

func TestBoxingAtCallArg(t *testing.T) {
	f, _ := analyzeFunc(t, `
func take(v any) {}
func takeVariadic(vs ...any) {}
func boxCall() {
	take(7)
	takeVariadic(1, 2)
	take(nil)
}`, "boxCall")
	// 7 boxes, 1 and 2 box through the variadic tail; nil does not.
	if n := len(f.Boxings()); n != 3 {
		t.Errorf("boxings: got %d, want 3", n)
	}
}

func TestBoxingAtSendAndReturn(t *testing.T) {
	f, _ := analyzeFunc(t, `
func boxSend(ch chan any) {
	ch <- 5
}`, "boxSend")
	if n := len(f.Boxings()); n != 1 {
		t.Errorf("send boxings: got %d, want 1", n)
	}
}

func TestNoBoxingBetweenInterfaces(t *testing.T) {
	f, _ := analyzeFunc(t, `
func passThrough(v any) any {
	var w any = v
	return w
}`, "passThrough")
	if n := len(f.Boxings()); n != 0 {
		t.Errorf("boxings: got %d, want 0 (interface-to-interface)", n)
	}
}

func TestBoxingInCompositeLit(t *testing.T) {
	f, _ := analyzeFunc(t, `
func boxLit() []any {
	return []any{1, "two"}
}`, "boxLit")
	if n := len(f.Boxings()); n != 2 {
		t.Errorf("composite boxings: got %d, want 2", n)
	}
}

func TestNestedFuncLitReturnUsesOwnSignature(t *testing.T) {
	// The literal returns its own local; the enclosing function's
	// variable is only captured, not returned.
	f, _ := analyzeFunc(t, `
func outer() func() int {
	base := 10
	f := func() int {
		inner := base + 1
		return inner
	}
	return f
}`, "outer")
	if got := escOf(t, f, "base"); got != Heap {
		t.Errorf("base: got %v, want heap (captured)", got)
	}
	if got := escOf(t, f, "inner"); got != Heap {
		t.Errorf("inner: got %v, want heap (returned from literal)", got)
	}
}

func TestEscapeString(t *testing.T) {
	if Local.String() != "local" || Passed.String() != "passed" || Heap.String() != "heap" {
		t.Errorf("Escape.String: got %s/%s/%s", Local, Passed, Heap)
	}
}
