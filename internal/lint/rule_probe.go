package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// obsNilSafeTypes are the internal/obs hook types that follow the Probe
// discipline: production code holds nil pointers when observability is
// off, so every pointer-receiver method must be a no-op on nil. The same
// names are bound in internal/live, which holds nil instruments whenever
// its manager runs without a registry.
var obsNilSafeTypes = map[string]bool{
	"Span":         true,
	"Tracer":       true,
	"StateSampler": true,
	"Counter":      true,
	"Gauge":        true,
	"Histogram":    true,
	"Registry":     true,
	"EventLog":     true,
}

// probeNilSafetyAnalyzer enforces the metrics.Probe contract: production code
// paths pass a nil *Probe and pay only a branch, so every method with a
// pointer Probe receiver must begin with a nil-receiver guard — either
//
//	if p == nil { return ... }   (early return)
//	if p != nil { ... }          (guarded body)
//
// as its first statement. Without the guard, instrumented operators crash
// the un-instrumented production path. The internal/obs hook types
// (Tracer, Span, StateSampler and the registry instruments) follow the
// same discipline and get the same check.
var probeNilSafetyAnalyzer = &Analyzer{
	Name: "probe-nil-safety",
	Doc:  "methods on *Probe and the obs hook types must begin with a nil-receiver guard",
	Run: func(pass *Pass) any {
		p := pass.Pkg
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Body.List) == 0 {
					continue
				}
				recvName, typeName, ok := nilSafeReceiver(p, fn)
				if !ok {
					continue
				}
				if recvName == "" {
					pass.Reportf(fn.Pos(), "method %s has an unnamed *%s receiver and cannot nil-guard it", fn.Name.Name, typeName)
					continue
				}
				if !startsWithNilGuard(fn.Body.List[0], recvName) {
					pass.Reportf(fn.Pos(), "method %s on *%s must begin with an %q nil-receiver guard", fn.Name.Name, typeName, "if "+recvName+" != nil")
				}
			}
		}
		return nil
	},
}

// nilSafeReceiver reports whether fn's receiver is a pointer to a type
// bound by the nil-safety discipline — *Probe anywhere, or one of the
// internal/obs hook types inside that package — and returns the
// receiver's name and type name.
func nilSafeReceiver(p *Package, fn *ast.FuncDecl) (name, typeName string, ok bool) {
	obj, _ := p.Info.Defs[fn.Name].(*types.Func)
	if obj == nil {
		return "", "", false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	ptr, ok := recv.Type().(*types.Pointer)
	if !ok {
		return "", "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", "", false
	}
	typeName = named.Obj().Name()
	switch {
	case typeName == "Probe":
	case obsNilSafeTypes[typeName] && inScope(p, "internal/obs", "internal/live"):
	default:
		return "", "", false
	}
	if len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		n := fn.Recv.List[0].Names[0].Name
		if n != "_" {
			return n, typeName, true
		}
	}
	return "", typeName, true
}

// startsWithNilGuard reports whether stmt is `if recv == nil ...` or
// `if recv != nil ...` (either operand order).
func startsWithNilGuard(stmt ast.Stmt, recv string) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isRecv(bin.Y))
}
