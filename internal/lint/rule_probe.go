package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// probeNilSafetyRule enforces the metrics.Probe contract: production code
// paths pass a nil *Probe and pay only a branch, so every method with a
// pointer Probe receiver must begin with a nil-receiver guard — either
//
//	if p == nil { return ... }   (early return)
//	if p != nil { ... }          (guarded body)
//
// as its first statement. Without the guard, instrumented operators crash
// the un-instrumented production path.
var probeNilSafetyRule = Rule{
	Name: "probe-nil-safety",
	Doc:  "methods on *Probe must begin with a nil-receiver guard",
	Check: func(p *Package, r *Reporter) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Body.List) == 0 {
					continue
				}
				recvName, ok := pointerProbeReceiver(p, fn)
				if !ok {
					continue
				}
				if recvName == "" {
					r.Reportf(fn.Pos(), "method %s has an unnamed *Probe receiver and cannot nil-guard it", fn.Name.Name)
					continue
				}
				if !startsWithNilGuard(fn.Body.List[0], recvName) {
					r.Reportf(fn.Pos(), "method %s on *Probe must begin with an %q nil-receiver guard", fn.Name.Name, "if "+recvName+" != nil")
				}
			}
		}
	},
}

// pointerProbeReceiver reports whether fn's receiver is *Probe and
// returns the receiver's name.
func pointerProbeReceiver(p *Package, fn *ast.FuncDecl) (name string, ok bool) {
	obj, _ := p.Info.Defs[fn.Name].(*types.Func)
	if obj == nil {
		return "", false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	ptr, ok := recv.Type().(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Probe" {
		return "", false
	}
	if len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		n := fn.Recv.List[0].Names[0].Name
		if n != "_" {
			return n, true
		}
	}
	return "", true
}

// startsWithNilGuard reports whether stmt is `if recv == nil ...` or
// `if recv != nil ...` (either operand order).
func startsWithNilGuard(stmt ast.Stmt, recv string) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isRecv(bin.Y))
}
