package lint

import (
	"go/ast"
	"go/types"
)

// noPanicAnalyzer forbids panic in library code. The engine is grown toward
// serving production traffic; a panic in an operator or the optimizer
// takes the whole process down on one bad query. Executable entry points
// (cmd/, examples/) may panic — they own the process — and a library site
// that is genuinely unreachable (exhaustive switches over closed enums,
// Must* constructors for statically known inputs) carries a
// "// lint:allow panic <justification>" comment.
var noPanicAnalyzer = &Analyzer{
	Name: "no-panic",
	Doc:  "no panic in library code without a lint:allow justification",
	Run: func(pass *Pass) any {
		p := pass.Pkg
		if inScope(p, "cmd", "examples") {
			return nil
		}
		inspect(p, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			pass.Reportf(call.Pos(), "panic in library code; return an error, or justify with // lint:allow panic")
			return true
		})
		return nil
	},
}
