package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis, everything a rule needs to reason syntactically and
// semantically at once. TestFiles holds the package's _test.go files
// parsed without type information: the failpoint-coverage analyzer scans
// them for chaos schedules, and nothing else should rely on them being
// semantically resolved.
type Package struct {
	Path      string // import path, e.g. tdb/internal/core
	RelDir    string // module-relative directory with "/" separators; "" for the root
	Dir       string // absolute directory
	Root      string // module root directory (shared by every package of a run)
	Fset      *token.FileSet
	Files     []*ast.File
	TestFiles []*ast.File // parse-only; no entries in Types/Info
	Types     *types.Package
	Info      *types.Info
}

// Loader loads and type-checks every package of a module using only the
// standard library: module packages are parsed from source and checked
// on demand in dependency order, and imports outside the module are
// satisfied by the stdlib source importer (the repo is offline and
// dependency-free, so no export data or golang.org/x/tools is needed).
type Loader struct {
	fset    *token.FileSet
	root    string // module root directory (contains go.mod)
	modpath string
	std     types.Importer
	pkgs    map[string]*Package // keyed by RelDir
	loading map[string]bool     // RelDirs currently being checked (cycle guard)
}

// NewLoader prepares a loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, modpath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		modpath: modpath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// ModulePath returns the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.modpath }

// findModule walks upward from dir to the nearest go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modpath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found at or above %s", abs)
		}
	}
}

// LoadAll loads every package of the module, in deterministic order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var rels []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if goSource(e.Name()) {
				rel, err := filepath.Rel(l.root, path)
				if err != nil {
					return err
				}
				rels = append(rels, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(rels)
	pkgs := make([]*Package, 0, len(rels))
	for _, rel := range rels {
		p, err := l.load(rel)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func goSource(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// load parses and type-checks the package in the given module-relative
// directory, memoized.
func (l *Loader) load(rel string) (*Package, error) {
	if rel == "." {
		rel = ""
	}
	if p, ok := l.pkgs[rel]; ok {
		return p, nil
	}
	if l.loading[rel] {
		return nil, fmt.Errorf("lint: import cycle through %q", rel)
	}
	l.loading[rel] = true
	defer delete(l.loading, rel)

	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files, testFiles []*ast.File
	pkgName := ""
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, "_test.go") {
			// Test files are parsed for their syntax only: they may belong
			// to the external foo_test package and import anything, so they
			// never enter the type-checked file set.
			f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			testFiles = append(testFiles, f)
			continue
		}
		if !goSource(name) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("lint: %s: mixed packages %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: %s: no non-test Go files", dir)
	}

	path := l.modpath
	if rel != "" {
		path = l.modpath + "/" + rel
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: moduleImporter{l}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{
		Path:      path,
		RelDir:    rel,
		Dir:       dir,
		Root:      l.root,
		Fset:      l.fset,
		Files:     files,
		TestFiles: testFiles,
		Types:     tpkg,
		Info:      info,
	}
	l.pkgs[rel] = p
	return p, nil
}

// moduleImporter resolves module-internal imports through the loader and
// everything else through the stdlib source importer.
type moduleImporter struct{ l *Loader }

func (m moduleImporter) Import(path string) (*types.Package, error) {
	l := m.l
	if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modpath), "/")
		p, err := l.load(rel)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
