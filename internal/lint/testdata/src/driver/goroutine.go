package driver

import "context"

// BadStreamReader parses server-sent events on a goroutine nothing can
// stop: if the caller abandons the subscription the reader leaks with
// the connection it holds.
func BadStreamReader(read func() (string, error)) <-chan string {
	ch := make(chan string)
	go func() { // want worker-context
		for {
			ev, err := read()
			if err != nil {
				return
			}
			ch <- ev // want goroutine-hygiene
		}
	}()
	return ch
}

// GoodStreamReader threads the subscription context through the reader:
// Close cancels it, which both unblocks the send and ends the loop.
func GoodStreamReader(ctx context.Context, read func() (string, error)) <-chan string {
	ch := make(chan string)
	go func() {
		for {
			ev, err := read()
			if err != nil {
				return
			}
			select {
			case ch <- ev:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}
