// Command app shows the no-panic exemption: top-of-stack commands may
// panic freely (the rule only protects library packages).
package main

func main() {
	if len([]string{}) > 0 {
		panic("unreachable in the fixture") // cmd/ is exempt: no finding
	}
	println("ok")
}
