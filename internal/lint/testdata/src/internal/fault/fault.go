// Package fault is a minimal stand-in for the real failpoint registry:
// the failpoint-coverage analyzer resolves calls by package-path suffix
// (".../internal/fault"), so this fixture package exercises the same
// resolution as tdb/internal/fault.
package fault

// Declare registers a failpoint site.
func Declare(site, doc string) {}

// Check consults a site for an injected error.
func Check(site string) error { return nil }

// Torn consults a site for a truncated-write injection.
func Torn(site string, size int) (int, error) { return size, nil }

// Arm activates the sites named in an injection spec.
func Arm(spec string) error { return nil }
