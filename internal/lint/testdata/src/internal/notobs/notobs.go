// Package notobs checks the probe-nil-safety scoping: types that merely
// share the obs hook names outside internal/obs are not bound by the
// nil-receiver discipline.
package notobs

// Tracer happens to share a name with obs.Tracer but is unrelated.
type Tracer struct {
	n int
}

// Bump needs no guard: this Tracer is not an observability hook.
func (t *Tracer) Bump() {
	t.n++
}
