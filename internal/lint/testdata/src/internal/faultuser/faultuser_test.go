// The chaos-suite side of the failpoint fixture: _test.go files are
// parsed without type information, so the analyzer matches fault.* calls
// and spec-shaped string literals syntactically.
package faultuser

import "fix/internal/fault"

// armSchedule arms the covered site and one that was never declared (a
// typo: the injection it intends silently never fires).
func armSchedule() error {
	if err := fault.Arm("user/read=error:n=1"); err != nil {
		return err
	}
	return fault.Arm("user/raed=panic") // want failpoint-coverage
}

// chaosTable reaches Arm through a variable: the literal sweep still
// finds the sites, including inside multi-spec strings.
var chaosTable = []string{
	"user/read=delay:ms=5;user/unarmed-by-table=torn", // want failpoint-coverage
}

func armFromTable() {
	for _, spec := range chaosTable {
		_ = fault.Arm(spec)
	}
}

// declareRig is a test-local scratch site: declared and armed here only,
// it owes no production coverage and arming it is legitimate.
func declareRig() {
	fault.Declare("rig/scratch", "test-only scratch site")
	_ = fault.Arm("rig/scratch=error")
}
