// Package faultuser is the failpoint-coverage fixture: one fully covered
// site, one declared-but-dead site, one consulted-but-unarmed site, and
// (in the test file) a spec arming a site nobody declared.
package faultuser

import "fix/internal/fault"

func init() {
	fault.Declare("user/read", "covered: consulted below, armed in the test file")
	fault.Declare("user/dead", "never consulted by Check or Torn")            // want failpoint-coverage
	fault.Declare("user/unarmed", "consulted, but no chaos schedule arms it") // want failpoint-coverage
}

// Read consults the covered site and the unarmed one.
func Read() error {
	if err := fault.Check("user/read"); err != nil {
		return err
	}
	_, err := fault.Torn("user/unarmed", 8)
	return err
}
