package engine

import (
	"context"
	"sync"
)

// FanOut is the governed-worker shape: every shard observes the shared
// cancellation context, so the first failing worker (which cancels it)
// unwinds the whole fan-out.
func FanOut(ctx context.Context, runs []func(context.Context)) {
	var wg sync.WaitGroup
	for _, run := range runs {
		wg.Add(1)
		go func(run func(context.Context)) {
			defer wg.Done()
			run(ctx)
		}(run)
	}
	wg.Wait()
}

// Watch spawns a named-function worker; the context argument is its
// cancellation edge.
func Watch(ctx context.Context, f func(context.Context)) {
	go f(ctx)
}

// Detach launches a worker nothing can stop: no context, no quit channel —
// under a governor abort it leaks, holding its workspace forever.
func Detach(f func()) {
	go f() // want worker-context
}
