package engine

import "sync"

// ShardWorkers is the sanctioned parallel-driver shape: workers write to
// pre-allocated per-shard slots and synchronize with a WaitGroup, so there
// is no channel send to leak on.
func ShardWorkers(k int, run func(i int) int) []int {
	out := make([]int, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		// lint:allow worker-context — slot writers are WaitGroup-joined; wg.Wait bounds their lifetime.
		go func(i int) {
			defer wg.Done()
			out[i] = run(i)
		}(i)
	}
	wg.Wait()
	return out
}

// BadResultChannel ships shard results over an unguarded channel send: if
// the collector bails out early, every remaining worker blocks forever.
func BadResultChannel(k int, run func(i int) int) <-chan int {
	ch := make(chan int)
	for i := 0; i < k; i++ {
		go func(i int) { // want worker-context
			ch <- run(i) // want goroutine-hygiene
		}(i)
	}
	return ch
}

// GoodResultChannel guards the send with a quit receive.
func GoodResultChannel(k int, run func(i int) int, quit <-chan struct{}) <-chan int {
	ch := make(chan int)
	for i := 0; i < k; i++ {
		go func(i int) {
			select {
			case ch <- run(i):
			case <-quit:
			}
		}(i)
	}
	return ch
}
