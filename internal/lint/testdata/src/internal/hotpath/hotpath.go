// Package hotpath is the hotpath-alloc fixture: regions annotated
// //tdb:hotpath must not heap-allocate, box into interfaces, grow maps
// or appends, or capture closures; error paths and provably pre-sized or
// stack-bound allocations are exempt.
package hotpath

type item struct {
	key  int
	name string
}

// Sink receives boxed values; package-level so stores into it escape.
var Sink any

// BadFuncAnnotated is hot as a whole: the annotation sits on the line
// above the declaration.
//
//tdb:hotpath
func BadFuncAnnotated(items []item, out chan<- any) []int {
	acc := make([]int, 0) // want hotpath-alloc
	for _, it := range items {
		acc = append(acc, it.key) // want hotpath-alloc
		out <- it.key             // want hotpath-alloc
	}
	return acc
}

// BadLoopAnnotated is cold except for its annotated sweep loop.
func BadLoopAnnotated(items []item) []string {
	names := make([]string, 0) // cold: allocation outside the region
	//tdb:hotpath
	for _, it := range items {
		names = append(names, it.name) // want hotpath-alloc
		Sink = it.key                  // want hotpath-alloc
	}
	return names
}

// GoodPresized shows the two clean append shapes: a make with explicit
// capacity, and the s[:0] reuse idiom.
//
//tdb:hotpath
func GoodPresized(items []item, scratch []int) ([]int, []int) {
	acc := make([]int, 0, len(items))
	kept := scratch[:0]
	for _, it := range items {
		acc = append(acc, it.key)
		kept = append(kept, it.key)
	}
	return acc, kept
}

// BadGrowth collects the per-iteration allocation shapes.
//
//tdb:hotpath
func BadGrowth(items []item) map[int]string {
	index := make(map[int]string) // want hotpath-alloc
	for _, it := range items {
		index[it.key] = it.name // want hotpath-alloc
		wake := make(chan int)  // want hotpath-alloc
		_ = wake
	}
	return index
}

// BadCapture allocates a closure per iteration.
func BadCapture(items []item, run func(func() int)) {
	//tdb:hotpath
	for _, it := range items {
		it := it
		run(func() int { return it.key }) // want hotpath-alloc
	}
}

// BadBoxing converts concrete values to interfaces in three positions:
// assignment, call argument, and variadic call.
//
//tdb:hotpath
func BadBoxing(items []item, consume func(any), consumeAll func(...any)) {
	for _, it := range items {
		var v any = it.key // want hotpath-alloc
		_ = v
		consume(it.name)       // want hotpath-alloc
		consumeAll(it.key, it) // want hotpath-alloc
	}
}

// GoodErrorPath keeps its failure branch out of the audit: an if-body
// ending in a return is an error path, not hot-loop steady state.
//
//tdb:hotpath
func GoodErrorPath(items []item, limit int) ([]int, error) {
	acc := make([]int, 0, len(items))
	for _, it := range items {
		if len(acc) >= limit {
			detail := make([]string, 0) // exempt: error path
			detail = append(detail, it.name)
			return nil, &limitError{what: detail}
		}
		acc = append(acc, it.key)
	}
	return acc, nil
}

// limitError carries the error-path allocation above.
type limitError struct{ what []string }

func (e *limitError) Error() string { return "limit exceeded" }

// GoodStackBound allocations stay local: the escape lattice proves the
// pointer never leaves the function, so new is not charged.
//
//tdb:hotpath
func GoodStackBound(items []item) int {
	total := 0
	for _, it := range items {
		tmp := new(item)
		tmp.key = it.key
		total += tmp.key
	}
	return total
}

// BadEscapingNew is the same shape, but the pointer escapes into the
// package-level sink.
//
//tdb:hotpath
func BadEscapingNew(items []item) {
	for _, it := range items {
		tmp := new(item) // want hotpath-alloc
		tmp.key = it.key
		Sink = tmp // want hotpath-alloc
	}
}

// GoodJustified keeps a boxing but owns the decision.
//
//tdb:hotpath
func GoodJustified(items []item, consume func(any)) {
	for _, it := range items {
		consume(it.key) // lint:allow hotpath-alloc — boxing accepted until the typed consumer lands
	}
}

// ColdUnannotated is identical to BadGrowth but unannotated: nothing is
// reported outside a //tdb:hotpath region.
func ColdUnannotated(items []item) map[int]string {
	index := make(map[int]string)
	for _, it := range items {
		index[it.key] = it.name
	}
	return index
}
