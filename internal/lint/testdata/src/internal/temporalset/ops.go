// Package temporalset is the interval-encapsulation consumer fixture:
// outside the defining package, relating two Intervals by raw endpoint
// arithmetic must go through the named Allen relationship methods.
package temporalset

import "fix/internal/interval"

// BadBefore re-derives Before from raw endpoints of two intervals.
func BadBefore(a, b interval.Interval) bool {
	return a.End < b.Start // want interval-encapsulation
}

// BadOverlap compares endpoints of distinct intervals twice.
func BadOverlap(a, b interval.Interval) bool {
	return a.Start < b.End && // want interval-encapsulation
		b.Start < a.End // want interval-encapsulation
}

// GoodBefore uses the named relationship.
func GoodBefore(a, b interval.Interval) bool { return a.Before(b) }

// GoodWellFormed compares endpoints of the SAME interval — an
// intra-tuple sanity constraint, not a cross-interval relationship.
func GoodWellFormed(a interval.Interval) bool { return a.Start < a.End }

// GoodScalar compares an endpoint against a scalar instant, which no
// relationship method expresses.
func GoodScalar(a interval.Interval, t interval.Time) bool { return a.Start <= t }
