package core

// BadProducer sends with a bare `ch <- v` inside a goroutine: once the
// consumer walks away, the goroutine blocks forever.
func BadProducer(xs []int) (<-chan int, chan struct{}) {
	ch := make(chan int)
	quit := make(chan struct{})
	go func() { // want worker-context
		defer close(ch)
		for _, x := range xs {
			ch <- x // want goroutine-hygiene
		}
	}()
	return ch, quit
}

// GoodProducer follows the Async.GoRun pattern: every send is a select
// case next to a quit receive, so closing quit always unblocks it.
func GoodProducer(xs []int) (<-chan int, chan struct{}) {
	ch := make(chan int)
	quit := make(chan struct{})
	go func() {
		defer close(ch)
		for _, x := range xs {
			select {
			case ch <- x:
			case <-quit:
				return
			}
		}
	}()
	return ch, quit
}

// sends outside goroutines are not the rule's business: the caller owns
// its own blocking behavior.
func SynchronousSend(ch chan int, v int) {
	ch <- v
}
