// Package core is the determinism and goroutine-hygiene fixture: it
// sits in a path the oracle rules scope to (internal/core).
package core

import (
	"math/rand"
	"sort"
	"time"
)

// BadClock consults the wall clock inside an oracle package.
func BadClock() int64 {
	return time.Now().UnixNano() // want determinism
}

// BadGlobalRand draws from the globally seeded source.
func BadGlobalRand() int {
	return rand.Intn(10) // want determinism
}

// BadMapRange iterates a map in emission order.
func BadMapRange(m map[string]int) int {
	total := 0
	for _, v := range m { // want determinism
		total += v
	}
	return total
}

// GoodSeededRand builds a deterministic generator: rand.New and
// rand.NewSource are sanctioned, and methods on the seeded *rand.Rand
// are fine.
func GoodSeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// GoodSortedKeys materializes and sorts the keys before iterating.
func GoodSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // lint:allow determinism — keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodSliceRange ranges over a slice, which is ordered.
func GoodSliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
