package partition

// FanOut streams shard elements to a consumer goroutine per shard with a
// bare send: abandoning the output channel leaks every producer.
func FanOut(shards [][]int) <-chan int {
	ch := make(chan int)
	for _, sh := range shards {
		go func(sh []int) {
			for _, x := range sh {
				ch <- x // want goroutine-hygiene
			}
		}(sh)
	}
	return ch
}

// FanOutGuarded is the same fan-out with every send selectable against a
// quit receive, so the consumer can always release the producers.
func FanOutGuarded(shards [][]int, quit <-chan struct{}) <-chan int {
	ch := make(chan int)
	for _, sh := range shards {
		go func(sh []int) {
			for _, x := range sh {
				select {
				case ch <- x:
				case <-quit:
					return
				}
			}
		}(sh)
	}
	return ch
}
