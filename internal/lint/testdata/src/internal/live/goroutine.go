// Package live is the internal/live fixture: the goroutine-hygiene and
// probe-nil-safety disciplines extend to the live ingestion subsystem,
// whose standing queries run on operator goroutines and whose instruments
// are nil whenever the manager has no registry.
package live

// Emit streams deltas to a subscriber with a bare send: a subscriber that
// stops polling leaks the standing query's operator goroutine.
func Emit(deltas []int) <-chan int {
	ch := make(chan int)
	go func() { // want worker-context
		for _, d := range deltas {
			ch <- d // want goroutine-hygiene
		}
	}()
	return ch
}

// EmitGuarded is the same delta stream with every send selectable against
// the query's stop channel, so deregistration always releases the operator.
func EmitGuarded(deltas []int, stop <-chan struct{}) <-chan int {
	ch := make(chan int)
	go func() {
		for _, d := range deltas {
			select {
			case ch <- d:
			case <-stop:
				return
			}
		}
	}()
	return ch
}
