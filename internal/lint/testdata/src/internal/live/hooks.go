package live

// Gauge mirrors a live-subsystem instrument: nil whenever the manager was
// built without a registry, so every method must no-op on nil.
type Gauge struct {
	v int64
}

// Set is the negative case: the guard comes first.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
}

// BadSet touches the receiver with no guard.
func (g *Gauge) BadSet(v int64) { // want probe-nil-safety
	g.v = v
}
