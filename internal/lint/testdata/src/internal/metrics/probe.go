// Package metrics is the probe-nil-safety fixture: methods on *Probe
// must begin with a nil-receiver guard.
package metrics

// Probe mirrors tdb's cost probe: a nil *Probe is a valid no-op sink.
type Probe struct {
	tuples int
	state  int
}

// Tuple is the negative case: the guard comes first.
func (p *Probe) Tuple() {
	if p == nil {
		return
	}
	p.tuples++
}

// GuardReversed is also fine: either operand order is a guard.
func (p *Probe) GuardReversed() {
	if nil == p {
		return
	}
	p.tuples++
}

// NonNilGuard inverts the test but still guards the receiver first.
func (p *Probe) NonNilGuard() {
	if p != nil {
		p.tuples++
	}
}

// BadNoGuard dereferences the receiver with no guard at all.
func (p *Probe) BadNoGuard() { // want probe-nil-safety
	p.tuples++
}

// BadLateGuard guards, but only after other work.
func (p *Probe) BadLateGuard() { // want probe-nil-safety
	x := 1
	if p == nil {
		return
	}
	p.state += x
}

// BadUnnamed cannot guard: the receiver has no name. (Empty bodies are
// skipped, so the body must do something to be checked.)
func (*Probe) BadUnnamed() { // want probe-nil-safety
	println("side effect")
}

// value receivers are out of scope: a nil *Probe cannot reach them
// without the caller dereferencing first.
func (p Probe) Value() int { return p.tuples }
