// Package relation is the no-panic fixture: library code must return
// errors; panic survives only at sites justified with // lint:allow.
package relation

import "errors"

// Row is a minimal row for the fixture.
type Row []string

// Get panics on a bad index — untrusted input reaching a library panic
// is exactly what the rule exists to catch.
func Get(r Row, i int) string {
	if i < 0 || i >= len(r) {
		panic("index out of range") // want no-panic
	}
	return r[i]
}

// GetChecked is the corrected shape: the same contract, as an error.
func GetChecked(r Row, i int) (string, error) {
	if i < 0 || i >= len(r) {
		return "", errors.New("relation: index out of range")
	}
	return r[i], nil
}

// MustGet is a justified panic: a documented Must* helper whose inputs
// are statically known. Same-line directive form.
func MustGet(r Row, i int) string {
	s, err := GetChecked(r, i)
	if err != nil {
		panic(err) // lint:allow panic — Must* helper for fixtures
	}
	return s
}

// kindName demonstrates the directive on the line above the panic.
func kindName(k int) string {
	switch k {
	case 0:
		return "snapshot"
	case 1:
		return "temporal"
	}
	// lint:allow panic — unreachable: k is a closed enum
	panic("invalid kind")
}

var _ = kindName
