// Package interval is the interval-encapsulation fixture: it owns the
// Interval type, so direct endpoint comparisons here are the rule's one
// sanctioned home and must NOT be reported.
package interval

// Time is a discrete chronon index.
type Time int64

// Interval is a half-open lifespan [Start, End).
type Interval struct {
	Start, End Time
}

// Before is X before Y: X.TE < Y.TS. The defining package may touch
// endpoints of two different intervals freely.
func (iv Interval) Before(o Interval) bool { return iv.End < o.Start }

// Meets is X meets Y: X.TE == Y.TS.
func (iv Interval) Meets(o Interval) bool { return iv.End == o.Start }

// Overlaps is the paper's symmetric overlap test.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start < o.End && o.Start < iv.End
}
