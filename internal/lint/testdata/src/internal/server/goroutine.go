package server

import "context"

// BadSubscribePump ships deltas to the response writer goroutine over an
// unguarded send: when the client disconnects and the consumer stops
// reading, the pump blocks forever, pinning the standing query.
func BadSubscribePump(poll func() []string) <-chan []string {
	ch := make(chan []string)
	go func() { // want worker-context
		for {
			ch <- poll() // want goroutine-hygiene
		}
	}()
	return ch
}

// GoodSubscribePump carries the request context: the send selects against
// ctx.Done, so a disconnect or a drain unwinds the pump immediately.
func GoodSubscribePump(ctx context.Context, poll func() []string) <-chan []string {
	ch := make(chan []string)
	go func() {
		for {
			select {
			case ch <- poll():
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}
