// Package obs is the probe-nil-safety fixture for the observability hook
// types: pointer-receiver methods on the tracer, sampler and registry
// instruments must begin with a nil-receiver guard, exactly like *Probe.
package obs

// Tracer mirrors tdb's span collector: nil means tracing is off.
type Tracer struct {
	spans int
}

// Span mirrors one traced operator.
type Span struct {
	label string
}

// StateSampler mirrors the state(t) curve collector.
type StateSampler struct {
	seen int64
}

// Counter mirrors the registry's counter instrument.
type Counter struct {
	v int64
}

// Registry mirrors the instrument registry.
type Registry struct {
	names []string
}

// Begin is the negative case: the guard comes first.
func (t *Tracer) Begin(label string) *Span {
	if t == nil {
		return nil
	}
	t.spans++
	return &Span{label: label}
}

// BadBegin touches the receiver with no guard.
func (t *Tracer) BadBegin() { // want probe-nil-safety
	t.spans++
}

// Finish guards with the inverted test, which is also fine.
func (s *Span) Finish() {
	if s != nil {
		s.label = ""
	}
}

// BadFinish guards only after other work.
func (s *Span) BadFinish() { // want probe-nil-safety
	x := "done"
	if s == nil {
		return
	}
	s.label = x
}

// Observe is guarded with the operands reversed.
func (s *StateSampler) Observe(tick int64) {
	if nil == s {
		return
	}
	s.seen = tick
}

// BadInc on the counter instrument has no guard.
func (c *Counter) BadInc() { // want probe-nil-safety
	c.v++
}

// BadUnnamed cannot guard: the receiver has no name. (Empty bodies are
// skipped, so the body must do something to be checked.)
func (*Registry) BadUnnamed() { // want probe-nil-safety
	println("side effect")
}

// value receivers are out of scope.
func (c Counter) Value() int64 { return c.v }
