// Package lockfix is the lock-order fixture: the pool and the catalog
// mutexes are taken in opposite orders by two paths (a cycle), and
// several operations block on channels while holding a lock.
package lockfix

import "sync"

// Pool mirrors the buffer pool's mutex owner.
type Pool struct {
	mu    sync.Mutex
	pages int
}

// Catalog mirrors a second lock domain.
type Catalog struct {
	mu     sync.Mutex
	tables int
}

// GrowThenRegister takes pool before catalog. The acquisition edge it
// records closes a cycle with RegisterThenGrow below; the report anchors
// on this (earliest) edge.
func GrowThenRegister(p *Pool, c *Catalog) {
	p.mu.Lock()
	c.mu.Lock() // want lock-order
	c.tables++
	p.pages++
	c.mu.Unlock()
	p.mu.Unlock()
}

// RegisterThenGrow takes catalog before pool: the opposite order.
func RegisterThenGrow(p *Pool, c *Catalog) {
	c.mu.Lock()
	p.mu.Lock()
	p.pages++
	c.tables++
	p.mu.Unlock()
	c.mu.Unlock()
}

// NotifyWhileHeld sends on a channel with the pool lock held: the
// receiver may need the same lock to drain, so this can deadlock.
func NotifyWhileHeld(p *Pool, wake chan<- int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pages++
	wake <- p.pages // want lock-order
}

// WaitWhileHeld blocks on a receive under the lock.
func WaitWhileHeld(p *Pool, done <-chan struct{}) {
	p.mu.Lock()
	<-done // want lock-order
	p.mu.Unlock()
}

// SelectWhileHeld parks in a select under the lock.
func SelectWhileHeld(p *Pool, in <-chan int, quit <-chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // want lock-order
	case v := <-in:
		p.pages = v
	case <-quit:
	}
}

// CloseWhileHeld is clean: close never blocks.
func CloseWhileHeld(p *Pool, wake chan int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	close(wake)
}

// NotifyAfterUnlock is the clean shape: release first, then send.
func NotifyAfterUnlock(p *Pool, wake chan<- int) {
	p.mu.Lock()
	p.pages++
	n := p.pages
	p.mu.Unlock()
	wake <- n
}

// SendFromGoroutine is clean too: the literal runs on its own goroutine,
// after this frame's locks are no concern of its context.
func SendFromGoroutine(p *Pool, wake chan<- int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		wake <- 1
	}()
}

// registerLocked acquires the catalog lock; CallRegisterWhileHeld calls
// it with the pool lock held, which the one-level call expansion turns
// into the same pool→catalog edge as GrowThenRegister (no new finding —
// the cycle is reported once, at its earliest edge).
func registerLocked(c *Catalog) {
	c.mu.Lock()
	c.tables++
	c.mu.Unlock()
}

// CallRegisterWhileHeld drives the call-summary expansion.
func CallRegisterWhileHeld(p *Pool, c *Catalog) {
	p.mu.Lock()
	registerLocked(c)
	p.mu.Unlock()
}
