// Package storage is the error-discipline fixture: calls whose error
// results vanish as bare statements hide I/O failures.
package storage

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

// ErrFull is the fixture's stand-in failure.
var ErrFull = errors.New("storage: full")

type sink struct{}

func (sink) Flush() error { return ErrFull }

func (sink) Write(p []byte) (int, error) { return len(p), nil }

// BadDrop discards Flush's error as a bare statement.
func BadDrop(s sink) {
	s.Flush() // want error-discipline
}

// BadDropMulti drops an (int, error) pair the same way.
func BadDropMulti(s sink) {
	fmt.Fprintf(s, "page %d\n", 7) // want error-discipline
}

// GoodHandled propagates the error.
func GoodHandled(s sink) error {
	return s.Flush()
}

// GoodExplicitDiscard makes the drop visible at the call site.
func GoodExplicitDiscard(s sink) {
	_ = s.Flush()
}

// GoodJustified keeps the bare call but owns the decision.
func GoodJustified(s sink) {
	s.Flush() // lint:allow error-discipline — best-effort flush on shutdown
}

// GoodInfallible writes to strings.Builder and the terminal, both of
// which the rule exempts.
func GoodInfallible() {
	var b strings.Builder
	b.WriteString("hello")
	fmt.Fprintln(&b, "world")
	fmt.Println(b.String())
	fmt.Fprintln(os.Stderr, "status")
}

// GoodDeferred cleanup is conventional and is not flagged.
func GoodDeferred(s sink) {
	defer s.Flush()
}
