package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one invariant check, shaped after golang.org/x/tools'
// go/analysis (which the repo cannot depend on): a named pass over a
// type-checked package that may declare dependencies on other analyzers
// and may export facts for a whole-module finish phase.
//
// The lifecycle, driven by Check:
//
//  1. The requested analyzers are closed over Requires and topologically
//     sorted; a Requires cycle is a configuration error.
//  2. For every package, in deterministic (import-path) order, each
//     analyzer's Run is invoked with a Pass. Run may report diagnostics,
//     export facts, and return a result value; the results of the
//     analyzer's Requires are available through Pass.ResultOf.
//  3. After every package has been visited, each analyzer's Finish hook
//     (if any) runs once with a FinishPass holding the accumulated facts
//     of the analyzer and its Requires — the cross-package phase where
//     the lock-ordering graph is cycle-checked and the failpoint registry
//     is reconciled against its consumers.
//
// Analyzers marked Deep form the dataflow tier behind `tdblint -deep`:
// they are skipped by the default (syntactic) run but selectable by name.
type Analyzer struct {
	Name string
	Doc  string
	// Deep marks the analyzer as part of the dataflow tier, run only
	// under -deep (or when named explicitly in a -rules filter).
	Deep bool
	// Requires lists analyzers whose per-package results (Pass.ResultOf)
	// and facts (FinishPass.FactsOf) this analyzer consumes. The driver
	// runs them first.
	Requires []*Analyzer
	// Run inspects one package. It may return a result value for
	// dependent analyzers; nil is fine.
	Run func(pass *Pass) any
	// Finish, if non-nil, runs once after every package's Run, for
	// whole-module checks over exported facts.
	Finish func(pass *FinishPass)
}

// Fact is one cross-package observation exported by an analyzer's Run,
// tagged with the package that produced it.
type Fact struct {
	Pkg   *Package
	Value any
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Pkg *Package
	// ResultOf holds the Run results of the analyzer's Requires for this
	// package, keyed by analyzer.
	ResultOf map[*Analyzer]any

	analyzer *Analyzer
	reporter *Reporter
	facts    *factStore
}

// Reportf files a diagnostic at pos unless a lint:allow comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.reporter.Reportf(pos, format, args...)
}

// ExportFact records a cross-package observation for the finish phase.
func (p *Pass) ExportFact(v any) {
	p.facts.add(p.analyzer, Fact{Pkg: p.Pkg, Value: v})
}

// FinishPass carries an analyzer's whole-module finish phase.
type FinishPass struct {
	Fset *token.FileSet

	analyzer *Analyzer
	reporter *Reporter
	facts    *factStore
}

// Reportf files a diagnostic at pos unless a lint:allow comment covers it.
func (p *FinishPass) Reportf(pos token.Pos, format string, args ...any) {
	p.reporter.Reportf(pos, format, args...)
}

// Facts returns the facts the finishing analyzer itself exported, in
// package order.
func (p *FinishPass) Facts() []Fact { return p.facts.of(p.analyzer) }

// FactsOf returns the facts exported by a — which must be the finishing
// analyzer itself or one of its Requires, the same visibility contract as
// Pass.ResultOf — in package order. Facts of unrelated analyzers are not
// visible: it returns nil for them.
func (p *FinishPass) FactsOf(a *Analyzer) []Fact {
	if a != p.analyzer && !requiresAnalyzer(p.analyzer, a) {
		return nil
	}
	return p.facts.of(a)
}

func requiresAnalyzer(from, to *Analyzer) bool {
	for _, r := range from.Requires {
		if r == to {
			return true
		}
	}
	return false
}

// factStore accumulates exported facts per analyzer, in export order
// (packages are visited deterministically, so the order is stable).
type factStore struct {
	m map[*Analyzer][]Fact
}

func newFactStore() *factStore { return &factStore{m: map[*Analyzer][]Fact{}} }

func (s *factStore) add(a *Analyzer, f Fact) { s.m[a] = append(s.m[a], f) }
func (s *factStore) of(a *Analyzer) []Fact   { return s.m[a] }

// Analyzers returns every registered analyzer, in fixed registration
// order: the syntactic tier first, then the dataflow (deep) tier.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		probeNilSafetyAnalyzer,
		intervalEncapsulationAnalyzer,
		noPanicAnalyzer,
		determinismAnalyzer,
		goroutineHygieneAnalyzer,
		workerContextAnalyzer,
		errorDisciplineAnalyzer,
		flowAnalyzer,
		hotpathAllocAnalyzer,
		lockOrderAnalyzer,
		failpointCoverageAnalyzer,
	}
}

// ruleAliases maps alternative lint:allow tokens to analyzer names, so
// the natural comment "lint:allow panic" addresses the no-panic rule.
var ruleAliases = map[string]string{
	"panic":     "no-panic",
	"hotpath":   "hotpath-alloc",
	"lockorder": "lock-order",
	"failpoint": "failpoint-coverage",
}

// SelectAnalyzers filters the registry by a comma-separated name list.
// The empty filter selects the whole syntactic tier, plus the deep tier
// when deep is set; naming a deep analyzer explicitly always selects it.
// Requires dependencies are added implicitly by Check.
func SelectAnalyzers(filter string, deep bool) ([]*Analyzer, error) {
	all := Analyzers()
	if filter == "" {
		var out []*Analyzer
		for _, a := range all {
			if deep || !a.Deep {
				out = append(out, a)
			}
		}
		return out, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if canon, ok := ruleAliases[name]; ok {
			name = canon
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (have %s)", name, analyzerNames(all))
		}
		out = append(out, a)
	}
	return out, nil
}

func analyzerNames(as []*Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// closeAndSort returns the Requires closure of the given analyzers in a
// deterministic topological order (dependencies before dependents, the
// given relative order preserved where the graph allows), or an error on
// a Requires cycle.
func closeAndSort(as []*Analyzer) ([]*Analyzer, error) {
	// Close over Requires, preserving first-seen order.
	var closure []*Analyzer
	seen := map[*Analyzer]bool{}
	var add func(a *Analyzer)
	add = func(a *Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		closure = append(closure, a)
		for _, r := range a.Requires {
			add(r)
		}
	}
	for _, a := range as {
		add(a)
	}

	// Kahn's algorithm, ready set ordered by position in the closure.
	pos := map[*Analyzer]int{}
	for i, a := range closure {
		pos[a] = i
	}
	indeg := map[*Analyzer]int{}
	dependents := map[*Analyzer][]*Analyzer{}
	for _, a := range closure {
		for _, r := range a.Requires {
			indeg[a]++
			dependents[r] = append(dependents[r], a)
		}
	}
	var ready []*Analyzer
	for _, a := range closure {
		if indeg[a] == 0 {
			ready = append(ready, a)
		}
	}
	var order []*Analyzer
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return pos[ready[i]] < pos[ready[j]] })
		a := ready[0]
		ready = ready[1:]
		order = append(order, a)
		for _, d := range dependents[a] {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if len(order) != len(closure) {
		var stuck []string
		for _, a := range closure {
			if indeg[a] > 0 {
				stuck = append(stuck, a.Name)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("lint: analyzer Requires cycle through %s", strings.Join(stuck, ", "))
	}
	return order, nil
}

// Check runs the given analyzers (plus their Requires, in dependency
// order) over the given packages, then the finish phase, and returns the
// sorted findings. A Requires cycle is reported as an error.
func Check(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	order, err := closeAndSort(analyzers)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	facts := newFactStore()
	allow := suppressions(pkgs)
	var fset *token.FileSet
	for _, p := range pkgs {
		fset = p.Fset
		results := map[*Analyzer]any{}
		for _, a := range order {
			pass := &Pass{
				Pkg:      p,
				ResultOf: map[*Analyzer]any{},
				analyzer: a,
				reporter: &Reporter{fset: p.Fset, rule: a.Name, allow: allow, out: &diags},
				facts:    facts,
			}
			for _, r := range a.Requires {
				pass.ResultOf[r] = results[r]
			}
			results[a] = a.Run(pass)
		}
	}
	for _, a := range order {
		if a.Finish == nil || fset == nil {
			continue
		}
		a.Finish(&FinishPass{
			Fset:     fset,
			analyzer: a,
			reporter: &Reporter{fset: fset, rule: a.Name, allow: allow, out: &diags},
			facts:    facts,
		})
	}
	sortDiagnostics(diags)
	return diags, nil
}
