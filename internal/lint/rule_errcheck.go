package lint

import (
	"go/ast"
	"go/types"
)

// errorDisciplineAnalyzer is an errcheck-lite over go/types: a call whose
// error result is silently dropped as an expression statement hides scan
// failures, constraint violations and I/O errors from the caller. Writes
// to the infallible in-memory writers (strings.Builder, bytes.Buffer) and
// best-effort terminal output (fmt.Print* and Fprint* to os.Stdout or
// os.Stderr) are exempt, as are examples; explicit `_ =` discards and
// deferred cleanup are considered deliberate and are not flagged.
var errorDisciplineAnalyzer = &Analyzer{
	Name: "error-discipline",
	Doc:  "calls returning error must not be dropped as bare statements",
	Run: func(pass *Pass) any {
		p := pass.Pkg
		if inScope(p, "examples") {
			return nil
		}
		inspect(p, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			t := p.Info.Types[call].Type
			if t == nil || !returnsError(t) || exemptCall(p, call) {
				return true
			}
			pass.Reportf(call.Pos(), "unchecked error result; handle it, assign to _, or justify with // lint:allow error-discipline")
			return true
		})
		return nil
	},
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func returnsError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if returnsError(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return types.Implements(t, errorIface)
}

// exemptCall reports whether the dropped error is conventionally ignored.
func exemptCall(p *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return infallibleWriterType(recv.Type())
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		w := ast.Unparen(call.Args[0])
		if t := p.Info.Types[w].Type; t != nil && infallibleWriterType(t) {
			return true
		}
		if sel, ok := w.(*ast.SelectorExpr); ok {
			if obj, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && obj.Pkg() != nil &&
				obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
				return true
			}
		}
	}
	return false
}

// infallibleWriterType reports whether t is (a pointer to)
// strings.Builder or bytes.Buffer, whose Write methods never return a
// non-nil error.
func infallibleWriterType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}
