// Package lint implements tdblint, the repo-specific static-analysis
// pass. The paper's guarantees are invariants — half-open [TS, TE)
// lifespans compared only through package interval's Allen predicates,
// nil-safe metrics.Probe workspace accounting, deterministic experiment
// oracles, quit-guarded processor goroutines — and go vet cannot see any
// of them. Each analyzer here encodes one such invariant over the
// type-checked syntax trees of the whole module and reports findings as
//
//	file:line: [rule] message
//
// The pass has two tiers. The syntactic tier (the seven original rules)
// works on single packages. The dataflow tier behind `tdblint -deep`
// builds per-function def-use chains and a conservative escape lattice
// (internal/lint/flow) and layers whole-module analyses on top: hot-path
// allocation auditing against a checked-in baseline, lock-ordering cycle
// detection, and failpoint-coverage reconciliation. See analysis.go for
// the driver contract (Requires, facts, finish phase).
//
// A finding is suppressed by a justification comment on the same line or
// the line directly above:
//
//	// lint:allow <rule> <why this site is exempt>
//
// The driver (cmd/tdblint) loads the module with only the standard
// library — go/parser for syntax, go/types with the stdlib source
// importer for semantics — so the pass runs offline with zero
// dependencies, exactly like the rest of the repo.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding of one rule. File is module-relative when
// the diagnostic leaves Run; inside Check it is whatever the FileSet
// holds (absolute for loaded modules).
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the finding in the canonical file:line: [rule] message
// form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Rule, d.Message)
}

// Reporter collects diagnostics for one rule, applying lint:allow
// suppressions.
type Reporter struct {
	fset  *token.FileSet
	rule  string
	allow map[string]map[int]map[string]bool // file -> line -> rules
	out   *[]Diagnostic
}

// Reportf files a diagnostic at pos unless a lint:allow comment covers it.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.fset.Position(pos)
	if lines := r.allow[p.Filename]; lines != nil {
		// A suppression applies to findings on its own line and on the
		// line directly below (comment-above style).
		for _, line := range []int{p.Line, p.Line - 1} {
			if lines[line][r.rule] {
				return
			}
		}
	}
	*r.out = append(*r.out, Diagnostic{
		File: p.Filename, Line: p.Line, Col: p.Column,
		Rule: r.rule, Message: fmt.Sprintf(format, args...),
	})
}

// suppressions scans every package's comments — test files included,
// since the failpoint analyzer reports into them — for lint:allow
// directives and returns file -> line -> allowed-rule-set.
func suppressions(pkgs []*Package) map[string]map[int]map[string]bool {
	out := map[string]map[int]map[string]bool{}
	for _, p := range pkgs {
		files := append(append([]*ast.File{}, p.Files...), p.TestFiles...)
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "lint:allow ")
					if idx < 0 {
						continue
					}
					fields := strings.Fields(c.Text[idx+len("lint:allow "):])
					if len(fields) == 0 {
						continue
					}
					rule := fields[0]
					if canon, ok := ruleAliases[rule]; ok {
						rule = canon
					}
					pos := p.Fset.Position(c.Pos())
					if out[pos.Filename] == nil {
						out[pos.Filename] = map[int]map[string]bool{}
					}
					if out[pos.Filename][pos.Line] == nil {
						out[pos.Filename][pos.Line] = map[string]bool{}
					}
					out[pos.Filename][pos.Line][rule] = true
				}
			}
		}
	}
	return out
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// relativize rewrites absolute diagnostic paths to module-relative ones
// (slash-separated), the form the baseline file and CI artifacts use.
func relativize(diags []Diagnostic, root string) {
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
}

// Config configures a Run.
type Config struct {
	// Dir names the module to lint (any directory at or under the root).
	Dir string
	// Rules is a comma-separated analyzer filter; empty selects the tier
	// implied by Deep.
	Rules string
	// Deep enables the dataflow tier (flow-based analyzers).
	Deep bool
	// JSON emits the findings as a JSON array instead of text lines.
	JSON bool
	// Baseline, when non-empty, names the checked-in findings baseline:
	// findings matching it are suppressed, findings missing from it are
	// reported as stale entries, so the file must stay exact.
	Baseline string
	// WriteBaseline rewrites the Baseline file from the current findings
	// instead of diffing against it.
	WriteBaseline bool
}

// Run loads the module at cfg.Dir, applies the selected analyzers, and
// writes the findings to w (one line each, or a JSON array with
// cfg.JSON). It returns the number of findings that should gate CI:
// after baseline subtraction, plus stale baseline entries.
func Run(cfg Config, w io.Writer) (int, error) {
	analyzers, err := SelectAnalyzers(cfg.Rules, cfg.Deep)
	if err != nil {
		return 0, err
	}
	l, err := NewLoader(cfg.Dir)
	if err != nil {
		return 0, err
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		return 0, err
	}
	diags, err := Check(pkgs, analyzers)
	if err != nil {
		return 0, err
	}
	relativize(diags, l.root)

	if cfg.WriteBaseline {
		if cfg.Baseline == "" {
			return 0, fmt.Errorf("lint: -write-baseline needs a baseline path")
		}
		if err := WriteBaseline(cfg.Baseline, diags); err != nil {
			return 0, err
		}
		_, _ = fmt.Fprintf(w, "baseline: wrote %d finding(s) to %s\n", len(diags), cfg.Baseline)
		return 0, nil
	}
	if cfg.Baseline != "" {
		base, err := LoadBaseline(cfg.Baseline)
		if err != nil {
			return 0, err
		}
		fresh, stale := base.Apply(diags)
		diags = append(fresh, stale...)
		sortDiagnostics(diags)
	}

	if cfg.JSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			return len(diags), err
		}
		return len(diags), nil
	}
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return len(diags), err
		}
	}
	return len(diags), nil
}

// inScope reports whether the package's module-relative directory is the
// given prefix or nested below it — the unit rules use to scope
// themselves to subsystems like internal/core.
func inScope(p *Package, prefixes ...string) bool {
	for _, pre := range prefixes {
		if p.RelDir == pre || strings.HasPrefix(p.RelDir, pre+"/") {
			return true
		}
	}
	return false
}

// inspect walks every type-checked file of the package.
func inspect(p *Package, fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
