// Package lint implements tdblint, the repo-specific static-analysis
// pass. The paper's guarantees are invariants — half-open [TS, TE)
// lifespans compared only through package interval's Allen predicates,
// nil-safe metrics.Probe workspace accounting, deterministic experiment
// oracles, quit-guarded processor goroutines — and go vet cannot see any
// of them. Each rule here encodes one such invariant over the type-checked
// syntax trees of the whole module and reports findings as
//
//	file:line: [rule] message
//
// A finding is suppressed by a justification comment on the same line or
// the line directly above:
//
//	// lint:allow <rule> <why this site is exempt>
//
// The driver (cmd/tdblint) loads the module with only the standard
// library — go/parser for syntax, go/types with the stdlib source
// importer for semantics — so the pass runs offline with zero
// dependencies, exactly like the rest of the repo.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Diagnostic is one finding of one rule.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the finding in the canonical file:line: [rule] message
// form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Rule, d.Message)
}

// Rule is one invariant check. Check inspects a single package and
// reports findings through the Reporter.
type Rule struct {
	Name  string
	Doc   string
	Check func(p *Package, r *Reporter)
}

// Rules returns every registered rule, in fixed order.
func Rules() []Rule {
	return []Rule{
		probeNilSafetyRule,
		intervalEncapsulationRule,
		noPanicRule,
		determinismRule,
		goroutineHygieneRule,
		workerContextRule,
		errorDisciplineRule,
	}
}

// ruleAliases maps alternative lint:allow tokens to rule names, so the
// natural comment "lint:allow panic" addresses the no-panic rule.
var ruleAliases = map[string]string{
	"panic": "no-panic",
}

// SelectRules filters the registry by a comma-separated name list; the
// empty filter selects everything.
func SelectRules(filter string) ([]Rule, error) {
	all := Rules()
	if filter == "" {
		return all, nil
	}
	byName := map[string]Rule{}
	for _, r := range all {
		byName[r.Name] = r
	}
	var out []Rule
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if canon, ok := ruleAliases[name]; ok {
			name = canon
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (have %s)", name, ruleNames(all))
		}
		out = append(out, r)
	}
	return out, nil
}

func ruleNames(rs []Rule) string {
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.Name
	}
	return strings.Join(names, ", ")
}

// Reporter collects diagnostics for one (package, rule) pair, applying
// lint:allow suppressions.
type Reporter struct {
	pkg   *Package
	rule  string
	allow map[string]map[int]map[string]bool // file -> line -> rules
	out   *[]Diagnostic
}

// Reportf files a diagnostic at pos unless a lint:allow comment covers it.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.pkg.Fset.Position(pos)
	if lines := r.allow[p.Filename]; lines != nil {
		// A suppression applies to findings on its own line and on the
		// line directly below (comment-above style).
		for _, line := range []int{p.Line, p.Line - 1} {
			if lines[line][r.rule] {
				return
			}
		}
	}
	*r.out = append(*r.out, Diagnostic{
		File: p.Filename, Line: p.Line, Col: p.Column,
		Rule: r.rule, Message: fmt.Sprintf(format, args...),
	})
}

// suppressions scans a package's comments for lint:allow directives and
// returns file -> line -> allowed-rule-set.
func suppressions(p *Package) map[string]map[int]map[string]bool {
	out := map[string]map[int]map[string]bool{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "lint:allow ")
				if idx < 0 {
					continue
				}
				fields := strings.Fields(c.Text[idx+len("lint:allow "):])
				if len(fields) == 0 {
					continue
				}
				rule := fields[0]
				if canon, ok := ruleAliases[rule]; ok {
					rule = canon
				}
				pos := p.Fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int]map[string]bool{}
				}
				if out[pos.Filename][pos.Line] == nil {
					out[pos.Filename][pos.Line] = map[string]bool{}
				}
				out[pos.Filename][pos.Line][rule] = true
			}
		}
	}
	return out
}

// Check runs the given rules over the given packages and returns the
// sorted findings.
func Check(pkgs []*Package, rules []Rule) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		allow := suppressions(p)
		for _, rule := range rules {
			rep := &Reporter{pkg: p, rule: rule.Name, allow: allow, out: &diags}
			rule.Check(p, rep)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags
}

// Run loads the module at dir, applies the filtered rules, and writes the
// findings to w (one line each, or a JSON array with jsonOut). It returns
// the number of findings.
func Run(dir, ruleFilter string, jsonOut bool, w io.Writer) (int, error) {
	rules, err := SelectRules(ruleFilter)
	if err != nil {
		return 0, err
	}
	l, err := NewLoader(dir)
	if err != nil {
		return 0, err
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		return 0, err
	}
	diags := Check(pkgs, rules)
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			return len(diags), err
		}
		return len(diags), nil
	}
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return len(diags), err
		}
	}
	return len(diags), nil
}

// inScope reports whether the package's module-relative directory is the
// given prefix or nested below it — the unit rules use to scope
// themselves to subsystems like internal/core.
func inScope(p *Package, prefixes ...string) bool {
	for _, pre := range prefixes {
		if p.RelDir == pre || strings.HasPrefix(p.RelDir, pre+"/") {
			return true
		}
	}
	return false
}

// inspect walks every file of the package.
func inspect(p *Package, fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
