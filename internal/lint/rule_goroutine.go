package lint

import (
	"go/ast"
)

// goroutineHygieneAnalyzer enforces the Async.GoRun shutdown pattern on the
// processor networks. A producer goroutine that sends on a channel with a
// bare `ch <- v` blocks forever once its consumer abandons the stream,
// leaking the goroutine and everything it holds; every send inside a `go
// func` literal in internal/core, internal/stream, internal/engine and
// internal/partition must therefore be a select case alongside a
// quit/done receive case, so closing the quit channel always unblocks the
// processor. internal/live is in scope too: its standing queries sit on
// top of the same runner goroutines, and an unguarded send there would
// leak an operator per deregistered query. (The parallel shard workers of
// internal/engine satisfy the rule by construction: they write to
// pre-allocated per-shard slots and never send on a channel.)
// internal/obs (including internal/obs/prof) joined the scope with the
// resource-accounting layer: the exposition server and any future
// profiling goroutines must obey the same shutdown discipline.
// internal/server and driver joined with the network service: a
// subscription pump or client reader that sends without a drain/cancel
// case outlives its HTTP handler or its connection and leaks per client.
var goroutineHygieneAnalyzer = &Analyzer{
	Name: "goroutine-hygiene",
	Doc:  "channel sends in go func literals must select on a quit/done case",
	Run: func(pass *Pass) any {
		p := pass.Pkg
		if !inScope(p, "internal/core", "internal/stream", "internal/engine", "internal/partition", "internal/live", "internal/obs", "internal/server", "driver") {
			return nil
		}
		inspect(p, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutineSends(pass, lit)
			return true
		})
		return nil
	},
}

// checkGoroutineSends walks the goroutine body (including nested function
// literals, which run on the same goroutine when invoked) and reports any
// send that is not a select case with a companion receive case.
func checkGoroutineSends(pass *Pass, lit *ast.FuncLit) {
	// Track the parent chain so each send can be matched against its
	// enclosing select clause.
	var stack []ast.Node
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if !sendInGuardedSelect(stack, send) {
			pass.Reportf(send.Pos(), "bare channel send in a goroutine; wrap in a select with a quit/done receive case (the Async.GoRun pattern)")
		}
		return true
	})
}

// sendInGuardedSelect reports whether the send is the comm statement of a
// select case whose select also has a receive case (the quit/done edge).
func sendInGuardedSelect(stack []ast.Node, send *ast.SendStmt) bool {
	// stack ends with the send; walking outward the enclosing nodes are
	// its CommClause, the select's BlockStmt, and the SelectStmt itself.
	if len(stack) < 4 {
		return false
	}
	comm, ok := stack[len(stack)-2].(*ast.CommClause)
	if !ok || comm.Comm != ast.Stmt(send) {
		return false
	}
	sel, ok := stack[len(stack)-4].(*ast.SelectStmt)
	if !ok {
		return false
	}
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		if cc == comm || cc.Comm == nil {
			continue // the send itself, or a default case
		}
		if isReceiveStmt(cc.Comm) {
			return true
		}
	}
	return false
}

func isReceiveStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, ok := ast.Unparen(s.X).(*ast.UnaryExpr)
		return ok && u.Op.String() == "<-"
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return false
		}
		u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr)
		return ok && u.Op.String() == "<-"
	}
	return false
}
