package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// failpointCoverageAnalyzer reconciles the failpoint registry with its
// consumers, module-wide: every site passed to fault.Declare must be
// consulted somewhere (fault.Check or fault.Torn — a declared-but-dead
// site gives the chaos suites false confidence), every declared
// production site must be armed by at least one chaos schedule or
// boundary test, and no spec may arm a site nobody declared (a typo there
// silently disables the injection it was meant to exercise).
//
// Per package, Run collects three kinds of evidence and exports them as
// facts: Declare/Check/Torn calls with constant site arguments from the
// type-checked files, syntactic fault.* calls from the parse-only _test.go
// files, and every string literal anywhere that matches the arm-spec
// grammar site=mode[:k=v][;...] — which catches schedules built with
// fmt.Sprintf or stored in tables before reaching fault.Arm. Sites
// declared inside _test.go files are the fault package's own test rigs:
// arming them is fine, but they owe no coverage. The finish phase joins
// the three sets and reports the gaps.
var failpointCoverageAnalyzer = &Analyzer{
	Name: "failpoint-coverage",
	Doc:  "every fault.Declare site must be consulted and armed; no spec may arm an unknown site",
	Deep: true,
	Run: func(pass *Pass) any {
		p := pass.Pkg
		if strings.HasSuffix(p.Path, "internal/fault") {
			// The registry's own package: its _test.go rigs declare and
			// arm scratch sites; record the declarations so foreign arms
			// of them would still be validated, but skip the literal
			// sweep of its parser tests (they exercise malformed specs).
			for _, f := range p.TestFiles {
				collectTestFaultCalls(pass, f, true)
			}
			return nil
		}
		for _, f := range p.Files {
			collectFaultCalls(pass, f)
			sweepSpecLiterals(pass, f)
		}
		for _, f := range p.TestFiles {
			collectTestFaultCalls(pass, f, false)
			sweepSpecLiterals(pass, f)
		}
		return nil
	},
	Finish: failpointFinish,
}

// fpFact is one piece of failpoint evidence.
type fpFact struct {
	Kind fpKind
	Site string
	Pos  token.Pos
}

type fpKind int

const (
	fpDeclared     fpKind = iota // fault.Declare in a production file
	fpTestDeclared               // fault.Declare in a _test.go file (scratch rig)
	fpConsulted                  // fault.Check / fault.Torn
	fpArmed                      // fault.Arm call or arm-spec string literal
)

// collectFaultCalls records Declare/Check/Torn/Arm calls with constant
// site arguments from a type-checked file.
func collectFaultCalls(pass *Pass, f *ast.File) {
	p := pass.Pkg
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/fault") {
			return true
		}
		site, okSite := constStringArg(p, call, 0)
		switch fn.Name() {
		case "Declare":
			if okSite {
				pass.ExportFact(fpFact{Kind: fpDeclared, Site: site, Pos: call.Pos()})
			}
		case "Check", "Torn":
			if okSite {
				pass.ExportFact(fpFact{Kind: fpConsulted, Site: site, Pos: call.Pos()})
			}
		case "Arm":
			if okSite {
				for _, s := range specSites(site) {
					pass.ExportFact(fpFact{Kind: fpArmed, Site: s, Pos: call.Pos()})
				}
			}
			// Non-constant specs are covered by the literal sweep at
			// the point the literal is written.
		}
		return true
	})
}

// collectTestFaultCalls is the syntactic twin for parse-only _test.go
// files: any call shaped fault.XXX("site", ...) counts, resolved by the
// package qualifier's name alone.
func collectTestFaultCalls(pass *Pass, f *ast.File, ownPackage bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		qual, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || qual.Name != "fault" {
			// Inside package fault's own internal tests the calls are
			// unqualified; accept bare Declare/Check/Torn/Arm idents too.
			if !ownPackage {
				return true
			}
			id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
			if !isIdent {
				return true
			}
			sel = &ast.SelectorExpr{X: id, Sel: id} // reuse Sel switch below
		}
		site, okSite := litStringArg(call, 0)
		if !okSite {
			return true
		}
		switch sel.Sel.Name {
		case "Declare":
			pass.ExportFact(fpFact{Kind: fpTestDeclared, Site: site, Pos: call.Pos()})
		case "Check", "Torn":
			pass.ExportFact(fpFact{Kind: fpConsulted, Site: site, Pos: call.Pos()})
		case "Arm":
			for _, s := range specSites(site) {
				pass.ExportFact(fpFact{Kind: fpArmed, Site: s, Pos: call.Pos()})
			}
		}
		return true
	})
}

// sweepSpecLiterals scans every string literal of the file for arm-spec
// shapes, catching schedules that reach fault.Arm through variables,
// slices, or fmt.Sprintf.
func sweepSpecLiterals(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		s, err := unquote(lit.Value)
		if err != nil {
			return true
		}
		for _, site := range specSites(s) {
			pass.ExportFact(fpFact{Kind: fpArmed, Site: site, Pos: lit.Pos()})
		}
		return true
	})
}

// specSites extracts the site names from a string iff it matches the
// fault-spec grammar `site=mode[:k=v]...` joined by ';', where a site
// contains a '/' and the mode is one of the registry's. Sprintf
// placeholders in the parameter tail are tolerated; a placeholder inside
// the site name itself disqualifies the segment (the site is unknowable
// statically).
func specSites(s string) []string {
	var out []string
	for _, seg := range strings.Split(s, ";") {
		seg = strings.TrimSpace(seg)
		site, rest, ok := strings.Cut(seg, "=")
		if !ok || !strings.Contains(site, "/") || strings.Contains(site, "%") || strings.ContainsAny(site, " \t\n") {
			continue
		}
		mode, _, _ := strings.Cut(rest, ":")
		switch mode {
		case "error", "delay", "panic", "torn":
			out = append(out, site)
		}
	}
	return out
}

// constStringArg resolves call argument i to its constant string value.
func constStringArg(p *Package, call *ast.CallExpr, i int) (string, bool) {
	if i >= len(call.Args) {
		return "", false
	}
	tv, ok := p.Info.Types[call.Args[i]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// litStringArg reads call argument i when it is a plain string literal
// (the parse-only path has no constant folding).
func litStringArg(call *ast.CallExpr, i int) (string, bool) {
	if i >= len(call.Args) {
		return "", false
	}
	lit, ok := ast.Unparen(call.Args[i]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// failpointFinish joins the module-wide evidence and reports coverage
// gaps, each once, at the earliest relevant position.
func failpointFinish(pass *FinishPass) {
	type site struct {
		declaredAt  token.Pos
		testRig     bool
		consulted   bool
		armed       bool
		firstArmPos token.Pos
	}
	sites := map[string]*site{}
	get := func(name string) *site {
		if s, ok := sites[name]; ok {
			return s
		}
		s := &site{}
		sites[name] = s
		return s
	}
	for _, f := range pass.Facts() {
		v, ok := f.Value.(fpFact)
		if !ok {
			continue
		}
		s := get(v.Site)
		switch v.Kind {
		case fpDeclared:
			if s.declaredAt == token.NoPos || v.Pos < s.declaredAt {
				s.declaredAt = v.Pos
			}
		case fpTestDeclared:
			s.testRig = true
			if s.declaredAt == token.NoPos {
				s.declaredAt = v.Pos
			}
		case fpConsulted:
			s.consulted = true
		case fpArmed:
			s.armed = true
			if s.firstArmPos == token.NoPos || v.Pos < s.firstArmPos {
				s.firstArmPos = v.Pos
			}
		}
	}

	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := sites[name]
		declared := s.declaredAt != token.NoPos
		switch {
		case !declared && s.armed:
			pass.Reportf(s.firstArmPos, "chaos spec arms unknown failpoint %q: no fault.Declare matches (typo disables the injection)", name)
		case declared && !s.testRig && !s.consulted:
			pass.Reportf(s.declaredAt, "failpoint %q is declared but never consulted by fault.Check or fault.Torn (dead site)", name)
		case declared && !s.testRig && !s.armed:
			pass.Reportf(s.declaredAt, "failpoint %q is never armed by any chaos schedule or boundary test (uncovered site)", name)
		}
	}
}

// unquote strips Go string-literal quoting.
func unquote(raw string) (string, error) {
	return strconv.Unquote(raw)
}
