package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// wantMarker is one `// want <rule>` expectation in a fixture file.
type wantMarker struct {
	file string
	line int
	rule string
}

// collectWants scans every fixture .go file for `// want <rule>` markers.
func collectWants(t *testing.T, root string) []wantMarker {
	t.Helper()
	var wants []wantMarker
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, after, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			rule := strings.Fields(after)[0]
			wants = append(wants, wantMarker{file: path, line: line, rule: rule})
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatal("no // want markers found under", root)
	}
	return wants
}

// loadFixture type-checks the testdata mini-module once per test run.
func loadFixture(t *testing.T) []*Package {
	t.Helper()
	l, err := NewLoader("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// checkFixture runs analyzers over the fixture module, failing on driver
// errors.
func checkFixture(t *testing.T, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	diags, err := Check(loadFixture(t), analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestFixtures runs every analyzer — both tiers — over the fixture module
// and requires the findings to match the inline `// want <rule>` markers
// exactly: every marker must produce a diagnostic on its line, and every
// diagnostic must be marked. Each rule thus gets its positive cases
// asserted here and its negative cases (the unmarked code in the same
// files) asserted by the absence of extra findings.
func TestFixtures(t *testing.T) {
	diags := checkFixture(t, Analyzers())

	key := func(file string, line int, rule string) string {
		return fmt.Sprintf("%s:%d:%s", filepath.Base(file), line, rule)
	}
	want := map[string]bool{}
	for _, w := range collectWants(t, "testdata/src") {
		want[key(w.file, w.line, w.rule)] = true
	}
	got := map[string]bool{}
	for _, d := range diags {
		got[key(d.File, d.Line, d.Rule)] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("expected finding missing: %s", k)
		}
	}
	for _, d := range diags {
		if !want[key(d.File, d.Line, d.Rule)] {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

// TestEveryRuleHasPositiveAndNegative guards the fixture set itself: if
// a rule loses its markers the coverage silently evaporates, so require
// at least one marked (positive) line per reporting analyzer, and reject
// markers naming unknown rules. (The flow analyzer reports nothing — it
// only feeds results to its dependents — so it is exempt.)
func TestEveryRuleHasPositiveAndNegative(t *testing.T) {
	wants := collectWants(t, "testdata/src")
	byRule := map[string]int{}
	for _, w := range wants {
		byRule[w.rule]++
	}
	for _, a := range Analyzers() {
		if a.Name == flowAnalyzer.Name {
			continue
		}
		if byRule[a.Name] == 0 {
			t.Errorf("rule %s has no positive fixture (// want %s marker)", a.Name, a.Name)
		}
	}
	for rule := range byRule {
		found := false
		for _, a := range Analyzers() {
			if a.Name == rule {
				found = true
			}
		}
		if !found {
			t.Errorf("marker names unknown rule %q", rule)
		}
	}
}

// TestSelectAnalyzers covers the -rules filter and tier selection: the
// empty filter picks the syntactic tier (plus the deep tier under -deep),
// aliases resolve, deep analyzers are selectable by name without -deep,
// and unknown names error.
func TestSelectAnalyzers(t *testing.T) {
	shallow, err := SelectAnalyzers("", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range shallow {
		if a.Deep {
			t.Errorf("default tier includes deep analyzer %s", a.Name)
		}
	}
	all, err := SelectAnalyzers("", true)
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("deep filter: got %d analyzers, err %v", len(all), err)
	}
	rs, err := SelectAnalyzers("determinism, panic", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Name != "determinism" || rs[1].Name != "no-panic" {
		t.Fatalf("filter with alias resolved to %s", analyzerNames(rs))
	}
	deepByName, err := SelectAnalyzers("hotpath-alloc", false)
	if err != nil || len(deepByName) != 1 || !deepByName[0].Deep {
		t.Fatalf("naming a deep analyzer must select it: %v, err %v", analyzerNames(deepByName), err)
	}
	if _, err := SelectAnalyzers("nope", false); err == nil {
		t.Fatal("unknown rule name must error")
	}
}

// TestRuleFilterScopes re-checks the fixture with a single rule selected
// and requires findings from only that rule.
func TestRuleFilterScopes(t *testing.T) {
	rs, err := SelectAnalyzers("interval-encapsulation", false)
	if err != nil {
		t.Fatal(err)
	}
	diags := checkFixture(t, rs)
	if len(diags) == 0 {
		t.Fatal("interval-encapsulation found nothing in the fixture")
	}
	for _, d := range diags {
		if d.Rule != "interval-encapsulation" {
			t.Errorf("filtered run leaked rule %s: %s", d.Rule, d)
		}
	}
}

// TestRunJSON drives the full Run entry point in JSON mode and checks
// the findings decode with populated fields, sorted by position.
func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	n, err := Run(Config{Dir: "testdata/src", JSON: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &diags); err != nil {
		t.Fatalf("Run -json emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if len(diags) != n {
		t.Fatalf("Run reported %d findings, JSON holds %d", n, len(diags))
	}
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Rule == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		return diags[i].Line < diags[j].Line
	}) {
		t.Error("diagnostics are not sorted by file and line")
	}
}

// TestRunTextFormat checks the canonical file:line: [rule] message shape.
func TestRunTextFormat(t *testing.T) {
	var buf bytes.Buffer
	n, err := Run(Config{Dir: "testdata/src", Rules: "no-panic"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != n || n == 0 {
		t.Fatalf("got %d lines for %d findings:\n%s", len(lines), n, buf.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, ": [no-panic] ") {
			t.Errorf("malformed finding line: %q", line)
		}
	}
}

// TestRepoIsClean is the acceptance gate: the real module at HEAD must
// lint clean with the syntactic tier, so `make lint` and CI stay green.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var buf bytes.Buffer
	n, err := Run(Config{Dir: "../.."}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("the repo has %d lint finding(s):\n%s", n, buf.String())
	}
}

// TestRepoIsCleanDeep asserts the deep tier against the checked-in
// baseline, exactly: a new finding fails (regression), and a finding the
// baseline lists but the code no longer produces fails too (the ledger is
// stale and must be regenerated). This is the CI gate behind `make
// lint-deep`.
func TestRepoIsCleanDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var buf bytes.Buffer
	n, err := Run(Config{Dir: "../..", Deep: true, Baseline: "../../tdblint.baseline.json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("deep lint deviates from tdblint.baseline.json by %d finding(s):\n%s", n, buf.String())
	}
}
