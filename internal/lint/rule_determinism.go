package lint

import (
	"go/ast"
	"go/types"
)

// determinismAnalyzer protects the empirical oracles. Tables 1–3 and the
// figures are reproduced by experiments whose cell values the tests
// assert exactly; internal/experiments and internal/core therefore must
// not consult wall-clock time, draw from the globally seeded random
// source, or iterate a map in emission order. Seeded generators
// (rand.New(rand.NewSource(seed))) are the sanctioned randomness, and map
// iteration is fine once the keys are materialized and sorted — rewrite,
// or justify a benign site with // lint:allow determinism.
var determinismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "no wall-clock, global randomness, or map-order iteration in the oracle packages",
	Run: func(pass *Pass) any {
		p := pass.Pkg
		if !inScope(p, "internal/experiments", "internal/core") {
			return nil
		}
		inspect(p, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if fn.Type().(*types.Signature).Recv() != nil {
					return true // methods (e.g. on a seeded *rand.Rand) are fine
				}
				switch fn.Pkg().Path() {
				case "time":
					if fn.Name() == "Now" {
						pass.Reportf(n.Pos(), "time.Now in an oracle package; results must be reproducible")
					}
				case "math/rand", "math/rand/v2":
					if fn.Name() != "New" && fn.Name() != "NewSource" {
						pass.Reportf(n.Pos(), "globally seeded rand.%s in an oracle package; use rand.New(rand.NewSource(seed))", fn.Name())
					}
				}
			case *ast.RangeStmt:
				t := p.Info.Types[n.X].Type
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map iteration order is nondeterministic; iterate sorted keys (or justify with // lint:allow determinism)")
				}
			}
			return true
		})
		return nil
	},
}

// calleeFunc resolves the called function or method of a call expression,
// or nil for builtins, conversions and calls of function values.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
