package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineDiag(file, rule, msg string, line int) Diagnostic {
	return Diagnostic{File: file, Line: line, Col: 1, Rule: rule, Message: msg}
}

// TestBaselineRoundTrip: write, load, and the entries aggregate by
// (file, rule, message) with counts, sorted.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	diags := []Diagnostic{
		baselineDiag("b.go", "hotpath-alloc", "append may grow", 10),
		baselineDiag("a.go", "hotpath-alloc", "boxes int into any", 5),
		baselineDiag("b.go", "hotpath-alloc", "append may grow", 20),
	}
	if err := WriteBaseline(path, diags); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 2 {
		t.Fatalf("entries: got %d, want 2 (aggregated)", len(b.Entries))
	}
	if b.Entries[0].File != "a.go" || b.Entries[1].Count != 2 {
		t.Errorf("entries not sorted/aggregated: %+v", b.Entries)
	}
}

// TestBaselineNotePreserved: regenerating keeps the hand-written Note of
// the existing checked-in file.
func TestBaselineNotePreserved(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	existing := `{"note":"fix pass: 9 before, 3 after","entries":[]}`
	if err := os.WriteFile(path, []byte(existing), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteBaseline(path, []Diagnostic{baselineDiag("a.go", "r", "m", 1)}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != "fix pass: 9 before, 3 after" {
		t.Errorf("Note not preserved: %q", got.Note)
	}
	if len(got.Entries) != 1 {
		t.Errorf("entries: got %d, want 1", len(got.Entries))
	}
}

// TestBaselineApply: covered findings are suppressed, line drift is
// tolerated, extra findings come back fresh, and unmatched entries
// surface as stale diagnostics.
func TestBaselineApply(t *testing.T) {
	b := &Baseline{Entries: []BaselineEntry{
		{File: "a.go", Rule: "hotpath-alloc", Message: "append may grow", Count: 2},
		{File: "gone.go", Rule: "hotpath-alloc", Message: "boxes int into any", Count: 1},
	}}

	diags := []Diagnostic{
		baselineDiag("a.go", "hotpath-alloc", "append may grow", 11),  // covered (line moved)
		baselineDiag("a.go", "hotpath-alloc", "append may grow", 99),  // covered (count 2)
		baselineDiag("a.go", "hotpath-alloc", "append may grow", 120), // third: fresh
		baselineDiag("new.go", "lock-order", "cycle", 3),              // fresh
	}
	fresh, stale := b.Apply(diags)
	if len(fresh) != 2 {
		t.Fatalf("fresh: got %d (%v), want 2", len(fresh), fresh)
	}
	if fresh[0].Line != 120 || fresh[1].File != "new.go" {
		t.Errorf("wrong fresh findings: %v", fresh)
	}
	if len(stale) != 1 || stale[0].File != "gone.go" {
		t.Fatalf("stale: got %v, want the gone.go entry", stale)
	}
	if !strings.Contains(stale[0].Message, "stale baseline entry") {
		t.Errorf("stale message: %q", stale[0].Message)
	}
}

// TestBaselineApplyExact: a fully matched baseline suppresses everything
// and leaves nothing stale — the steady state of the CI gate.
func TestBaselineApplyExact(t *testing.T) {
	b := &Baseline{Entries: []BaselineEntry{
		{File: "a.go", Rule: "r", Message: "m", Count: 1},
	}}
	fresh, stale := b.Apply([]Diagnostic{baselineDiag("a.go", "r", "m", 42)})
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("exact match: fresh %v, stale %v, want none", fresh, stale)
	}
}

// TestLoadBaselineMissing: a missing file is a hard error (the gate must
// not silently pass with no ledger).
func TestLoadBaselineMissing(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing baseline must error")
	}
}
