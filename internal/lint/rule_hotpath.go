package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tdb/internal/lint/flow"
)

// flowAnalyzer is the dataflow tier's foundation: it computes (lazily,
// per function) the def-use chains and escape lattice of
// internal/lint/flow and publishes them through Pass.ResultOf for the
// analyzers that declare it in Requires. It reports nothing itself.
var flowAnalyzer = &Analyzer{
	Name: "flow",
	Doc:  "per-function def-use chains and conservative escape lattice (internal/lint/flow)",
	Deep: true,
	Run: func(pass *Pass) any {
		return &flowIndex{pkg: pass.Pkg, m: map[*ast.BlockStmt]*flow.Func{}}
	},
}

// flowIndex memoizes flow summaries by function body, so only the
// functions a dependent analyzer actually asks about pay for dataflow.
type flowIndex struct {
	pkg *Package
	m   map[*ast.BlockStmt]*flow.Func
}

// Of returns the (memoized) dataflow summary for the function with the
// given signature and body.
func (ix *flowIndex) Of(ftype *ast.FuncType, body *ast.BlockStmt) *flow.Func {
	if f, ok := ix.m[body]; ok {
		return f
	}
	f := flow.Analyze(ix.pkg.Info, ftype, body)
	ix.m[body] = f
	return f
}

// hotpathMarker is the annotation that opts a function or loop into
// allocation auditing. It must sit on the line directly above the `func`
// or `for` keyword (the last line of a doc comment works), or trail the
// same line.
const hotpathMarker = "tdb:hotpath"

// hotpathAllocAnalyzer flags the allocation behavior the cache-efficient
// core rewrite (ROADMAP item 2) must eliminate: inside a region annotated
// //tdb:hotpath it reports heap allocations (make without capacity, new,
// address-taken or reference-typed composite literals), interface boxing,
// append calls that may grow their destination, map inserts, and function
// literals (whose captures escape). Error paths — if-bodies ending in a
// return — are exempt, as is an append whose destination is provably
// pre-sized (a make with explicit capacity, or a reused s[:0] slice).
// Findings are meant to be tracked in the checked-in baseline file; new
// ones fail CI.
var hotpathAllocAnalyzer = &Analyzer{
	Name:     "hotpath-alloc",
	Doc:      "//tdb:hotpath regions must not allocate, box, or grow per iteration",
	Deep:     true,
	Requires: []*Analyzer{flowAnalyzer},
	Run: func(pass *Pass) any {
		idx, _ := pass.ResultOf[flowAnalyzer].(*flowIndex)
		if idx == nil {
			return nil
		}
		p := pass.Pkg
		for _, file := range p.Files {
			hot := hotpathLines(p.Fset, file)
			if len(hot) == 0 {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				for _, reg := range hotRegions(p.Fset, fd, hot) {
					fl := idx.Of(reg.ftype, reg.fbody)
					checkHotRegion(pass, fl, reg.region)
				}
			}
		}
		return nil
	},
}

// hotpathLines returns the set of lines in file carrying a //tdb:hotpath
// marker.
func hotpathLines(fset *token.FileSet, file *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			// Directive style only (`//tdb:hotpath`, no space): a prose
			// mention of the marker inside a doc comment must not
			// annotate the declaration below it.
			if strings.HasPrefix(c.Text, "//"+hotpathMarker) {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

// hotRegion is one annotated area: the statement block to audit plus the
// enclosing function whose dataflow summary interprets it.
type hotRegion struct {
	ftype  *ast.FuncType
	fbody  *ast.BlockStmt
	region ast.Node
}

// hotRegions finds the annotated regions of one function declaration: the
// whole body when the declaration itself is annotated, otherwise each
// annotated for/range statement (resolved against its nearest enclosing
// function literal, if any).
func hotRegions(fset *token.FileSet, fd *ast.FuncDecl, hot map[int]bool) []hotRegion {
	marked := func(pos token.Pos) bool {
		line := fset.Position(pos).Line
		return hot[line] || hot[line-1]
	}
	if marked(fd.Pos()) {
		return []hotRegion{{ftype: fd.Type, fbody: fd.Body, region: fd.Body}}
	}
	var out []hotRegion
	type frame struct {
		ftype *ast.FuncType
		fbody *ast.BlockStmt
	}
	stack := []frame{{fd.Type, fd.Body}}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				stack = append(stack, frame{m.Type, m.Body})
				walk(m.Body)
				stack = stack[:len(stack)-1]
				return false
			case *ast.ForStmt:
				if marked(m.Pos()) {
					top := stack[len(stack)-1]
					out = append(out, hotRegion{ftype: top.ftype, fbody: top.fbody, region: m.Body})
					return false // the annotation covers nested loops too
				}
			case *ast.RangeStmt:
				if marked(m.Pos()) {
					top := stack[len(stack)-1]
					out = append(out, hotRegion{ftype: top.ftype, fbody: top.fbody, region: m.Body})
					return false
				}
			}
			return true
		})
	}
	walk(fd.Body)
	return out
}

// checkHotRegion audits one annotated region against the function's
// dataflow summary.
func checkHotRegion(pass *Pass, fl *flow.Func, region ast.Node) {
	p := pass.Pkg
	// Ranges excluded from auditing: error paths (if-bodies ending in a
	// return) and nested function literal bodies (flagged as a whole at
	// their position instead).
	var skipped []ast.Node
	ast.Inspect(region, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if isErrorPathIf(n) {
				skipped = append(skipped, n.Body)
				// The condition and else branch stay audited.
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path allocates a function literal per iteration; hoist it outside the region")
			skipped = append(skipped, n.Body)
			return false
		}
		return true
	})
	inSkipped := func(pos token.Pos) bool {
		for _, s := range skipped {
			if pos >= s.Pos() && pos < s.End() {
				return true
			}
		}
		return false
	}
	active := func(pos token.Pos) bool {
		return pos >= region.Pos() && pos < region.End() && !inSkipped(pos)
	}

	for _, b := range fl.Boxings() {
		if active(b.Pos) {
			pass.Reportf(b.Pos, "hot path boxes %s into %s", types.TypeString(b.From, types.RelativeTo(p.Types)), types.TypeString(b.To, types.RelativeTo(p.Types)))
		}
	}

	ast.Inspect(region, func(n ast.Node) bool {
		if n == nil || !active(n.Pos()) {
			// Still descend: a skipped if-body is contiguous, but the
			// statements after it in the same block are active again.
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, fl, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && !stackable(fl, n) {
					pass.Reportf(n.Pos(), "hot path heap-allocates a composite literal (address taken)")
				}
			}
		case *ast.CompositeLit:
			t := p.Info.Types[n].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				if !stackable(fl, n) {
					pass.Reportf(n.Pos(), "hot path allocates a slice literal per iteration")
				}
			case *types.Map:
				pass.Reportf(n.Pos(), "hot path allocates a map literal per iteration")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if t := p.Info.Types[ix.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(lhs.Pos(), "hot path inserts into a map (possible rehash and growth)")
					}
				}
			}
		}
		return true
	})
}

// checkHotCall audits one call expression inside a hot region: make/new
// allocations and append growth.
func checkHotCall(pass *Pass, fl *flow.Func, call *ast.CallExpr) {
	p := pass.Pkg
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	switch id.Name {
	case "make":
		if len(call.Args) == 0 {
			return
		}
		t := p.Info.Types[call.Args[0]].Type
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Slice:
			if len(call.Args) < 3 {
				pass.Reportf(call.Pos(), "hot path makes a slice without capacity; pre-size it outside the region")
			}
			// make with explicit capacity is a deliberate pre-size.
		case *types.Map:
			pass.Reportf(call.Pos(), "hot path allocates a map per iteration")
		case *types.Chan:
			pass.Reportf(call.Pos(), "hot path allocates a channel per iteration")
		}
	case "new":
		if !stackable(fl, call) {
			pass.Reportf(call.Pos(), "hot path heap-allocates with new")
		}
	case "append":
		if len(call.Args) == 0 {
			return
		}
		dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			pass.Reportf(call.Pos(), "hot path append may grow its destination; pre-size it or reuse a [:0] slice")
			return
		}
		v, _ := p.Info.ObjectOf(dst).(*types.Var)
		if v == nil || !presized(fl, v) {
			pass.Reportf(call.Pos(), "hot path append to %s may grow; pre-size it with make(len, cap) or reuse a [:0] slice", dst.Name)
		}
	}
}

// isErrorPathIf reports whether the if statement is an error path: its
// body's last statement is a return.
func isErrorPathIf(n *ast.IfStmt) bool {
	if n.Body == nil || len(n.Body.List) == 0 {
		return false
	}
	_, ok := n.Body.List[len(n.Body.List)-1].(*ast.ReturnStmt)
	return ok
}

// stackable reports whether the allocation expression is the defining
// value of a variable the escape lattice proves Local — the compiler can
// keep it on the stack, so the hot region need not be charged for it.
func stackable(fl *flow.Func, e ast.Expr) bool {
	for _, v := range fl.Vars {
		for _, de := range v.DefExprs {
			if de == e {
				return v.Esc == flow.Local
			}
		}
	}
	return false
}

// presized reports whether the variable has a defining expression that
// proves its backing capacity was reserved ahead of the hot region: a
// make with explicit capacity, or a slice of an existing backing array
// (the s[:0] reuse idiom). Definitions without a value (`var s []T`) are
// neutral; an append result feeding back into the variable is too.
func presized(fl *flow.Func, v *types.Var) bool {
	info := fl.Of(v)
	if info == nil {
		return false
	}
	for _, de := range info.DefExprs {
		switch de := ast.Unparen(de).(type) {
		case *ast.SliceExpr:
			return true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(de.Fun).(*ast.Ident); ok && id.Name == "make" && len(de.Args) == 3 {
				return true
			}
		}
	}
	return false
}
