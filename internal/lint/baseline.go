package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is the checked-in ledger of accepted findings — the fix-list
// the cache-efficient core rewrite consumes. Entries are keyed by
// (file, rule, message) with a count, deliberately ignoring line numbers
// so unrelated edits above a finding do not invalidate the ledger; any
// count drift in either direction fails the gate. New findings surface as
// fresh diagnostics, and entries no longer matched by the code surface as
// stale ones, so the file must be regenerated (tdblint -write-baseline)
// whenever the findings genuinely change.
type Baseline struct {
	// Note is free-form provenance — e.g. the before/after finding count
	// of a fix pass — preserved across -write-baseline regenerations.
	Note    string          `json:"note,omitempty"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry is one accepted finding class.
type BaselineEntry struct {
	File    string `json:"file"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

type baselineKey struct {
	file, rule, message string
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline regenerates the baseline at path from the given findings,
// preserving the Note of any existing file.
func WriteBaseline(path string, diags []Diagnostic) error {
	b := &Baseline{Entries: []BaselineEntry{}} // marshal as [] even when clean
	if prev, err := LoadBaseline(path); err == nil {
		b.Note = prev.Note
	}
	counts := map[baselineKey]int{}
	for _, d := range diags {
		counts[baselineKey{d.File, d.Rule, d.Message}]++
	}
	for k, n := range counts {
		b.Entries = append(b.Entries, BaselineEntry{File: k.file, Rule: k.rule, Message: k.message, Count: n})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply splits findings against the baseline: fresh holds the diagnostics
// the baseline does not cover (new regressions), stale holds one synthetic
// diagnostic per baseline entry the findings no longer fully match (the
// ledger must be regenerated after fixes). Both gate CI.
func (b *Baseline) Apply(diags []Diagnostic) (fresh, stale []Diagnostic) {
	remaining := map[baselineKey]int{}
	for _, e := range b.Entries {
		remaining[baselineKey{e.File, e.Rule, e.Message}] += e.Count
	}
	for _, d := range diags {
		k := baselineKey{d.File, d.Rule, d.Message}
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Entries {
		k := baselineKey{e.File, e.Rule, e.Message}
		if n := remaining[k]; n > 0 {
			remaining[k] = 0
			stale = append(stale, Diagnostic{
				File: e.File, Rule: e.Rule,
				Message: fmt.Sprintf("stale baseline entry (%d of %d no longer found): %s — regenerate with -write-baseline", n, e.Count, e.Message),
			})
		}
	}
	return fresh, stale
}
