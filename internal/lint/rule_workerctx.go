package lint

import (
	"go/ast"
	"go/token"
)

// workerContextAnalyzer enforces the governed-worker discipline introduced with
// the workspace governor: every goroutine spawned in internal/core,
// internal/engine or internal/live must carry a visible cancellation edge,
// so that first-error propagation (engine shard workers), breaker trips
// (live standing queries) and consumer abandonment (core processors) can
// always unwind it. A spawn satisfies the rule when the spawned call
// references a context.Context value — the engine fan-out shape, where the
// first failing worker cancels the shared context — or when its body
// performs a channel receive, the quit/done idiom of core.Async.GoRun.
// A goroutine with neither is unstoppable from the outside: under a fault
// or a governor abort it leaks, holding its workspace forever.
// internal/server and driver are in scope with the network service:
// server-side pumps must die with the request context on drain, and
// client-side readers with the query context on cancellation.
var workerContextAnalyzer = &Analyzer{
	Name: "worker-context",
	Doc:  "goroutines in governed packages must carry a context.Context or quit-channel cancellation edge",
	Run: func(pass *Pass) any {
		p := pass.Pkg
		if !inScope(p, "internal/core", "internal/engine", "internal/live", "internal/server", "driver") {
			return nil
		}
		inspect(p, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineHasCancelEdge(p, gs) {
				pass.Reportf(gs.Pos(), "goroutine spawn without a cancellation edge; thread a context.Context (or a quit-channel receive) through the worker so faults and governor aborts can unwind it")
			}
			return true
		})
		return nil
	},
}

// goroutineHasCancelEdge walks the spawned call — callee, arguments, and
// the body when the callee is a function literal — looking for either a
// context.Context-typed expression or a channel receive.
func goroutineHasCancelEdge(p *Package, gs *ast.GoStmt) bool {
	found := false
	ast.Inspect(gs.Call, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
				return false
			}
		case ast.Expr:
			if tv, ok := p.Info.Types[n]; ok && tv.Type != nil && tv.Type.String() == "context.Context" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
