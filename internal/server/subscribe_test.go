package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tdb/internal/engine"
	"tdb/internal/live"
	"tdb/internal/relation"
	"tdb/internal/workload"
)

// liveDB is an empty two-relation catalog for streaming tests.
func liveDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.NewDB()
	db.MustRegister(relation.New("F", workload.FacultySchema))
	db.MustRegister(relation.New("G", workload.FacultySchema))
	return db
}

const overlapSubscribe = `
range of f is F
range of g is G
subscribe watch (Name=f.Name) where (f overlap g)
`

type sseEvent struct {
	name string
	data []byte
}

// readEvent blocks until the next complete server-sent event.
func readEvent(r *bufio.Reader) (sseEvent, error) {
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "" && ev.name != "":
			return ev, nil
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
}

// startSubscribe opens a cancelable subscription stream and returns its
// event reader.
func startSubscribe(t *testing.T, ts *httptest.Server, req SubscribeRequest) (*bufio.Reader, context.CancelFunc) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/"+Protocol+"/subscribe", bytes.NewReader(body))
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		cancel()
		t.Fatalf("subscribe: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("subscribe status %d: %s", resp.StatusCode, raw)
	}
	t.Cleanup(func() {
		cancel()
		resp.Body.Close()
	})
	return bufio.NewReader(resp.Body), cancel
}

func TestSubscribeStreamsDeltas(t *testing.T) {
	s, ts := newTestServer(t, Config{DB: liveDB(t), SubscribePoll: 5 * time.Millisecond})
	sid := openSession(t, ts.URL, "")
	r, _ := startSubscribe(t, ts, SubscribeRequest{Session: sid, Quel: overlapSubscribe})

	ev, err := readEvent(r)
	if err != nil {
		t.Fatalf("read meta: %v", err)
	}
	if ev.name != "meta" {
		t.Fatalf("first event %q, want meta", ev.name)
	}
	var meta SubscribeMeta
	if err := json.Unmarshal(ev.data, &meta); err != nil {
		t.Fatalf("decode meta: %v", err)
	}
	if meta.Mode != "incremental" {
		t.Errorf("mode %q, want incremental (overlap joins admit incrementally)", meta.Mode)
	}
	if len(meta.Columns) == 0 || meta.Columns[0].Name != "Name" {
		t.Errorf("meta columns = %+v", meta.Columns)
	}

	// alice × bob is the overlapping pair; carol and dave advance both
	// input frontiers past TS=2 so the stream operator may emit it (their
	// own pair stays below the frontier and is never released).
	for _, app := range []AppendRequest{
		{Relation: "F", Rows: [][]any{{"alice", "Assistant", 1, 10}}, Flush: true},
		{Relation: "G", Rows: [][]any{{"bob", "Full", 2, 8}}, Flush: true},
		{Relation: "F", Rows: [][]any{{"carol", "Full", 20, 25}}, Flush: true},
		{Relation: "G", Rows: [][]any{{"dave", "Full", 21, 26}}, Flush: true},
	} {
		if we := post(t, ts.URL, "append", app, nil); we != nil {
			t.Fatalf("append %s: %s: %s", app.Relation, we.Code, we.Message)
		}
	}
	ev, err = readEvent(r)
	if err != nil {
		t.Fatalf("read deltas: %v", err)
	}
	if ev.name != "deltas" {
		t.Fatalf("event %q, want deltas", ev.name)
	}
	var deltas SubscribeDeltas
	if err := json.Unmarshal(ev.data, &deltas); err != nil {
		t.Fatal(err)
	}
	if deltas.Seq != 1 || len(deltas.Rows) != 1 || deltas.Rows[0][0] != "alice" {
		t.Errorf("deltas = %+v, want seq 1 with alice", deltas)
	}

	// The streamed rows are exactly the standing query's recorded
	// emission prefix.
	var recorded []string
	if err := s.WithLive(func(m *live.Manager) error {
		for _, q := range m.Queries() {
			for _, row := range q.Deltas() {
				recorded = append(recorded, row[0].AsString())
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recorded) != 1 || recorded[0] != "alice" {
		t.Errorf("server-side standing query deltas = %v", recorded)
	}
}

func TestSubscribeDrainEventOnShutdown(t *testing.T) {
	s, ts := newTestServer(t, Config{DB: liveDB(t), SubscribePoll: 5 * time.Millisecond})
	sid := openSession(t, ts.URL, "")
	r, _ := startSubscribe(t, ts, SubscribeRequest{Session: sid, Quel: overlapSubscribe})
	if ev, err := readEvent(r); err != nil || ev.name != "meta" {
		t.Fatalf("meta: %v %+v", err, ev)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ev, err := readEvent(r)
	if err != nil {
		t.Fatalf("read drain: %v", err)
	}
	if ev.name != "drain" {
		t.Errorf("event %q, want drain", ev.name)
	}
	if _, err := readEvent(r); err == nil {
		t.Error("stream stayed open past the drain event")
	}
}

func TestSubscribeRejectsRetrieve(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: liveDB(t)})
	sid := openSession(t, ts.URL, "")
	we := post(t, ts.URL, "subscribe", SubscribeRequest{
		Session: sid, Quel: "range of f is F\nretrieve (f.Name)",
	}, nil)
	if we == nil || we.Code != CodeBadRequest {
		t.Errorf("retrieve on subscribe endpoint: %+v", we)
	}
}
