package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tdb/internal/engine"
	"tdb/internal/obs"
	"tdb/internal/optimizer"
	"tdb/internal/quel"
)

// Event kinds the server emits into the operational journal.
const (
	EventSessionOpen   = "session-open"
	EventSessionClose  = "session-close"
	EventSessionExpire = "session-expire"
	EventQuotaReject   = "quota-reject"
	EventDrain         = "server-drain"
	EventRestart       = "server-restart"
)

// maxCachedPlans bounds a prepared statement's per-binding plan cache.
// The semantic pass folds constants — a contradiction for one binding can
// be a live plan for another — so plans are keyed by the bound parameter
// vector rather than shared across bindings.
const maxCachedPlans = 32

// prepared is one server-side prepared statement: the cached parse and
// translation (the parameterized tree), plus optimized plans keyed by
// parameter binding.
type prepared struct {
	id   string
	src  string
	q    quel.Query
	cols []Column

	mu    sync.Mutex
	plans map[string]*optimizer.Result
}

// cachedPlan returns the optimized plan for a binding key, or nil.
func (p *prepared) cachedPlan(key string) *optimizer.Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.plans[key]
}

// storePlan caches an optimized plan under a binding key, evicting an
// arbitrary entry at capacity.
func (p *prepared) storePlan(key string, res *optimizer.Result) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.plans == nil {
		p.plans = map[string]*optimizer.Result{}
	}
	if len(p.plans) >= maxCachedPlans {
		for k := range p.plans {
			delete(p.plans, k)
			break
		}
	}
	p.plans[key] = res
}

// session is one client connection's server-side state: a private
// catalog (the shared base relations by reference, plus any "into"
// results, which never leak across sessions) and its prepared
// statements.
type session struct {
	id     string
	tenant *tenant
	dead   atomic.Bool // set by invalidate; checked under mu before touching db

	mu      sync.Mutex
	db      *engine.DB
	stmts   map[string]*prepared
	stmtSeq int
	subSeq  int
}

// invalidate marks an expired or closed session dead and releases its
// private catalog and statements. A request already in flight observes
// the flag — under sess.mu, so never mid-operation — and fails with a
// typed session_expired error instead of dereferencing the nil catalog.
func (s *session) invalidate() {
	s.dead.Store(true)
	s.mu.Lock()
	s.db = nil
	s.stmts = nil
	s.mu.Unlock()
}

// expired returns the typed error for a session that died mid-request.
// Caller holds s.mu (the flag only stabilizes under the session lock).
func (s *session) expired() *Error {
	if !s.dead.Load() {
		return nil
	}
	return errf(CodeSessionExpired, "session %s expired while the request was in flight", s.id)
}

func (s *session) addStmt(p *prepared) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stmtSeq++
	p.id = fmt.Sprintf("st%d", s.stmtSeq)
	s.stmts[p.id] = p
	return p.id
}

func (s *session) stmt(id string) (*prepared, *Error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.stmts[id]
	if !ok {
		return nil, errf(CodeUnknownStatement, "statement %q is not prepared on session %s", id, s.id)
	}
	return p, nil
}

func (s *session) closeStmt(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.stmts, id)
}

func (s *session) nextSub() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subSeq++
	return s.subSeq
}

// sessionTable owns every open session and the idle-expiry sweeper.
type sessionTable struct {
	mu       sync.Mutex
	m        map[string]*session
	lastUsed map[string]time.Time
	seq      int
	idle     time.Duration

	// onDrop runs after a session leaves the table (close, expiry,
	// stop), outside st.mu — the server uses it to tear down the
	// session's subscriptions. Set once before the first session opens.
	onDrop func(sessID string)

	gActive *obs.Gauge
	cOpened *obs.Counter
	events  *obs.EventLog

	quit chan struct{}
	done chan struct{}
}

func newSessionTable(idle time.Duration, reg *obs.Registry, events *obs.EventLog) *sessionTable {
	st := &sessionTable{
		m:        map[string]*session{},
		lastUsed: map[string]time.Time{},
		idle:     idle,
		gActive:  reg.Gauge("tdb_server_sessions_active", "open client sessions"),
		cOpened:  reg.Counter("tdb_server_sessions_total", "sessions ever opened"),
		events:   events,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	tick := idle / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > 30*time.Second {
		tick = 30 * time.Second
	}
	go func() {
		defer close(st.done)
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		for {
			select {
			case <-st.quit:
				return
			case <-ticker.C:
				st.expire(time.Now())
			}
		}
	}()
	return st
}

// open registers a new session for a tenant.
func (st *sessionTable) open(t *tenant, db *engine.DB) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	s := &session{
		id:     fmt.Sprintf("s%d", st.seq),
		tenant: t,
		db:     db,
		stmts:  map[string]*prepared{},
	}
	st.m[s.id] = s
	st.lastUsed[s.id] = time.Now()
	st.gActive.Add(1)
	st.cOpened.Inc()
	st.events.Emit(EventSessionOpen, s.id, map[string]string{"tenant": t.cfg.Name})
	return s
}

// get resolves a session id and refreshes its idle clock.
func (st *sessionTable) get(id string) (*session, *Error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.m[id]
	if !ok {
		return nil, errf(CodeUnknownSession, "session %q is not open (closed, expired, or never opened)", id)
	}
	st.lastUsed[id] = time.Now()
	return s, nil
}

// touch refreshes a session's idle clock without resolving it — the
// keepalive edge for attached subscription streams, which hold no
// per-request admission but must not idle-expire under their session.
func (st *sessionTable) touch(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.m[id]; ok {
		st.lastUsed[id] = time.Now()
	}
}

// close removes a session; unknown ids are a no-op so close is
// idempotent under retries.
func (st *sessionTable) close(id string) {
	st.mu.Lock()
	s, ok := st.m[id]
	if ok {
		delete(st.m, id)
		delete(st.lastUsed, id)
		st.gActive.Add(-1)
		st.events.Emit(EventSessionClose, s.id, map[string]string{"tenant": s.tenant.cfg.Name})
	}
	st.mu.Unlock()
	if ok {
		st.drop(s)
	}
}

// drop invalidates a removed session and runs the drop hook — always
// outside st.mu, so the hook may take the catalog lock freely.
func (st *sessionTable) drop(s *session) {
	s.invalidate()
	if st.onDrop != nil {
		st.onDrop(s.id)
	}
}

// expire sweeps sessions idle past the timeout.
func (st *sessionTable) expire(now time.Time) {
	st.mu.Lock()
	var dropped []*session
	for id, last := range st.lastUsed {
		if now.Sub(last) <= st.idle {
			continue
		}
		s := st.m[id]
		delete(st.m, id)
		delete(st.lastUsed, id)
		st.gActive.Add(-1)
		st.events.Emit(EventSessionExpire, s.id, map[string]string{
			"tenant": s.tenant.cfg.Name,
			"idle":   now.Sub(last).String(),
		})
		dropped = append(dropped, s)
	}
	st.mu.Unlock()
	for _, s := range dropped {
		st.drop(s)
	}
}

// closeAll drops every session without stopping the sweeper — the
// simulated-restart edge (a real restart loses the table but the new
// process still sweeps).
func (st *sessionTable) closeAll() {
	st.mu.Lock()
	var dropped []*session
	for _, s := range st.m {
		dropped = append(dropped, s)
	}
	st.gActive.Add(-int64(len(st.m)))
	st.m = map[string]*session{}
	st.lastUsed = map[string]time.Time{}
	st.mu.Unlock()
	for _, s := range dropped {
		st.drop(s)
	}
}

// count returns the number of open sessions.
func (st *sessionTable) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// stop terminates the sweeper and drops every session.
func (st *sessionTable) stop() {
	close(st.quit)
	<-st.done
	st.mu.Lock()
	var dropped []*session
	for _, s := range st.m {
		dropped = append(dropped, s)
	}
	st.gActive.Add(-int64(len(st.m)))
	st.m = map[string]*session{}
	st.lastUsed = map[string]time.Time{}
	st.mu.Unlock()
	for _, s := range dropped {
		st.drop(s)
	}
}
