package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"testing"
	"time"

	"tdb/internal/fault"
)

// TestChaosTornWireWrite arms the wire-write failpoint in torn mode: the
// server sends a strict prefix of the response body and severs the
// connection. The client must see a hard decode/transport error — never
// a partial result that parses as complete.
func TestChaosTornWireWrite(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if err := fault.Arm("server/wire-write=torn:n=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	body, _ := json.Marshal(QueryRequest{Quel: facultyQuery})
	resp, err := http.Post(ts.URL+"/"+Protocol+"/query", "application/json", bytes.NewReader(body))
	if err == nil {
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			var qr QueryResponse
			if json.Unmarshal(raw, &qr) == nil {
				t.Fatalf("torn response decoded as a complete result: %.120s", raw)
			}
		}
	}

	// The failpoint fired once; the next query is whole again.
	var qr QueryResponse
	if we := post(t, ts.URL, "query", QueryRequest{Quel: facultyQuery}, &qr); we != nil {
		t.Fatalf("query after torn write: %s: %s", we.Code, we.Message)
	}
	if len(qr.Rows) == 0 {
		t.Error("recovered query returned no rows")
	}
}

// TestChaosExecuteError arms the execution failpoint in error mode and
// asserts the client gets a clean typed wire error.
func TestChaosExecuteError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if err := fault.Arm("server/execute=error:n=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	we := post(t, ts.URL, "query", QueryRequest{Quel: facultyQuery}, nil)
	if we == nil || we.Code != CodeExec {
		t.Fatalf("injected execute fault: %+v, want %s", we, CodeExec)
	}
	if we.Message == "" {
		t.Error("typed error carries no message")
	}
}

// TestChaosSubscribeDeliverSevers arms the per-event delivery failpoint:
// the stream dies with an abrupt EOF before the poisoned delta, so the
// client can detect the failure instead of consuming a gap.
func TestChaosSubscribeDeliverSevers(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: liveDB(t), SubscribePoll: 5 * time.Millisecond})
	sid := openSession(t, ts.URL, "")
	r, _ := startSubscribe(t, ts, SubscribeRequest{Session: sid, Quel: overlapSubscribe})
	if ev, err := readEvent(r); err != nil || ev.name != "meta" {
		t.Fatalf("meta: %v %+v", err, ev)
	}
	if err := fault.Arm("server/subscribe-deliver=error:n=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	// alice × bob is the overlapping pair; carol and dave advance both
	// input frontiers past TS=2 so the stream operator may emit it (their
	// own pair stays below the frontier and is never released).
	for _, app := range []AppendRequest{
		{Relation: "F", Rows: [][]any{{"alice", "Assistant", 1, 10}}, Flush: true},
		{Relation: "G", Rows: [][]any{{"bob", "Full", 2, 8}}, Flush: true},
		{Relation: "F", Rows: [][]any{{"carol", "Full", 20, 25}}, Flush: true},
		{Relation: "G", Rows: [][]any{{"dave", "Full", 21, 26}}, Flush: true},
	} {
		if we := post(t, ts.URL, "append", app, nil); we != nil {
			t.Fatalf("append: %s", we.Message)
		}
	}
	_, err := readEvent(r)
	if err == nil {
		t.Fatal("stream delivered an event past the armed delivery fault")
	}
	if errors.Is(err, io.EOF) {
		return // the severed connection surfaced as EOF — detectable, not silent
	}
	// Any other transport error is equally detectable.
}
