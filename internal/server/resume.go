package server

import (
	"sync"
	"time"

	"tdb/internal/live"
	"tdb/internal/obs"
)

// Wire-resilience bounds. The replay ring is sized by the same
// minimal-history argument that bounds standing-query state: a resumable
// client is at most one transport failure behind the stream head, so the
// ring only has to cover the events that can be in flight across one
// disconnect window — a small constant — not the subscription's history.
const (
	defaultReplayRing = 256
	defaultDedupTTL   = 5 * time.Minute
	defaultDedupMax   = 4096
)

// subEvent is one delivered (or deliverable) delta event: its stream
// sequence number and pre-encoded wire rows. Events enter the ring
// before they touch the wire, so a severed write is always replayable.
type subEvent struct {
	seq  int64
	rows [][]any
}

// subState is one standing subscription's server-side resume state. It
// outlives the HTTP stream that created it: a disconnect leaves the
// standing query registered and the ring intact, and a resume request
// re-attaches. It dies with its session (close, idle expiry, restart)
// or on a fatal stream error.
type subState struct {
	token   string // resume token clients present; also the live registration name
	sessID  string
	sq      *live.StandingQuery
	mode    string
	explain string
	cols    []Column
	poll    time.Duration

	mu      sync.Mutex
	nextSeq int64 // seq the next event will be assigned (starts at 1)
	minSeq  int64 // seq of the oldest event still in the ring
	ring    []subEvent
	ringCap int
	kick    chan struct{} // closed to evict the currently attached stream
}

func newSubState(token, sessID string, sq *live.StandingQuery, ringCap int) *subState {
	return &subState{
		token:   token,
		sessID:  sessID,
		sq:      sq,
		nextSeq: 1,
		minSeq:  1,
		ringCap: ringCap,
	}
}

// appendEvent assigns the next sequence number, records the event in the
// bounded ring (evicting the oldest beyond capacity), and returns it.
func (st *subState) appendEvent(rows [][]any) subEvent {
	st.mu.Lock()
	defer st.mu.Unlock()
	ev := subEvent{seq: st.nextSeq, rows: rows}
	st.nextSeq++
	st.ring = append(st.ring, ev)
	if len(st.ring) > st.ringCap {
		st.ring = st.ring[1:]
	}
	if len(st.ring) > 0 {
		st.minSeq = st.ring[0].seq
	}
	return ev
}

// replaySince returns the retained events with seq > after, or a typed
// error when the ring has already evicted part of that range — a silent
// gap is never an option.
func (st *subState) replaySince(after int64) ([]subEvent, *Error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if after >= st.nextSeq {
		return nil, errf(CodeBadRequest,
			"resume after seq %d, but the stream head is %d (client claims events the server never sent)",
			after, st.nextSeq-1)
	}
	if after+1 < st.minSeq {
		return nil, errf(CodeResumeHorizon,
			"resume after seq %d exceeds the replay horizon: the ring (cap %d) retains [%d, %d)",
			after, st.ringCap, st.minSeq, st.nextSeq)
	}
	var out []subEvent
	for _, ev := range st.ring {
		if ev.seq > after {
			out = append(out, ev)
		}
	}
	return out, nil
}

// attach installs a fresh kick channel for a newly attached stream and
// returns it. Any previously attached stream is kicked: its poll loop
// sees the closed channel and unwinds, so one subscription never has two
// writers.
func (st *subState) attach() chan struct{} {
	ch := make(chan struct{})
	st.mu.Lock()
	old := st.kick
	st.kick = ch
	st.mu.Unlock()
	if old != nil {
		close(old)
	}
	return ch
}

// lastSeq reports the newest assigned sequence number (0 before the
// first event).
func (st *subState) lastSeq() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.nextSeq - 1
}

// --- subscription registry ----------------------------------------------

// registerSub tracks a subscription's resume state under its token.
func (s *Server) registerSub(st *subState) {
	s.subsMu.Lock()
	defer s.subsMu.Unlock()
	s.subs[st.token] = st
}

// lookupSub resolves a resume token.
func (s *Server) lookupSub(token string) *subState {
	s.subsMu.Lock()
	defer s.subsMu.Unlock()
	return s.subs[token]
}

// dropSub removes a subscription: the resume token dies, any attached
// stream is kicked, and the standing query deregisters from the live
// manager. Safe to call twice.
func (s *Server) dropSub(token string) {
	s.subsMu.Lock()
	st := s.subs[token]
	delete(s.subs, token)
	s.subsMu.Unlock()
	if st == nil {
		return
	}
	st.attach() // kick whichever stream is attached; nobody reads the new channel
	s.mu.Lock()
	_ = s.live.Deregister(token)
	s.mu.Unlock()
}

// dropSessionSubs removes every subscription owned by a session — the
// cleanup edge for session close, idle expiry, and simulated restart.
func (s *Server) dropSessionSubs(sessID string) {
	s.subsMu.Lock()
	var tokens []string
	for token, st := range s.subs {
		if st.sessID == sessID {
			tokens = append(tokens, token)
		}
	}
	s.subsMu.Unlock()
	for _, token := range tokens {
		s.dropSub(token)
	}
}

// --- append dedup window ------------------------------------------------

// dedupEntry is one remembered append outcome: either the success
// response or the typed error the first application produced. Replaying
// the outcome (rather than just "seen") makes retries of partially
// failed appends deterministic: the retry reports the same result the
// original did, and never re-applies rows.
type dedupEntry struct {
	at   time.Time
	resp AppendResponse
	err  *Error
}

// dedupWindow backs append idempotency keys: outcomes are remembered for
// a TTL under (tenant, relation, key) and bounded in count, oldest first.
type dedupWindow struct {
	mu   sync.Mutex
	m    map[string]dedupEntry
	ttl  time.Duration
	max  int
	hits *obs.Counter
}

func newDedupWindow(ttl time.Duration, max int, reg *obs.Registry) *dedupWindow {
	return &dedupWindow{
		m:    map[string]dedupEntry{},
		ttl:  ttl,
		max:  max,
		hits: reg.Counter("tdb_server_append_dedup_hits_total", "append retries answered from the idempotency window without re-applying rows"),
	}
}

// lookup returns the remembered outcome for a key, counting the hit.
func (d *dedupWindow) lookup(key string, now time.Time) (dedupEntry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.m[key]
	if !ok || now.Sub(e.at) > d.ttl {
		return dedupEntry{}, false
	}
	d.hits.Inc()
	return e, true
}

// store remembers an outcome, evicting expired entries first and then —
// if the window is still at capacity — the oldest live entry.
func (d *dedupWindow) store(key string, e dedupEntry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.m) >= d.max {
		var oldestKey string
		var oldest time.Time
		for k, old := range d.m {
			if e.at.Sub(old.at) > d.ttl {
				delete(d.m, k)
				continue
			}
			if oldestKey == "" || old.at.Before(oldest) {
				oldestKey, oldest = k, old.at
			}
		}
		if len(d.m) >= d.max && oldestKey != "" {
			delete(d.m, oldestKey)
		}
	}
	d.m[key] = e
}

// reset drops every remembered outcome (simulated restart).
func (d *dedupWindow) reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.m = map[string]dedupEntry{}
}
