package server

import (
	"context"
	"net"
	"net/http"
	"sync"
	"time"

	"tdb/internal/engine"
	"tdb/internal/fault"
	"tdb/internal/live"
	"tdb/internal/obs"
	"tdb/internal/optimizer"
)

func init() {
	fault.Declare("server/execute", "query execution entry on the wire path")
	fault.Declare("server/wire-write", "response body serialization (torn mode truncates the body and aborts the connection)")
	fault.Declare("server/subscribe-deliver", "per-event delivery on a subscription stream (severs before the event reaches the wire; the replay ring keeps it)")
	fault.Declare("server/conn-sever", "subscription stream after an event reached the wire (severs the connection post-delivery)")
	fault.Declare("server/resume-gap", "subscription resume path (forces a typed resume_horizon error)")
	fault.Declare("server/dup-append", "append response after the rows applied and the dedup outcome was recorded (severs pre-response, so the client must retry into the dedup window)")
	fault.Declare("server/restart", "protocol gate (wipes sessions, subscriptions, and the dedup window — a simulated process restart losing all in-memory state)")
}

// Config assembles a Server. DB is the only required field.
type Config struct {
	// DB is the shared base catalog every session sees.
	DB *engine.DB
	// Registry receives server and engine metrics (a fresh registry is
	// created when nil).
	Registry *obs.Registry
	// Events receives the operational journal (a fresh log when nil).
	Events *obs.EventLog
	// Exec seeds per-query execution options (parallelism, policy,
	// tracer, profile, slow-query threshold). Registry, Events and
	// Interrupt are filled per request.
	Exec engine.Options
	// Optimizer selects optimization passes; integrity constraints are
	// always taken from the catalog.
	Optimizer optimizer.Options
	// Tenants configures admission quotas; empty means one "default"
	// tenant with the package defaults.
	Tenants []TenantConfig
	// IdleTimeout expires sessions with no request for this long
	// (default 5 minutes).
	IdleTimeout time.Duration
	// SubscribePoll is the standing-query poll cadence on subscription
	// streams (default 25ms).
	SubscribePoll time.Duration
	// ReplayRing bounds each subscription's resume ring: how many
	// delivered delta events stay replayable behind the stream head
	// (default 256). A resume past the horizon is a typed error.
	ReplayRing int
	// DedupTTL is how long append idempotency-key outcomes are
	// remembered (default 5 minutes); DedupMax bounds the window's
	// entry count (default 4096).
	DedupTTL time.Duration
	DedupMax int
}

// Server is the multi-tenant query service over one base catalog.
//
// Concurrency: srv.mu is the catalog lock. Queries (which only read
// relation rows) hold it shared; appends, flushes and standing-query
// registration/poll/deregistration (the live manager is not
// concurrency-safe) hold it exclusively. Session-private state (the
// "into" results registered in a session's catalog) is additionally
// serialized per session, so two requests on one session cannot race a
// catalog registration.
type Server struct {
	cfg      Config
	db       *engine.DB
	reg      *obs.Registry
	events   *obs.EventLog
	adm      *admission
	sessions *sessionTable

	mu   sync.RWMutex // catalog lock: see type comment
	live *live.Manager

	subsMu sync.Mutex // subscription resume registry; never held with s.mu
	subs   map[string]*subState

	dedup *dedupWindow

	mux       *http.ServeMux
	draining  chan struct{}
	drainOnce sync.Once
	stopOnce  sync.Once

	srvMu   sync.Mutex
	httpSrv *http.Server
}

// New builds a Server. Call Shutdown to release its sweeper and any
// listener Start opened.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Events == nil {
		cfg.Events = obs.NewEventLog(1024)
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	if cfg.SubscribePoll <= 0 {
		cfg.SubscribePoll = 25 * time.Millisecond
	}
	if cfg.ReplayRing <= 0 {
		cfg.ReplayRing = defaultReplayRing
	}
	if cfg.DedupTTL <= 0 {
		cfg.DedupTTL = defaultDedupTTL
	}
	if cfg.DedupMax <= 0 {
		cfg.DedupMax = defaultDedupMax
	}
	if cfg.Exec.Registry == nil {
		cfg.Exec.Registry = cfg.Registry
	}
	if cfg.Exec.Events == nil {
		cfg.Exec.Events = cfg.Events
	}
	s := &Server{
		cfg:      cfg,
		db:       cfg.DB,
		reg:      cfg.Registry,
		events:   cfg.Events,
		adm:      newAdmission(cfg.Tenants, cfg.Registry),
		sessions: newSessionTable(cfg.IdleTimeout, cfg.Registry, cfg.Events),
		subs:     map[string]*subState{},
		dedup:    newDedupWindow(cfg.DedupTTL, cfg.DedupMax, cfg.Registry),
		draining: make(chan struct{}),
	}
	s.sessions.onDrop = s.dropSessionSubs
	s.live = live.NewManager(cfg.DB, cfg.Registry, s.execOptions(context.Background(), nil))

	s.mux = obs.NewMux(cfg.Registry)
	v1 := func(name string, h http.HandlerFunc) {
		s.mux.HandleFunc("/"+Protocol+"/"+name, s.gate(h))
	}
	v1("session", s.handleSessionOpen)
	v1("session/close", s.handleSessionClose)
	v1("query", s.handleQuery)
	v1("prepare", s.handlePrepare)
	v1("execute", s.handleExecute)
	v1("stmt/close", s.handleCloseStmt)
	v1("append", s.handleAppend)
	v1("subscribe", s.handleSubscribe)
	// Ping bypasses the drain gate: readiness must stay observable while
	// the server refuses everything else.
	s.mux.HandleFunc("/"+Protocol+"/ping", s.gatePing(s.handlePing))
	return s
}

// gate rejects protocol requests once draining and normalizes the method.
// It also hosts the restart failpoint: a fired server/restart wipes all
// in-memory resume state (sessions, subscriptions, dedup window) before
// the request proceeds, simulating a process that crashed and came back.
func (s *Server) gate(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-s.draining:
			writeError(w, errf(CodeDraining, "server is draining"))
			return
		default:
		}
		if r.Method != http.MethodPost {
			writeError(w, errf(CodeBadRequest, "method %s not allowed (protocol endpoints are POST)", r.Method))
			return
		}
		if err := fault.Check("server/restart"); err != nil {
			s.simulateRestart()
		}
		h(w, r)
	}
}

// gatePing is the drain-exempt gate: method normalization only.
func (s *Server) gatePing(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, errf(CodeBadRequest, "method %s not allowed (protocol endpoints are POST)", r.Method))
			return
		}
		h(w, r)
	}
}

// simulateRestart drops every session, subscription, and remembered
// append outcome — the state a real process restart loses. The base
// catalog (durable state) survives, exactly as it would on disk.
func (s *Server) simulateRestart() {
	s.events.Emit(EventRestart, "", nil)
	s.subsMu.Lock()
	var tokens []string
	for token := range s.subs {
		tokens = append(tokens, token)
	}
	s.subsMu.Unlock()
	for _, token := range tokens {
		s.dropSub(token)
	}
	s.sessions.closeAll()
	s.dedup.reset()
}

// Handler returns the full HTTP surface: the /v1 protocol plus the
// observability endpoints (/metrics, /debug/vars, /debug/pprof).
func (s *Server) Handler() http.Handler { return s.mux }

// DB returns the shared base catalog.
func (s *Server) DB() *engine.DB { return s.db }

// Registry returns the metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Events returns the operational journal.
func (s *Server) Events() *obs.EventLog { return s.events }

// WithLive runs fn with the live-ingestion manager under the exclusive
// catalog lock — the only safe way for an embedding process (the shell)
// to share the manager with concurrent network clients.
func (s *Server) WithLive(fn func(*live.Manager) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fn(s.live)
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves until Shutdown.
// It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.Handler()}
	s.srvMu.Lock()
	s.httpSrv = srv
	s.srvMu.Unlock()
	// lint:allow worker-context — Serve exits when Shutdown closes the listener; the drain path is the cancellation edge
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown drains the server: new protocol requests are rejected with
// CodeDraining, queued admissions abort, open subscription streams send
// a final "drain" event and close, in-flight handlers finish (bounded by
// ctx), and the session sweeper and live manager stop. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() {
		close(s.draining)
		s.events.Emit(EventDrain, "", nil)
	})
	var err error
	s.srvMu.Lock()
	srv := s.httpSrv
	s.httpSrv = nil
	s.srvMu.Unlock()
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	s.stopOnce.Do(func() {
		s.sessions.stop()
		s.mu.Lock()
		s.live.Close()
		s.mu.Unlock()
	})
	return err
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// execOptions assembles per-request engine options: the configured base,
// this server's registry/journal, the tenant's governor arming, and the
// request context as the interrupt hook.
func (s *Server) execOptions(ctx context.Context, t *tenant) engine.Options {
	opt := s.cfg.Exec
	opt.Registry = s.reg
	opt.Events = s.events
	if t != nil && t.cfg.Govern {
		opt.GovernWorkspace = true
	}
	if ctx != nil && ctx.Done() != nil {
		opt.Interrupt = ctx.Err
	}
	return opt
}

// optOptions assembles optimizer options with the catalog's integrity
// constraints.
func (s *Server) optOptions() optimizer.Options {
	opt := s.cfg.Optimizer
	opt.ICs = s.db.ChronOrders()
	return opt
}

// sessionDB builds a session-private catalog: the base relations by
// reference (appends released into the base remain visible) plus the
// base integrity constraints. "into" results register here and are
// invisible to other sessions. Caller holds the shared catalog lock.
func (s *Server) sessionDB() (*engine.DB, error) {
	db := engine.NewDB()
	for _, name := range s.db.Names() {
		rel, err := s.db.Relation(name)
		if err != nil {
			return nil, err
		}
		if err := db.Register(rel); err != nil {
			return nil, err
		}
	}
	for _, ic := range s.db.ChronOrders() {
		if err := db.DeclareChronOrder(ic); err != nil {
			return nil, err
		}
	}
	return db, nil
}
