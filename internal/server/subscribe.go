package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"tdb/internal/algebra"
	"tdb/internal/fault"
	"tdb/internal/live"
	"tdb/internal/optimizer"
	"tdb/internal/quel"
)

// writeEvent emits one server-sent event and flushes it to the client.
func writeEvent(w http.ResponseWriter, fl http.Flusher, event string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
		return err
	}
	fl.Flush()
	return nil
}

// handleSubscribe admits a standing query and streams its deltas as
// server-sent events until the client cancels, the stream errors (the
// workspace breaker opening included), or the server drains. The
// admission slot is held only through registration; the open stream is
// tracked by the tenant's subscriptions gauge and bounded by the live
// manager's own backpressure, not the query quota.
//
// The subscription outlives the stream: its resume state (standing
// query, replay ring, resume token) survives a disconnect, and a
// request with Resume set re-attaches where the client left off.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req SubscribeRequest
	if apiErr := decodeBody(r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if req.Session == "" {
		writeError(w, errf(CodeBadRequest, "subscribe requires a session"))
		return
	}
	sess, apiErr := s.sessions.get(req.Session)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errf(CodeExec, "transport does not support streaming"))
		return
	}
	if req.Resume != "" {
		if req.Quel != "" {
			writeError(w, errf(CodeBadRequest, "a resume request re-attaches to an existing subscription; quel must be empty"))
			return
		}
		s.handleResume(w, fl, r, sess, &req)
		return
	}
	ten := sess.tenant
	prog, err := quel.Parse(req.Quel)
	if err != nil {
		writeError(w, errf(CodeParse, "%v", err))
		return
	}
	// Standing queries scan base relations through the shared live
	// manager, so translation runs against the shared catalog: a
	// session-private "into" relation has no ingestion front to stand on.
	s.mu.RLock()
	qs, err := quel.Translate(prog, s.db)
	s.mu.RUnlock()
	if err != nil {
		writeError(w, errf(CodeTranslate, "%v", err))
		return
	}
	if len(qs) != 1 || qs[0].Standing == "" {
		writeError(w, errf(CodeBadRequest, "subscribe takes exactly one subscribe statement"))
		return
	}
	q := qs[0]

	if apiErr := s.admit(r, ten); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	name := fmt.Sprintf("%s.%d.%s", sess.id, sess.nextSub(), q.Standing)
	s.mu.Lock()
	res, err := optimizer.Optimize(q.Tree, s.db, s.optOptions())
	var sq *live.StandingQuery
	if err == nil {
		sq, err = s.live.Register(name, res.Tree, live.RegisterOptions{
			AllowDegrade: true,
			Govern:       ten.cfg.Govern,
		})
	}
	s.mu.Unlock()
	ten.release()
	if err != nil {
		var decl *live.DeclinedError
		if errors.As(err, &decl) {
			writeError(w, errf(CodeDeclined, "%v", err))
			return
		}
		writeError(w, errf(CodePlan, "%v", err))
		return
	}

	sch := sq.Schema()
	if sch == nil {
		s.mu.RLock()
		sch, err = algebra.OutputSchema(res.Tree, s.db)
		s.mu.RUnlock()
		if err != nil {
			s.mu.Lock()
			_ = s.live.Deregister(name)
			s.mu.Unlock()
			writeError(w, errf(CodePlan, "output schema: %v", err))
			return
		}
	}
	poll := s.cfg.SubscribePoll
	if req.PollMS > 0 {
		poll = time.Duration(req.PollMS) * time.Millisecond
	}
	st := newSubState(name, sess.id, sq, s.cfg.ReplayRing)
	st.mode = sq.Mode().String()
	st.explain = sq.Explain()
	st.cols = encodeColumns(sch)
	st.poll = poll
	s.registerSub(st)
	kick := st.attach()

	writeStreamHeaders(w)
	if err := writeEvent(w, fl, "meta", SubscribeMeta{
		Name:      name,
		Mode:      st.mode,
		Explain:   st.explain,
		Columns:   st.cols,
		Resume:    name,
		ReplayCap: st.ringCap,
	}); err != nil {
		return
	}
	s.streamSub(w, fl, r, st, kick)
}

// handleResume re-attaches a disconnected client to its subscription:
// replay every retained event past the client's last seq, then continue
// the live stream. The standing query kept polling state the whole time,
// so the spliced stream is byte-identical to one that never severed.
func (s *Server) handleResume(w http.ResponseWriter, fl http.Flusher, r *http.Request, sess *session, req *SubscribeRequest) {
	if err := fault.Check("server/resume-gap"); err != nil {
		writeError(w, errf(CodeResumeHorizon, "resume after seq %d: %v", req.AfterSeq, err))
		return
	}
	st := s.lookupSub(req.Resume)
	if st == nil || st.sessID != sess.id {
		writeError(w, errf(CodeUnknownResume, "resume token %q is not registered (server restart, subscription teardown, or foreign session)", req.Resume))
		return
	}
	replay, apiErr := st.replaySince(req.AfterSeq)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	kick := st.attach()

	writeStreamHeaders(w)
	if err := writeEvent(w, fl, "meta", SubscribeMeta{
		Name:      st.token,
		Mode:      st.mode,
		Explain:   st.explain,
		Columns:   st.cols,
		Resume:    st.token,
		ReplayCap: st.ringCap,
	}); err != nil {
		return
	}
	for _, ev := range replay {
		if err := writeEvent(w, fl, "deltas", SubscribeDeltas{Seq: ev.seq, Rows: ev.rows}); err != nil {
			return
		}
	}
	s.streamSub(w, fl, r, st, kick)
}

func writeStreamHeaders(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
}

// streamSub is the shared live loop: poll the standing query, record
// each delta batch in the replay ring, and deliver it. The two sever
// failpoints bracket the write — subscribe-deliver fires after the ring
// recorded the event but before the wire saw it (a resume must replay
// it: the zero-loss edge), conn-sever fires after a successful write (a
// resume must NOT replay it: the zero-duplication edge).
func (s *Server) streamSub(w http.ResponseWriter, fl http.Flusher, r *http.Request, st *subState, kick chan struct{}) {
	ten := s.sessionTenant(st.sessID)
	if ten != nil {
		ten.gSubs.Add(1)
		defer ten.gSubs.Add(-1)
	}
	ticker := time.NewTicker(st.poll)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-kick:
			// A newer stream attached (or the subscription dropped); this
			// writer must stop so the subscription never has two.
			return
		case <-s.draining:
			_ = writeEvent(w, fl, "drain", map[string]string{"reason": "server shutting down"})
			s.dropSub(st.token)
			return
		case <-ticker.C:
		}
		// The stream is the session's liveness signal: an attached
		// subscriber holds no per-request admission but must not have its
		// session idle-expire underneath the subscription.
		s.sessions.touch(st.sessID)
		s.mu.Lock()
		rows, err := st.sq.Poll()
		s.mu.Unlock()
		if err != nil {
			code := CodeExec
			if errors.Is(err, live.ErrBreakerOpen) {
				code = CodeBreakerOpen
			}
			_ = writeEvent(w, fl, "error", wireError{Code: code, Message: err.Error()})
			s.dropSub(st.token)
			return
		}
		if len(rows) == 0 {
			continue
		}
		ev := st.appendEvent(encodeRows(rows))
		if err := fault.Check("server/subscribe-deliver"); err != nil {
			// Sever before the event reaches the wire. The ring already
			// holds it, so a resume replays exactly this event — the
			// client loses nothing.
			// lint:allow panic — http.ErrAbortHandler severs the connection; net/http recovers it
			panic(http.ErrAbortHandler)
		}
		if err := writeEvent(w, fl, "deltas", SubscribeDeltas{Seq: ev.seq, Rows: ev.rows}); err != nil {
			return
		}
		if err := fault.Check("server/conn-sever"); err != nil {
			// Sever after the event reached the wire. A resume with the
			// client's true last seq replays nothing — no duplicate.
			// lint:allow panic — http.ErrAbortHandler severs the connection; net/http recovers it
			panic(http.ErrAbortHandler)
		}
	}
}

// sessionTenant resolves a session's tenant for gauge accounting; nil
// when the session is already gone.
func (s *Server) sessionTenant(sessID string) *tenant {
	sess, apiErr := s.sessions.get(sessID)
	if apiErr != nil {
		return nil
	}
	return sess.tenant
}
