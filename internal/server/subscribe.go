package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"tdb/internal/algebra"
	"tdb/internal/fault"
	"tdb/internal/live"
	"tdb/internal/optimizer"
	"tdb/internal/quel"
)

// writeEvent emits one server-sent event and flushes it to the client.
func writeEvent(w http.ResponseWriter, fl http.Flusher, event string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
		return err
	}
	fl.Flush()
	return nil
}

// handleSubscribe admits a standing query and streams its deltas as
// server-sent events until the client cancels, the stream errors (the
// workspace breaker opening included), or the server drains. The
// admission slot is held only through registration; the open stream is
// tracked by the tenant's subscriptions gauge and bounded by the live
// manager's own backpressure, not the query quota.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req SubscribeRequest
	if apiErr := decodeBody(r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if req.Session == "" {
		writeError(w, errf(CodeBadRequest, "subscribe requires a session"))
		return
	}
	sess, apiErr := s.sessions.get(req.Session)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errf(CodeExec, "transport does not support streaming"))
		return
	}
	ten := sess.tenant
	prog, err := quel.Parse(req.Quel)
	if err != nil {
		writeError(w, errf(CodeParse, "%v", err))
		return
	}
	// Standing queries scan base relations through the shared live
	// manager, so translation runs against the shared catalog: a
	// session-private "into" relation has no ingestion front to stand on.
	s.mu.RLock()
	qs, err := quel.Translate(prog, s.db)
	s.mu.RUnlock()
	if err != nil {
		writeError(w, errf(CodeTranslate, "%v", err))
		return
	}
	if len(qs) != 1 || qs[0].Standing == "" {
		writeError(w, errf(CodeBadRequest, "subscribe takes exactly one subscribe statement"))
		return
	}
	q := qs[0]

	if apiErr := s.admit(r, ten); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	name := fmt.Sprintf("%s.%d.%s", sess.id, sess.nextSub(), q.Standing)
	s.mu.Lock()
	res, err := optimizer.Optimize(q.Tree, s.db, s.optOptions())
	var sq *live.StandingQuery
	if err == nil {
		sq, err = s.live.Register(name, res.Tree, live.RegisterOptions{
			AllowDegrade: true,
			Govern:       ten.cfg.Govern,
		})
	}
	s.mu.Unlock()
	ten.release()
	if err != nil {
		var decl *live.DeclinedError
		if errors.As(err, &decl) {
			writeError(w, errf(CodeDeclined, "%v", err))
			return
		}
		writeError(w, errf(CodePlan, "%v", err))
		return
	}
	ten.gSubs.Add(1)
	defer ten.gSubs.Add(-1)
	defer func() {
		s.mu.Lock()
		_ = s.live.Deregister(name)
		s.mu.Unlock()
	}()

	sch := sq.Schema()
	if sch == nil {
		s.mu.RLock()
		sch, err = algebra.OutputSchema(res.Tree, s.db)
		s.mu.RUnlock()
		if err != nil {
			writeError(w, errf(CodePlan, "output schema: %v", err))
			return
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	if err := writeEvent(w, fl, "meta", SubscribeMeta{
		Name:    name,
		Mode:    sq.Mode().String(),
		Explain: sq.Explain(),
		Columns: encodeColumns(sch),
	}); err != nil {
		return
	}

	poll := s.cfg.SubscribePoll
	if req.PollMS > 0 {
		poll = time.Duration(req.PollMS) * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	var seq int64
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.draining:
			_ = writeEvent(w, fl, "drain", map[string]string{"reason": "server shutting down"})
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		rows, err := sq.Poll()
		s.mu.Unlock()
		if err != nil {
			code := CodeExec
			if errors.Is(err, live.ErrBreakerOpen) {
				code = CodeBreakerOpen
			}
			_ = writeEvent(w, fl, "error", wireError{Code: code, Message: err.Error()})
			return
		}
		if len(rows) == 0 {
			continue
		}
		if err := fault.Check("server/subscribe-deliver"); err != nil {
			// Sever the stream rather than risk a delta the client
			// cannot distinguish from a healthy one: an abrupt EOF is a
			// detectable failure, a fabricated event is not.
			// lint:allow panic — http.ErrAbortHandler severs the connection; net/http recovers it
			panic(http.ErrAbortHandler)
		}
		seq++
		if err := writeEvent(w, fl, "deltas", SubscribeDeltas{Seq: seq, Rows: encodeRows(rows)}); err != nil {
			return
		}
	}
}
