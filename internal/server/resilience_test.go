package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tdb/internal/fault"
	"tdb/internal/live"
)

// feedFirstBatch appends the canonical overlap fixture: alice × bob is
// the one overlapping pair, carol and dave advance both frontiers past
// it so the stream operator emits — delta seq 1 is [[alice]].
func feedFirstBatch(t *testing.T, base string) {
	t.Helper()
	for _, app := range []AppendRequest{
		{Relation: "F", Rows: [][]any{{"alice", "Assistant", 1, 10}}, Flush: true},
		{Relation: "G", Rows: [][]any{{"bob", "Full", 2, 8}}, Flush: true},
		{Relation: "F", Rows: [][]any{{"carol", "Full", 20, 25}}, Flush: true},
		{Relation: "G", Rows: [][]any{{"dave", "Full", 21, 26}}, Flush: true},
	} {
		if we := post(t, base, "append", app, nil); we != nil {
			t.Fatalf("append %s: %s: %s", app.Relation, we.Code, we.Message)
		}
	}
}

// feedSecondBatch appends iris and jack to advance both frontiers past
// the pending carol × dave pair. Exactly one pair releases, and only
// when jack — the lone G-frontier advance — lands last, so the second
// delta event is always seq 2 with the single carol row, no matter how
// the poll ticks interleave with the operator's feed.
func feedSecondBatch(t *testing.T, base string) {
	t.Helper()
	for _, app := range []AppendRequest{
		{Relation: "F", Rows: [][]any{{"iris", "Full", 60, 65}}, Flush: true},
		{Relation: "G", Rows: [][]any{{"jack", "Full", 61, 66}}, Flush: true},
	} {
		if we := post(t, base, "append", app, nil); we != nil {
			t.Fatalf("append %s: %s: %s", app.Relation, we.Code, we.Message)
		}
	}
}

// subscribeMeta opens a subscribe stream and returns its reader, meta,
// and canceler.
func subscribeWithMeta(t *testing.T, ts *httptest.Server, req SubscribeRequest) (*bufio.Reader, SubscribeMeta, context.CancelFunc) {
	t.Helper()
	r, cancel := startSubscribe(t, ts, req)
	ev, err := readEvent(r)
	if err != nil {
		t.Fatalf("read meta: %v", err)
	}
	if ev.name != "meta" {
		t.Fatalf("first event %q, want meta", ev.name)
	}
	var meta SubscribeMeta
	if err := json.Unmarshal(ev.data, &meta); err != nil {
		t.Fatalf("decode meta: %v", err)
	}
	return r, meta, cancel
}

// readDeltas reads the next event and requires it to be a deltas event.
func readDeltas(t *testing.T, r *bufio.Reader) (SubscribeDeltas, []byte) {
	t.Helper()
	ev, err := readEvent(r)
	if err != nil {
		t.Fatalf("read deltas: %v", err)
	}
	if ev.name != "deltas" {
		t.Fatalf("event %q (%s), want deltas", ev.name, ev.data)
	}
	var d SubscribeDeltas
	if err := json.Unmarshal(ev.data, &d); err != nil {
		t.Fatal(err)
	}
	return d, ev.data
}

// TestChaosSeverThenResumeByteIdentical is the exactly-once tentpole
// proof: a stream severed before delivery (server/subscribe-deliver)
// resumes from seq 0 and the spliced delta stream is byte-identical to
// an unsevered control run over the same appends.
func TestChaosSeverThenResumeByteIdentical(t *testing.T) {
	// Control: no faults, collect the two delta event payloads.
	var control [][]byte
	{
		_, ts := newTestServer(t, Config{DB: liveDB(t), SubscribePoll: 2 * time.Millisecond})
		sid := openSession(t, ts.URL, "")
		r, _, _ := subscribeWithMeta(t, ts, SubscribeRequest{Session: sid, Quel: overlapSubscribe})
		feedFirstBatch(t, ts.URL)
		_, raw1 := readDeltas(t, r)
		feedSecondBatch(t, ts.URL)
		_, raw2 := readDeltas(t, r)
		control = append(control, raw1, raw2)
	}

	// Chaos: the first delivery severs pre-wire; the ring keeps it.
	s, ts := newTestServer(t, Config{DB: liveDB(t), SubscribePoll: 2 * time.Millisecond})
	sid := openSession(t, ts.URL, "")
	r, meta, _ := subscribeWithMeta(t, ts, SubscribeRequest{Session: sid, Quel: overlapSubscribe})
	if meta.Resume == "" || meta.ReplayCap <= 0 {
		t.Fatalf("meta lacks resume surface: %+v", meta)
	}
	if err := fault.Arm("server/subscribe-deliver=error:n=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	feedFirstBatch(t, ts.URL)
	if ev, err := readEvent(r); err == nil {
		t.Fatalf("stream delivered %+v past the armed delivery sever", ev)
	}

	// Resume from seq 0: the severed event replays, nothing is lost.
	r2, meta2, _ := subscribeWithMeta(t, ts, SubscribeRequest{Session: sid, Resume: meta.Resume, AfterSeq: 0})
	if meta2.Resume != meta.Resume {
		t.Errorf("resume token changed across reconnect: %q -> %q", meta.Resume, meta2.Resume)
	}
	d1, raw1 := readDeltas(t, r2)
	feedSecondBatch(t, ts.URL)
	d2, raw2 := readDeltas(t, r2)
	if d1.Seq != 1 || d2.Seq != 2 {
		t.Fatalf("resumed seqs %d,%d want 1,2", d1.Seq, d2.Seq)
	}
	if !bytes.Equal(raw1, control[0]) || !bytes.Equal(raw2, control[1]) {
		t.Errorf("resumed stream diverged from unsevered control:\n got %s | %s\nwant %s | %s", raw1, raw2, control[0], control[1])
	}

	// The replay ring's head aligns with the standing query's own batch
	// count — the wire layer invented no sequence numbers.
	if err := s.WithLive(func(m *live.Manager) error {
		for _, q := range m.Queries() {
			if q.Batches() != 2 {
				return fmt.Errorf("standing query emitted %d batches, stream head is 2", q.Batches())
			}
		}
		return nil
	}); err != nil {
		t.Error(err)
	}
}

// TestChaosConnSeverNoDuplicate: a stream severed after delivery
// (server/conn-sever) resumes from the delivered seq and replays
// nothing — the zero-duplication edge.
func TestChaosConnSeverNoDuplicate(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: liveDB(t), SubscribePoll: 2 * time.Millisecond})
	sid := openSession(t, ts.URL, "")
	r, meta, _ := subscribeWithMeta(t, ts, SubscribeRequest{Session: sid, Quel: overlapSubscribe})
	if err := fault.Arm("server/conn-sever=error:n=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	feedFirstBatch(t, ts.URL)
	d1, _ := readDeltas(t, r)
	if d1.Seq != 1 {
		t.Fatalf("first delta seq %d, want 1", d1.Seq)
	}
	if ev, err := readEvent(r); err == nil {
		t.Fatalf("stream stayed open past the armed post-delivery sever: %+v", ev)
	}

	r2, _, _ := subscribeWithMeta(t, ts, SubscribeRequest{Session: sid, Resume: meta.Resume, AfterSeq: d1.Seq})
	feedSecondBatch(t, ts.URL)
	d2, _ := readDeltas(t, r2)
	if d2.Seq != 2 {
		t.Fatalf("post-resume delta seq %d, want 2 — seq 1 must not replay", d2.Seq)
	}
	for _, row := range d2.Rows {
		if row[0] == "alice" {
			t.Errorf("post-resume delta replayed alice: %+v", d2)
		}
	}
}

// TestChaosResumeGapTyped: the armed resume-gap failpoint surfaces as
// the typed resume_horizon error, never a silently gapped stream.
func TestChaosResumeGapTyped(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: liveDB(t), SubscribePoll: 2 * time.Millisecond})
	sid := openSession(t, ts.URL, "")
	_, meta, cancel := subscribeWithMeta(t, ts, SubscribeRequest{Session: sid, Quel: overlapSubscribe})
	cancel()
	if err := fault.Arm("server/resume-gap=error:n=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	we := post(t, ts.URL, "subscribe", SubscribeRequest{Session: sid, Resume: meta.Resume}, nil)
	if we == nil || we.Code != CodeResumeHorizon {
		t.Errorf("armed resume gap: %+v, want %s", we, CodeResumeHorizon)
	}
}

// TestResumeHorizonWhenRingEvicted: with a one-slot replay ring, a
// resume behind the retained window is a typed error while a resume at
// the window's edge replays exactly the retained event.
func TestResumeHorizonWhenRingEvicted(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: liveDB(t), SubscribePoll: 2 * time.Millisecond, ReplayRing: 1})
	sid := openSession(t, ts.URL, "")
	r, meta, cancel := subscribeWithMeta(t, ts, SubscribeRequest{Session: sid, Quel: overlapSubscribe})
	if meta.ReplayCap != 1 {
		t.Fatalf("replay cap %d, want 1", meta.ReplayCap)
	}
	feedFirstBatch(t, ts.URL)
	readDeltas(t, r)
	feedSecondBatch(t, ts.URL)
	readDeltas(t, r)
	cancel()

	// Seq 1 has been evicted: resuming after 0 would need it.
	we := post(t, ts.URL, "subscribe", SubscribeRequest{Session: sid, Resume: meta.Resume, AfterSeq: 0}, nil)
	if we == nil || we.Code != CodeResumeHorizon {
		t.Fatalf("resume past horizon: %+v, want %s", we, CodeResumeHorizon)
	}
	// Seq 2 is retained: resuming after 1 replays it.
	r2, _, _ := subscribeWithMeta(t, ts, SubscribeRequest{Session: sid, Resume: meta.Resume, AfterSeq: 1})
	d, _ := readDeltas(t, r2)
	if d.Seq != 2 || len(d.Rows) == 0 {
		t.Errorf("edge-of-ring resume delta %+v, want the retained seq 2", d)
	}
	// Claiming events the server never sent is a bad request, not a
	// horizon problem.
	we = post(t, ts.URL, "subscribe", SubscribeRequest{Session: sid, Resume: meta.Resume, AfterSeq: 99}, nil)
	if we == nil || we.Code != CodeBadRequest {
		t.Errorf("resume past head: %+v, want %s", we, CodeBadRequest)
	}
}

// TestChaosDupAppendDedup: an append whose response severs after the
// rows applied (server/dup-append) is retried under the same
// idempotency key; the dedup window replays the outcome without
// re-applying rows, and the hit metric records it.
func TestChaosDupAppendDedup(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: liveDB(t)})
	if err := fault.Arm("server/dup-append=error:n=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	app := AppendRequest{Relation: "F", Rows: [][]any{{"zoe", "Full", 1, 5}}, Flush: true, IdemKey: "k-dup-1"}
	body, _ := json.Marshal(app)
	if _, err := http.Post(ts.URL+"/"+Protocol+"/append", "application/json", bytes.NewReader(body)); err == nil {
		t.Fatal("armed dup-append fault did not sever the response")
	}
	// Retry with the same key: replayed outcome, no second application.
	var resp AppendResponse
	if we := post(t, ts.URL, "append", app, &resp); we != nil {
		t.Fatalf("retried append: %s: %s", we.Code, we.Message)
	}
	if !resp.Deduped || resp.Appended != 1 {
		t.Errorf("retried append %+v, want deduped replay of appended=1", resp)
	}
	if hits := scrapeServerCounter(t, ts.URL, "tdb_server_append_dedup_hits_total"); hits != 1 {
		t.Errorf("dedup hits %d, want 1", hits)
	}
	// A fresh key with the same rows applies normally (watermark
	// semantics aside, the window keys on the idempotency key alone).
	var resp2 AppendResponse
	app2 := AppendRequest{Relation: "F", Rows: [][]any{{"yan", "Full", 6, 9}}, Flush: true, IdemKey: "k-dup-2"}
	if we := post(t, ts.URL, "append", app2, &resp2); we != nil {
		t.Fatalf("fresh-key append: %s: %s", we.Code, we.Message)
	}
	if resp2.Deduped {
		t.Error("fresh key reported deduped")
	}
}

// TestChaosRestartLosesResumeState: a simulated restart (server/restart)
// wipes sessions, subscriptions, and the dedup window — the client's
// resume attempt gets the typed unknown_resume, its session the typed
// unknown_session, never a silent new stream.
func TestChaosRestartLosesResumeState(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: liveDB(t), SubscribePoll: 2 * time.Millisecond})
	sid := openSession(t, ts.URL, "")
	_, meta, cancel := subscribeWithMeta(t, ts, SubscribeRequest{Session: sid, Quel: overlapSubscribe})
	cancel()
	if err := fault.Arm("server/restart=error:n=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	// The restart fires in the gate of this very request, which then
	// finds its session gone.
	we := post(t, ts.URL, "query", QueryRequest{Session: sid, Quel: facultyQuery}, nil)
	if we == nil || we.Code != CodeUnknownSession {
		t.Fatalf("query across restart: %+v, want %s", we, CodeUnknownSession)
	}
	sid2 := openSession(t, ts.URL, "")
	we = post(t, ts.URL, "subscribe", SubscribeRequest{Session: sid2, Resume: meta.Resume}, nil)
	if we == nil || we.Code != CodeUnknownResume {
		t.Errorf("resume across restart: %+v, want %s", we, CodeUnknownResume)
	}
}

// TestChaosSessionExpiryRace: queries racing the idle-expiry sweeper
// always fail with a typed session error — never a nil-catalog panic
// surfacing as a 500.
func TestChaosSessionExpiryRace(t *testing.T) {
	_, ts := newTestServer(t, Config{IdleTimeout: 5 * time.Millisecond})
	deadline := time.Now().Add(300 * time.Millisecond)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				var open SessionOpenResponse
				body, _ := json.Marshal(SessionOpenRequest{})
				resp, err := http.Post(ts.URL+"/"+Protocol+"/session", "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				dec := json.NewDecoder(resp.Body)
				derr := dec.Decode(&open)
				resp.Body.Close()
				if derr != nil || open.Session == "" {
					continue
				}
				for i := 0; i < 20 && time.Now().Before(deadline); i++ {
					qb, _ := json.Marshal(QueryRequest{Session: open.Session, Quel: facultyQuery})
					qr, err := http.Post(ts.URL+"/"+Protocol+"/query", "application/json", bytes.NewReader(qb))
					if err != nil {
						continue
					}
					if qr.StatusCode != http.StatusOK {
						var env errorEnvelope
						_ = json.NewDecoder(qr.Body).Decode(&env)
						code := env.Error.Code
						if code != CodeSessionExpired && code != CodeUnknownSession {
							select {
							case errs <- fmt.Sprintf("status %d code %q: %s", qr.StatusCode, code, env.Error.Message):
							default:
							}
						}
					}
					qr.Body.Close()
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		if strings.Contains(msg, "code \"\"") || !strings.Contains(msg, "session") {
			t.Errorf("untyped failure under expiry race: %s", msg)
		}
	}
}

// scrapeServerCounter reads one counter off the /metrics endpoint.
func scrapeServerCounter(t *testing.T, base, name string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	var v int64 = -1
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%d", &v)
		}
	}
	return v
}
