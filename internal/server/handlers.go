package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"tdb/internal/algebra"
	"tdb/internal/engine"
	"tdb/internal/fault"
	"tdb/internal/interval"
	"tdb/internal/live"
	"tdb/internal/optimizer"
	"tdb/internal/quel"
	"tdb/internal/relation"
	"tdb/internal/value"
)

// decodeBody decodes a JSON request body with number preservation
// (json.Number keeps chronons exact through int64, including Forever).
func decodeBody(r *http.Request, v any) *Error {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		return errf(CodeBadRequest, "decode request: %v", err)
	}
	return nil
}

func writeError(w http.ResponseWriter, e *Error) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfterMS > 0 {
		// Retry-After is whole seconds; round up so the header never
		// advises a shorter wait than the envelope.
		secs := (e.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.WriteHeader(e.HTTP)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: wireError{Code: e.Code, Message: e.Message, RetryAfterMS: e.RetryAfterMS}})
}

// writeJSON serializes a success response through the server/wire-write
// failpoint. Torn mode sends a strict prefix of the body and severs the
// connection, so a client can never mistake an injected wire failure for
// a complete result: the truncated JSON fails to decode.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, errf(CodeExec, "encode response: %v", err))
		return
	}
	n, ferr := fault.Torn("server/wire-write", len(b))
	if ferr != nil {
		writeError(w, errf(CodeExec, "wire write: %v", ferr))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if n < len(b) {
		_, _ = w.Write(b[:n])
		// lint:allow panic — http.ErrAbortHandler is the stdlib idiom for severing a connection mid-response; net/http recovers it
		panic(http.ErrAbortHandler)
	}
	_, _ = w.Write(b)
}

// resolve turns wire (session, tenant) fields into server state. With a
// session id the tenant and catalog are the session's; without one the
// request is sessionless: named-tenant quota over the shared catalog.
func (s *Server) resolve(sessionID, tenantName string) (*session, *tenant, *engine.DB, *Error) {
	if sessionID != "" {
		sess, apiErr := s.sessions.get(sessionID)
		if apiErr != nil {
			return nil, nil, nil, apiErr
		}
		sess.mu.Lock()
		apiErr = sess.expired()
		db := sess.db
		sess.mu.Unlock()
		if apiErr != nil {
			return nil, nil, nil, apiErr
		}
		return sess, sess.tenant, db, nil
	}
	ten, apiErr := s.adm.tenant(tenantName)
	if apiErr != nil {
		return nil, nil, nil, apiErr
	}
	return nil, ten, s.db, nil
}

// admit wraps tenant admission with the quota journal entry.
func (s *Server) admit(r *http.Request, ten *tenant) *Error {
	apiErr := ten.acquire(r.Context(), s.draining)
	if apiErr != nil && (apiErr.Code == CodeQuotaConcurrency || apiErr.Code == CodeQueueTimeout) {
		s.events.Emit(EventQuotaReject, "", map[string]string{
			"tenant": ten.cfg.Name, "code": apiErr.Code,
		})
	}
	return apiErr
}

func (s *Server) handlePing(w http.ResponseWriter, r *http.Request) {
	status := "serving"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, PingResponse{Protocol: Protocol, Status: status})
}

func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	var req SessionOpenRequest
	if apiErr := decodeBody(r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	ten, apiErr := s.adm.tenant(req.Tenant)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	s.mu.RLock()
	db, err := s.sessionDB()
	s.mu.RUnlock()
	if err != nil {
		writeError(w, errf(CodeExec, "build session catalog: %v", err))
		return
	}
	sess := s.sessions.open(ten, db)
	writeJSON(w, SessionOpenResponse{
		Protocol:      Protocol,
		Session:       sess.id,
		Tenant:        ten.cfg.Name,
		IdleTimeoutMS: s.cfg.IdleTimeout.Milliseconds(),
	})
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	var req SessionCloseRequest
	if apiErr := decodeBody(r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	s.sessions.close(req.Session)
	writeJSON(w, map[string]string{"status": "closed"})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if apiErr := decodeBody(r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	sess, ten, db, apiErr := s.resolve(req.Session, req.Tenant)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if apiErr := s.admit(r, ten); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	defer ten.release()
	params, apiErr := decodeParams(req.Params)
	if apiErr == nil {
		var resp *QueryResponse
		resp, apiErr = s.runRetrieve(r, sess, ten, db, req.Quel, params)
		if apiErr == nil {
			ten.cQueries.Inc()
			writeJSON(w, resp)
			return
		}
	}
	ten.cErrors.Inc()
	writeError(w, apiErr)
}

// runRetrieve is the shared text-to-rows path: parse, translate, bind,
// optimize, execute, encode — under the shared catalog lock, serialized
// per session when one is involved (a session's catalog may gain an
// "into" relation mid-request).
func (s *Server) runRetrieve(r *http.Request, sess *session, ten *tenant, db *engine.DB, text string, params []value.Value) (*QueryResponse, *Error) {
	if err := fault.Check("server/execute"); err != nil {
		return nil, errf(CodeExec, "execute: %v", err)
	}
	prog, err := quel.Parse(text)
	if err != nil {
		return nil, errf(CodeParse, "%v", err)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if sess != nil {
		sess.mu.Lock()
		defer sess.mu.Unlock()
		if apiErr := sess.expired(); apiErr != nil {
			return nil, apiErr
		}
		db = sess.db
	}
	qs, err := quel.Translate(prog, db)
	if err != nil {
		return nil, errf(CodeTranslate, "%v", err)
	}
	q, apiErr := singleRetrieve(qs, sess != nil)
	if apiErr != nil {
		return nil, apiErr
	}
	tree, err := quel.BindParams(q, params)
	if err != nil {
		return nil, errf(CodeBind, "%v", err)
	}
	res, err := optimizer.Optimize(tree, db, s.optOptions())
	if err != nil {
		return nil, errf(CodePlan, "%v", err)
	}
	return s.execute(r, sess, ten, db, q, res)
}

// singleRetrieve enforces one executable statement per request and
// routes standing queries to the subscription endpoint.
func singleRetrieve(qs []quel.Query, hasSession bool) (*quel.Query, *Error) {
	if len(qs) == 0 {
		return nil, errf(CodeBadRequest, "no retrieve statement in request (range declarations alone run nothing)")
	}
	if len(qs) > 1 {
		return nil, errf(CodeBadRequest, "%d retrieve statements in one request; the protocol is one statement per call", len(qs))
	}
	q := &qs[0]
	if q.Standing != "" {
		return nil, errf(CodeBadRequest, "subscribe statements stream; use the %s/subscribe endpoint", Protocol)
	}
	if q.Into != "" && !hasSession {
		return nil, errf(CodeBadRequest, "into %q requires a session (sessionless queries are read-only)", q.Into)
	}
	return q, nil
}

// execute runs an optimized plan and encodes the response. Caller holds
// the shared catalog read lock (and the session lock when sess != nil).
func (s *Server) execute(r *http.Request, sess *session, ten *tenant, db *engine.DB, q *quel.Query, res *optimizer.Result) (*QueryResponse, *Error) {
	start := time.Now()
	resp := &QueryResponse{}
	if res.Contradiction {
		sch, err := algebra.OutputSchema(res.Tree, db)
		if err != nil {
			return nil, errf(CodePlan, "output schema: %v", err)
		}
		resp.Columns = encodeColumns(sch)
		resp.Rows = [][]any{}
		resp.Contradiction = true
		resp.Notes = append(resp.Notes, "semantic optimization proved the query empty; nothing was executed")
		resp.ElapsedNS = time.Since(start).Nanoseconds()
		return resp, nil
	}
	out, _, err := engine.Run(db, res.Tree, s.execOptions(r.Context(), ten))
	if err != nil {
		if errors.Is(err, engine.ErrInterrupted) {
			return nil, errf(CodeCanceled, "%v", err)
		}
		return nil, errf(CodeExec, "%v", err)
	}
	if q.Into != "" {
		out.Name = q.Into
		if err := sess.db.Register(out); err != nil {
			return nil, errf(CodeExec, "register into %s: %v", q.Into, err)
		}
		resp.Into = q.Into
	}
	resp.Columns = encodeColumns(out.Schema)
	resp.Rows = encodeRows(out.Rows)
	resp.ElapsedNS = time.Since(start).Nanoseconds()
	return resp, nil
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req PrepareRequest
	if apiErr := decodeBody(r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if req.Session == "" {
		writeError(w, errf(CodeBadRequest, "prepare requires a session"))
		return
	}
	sess, apiErr := s.sessions.get(req.Session)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	prog, err := quel.Parse(req.Quel)
	if err != nil {
		writeError(w, errf(CodeParse, "%v", err))
		return
	}
	s.mu.RLock()
	sess.mu.Lock()
	if apiErr := sess.expired(); apiErr != nil {
		sess.mu.Unlock()
		s.mu.RUnlock()
		writeError(w, apiErr)
		return
	}
	qs, err := quel.Translate(prog, sess.db)
	var (
		q    *quel.Query
		cols []Column
	)
	if err == nil {
		q, apiErr = singleRetrieve(qs, true)
		if apiErr == nil {
			var sch *relation.Schema
			sch, err = algebra.OutputSchema(q.Tree, sess.db)
			if err == nil {
				cols = encodeColumns(sch)
			}
		}
	}
	sess.mu.Unlock()
	s.mu.RUnlock()
	if err != nil {
		writeError(w, errf(CodeTranslate, "%v", err))
		return
	}
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	p := &prepared{src: req.Quel, q: *q, cols: cols}
	id := sess.addStmt(p)
	writeJSON(w, PrepareResponse{Stmt: id, NumParams: q.NumParams, Columns: cols})
}

// paramKey renders a parameter binding as a plan-cache key.
func paramKey(params []value.Value) string {
	if len(params) == 0 {
		return ""
	}
	var b strings.Builder
	for _, v := range params {
		b.WriteString(v.Kind().String())
		b.WriteByte(':')
		b.WriteString(v.String())
		b.WriteByte(0)
	}
	return b.String()
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	var req ExecuteRequest
	if apiErr := decodeBody(r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	sess, apiErr := s.sessions.get(req.Session)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	ten := sess.tenant
	p, apiErr := sess.stmt(req.Stmt)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if apiErr := s.admit(r, ten); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	defer ten.release()
	resp, apiErr := s.runPrepared(r, sess, ten, p, req.Params)
	if apiErr != nil {
		ten.cErrors.Inc()
		writeError(w, apiErr)
		return
	}
	ten.cQueries.Inc()
	writeJSON(w, resp)
}

// runPrepared executes a prepared statement: the parse and translation
// are cached in the statement; the optimized plan is cached per
// parameter binding (the semantic pass folds constants, so the plan is
// binding-dependent by construction). The cached plan's tree is cloned
// per run so concurrent executions never share operator state.
func (s *Server) runPrepared(r *http.Request, sess *session, ten *tenant, p *prepared, wireParams []any) (*QueryResponse, *Error) {
	if err := fault.Check("server/execute"); err != nil {
		return nil, errf(CodeExec, "execute: %v", err)
	}
	params, apiErr := decodeParams(wireParams)
	if apiErr != nil {
		return nil, apiErr
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if apiErr := sess.expired(); apiErr != nil {
		return nil, apiErr
	}
	key := paramKey(params)
	res := p.cachedPlan(key)
	if res == nil {
		tree, err := quel.BindParams(&p.q, params)
		if err != nil {
			return nil, errf(CodeBind, "%v", err)
		}
		res, err = optimizer.Optimize(tree, sess.db, s.optOptions())
		if err != nil {
			return nil, errf(CodePlan, "%v", err)
		}
		p.storePlan(key, res)
	}
	run := *res
	run.Tree = algebra.CloneExpr(res.Tree)
	return s.execute(r, sess, ten, sess.db, &p.q, &run)
}

func (s *Server) handleCloseStmt(w http.ResponseWriter, r *http.Request) {
	var req CloseStmtRequest
	if apiErr := decodeBody(r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	sess, apiErr := s.sessions.get(req.Session)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	sess.closeStmt(req.Stmt)
	writeJSON(w, map[string]string{"status": "closed"})
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req AppendRequest
	if apiErr := decodeBody(r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	_, ten, _, apiErr := s.resolve(req.Session, req.Tenant)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	var key string
	if req.IdemKey != "" {
		key = ten.cfg.Name + "\x00" + req.Relation + "\x00" + req.IdemKey
		if e, ok := s.dedup.lookup(key, time.Now()); ok {
			// Replay the remembered outcome — rows are never applied twice
			// under one key, and a retried failure reports the original
			// error, not a second partial application.
			if e.err != nil {
				writeError(w, e.err)
				return
			}
			resp := e.resp
			resp.Deduped = true
			writeJSON(w, resp)
			return
		}
	}
	s.mu.Lock()
	resp, apiErr := s.applyAppend(&req)
	s.mu.Unlock()
	if key != "" {
		s.dedup.store(key, dedupEntry{at: time.Now(), resp: resp, err: apiErr})
		if err := fault.Check("server/dup-append"); err != nil {
			// The outcome is recorded but the response never leaves: the
			// client sees an ambiguous failure and must retry into the
			// dedup window.
			// lint:allow panic — http.ErrAbortHandler severs the connection; net/http recovers it
			panic(http.ErrAbortHandler)
		}
	}
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, resp)
}

// applyAppend ingests the rows under the exclusive catalog lock and
// reports the outcome. Partial application is possible (a late tuple at
// row i leaves rows 0..i-1 applied) — which is exactly why retries must
// travel under an idempotency key.
func (s *Server) applyAppend(req *AppendRequest) (AppendResponse, *Error) {
	sch, err := s.db.SchemaOf(req.Relation)
	if err != nil {
		return AppendResponse{}, errf(CodeUnknownRelation, "%v", err)
	}
	tbl := s.live.Table(req.Relation)
	if tbl == nil {
		if tbl, err = s.live.Live(req.Relation, interval.Time(req.Slack)); err != nil {
			return AppendResponse{}, errf(CodeExec, "promote %s to live ingestion: %v", req.Relation, err)
		}
	}
	appended := 0
	for i, wireRow := range req.Rows {
		row, apiErr := decodeRow(sch, wireRow)
		if apiErr != nil {
			apiErr.Message = fmt.Sprintf("row %d: %s", i, apiErr.Message)
			return AppendResponse{}, apiErr
		}
		if err := s.live.Append(req.Relation, row); err != nil {
			code := CodeExec
			if errors.Is(err, live.ErrLateTuple) {
				code = CodeLateTuple
			}
			return AppendResponse{}, errf(code, "row %d: %v", i, err)
		}
		appended++
	}
	if req.Flush {
		if err := s.live.Flush(); err != nil {
			return AppendResponse{}, errf(CodeExec, "flush: %v", err)
		}
	}
	return AppendResponse{
		Appended:  appended,
		Watermark: int64(tbl.Watermark()),
		Buffered:  tbl.Buffered(),
		Released:  tbl.Released(),
	}, nil
}
