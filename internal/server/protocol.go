package server

import (
	"encoding/json"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/value"
)

// Protocol is the wire protocol version; every endpoint lives under
// "/" + Protocol + "/". A server never answers a version it does not
// speak, so drivers fail fast on mismatch instead of misparsing.
const Protocol = "v1"

// Column describes one output column on the wire.
type Column struct {
	Name string `json:"name"`
	// Kind is the value kind: "string", "time", or "int".
	Kind string `json:"kind"`
	// Temporal marks the columns the schema designates as the lifespan
	// endpoints: "start" (ValidFrom) or "end" (ValidTo); empty otherwise.
	Temporal string `json:"temporal,omitempty"`
}

// wireError is the error payload; every non-2xx response carries one.
// RetryAfterMS, when positive, is the server's backoff advice (also sent
// as a Retry-After header, rounded up to whole seconds).
type wireError struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

type errorEnvelope struct {
	Error wireError `json:"error"`
}

// SessionOpenRequest opens a session. An empty tenant means "default".
type SessionOpenRequest struct {
	Tenant string `json:"tenant,omitempty"`
}

type SessionOpenResponse struct {
	Protocol      string `json:"protocol"`
	Session       string `json:"session"`
	Tenant        string `json:"tenant"`
	IdleTimeoutMS int64  `json:"idle_timeout_ms"`
}

type SessionCloseRequest struct {
	Session string `json:"session"`
}

// QueryRequest runs one retrieve statement (with any range declarations
// it needs). Session is optional: sessionless requests run read-only
// against the shared catalog under the named tenant's quota, and may not
// use "into" (it would mutate shared state).
type QueryRequest struct {
	Session string `json:"session,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Quel    string `json:"quel"`
	// Params bind $1…$N in order: JSON strings bind string values,
	// JSON numbers bind chronon (time) values — the same semantics as
	// literals in quel text.
	Params []any `json:"params,omitempty"`
}

type QueryResponse struct {
	Columns []Column `json:"columns"`
	Rows    [][]any  `json:"rows"`
	// Into names the session relation the result was stored under, when
	// the statement had an "into" clause (the rows still travel back).
	Into string `json:"into,omitempty"`
	// Contradiction: the semantic pass proved the query empty from the
	// integrity constraints alone; nothing was executed.
	Contradiction bool     `json:"contradiction,omitempty"`
	Notes         []string `json:"notes,omitempty"`
	ElapsedNS     int64    `json:"elapsed_ns"`
}

type PrepareRequest struct {
	Session string `json:"session"`
	Quel    string `json:"quel"`
}

type PrepareResponse struct {
	Stmt      string   `json:"stmt"`
	NumParams int      `json:"num_params"`
	Columns   []Column `json:"columns"`
}

type ExecuteRequest struct {
	Session string `json:"session"`
	Stmt    string `json:"stmt"`
	Params  []any  `json:"params,omitempty"`
}

type CloseStmtRequest struct {
	Session string `json:"session"`
	Stmt    string `json:"stmt"`
}

// AppendRequest ingests rows into a live relation. The relation is
// promoted to live ingestion (reorder slack = Slack chronons) on first
// append. Row values follow the relation's schema: strings for string
// columns, numbers for time/int columns.
type AppendRequest struct {
	Session  string  `json:"session,omitempty"`
	Tenant   string  `json:"tenant,omitempty"`
	Relation string  `json:"relation"`
	Rows     [][]any `json:"rows"`
	Slack    int64   `json:"slack,omitempty"`
	// Flush drains the reorder buffer after the appends, releasing
	// every buffered row to storage and the standing queries.
	Flush bool `json:"flush,omitempty"`
	// IdemKey makes the append idempotent: the server remembers the
	// outcome under (tenant, relation, key) for the dedup window's TTL
	// and replays it — without re-applying the rows — when the same key
	// is retried after an ambiguous failure.
	IdemKey string `json:"idem_key,omitempty"`
}

type AppendResponse struct {
	Appended  int   `json:"appended"`
	Watermark int64 `json:"watermark"`
	Buffered  int   `json:"buffered"`
	Released  int64 `json:"released"`
	// Deduped marks a replayed outcome: the idempotency key had already
	// been applied, so the rows were NOT appended a second time.
	Deduped bool `json:"deduped,omitempty"`
}

// SubscribeRequest admits a standing query and streams its deltas as
// server-sent events: one "meta" event, then "deltas" events as rows
// arrive, closed by an "error" or "drain" event (or the client
// canceling). Placeholders are not legal in subscribe statements.
type SubscribeRequest struct {
	Session string `json:"session"`
	Quel    string `json:"quel"`
	PollMS  int64  `json:"poll_ms,omitempty"`
	// Resume re-attaches to an existing subscription instead of
	// registering a new standing query: the server replays every ring
	// event with seq > AfterSeq and then continues the live stream.
	// Quel must be empty on a resume request. A seq the bounded ring
	// has already evicted is a typed resume_horizon error.
	Resume   string `json:"resume,omitempty"`
	AfterSeq int64  `json:"after_seq,omitempty"`
}

// SubscribeMeta is the payload of the leading "meta" SSE event. Resume
// is the token a disconnected client presents to re-attach; ReplayCap is
// the bounded replay ring's capacity — how many delivered delta events
// stay replayable behind the stream head.
type SubscribeMeta struct {
	Name      string   `json:"name"`
	Mode      string   `json:"mode"`
	Explain   string   `json:"explain,omitempty"`
	Columns   []Column `json:"columns"`
	Resume    string   `json:"resume,omitempty"`
	ReplayCap int      `json:"replay_cap,omitempty"`
}

// PingResponse reports the readiness state machine: "serving" while the
// server accepts protocol requests, "draining" once Shutdown began.
// Ping answers during a drain (readiness must stay observable) — every
// other endpoint rejects with a typed draining error.
type PingResponse struct {
	Protocol string `json:"protocol"`
	Status   string `json:"status"`
}

// SubscribeDeltas is the payload of each "deltas" SSE event. Seq numbers
// the events from 1 so a client can detect a gap.
type SubscribeDeltas struct {
	Seq  int64   `json:"seq"`
	Rows [][]any `json:"rows"`
}

// --- value encoding -----------------------------------------------------

func kindName(k value.Kind) string {
	switch k {
	case value.KindString:
		return "string"
	case value.KindTime:
		return "time"
	default:
		return "int"
	}
}

// encodeColumns renders a schema as wire column metadata.
func encodeColumns(s *relation.Schema) []Column {
	cols := make([]Column, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = Column{Name: c.Name, Kind: kindName(c.Kind)}
		switch i {
		case s.TS:
			cols[i].Temporal = "start"
		case s.TE:
			cols[i].Temporal = "end"
		}
	}
	return cols
}

// encodeRows renders rows as JSON-ready values: strings as strings,
// time/int as int64 (encoding/json emits int64 exactly, so Forever
// round-trips; drivers must decode with json.Number for the same
// reason).
func encodeRows(rows []relation.Row) [][]any {
	out := make([][]any, len(rows))
	for i, r := range rows {
		vals := make([]any, len(r))
		for j, v := range r {
			if v.Kind() == value.KindString {
				vals[j] = v.AsString()
			} else {
				vals[j] = v.AsInt()
			}
		}
		out[i] = vals
	}
	return out
}

// decodeParams converts wire parameters (decoded with json.Number) to
// engine values: strings bind string values, numbers bind chronons.
func decodeParams(in []any) ([]value.Value, *Error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make([]value.Value, len(in))
	for i, p := range in {
		switch v := p.(type) {
		case string:
			out[i] = value.String_(v)
		case json.Number:
			n, err := v.Int64()
			if err != nil {
				return nil, errf(CodeBind, "parameter $%d: %q is not a chronon (integer): %v", i+1, v.String(), err)
			}
			out[i] = value.TimeVal(interval.Time(n))
		default:
			return nil, errf(CodeBind, "parameter $%d: JSON %T is not bindable (use a string or an integer)", i+1, p)
		}
	}
	return out, nil
}

// decodeRow converts one wire row to engine values under a schema.
func decodeRow(s *relation.Schema, in []any) (relation.Row, *Error) {
	if len(in) != s.Arity() {
		return nil, errf(CodeBadRequest, "row arity %d does not match schema %s", len(in), s)
	}
	row := make(relation.Row, len(in))
	for i, rv := range in {
		col := s.Cols[i]
		switch v := rv.(type) {
		case string:
			if col.Kind != value.KindString {
				return nil, errf(CodeBadRequest, "column %s wants a %v, got string %q", col.Name, col.Kind, v)
			}
			row[i] = value.String_(v)
		case json.Number:
			n, err := v.Int64()
			if err != nil {
				return nil, errf(CodeBadRequest, "column %s: %q is not an integer: %v", col.Name, v.String(), err)
			}
			switch col.Kind {
			case value.KindTime:
				row[i] = value.TimeVal(interval.Time(n))
			case value.KindInt:
				row[i] = value.Int(n)
			default:
				return nil, errf(CodeBadRequest, "column %s wants a %v, got number %s", col.Name, col.Kind, v.String())
			}
		default:
			return nil, errf(CodeBadRequest, "column %s: JSON %T is not a legal cell", col.Name, rv)
		}
	}
	return row, nil
}
