package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tdb/internal/engine"
	"tdb/internal/interval"
	"tdb/internal/obs"
	"tdb/internal/optimizer"
	"tdb/internal/quel"
	"tdb/internal/relation"
	"tdb/internal/value"
	"tdb/internal/workload"
)

func testDB(t *testing.T, n int) *engine.DB {
	t.Helper()
	db := engine.NewDB()
	db.MustRegister(workload.Faculty(workload.FacultyConfig{N: n, Seed: 7}))
	return db
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = testDB(t, 40)
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// post sends one protocol request and decodes the response (or wire
// error) with number preservation.
func post(t *testing.T, base, endpoint string, in, out any) *wireError {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(base+"/"+Protocol+"/"+endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post %s: %v", endpoint, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s response: %v", endpoint, err)
	}
	if resp.StatusCode != http.StatusOK {
		var env errorEnvelope
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("%s: status %d with undecodable body %q", endpoint, resp.StatusCode, raw)
		}
		return &env.Error
	}
	if out != nil {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.UseNumber()
		if err := dec.Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", endpoint, err)
		}
	}
	return nil
}

func openSession(t *testing.T, base, tenant string) string {
	t.Helper()
	var resp SessionOpenResponse
	if we := post(t, base, "session", SessionOpenRequest{Tenant: tenant}, &resp); we != nil {
		t.Fatalf("open session: %s: %s", we.Code, we.Message)
	}
	if resp.Protocol != Protocol {
		t.Fatalf("protocol %q, want %q", resp.Protocol, Protocol)
	}
	return resp.Session
}

const facultyQuery = `
range of f is Faculty
retrieve (f.Name, f.Rank) where f.Rank = "Full"
`

// embeddedRows runs a statement through the embedded engine — the
// reference the wire path must reproduce byte-for-byte.
func embeddedRows(t *testing.T, db *engine.DB, text string, params []value.Value) [][]any {
	t.Helper()
	prog, err := quel.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	qs, err := quel.Translate(prog, db)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	tree, err := quel.BindParams(&qs[0], params)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	res, err := optimizer.Optimize(tree, db, optimizer.Options{ICs: db.ChronOrders()})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	out, _, err := engine.Run(db, res.Tree, engine.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return encodeRows(out.Rows)
}

// normalize re-encodes wire rows through JSON so embedded-side int64s
// compare equal to driver-side json.Numbers.
func normalize(t *testing.T, rows [][]any) string {
	t.Helper()
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatalf("marshal rows: %v", err)
	}
	return string(b)
}

func TestQueryMatchesEmbedded(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	sid := openSession(t, ts.URL, "")

	var resp QueryResponse
	if we := post(t, ts.URL, "query", QueryRequest{Session: sid, Quel: facultyQuery}, &resp); we != nil {
		t.Fatalf("query: %s: %s", we.Code, we.Message)
	}
	want := embeddedRows(t, s.DB(), facultyQuery, nil)
	if normalize(t, resp.Rows) != normalize(t, want) {
		t.Errorf("wire rows diverge from embedded run:\n wire %s\n want %s",
			normalize(t, resp.Rows), normalize(t, want))
	}
	if len(resp.Columns) != 2 || resp.Columns[0].Name != "Name" || resp.Columns[0].Kind != "string" {
		t.Errorf("columns = %+v", resp.Columns)
	}
}

func TestSessionlessQueryAndIntoRejection(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp QueryResponse
	if we := post(t, ts.URL, "query", QueryRequest{Quel: facultyQuery}, &resp); we != nil {
		t.Fatalf("sessionless query: %s: %s", we.Code, we.Message)
	}
	if len(resp.Rows) == 0 {
		t.Error("sessionless query returned no rows")
	}
	we := post(t, ts.URL, "query", QueryRequest{Quel: `
range of f is Faculty
retrieve into Snap (f.Name) where f.Rank = "Full"
`}, nil)
	if we == nil || we.Code != CodeBadRequest {
		t.Errorf("sessionless into: %+v, want %s", we, CodeBadRequest)
	}
}

func TestIntoIsSessionPrivate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	s1 := openSession(t, ts.URL, "")
	s2 := openSession(t, ts.URL, "")

	intoStmt := `
range of f is Faculty
retrieve into Snap (f.Name, f.ValidFrom, f.ValidTo) where f.Rank = "Full"
`
	var resp QueryResponse
	if we := post(t, ts.URL, "query", QueryRequest{Session: s1, Quel: intoStmt}, &resp); we != nil {
		t.Fatalf("into: %s: %s", we.Code, we.Message)
	}
	if resp.Into != "Snap" {
		t.Errorf("into = %q", resp.Into)
	}
	readBack := "range of s is Snap\nretrieve (s.Name)"
	if we := post(t, ts.URL, "query", QueryRequest{Session: s1, Quel: readBack}, &resp); we != nil {
		t.Fatalf("read back in owning session: %s: %s", we.Code, we.Message)
	}
	if we := post(t, ts.URL, "query", QueryRequest{Session: s2, Quel: readBack}, nil); we == nil || we.Code != CodeTranslate {
		t.Errorf("other session sees Snap: %+v", we)
	}
}

func TestPrepareExecuteRebind(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	sid := openSession(t, ts.URL, "")

	src := "range of f is Faculty\nretrieve (f.Name, f.Rank) where f.Rank = $1"
	var prep PrepareResponse
	if we := post(t, ts.URL, "prepare", PrepareRequest{Session: sid, Quel: src}, &prep); we != nil {
		t.Fatalf("prepare: %s: %s", we.Code, we.Message)
	}
	if prep.NumParams != 1 || len(prep.Columns) != 2 {
		t.Fatalf("prepare = %+v", prep)
	}
	for _, rank := range []string{"Full", "Assistant", "Full"} {
		var resp QueryResponse
		if we := post(t, ts.URL, "execute", ExecuteRequest{
			Session: sid, Stmt: prep.Stmt, Params: []any{rank},
		}, &resp); we != nil {
			t.Fatalf("execute %s: %s: %s", rank, we.Code, we.Message)
		}
		want := embeddedRows(t, s.DB(), src, []value.Value{value.String_(rank)})
		if normalize(t, resp.Rows) != normalize(t, want) {
			t.Errorf("rank %s: wire/embedded divergence", rank)
		}
		for _, row := range resp.Rows {
			if row[1] != rank {
				t.Fatalf("rank %s: got row %v — stale binding from an earlier execute", rank, row)
			}
		}
	}
	// The repeat binding hit the plan cache: still exactly two plans.
	we := post(t, ts.URL, "stmt/close", CloseStmtRequest{Session: sid, Stmt: prep.Stmt}, nil)
	if we != nil {
		t.Fatalf("close stmt: %s", we.Code)
	}
	if we := post(t, ts.URL, "execute", ExecuteRequest{Session: sid, Stmt: prep.Stmt}, nil); we == nil || we.Code != CodeUnknownStatement {
		t.Errorf("execute after close: %+v", we)
	}
}

func TestQueryParamsOverWire(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	sid := openSession(t, ts.URL, "")
	src := "range of f is Faculty\nretrieve (f.Name) where f.Rank = $1 and f.ValidFrom >= $2"
	var resp QueryResponse
	if we := post(t, ts.URL, "query", QueryRequest{
		Session: sid, Quel: src, Params: []any{"Full", 10},
	}, &resp); we != nil {
		t.Fatalf("query: %s: %s", we.Code, we.Message)
	}
	want := embeddedRows(t, s.DB(), src, []value.Value{value.String_("Full"), value.TimeVal(10)})
	if normalize(t, resp.Rows) != normalize(t, want) {
		t.Error("parameterized wire query diverges from embedded run")
	}
	// Kind mismatch is a typed bind error.
	if we := post(t, ts.URL, "query", QueryRequest{
		Session: sid, Quel: src, Params: []any{7, 10},
	}, nil); we == nil || we.Code != CodeBind {
		t.Errorf("kind mismatch: %+v", we)
	}
}

func TestTenantQuotaRejectsAndMeters(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{
		Registry: reg,
		Tenants: []TenantConfig{
			{Name: "alpha", MaxConcurrent: 1, MaxQueue: -1, QueueTimeout: 50 * time.Millisecond},
			{Name: "beta"},
		},
	})
	// Hold alpha's only slot.
	ten, apiErr := s.adm.tenant("alpha")
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	if apiErr := ten.acquire(context.Background(), s.draining); apiErr != nil {
		t.Fatal(apiErr)
	}
	we := post(t, ts.URL, "query", QueryRequest{Tenant: "alpha", Quel: facultyQuery}, nil)
	if we == nil || we.Code != CodeQuotaConcurrency {
		t.Fatalf("over-quota query: %+v, want %s", we, CodeQuotaConcurrency)
	}
	// beta is unaffected.
	var resp QueryResponse
	if we := post(t, ts.URL, "query", QueryRequest{Tenant: "beta", Quel: facultyQuery}, &resp); we != nil {
		t.Fatalf("beta query: %s", we.Code)
	}
	ten.release()
	if we := post(t, ts.URL, "query", QueryRequest{Tenant: "alpha", Quel: facultyQuery}, &resp); we != nil {
		t.Fatalf("alpha query after release: %s", we.Code)
	}
	// Per-tenant series: alpha one rejection + one success, beta no rejection.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	metrics := buf.String()
	for _, want := range []string{
		"tdb_server_tenant_alpha_rejected_total 1",
		"tdb_server_tenant_alpha_queries_total 1",
		"tdb_server_tenant_beta_queries_total 1",
		"tdb_server_sessions_active",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if we := post(t, ts.URL, "query", QueryRequest{Tenant: "nosuch", Quel: facultyQuery}, nil); we == nil || we.Code != CodeUnknownTenant {
		t.Errorf("unknown tenant: %+v", we)
	}
}

func TestQueueTimeoutTyped(t *testing.T) {
	s, _ := newTestServer(t, Config{
		Tenants: []TenantConfig{{Name: "default", MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond}},
	})
	ten, _ := s.adm.tenant("")
	if apiErr := ten.acquire(context.Background(), s.draining); apiErr != nil {
		t.Fatal(apiErr)
	}
	defer ten.release()
	apiErr := ten.acquire(context.Background(), s.draining)
	if apiErr == nil || apiErr.Code != CodeQueueTimeout {
		t.Fatalf("queued acquire: %+v, want %s", apiErr, CodeQueueTimeout)
	}
}

func TestServerSideCancellation(t *testing.T) {
	db := testDB(t, 900)
	s, ts := newTestServer(t, Config{DB: db})
	// Project both sides under distinct names: single-side output would be
	// recognized as a fast stream semijoin, but the two-sided join runs the
	// conventional loops, which poll the interrupt hook as they go.
	slow := `
range of a is Faculty
range of b is Faculty
retrieve (NameA=a.Name, NameB=b.Name) where a.Name != b.Name and a.Rank = "Full" and b.Rank = "Full"
`
	body, _ := json.Marshal(QueryRequest{Quel: slow})
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/"+Protocol+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	_, err = http.DefaultClient.Do(req)
	if err == nil {
		t.Fatal("slow query finished under a 25ms deadline; not exercising cancellation")
	}
	// The server observed the cancellation: the default tenant's error
	// counter moved and no query completed for it.
	ten, _ := s.adm.tenant("")
	deadline := time.Now().Add(2 * time.Second)
	for ten.cErrors.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ten.cErrors.Value() == 0 {
		t.Error("server never recorded the canceled query")
	}
	if ten.cQueries.Value() != 0 {
		t.Error("canceled query counted as completed")
	}
}

func TestIdleSessionExpiry(t *testing.T) {
	s, ts := newTestServer(t, Config{IdleTimeout: 30 * time.Millisecond})
	sid := openSession(t, ts.URL, "")
	deadline := time.Now().Add(2 * time.Second)
	for s.sessions.count() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := s.sessions.count(); n != 0 {
		t.Fatalf("%d sessions still open after idle timeout", n)
	}
	if we := post(t, ts.URL, "query", QueryRequest{Session: sid, Quel: facultyQuery}, nil); we == nil || we.Code != CodeUnknownSession {
		t.Errorf("query on expired session: %+v", we)
	}
}

func TestDrainRejectsAndAbortsWaiters(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Tenants: []TenantConfig{{Name: "default", MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 10 * time.Second}},
	})
	ten, _ := s.adm.tenant("")
	if apiErr := ten.acquire(context.Background(), s.draining); apiErr != nil {
		t.Fatal(apiErr)
	}
	var (
		wg     sync.WaitGroup
		waited *Error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		waited = ten.acquire(context.Background(), s.draining)
	}()
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if waited == nil || waited.Code != CodeDraining {
		t.Errorf("queued waiter during drain: %+v, want %s", waited, CodeDraining)
	}
	// Ping bypasses the drain gate so readiness stays observable: 200
	// with status "draining", while every other endpoint rejects.
	resp, err := http.Post(ts.URL+"/"+Protocol+"/ping", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("ping after drain: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-drain ping status %d, want 200", resp.StatusCode)
	}
	var ping PingResponse
	if err := json.NewDecoder(resp.Body).Decode(&ping); err != nil {
		t.Fatalf("decode ping: %v", err)
	}
	if ping.Status != "draining" {
		t.Errorf("post-drain ping status %q, want \"draining\"", ping.Status)
	}
	var qe *wireError
	if we := post(t, ts.URL, "query", QueryRequest{Tenant: "", Quel: "retrieve (f.Name)"}, nil); we != nil {
		qe = we
	}
	if qe == nil || qe.Code != CodeDraining {
		t.Errorf("post-drain query error %+v, want %s", qe, CodeDraining)
	}
	ten.release()
}

func TestAppendFeedsQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sid := openSession(t, ts.URL, "")
	var before QueryResponse
	countStmt := "range of f is Faculty\nretrieve (f.Name) where f.Name = \"zz-wire\""
	if we := post(t, ts.URL, "query", QueryRequest{Session: sid, Quel: countStmt}, &before); we != nil {
		t.Fatal(we.Message)
	}
	if len(before.Rows) != 0 {
		t.Fatalf("sentinel row already present")
	}
	var app AppendResponse
	if we := post(t, ts.URL, "append", AppendRequest{
		Relation: "Faculty",
		Rows:     [][]any{{"zz-wire", "Full", 5000, 6000}},
		Flush:    true,
	}, &app); we != nil {
		t.Fatalf("append: %s: %s", we.Code, we.Message)
	}
	if app.Appended != 1 || app.Released == 0 {
		t.Fatalf("append = %+v", app)
	}
	var after QueryResponse
	if we := post(t, ts.URL, "query", QueryRequest{Session: sid, Quel: countStmt}, &after); we != nil {
		t.Fatal(we.Message)
	}
	if len(after.Rows) != 1 {
		t.Errorf("appended row not visible to queries: %d rows", len(after.Rows))
	}
	// A row behind the watermark is a typed late-tuple rejection.
	if we := post(t, ts.URL, "append", AppendRequest{
		Relation: "Faculty",
		Rows:     [][]any{{"zz-late", "Full", 1, 2}},
	}, nil); we == nil || we.Code != CodeLateTuple {
		t.Errorf("late append: %+v", we)
	}
	if we := post(t, ts.URL, "append", AppendRequest{Relation: "NoSuch", Rows: [][]any{{"x"}}}, nil); we == nil || we.Code != CodeUnknownRelation {
		t.Errorf("append to unknown relation: %+v", we)
	}
}

func TestForeverSurvivesTheWire(t *testing.T) {
	db := engine.NewDB()
	rel := workload.Faculty(workload.FacultyConfig{N: 10, Seed: 7})
	rel.MustInsert(relation.Row{
		value.String_("zz-current"), value.String_("Full"),
		value.TimeVal(100), value.TimeVal(interval.Forever),
	})
	db.MustRegister(rel)
	_, ts := newTestServer(t, Config{DB: db})
	var resp QueryResponse
	stmt := "range of f is Faculty\nretrieve (f.Name, f.ValidTo) where f.ValidTo >= " + fmt.Sprint(int64(1)<<60)
	if we := post(t, ts.URL, "query", QueryRequest{Quel: stmt}, &resp); we != nil {
		t.Fatalf("query: %s: %s", we.Code, we.Message)
	}
	if len(resp.Rows) == 0 {
		t.Fatal("the Forever row did not come back")
	}
	for _, row := range resp.Rows {
		n, ok := row[1].(json.Number)
		if !ok {
			t.Fatalf("ValidTo decoded as %T", row[1])
		}
		if v, err := n.Int64(); err != nil || v < int64(1)<<60 {
			t.Fatalf("ValidTo %v lost precision on the wire", n)
		}
	}
}
