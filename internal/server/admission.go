package server

import (
	"context"
	"strings"
	"sync"
	"time"

	"tdb/internal/obs"
)

// Admission defaults; a TenantConfig field left zero takes these.
const (
	DefaultMaxConcurrent = 16
	DefaultMaxQueue      = 64
	DefaultQueueTimeout  = 5 * time.Second
)

// TenantConfig is one tenant's admission quota. Queries admit through a
// counting semaphore of MaxConcurrent slots; at capacity up to MaxQueue
// requests wait (bounded by QueueTimeout and the request context), and
// beyond that the tenant is rejected immediately with a typed error —
// queue-or-reject, never unbounded buildup.
type TenantConfig struct {
	Name          string
	MaxConcurrent int
	MaxQueue      int
	QueueTimeout  time.Duration
	// Govern arms the workspace governor for this tenant's work: batch
	// queries run under GovernWorkspace (catalog-derived ceilings with
	// sort-merge fallback) and standing subscriptions are admitted with
	// the workspace circuit breaker armed.
	Govern bool
}

// tenant is the runtime admission state plus per-tenant metrics.
type tenant struct {
	cfg TenantConfig
	sem chan struct{}

	mu      sync.Mutex
	waiting int

	cQueries  *obs.Counter
	cErrors   *obs.Counter
	cRejected *obs.Counter
	cQueued   *obs.Counter
	gActive   *obs.Gauge
	gSubs     *obs.Gauge
}

type admission struct {
	tenants map[string]*tenant
}

// sanitizeMetric maps a tenant name into a Prometheus-legal metric-name
// fragment (the registry has no label support, so tenants get name-mangled
// series: tdb_server_tenant_<name>_queries_total and friends).
func sanitizeMetric(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func newAdmission(cfgs []TenantConfig, reg *obs.Registry) *admission {
	if len(cfgs) == 0 {
		cfgs = []TenantConfig{{Name: "default"}}
	}
	a := &admission{tenants: map[string]*tenant{}}
	for _, cfg := range cfgs {
		if cfg.MaxConcurrent <= 0 {
			cfg.MaxConcurrent = DefaultMaxConcurrent
		}
		if cfg.MaxQueue < 0 {
			cfg.MaxQueue = 0
		} else if cfg.MaxQueue == 0 {
			cfg.MaxQueue = DefaultMaxQueue
		}
		if cfg.QueueTimeout <= 0 {
			cfg.QueueTimeout = DefaultQueueTimeout
		}
		t := &tenant{cfg: cfg, sem: make(chan struct{}, cfg.MaxConcurrent)}
		m := sanitizeMetric(cfg.Name)
		t.cQueries = reg.Counter("tdb_server_tenant_"+m+"_queries_total", "queries admitted for tenant "+cfg.Name)
		t.cErrors = reg.Counter("tdb_server_tenant_"+m+"_errors_total", "queries failed for tenant "+cfg.Name)
		t.cRejected = reg.Counter("tdb_server_tenant_"+m+"_rejected_total", "requests rejected by quota for tenant "+cfg.Name)
		t.cQueued = reg.Counter("tdb_server_tenant_"+m+"_queued_total", "requests that waited in the admission queue for tenant "+cfg.Name)
		t.gActive = reg.Gauge("tdb_server_tenant_"+m+"_active", "queries running for tenant "+cfg.Name)
		t.gSubs = reg.Gauge("tdb_server_tenant_"+m+"_subscriptions", "standing subscriptions open for tenant "+cfg.Name)
		a.tenants[cfg.Name] = t
	}
	return a
}

// tenant resolves a wire tenant name ("" means "default").
func (a *admission) tenant(name string) (*tenant, *Error) {
	if name == "" {
		name = "default"
	}
	t, ok := a.tenants[name]
	if !ok {
		return nil, errf(CodeUnknownTenant, "tenant %q is not configured on this server", name)
	}
	return t, nil
}

// acquire admits one unit of work, waiting in the bounded queue when the
// tenant is at capacity. draining aborts waiters on shutdown.
func (t *tenant) acquire(ctx context.Context, draining <-chan struct{}) *Error {
	select {
	case t.sem <- struct{}{}:
		t.gActive.Add(1)
		return nil
	default:
	}
	t.mu.Lock()
	if t.waiting >= t.cfg.MaxQueue {
		t.mu.Unlock()
		t.cRejected.Inc()
		return errf(CodeQuotaConcurrency, "tenant %q at %d concurrent queries with %d queued; rejecting",
			t.cfg.Name, t.cfg.MaxConcurrent, t.cfg.MaxQueue)
	}
	t.waiting++
	t.mu.Unlock()
	t.cQueued.Inc()
	defer func() {
		t.mu.Lock()
		t.waiting--
		t.mu.Unlock()
	}()

	timer := time.NewTimer(t.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case t.sem <- struct{}{}:
		t.gActive.Add(1)
		return nil
	case <-ctx.Done():
		return errf(CodeCanceled, "tenant %q: canceled while queued for admission: %v", t.cfg.Name, ctx.Err())
	case <-timer.C:
		t.cRejected.Inc()
		return errf(CodeQueueTimeout, "tenant %q: queued past %s waiting for an admission slot",
			t.cfg.Name, t.cfg.QueueTimeout)
	case <-draining:
		return errf(CodeDraining, "server is draining")
	}
}

func (t *tenant) release() {
	<-t.sem
	t.gActive.Add(-1)
}
