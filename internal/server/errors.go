// Package server exposes the embedded temporal query engine as a
// multi-tenant network service: a versioned JSON-over-HTTP wire protocol
// with sessions, prepared statements, standing-query subscriptions
// (SSE delta streams), live appends, and per-tenant admission quotas.
// The driver package at the module root speaks this protocol through
// database/sql.
package server

import (
	"fmt"
	"net/http"
)

// Wire error codes. The driver maps these back to typed errors, so the
// set is part of the protocol: additions are fine, renames are not.
const (
	CodeBadRequest       = "bad_request"        // malformed request body or missing field
	CodeParse            = "parse_error"        // quel text did not parse
	CodeTranslate        = "translate_error"    // semantic analysis failed
	CodeBind             = "bind_error"         // parameter arity or kind mismatch
	CodePlan             = "plan_error"         // optimization failed
	CodeExec             = "exec_error"         // execution failed
	CodeCanceled         = "canceled"           // client context canceled a running query
	CodeUnknownSession   = "unknown_session"    // session id not open (or expired)
	CodeUnknownStatement = "unknown_statement"  // prepared-statement id not found
	CodeUnknownTenant    = "unknown_tenant"     // tenant not configured
	CodeUnknownRelation  = "unknown_relation"   // append target not in the catalog
	CodeQuotaConcurrency = "quota_concurrency"  // tenant at MaxConcurrent and queue full
	CodeQueueTimeout     = "queue_timeout"      // queued past the tenant's QueueTimeout
	CodeDeclined         = "subscribe_declined" // standing query declined admission
	CodeBreakerOpen      = "breaker_open"       // standing query's workspace breaker tripped open
	CodeDraining         = "draining"           // server is shutting down
	CodeLateTuple        = "late_tuple"         // append behind the relation's watermark
	CodeSessionExpired   = "session_expired"    // session idle-expired while the request was in flight
	CodeResumeHorizon    = "resume_horizon"     // replay ring evicted the requested resume seq
	CodeUnknownResume    = "unknown_resume"     // resume token not registered (restart or deregistration)
)

// Error is the typed wire error: a protocol code, a human-readable
// message, and the HTTP status it travels under. RetryAfterMS, when
// positive, tells a well-behaved client how long to back off before
// retrying (quota and drain rejections set it).
type Error struct {
	Code         string
	Message      string
	HTTP         int
	RetryAfterMS int64
}

func (e *Error) Error() string { return e.Code + ": " + e.Message }

// httpStatus maps a code to its transport status. 499 follows the
// client-closed-request convention for canceled queries.
func httpStatus(code string) int {
	switch code {
	case CodeBadRequest, CodeParse, CodeTranslate, CodeBind, CodePlan:
		return http.StatusBadRequest
	case CodeUnknownSession, CodeUnknownStatement, CodeUnknownTenant, CodeUnknownRelation, CodeUnknownResume:
		return http.StatusNotFound
	case CodeSessionExpired, CodeResumeHorizon:
		return http.StatusGone
	case CodeQuotaConcurrency, CodeQueueTimeout:
		return http.StatusTooManyRequests
	case CodeDeclined, CodeBreakerOpen, CodeLateTuple:
		return http.StatusConflict
	case CodeCanceled:
		return 499
	case CodeDraining:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func errf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...), HTTP: httpStatus(code), RetryAfterMS: defaultRetryAfterMS(code)}
}

// defaultRetryAfterMS is the server's standing backoff advice per code:
// quota rejections clear as soon as a slot frees (hundreds of ms), a
// drain means the client should aim at the replacement process (a
// second). Zero means "do not retry".
func defaultRetryAfterMS(code string) int64 {
	switch code {
	case CodeQuotaConcurrency, CodeQueueTimeout:
		return 250
	case CodeDraining:
		return 1000
	}
	return 0
}
