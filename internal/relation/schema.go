// Package relation implements temporal relations: schemas of typed, named
// columns with designated ValidFrom/ValidTo attributes, rows of values, the
// canonical 4-tuple ⟨S, V, ValidFrom, ValidTo⟩ of the paper's data model,
// sort orders over temporal attributes, and the intra-tuple integrity
// constraint ValidFrom < ValidTo.
package relation

import (
	"fmt"
	"strings"

	"tdb/internal/value"
)

// Column is one attribute of a schema.
type Column struct {
	Name string
	Kind value.Kind
}

// Schema describes the attributes of a temporal relation. TS and TE are the
// indexes of the ValidFrom and ValidTo columns; both are -1 for a snapshot
// (non-temporal) relation such as an intermediate projection that dropped
// its timestamps.
type Schema struct {
	Cols []Column
	TS   int // index of ValidFrom, or -1
	TE   int // index of ValidTo, or -1
}

// NewSchema builds a schema and validates it: column names must be unique
// and non-empty, and the designated temporal columns must exist, be
// distinct, and have kind time.
func NewSchema(cols []Column, ts, te int) (*Schema, error) {
	seen := make(map[string]bool, len(cols))
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relation: column %d has empty name", i)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	if (ts == -1) != (te == -1) {
		return nil, fmt.Errorf("relation: ValidFrom and ValidTo must both be present or both absent")
	}
	if ts != -1 {
		if ts == te {
			return nil, fmt.Errorf("relation: ValidFrom and ValidTo designate the same column")
		}
		for _, idx := range []int{ts, te} {
			if idx < 0 || idx >= len(cols) {
				return nil, fmt.Errorf("relation: temporal column index %d out of range", idx)
			}
			if cols[idx].Kind != value.KindTime {
				return nil, fmt.Errorf("relation: temporal column %q has kind %v, want time", cols[idx].Name, cols[idx].Kind)
			}
		}
	}
	return &Schema{Cols: cols, TS: ts, TE: te}, nil
}

// MustSchema is NewSchema that panics on error, for statically known schemas.
func MustSchema(cols []Column, ts, te int) *Schema {
	s, err := NewSchema(cols, ts, te)
	if err != nil {
		panic(err) // lint:allow panic — Must* constructor for statically known schemas
	}
	return s
}

// Temporal reports whether the schema designates ValidFrom/ValidTo columns.
func (s *Schema) Temporal() bool { return s.TS != -1 }

// Arity is the number of columns.
func (s *Schema) Arity() int { return len(s.Cols) }

// ColumnIndex returns the index of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// String renders the schema as R(name:kind, ...), marking the temporal
// columns with a trailing *.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", c.Name, c.Kind)
		if i == s.TS || i == s.TE {
			b.WriteByte('*')
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two schemas have identical columns and temporal
// designations.
func (s *Schema) Equal(o *Schema) bool {
	if s.TS != o.TS || s.TE != o.TE || len(s.Cols) != len(o.Cols) {
		return false
	}
	for i := range s.Cols {
		if s.Cols[i] != o.Cols[i] {
			return false
		}
	}
	return true
}

// Concat returns the schema of the concatenation of two rows, prefixing
// column names with the given qualifiers to keep them unique (the usual
// range-variable qualification, e.g. "f1.Name"). The result is a snapshot
// schema: a joined row carries two lifespans, and which one (if either)
// becomes the output lifespan is the projection's decision, as in the
// Superstar query's retrieve clause.
func Concat(left, right *Schema, lq, rq string) *Schema {
	cols := make([]Column, 0, len(left.Cols)+len(right.Cols))
	for _, c := range left.Cols {
		cols = append(cols, Column{Name: qualify(lq, c.Name), Kind: c.Kind})
	}
	for _, c := range right.Cols {
		cols = append(cols, Column{Name: qualify(rq, c.Name), Kind: c.Kind})
	}
	return &Schema{Cols: cols, TS: -1, TE: -1}
}

func qualify(q, name string) string {
	if q == "" {
		return name
	}
	return q + "." + name
}

// Rename returns a copy of the schema with every column prefixed by the
// qualifier, preserving the temporal designations.
func (s *Schema) Rename(q string) *Schema {
	cols := make([]Column, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = Column{Name: qualify(q, c.Name), Kind: c.Kind}
	}
	return &Schema{Cols: cols, TS: s.TS, TE: s.TE}
}
