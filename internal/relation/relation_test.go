package relation

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tdb/internal/interval"
	"tdb/internal/value"
)

func facultySchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Column{
		{Name: "Name", Kind: value.KindString},
		{Name: "Rank", Kind: value.KindString},
		{Name: "ValidFrom", Kind: value.KindTime},
		{Name: "ValidTo", Kind: value.KindTime},
	}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func facultyRow(name, rank string, from, to interval.Time) Row {
	return Row{value.String_(name), value.String_(rank), value.TimeVal(from), value.TimeVal(to)}
}

func TestSchemaValidation(t *testing.T) {
	cols := []Column{
		{Name: "A", Kind: value.KindString},
		{Name: "F", Kind: value.KindTime},
		{Name: "T", Kind: value.KindTime},
	}
	if _, err := NewSchema(cols, 1, 2); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
	if _, err := NewSchema(cols, -1, -1); err != nil {
		t.Errorf("snapshot schema rejected: %v", err)
	}
	bad := []struct {
		name   string
		cols   []Column
		ts, te int
	}{
		{"ts without te", cols, 1, -1},
		{"same column", cols, 1, 1},
		{"out of range", cols, 1, 5},
		{"non-time ts", cols, 0, 2},
		{"dup names", []Column{{Name: "A", Kind: value.KindInt}, {Name: "A", Kind: value.KindInt}}, -1, -1},
		{"empty name", []Column{{Name: "", Kind: value.KindInt}}, -1, -1},
	}
	for _, c := range bad {
		if _, err := NewSchema(c.cols, c.ts, c.te); err == nil {
			t.Errorf("%s: schema accepted, want error", c.name)
		}
	}
}

func TestSchemaStringAndLookup(t *testing.T) {
	s := facultySchema(t)
	if !s.Temporal() || s.Arity() != 4 {
		t.Fatal("schema misreports shape")
	}
	if i := s.ColumnIndex("Rank"); i != 1 {
		t.Errorf("ColumnIndex(Rank) = %d", i)
	}
	if i := s.ColumnIndex("nope"); i != -1 {
		t.Errorf("ColumnIndex(nope) = %d", i)
	}
	str := s.String()
	if !strings.Contains(str, "ValidFrom:time*") {
		t.Errorf("String does not mark temporal columns: %s", str)
	}
}

func TestSchemaConcatAndRename(t *testing.T) {
	s := facultySchema(t)
	c := Concat(s, s, "f1", "f2")
	if c.Temporal() {
		t.Error("concat schema must be snapshot")
	}
	if c.Arity() != 8 {
		t.Errorf("concat arity = %d", c.Arity())
	}
	if c.ColumnIndex("f1.Name") != 0 || c.ColumnIndex("f2.ValidTo") != 7 {
		t.Error("concat column names not qualified as expected")
	}
	r := s.Rename("f3")
	if !r.Temporal() || r.ColumnIndex("f3.Rank") != 1 {
		t.Error("rename lost structure")
	}
	if !s.Equal(s) || s.Equal(c) {
		t.Error("schema equality misbehaves")
	}
}

func TestInsertValidation(t *testing.T) {
	r := New("Faculty", facultySchema(t))
	if err := r.Insert(facultyRow("Smith", "Assistant", 1, 5)); err != nil {
		t.Fatalf("valid insert failed: %v", err)
	}
	if err := r.Insert(facultyRow("Smith", "Assistant", 5, 5)); err == nil {
		t.Error("empty lifespan accepted")
	}
	if err := r.Insert(facultyRow("Smith", "Assistant", 9, 5)); err == nil {
		t.Error("reversed lifespan accepted")
	}
	if err := r.Insert(Row{value.String_("x")}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := r.Insert(Row{value.Int(1), value.String_("r"), value.TimeVal(1), value.TimeVal(2)}); err == nil {
		t.Error("wrong kind accepted")
	}
	if r.Cardinality() != 1 {
		t.Errorf("cardinality = %d, want 1", r.Cardinality())
	}
	if err := r.Check(); err != nil {
		t.Errorf("Check on valid relation: %v", err)
	}
}

func TestTupleRoundTrip(t *testing.T) {
	ts := []Tuple{
		{S: "Smith", V: value.String_("Assistant"), Span: interval.New(1, 5)},
		{S: "Jones", V: value.String_("Full"), Span: interval.New(3, 9)},
	}
	r := FromTuples("F", ts)
	back := r.Tuples()
	if len(back) != 2 {
		t.Fatalf("round trip lost tuples: %d", len(back))
	}
	for i := range ts {
		if back[i].S != ts[i].S || !back[i].V.Equal(ts[i].V) || back[i].Span != ts[i].Span {
			t.Errorf("tuple %d: got %v, want %v", i, back[i], ts[i])
		}
	}
	if err := ts[0].Check(); err != nil {
		t.Errorf("valid tuple check: %v", err)
	}
	badTuple := Tuple{S: "x", V: value.Int(1), Span: interval.New(5, 5)}
	if err := badTuple.Check(); err == nil {
		t.Error("invalid tuple accepted")
	}
}

func TestOrderSorting(t *testing.T) {
	spans := []interval.Interval{
		interval.New(5, 9), interval.New(1, 20), interval.New(5, 7), interval.New(3, 4),
	}
	id := func(iv interval.Interval) interval.Interval { return iv }

	byTS := Order{TSAsc, TEAsc}
	SortSpans(spans, id, byTS)
	want := []interval.Interval{{Start: 1, End: 20}, {Start: 3, End: 4}, {Start: 5, End: 7}, {Start: 5, End: 9}}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("TS↑,TE↑ sort: got %v", spans)
		}
	}
	if !SortedSpans(spans, id, byTS) {
		t.Error("SortedSpans false on sorted data")
	}
	if err := CheckSortedSpans(spans, id, byTS); err != nil {
		t.Errorf("CheckSortedSpans: %v", err)
	}

	byTEDesc := Order{TEDesc}
	SortSpans(spans, id, byTEDesc)
	if spans[0].End != 20 || spans[3].End != 4 {
		t.Fatalf("TE↓ sort: got %v", spans)
	}
	if SortedSpans(spans, id, byTS) {
		t.Error("SortedSpans true on unsorted data")
	}
	if err := CheckSortedSpans(spans, id, byTS); err == nil {
		t.Error("CheckSortedSpans nil on unsorted data")
	}
}

func TestOrderMirror(t *testing.T) {
	o := Order{TSAsc, TEAsc}
	m := o.Mirror()
	if m[0] != TEDesc || m[1] != TSDesc {
		t.Errorf("Mirror(%v) = %v", o, m)
	}
	if mm := m.Mirror(); mm[0] != o[0] || mm[1] != o[1] {
		t.Error("Mirror not an involution")
	}
}

// Property: sorting mirrored spans by the mirrored order equals mirroring
// the spans sorted by the original order (the Table 1 symmetry at the level
// of sequences).
func TestMirrorOrderProperty(t *testing.T) {
	id := func(iv interval.Interval) interval.Interval { return iv }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		spans := make([]interval.Interval, n)
		for i := range spans {
			s := interval.Time(rng.Intn(50))
			spans[i] = interval.New(s, s+interval.Time(1+rng.Intn(20)))
		}
		o := Order{TSAsc, TEAsc}
		mirrored := make([]interval.Interval, n)
		for i, iv := range spans {
			mirrored[i] = iv.Mirror()
		}
		SortSpans(spans, id, o)
		SortSpans(mirrored, id, o.Mirror())
		for i := range spans {
			if spans[i].Mirror() != mirrored[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRelationSortAndSortBy(t *testing.T) {
	r := New("F", facultySchema(t))
	r.MustInsert(facultyRow("C", "Full", 9, 12))
	r.MustInsert(facultyRow("A", "Assistant", 3, 6))
	r.MustInsert(facultyRow("B", "Associate", 3, 5))

	r.Sort(Order{TSAsc, TEAsc})
	if r.Rows[0][0].AsString() != "B" || r.Rows[1][0].AsString() != "A" {
		t.Errorf("temporal sort wrong: %v", r)
	}
	if !r.SortedBy(Order{TSAsc}) {
		t.Error("SortedBy false after Sort")
	}

	r.SortBy(0)
	if r.Rows[0][0].AsString() != "A" || r.Rows[2][0].AsString() != "C" {
		t.Errorf("SortBy(Name) wrong: %v", r)
	}
}

func TestCloneAndDedup(t *testing.T) {
	r := New("F", facultySchema(t))
	row := facultyRow("A", "Assistant", 1, 2)
	r.MustInsert(row)
	r.MustInsert(row.Clone())
	r.MustInsert(facultyRow("B", "Full", 1, 2))

	c := r.Clone()
	c.Rows[0][0] = value.String_("MUTATED")
	if r.Rows[0][0].AsString() != "A" {
		t.Error("Clone shares row storage")
	}

	r.Dedup()
	if r.Cardinality() != 2 {
		t.Errorf("Dedup left %d rows, want 2", r.Cardinality())
	}
}

func TestRowHelpers(t *testing.T) {
	a := facultyRow("A", "Assistant", 1, 2)
	b := facultyRow("A", "Assistant", 1, 2)
	if !a.Equal(b) {
		t.Error("equal rows not Equal")
	}
	if a.Equal(b[:3]) {
		t.Error("different arity rows Equal")
	}
	if a.Key() != b.Key() {
		t.Error("equal rows have different keys")
	}
	c := ConcatRows(a, b)
	if len(c) != 8 || !c[:4].Equal(a) || !c[4:].Equal(b) {
		t.Error("ConcatRows wrong")
	}
	if !strings.Contains(a.String(), "Assistant") {
		t.Errorf("Row.String = %q", a.String())
	}
	s := facultySchema(t)
	if a.Span(s) != interval.New(1, 2) {
		t.Errorf("Span = %v", a.Span(s))
	}
}

func TestSpanPanicsOnSnapshot(t *testing.T) {
	snap := MustSchema([]Column{{Name: "A", Kind: value.KindInt}}, -1, -1)
	defer func() {
		if recover() == nil {
			t.Error("Span on snapshot schema must panic")
		}
	}()
	Row{value.Int(1)}.Span(snap)
}

func TestRelationString(t *testing.T) {
	r := New("F", facultySchema(t))
	for i := 0; i < 30; i++ {
		r.MustInsert(facultyRow("A", "Assistant", interval.Time(i), interval.Time(i+1)))
	}
	s := r.String()
	if !strings.Contains(s, "30 rows") || !strings.Contains(s, "more") {
		t.Errorf("String = %q", s)
	}
}

func TestTemporalKeyStrings(t *testing.T) {
	if TSAsc.String() != "ValidFrom ↑" || TEDesc.String() != "ValidTo ↓" {
		t.Error("key rendering wrong")
	}
	o := Order{TSAsc, TEAsc}
	if o.String() != "ValidFrom ↑, ValidTo ↑" {
		t.Errorf("order rendering = %q", o.String())
	}
	if len(TemporalKeys()) != 4 {
		t.Error("TemporalKeys must list 4 keys")
	}
}
