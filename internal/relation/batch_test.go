package relation

import (
	"testing"

	"tdb/internal/interval"
	"tdb/internal/value"
)

func tupleRows(t *testing.T) []Row {
	t.Helper()
	tuples := []Tuple{
		{S: "Tom", V: value.String_("Assistant"), Span: interval.Interval{Start: 1, End: 10}},
		{S: "Jane", V: value.String_("Professor"), Span: interval.Interval{Start: 5, End: interval.Forever}},
		{S: "Tom", V: value.String_("Lecturer"), Span: interval.Interval{Start: 10, End: 21}},
		{S: "", V: value.String_("Assistant"), Span: interval.Interval{Start: interval.MinTime, End: 3}},
	}
	rows := make([]Row, len(tuples))
	for i, tp := range tuples {
		rows[i] = TupleToRow(tp)
	}
	return rows
}

func TestBatchRoundTripTemporal(t *testing.T) {
	rows := tupleRows(t)
	b := BatchFromRows(TupleSchema, rows, nil)
	if b.Len() != len(rows) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(rows))
	}
	for i, r := range rows {
		if got, want := b.Row(i).Key(), r.Key(); got != want {
			t.Fatalf("row %d round-trip: got %q want %q", i, got, want)
		}
		if sp := b.Span(i); sp != r.Span(TupleSchema) {
			t.Fatalf("row %d span: got %v want %v", i, sp, r.Span(TupleSchema))
		}
	}
	back := b.Rows()
	if len(back) != len(rows) {
		t.Fatalf("Rows() returned %d rows, want %d", len(back), len(rows))
	}
	for i := range back {
		if back[i].Key() != rows[i].Key() {
			t.Fatalf("Rows()[%d] = %q, want %q", i, back[i].Key(), rows[i].Key())
		}
	}
	// Interning must collapse repeated surrogates: Tom, Jane, "" plus the
	// three job titles = 6 distinct strings across both string columns.
	if b.Intern.Len() != 6 {
		t.Fatalf("intern table has %d strings, want 6", b.Intern.Len())
	}
}

func TestBatchRoundTripSnapshot(t *testing.T) {
	snap := MustSchema([]Column{{Name: "id", Kind: value.KindInt}, {Name: "name", Kind: value.KindString}}, -1, -1)
	rows := []Row{
		{value.Int(1), value.String_("a")},
		{value.Int(-7), value.String_("b")},
		{value.Int(1), value.String_("a")},
	}
	b := BatchFromRows(snap, rows, nil)
	if b.TS != nil || b.TE != nil {
		t.Fatal("snapshot batch grew endpoint columns")
	}
	for i, r := range b.Rows() {
		if r.Key() != rows[i].Key() {
			t.Fatalf("row %d: got %q want %q", i, r.Key(), rows[i].Key())
		}
	}
}

func TestBatchSharedInterner(t *testing.T) {
	in := value.NewInterner()
	rows := tupleRows(t)
	b1 := BatchFromRows(TupleSchema, rows[:2], in)
	b2 := BatchFromRows(TupleSchema, rows[2:], in)
	if b1.Intern != in || b2.Intern != in {
		t.Fatal("batches did not adopt the shared interner")
	}
	// "Tom" appears in both batches; the shared table must hand back the
	// same id so cross-batch S comparisons are integer compares.
	sCol := TupleSchema.ColumnIndex("S")
	if b1.Cols[sCol].IDs[0] != b2.Cols[sCol].IDs[0] {
		t.Fatalf("Tom interned twice: %d vs %d", b1.Cols[sCol].IDs[0], b2.Cols[sCol].IDs[0])
	}
}

func TestBatchEmpty(t *testing.T) {
	b := BatchFromRows(TupleSchema, nil, nil)
	if b.Len() != 0 {
		t.Fatalf("empty batch Len = %d", b.Len())
	}
	if got := b.Rows(); len(got) != 0 {
		t.Fatalf("empty batch Rows() = %d rows", len(got))
	}
}

func TestBatchAppendRowArityPanics(t *testing.T) {
	b := NewBatch(TupleSchema, nil, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	b.AppendRow(Row{value.Int(1)})
}
