package relation

import (
	"fmt"

	"tdb/internal/interval"
)

// Timeslice returns the snapshot state of a temporal relation at chronon t:
// every row whose lifespan contains t (ValidFrom ≤ t < ValidTo, the
// stepwise-constant interpolation of the Time Sequence model). The rows
// keep their lifespans; callers wanting a pure snapshot can project the
// temporal columns away.
func Timeslice(r *Relation, t interval.Time) (*Relation, error) {
	if !r.Schema.Temporal() {
		return nil, fmt.Errorf("relation: timeslice of non-temporal relation %s", r.Name)
	}
	out := New(fmt.Sprintf("%s@t=%d", r.Name, t), r.Schema)
	for i, row := range r.Rows {
		if r.Span(i).Contains(t) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}
