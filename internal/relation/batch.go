package relation

import (
	"fmt"

	"tdb/internal/interval"
	"tdb/internal/value"
)

// Batch is the columnar block representation of a run of rows under one
// schema: the lifespan endpoints live in flat parallel TS/TE columns of raw
// chronons, and every schema attribute in a typed column — int64 payloads
// for int and time attributes, dense intern ids for strings. The layout
// follows the cache-efficient sweeping of Piatov et al.: a sweep that only
// needs endpoint comparisons touches two contiguous int64 arrays instead of
// walking boxed values through pointer-sized rows, and an equality between
// two interned string columns is one integer compare.
//
// A Batch and the row representation convert losslessly in both directions
// (BatchFromRows / Rows / Row), so every existing row-at-a-time API keeps
// working; the columnar engine path and the row reference path are required
// to produce byte-identical rows.
type Batch struct {
	Schema *Schema
	// Intern resolves the string columns. Batches that share rows (e.g.
	// the two sides of a join) may share one Interner.
	Intern *value.Interner
	// TS and TE are the lifespan endpoint columns, mirroring the schema's
	// temporal columns; nil for snapshot schemas.
	TS, TE []interval.Time
	// Cols holds one typed column per schema attribute, in schema order.
	Cols []Col
	n    int
}

// Col is one typed column of a batch. Exactly one payload slice is
// populated, selected by Kind: Ints for KindInt and KindTime, IDs for
// KindString.
type Col struct {
	Kind value.Kind
	Ints []int64
	IDs  []uint32
}

// NewBatch returns an empty batch for the schema with backing arrays
// pre-sized to the given capacity. A nil interner allocates a private one.
func NewBatch(s *Schema, in *value.Interner, capacity int) *Batch {
	if in == nil {
		in = value.NewInterner()
	}
	b := &Batch{Schema: s, Intern: in, Cols: make([]Col, s.Arity())}
	for i, c := range s.Cols {
		b.Cols[i].Kind = c.Kind
		if c.Kind == value.KindString {
			b.Cols[i].IDs = make([]uint32, 0, capacity)
		} else {
			b.Cols[i].Ints = make([]int64, 0, capacity)
		}
	}
	if s.Temporal() {
		b.TS = make([]interval.Time, 0, capacity)
		b.TE = make([]interval.Time, 0, capacity)
	}
	return b
}

// BatchFromRows converts a run of rows to columnar form. The rows must
// match the schema (the row representation's own invariant); the conversion
// is one pass, appending to pre-sized columns.
func BatchFromRows(s *Schema, rows []Row, in *value.Interner) *Batch {
	b := NewBatch(s, in, len(rows))
	for _, r := range rows {
		b.AppendRow(r)
	}
	return b
}

// Len reports the number of rows in the batch.
func (b *Batch) Len() int { return b.n }

// AppendRow appends one row, interning its string values.
func (b *Batch) AppendRow(r Row) {
	if len(r) != len(b.Cols) {
		// lint:allow panic — arity mismatch is a programming error, like an out-of-range index
		panic(fmt.Sprintf("relation: appending row of arity %d to batch of schema %s", len(r), b.Schema))
	}
	for i := range r {
		if b.Cols[i].Kind == value.KindString {
			b.Cols[i].IDs = append(b.Cols[i].IDs, b.Intern.ID(r[i].AsString()))
		} else {
			b.Cols[i].Ints = append(b.Cols[i].Ints, r[i].AsInt())
		}
	}
	if b.Schema.Temporal() {
		sp := r.Span(b.Schema)
		b.TS = append(b.TS, sp.Start)
		b.TE = append(b.TE, sp.End)
	}
	b.n++
}

// Span returns the lifespan of row i; like Row.Span it must only be called
// on temporal schemas.
func (b *Batch) Span(i int) interval.Interval {
	return interval.Interval{Start: b.TS[i], End: b.TE[i]}
}

// Value reconstructs the value at row i, column c.
func (b *Batch) Value(i, c int) value.Value {
	col := &b.Cols[c]
	switch col.Kind {
	case value.KindString:
		return value.String_(b.Intern.Str(col.IDs[i]))
	case value.KindTime:
		return value.TimeVal(interval.Time(col.Ints[i]))
	default:
		return value.Int(col.Ints[i])
	}
}

// Row rehydrates row i as a fresh row.
func (b *Batch) Row(i int) Row {
	r := make(Row, len(b.Cols))
	for c := range b.Cols {
		r[c] = b.Value(i, c)
	}
	return r
}

// Rows rehydrates the whole batch. The returned rows slice into one shared
// backing array (one allocation for the block, not one per row); rows are
// immutable by convention downstream, as everywhere in the engine.
func (b *Batch) Rows() []Row {
	arity := len(b.Cols)
	rows := make([]Row, b.n)
	if arity == 0 {
		for i := range rows {
			rows[i] = Row{}
		}
		return rows
	}
	arena := make([]value.Value, b.n*arity)
	for i := 0; i < b.n; i++ {
		r := arena[i*arity : (i+1)*arity : (i+1)*arity]
		for c := range b.Cols {
			r[c] = b.Value(i, c)
		}
		rows[i] = r
	}
	return rows
}
