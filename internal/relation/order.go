package relation

import (
	"fmt"
	"sort"
	"strings"

	"tdb/internal/interval"
)

// TemporalKey designates one of the two temporal attributes as a sort key,
// with a direction. The paper's Tables 1–3 enumerate exactly these keys:
// ValidFrom or ValidTo, each ascending (↑) or descending (↓).
type TemporalKey struct {
	Endpoint interval.Endpoint // TS (ValidFrom) or TE (ValidTo)
	Desc     bool
}

// String renders the key in the notation of the paper's tables, e.g.
// "ValidFrom ↑".
func (k TemporalKey) String() string {
	name := "ValidFrom"
	if k.Endpoint == interval.TE {
		name = "ValidTo"
	}
	arrow := "↑"
	if k.Desc {
		arrow = "↓"
	}
	return name + " " + arrow
}

// Convenience keys covering the four rows of the paper's tables.
var (
	TSAsc  = TemporalKey{Endpoint: interval.TS}
	TSDesc = TemporalKey{Endpoint: interval.TS, Desc: true}
	TEAsc  = TemporalKey{Endpoint: interval.TE}
	TEDesc = TemporalKey{Endpoint: interval.TE, Desc: true}
)

// TemporalKeys lists the four elementary keys in table order.
func TemporalKeys() []TemporalKey { return []TemporalKey{TSAsc, TSDesc, TEAsc, TEDesc} }

// Order is a composite sort order: a primary key followed by optional
// tie-breaking keys. The self-semijoin algorithm of Figure 7, for example,
// requires primary ValidFrom ↑ with secondary ValidTo ↑.
type Order []TemporalKey

// String renders the order as "ValidFrom ↑, ValidTo ↑".
func (o Order) String() string {
	parts := make([]string, len(o))
	for i, k := range o {
		parts[i] = k.String()
	}
	return strings.Join(parts, ", ")
}

// Mirror returns the order that mirrored data must have so that an
// algorithm expecting o can run on it: ascending ValidFrom becomes
// descending ValidTo and vice versa (the Table 1 symmetry).
func (o Order) Mirror() Order {
	m := make(Order, len(o))
	for i, k := range o {
		m[i] = TemporalKey{Endpoint: otherEndpoint(k.Endpoint), Desc: !k.Desc}
	}
	return m
}

func otherEndpoint(e interval.Endpoint) interval.Endpoint {
	if e == interval.TS {
		return interval.TE
	}
	return interval.TS
}

// Compare orders two lifespans under the composite order, returning
// negative, zero or positive. Rows comparing equal are interchangeable for
// the stream algorithms.
func (o Order) Compare(a, b interval.Interval) int {
	for _, k := range o {
		av, bv := endpoint(a, k.Endpoint), endpoint(b, k.Endpoint)
		if av != bv {
			c := 1
			if av < bv {
				c = -1
			}
			if k.Desc {
				c = -c
			}
			return c
		}
	}
	return 0
}

func endpoint(iv interval.Interval, e interval.Endpoint) interval.Time {
	if e == interval.TS {
		return iv.Start
	}
	return iv.End
}

// SortSpans sorts a slice of arbitrary elements by their lifespans under
// the order, using the accessor to obtain each element's lifespan. The sort
// is stable so that repeated sorting with refining orders behaves like a
// composite sort.
func SortSpans[T any](xs []T, span func(T) interval.Interval, o Order) {
	sort.SliceStable(xs, func(i, j int) bool {
		return o.Compare(span(xs[i]), span(xs[j])) < 0
	})
}

// SortedSpans reports whether the elements are already in the order.
func SortedSpans[T any](xs []T, span func(T) interval.Interval, o Order) bool {
	for i := 1; i < len(xs); i++ {
		if o.Compare(span(xs[i-1]), span(xs[i])) > 0 {
			return false
		}
	}
	return true
}

// CheckSortedSpans returns an error naming the first out-of-order position.
func CheckSortedSpans[T any](xs []T, span func(T) interval.Interval, o Order) error {
	for i := 1; i < len(xs); i++ {
		if o.Compare(span(xs[i-1]), span(xs[i])) > 0 {
			return fmt.Errorf("relation: elements %d and %d violate order %v: %v then %v",
				i-1, i, o, span(xs[i-1]), span(xs[i]))
		}
	}
	return nil
}
