package relation

import (
	"fmt"
	"strings"

	"tdb/internal/interval"
	"tdb/internal/value"
)

// Row is one tuple of a relation: a slice of values positionally matching a
// schema.
type Row []value.Value

// Clone returns a copy of the row that shares no storage with the original.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Span extracts the lifespan of the row under the given temporal schema.
// It panics on snapshot schemas; callers guard with Schema.Temporal.
func (r Row) Span(s *Schema) interval.Interval {
	if !s.Temporal() {
		// lint:allow panic — documented contract: callers guard with Schema.Temporal
		panic("relation: Span on snapshot schema " + s.String())
	}
	return interval.Interval{Start: r[s.TS].AsTime(), End: r[s.TE].AsTime()}
}

// String renders the row as (v1, v2, ...).
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports value-wise equality of two rows.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Key renders the row to a canonical string usable as a map key in tests
// and in duplicate elimination.
func (r Row) Key() string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		fmt.Fprintf(&b, "%d:%s", v.Kind(), v.String())
	}
	return b.String()
}

// ConcatRows returns the concatenation of two rows, the output of a join.
func ConcatRows(l, r Row) Row {
	out := make(Row, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

// ParseRow parses one textual record (e.g. a CSV line) into a row under
// the schema's column kinds.
func ParseRow(s *Schema, rec []string) (Row, error) {
	if len(rec) != s.Arity() {
		return nil, fmt.Errorf("relation: record has %d fields, schema %s has %d", len(rec), s, s.Arity())
	}
	row := make(Row, len(rec))
	for i, field := range rec {
		v, err := value.Parse(s.Cols[i].Kind, field)
		if err != nil {
			return nil, fmt.Errorf("relation: column %s: %w", s.Cols[i].Name, err)
		}
		row[i] = v
	}
	return row, nil
}

// Tuple is the paper's canonical temporal data value ⟨S, V, ValidFrom,
// ValidTo⟩: surrogate S identifies the object, V is the time-varying
// attribute, and Span is the lifespan during which S carries the value V
// under stepwise-constant interpolation.
type Tuple struct {
	S    string
	V    value.Value
	Span interval.Interval
}

// String renders the tuple as ⟨S, V, [ts,te)⟩.
func (t Tuple) String() string {
	return fmt.Sprintf("⟨%s, %s, %s⟩", t.S, t.V, t.Span)
}

// Check validates the intra-tuple integrity constraint.
func (t Tuple) Check() error {
	if err := t.Span.Check(); err != nil {
		return fmt.Errorf("tuple %v: %w", t, err)
	}
	return nil
}

// TupleSchema is the schema of the canonical 4-tuple representation.
var TupleSchema = MustSchema([]Column{
	{Name: "S", Kind: value.KindString},
	{Name: "V", Kind: value.KindString},
	{Name: "ValidFrom", Kind: value.KindTime},
	{Name: "ValidTo", Kind: value.KindTime},
}, 2, 3)

// TupleToRow converts a canonical tuple to a row under TupleSchema. The
// time-varying attribute is rendered with its natural type; integer V is
// preserved as an int value.
func TupleToRow(t Tuple) Row {
	return Row{
		value.String_(t.S),
		t.V,
		value.TimeVal(t.Span.Start),
		value.TimeVal(t.Span.End),
	}
}

// RowToTuple converts a row of a 4-tuple-shaped relation back to a Tuple.
// The row must have arity 4 with the lifespan in the schema's temporal
// columns and the surrogate in column 0.
func RowToTuple(s *Schema, r Row) Tuple {
	var vcol int
	for i := range r {
		if i != 0 && i != s.TS && i != s.TE {
			vcol = i
			break
		}
	}
	return Tuple{S: r[0].AsString(), V: r[vcol], Span: r.Span(s)}
}
