package relation

import (
	"fmt"
	"sort"
	"strings"

	"tdb/internal/interval"
)

// Relation is a named temporal relation: a schema plus a bag of rows.
// Following the paper, a temporal relation is conceptually a *set* of
// 4-tuples; we store a bag and provide Dedup because intermediate results
// of the algebra may carry duplicates until a projection eliminates them.
type Relation struct {
	Name   string
	Schema *Schema
	Rows   []Row
}

// New returns an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// FromTuples builds a relation in the canonical 4-tuple shape.
func FromTuples(name string, ts []Tuple) *Relation {
	r := New(name, TupleSchema)
	r.Rows = make([]Row, len(ts))
	for i, t := range ts {
		r.Rows[i] = TupleToRow(t)
	}
	return r
}

// Tuples converts a 4-tuple-shaped relation back to tuples.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = RowToTuple(r.Schema, row)
	}
	return out
}

// Cardinality is the number of rows.
func (r *Relation) Cardinality() int { return len(r.Rows) }

// Insert appends a row after validating its arity, the kinds of its values
// against the schema, and the intra-tuple constraint ValidFrom < ValidTo.
func (r *Relation) Insert(row Row) error {
	if len(row) != r.Schema.Arity() {
		return fmt.Errorf("relation %s: inserting row of arity %d into schema %s", r.Name, len(row), r.Schema)
	}
	for i, v := range row {
		if v.Kind() != r.Schema.Cols[i].Kind {
			return fmt.Errorf("relation %s: column %s: value %v has kind %v, want %v",
				r.Name, r.Schema.Cols[i].Name, v, v.Kind(), r.Schema.Cols[i].Kind)
		}
	}
	if r.Schema.Temporal() {
		if err := row.Span(r.Schema).Check(); err != nil {
			return fmt.Errorf("relation %s: %w", r.Name, err)
		}
	}
	r.Rows = append(r.Rows, row)
	return nil
}

// MustInsert is Insert that panics, for test fixtures and examples.
func (r *Relation) MustInsert(row Row) {
	if err := r.Insert(row); err != nil {
		panic(err) // lint:allow panic — Must* helper for test fixtures and examples
	}
}

// Span returns the lifespan of row i.
func (r *Relation) Span(i int) interval.Interval { return r.Rows[i].Span(r.Schema) }

// Sort orders the rows by their lifespans under the given temporal order.
// It panics on snapshot relations.
func (r *Relation) Sort(o Order) {
	s := r.Schema
	SortSpans(r.Rows, func(row Row) interval.Interval { return row.Span(s) }, o)
}

// SortBy orders the rows by the listed column indexes ascending, comparing
// values with their natural order. It is the engine's generic sort for
// equi-join preparation (e.g. sort Faculty by Name).
func (r *Relation) SortBy(cols ...int) {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		for _, c := range cols {
			cmp := r.Rows[i][c].Compare(r.Rows[j][c])
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

// SortedBy reports whether the rows are in the given temporal order.
func (r *Relation) SortedBy(o Order) bool {
	s := r.Schema
	return SortedSpans(r.Rows, func(row Row) interval.Interval { return row.Span(s) }, o)
}

// Clone returns a deep copy (rows cloned, schema shared — schemas are
// immutable after construction).
func (r *Relation) Clone() *Relation {
	c := New(r.Name, r.Schema)
	c.Rows = make([]Row, len(r.Rows))
	for i, row := range r.Rows {
		c.Rows[i] = row.Clone()
	}
	return c
}

// Dedup removes duplicate rows in place, preserving first occurrences.
func (r *Relation) Dedup() {
	seen := make(map[string]bool, len(r.Rows))
	out := r.Rows[:0]
	for _, row := range r.Rows {
		k := row.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	r.Rows = out
}

// String renders the relation as a small table, for the shell and for
// examples. Large relations are truncated.
func (r *Relation) String() string {
	const maxRows = 24
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s  [%d rows]\n", r.Name, r.Schema, len(r.Rows))
	for i, row := range r.Rows {
		if i == maxRows {
			fmt.Fprintf(&b, "  … %d more\n", len(r.Rows)-maxRows)
			break
		}
		fmt.Fprintf(&b, "  %s\n", row)
	}
	return b.String()
}

// Check validates every row against the schema kinds and the intra-tuple
// constraint; it reports the first violation.
func (r *Relation) Check() error {
	for i, row := range r.Rows {
		if len(row) != r.Schema.Arity() {
			return fmt.Errorf("relation %s: row %d has arity %d, want %d", r.Name, i, len(row), r.Schema.Arity())
		}
		for j, v := range row {
			if v.Kind() != r.Schema.Cols[j].Kind {
				return fmt.Errorf("relation %s: row %d column %s: kind %v, want %v",
					r.Name, i, r.Schema.Cols[j].Name, v.Kind(), r.Schema.Cols[j].Kind)
			}
		}
		if r.Schema.Temporal() {
			if err := row.Span(r.Schema).Check(); err != nil {
				return fmt.Errorf("relation %s: row %d: %w", r.Name, i, err)
			}
		}
	}
	return nil
}
