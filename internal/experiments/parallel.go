package experiments

import (
	"fmt"
	"runtime"
	"time"

	"tdb/internal/algebra"
	"tdb/internal/catalog"
	"tdb/internal/engine"
	"tdb/internal/interval"
	"tdb/internal/partition"
	"tdb/internal/relation"
	"tdb/internal/workload"
)

// ParallelPoint is one worker-count measurement of the E22 sweep.
type ParallelPoint struct {
	K             int     // worker count
	ElapsedNS     int64   // best-of-5 wall time
	Speedup       float64 // serial wall time / this wall time
	MeasuredRepl  float64 // realized boundary-replication rate of the split
	PredictedRepl float64 // the optimizer's λ·E[D] prediction
	Rows          int     // output rows (identical across every k)
}

// ParallelResult is the E22 document: the sweep plus the environment that
// produced it (speedup is meaningless without the processor count).
type ParallelResult struct {
	N          int
	GOMAXPROCS int
	Points     []ParallelPoint
}

// Parallel is experiment E22: the time-range partitioned parallel
// contain-join sweep. A Poisson relation of long lifespans is contain-
// joined with one of short lifespans — the state-heavy shape the Section 6
// model predicts parallelizes best — serially and at each worker count in
// ks. Every parallel run must emit the byte-identical row sequence of the
// serial run; the table reports measured speedup and the realized vs
// predicted boundary-replication rate at each k.
func Parallel(n int, ks []int, seed int64) (*ParallelResult, *Table, error) {
	xs := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 25, LongFrac: 0.1, Seed: seed}, "x")
	ys := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 4, Seed: seed + 1}, "y")
	db := engine.NewDB()
	if err := db.Register(relation.FromTuples("X", xs)); err != nil {
		return nil, nil, err
	}
	if err := db.Register(relation.FromTuples("Y", ys)); err != nil {
		return nil, nil, err
	}
	span := func(v string) algebra.SpanRef {
		return algebra.SpanRef{
			TS: algebra.ColRef{Var: v, Col: "ValidFrom"},
			TE: algebra.ColRef{Var: v, Col: "ValidTo"},
		}
	}
	q := &algebra.Join{
		L:     &algebra.Scan{Relation: "X", As: "a"},
		R:     &algebra.Scan{Relation: "Y", As: "b"},
		Kind:  algebra.KindContain,
		LSpan: span("a"), RSpan: span("b"),
	}

	// The split statistics the engine will compute, reproduced here to
	// report the realized replication rate per k.
	spans := make([]interval.Interval, 0, len(xs)+len(ys))
	for _, t := range xs {
		spans = append(spans, t.Span)
	}
	for _, t := range ys {
		spans = append(spans, t.Span)
	}
	st := catalog.FromSpans(spans)
	ident := func(s interval.Interval) interval.Interval { return s }

	res := &ParallelResult{N: n, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	var serial *relation.Relation
	var serialNS int64
	for _, k := range ks {
		opt := engine.Options{Parallelism: k}
		if k > 1 {
			// The sweep measures scaling, not the planner's size gate.
			opt.ForceParallel = true
			opt.ParallelMinRows = 1
		}
		var out *relation.Relation
		var best int64
		for rep := 0; rep < 5; rep++ {
			// Collect between repetitions: the joins materialize multi-MB
			// outputs, and inherited heap debt otherwise taxes whichever
			// rep the background collector lands on.
			runtime.GC()
			start := time.Now() // lint:allow determinism — wall-time measurement, reported as such
			o, _, err := engine.Run(db, q, opt)
			if err != nil {
				return nil, nil, err
			}
			if d := time.Since(start).Nanoseconds(); rep == 0 || d < best {
				best = d
			}
			out = o
		}
		if serial == nil {
			serial, serialNS = out, best
		} else if err := identical(serial, out); err != nil {
			return nil, nil, fmt.Errorf("parallel ×%d: %w", k, err)
		}
		p := ParallelPoint{K: k, ElapsedNS: best, Rows: out.Cardinality()}
		p.Speedup = float64(serialNS) / float64(best)
		if k > 1 {
			rs := partition.Ranges(st.EquiDepthTSCuts(k))
			p.MeasuredRepl = partition.Replication(partition.Split(spans, ident, rs), len(spans))
			p.PredictedRepl = partition.PredictReplication(st, len(rs))
		}
		res.Points = append(res.Points, p)
	}

	tab := &Table{
		Title: fmt.Sprintf("E22 — time-range partitioned parallel contain-join (%d×%d tuples, GOMAXPROCS=%d)",
			n, n, res.GOMAXPROCS),
		Header: []string{"workers", "wall ms", "speedup", "repl measured", "repl predicted", "rows"},
	}
	for _, p := range res.Points {
		tab.Add(p.K, float64(p.ElapsedNS)/1e6, p.Speedup,
			fmt.Sprintf("%.1f%%", 100*p.MeasuredRepl), fmt.Sprintf("%.1f%%", 100*p.PredictedRepl), p.Rows)
	}
	tab.Note("every parallel run verified byte-identical to the serial row sequence")
	tab.Note("speedup is wall-time and bounded by available processors (GOMAXPROCS=%d)", res.GOMAXPROCS)
	return res, tab, nil
}

// identical enforces the E22 acceptance criterion: the exact serial row
// sequence, not just the same set.
func identical(a, b *relation.Relation) error {
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("row count diverged: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i].Key() != b.Rows[i].Key() {
			return fmt.Errorf("row %d diverged from the serial sequence", i)
		}
	}
	return nil
}
