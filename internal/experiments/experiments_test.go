package experiments

import (
	"strconv"
	"strings"
	"testing"

	"tdb/internal/core"
	"tdb/internal/engine"
	"tdb/internal/workload"
)

// Table 1: the case-(d) cells are buffers-only; the bounded cases stay far
// below the fallback cells; the fallback ("–"/blank) cells hold the whole
// relation.
func TestTable1Claims(t *testing.T) {
	const n = 2000
	res, tab, err := Table1(n, 11, core.ReadSweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 24 {
		t.Fatalf("cells = %d, want 24 (8 orders × 3 operators)", len(res.Cells))
	}
	if !strings.Contains(tab.String(), "Table 1") {
		t.Error("table title missing")
	}
	var bounded, fallback []Cell
	for _, c := range res.Cells {
		switch c.PaperCase {
		case "(d)":
			if c.StateHWM != 0 || c.Workspace != 2 {
				t.Errorf("%s/%s %s: case (d) workspace %d state %d, want buffers only",
					c.OrderX, c.OrderY, c.Operator, c.Workspace, c.StateHWM)
			}
			bounded = append(bounded, c)
		case "(a)", "(b)", "(c)":
			bounded = append(bounded, c)
			// State bounded by the spanning sets (within small constants):
			// far below n, of the order of max concurrency.
			limit := int64(4 * (res.StatsX.MaxConcurrency + res.StatsY.MaxConcurrency))
			if c.StateHWM > limit {
				t.Errorf("%s/%s %s: case %s state %d exceeds 4×joint concurrency %d",
					c.OrderX, c.OrderY, c.Operator, c.PaperCase, c.StateHWM, limit)
			}
		case "–", "":
			fallback = append(fallback, c)
			if c.StateHWM != int64(n) {
				t.Errorf("%s/%s %s: fallback state %d, want n=%d",
					c.OrderX, c.OrderY, c.Operator, c.StateHWM, n)
			}
		}
	}
	// Shape: every bounded cell beats every fallback cell on workspace.
	for _, b := range bounded {
		for _, f := range fallback {
			if b.Workspace >= f.Workspace {
				t.Fatalf("bounded cell %s/%s %s (%d) not below fallback %s/%s %s (%d)",
					b.OrderX, b.OrderY, b.Operator, b.Workspace,
					f.OrderX, f.OrderY, f.Operator, f.Workspace)
			}
		}
	}
	// Mirror symmetry: the lower-half (a)/(c) rows measure like the
	// upper-half ones (same algorithms under the mirror transform, same
	// data distribution family): identical output cardinalities.
	byKey := map[string]Cell{}
	for _, c := range res.Cells {
		byKey[c.OrderX+"|"+c.OrderY+"|"+c.Operator] = c
	}
	up := byKey["ValidFrom ↑|ValidFrom ↑|contain-join"]
	down := byKey["ValidTo ↓|ValidTo ↓|contain-join"]
	if up.Emitted != down.Emitted {
		t.Errorf("mirror halves disagree on output: %d vs %d", up.Emitted, down.Emitted)
	}
}

// The λ-guided policy matches the sweep policy's output and keeps the same
// state regime (both reproduce Table 1's characterization).
func TestTable1PolicyAblation(t *testing.T) {
	sweep, _, err := Table1(1200, 13, core.ReadSweep)
	if err != nil {
		t.Fatal(err)
	}
	lambda, _, err := Table1(1200, 13, core.ReadLambda)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sweep.Cells {
		s, l := sweep.Cells[i], lambda.Cells[i]
		if s.Emitted != l.Emitted {
			t.Fatalf("%s/%s %s: policies disagree on output: %d vs %d",
				s.OrderX, s.OrderY, s.Operator, s.Emitted, l.Emitted)
		}
	}
}

func TestTable2Claims(t *testing.T) {
	const n = 2000
	res, tab, err := Table2(n, 17, core.ReadSweep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "Table 2") {
		t.Error("title")
	}
	for _, c := range res.Cells {
		switch c.PaperCase {
		case "(a)":
			limit := int64(4 * (res.StatsX.MaxConcurrency + res.StatsY.MaxConcurrency))
			if c.StateHWM > limit {
				t.Errorf("overlap-join state %d exceeds %d", c.StateHWM, limit)
			}
		case "(b)":
			if c.StateHWM != 0 || c.Workspace != 2 {
				t.Errorf("overlap-semijoin not buffers-only: %+v", c)
			}
		case "(*)":
			if c.StateHWM != int64(n) {
				t.Errorf("fallback state %d, want %d", c.StateHWM, n)
			}
		}
	}
	// Both appropriate orderings yield the same join output size.
	if res.Cells[0].Emitted != res.Cells[2].Emitted {
		t.Errorf("TS↑ and TE↓ overlap joins disagree: %d vs %d", res.Cells[0].Emitted, res.Cells[2].Emitted)
	}
}

func TestTable3Claims(t *testing.T) {
	res, tab, err := Table3(1500, 19)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "Table 3") {
		t.Error("title")
	}
	n := int64(res.Stats.Cardinality)
	for _, c := range res.Cells {
		switch c.PaperCase {
		case "(a)":
			if c.StateHWM > 1 || c.Workspace > 2 {
				t.Errorf("%s %s: case (a) state %d ws %d, want 1+buffer", c.OrderX, c.Operator, c.StateHWM, c.Workspace)
			}
		case "(b)":
			if c.StateHWM < 2 {
				t.Errorf("case (b) state %d suspiciously small for overlapping data", c.StateHWM)
			}
			if c.StateHWM > int64(4*res.Stats.MaxConcurrency) {
				t.Errorf("case (b) state %d above overlap bound", c.StateHWM)
			}
		case "–":
			if c.StateHWM != n {
				t.Errorf("fallback state %d, want n=%d", c.StateHWM, n)
			}
		}
	}
	// Both contain-semijoin variants find the same containers.
	var emits []int64
	for _, c := range res.Cells {
		if strings.HasPrefix(c.Operator, "contain-semijoin") {
			emits = append(emits, c.Emitted)
		}
	}
	if len(emits) != 2 || emits[0] != emits[1] {
		t.Errorf("contain self-semijoin variants disagree: %v", emits)
	}
	// The two contained variants agree too.
	if res.Cells[0].Emitted != res.Cells[3].Emitted {
		t.Errorf("contained self-semijoin variants disagree: %d vs %d", res.Cells[0].Emitted, res.Cells[3].Emitted)
	}
}

func TestFigure2Regeneration(t *testing.T) {
	tab := Figure2()
	out := tab.String()
	if len(tab.Rows) != 13 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, frag := range []string{
		"X during Y", "X.TS>Y.TS ∧ X.TE<Y.TE",
		"X before Y", "X.TE<Y.TS",
		"X meets Y", "X.TE=Y.TS",
		"X overlaps Y", "X.TS<Y.TS ∧ X.TE>Y.TS ∧ X.TE<Y.TE",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Figure 2 output missing %q", frag)
		}
	}
}

func TestFigure3Claim(t *testing.T) {
	res, tab, err := Figure3(25, 21)
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimizedCost >= res.NaiveCost {
		t.Errorf("pushdown did not pay: %d vs %d", res.OptimizedCost, res.NaiveCost)
	}
	// The gain should be substantial — the naive plan materializes |F|³.
	if res.NaiveCost < 10*res.OptimizedCost {
		t.Errorf("gain %.1fx suspiciously small", float64(res.NaiveCost)/float64(res.OptimizedCost))
	}
	if !strings.Contains(res.NaiveTree, "×") || !strings.Contains(res.OptimizedTree, "⋈") {
		t.Error("trees not rendered as expected")
	}
	if !strings.Contains(tab.String(), "Figure 3") {
		t.Error("title")
	}
}

func TestFigure4Claim(t *testing.T) {
	res, tab := Figure4(50, 40, 23)
	if res.Departments != 50 {
		t.Errorf("departments = %d", res.Departments)
	}
	if res.WorkspaceTuples != 1 {
		t.Errorf("workspace = %d accumulators", res.WorkspaceTuples)
	}
	// Cross-check the sum.
	var want int64
	for _, e := range workload.Employees(50, 40, 23) {
		want += e.Salary
	}
	if res.TotalSalaries != want {
		t.Errorf("Σ = %d, want %d", res.TotalSalaries, want)
	}
	if !strings.Contains(tab.String(), "Figure 4") {
		t.Error("title")
	}
}

// The headline experiment: plan cost ordering C < B < A in comparisons,
// with identical answers.
func TestSuperstarExperiment(t *testing.T) {
	res, tab, err := Superstar(60, 29, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) == 0 {
		t.Fatal("empty superstar answer")
	}
	if !(res.PlanB.Comparisons < res.PlanA.Comparisons) {
		t.Errorf("B (%d) not cheaper than A (%d)", res.PlanB.Comparisons, res.PlanA.Comparisons)
	}
	if !(res.PlanC.Comparisons < res.PlanB.Comparisons) {
		t.Errorf("C (%d) not cheaper than B (%d)", res.PlanC.Comparisons, res.PlanB.Comparisons)
	}
	if res.PlanC.Workspace > 2 {
		t.Errorf("plan C workspace %d, want ≤ 2", res.PlanC.Workspace)
	}
	if !strings.Contains(tab.String(), "Superstar") {
		t.Error("title")
	}

	// Non-continuous histories: plans A and B still agree (C not defined).
	res2, _, err := Superstar(60, 31, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Names) == 0 {
		t.Fatal("empty non-continuous answer")
	}
}

func TestSuperstarContradiction(t *testing.T) {
	db := engine.NewDB()
	fac := workload.Faculty(workload.FacultyConfig{N: 10, Seed: 3})
	if err := db.Register(fac); err != nil {
		t.Fatal(err)
	}
	if err := db.DeclareChronOrder(RankOrder(false)); err != nil {
		t.Fatal(err)
	}
	empty, err := SuperstarContradiction(db)
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Error("contradictory query not detected")
	}
}

func TestTradeoffsClaims(t *testing.T) {
	res, tab, err := Tradeoffs([]int{200, 1600}, 64, t.TempDir(), 37)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "Section 4.1") {
		t.Error("title")
	}
	byKey := map[string]TradeoffRow{}
	for _, r := range res.Rows {
		byKey[r.Strategy+"|"+itoa(r.N)] = r
	}
	for _, n := range []int{200, 1600} {
		pre := byKey["stream, pre-sorted|"+itoa(n)]
		srt := byKey["stream, sort first|"+itoa(n)]
		nl := byKey["nested loop|"+itoa(n)]
		if pre.Comparisons >= nl.Comparisons {
			t.Errorf("n=%d: stream (%d) not below nested loop (%d)", n, pre.Comparisons, nl.Comparisons)
		}
		if pre.SortRuns != 0 || srt.SortRuns == 0 {
			t.Errorf("n=%d: sort-run accounting wrong (%d / %d)", n, pre.SortRuns, srt.SortRuns)
		}
		if srt.PagesMoved == 0 {
			t.Errorf("n=%d: external sort moved no pages", n)
		}
	}
	// The crossover shape: the stream advantage grows with n.
	adv := func(n int) float64 {
		return float64(byKey["nested loop|"+itoa(n)].Comparisons) /
			float64(byKey["stream, pre-sorted|"+itoa(n)].Comparisons+1)
	}
	if adv(1600) <= adv(200) {
		t.Errorf("stream advantage did not grow with n: %.1f vs %.1f", adv(1600), adv(200))
	}
}

func TestStatisticsClaim(t *testing.T) {
	res, tab, err := Statistics(4000, []float64{0.1, 1, 10}, 12, 41)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "Little") {
		t.Error("title")
	}
	for i, r := range res.Rows {
		// At low occupancy the high-water mark (an extreme statistic)
		// sits several means above the Little's-law prediction; the
		// tracking claim is an order-of-magnitude one.
		ratio := float64(r.Measured) / r.Predicted
		if ratio < 0.25 || ratio > 8 {
			t.Errorf("λ=%v: measured/predicted = %.2f outside [0.25,8]", r.Lambda, ratio)
		}
		if i > 0 && r.Measured <= res.Rows[i-1].Measured {
			t.Errorf("measured workspace not increasing with λ·E[D]: %v", res.Rows)
		}
	}
}

func TestBeforeClaims(t *testing.T) {
	res, tab, err := Before(1500, 43)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "4.2.4") {
		t.Error("title")
	}
	if res.NaiveJoin.Emitted != res.SortedJoin.Emitted {
		t.Errorf("join variants disagree: %d vs %d", res.NaiveJoin.Emitted, res.SortedJoin.Emitted)
	}
	if res.Semijoin.TuplesRead != int64(2*res.N) {
		t.Errorf("semijoin read %d tuples, want 2n=%d", res.Semijoin.TuplesRead, 2*res.N)
	}
	if res.Semijoin.StateHWM != 0 {
		t.Errorf("semijoin state %d", res.Semijoin.StateHWM)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

// The advantage of ordering (b) over (a) must vary substantially with Y's
// duration statistics while the answers stay identical.
func TestOrderChoiceClaims(t *testing.T) {
	res, tab, err := OrderChoice(4000, []float64{2, 12, 60}, 57)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "statistics") {
		t.Error("title")
	}
	ratio := func(r OrderChoiceRow) float64 { return float64(r.CmpTSTS) / float64(r.CmpTSTE) }
	lo, hi := ratio(res.Rows[0]), ratio(res.Rows[0])
	for _, r := range res.Rows {
		if x := ratio(r); x < lo {
			lo = x
		} else if x > hi {
			hi = x
		}
	}
	if hi/lo < 1.3 {
		t.Errorf("ordering advantage barely moved with statistics: %.2f..%.2f", lo, hi)
	}
}

// The cost model's prediction tracks measured comparisons across sizes and
// always picks the stream plan at these scales.
func TestCostModelClaims(t *testing.T) {
	res, tab, err := CostModel([]int{250, 1000, 4000}, 53)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "cost model") {
		t.Error("title")
	}
	for _, r := range res.Rows {
		ratio := float64(r.Measured) / r.Predicted
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("n=%d: predicted/measured ratio %.2f out of range", r.N, ratio)
		}
		if !r.UseStream {
			t.Errorf("n=%d: model picked nested loop", r.N)
		}
	}
}

// Three references ⇒ three passes over a cold pool; one pass warm.
func TestScanPassesClaims(t *testing.T) {
	res, tab, err := ScanPasses(400, 51, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "three references") {
		t.Error("title")
	}
	if res.FilePages == 0 {
		t.Fatal("relation fits one page; enlarge workload")
	}
	if res.ColdReads < 3*res.FilePages {
		t.Errorf("cold reads %d, want ≥ 3× file (%d)", res.ColdReads, res.FilePages)
	}
	if res.WarmReads != res.FilePages {
		t.Errorf("warm reads %d, want exactly the file (%d)", res.WarmReads, res.FilePages)
	}
}

// The semijoin prefilter must preserve the join result while shrinking the
// join's workspace and surviving-tuple count substantially.
func TestPrefilterClaims(t *testing.T) {
	res, tab, err := Prefilter(4000, 47)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "4.2.3") {
		t.Error("title")
	}
	if res.Pairs == 0 {
		t.Fatal("workload produced no joining pairs")
	}
	if res.Survivors >= res.N/2 {
		t.Errorf("prefilter kept %d of %d; workload not dangling-heavy", res.Survivors, res.N)
	}
	if res.FilteredState >= res.DirectState {
		t.Errorf("prefilter did not shrink join state: %d vs %d", res.FilteredState, res.DirectState)
	}
	// The paper's claim is workspace reduction; the extra scan costs a
	// bounded overhead in comparisons (≈ one pass over each operand).
	if res.FilteredCmp > res.DirectCmp+int64(3*res.N) {
		t.Errorf("prefilter overhead too large: %d vs %d", res.FilteredCmp, res.DirectCmp)
	}
}
