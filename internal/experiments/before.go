package experiments

import (
	"fmt"

	"tdb/internal/core"
	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/relation"
	"tdb/internal/stream"
	"tdb/internal/workload"
)

// BeforeResult carries the Section 4.2.4 measurements.
type BeforeResult struct {
	N int
	// NaiveJoin: nested loop scanning the whole inner per outer tuple.
	NaiveJoin Cell
	// SortedJoin: ValidTo-ordered outer with binary-searched inner suffix.
	SortedJoin Cell
	// Semijoin: single scan of each operand, any order.
	Semijoin Cell
}

// Before reproduces Section 4.2.4: no sort ordering bounds the state of a
// single-pass stream Before-join (its output is inherently near-Cartesian),
// but sorting still pays — the nested loop stops scanning the inner
// relation early — and Before-semijoin needs one scan of each operand
// regardless of order.
func Before(n int, seed int64) (*BeforeResult, *Table, error) {
	xs := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 6, Seed: seed}, "x")
	ys := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 6, Seed: seed + 1}, "y")
	beforeTheta := func(a, b interval.Interval) bool { return a.Before(b) }
	res := &BeforeResult{N: n}

	probe := nestedLoopProbeJoin(xs, ys, beforeTheta)
	res.NaiveJoin = Cell{Operator: "before-join nested loop", StateHWM: probe.StateHighWater,
		Workspace: probe.Workspace(), Emitted: probe.Emitted, TuplesRead: probe.TuplesRead()}

	probe = &metrics.Probe{}
	xo := sortedTuples(xs, relation.Order{relation.TEAsc})
	yo := sortedTuples(ys, relation.Order{relation.TSAsc})
	if err := core.BeforeJoinSorted(stream.FromSlice(xo), yo, tupleSpan,
		core.Options{Probe: probe}, func(a, b relation.Tuple) {}); err != nil {
		return nil, nil, fmt.Errorf("experiments: before-join: %w", err)
	}
	res.SortedJoin = Cell{Operator: "before-join sorted+binary search", StateHWM: probe.StateHighWater,
		Workspace: probe.Workspace(), Emitted: probe.Emitted, TuplesRead: probe.TuplesRead()}

	probe = &metrics.Probe{}
	if err := core.BeforeSemijoin(stream.FromSlice(xs), stream.FromSlice(ys), tupleSpan,
		core.Options{Probe: probe}, func(relation.Tuple) {}); err != nil {
		return nil, nil, fmt.Errorf("experiments: before-semijoin: %w", err)
	}
	res.Semijoin = Cell{Operator: "before-semijoin single scan", StateHWM: probe.StateHighWater,
		Workspace: probe.Workspace(), Emitted: probe.Emitted, TuplesRead: probe.TuplesRead()}

	tab := &Table{
		Title:  fmt.Sprintf("Section 4.2.4 — Before-join and Before-semijoin (n=%d per operand)", n),
		Header: []string{"strategy", "tuples read", "state hwm", "workspace", "emitted"},
	}
	for _, c := range []Cell{res.NaiveJoin, res.SortedJoin, res.Semijoin} {
		tab.Add(c.Operator, c.TuplesRead, c.StateHWM, c.Workspace, c.Emitted)
	}
	tab.Note("the sorted variant reads the inner suffix only; the semijoin reads each operand once in any order")
	return res, tab, nil
}
