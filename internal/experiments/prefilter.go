package experiments

import (
	"fmt"
	"math/rand"

	"tdb/internal/core"
	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/relation"
	"tdb/internal/stream"
	"tdb/internal/value"
)

// PrefilterResult compares a contain join with and without a semijoin
// preprocessor.
type PrefilterResult struct {
	N             int
	Survivors     int   // X tuples passing the semijoin
	DirectState   int64 // join state without prefilter
	FilteredState int64 // join state with prefilter (semijoin stage adds none)
	DirectCmp     int64
	FilteredCmp   int64 // comparisons of semijoin + join together
	Pairs         int64
}

// Prefilter demonstrates the closing remark of Section 4.2.3: a semijoin
// makes a useful preprocessor for a join because (1) its output keeps the
// input's sort order and (2) it eliminates dangling tuples, shrinking the
// join's workspace. The workload has mostly short X tuples that can
// contain nothing, plus a minority of long ones that do the joining.
func Prefilter(n int, seed int64) (*PrefilterResult, *Table, error) {
	rng := rand.New(rand.NewSource(seed))
	var xs, ys []relation.Tuple
	t := interval.Time(0)
	for i := 0; i < n; i++ {
		t += interval.Time(rng.Intn(3))
		dur := interval.Time(1 + rng.Intn(2)) // dangling: too short to contain
		if rng.Intn(10) == 0 {
			dur = interval.Time(30 + rng.Intn(40)) // the joining minority
		}
		xs = append(xs, relation.Tuple{S: fmt.Sprintf("x%d", i), V: value.Int(int64(i)), Span: interval.New(t, t+dur)})
	}
	t = 0
	for i := 0; i < n; i++ {
		t += interval.Time(rng.Intn(3))
		ys = append(ys, relation.Tuple{S: fmt.Sprintf("y%d", i), V: value.Int(int64(i)), Span: interval.New(t, t+1)})
	}
	xTS := sortedTuples(xs, relation.Order{relation.TSAsc})
	yTS := sortedTuples(ys, relation.Order{relation.TSAsc})
	yTE := sortedTuples(ys, relation.Order{relation.TEAsc})

	res := &PrefilterResult{N: n}

	// Direct join.
	direct := &metrics.Probe{}
	var directPairs int64
	if err := core.ContainJoinTSTS(stream.FromSlice(xTS), stream.FromSlice(yTS), tupleSpan,
		core.Options{Probe: direct}, func(a, b relation.Tuple) { directPairs++ }); err != nil {
		return nil, nil, err
	}
	res.DirectState = direct.StateHighWater
	res.DirectCmp = direct.Comparisons
	res.Pairs = directPairs

	// Semijoin prefilter (order-preserving), then the join over survivors.
	semi := &metrics.Probe{}
	var survivors []relation.Tuple
	if err := core.ContainSemijoin(stream.FromSlice(xTS), stream.FromSlice(yTE), tupleSpan,
		core.Options{Probe: semi}, func(x relation.Tuple) { survivors = append(survivors, x) }); err != nil {
		return nil, nil, err
	}
	res.Survivors = len(survivors)
	join := &metrics.Probe{}
	var filteredPairs int64
	if err := core.ContainJoinTSTS(stream.FromSlice(survivors), stream.FromSlice(yTS), tupleSpan,
		core.Options{Probe: join, VerifyOrder: true}, func(a, b relation.Tuple) { filteredPairs++ }); err != nil {
		return nil, nil, err
	}
	if filteredPairs != directPairs {
		return nil, nil, fmt.Errorf("prefilter changed the join result: %d vs %d", filteredPairs, directPairs)
	}
	res.FilteredState = join.StateHighWater
	res.FilteredCmp = semi.Comparisons + join.Comparisons

	tab := &Table{
		Title:  fmt.Sprintf("Section 4.2.3 — semijoin as join preprocessor (n=%d per operand, %d pairs)", n, res.Pairs),
		Header: []string{"plan", "X tuples joined", "join state hwm", "comparisons"},
	}
	tab.Add("contain-join directly", n, res.DirectState, res.DirectCmp)
	tab.Add("contain-semijoin → contain-join", res.Survivors, res.FilteredState, res.FilteredCmp)
	tab.Note("the semijoin is order-preserving and buffers-only, so the prefilter costs no workspace")
	return res, tab, nil
}
