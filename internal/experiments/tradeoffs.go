package experiments

import (
	"fmt"

	"tdb/internal/baseline"
	"tdb/internal/catalog"
	"tdb/internal/core"
	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/relation"
	"tdb/internal/storage"
	"tdb/internal/stream"
	"tdb/internal/value"
	"tdb/internal/workload"
)

func rankVal(s string) value.Value { return value.String_(s) }

// TradeoffRow is one line of the Section 4.1 tradeoff experiment.
type TradeoffRow struct {
	N           int
	Strategy    string
	Comparisons int64
	TuplesRead  int64
	Workspace   int64
	SortRuns    int // external-sort runs written (0 = input pre-sorted)
	PagesMoved  int64
}

// TradeoffsResult carries the measured rows.
type TradeoffsResult struct {
	Rows []TradeoffRow
}

// Tradeoffs reproduces the Section 4.1 discussion: the three-way tension
// among sort order, workspace, and passes over the input. For a contain
// join at growing sizes it measures (1) the stream algorithm on pre-sorted
// input (single pass, bounded state), (2) the stream algorithm on unsorted
// input paying an external sort with a small memory budget (extra
// read/write passes), and (3) the conventional nested-loop join (no sort,
// no bounded state, quadratic comparisons). The crossover structure — the
// stream approach wins as n grows even when it must sort first — is the
// paper's core performance claim.
func Tradeoffs(sizes []int, memRows int, dir string, seed int64) (*TradeoffsResult, *Table, error) {
	res := &TradeoffsResult{}
	tab := &Table{
		Title:  fmt.Sprintf("Section 4.1 — sort order vs. workspace vs. passes (external-sort memory = %d rows)", memRows),
		Header: []string{"n", "strategy", "comparisons", "tuples read", "workspace", "sort runs", "pages moved"},
	}
	containTheta := func(a, b interval.Interval) bool { return a.ContainsInterval(b) }

	for _, n := range sizes {
		xs := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 10, LongFrac: 0.1, Seed: seed}, "x")
		ys := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 10, LongFrac: 0.1, Seed: seed + 1}, "y")
		// Shuffle into "stored unsorted" variants via ValidTo order (an
		// order useless for this operator).
		xu := sortedTuples(xs, relation.Order{relation.TEAsc})
		yu := sortedTuples(ys, relation.Order{relation.TEAsc})
		xsorted := sortedTuples(xs, relation.Order{relation.TSAsc})
		ysorted := sortedTuples(ys, relation.Order{relation.TSAsc})

		add := func(strategy string, probe *metrics.Probe, runs int, pages int64) {
			row := TradeoffRow{
				N: n, Strategy: strategy,
				Comparisons: probe.Comparisons, TuplesRead: probe.TuplesRead(),
				Workspace: probe.Workspace(), SortRuns: runs, PagesMoved: pages,
			}
			res.Rows = append(res.Rows, row)
			tab.Add(n, strategy, row.Comparisons, row.TuplesRead, row.Workspace, runs, pages)
		}

		// 1. Pre-sorted stream join: single pass, no sorting.
		probe := &metrics.Probe{}
		err := core.ContainJoinTSTS(stream.FromSlice(xsorted), stream.FromSlice(ysorted),
			tupleSpan, core.Options{Probe: probe}, func(a, b relation.Tuple) {})
		if err != nil {
			return nil, nil, err
		}
		add("stream, pre-sorted", probe, 0, 0)

		// 2. Unsorted input: external sort both sides, then stream join.
		probe = &metrics.Probe{}
		var sortStats storage.SortStats
		sortSide := func(ts []relation.Tuple) ([]relation.Tuple, error) {
			rel := relation.FromTuples("t", ts)
			var st storage.SortStats
			sorted, err := storage.ExternalSort(stream.FromSlice(rel.Rows), rel.Schema,
				func(a, b relation.Row) bool {
					return interval.CmpStart(a.Span(rel.Schema), b.Span(rel.Schema)) < 0
				}, memRows, dir, &st)
			if err != nil {
				return nil, err
			}
			rows, err := stream.Collect(sorted)
			if err != nil {
				return nil, err
			}
			sortStats.Runs += st.Runs
			sortStats.PagesRead += st.PagesRead
			sortStats.PagesWritten += st.PagesWritten
			out := make([]relation.Tuple, len(rows))
			for i, r := range rows {
				out[i] = relation.RowToTuple(rel.Schema, r)
			}
			return out, nil
		}
		xss, err := sortSide(xu)
		if err != nil {
			return nil, nil, err
		}
		yss, err := sortSide(yu)
		if err != nil {
			return nil, nil, err
		}
		err = core.ContainJoinTSTS(stream.FromSlice(xss), stream.FromSlice(yss),
			tupleSpan, core.Options{Probe: probe}, func(a, b relation.Tuple) {})
		if err != nil {
			return nil, nil, err
		}
		add("stream, sort first", probe, sortStats.Runs, sortStats.PagesRead+sortStats.PagesWritten)

		// 3. Conventional nested loop on the stored (unsorted) data.
		probe = &metrics.Probe{}
		baseline.NestedLoopJoin(xu, yu, tupleSpan, containTheta, probe, func(a, b relation.Tuple) {})
		add("nested loop", probe, 0, 0)
	}
	return res, tab, nil
}

// StatisticsRow is one λ point of the workspace-prediction experiment.
type StatisticsRow struct {
	Lambda    float64
	MeanDur   float64
	Predicted float64 // Little's law λ·E[D]
	MaxConc   int     // exact maximum concurrency
	Measured  int64   // overlap-join state high-water mark
}

// StatisticsResult carries the sweep.
type StatisticsResult struct {
	Rows []StatisticsRow
}

// Statistics reproduces the Section 6 claim that workspace estimation
// belongs in the optimizer's statistics: across an arrival-rate sweep, the
// Little's-law prediction λ·E[duration] tracks the measured state
// high-water mark of the overlap join.
func Statistics(n int, lambdas []float64, meanDur float64, seed int64) (*StatisticsResult, *Table, error) {
	res := &StatisticsResult{}
	tab := &Table{
		Title:  fmt.Sprintf("Section 6 — workspace prediction by Little's law (n=%d, E[dur]=%.0f)", n, meanDur),
		Header: []string{"λ", "predicted λ·E[D]", "max concurrency", "measured state hwm", "measured/predicted"},
	}
	for _, lam := range lambdas {
		xs := workload.Tuples(workload.Config{N: n, Lambda: lam, MeanDur: meanDur, Seed: seed}, "x")
		ys := workload.Tuples(workload.Config{N: n, Lambda: lam, MeanDur: meanDur, Seed: seed + 1}, "y")
		stats := catalog.FromSpans(spansOf(xs))
		probe := &metrics.Probe{}
		err := core.OverlapJoin(
			stream.FromSlice(sortedTuples(xs, relation.Order{relation.TSAsc})),
			stream.FromSlice(sortedTuples(ys, relation.Order{relation.TSAsc})),
			tupleSpan, core.Options{Probe: probe}, func(a, b relation.Tuple) {})
		if err != nil {
			return nil, nil, err
		}
		// Both sides contribute a spanning set; predict with both.
		statsY := catalog.FromSpans(spansOf(ys))
		pred := stats.PredictedWorkspace() + statsY.PredictedWorkspace()
		row := StatisticsRow{
			Lambda:    lam,
			MeanDur:   meanDur,
			Predicted: pred,
			MaxConc:   stats.MaxConcurrency + statsY.MaxConcurrency,
			Measured:  probe.StateHighWater,
		}
		res.Rows = append(res.Rows, row)
		ratio := float64(row.Measured) / pred
		tab.Add(fmt.Sprintf("%.2f", lam), fmt.Sprintf("%.1f", pred), row.MaxConc, row.Measured, fmt.Sprintf("%.2f", ratio))
	}
	tab.Note("the ratio stays near 1 across two orders of magnitude of λ: cheap statistics predict workspace")
	return res, tab, nil
}
