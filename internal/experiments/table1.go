package experiments

import (
	"fmt"

	"tdb/internal/catalog"
	"tdb/internal/core"
	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/relation"
	"tdb/internal/stream"
	"tdb/internal/workload"
)

// tupleSpan is the lifespan accessor for canonical tuples.
func tupleSpan(t relation.Tuple) interval.Interval { return t.Span }

// Cell is one measured entry of Tables 1–3: the algorithm run for one
// (sort order, operator) combination and its observed costs.
type Cell struct {
	OrderX, OrderY string
	Operator       string
	PaperCase      string // (a)…(d), "–", or "" (blank in the paper)
	Algorithm      string
	StateHWM       int64
	Workspace      int64
	Emitted        int64
	TuplesRead     int64
}

// Table1Result carries the measured upper and lower halves of Table 1 plus
// the workload statistics the cells are judged against.
type Table1Result struct {
	Cells          []Cell
	StatsX, StatsY *catalog.Stats
}

// sortedTuples returns a copy of ts in the given order.
func sortedTuples(ts []relation.Tuple, o relation.Order) []relation.Tuple {
	c := append([]relation.Tuple{}, ts...)
	relation.SortSpans(c, tupleSpan, o)
	return c
}

func runJoin(run func(xs, ys stream.Stream[relation.Tuple], opt core.Options, emit func(a, b relation.Tuple)) error,
	xs, ys []relation.Tuple, policy core.ReadPolicy, lambdaX, lambdaY float64) (*metrics.Probe, error) {
	probe := &metrics.Probe{}
	opt := core.Options{Probe: probe, Policy: policy, LambdaX: lambdaX, LambdaY: lambdaY}
	err := run(stream.FromSlice(xs), stream.FromSlice(ys), opt, func(a, b relation.Tuple) {})
	return probe, err
}

func runSemi(run func(xs, ys stream.Stream[relation.Tuple], opt core.Options, emit func(relation.Tuple)) error,
	xs, ys []relation.Tuple) (*metrics.Probe, error) {
	probe := &metrics.Probe{}
	err := run(stream.FromSlice(xs), stream.FromSlice(ys), core.Options{Probe: probe}, func(relation.Tuple) {})
	return probe, err
}

// Table1 reproduces the paper's Table 1: the effect of the eight sort-order
// combinations on Contain-join(X,Y), Contain-semijoin(X,Y) and
// Contained-semijoin(X,Y), measured as retained-state high-water marks on a
// Poisson workload. Orderings the paper marks "–" or leaves blank run the
// honest buffer-everything fallback, whose workspace is the relation size.
func Table1(n int, seed int64, policy core.ReadPolicy) (*Table1Result, *Table, error) {
	xs := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 12, LongFrac: 0.1, Seed: seed}, "x")
	ys := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 12, LongFrac: 0.1, Seed: seed + 1}, "y")
	sx := catalog.FromSpans(spansOf(xs))
	sy := catalog.FromSpans(spansOf(ys))
	res := &Table1Result{StatsX: sx, StatsY: sy}

	span := tupleSpan
	mspan := core.MirrorSpan(span)
	containTheta := func(a, b interval.Interval) bool { return a.ContainsInterval(b) }
	containedTheta := func(a, b interval.Interval) bool { return containTheta(b, a) }

	type joinFn = func(stream.Stream[relation.Tuple], stream.Stream[relation.Tuple], core.Options, func(a, b relation.Tuple)) error
	type semiFn = func(stream.Stream[relation.Tuple], stream.Stream[relation.Tuple], core.Options, func(relation.Tuple)) error

	fallbackJoin := func() joinFn {
		return func(x, y stream.Stream[relation.Tuple], o core.Options, e func(a, b relation.Tuple)) error {
			return core.BufferedLoopJoin(x, y, span, containTheta, o, e)
		}
	}
	fallbackSemi := func(theta func(a, b interval.Interval) bool) semiFn {
		return func(x, y stream.Stream[relation.Tuple], o core.Options, e func(relation.Tuple)) error {
			return core.BufferedLoopSemijoin(x, y, span, theta, o, e)
		}
	}

	type rowSpec struct {
		orderX, orderY relation.Order
		nameX, nameY   string
		join           joinFn
		joinCase       string
		containSemi    semiFn
		containCase    string
		containedSemi  semiFn
		containedCase  string
	}

	wrapJoin := func(f func(stream.Stream[relation.Tuple], stream.Stream[relation.Tuple], core.Span[relation.Tuple], core.Options, func(a, b relation.Tuple)) error, sp core.Span[relation.Tuple]) joinFn {
		return func(x, y stream.Stream[relation.Tuple], o core.Options, e func(a, b relation.Tuple)) error {
			return f(x, y, sp, o, e)
		}
	}
	wrapSemi := func(f func(stream.Stream[relation.Tuple], stream.Stream[relation.Tuple], core.Span[relation.Tuple], core.Options, func(relation.Tuple)) error, sp core.Span[relation.Tuple]) semiFn {
		return func(x, y stream.Stream[relation.Tuple], o core.Options, e func(relation.Tuple)) error {
			return f(x, y, sp, o, e)
		}
	}

	rows := []rowSpec{
		{
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TSAsc},
			nameX: "ValidFrom ↑", nameY: "ValidFrom ↑",
			join: wrapJoin(core.ContainJoinTSTS[relation.Tuple], span), joinCase: "(a)",
			containSemi: wrapSemi(core.ContainSemijoinTSTS[relation.Tuple], span), containCase: "(c)",
			containedSemi: wrapSemi(core.ContainedSemijoinTSTS[relation.Tuple], span), containedCase: "(c)",
		},
		{
			orderX: relation.Order{relation.TSDesc}, orderY: relation.Order{relation.TSDesc},
			nameX: "ValidFrom ↓", nameY: "ValidFrom ↓",
			join: fallbackJoin(), joinCase: "–",
			containSemi: fallbackSemi(containTheta), containCase: "–",
			containedSemi: fallbackSemi(containedTheta), containedCase: "–",
		},
		{
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TEAsc},
			nameX: "ValidFrom ↑", nameY: "ValidTo ↑",
			join: wrapJoin(core.ContainJoinTSTE[relation.Tuple], span), joinCase: "(b)",
			containSemi: wrapSemi(core.ContainSemijoin[relation.Tuple], span), containCase: "(d)",
			containedSemi: fallbackSemi(containedTheta), containedCase: "",
		},
		{
			orderX: relation.Order{relation.TSDesc}, orderY: relation.Order{relation.TEDesc},
			nameX: "ValidFrom ↓", nameY: "ValidTo ↓",
			join: fallbackJoin(), joinCase: "–",
			containSemi: fallbackSemi(containTheta), containCase: "–",
			containedSemi: wrapSemi(core.ContainedSemijoinTSDescTEDesc[relation.Tuple], span), containedCase: "(d)",
		},
		{
			orderX: relation.Order{relation.TEAsc}, orderY: relation.Order{relation.TSAsc},
			nameX: "ValidTo ↑", nameY: "ValidFrom ↑",
			join: fallbackJoin(), joinCase: "–",
			containSemi: fallbackSemi(containTheta), containCase: "",
			containedSemi: wrapSemi(core.ContainedSemijoin[relation.Tuple], span), containedCase: "(d)",
		},
		{
			orderX: relation.Order{relation.TEDesc}, orderY: relation.Order{relation.TSDesc},
			nameX: "ValidTo ↓", nameY: "ValidFrom ↓",
			join: wrapJoin(core.ContainJoinTEDescTSDesc[relation.Tuple], span), joinCase: "(b)",
			containSemi: wrapSemi(core.ContainSemijoinTEDescTSDesc[relation.Tuple], span), containCase: "(d)",
			containedSemi: fallbackSemi(containedTheta), containedCase: "",
		},
		{
			orderX: relation.Order{relation.TEAsc}, orderY: relation.Order{relation.TEAsc},
			nameX: "ValidTo ↑", nameY: "ValidTo ↑",
			join: fallbackJoin(), joinCase: "",
			containSemi: fallbackSemi(containTheta), containCase: "",
			containedSemi: fallbackSemi(containedTheta), containedCase: "",
		},
		{
			orderX: relation.Order{relation.TEDesc}, orderY: relation.Order{relation.TEDesc},
			nameX: "ValidTo ↓", nameY: "ValidTo ↓",
			join: wrapJoin(core.ContainJoinTEDesc[relation.Tuple], span), joinCase: "(a)",
			containSemi: wrapSemi(func(x, y stream.Stream[relation.Tuple], _ core.Span[relation.Tuple], o core.Options, e func(relation.Tuple)) error {
				return core.ContainSemijoinTSTS(x, y, mspan, o, e)
			}, span), containCase: "(c)",
			containedSemi: wrapSemi(func(x, y stream.Stream[relation.Tuple], _ core.Span[relation.Tuple], o core.Options, e func(relation.Tuple)) error {
				return core.ContainedSemijoinTSTS(x, y, mspan, o, e)
			}, span), containedCase: "(c)",
		},
	}

	tab := &Table{
		Title:  fmt.Sprintf("Table 1 — Contain-join / Contain-semijoin / Contained-semijoin state vs. sort order (n=%d, policy=%v)", n, policy),
		Header: []string{"X order", "Y order", "operator", "paper", "state hwm", "workspace", "emitted"},
	}
	tab.Note("max concurrency: X=%d Y=%d; predicted spanning set (Little's law): X=%.1f Y=%.1f",
		sx.MaxConcurrency, sy.MaxConcurrency, sx.PredictedWorkspace(), sy.PredictedWorkspace())

	var firstErr error
	addCell := func(nameX, nameY, op, paperCase string, probe *metrics.Probe, err error) {
		if firstErr != nil {
			return
		}
		if err != nil {
			firstErr = fmt.Errorf("experiments: %s/%s %s: %w", nameX, nameY, op, err)
			return
		}
		res.Cells = append(res.Cells, Cell{
			OrderX: nameX, OrderY: nameY, Operator: op, PaperCase: paperCase,
			StateHWM: probe.StateHighWater, Workspace: probe.Workspace(),
			Emitted: probe.Emitted, TuplesRead: probe.TuplesRead(),
		})
		display := paperCase
		if display == "" {
			display = "(blank)"
		}
		tab.Add(nameX, nameY, op, display, probe.StateHighWater, probe.Workspace(), probe.Emitted)
	}

	for _, r := range rows {
		xo := sortedTuples(xs, r.orderX)
		yo := sortedTuples(ys, r.orderY)

		probe, err := runJoin(r.join, xo, yo, policy, sx.Lambda, sy.Lambda)
		addCell(r.nameX, r.nameY, "contain-join", r.joinCase, probe, err)

		probe, err = runSemi(r.containSemi, xo, yo)
		addCell(r.nameX, r.nameY, "contain-semijoin", r.containCase, probe, err)

		probe, err = runSemi(r.containedSemi, xo, yo)
		addCell(r.nameX, r.nameY, "contained-semijoin", r.containedCase, probe, err)
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return res, tab, nil
}

func spansOf(ts []relation.Tuple) []interval.Interval {
	out := make([]interval.Interval, len(ts))
	for i, t := range ts {
		out[i] = t.Span
	}
	return out
}
