package experiments

import (
	"fmt"
	"runtime"
	"time"

	"tdb/internal/algebra"
	"tdb/internal/engine"
	"tdb/internal/relation"
	"tdb/internal/workload"
)

// ColumnarPoint is one operator measurement of the E25 sweep: the same
// serial plan on the row-at-a-time reference path and on the columnar
// batch kernels, with the output verified identical before either time is
// believed.
type ColumnarPoint struct {
	Op         string  // operator under test
	RowNS      int64   // best-of-5 wall time, Options.RowExec
	ColumnarNS int64   // best-of-5 wall time, default columnar path
	Speedup    float64 // RowNS / ColumnarNS
	Rows       int     // output rows (identical on both paths)
}

// ColumnarResult is the E25 document.
type ColumnarResult struct {
	N          int
	GOMAXPROCS int
	Points     []ColumnarPoint
}

// Columnar is experiment E25: the row-vs-columnar serial sweep. Each
// eligible stream operator runs the same E22-shaped workload (long
// container lifespans over short containee ones) twice — once forced onto
// the row-at-a-time reference implementation, once on the default columnar
// batch kernels — and the table reports the wall-time ratio. The runs must
// produce the byte-identical row sequence or the experiment fails; the
// speedup column is the tentpole claim of the batch core, so the identity
// check comes first.
func Columnar(n int, seed int64) (*ColumnarResult, *Table, error) {
	xs := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 25, LongFrac: 0.1, Seed: seed}, "x")
	ys := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 4, Seed: seed + 1}, "y")
	db := engine.NewDB()
	if err := db.Register(relation.FromTuples("X", xs)); err != nil {
		return nil, nil, err
	}
	if err := db.Register(relation.FromTuples("Y", ys)); err != nil {
		return nil, nil, err
	}
	span := func(v string) algebra.SpanRef {
		return algebra.SpanRef{
			TS: algebra.ColRef{Var: v, Col: "ValidFrom"},
			TE: algebra.ColRef{Var: v, Col: "ValidTo"},
		}
	}
	join := func(kind algebra.TemporalKind) algebra.Expr {
		return &algebra.Join{
			L:    &algebra.Scan{Relation: "X", As: "a"},
			R:    &algebra.Scan{Relation: "Y", As: "b"},
			Kind: kind, LSpan: span("a"), RSpan: span("b"),
		}
	}
	semijoin := func(kind algebra.TemporalKind) algebra.Expr {
		return &algebra.Semijoin{
			L:    &algebra.Scan{Relation: "X", As: "a"},
			R:    &algebra.Scan{Relation: "Y", As: "b"},
			Kind: kind, LSpan: span("a"), RSpan: span("b"),
		}
	}
	ops := []struct {
		name string
		expr algebra.Expr
	}{
		{"contain-join", join(algebra.KindContain)},
		{"overlap-join", join(algebra.KindOverlap)},
		{"contain-semijoin", semijoin(algebra.KindContain)},
		{"contained-semijoin", semijoin(algebra.KindContained)},
		{"overlap-semijoin", semijoin(algebra.KindOverlap)},
	}

	measure := func(expr algebra.Expr, opt engine.Options) (*relation.Relation, int64, error) {
		var out *relation.Relation
		var best int64
		for rep := 0; rep < 5; rep++ {
			// Collect between repetitions: the joins materialize multi-MB
			// outputs, and inherited heap debt otherwise taxes whichever
			// rep the background collector lands on.
			runtime.GC()
			start := time.Now() // lint:allow determinism — wall-time measurement, reported as such
			o, _, err := engine.Run(db, expr, opt)
			if err != nil {
				return nil, 0, err
			}
			if d := time.Since(start).Nanoseconds(); rep == 0 || d < best {
				best = d
			}
			out = o
		}
		return out, best, nil
	}

	res := &ColumnarResult{N: n, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, op := range ops {
		rowOut, rowNS, err := measure(op.expr, engine.Options{RowExec: true, Parallelism: 1})
		if err != nil {
			return nil, nil, fmt.Errorf("%s (row): %w", op.name, err)
		}
		colOut, colNS, err := measure(op.expr, engine.Options{Parallelism: 1})
		if err != nil {
			return nil, nil, fmt.Errorf("%s (columnar): %w", op.name, err)
		}
		if err := identical(rowOut, colOut); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", op.name, err)
		}
		res.Points = append(res.Points, ColumnarPoint{
			Op: op.name, RowNS: rowNS, ColumnarNS: colNS,
			Speedup: float64(rowNS) / float64(colNS),
			Rows:    colOut.Cardinality(),
		})
	}

	tab := &Table{
		Title: fmt.Sprintf("E25 — row vs columnar serial stream operators (%d×%d tuples, GOMAXPROCS=%d)",
			n, n, res.GOMAXPROCS),
		Header: []string{"operator", "row ms", "columnar ms", "speedup", "rows"},
	}
	for _, p := range res.Points {
		tab.Add(p.Op, float64(p.RowNS)/1e6, float64(p.ColumnarNS)/1e6,
			fmt.Sprintf("%.2f×", p.Speedup), p.Rows)
	}
	tab.Note("every columnar run verified byte-identical to the row reference sequence")
	tab.Note("both paths serial; sorting time is shared and included in both columns")
	return res, tab, nil
}
