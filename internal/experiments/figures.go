package experiments

import (
	"fmt"
	"strings"

	"tdb/internal/algebra"
	"tdb/internal/baseline"
	"tdb/internal/engine"
	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/optimizer"
	"tdb/internal/quel"
	"tdb/internal/relation"
	"tdb/internal/stream"
	"tdb/internal/workload"
)

// Figure2 regenerates the paper's Figure 2 programmatically: the thirteen
// elementary relationships with their explicit constraint conjunctions,
// produced from the same Constraints tables the optimizer's expansion uses.
func Figure2() *Table {
	tab := &Table{
		Title:  "Figure 2 — the 13 elementary temporal relationships and their explicit constraints",
		Header: []string{"#", "operator", "explicit constraints"},
	}
	for i, rel := range interval.Relationships() {
		parts := make([]string, 0, 3)
		for _, c := range rel.Constraints() {
			parts = append(parts, c.String())
		}
		tab.Add(i+1, "X "+rel.String()+" Y", strings.Join(parts, " ∧ "))
	}
	tab.Note("integrity constraints: X.TS<X.TE ∧ Y.TS<Y.TE")
	return tab
}

// SuperstarQuel is the paper's running query in the Quel-like surface
// syntax (Section 3).
const SuperstarQuel = `
range of f1 is Faculty
range of f2 is Faculty
range of f3 is Faculty
retrieve into Stars (Name=f1.Name, ValidFrom=f1.ValidFrom, ValidTo=f2.ValidTo)
where f3.Rank="Associate" and f1.Name=f2.Name and f1.Rank="Assistant"
  and f2.Rank="Full" and (f1 overlap f3) and (f2 overlap f3)
`

// SuperstarTree parses and translates the running query against a database.
func SuperstarTree(db *engine.DB) (algebra.Expr, error) {
	prog, err := quel.Parse(SuperstarQuel)
	if err != nil {
		return nil, err
	}
	qs, err := quel.Translate(prog, db)
	if err != nil {
		return nil, err
	}
	return qs[0].Tree, nil
}

// Figure3Result compares the literal Cartesian evaluation of the Superstar
// parse tree (Figure 3(a)) against the conventionally optimized tree
// (Figure 3(b)).
type Figure3Result struct {
	NaiveTree     string
	OptimizedTree string
	NaiveCost     int64 // tuples materialized + compared by the Cartesian plan
	OptimizedCost int64 // tuples read + compared by the pushed-down plan
	ResultRows    int
}

// Figure3 reproduces the parse-tree optimization of Figure 3, measuring
// what pushing selections below the products buys before any stream
// processing is considered.
func Figure3(nFaculty int, seed int64) (*Figure3Result, *Table, error) {
	db := engine.NewDB()
	fac := workload.Faculty(workload.FacultyConfig{N: nFaculty, Seed: seed})
	if err := db.Register(fac); err != nil {
		return nil, nil, err
	}
	tree, err := SuperstarTree(db)
	if err != nil {
		return nil, nil, err
	}
	// Expand sugar but keep the naive shape (no pushdown, no recognition).
	naiveRes, err := optimizer.Optimize(tree, db, optimizer.Options{
		NoSemantic: true, NoConventional: true, NoRecognition: true,
	})
	if err != nil {
		return nil, nil, err
	}
	optRes, err := optimizer.Optimize(tree, db, optimizer.Options{
		NoSemantic: true, NoRecognition: true,
	})
	if err != nil {
		return nil, nil, err
	}

	naiveOut, naiveStats, err := engine.Run(db, naiveRes.Tree, engine.Options{ForceNestedLoop: true, ForceNoHash: true})
	if err != nil {
		return nil, nil, err
	}
	optOut, optStats, err := engine.Run(db, optRes.Tree, engine.Options{ForceNestedLoop: true, ForceNoHash: true})
	if err != nil {
		return nil, nil, err
	}
	if len(naiveOut.Rows) != len(optOut.Rows) {
		return nil, nil, fmt.Errorf("figure3: plans disagree: %d vs %d rows", len(naiveOut.Rows), len(optOut.Rows))
	}

	r := &Figure3Result{
		NaiveTree:     algebra.Format(naiveRes.Tree),
		OptimizedTree: algebra.Format(optRes.Tree),
		NaiveCost:     naiveStats.TotalTuplesRead() + naiveStats.TotalComparisons(),
		OptimizedCost: optStats.TotalTuplesRead() + optStats.TotalComparisons(),
		ResultRows:    naiveOut.Cardinality(),
	}
	tab := &Table{
		Title:  fmt.Sprintf("Figure 3 — conventional optimization of the Superstar parse tree (|Faculty|=%d)", fac.Cardinality()),
		Header: []string{"plan", "tuples read + comparisons", "result rows"},
	}
	tab.Add("(a) Cartesian products, late selection", r.NaiveCost, r.ResultRows)
	tab.Add("(b) selections pushed down (σ before ×)", r.OptimizedCost, r.ResultRows)
	tab.Note("both plans executed with nested loops only; the gain is purely algebraic")
	return r, tab, nil
}

// Figure4Result reports the stream aggregation measurement.
type Figure4Result struct {
	Departments int
	Employees   int
	// WorkspaceTuples is the retained state of the processor: one
	// accumulator regardless of group sizes.
	WorkspaceTuples int64
	TotalSalaries   int64
}

// Figure4 runs the paper's department-salary summation as a stream
// processor over grouped input and confirms the constant-workspace claim:
// the state is summary information (a partial sum), not retained tuples.
func Figure4(nDept, maxPerDept int, seed int64) (*Figure4Result, *Table) {
	emps := workload.Employees(nDept, maxPerDept, seed)
	sums := stream.GroupSum(stream.FromSlice(emps),
		func(e workload.Employee) string { return e.Dept },
		func(e workload.Employee) int64 { return e.Salary })

	res := &Figure4Result{Employees: len(emps), WorkspaceTuples: 1}
	for {
		p, ok := sums.Next()
		if !ok {
			break
		}
		res.Departments++
		res.TotalSalaries += p.Second
	}
	tab := &Table{
		Title:  "Figure 4 — Sum stream processor over grouped employees",
		Header: []string{"departments", "employees", "state (accumulators)", "Σ salaries"},
	}
	tab.Add(res.Departments, res.Employees, res.WorkspaceTuples, res.TotalSalaries)
	tab.Note("the local workspace holds one partial sum and the buffered tuple, independent of group length")
	return res, tab
}

// nestedLoopProbeJoin runs the baseline join for comparison rows.
func nestedLoopProbeJoin(xs, ys []relation.Tuple, theta func(a, b interval.Interval) bool) *metrics.Probe {
	probe := &metrics.Probe{}
	baseline.NestedLoopJoin(xs, ys, tupleSpan, theta, probe, func(a, b relation.Tuple) {})
	return probe
}
