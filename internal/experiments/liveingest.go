package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"tdb/internal/algebra"
	"tdb/internal/engine"
	"tdb/internal/interval"
	"tdb/internal/live"
	"tdb/internal/relation"
	"tdb/internal/workload"
)

// LivePoint is one (arrival rate, standing query) measurement of the E23
// sustained-ingest sweep.
type LivePoint struct {
	Lambda     float64 // arrival rate of each operand stream
	Query      string  // standing query name
	Mode       string  // incremental or batch (degraded)
	Deltas     int     // delta rows emitted over the whole run
	Workspace  int64   // measured operator workspace high-water mark
	Bound      float64 // analytic ceiling under the final catalog statistics
	IngestNS   int64   // wall time of the ingest loop (shared per λ)
	RowsPerSec float64 // sustained ingest rate over both streams
	Verified   bool    // delta contract held against batch re-execution
}

// LiveResult is the E23 document: the sweep plus the run configuration.
type LiveResult struct {
	N      int           // tuples per operand stream
	Slack  interval.Time // reorder slack of each live table
	Points []LivePoint
}

// LiveIngest is experiment E23: sustained live ingestion with standing
// temporal queries. Two tuple streams X (long lifespans) and Y (short) are
// ingested through the live manager in near-TS order — arrival jittered
// within the reorder slack — at each arrival rate λ, with three standing
// queries registered up front: a contain-semijoin and an overlap-join
// (bounded under Tables 1–2, evaluated incrementally by the unchanged core
// operators) and a before-semijoin (unbounded under Table 3, degraded to
// periodic batch re-execution). After the final flush every query's
// accumulated deltas are verified against a fresh batch execution, and the
// measured workspace high-water mark is reported against the analytic
// admission ceiling.
func LiveIngest(n int, lambdas []float64, slack interval.Time, seed int64) (*LiveResult, *Table, error) {
	res := &LiveResult{N: n, Slack: slack}
	for li, lambda := range lambdas {
		pts, err := liveIngestOnce(n, lambda, slack, seed+int64(li))
		if err != nil {
			return nil, nil, fmt.Errorf("live λ=%g: %w", lambda, err)
		}
		res.Points = append(res.Points, pts...)
	}

	tab := &Table{
		Title: fmt.Sprintf("E23 — sustained live ingestion with standing temporal queries (%d×2 tuples, slack %d)",
			n, slack),
		Header: []string{"lambda", "query", "mode", "deltas", "workspace", "bound", "rows/s", "verified"},
	}
	for _, p := range res.Points {
		bound := "—"
		if p.Mode == "incremental" {
			bound = fmt.Sprintf("%.0f", p.Bound)
		}
		tab.Add(p.Lambda, p.Query, p.Mode, p.Deltas, p.Workspace, bound,
			fmt.Sprintf("%.0f", p.RowsPerSec), p.Verified)
	}
	tab.Note("every query's deltas verified against a batch execution over the final relation contents")
	tab.Note("incremental workspace is the operator high-water mark; bound is the Tables 1–3 admission ceiling")
	return res, tab, nil
}

// liveIngestOnce runs one λ point: fresh database, three standing queries,
// the jittered merge of both streams, periodic polls, flush, finish,
// verify.
func liveIngestOnce(n int, lambda float64, slack interval.Time, seed int64) ([]LivePoint, error) {
	db := engine.NewDB()
	for _, name := range []string{"X", "Y"} {
		if err := db.Register(relation.New(name, relation.TupleSchema)); err != nil {
			return nil, err
		}
	}
	mgr := live.NewManager(db, nil, engine.Options{})
	defer mgr.Close()
	for _, name := range []string{"X", "Y"} {
		if _, err := mgr.Live(name, slack); err != nil {
			return nil, err
		}
	}

	span := func(v string) algebra.SpanRef {
		return algebra.SpanRef{
			TS: algebra.ColRef{Var: v, Col: "ValidFrom"},
			TE: algebra.ColRef{Var: v, Col: "ValidTo"},
		}
	}
	scanX := &algebra.Scan{Relation: "X", As: "x"}
	scanY := &algebra.Scan{Relation: "Y", As: "y"}
	queries := []struct {
		name string
		tree algebra.Expr
	}{
		{"semijoin-contain", &algebra.Semijoin{L: scanX, R: scanY,
			Kind: algebra.KindContain, LSpan: span("x"), RSpan: span("y")}},
		{"join-overlap", &algebra.Join{L: scanX, R: scanY,
			Kind: algebra.KindOverlap, LSpan: span("x"), RSpan: span("y")}},
		{"semijoin-before", &algebra.Semijoin{L: scanX, R: scanY,
			Kind: algebra.KindBefore,
			LSpan: algebra.SpanRef{
				TS: algebra.ColRef{Var: "x", Col: "ValidTo"},
				TE: algebra.ColRef{Var: "x", Col: "ValidTo"}},
			RSpan: span("y")}},
	}
	for _, q := range queries {
		if _, err := mgr.Register(q.name, q.tree, live.RegisterOptions{AllowDegrade: true}); err != nil {
			return nil, err
		}
	}

	// The jittered merge: each tuple's arrival key is its ValidFrom plus a
	// uniform offset below the slack, so arrival deviates from TS order by
	// strictly less than the reorder buffer absorbs — no late rejections.
	type arrival struct {
		rel string
		row relation.Row
		key interval.Time
	}
	rng := rand.New(rand.NewSource(seed))
	jitter := func(t interval.Time) interval.Time {
		if slack <= 0 {
			return t
		}
		return t + interval.Time(rng.Int63n(int64(slack)))
	}
	var arrivals []arrival
	for _, src := range []struct {
		rel string
		cfg workload.Config
	}{
		{"X", workload.Config{N: n, Lambda: lambda, MeanDur: 25, LongFrac: 0.1, Seed: seed}},
		{"Y", workload.Config{N: n, Lambda: lambda, MeanDur: 4, Seed: seed + 1}},
	} {
		rel := src.rel
		for _, t := range workload.Tuples(src.cfg, rel) {
			arrivals = append(arrivals, arrival{
				rel: rel, row: relation.TupleToRow(t), key: jitter(t.Span.Start)})
		}
	}
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].key < arrivals[j].key })

	start := time.Now() // lint:allow determinism — wall-time measurement, reported as such
	for i, a := range arrivals {
		if err := mgr.Append(a.rel, a.row); err != nil {
			return nil, err
		}
		// Periodic polls: cheap drains for the incremental queries, coarse
		// re-executions for the degraded one.
		if i%64 == 63 {
			for _, q := range queries[:2] {
				if _, err := mgr.Query(q.name).Poll(); err != nil {
					return nil, err
				}
			}
		}
		if i%1024 == 1023 {
			if _, err := mgr.Query("semijoin-before").Poll(); err != nil {
				return nil, err
			}
		}
	}
	elapsed := time.Since(start).Nanoseconds()
	if err := mgr.Flush(); err != nil {
		return nil, err
	}

	var pts []LivePoint
	for _, qd := range queries {
		q := mgr.Query(qd.name)
		if _, err := q.Finish(); err != nil {
			return nil, err
		}
		d, _, verr := q.Verify()
		mode := "incremental"
		if q.Mode() == live.ModeBatch {
			mode = "batch"
		}
		p := LivePoint{
			Lambda: lambda, Query: qd.name, Mode: mode,
			Deltas: d, Workspace: q.Workspace(), Bound: q.Bound(),
			IngestNS: elapsed, Verified: verr == nil,
			RowsPerSec: float64(len(arrivals)) / (float64(elapsed) / 1e9),
		}
		if verr == nil && mode == "incremental" && float64(p.Workspace) > p.Bound {
			verr = fmt.Errorf("workspace %d exceeds the admission ceiling %.0f", p.Workspace, p.Bound)
		}
		if verr != nil {
			return nil, fmt.Errorf("%s: %w", qd.name, verr)
		}
		pts = append(pts, p)
	}
	return pts, nil
}
