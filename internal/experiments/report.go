// Package experiments implements one harness per table and figure of the
// paper's evaluation. Each harness generates the workload, runs the
// relevant algorithms with instrumentation, and renders a report table
// whose rows mirror the paper's artifact; the structured results are also
// returned so tests and benchmarks can assert the claimed behaviour (who
// wins, by what shape, and how workspace scales).
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment report.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row, stringifying the cells.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = runeLen(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && runeLen(c) > widths[i] {
				widths[i] = runeLen(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-runeLen(c)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: " + n + "\n")
	}
	return b.String()
}

func runeLen(s string) int { return len([]rune(s)) }
