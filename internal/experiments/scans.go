package experiments

import (
	"fmt"

	"tdb/internal/engine"
	"tdb/internal/optimizer"
	"tdb/internal/workload"
)

// ScanPassesResult reports the page I/O of evaluating the three-reference
// Superstar query over a disk-resident Faculty relation.
type ScanPassesResult struct {
	FilePages  int64
	ColdReads  int64 // one-frame buffer pool: every scan pays
	WarmReads  int64 // pool covering the relation: later scans are free
	References int   // range variables over Faculty in the query
}

// ScanPasses reproduces the paper's Section 3 observation 3: "there are
// three references to the Faculty relation in the parse tree ... —
// conventional systems would scan the relation several times." With the
// relation on paged storage, a one-frame buffer pool pays the full page
// count per reference, while a pool holding the relation pays once.
func ScanPasses(nFaculty int, seed int64, dir string) (*ScanPassesResult, *Table, error) {
	run := func(poolPages int) (int64, int64, error) {
		db := engine.NewDB()
		if err := db.Register(workload.Faculty(workload.FacultyConfig{N: nFaculty, Seed: seed})); err != nil {
			return 0, 0, err
		}
		if err := db.StoreRelation("Faculty", dir, poolPages); err != nil {
			return 0, 0, err
		}
		defer db.Close()
		tree, err := SuperstarTree(db)
		if err != nil {
			return 0, 0, err
		}
		opt, err := optimizer.Optimize(tree, db, optimizer.Options{NoSemantic: true, NoRecognition: true})
		if err != nil {
			return 0, 0, err
		}
		_, stats, err := engine.Run(db, opt.Tree, engine.Options{ForceNestedLoop: true})
		if err != nil {
			return 0, 0, err
		}
		return stats.TotalPagesRead(), db.StoredIO("Faculty").PagesWritten, nil
	}

	cold, filePages, err := run(1)
	if err != nil {
		return nil, nil, err
	}
	warm, _, err := run(1 << 20)
	if err != nil {
		return nil, nil, err
	}
	res := &ScanPassesResult{FilePages: filePages, ColdReads: cold, WarmReads: warm, References: 3}
	tab := &Table{
		Title:  fmt.Sprintf("Section 3 observation 3 — three references to Faculty = three scans (file: %d pages)", filePages),
		Header: []string{"buffer pool", "pages read", "effective passes"},
	}
	tab.Add("1 frame (cold)", cold, fmt.Sprintf("%.1f", float64(cold)/float64(filePages)))
	tab.Add("whole relation (warm)", warm, fmt.Sprintf("%.1f", float64(warm)/float64(filePages)))
	return res, tab, nil
}
