package experiments

import "testing"

// TestResilienceSweepSmoke runs a miniature E27 point and pins the
// exactly-once ledger: every round reaches every client in order, each
// armed sever produces exactly one observed resume, and the idempotency
// window replays every deliberate duplicate append.
func TestResilienceSweepSmoke(t *testing.T) {
	res, tab, err := ResilienceSweep([]int{2}, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tab == nil || len(tab.Rows) != 1 {
		t.Fatalf("table = %+v", tab)
	}
	p := res.Points[0]
	if p.Deltas != p.Clients*p.Rounds {
		t.Errorf("deltas %d, want %d (every round to every client)", p.Deltas, p.Clients*p.Rounds)
	}
	if p.Severs != 2 || p.Resumes != p.Severs {
		t.Errorf("severs %d resumes %d, want equal (got 2 sever rounds)", p.Severs, p.Resumes)
	}
	if p.SeqViolations != 0 || p.StreamErrors != 0 {
		t.Errorf("seq violations %d, stream errors %d, want 0", p.SeqViolations, p.StreamErrors)
	}
	if p.DupAppends == 0 || p.DedupHits != int64(p.DupAppends) {
		t.Errorf("dedup hits %d, want %d (one per duplicate send)", p.DedupHits, p.DupAppends)
	}
	if p.RecoveryMeanNS <= 0 || p.RecoveryP99NS < p.RecoveryMeanNS {
		t.Errorf("recovery mean %d p99 %d, want positive and ordered", p.RecoveryMeanNS, p.RecoveryP99NS)
	}
}
