package experiments

import "testing"

func TestChaosExperiment(t *testing.T) {
	res, tab, err := Chaos(150, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 3 drift levels + 3 ladder rungs + 2 fault probabilities.
	if len(res.Points) != 8 || len(tab.Rows) != 8 {
		t.Fatalf("want 8 sweep points, got %d / %d rows", len(res.Points), len(tab.Rows))
	}
	byParam := map[string]ChaosPoint{}
	for _, p := range res.Points {
		if !p.Verified {
			t.Errorf("%s %s: contract not verified", p.Scenario, p.Param)
		}
		byParam[p.Param] = p
	}
	if p := byParam["drift=0"]; p.Fallbacks != 0 || p.Mode != "stream" {
		t.Errorf("undrifted governor point: %+v", p)
	}
	if p := byParam["drift=40"]; p.Fallbacks != 1 || p.Mode != "governed-baseline" {
		t.Errorf("drifted governor point should fall back: %+v", p)
	}
	if p := byParam["ladder=readmit"]; p.Mode != "incremental" || p.Fallbacks != 1 {
		t.Errorf("readmit rung: %+v", p)
	}
	if p := byParam["ladder=degrade"]; p.Mode != "batch" {
		t.Errorf("degrade rung: %+v", p)
	}
	if p := byParam["ladder=decline"]; p.Mode != "declined" || p.TypedErr != 1 {
		t.Errorf("decline rung: %+v", p)
	}
	for _, param := range []string{"p=0.20", "p=0.40"} {
		p := byParam[param]
		if p.OK+p.TypedErr != p.Runs {
			t.Errorf("%s: %d ok + %d typed != %d runs", param, p.OK, p.TypedErr, p.Runs)
		}
	}
	if p := byParam["p=0.40"]; p.TypedErr == 0 {
		t.Errorf("no fault ever fired at p=0.40: %+v", p)
	}
}
