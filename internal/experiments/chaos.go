package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"tdb/internal/algebra"
	"tdb/internal/engine"
	"tdb/internal/fault"
	"tdb/internal/interval"
	"tdb/internal/live"
	"tdb/internal/obs"
	"tdb/internal/relation"
	"tdb/internal/value"
	"tdb/internal/workload"
)

// ChaosPoint is one row of the E24 degradation sweep: a governed engine run
// at a drift level, a breaker-ladder rung, or a batch of seeded fault-
// injection runs.
type ChaosPoint struct {
	Scenario  string // engine-governor | live-breaker | fault-survival
	Param     string // drift=N, ladder=rung, p=F
	Runs      int    // executions behind this row
	OK        int    // runs that completed cleanly
	TypedErr  int    // runs that failed with a clean typed error
	Fallbacks int64  // tdb_governor_fallbacks_total after the row
	Mode      string // terminal execution mode
	Verified  bool   // output contract held (byte/multiset identity or typed error)
}

// ChaosResult is the E24 document: the sweep plus the run configuration.
type ChaosResult struct {
	N         int   // tuples per operand stream in the fault-survival batches
	FaultRuns int   // seeded runs per fault-probability point
	Seed      int64 // base seed
	Points    []ChaosPoint
}

// Chaos is experiment E24: graceful degradation under statistics drift and
// injected faults. Three scenarios share one table. (1) engine-governor: a
// serial temporal join over relations whose catalog statistics are
// deliberately stale-low runs with the workspace governor armed; past the
// drift threshold the measured workspace breaches the admission ceiling and
// the run degrades to the baseline sort-merge, producing the same rows.
// (2) live-breaker: a governed standing query is driven through the breaker
// ladder — one trip re-admits it under refreshed statistics, exhausted
// re-admissions degrade it to batch mode or, with degradation disallowed,
// decline it with the typed ErrBreakerOpen. (3) fault-survival: seeded
// probabilistic faults hit the parallel workers; every run must end in
// byte-identical output or a clean typed error — never a partial result.
func Chaos(n, runs int, seed int64) (*ChaosResult, *Table, error) {
	res := &ChaosResult{N: n, FaultRuns: runs, Seed: seed}

	for _, drift := range []int{0, 12, 40} {
		p, err := chaosGovernorPoint(drift)
		if err != nil {
			return nil, nil, fmt.Errorf("engine-governor drift=%d: %w", drift, err)
		}
		res.Points = append(res.Points, *p)
	}
	for _, rung := range []string{"readmit", "degrade", "decline"} {
		p, err := chaosBreakerPoint(rung)
		if err != nil {
			return nil, nil, fmt.Errorf("live-breaker %s: %w", rung, err)
		}
		res.Points = append(res.Points, *p)
	}
	for _, prob := range []float64{0.2, 0.4} {
		p, err := chaosSurvivalPoint(n, runs, prob, seed)
		if err != nil {
			return nil, nil, fmt.Errorf("fault-survival p=%.2f: %w", prob, err)
		}
		res.Points = append(res.Points, *p)
	}

	tab := &Table{
		Title: fmt.Sprintf("E24 — degradation sweep: workspace governor, breaker ladder, fault survival (%d×2 tuples, %d runs/point)",
			n, runs),
		Header: []string{"scenario", "param", "runs", "ok", "typed-err", "fallbacks", "mode", "verified"},
	}
	for _, p := range res.Points {
		tab.Add(p.Scenario, p.Param, p.Runs, p.OK, p.TypedErr, p.Fallbacks, p.Mode, p.Verified)
	}
	tab.Note("engine-governor: governed output is multiset-identical to the ungoverned stream path")
	tab.Note("live-breaker: the ladder is trip→re-admit (replay), exhausted→batch degrade or typed decline")
	tab.Note("fault-survival: every run is byte-identical to the serial reference or a clean typed error")
	return res, tab, nil
}

// chaosSchema is the three-column temporal schema the governed scenarios
// share: a surrogate plus the lifespan.
func chaosSchema() *relation.Schema {
	return relation.MustSchema([]relation.Column{
		{Name: "Id", Kind: value.KindInt},
		{Name: "ValidFrom", Kind: value.KindTime},
		{Name: "ValidTo", Kind: value.KindTime},
	}, 1, 2)
}

func chaosRow(id int, from, to interval.Time) relation.Row {
	return relation.Row{value.Int(int64(id)), value.TimeVal(from), value.TimeVal(to)}
}

func chaosSpan(v string) algebra.SpanRef {
	return algebra.SpanRef{
		TS: algebra.ColRef{Var: v, Col: "ValidFrom"},
		TE: algebra.ColRef{Var: v, Col: "ValidTo"},
	}
}

// chaosGovernorDB registers A and B with a handful of disjoint lifespans —
// so the analyzed concurrency is 1 — then grows them by direct row
// insertion with `drift` tuples that all cover one common window. The
// catalog never sees the growth: this is the statistics-drift scenario the
// workspace governor exists to catch.
func chaosGovernorDB(drift int) (*engine.DB, error) {
	db := engine.NewDB()
	for ri, name := range []string{"A", "B"} {
		rel := relation.New(name, chaosSchema())
		for i := 0; i < 4; i++ {
			s := interval.Time(i * 10)
			rel.MustInsert(chaosRow(ri*1000+i, s, s+3))
		}
		if err := db.Register(rel); err != nil {
			return nil, err
		}
		for i := 0; i < drift; i++ {
			rel.Rows = append(rel.Rows,
				chaosRow(ri*1000+100+i, 100+interval.Time(i%7), 200+interval.Time(i%5)))
		}
	}
	return db, nil
}

func chaosGovernorJoin() algebra.Expr {
	return &algebra.Join{
		L: &algebra.Scan{Relation: "A", As: "a"}, R: &algebra.Scan{Relation: "B", As: "b"},
		Kind: algebra.KindOverlap, LSpan: chaosSpan("a"), RSpan: chaosSpan("b"),
	}
}

// chaosGovernorPoint runs one drift level governed and ungoverned and
// checks the degradation contract: identical multiset either way, fallback
// fired exactly when the drift breaches the stale ceiling.
func chaosGovernorPoint(drift int) (*ChaosPoint, error) {
	db, err := chaosGovernorDB(drift)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	res, st, err := engine.Run(db, chaosGovernorJoin(), engine.Options{GovernWorkspace: true, Registry: reg})
	if err != nil {
		return nil, fmt.Errorf("governed run: %w", err)
	}
	plain, _, err := engine.Run(db, chaosGovernorJoin(), engine.Options{})
	if err != nil {
		return nil, fmt.Errorf("ungoverned run: %w", err)
	}
	if err := sameMultiset(res.Rows, plain.Rows); err != nil {
		return nil, fmt.Errorf("governed output diverges from the stream path: %w", err)
	}
	mode := "stream"
	for _, node := range st.Nodes {
		if strings.Contains(node.Algorithm, "baseline sort-merge (governed)") {
			mode = "governed-baseline"
		}
	}
	fallbacks := reg.Counter("tdb_governor_fallbacks_total", "").Value()
	if drift == 0 && fallbacks != 0 {
		return nil, fmt.Errorf("undrifted run fell back %d times", fallbacks)
	}
	if drift >= 40 && fallbacks != 1 {
		return nil, fmt.Errorf("drifted run recorded %d fallbacks, want 1", fallbacks)
	}
	return &ChaosPoint{
		Scenario: "engine-governor", Param: fmt.Sprintf("drift=%d", drift),
		Runs: 1, OK: 1, Fallbacks: fallbacks, Mode: mode, Verified: true,
	}, nil
}

// chaosBreakerManager is the breaker fixture: X and Y registered while
// empty, so the catalog keeps stale-zero statistics until a trip refreshes
// them.
func chaosBreakerManager(opts live.RegisterOptions) (*live.Manager, *live.StandingQuery, *obs.Registry, error) {
	db := engine.NewDB()
	for _, name := range []string{"X", "Y"} {
		if err := db.Register(relation.New(name, chaosSchema())); err != nil {
			return nil, nil, nil, err
		}
	}
	reg := obs.NewRegistry()
	mgr := live.NewManager(db, reg, engine.Options{})
	for _, name := range []string{"X", "Y"} {
		if _, err := mgr.Live(name, 0); err != nil {
			mgr.Close()
			return nil, nil, nil, err
		}
	}
	tree := &algebra.Join{
		L: &algebra.Scan{Relation: "X", As: "x"}, R: &algebra.Scan{Relation: "Y", As: "y"},
		Kind: algebra.KindOverlap, LSpan: chaosSpan("x"), RSpan: chaosSpan("y"),
	}
	q, err := mgr.Register("gov", tree, opts)
	if err != nil {
		mgr.Close()
		return nil, nil, nil, err
	}
	return mgr, q, reg, nil
}

// chaosDriftRound ingests n rows per relation, ValidFrom strictly
// increasing, all ending at 1000 — every lifespan overlaps every other, so
// the true concurrency is the full row count while the catalog lags.
func chaosDriftRound(mgr *live.Manager, next *int, n int) error {
	for i := 0; i < n; i++ {
		ts := interval.Time(*next)
		if err := mgr.Append("X", chaosRow(*next, ts, 1000)); err != nil {
			return err
		}
		if err := mgr.Append("Y", chaosRow(10000+*next, ts, 1000)); err != nil {
			return err
		}
		*next++
	}
	return nil
}

// chaosBreakerPoint drives one rung of the ladder: a single trip re-admits,
// exhausted trips degrade to batch when allowed, decline otherwise.
func chaosBreakerPoint(rung string) (*ChaosPoint, error) {
	opts := live.RegisterOptions{Govern: true}
	if rung == "degrade" {
		opts.AllowDegrade = true
	}
	mgr, q, reg, err := chaosBreakerManager(opts)
	if err != nil {
		return nil, err
	}
	defer mgr.Close()

	rounds := []int{6}
	if rung != "readmit" {
		rounds = []int{6, 12, 30} // exhaust the re-admission budget
	}
	next := 0
	for _, n := range rounds {
		if err := chaosDriftRound(mgr, &next, n); err != nil {
			return nil, err
		}
		if _, err := q.Poll(); err != nil {
			if q.Broken() != nil {
				break // terminal decline surfaced mid-escalation
			}
			return nil, fmt.Errorf("poll: %w", err)
		}
	}

	pt := &ChaosPoint{
		Scenario: "live-breaker", Param: "ladder=" + rung,
		Runs: 1, Fallbacks: reg.Counter("tdb_governor_fallbacks_total", "").Value(),
	}
	switch rung {
	case "readmit":
		if q.Trips() != 1 || q.Mode() != live.ModeIncremental {
			return nil, fmt.Errorf("trips=%d mode=%v, want one trip and incremental re-admission", q.Trips(), q.Mode())
		}
		if _, err := q.Finish(); err != nil {
			return nil, fmt.Errorf("finish: %w", err)
		}
		if _, _, err := q.Verify(); err != nil {
			return nil, fmt.Errorf("verify after re-admission: %w", err)
		}
		pt.OK, pt.Mode, pt.Verified = 1, "incremental", true
	case "degrade":
		if q.Mode() != live.ModeBatch {
			return nil, fmt.Errorf("mode %v after %d trips, want batch", q.Mode(), q.Trips())
		}
		if _, _, err := q.Verify(); err != nil {
			return nil, fmt.Errorf("degraded verify: %w", err)
		}
		pt.OK, pt.Mode, pt.Verified = 1, "batch", true
	case "decline":
		if q.Broken() == nil {
			return nil, fmt.Errorf("breaker never opened (trips %d, mode %v)", q.Trips(), q.Mode())
		}
		if _, err := q.Poll(); !errors.Is(err, live.ErrBreakerOpen) {
			return nil, fmt.Errorf("poll error %v, want the typed ErrBreakerOpen", err)
		}
		// A declined query must not fail ingestion.
		if err := mgr.Append("X", chaosRow(99999, 999, 1001)); err != nil {
			return nil, fmt.Errorf("append after decline: %w", err)
		}
		pt.TypedErr, pt.Mode, pt.Verified = 1, "declined", true
	}
	return pt, nil
}

// chaosSurvivalPoint runs `runs` seeded executions of a parallel overlap
// join with probabilistic worker faults armed. Each run must either match
// the fault-free serial reference byte for byte or fail with a clean typed
// error; anything else fails the experiment.
func chaosSurvivalPoint(n, runs int, prob float64, seed int64) (*ChaosPoint, error) {
	defer fault.Reset()
	db := engine.NewDB()
	for _, src := range []struct {
		rel string
		cfg workload.Config
	}{
		{"X", workload.Config{N: n, Lambda: 1.0, MeanDur: 25, LongFrac: 0.1, Seed: seed}},
		{"Y", workload.Config{N: n, Lambda: 1.0, MeanDur: 4, Seed: seed + 1}},
	} {
		if err := db.Register(relation.FromTuples(src.rel, workload.Tuples(src.cfg, src.rel))); err != nil {
			return nil, err
		}
	}
	tree := &algebra.Join{
		L: &algebra.Scan{Relation: "X", As: "x"}, R: &algebra.Scan{Relation: "Y", As: "y"},
		Kind: algebra.KindOverlap, LSpan: chaosSpan("x"), RSpan: chaosSpan("y"),
	}
	serial, _, err := engine.Run(db, tree, engine.Options{Parallelism: 1})
	if err != nil {
		return nil, fmt.Errorf("fault-free reference: %w", err)
	}

	par := engine.Options{Parallelism: 4, ForceParallel: true, ParallelMinRows: 1, VerifyOrder: true}
	rng := rand.New(rand.NewSource(seed))
	pt := &ChaosPoint{
		Scenario: "fault-survival", Param: fmt.Sprintf("p=%.2f", prob),
		Runs: runs, Mode: "parallel×4", Verified: true,
	}
	for r := 0; r < runs; r++ {
		fault.Reset()
		specs := []string{
			fmt.Sprintf("engine/parallel-worker=error:p=%g:seed=%d", prob, rng.Int63()),
			fmt.Sprintf("engine/parallel-worker=panic:p=%g:seed=%d", prob/2, rng.Int63()),
		}
		for _, s := range specs {
			if err := fault.Arm(s); err != nil {
				return nil, err
			}
		}
		res, _, err := engine.Run(db, tree, par)
		fault.Reset()
		if err != nil {
			if !errors.Is(err, fault.ErrInjected) && !errors.Is(err, engine.ErrWorkerPanic) {
				return nil, fmt.Errorf("run %d: untyped chaos error: %w", r, err)
			}
			pt.TypedErr++
			continue
		}
		if len(res.Rows) != len(serial.Rows) {
			return nil, fmt.Errorf("run %d: %d rows, serial reference has %d", r, len(res.Rows), len(serial.Rows))
		}
		for i := range serial.Rows {
			if res.Rows[i].Key() != serial.Rows[i].Key() {
				return nil, fmt.Errorf("run %d: row %d diverges from the serial reference", r, i)
			}
		}
		pt.OK++
	}
	if prob >= 0.4 && pt.TypedErr == 0 {
		return nil, fmt.Errorf("no schedule fired at p=%.2f; the sweep is not exercising the fault paths", prob)
	}
	return pt, nil
}

// sameMultiset reports whether two row sets are identical as multisets of
// row keys, order disregarded.
func sameMultiset(a, b []relation.Row) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d rows vs %d", len(a), len(b))
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = string(a[i].Key())
		kb[i] = string(b[i].Key())
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return fmt.Errorf("multisets diverge at sorted position %d", i)
		}
	}
	return nil
}
