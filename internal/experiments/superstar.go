package experiments

import (
	"fmt"
	"sort"

	"tdb/internal/algebra"
	"tdb/internal/constraints"
	"tdb/internal/core"
	"tdb/internal/engine"
	"tdb/internal/metrics"
	"tdb/internal/optimizer"
	"tdb/internal/relation"
	"tdb/internal/stream"
	"tdb/internal/workload"
)

// RankOrder is the chronological-ordering constraint of the running
// example.
func RankOrder(continuous bool) constraints.ChronOrder {
	return constraints.ChronOrder{
		Relation: "Faculty", KeyCol: "Name", ValCol: "Rank",
		Order:      append([]string{}, workload.Ranks...),
		Continuous: continuous,
	}
}

// PlanCost summarizes one Superstar plan execution.
type PlanCost struct {
	Comparisons int64
	TuplesRead  int64
	Workspace   int64
	SortedRows  int64
	Rows        int
}

// SuperstarResult carries the three plans of the Figure 8 experiment.
type SuperstarResult struct {
	Faculty int // rows in the Faculty relation
	// Names is the answer as a sorted list of names; all plans agree.
	Names []string
	PlanA PlanCost // conventional: hash equi-join + nested-loop less-than join
	PlanB PlanCost // semantic optimization + stream Contained-semijoin
	PlanC PlanCost // continuous employment: single-scan self semijoin (set only when continuous)
}

func planCost(stats *engine.Stats, rows int) PlanCost {
	return PlanCost{
		Comparisons: stats.TotalComparisons(),
		TuplesRead:  stats.TotalTuplesRead(),
		Workspace:   stats.MaxWorkspace(),
		SortedRows:  stats.TotalSortedRows(),
		Rows:        rows,
	}
}

func nameSet(rel *relation.Relation) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range rel.Rows {
		if n := r[0].AsString(); !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Superstar runs the paper's running query three ways (Figure 8 and the
// Section 5 discussion) and verifies the answers agree:
//
//	A — conventional: temporal sugar expanded, selections pushed down,
//	    the equi-join hashed, the less-than join nested-loop;
//	B — semantic: the redundant inequalities removed, the residual join
//	    recognized as a Contained-semijoin over the derived lifespan
//	    [f1.ValidTo, f2.ValidFrom) and run as a Figure 6 stream scan;
//	C — only under continuous employment: the whole query collapses to a
//	    single-scan Contained-semijoin(X,X) over the associate tuples
//	    (Section 4.2.3), followed by a filter to members that reached
//	    full rank.
func Superstar(nFaculty int, seed int64, continuous bool) (*SuperstarResult, *Table, error) {
	db := engine.NewDB()
	fac := workload.Faculty(workload.FacultyConfig{N: nFaculty, Continuous: continuous, Seed: seed})
	if err := db.Register(fac); err != nil {
		return nil, nil, err
	}
	if err := db.DeclareChronOrder(RankOrder(continuous)); err != nil {
		return nil, nil, err
	}
	tree, err := SuperstarTree(db)
	if err != nil {
		return nil, nil, err
	}
	res := &SuperstarResult{Faculty: fac.Cardinality()}

	// Plan A.
	optA, err := optimizer.Optimize(tree, db, optimizer.Options{NoSemantic: true, NoRecognition: true})
	if err != nil {
		return nil, nil, err
	}
	outA, statsA, err := engine.Run(db, optA.Tree, engine.Options{ForceNestedLoop: true})
	if err != nil {
		return nil, nil, err
	}
	res.PlanA = planCost(statsA, outA.Cardinality())
	res.Names = nameSet(outA)

	// Plan B.
	optB, err := optimizer.Optimize(tree, db, optimizer.Options{ICs: db.ChronOrders()})
	if err != nil {
		return nil, nil, err
	}
	outB, statsB, err := engine.Run(db, optB.Tree, engine.Options{VerifyOrder: true})
	if err != nil {
		return nil, nil, err
	}
	res.PlanB = planCost(statsB, outB.Cardinality())
	if !sameNames(res.Names, nameSet(outB)) {
		return nil, nil, fmt.Errorf("superstar: plans A and B disagree")
	}

	// Plan C.
	if continuous {
		cost, names, err := superstarPlanC(fac)
		if err != nil {
			return nil, nil, err
		}
		res.PlanC = cost
		if !sameNames(res.Names, names) {
			return nil, nil, fmt.Errorf("superstar: plan C disagrees: %d vs %d names", len(names), len(res.Names))
		}
	}

	tab := &Table{
		Title: fmt.Sprintf("Figure 8 / Section 5 — Superstar three ways (|Faculty|=%d rows, continuous=%v, answer=%d members)",
			fac.Cardinality(), continuous, len(res.Names)),
		Header: []string{"plan", "comparisons", "tuples read", "max workspace", "rows sorted", "result rows"},
	}
	tab.Add("A conventional (NL less-than join)", res.PlanA.Comparisons, res.PlanA.TuplesRead, res.PlanA.Workspace, res.PlanA.SortedRows, res.PlanA.Rows)
	tab.Add("B semantic + stream semijoin", res.PlanB.Comparisons, res.PlanB.TuplesRead, res.PlanB.Workspace, res.PlanB.SortedRows, res.PlanB.Rows)
	if continuous {
		tab.Add("C single-scan self semijoin", res.PlanC.Comparisons, res.PlanC.TuplesRead, res.PlanC.Workspace, res.PlanC.SortedRows, res.PlanC.Rows)
	}
	return res, tab, nil
}

// superstarPlanC evaluates the continuous-employment transformation: one
// scan collects the full-rank names and the associate tuples; the
// associate stream, sorted ValidFrom/ValidTo ascending, feeds the
// single-state Contained-semijoin(X,X) of Figure 7; members that reached
// full rank are kept.
func superstarPlanC(fac *relation.Relation) (PlanCost, []string, error) {
	probe := &metrics.Probe{}
	nameIdx := fac.Schema.ColumnIndex("Name")
	rankIdx := fac.Schema.ColumnIndex("Rank")

	fullNames := map[string]bool{}
	var associates []relation.Tuple
	for i, row := range fac.Rows {
		probe.IncReadLeft()
		switch row[rankIdx].AsString() {
		case "Full":
			fullNames[row[nameIdx].AsString()] = true
		case "Associate":
			associates = append(associates, relation.Tuple{
				S:    row[nameIdx].AsString(),
				V:    row[rankIdx],
				Span: fac.Span(i),
			})
		}
	}
	probe.IncPasses()

	order := relation.Order{relation.TSAsc, relation.TEAsc}
	var sortedRows int64
	if !relation.SortedSpans(associates, tupleSpan, order) {
		relation.SortSpans(associates, tupleSpan, order)
		sortedRows = int64(len(associates))
	}

	var names []string
	seen := map[string]bool{}
	err := core.ContainedSelfSemijoin(stream.FromSlice(associates), tupleSpan,
		core.Options{Probe: probe, VerifyOrder: true}, func(t relation.Tuple) {
			probe.IncComparisons(1)
			if fullNames[t.S] && !seen[t.S] {
				seen[t.S] = true
				names = append(names, t.S)
			}
		})
	if err != nil {
		return PlanCost{}, nil, err
	}
	sort.Strings(names)
	return PlanCost{
		Comparisons: probe.Comparisons,
		TuplesRead:  probe.TuplesRead(),
		Workspace:   probe.Workspace(),
		SortedRows:  sortedRows,
		Rows:        len(names),
	}, names, nil
}

// SuperstarContradiction demonstrates the other face of semantic
// optimization: a query whose constraints contradict the chronological
// ordering is answered empty with zero data access.
func SuperstarContradiction(db *engine.DB) (bool, error) {
	col := algebra.Column
	q := &algebra.Select{
		Input: &algebra.Product{
			L: &algebra.Scan{Relation: "Faculty", As: "a"},
			R: &algebra.Scan{Relation: "Faculty", As: "b"},
		},
		Pred: algebra.Predicate{Atoms: []algebra.Atom{
			{L: col("a", "Name"), Op: algebra.EQ, R: col("b", "Name")},
			{L: col("a", "Rank"), Op: algebra.EQ, R: algebra.Const(rankVal("Assistant"))},
			{L: col("b", "Rank"), Op: algebra.EQ, R: algebra.Const(rankVal("Full"))},
			{L: col("b", "ValidTo"), Op: algebra.LT, R: col("a", "ValidFrom")},
		}},
	}
	res, err := optimizer.Optimize(q, db, optimizer.Options{ICs: db.ChronOrders()})
	if err != nil {
		return false, err
	}
	return res.Contradiction, nil
}
