package experiments

import "testing"

// TestServerSweep is a small E26 run: every query completes, the
// server-side admission counter accounts for exactly the client load,
// and nothing is rejected under a quota larger than the client count.
func TestServerSweep(t *testing.T) {
	res, tab, err := ServerSweep(200, []int{1, 4}, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("table has %d rows, want 2:\n%s", len(tab.Rows), tab)
	}
	for _, p := range res.Points {
		if p.Errors != 0 {
			t.Errorf("%d clients: %d queries errored", p.Clients, p.Errors)
		}
		if want := p.Clients * res.QueriesPerClient; p.Queries != want {
			t.Errorf("%d clients completed %d queries, want %d", p.Clients, p.Queries, want)
		}
		if p.Admitted != int64(p.Queries) {
			t.Errorf("%d clients: admission counter %d, completed queries %d",
				p.Clients, p.Admitted, p.Queries)
		}
		if p.Rejected != 0 {
			t.Errorf("%d clients: %d rejections under an ample quota", p.Clients, p.Rejected)
		}
		if p.QPS <= 0 || p.MeanNS <= 0 || p.P99NS < p.MeanNS/2 {
			t.Errorf("%d clients: implausible latency stats %+v", p.Clients, p)
		}
	}
}
