package experiments

import "testing"

func TestParallelExperiment(t *testing.T) {
	res, tab, err := Parallel(800, []int{1, 2, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 || len(tab.Rows) != 3 {
		t.Fatalf("want 3 sweep points, got %d / %d rows", len(res.Points), len(tab.Rows))
	}
	serial := res.Points[0]
	if serial.K != 1 || serial.Speedup != 1 || serial.MeasuredRepl != 0 {
		t.Errorf("serial point malformed: %+v", serial)
	}
	if serial.Rows == 0 {
		t.Error("degenerate experiment: no output rows")
	}
	for _, p := range res.Points[1:] {
		if p.Rows != serial.Rows {
			t.Errorf("k=%d: %d rows, serial has %d", p.K, p.Rows, serial.Rows)
		}
		if p.MeasuredRepl <= 0 || p.PredictedRepl <= 0 {
			t.Errorf("k=%d: replication not reported: %+v", p.K, p)
		}
		if ratio := p.MeasuredRepl / p.PredictedRepl; ratio < 0.3 || ratio > 3 {
			t.Errorf("k=%d: measured %.4f vs predicted %.4f replication", p.K, p.MeasuredRepl, p.PredictedRepl)
		}
		if p.Speedup <= 0 {
			t.Errorf("k=%d: nonpositive speedup %v", p.K, p.Speedup)
		}
	}
}
