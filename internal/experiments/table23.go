package experiments

import (
	"fmt"

	"tdb/internal/catalog"
	"tdb/internal/core"
	ivl "tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/relation"
	"tdb/internal/stream"
	"tdb/internal/workload"
)

// Table2Result carries the measured Table 2 cells.
type Table2Result struct {
	Cells          []Cell
	StatsX, StatsY *catalog.Stats
}

// Table2 reproduces the paper's Table 2: the Overlap-join and
// Overlap-semijoin are streamable only with both inputs sorted ValidFrom
// ascending (or the mirrored ValidTo descending); the join's state is the
// pair of spanning sets (a) and the semijoin needs the input buffers only
// (b). An inappropriate ordering is shown via the fallback.
func Table2(n int, seed int64, policy core.ReadPolicy) (*Table2Result, *Table, error) {
	xs := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 10, Seed: seed}, "x")
	ys := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 10, Seed: seed + 1}, "y")
	sx := catalog.FromSpans(spansOf(xs))
	sy := catalog.FromSpans(spansOf(ys))
	res := &Table2Result{StatsX: sx, StatsY: sy}

	span := tupleSpan
	overlapTheta := func(a, b ivl.Interval) bool { return a.Intersects(b) }

	tab := &Table{
		Title:  fmt.Sprintf("Table 2 — Overlap-join / Overlap-semijoin state vs. sort order (n=%d, policy=%v)", n, policy),
		Header: []string{"X order", "Y order", "operator", "paper", "state hwm", "workspace", "emitted"},
	}
	tab.Note("max concurrency: X=%d Y=%d", sx.MaxConcurrency, sy.MaxConcurrency)

	var firstErr error
	add := func(nameX, nameY, op, paperCase string, probe *metrics.Probe, err error) {
		if firstErr != nil {
			return
		}
		if err != nil {
			firstErr = fmt.Errorf("experiments: table2 %s: %w", op, err)
			return
		}
		res.Cells = append(res.Cells, Cell{
			OrderX: nameX, OrderY: nameY, Operator: op, PaperCase: paperCase,
			StateHWM: probe.StateHighWater, Workspace: probe.Workspace(), Emitted: probe.Emitted,
		})
		tab.Add(nameX, nameY, op, paperCase, probe.StateHighWater, probe.Workspace(), probe.Emitted)
	}

	// The appropriate ordering: both ValidFrom ascending.
	xo := sortedTuples(xs, relation.Order{relation.TSAsc})
	yo := sortedTuples(ys, relation.Order{relation.TSAsc})
	probe := &metrics.Probe{}
	err := core.OverlapJoin(stream.FromSlice(xo), stream.FromSlice(yo), span,
		core.Options{Probe: probe, Policy: policy, LambdaX: sx.Lambda, LambdaY: sy.Lambda},
		func(a, b relation.Tuple) {})
	add("ValidFrom ↑", "ValidFrom ↑", "overlap-join", "(a)", probe, err)

	probe = &metrics.Probe{}
	err = core.OverlapSemijoin(stream.FromSlice(xo), stream.FromSlice(yo), span,
		core.Options{Probe: probe}, func(relation.Tuple) {})
	add("ValidFrom ↑", "ValidFrom ↑", "overlap-semijoin", "(b)", probe, err)

	// The mirrored appropriate ordering: both ValidTo descending.
	xm := sortedTuples(xs, relation.Order{relation.TEDesc})
	ym := sortedTuples(ys, relation.Order{relation.TEDesc})
	probe = &metrics.Probe{}
	err = core.OverlapJoinTEDesc(stream.FromSlice(xm), stream.FromSlice(ym), span,
		core.Options{Probe: probe, Policy: policy}, func(a, b relation.Tuple) {})
	add("ValidTo ↓", "ValidTo ↓", "overlap-join", "(a)", probe, err)

	// An inappropriate ordering, via the buffer-everything fallback.
	xb := sortedTuples(xs, relation.Order{relation.TEAsc})
	probe = &metrics.Probe{}
	err = core.BufferedLoopJoin(stream.FromSlice(xb), stream.FromSlice(yo), span, overlapTheta,
		core.Options{Probe: probe}, func(a, b relation.Tuple) {})
	add("ValidTo ↑", "ValidFrom ↑", "overlap-join", "(*)", probe, err)

	if firstErr != nil {
		return nil, nil, firstErr
	}
	return res, tab, nil
}

// Table3Result carries the measured Table 3 cells.
type Table3Result struct {
	Cells []Cell
	Stats *catalog.Stats
}

// Table3 reproduces the paper's Table 3: the self-semijoins
// Contained-semijoin(X,X) and Contain-semijoin(X,X). With the matching
// primary/secondary ordering the state is a single tuple (case (a),
// Figure 7); with ValidFrom ascending the Contain direction needs the
// overlapping-successor state (case (b)); the remaining combination is
// inappropriate and runs the fallback.
func Table3(n int, seed int64) (*Table3Result, *Table, error) {
	ts := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 15, LongFrac: 0.15, Seed: seed}, "x")
	st := catalog.FromSpans(spansOf(ts))
	res := &Table3Result{Stats: st}

	span := tupleSpan
	containTheta := func(a, b ivl.Interval) bool { return a.ContainsInterval(b) }
	containedTheta := func(a, b ivl.Interval) bool { return containTheta(b, a) }

	tab := &Table{
		Title:  fmt.Sprintf("Table 3 — self semijoins Contained(X,X) / Contain(X,X) (n=%d)", len(ts)),
		Header: []string{"order", "operator", "paper", "state hwm", "workspace", "emitted"},
	}
	tab.Note("max concurrency=%d", st.MaxConcurrency)

	var firstErr error
	add := func(order, op, paperCase string, probe *metrics.Probe, err error) {
		if firstErr != nil {
			return
		}
		if err != nil {
			firstErr = fmt.Errorf("experiments: table3 %s: %w", op, err)
			return
		}
		res.Cells = append(res.Cells, Cell{
			OrderX: order, Operator: op, PaperCase: paperCase,
			StateHWM: probe.StateHighWater, Workspace: probe.Workspace(), Emitted: probe.Emitted,
		})
		tab.Add(order, op, paperCase, probe.StateHighWater, probe.Workspace(), probe.Emitted)
	}

	asc := sortedTuples(ts, relation.Order{relation.TSAsc, relation.TEAsc})
	desc := sortedTuples(ts, relation.Order{relation.TSDesc, relation.TEDesc})

	probe := &metrics.Probe{}
	err := core.ContainedSelfSemijoin(stream.FromSlice(asc), span, core.Options{Probe: probe}, func(relation.Tuple) {})
	add("ValidFrom ↑", "contained-semijoin(X,X)", "(a)", probe, err)

	probe = &metrics.Probe{}
	err = core.ContainSelfSemijoinTSAsc(stream.FromSlice(asc), span, core.Options{Probe: probe}, func(relation.Tuple) {})
	add("ValidFrom ↑", "contain-semijoin(X,X)", "(b)", probe, err)

	probe = &metrics.Probe{}
	err = core.ContainSelfSemijoin(stream.FromSlice(desc), span, core.Options{Probe: probe}, func(relation.Tuple) {})
	add("ValidFrom ↓", "contain-semijoin(X,X)", "(a)", probe, err)

	// Strict containment already excludes the tuple itself, so the plain
	// containee predicate realizes "contained in another tuple".
	probe = &metrics.Probe{}
	err = core.BufferedLoopSemijoin(stream.FromSlice(desc), stream.FromSlice(desc), span,
		containedTheta, core.Options{Probe: probe}, func(relation.Tuple) {})
	add("ValidFrom ↓", "contained-semijoin(X,X)", "–", probe, err)

	if firstErr != nil {
		return nil, nil, firstErr
	}
	return res, tab, nil
}
