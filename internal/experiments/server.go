package experiments

import (
	"context"
	"database/sql"
	"fmt"
	"sort"
	"sync"
	"time"

	_ "tdb/driver" // registers the "tdb" database/sql driver
	"tdb/internal/engine"
	"tdb/internal/obs"
	"tdb/internal/server"
	"tdb/internal/workload"
)

// ServerPoint is one client-count measurement of the E26 concurrent
// network-client sweep.
type ServerPoint struct {
	Clients   int     // concurrent database/sql connections
	Queries   int     // queries completed without error
	Errors    int     // queries that returned an error
	Admitted  int64   // server-side per-tenant admission counter delta
	Rejected  int64   // server-side quota rejections during the point
	QPS       float64 // completed queries per wall second
	MeanNS    int64   // mean per-query latency
	P99NS     int64   // 99th-percentile per-query latency
	ElapsedNS int64   // wall time of the whole point
}

// ServerResult is the E26 document: the sweep plus the run configuration.
type ServerResult struct {
	N                int // Faculty tuples in the served catalog
	QueriesPerClient int
	MaxConcurrent    int // default tenant's admission quota
	Points           []ServerPoint
}

// ServerSweep is experiment E26: one in-process protocol server over a
// Faculty catalog, swept across concurrent database/sql clients. Every
// client alternates direct queries with executions of a shared prepared
// statement (exercising the cached-plan path), all through the public
// driver over real TCP. The per-tenant admission quota stays fixed, so
// the sweep shows where client concurrency saturates the server: QPS
// should rise with clients until the concurrency cap, then hold while
// tail latency grows with queue depth.
func ServerSweep(n int, clients []int, perClient int, seed int64) (*ServerResult, *Table, error) {
	db := engine.NewDB()
	db.MustRegister(workload.Faculty(workload.FacultyConfig{N: n, Seed: seed}))
	if err := db.DeclareChronOrder(RankOrder(false)); err != nil {
		return nil, nil, err
	}
	const maxConcurrent = 16
	reg := obs.NewRegistry()
	srv := server.New(server.Config{DB: db, Registry: reg,
		Tenants: []server.TenantConfig{{Name: "default", MaxConcurrent: maxConcurrent,
			MaxQueue: 256, QueueTimeout: 30 * time.Second}}})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	admitted := reg.Counter("tdb_server_tenant_default_queries_total", "")
	rejected := reg.Counter("tdb_server_tenant_default_rejected_total", "")

	res := &ServerResult{N: n, QueriesPerClient: perClient, MaxConcurrent: maxConcurrent}
	for _, c := range clients {
		admBefore, rejBefore := admitted.Value(), rejected.Value()
		p, err := serverPoint(addr, c, perClient)
		if err != nil {
			return nil, nil, fmt.Errorf("server sweep, %d clients: %w", c, err)
		}
		p.Admitted = admitted.Value() - admBefore
		p.Rejected = rejected.Value() - rejBefore
		res.Points = append(res.Points, p)
	}

	tab := &Table{
		Title: fmt.Sprintf("E26 — concurrent network clients over one server (%d tuples, quota %d)",
			n, maxConcurrent),
		Header: []string{"clients", "queries", "errors", "admitted", "rejected", "qps", "mean", "p99"},
	}
	for _, p := range res.Points {
		tab.Add(p.Clients, p.Queries, p.Errors, p.Admitted, p.Rejected,
			fmt.Sprintf("%.0f", p.QPS),
			time.Duration(p.MeanNS).Round(time.Microsecond).String(),
			time.Duration(p.P99NS).Round(time.Microsecond).String())
	}
	tab.Note("each client alternates ad-hoc queries with a shared prepared statement over the public driver")
	tab.Note("admitted/rejected are the server's per-tenant admission counters across the point")
	return res, tab, nil
}

// serverPoint opens one pool capped at the client count and runs every
// client's query loop concurrently.
func serverPoint(addr string, clients, perClient int) (ServerPoint, error) {
	sdb, err := sql.Open("tdb", "http://"+addr)
	if err != nil {
		return ServerPoint{}, err
	}
	defer func() { _ = sdb.Close() }()
	sdb.SetMaxOpenConns(clients)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	stmt, err := sdb.PrepareContext(ctx,
		`range of f is Faculty retrieve (f.Name, f.ValidFrom) where f.Rank = $1`)
	if err != nil {
		return ServerPoint{}, err
	}
	defer func() { _ = stmt.Close() }()

	ranks := []string{"Assistant", "Associate", "Full"}
	var mu sync.Mutex
	var lats []int64
	errs := 0
	var wg sync.WaitGroup
	start := time.Now() // lint:allow determinism — wall-time measurement, reported as such
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				rank := ranks[(c+q)%len(ranks)]
				qs := time.Now() // lint:allow determinism — wall-time measurement, reported as such
				var rows *sql.Rows
				var qerr error
				if q%2 == 0 {
					rows, qerr = sdb.QueryContext(ctx,
						`range of f is Faculty retrieve (f.Name, f.ValidFrom) where f.Rank = $1`, rank)
				} else {
					rows, qerr = stmt.QueryContext(ctx, rank)
				}
				if qerr == nil {
					for rows.Next() {
					}
					qerr = rows.Err()
					_ = rows.Close()
				}
				mu.Lock()
				if qerr != nil {
					errs++
				} else {
					lats = append(lats, time.Since(qs).Nanoseconds())
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Nanoseconds()

	p := ServerPoint{Clients: clients, Queries: len(lats), Errors: errs, ElapsedNS: elapsed}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum int64
		for _, l := range lats {
			sum += l
		}
		p.MeanNS = sum / int64(len(lats))
		p.P99NS = lats[len(lats)*99/100]
		p.QPS = float64(len(lats)) / (float64(elapsed) / 1e9)
	}
	return p, nil
}
