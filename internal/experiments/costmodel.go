package experiments

import (
	"fmt"

	"tdb/internal/catalog"
	"tdb/internal/core"
	"tdb/internal/metrics"
	"tdb/internal/optimizer"
	"tdb/internal/relation"
	"tdb/internal/stream"
	"tdb/internal/workload"
)

// CostModelRow is one validation point: predicted vs. measured comparisons
// for the stream contain join, plus the plan choice.
type CostModelRow struct {
	N          int
	Predicted  float64
	Measured   int64
	NestedLoop float64
	UseStream  bool
}

// CostModelResult carries the sweep.
type CostModelResult struct {
	Rows []CostModelRow
}

// CostModel validates the Section 6 optimizer statistics end to end: for a
// size sweep, the Little's-law-based comparison estimate of the stream
// contain join is checked against the measured count, and the model's
// stream-vs-nested-loop choice is reported.
func CostModel(sizes []int, seed int64) (*CostModelResult, *Table, error) {
	res := &CostModelResult{}
	tab := &Table{
		Title:  "Section 6 — cost model validation (stream contain-join)",
		Header: []string{"n", "predicted cmp", "measured cmp", "ratio", "nested-loop cmp", "choice"},
	}
	for _, n := range sizes {
		xs := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 12, Seed: seed}, "x")
		ys := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 12, Seed: seed + 1}, "y")
		sx := catalog.FromSpans(spansOf(xs))
		sy := catalog.FromSpans(spansOf(ys))
		est := optimizer.EstimateContainJoin(sx, sy)

		probe := &metrics.Probe{}
		err := core.ContainJoinTSTS(
			stream.FromSlice(sortedTuples(xs, relation.Order{relation.TSAsc})),
			stream.FromSlice(sortedTuples(ys, relation.Order{relation.TSAsc})),
			tupleSpan, core.Options{Probe: probe}, func(a, b relation.Tuple) {})
		if err != nil {
			return nil, nil, err
		}
		row := CostModelRow{
			N: n, Predicted: est.Stream, Measured: probe.Comparisons,
			NestedLoop: est.NestedLoop, UseStream: est.UseStream(),
		}
		res.Rows = append(res.Rows, row)
		choice := "nested-loop"
		if row.UseStream {
			choice = "stream"
		}
		tab.Add(n, fmt.Sprintf("%.0f", row.Predicted), row.Measured,
			fmt.Sprintf("%.2f", float64(row.Measured)/row.Predicted),
			fmt.Sprintf("%.0f", row.NestedLoop), choice)
	}
	return res, tab, nil
}
