package experiments

import (
	"fmt"

	"tdb/internal/core"
	"tdb/internal/metrics"
	"tdb/internal/relation"
	"tdb/internal/stream"
	"tdb/internal/workload"
)

// OrderChoiceRow compares the two streamable Contain-join orderings on one
// workload shape.
type OrderChoiceRow struct {
	YMeanDur float64
	WsTSTS   int64 // Table 1 case (a): both ValidFrom ↑
	WsTSTE   int64 // Table 1 case (b): X ValidFrom ↑, Y ValidTo ↑
	CmpTSTS  int64
	CmpTSTE  int64
	Emitted  int64
}

// OrderChoiceResult carries the sweep.
type OrderChoiceResult struct {
	Rows []OrderChoiceRow
}

// OrderChoice substantiates the abstract's claim that "the optimal sort
// ordering for a query may depend on the statistics of data instances":
// holding X fixed and sweeping Y's mean duration, the advantage of the
// (ValidFrom ↑, ValidTo ↑) ordering over (ValidFrom ↑, ValidFrom ↑) for
// Contain-join varies by large factors — so an optimizer needs the
// Section 6 statistics to rank orderings, not just Table 1's feasibility.
// (Table 3 shows the starker form: for the self semijoins the optimal
// *direction* flips with the operator.)
func OrderChoice(n int, yDurations []float64, seed int64) (*OrderChoiceResult, *Table, error) {
	res := &OrderChoiceResult{}
	tab := &Table{
		Title:  fmt.Sprintf("Abstract / §4.2 — ordering choice depends on data statistics (contain-join, n=%d)", n),
		Header: []string{"E[dur Y]", "(a) TS↑,TS↑ ws", "cmp", "(b) TS↑,TE↑ ws", "cmp", "cmp ratio a/b"},
	}
	xs := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 12, Seed: seed}, "x")
	xTS := sortedTuples(xs, relation.Order{relation.TSAsc})

	for _, dur := range yDurations {
		ys := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: dur, Seed: seed + 1}, "y")

		pa := &metrics.Probe{}
		err := core.ContainJoinTSTS(stream.FromSlice(xTS),
			stream.FromSlice(sortedTuples(ys, relation.Order{relation.TSAsc})),
			tupleSpan, core.Options{Probe: pa}, func(a, b relation.Tuple) {})
		if err != nil {
			return nil, nil, err
		}
		pb := &metrics.Probe{}
		err = core.ContainJoinTSTE(stream.FromSlice(xTS),
			stream.FromSlice(sortedTuples(ys, relation.Order{relation.TEAsc})),
			tupleSpan, core.Options{Probe: pb}, func(a, b relation.Tuple) {})
		if err != nil {
			return nil, nil, err
		}
		if pa.Emitted != pb.Emitted {
			return nil, nil, fmt.Errorf("orderings disagree: %d vs %d pairs", pa.Emitted, pb.Emitted)
		}
		row := OrderChoiceRow{
			YMeanDur: dur,
			WsTSTS:   pa.Workspace(), WsTSTE: pb.Workspace(),
			CmpTSTS: pa.Comparisons, CmpTSTE: pb.Comparisons,
			Emitted: pa.Emitted,
		}
		res.Rows = append(res.Rows, row)
		tab.Add(fmt.Sprintf("%.0f", dur), row.WsTSTS, row.CmpTSTS, row.WsTSTE, row.CmpTSTE,
			fmt.Sprintf("%.2f", float64(row.CmpTSTS)/float64(row.CmpTSTE)))
	}
	tab.Note("both orderings are feasible (Table 1 cases (a)/(b)); their relative cost is a statistics question")
	return res, tab, nil
}
