package experiments

import "testing"

func TestLiveIngestExperiment(t *testing.T) {
	res, tab, err := LiveIngest(150, []float64{1, 5}, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 2 lambdas × 3 standing queries.
	if len(res.Points) != 6 || len(tab.Rows) != 6 {
		t.Fatalf("want 6 sweep points, got %d / %d rows", len(res.Points), len(tab.Rows))
	}
	for _, p := range res.Points {
		if !p.Verified {
			t.Errorf("λ=%g %s: delta contract not verified", p.Lambda, p.Query)
		}
		if p.Deltas == 0 {
			t.Errorf("λ=%g %s: degenerate run, no deltas", p.Lambda, p.Query)
		}
		switch p.Query {
		case "semijoin-before":
			if p.Mode != "batch" || p.Workspace != 0 {
				t.Errorf("before-semijoin should degrade to batch: %+v", p)
			}
		default:
			if p.Mode != "incremental" {
				t.Errorf("%s should run incrementally: %+v", p.Query, p)
			}
			if p.Workspace <= 0 || float64(p.Workspace) > p.Bound {
				t.Errorf("%s: workspace %d outside (0, bound %.0f]", p.Query, p.Workspace, p.Bound)
			}
		}
		if p.RowsPerSec <= 0 {
			t.Errorf("%s: nonpositive ingest rate", p.Query)
		}
	}
}
