package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	tdbdriver "tdb/driver"
	"tdb/internal/engine"
	"tdb/internal/fault"
	"tdb/internal/obs"
	"tdb/internal/relation"
	"tdb/internal/server"
	"tdb/internal/workload"
)

// ResiliencePoint is one client-count measurement of the E27 wire-
// resilience sweep: a fleet of subscriptions fed synchronized delta
// rounds while the delivery path is severed on a fixed schedule.
type ResiliencePoint struct {
	Clients        int   // concurrent driver subscriptions
	Rounds         int   // delta batches each subscription must deliver
	Severs         int   // delivery faults injected across the point
	Resumes        int   // driver auto-resumes observed (must equal Severs)
	Deltas         int   // delta batches delivered across all clients
	SeqViolations  int   // client-side seq-contract violations (must be 0)
	StreamErrors   int   // subscriptions that died instead of resuming
	DupAppends     int   // keyed appends deliberately re-sent
	DedupHits      int64 // server-side dedup-window replays (must equal DupAppends)
	RecoveryMeanNS int64 // mean sever-to-resumed-stream latency
	RecoveryP99NS  int64 // p99 (max at these sample sizes) recovery latency
	ElapsedNS      int64 // wall time of the whole point
}

// ResilienceResult is the E27 document: the sweep plus its chaos
// schedule.
type ResilienceResult struct {
	Rounds     int // delta rounds per point
	SeverEvery int // a delivery sever is armed before every k-th round
	Points     []ResiliencePoint
}

// resilienceSubscribe is the standing query every client admits: the
// canonical F-overlap-G stream.
const resilienceSubscribe = `
range of f is F
range of g is G
subscribe watch (Name=f.Name) where (f overlap g)
`

// ResilienceSweep is experiment E27: one live server, swept across
// concurrent driver subscriptions, with the subscribe delivery path
// severed before every severEvery-th round. Each round's appends are
// ordered so the single G-frontier advance lands last — every
// subscription therefore sees exactly one delta batch per round, and the
// round number IS the stream seq. Every keyed append is deliberately
// sent twice, exercising the server's idempotency window the way an
// at-least-once producer would. The point passes only if delivery stays
// exactly-once under fire: resumes equal severs, dedup hits equal
// duplicate sends, and no client ever observes a seq gap, duplicate, or
// reorder. Recovery latency is the driver-measured wall time from
// detecting the severed stream to the resumed stream's meta event.
func ResilienceSweep(clients []int, rounds, severEvery int, pollMS int64) (*ResilienceResult, *Table, error) {
	if rounds < 1 || severEvery < 1 {
		return nil, nil, fmt.Errorf("resilience sweep: rounds %d, severEvery %d", rounds, severEvery)
	}
	res := &ResilienceResult{Rounds: rounds, SeverEvery: severEvery}
	for _, c := range clients {
		p, err := resiliencePoint(c, rounds, severEvery, pollMS)
		if err != nil {
			return nil, nil, fmt.Errorf("resilience sweep, %d clients: %w", c, err)
		}
		res.Points = append(res.Points, p)
	}

	tab := &Table{
		Title: fmt.Sprintf("E27 — wire-resilience recovery sweep (%d rounds, sever every %d)",
			rounds, severEvery),
		Header: []string{"clients", "deltas", "severs", "resumes", "seqviol", "dups", "dedup", "recover-mean", "recover-p99"},
	}
	for _, p := range res.Points {
		tab.Add(p.Clients, p.Deltas, p.Severs, p.Resumes, p.SeqViolations,
			p.DupAppends, p.DedupHits,
			time.Duration(p.RecoveryMeanNS).Round(time.Microsecond).String(),
			time.Duration(p.RecoveryP99NS).Round(time.Microsecond).String())
	}
	tab.Note("every keyed append is sent twice; dedup must equal dups or the idempotency window leaked")
	tab.Note("resumes must equal severs and seqviol must be 0: delivery stayed exactly-once through every cut")
	return res, tab, nil
}

// resiliencePoint runs one client count: subscribe the fleet, feed the
// rounds with severs on schedule, and account for every delta, resume,
// and dedup replay.
func resiliencePoint(clients, rounds, severEvery int, pollMS int64) (ResiliencePoint, error) {
	db := engine.NewDB()
	db.MustRegister(relation.New("F", workload.FacultySchema))
	db.MustRegister(relation.New("G", workload.FacultySchema))
	reg := obs.NewRegistry()
	srv := server.New(server.Config{DB: db, Registry: reg})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return ResiliencePoint{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	defer fault.Reset()
	dedupHits := reg.Counter("tdb_server_append_dedup_hits_total", "")

	conn, err := tdbdriver.NewConnector("http://" + addr)
	if err != nil {
		return ResiliencePoint{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	type delivery struct {
		seq int64
		err error
	}
	subs := make([]*tdbdriver.Subscription, clients)
	chans := make([]chan delivery, clients)
	for i := range subs {
		sub, err := conn.Subscribe(ctx, resilienceSubscribe, pollMS)
		if err != nil {
			return ResiliencePoint{}, fmt.Errorf("subscribe client %d: %w", i, err)
		}
		defer sub.Close()
		subs[i] = sub
		ch := make(chan delivery, rounds+1)
		chans[i] = ch
		go func(sub *tdbdriver.Subscription, ch chan delivery) {
			for {
				d, err := sub.Next()
				if err != nil {
					ch <- delivery{err: err}
					return
				}
				ch <- delivery{seq: d.Seq}
			}
		}(sub, ch)
	}

	p := ResiliencePoint{Clients: clients, Rounds: rounds}
	prevResumes := make([]int, clients)
	var recoveries []int64
	start := time.Now() // lint:allow determinism — wall-time measurement, reported as such
	for r := 1; r <= rounds; r++ {
		sever := r%severEvery == 0
		if sever {
			if err := fault.Arm("server/subscribe-deliver=error:n=1"); err != nil {
				return ResiliencePoint{}, err
			}
			p.Severs++
		}
		if err := feedRound(ctx, conn, r, &p); err != nil {
			return ResiliencePoint{}, fmt.Errorf("round %d: %w", r, err)
		}
		for i, ch := range chans {
			select {
			case d := <-ch:
				switch {
				case d.err != nil:
					p.StreamErrors++
					return ResiliencePoint{}, fmt.Errorf("round %d client %d: %w", r, i, d.err)
				case d.seq != int64(r):
					p.SeqViolations++
				default:
					p.Deltas++
				}
			case <-time.After(30 * time.Second):
				return ResiliencePoint{}, fmt.Errorf("round %d client %d: no delta within 30s", r, i)
			}
		}
		if sever {
			for i, sub := range subs {
				if st := sub.Stats(); st.Resumes > prevResumes[i] {
					p.Resumes += st.Resumes - prevResumes[i]
					prevResumes[i] = st.Resumes
					recoveries = append(recoveries, int64(st.LastResumeTime))
				}
			}
		}
	}
	p.ElapsedNS = time.Since(start).Nanoseconds()
	p.DedupHits = dedupHits.Value()
	if len(recoveries) > 0 {
		sort.Slice(recoveries, func(i, j int) bool { return recoveries[i] < recoveries[j] })
		var sum int64
		for _, rec := range recoveries {
			sum += rec
		}
		p.RecoveryMeanNS = sum / int64(len(recoveries))
		p.RecoveryP99NS = recoveries[len(recoveries)*99/100]
	}
	return p, nil
}

// feedRound appends one round of the fixture, every append sent twice
// under the same idempotency key. Each round contributes one overlapping
// F × G pair that stays below the frontiers until the NEXT round's
// advancers land — and within a round the single G tuple, the only
// G-frontier advance, lands last. Exactly one pair therefore releases
// per round, at the round's final append: one delta batch per round, and
// the round number is the stream seq, no matter how the poll ticks
// interleave with the operator's feed.
func feedRound(ctx context.Context, conn *tdbdriver.Connector, r int, p *ResiliencePoint) error {
	base := 100 * r
	rows := [][3]any{}
	if r == 1 {
		// The seed pair round 1 releases once its advancers land.
		rows = append(rows,
			[3]any{"F", "alice", [2]int{1, 10}},
			[3]any{"G", "bob", [2]int{2, 8}})
	}
	rows = append(rows,
		[3]any{"F", fmt.Sprintf("iris%d", r), [2]int{base + 60, base + 65}},
		[3]any{"G", fmt.Sprintf("jack%d", r), [2]int{base + 61, base + 66}})
	for _, rw := range rows {
		rel, name, span := rw[0].(string), rw[1].(string), rw[2].([2]int)
		key := fmt.Sprintf("e27-%s-%s", rel, name)
		row := [][]any{{name, "Full", span[0], span[1]}}
		first, err := conn.AppendKeyed(ctx, rel, row, 0, true, key)
		if err != nil {
			return fmt.Errorf("append %s: %w", name, err)
		}
		if first.Appended != 1 {
			return fmt.Errorf("append %s accepted %d rows", name, first.Appended)
		}
		again, err := conn.AppendKeyed(ctx, rel, row, 0, true, key)
		if err != nil {
			return fmt.Errorf("duplicate append %s: %w", name, err)
		}
		if !again.Deduped {
			return fmt.Errorf("duplicate append %s was not deduped", name)
		}
		p.DupAppends++
	}
	return nil
}
