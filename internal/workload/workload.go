// Package workload generates the synthetic temporal data the experiments
// run on: Poisson-arrival interval populations with tunable arrival rate λ
// and duration law (the parameters of the paper's Section 4.2.1 analysis),
// nesting-rich populations for the containment operators, and Faculty
// career histories matching the running example of the paper — with and
// without the continuous-employment assumption of Section 5.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/value"
)

// Config parameterizes an interval population.
type Config struct {
	N int // number of tuples
	// Lambda is the arrival rate: ValidFrom gaps are exponential with
	// mean 1/Lambda chronons, discretized. Defaults to 1.
	Lambda float64
	// MeanDur is the mean lifespan duration in chronons (exponential,
	// minimum 1). Defaults to 10.
	MeanDur float64
	// LongFrac in [0,1) makes the given fraction of tuples ten times
	// longer, thickening the containment structure. Default 0.
	LongFrac float64
	Seed     int64
}

func (c Config) norm() Config {
	if c.Lambda <= 0 {
		c.Lambda = 1
	}
	if c.MeanDur <= 0 {
		c.MeanDur = 10
	}
	return c
}

// Intervals draws a population of N lifespans with Poisson arrivals.
func Intervals(cfg Config) []interval.Interval {
	cfg = cfg.norm()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]interval.Interval, cfg.N)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / cfg.Lambda
		mean := cfg.MeanDur
		if cfg.LongFrac > 0 && rng.Float64() < cfg.LongFrac {
			mean *= 10
		}
		d := int64(math.Ceil(rng.ExpFloat64() * mean))
		if d < 1 {
			d = 1
		}
		start := interval.Time(int64(t))
		out[i] = interval.New(start, start+interval.Time(d))
	}
	return out
}

// Tuples wraps Intervals into canonical 4-tuples with synthetic surrogates.
func Tuples(cfg Config, prefix string) []relation.Tuple {
	ivs := Intervals(cfg)
	out := make([]relation.Tuple, len(ivs))
	for i, iv := range ivs {
		out[i] = relation.Tuple{
			S:    fmt.Sprintf("%s%d", prefix, i),
			V:    value.String_(fmt.Sprintf("v%d", i%7)),
			Span: iv,
		}
	}
	return out
}

// Nested draws a population rich in strict containment: groups of
// concentric lifespans of the given depth. It exercises the self-semijoins
// of Table 3 and the worst-case state of the suboptimal orderings.
func Nested(groups, depth int, seed int64) []interval.Interval {
	rng := rand.New(rand.NewSource(seed))
	var out []interval.Interval
	t := interval.Time(0)
	for g := 0; g < groups; g++ {
		t += interval.Time(1 + rng.Intn(5))
		width := interval.Time(2*depth + 2 + rng.Intn(10))
		lo, hi := t, t+width
		for d := 0; d < depth && lo < hi; d++ {
			out = append(out, interval.New(lo, hi))
			lo++
			hi--
		}
		t += width
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// FacultySchema is the running example's schema
// Faculty(Name, Rank, ValidFrom, ValidTo).
var FacultySchema = relation.MustSchema([]relation.Column{
	{Name: "Name", Kind: value.KindString},
	{Name: "Rank", Kind: value.KindString},
	{Name: "ValidFrom", Kind: value.KindTime},
	{Name: "ValidTo", Kind: value.KindTime},
}, 2, 3)

// Ranks is the chronological ordering of the Rank attribute: an assistant
// professor is promoted only to associate and then to full (Section 2).
var Ranks = []string{"Assistant", "Associate", "Full"}

// FacultyConfig parameterizes career-history generation.
type FacultyConfig struct {
	N int // number of faculty members
	// Continuous makes every promotion immediate (ValidTo_i ==
	// ValidFrom_{i+1}) and every member start as assistant — the
	// continuous-employment assumption of Section 5.
	Continuous bool
	// MeanStay is the mean chronons spent at each rank (default 8).
	MeanStay float64
	// FullFrac is the fraction of members promoted all the way to full
	// professor (default 0.5); the rest stop at assistant or associate.
	FullFrac float64
	Seed     int64
}

func (c FacultyConfig) norm() FacultyConfig {
	if c.MeanStay <= 0 {
		c.MeanStay = 8
	}
	if c.FullFrac <= 0 {
		c.FullFrac = 0.5
	}
	return c
}

// Faculty generates the running example's relation: one row per (member,
// rank) period, respecting the intra-tuple constraint and the chronological
// ordering of ranks. Hire times spread members across the time line so that
// overlap among contemporaries is plentiful.
func Faculty(cfg FacultyConfig) *relation.Relation {
	cfg = cfg.norm()
	rng := rand.New(rand.NewSource(cfg.Seed))
	rel := relation.New("Faculty", FacultySchema)
	for i := 0; i < cfg.N; i++ {
		name := fmt.Sprintf("prof%04d", i)
		t := interval.Time(rng.Intn(4*cfg.N + 1))
		nRanks := 1 + rng.Intn(2)
		if rng.Float64() < cfg.FullFrac {
			nRanks = 3
		}
		for r := 0; r < nRanks; r++ {
			stay := interval.Time(1 + int64(rng.ExpFloat64()*cfg.MeanStay))
			from, to := t, t+stay
			rel.MustInsert(relation.Row{
				value.String_(name),
				value.String_(Ranks[r]),
				value.TimeVal(from),
				value.TimeVal(to),
			})
			t = to
			if !cfg.Continuous && rng.Intn(3) == 0 {
				t += interval.Time(1 + rng.Intn(4)) // a leave between ranks
			}
		}
	}
	return rel
}

// Employee rows for the Figure 4 stream processor: (dept, emp, salary),
// grouped by department.
type Employee struct {
	Dept   string
	Emp    string
	Salary int64
}

// Employees generates nDept departments of up to maxPerDept employees each,
// grouped by department as Figure 4's processor requires.
func Employees(nDept, maxPerDept int, seed int64) []Employee {
	rng := rand.New(rand.NewSource(seed))
	var out []Employee
	for d := 0; d < nDept; d++ {
		dept := fmt.Sprintf("dept%03d", d)
		n := 1 + rng.Intn(maxPerDept)
		for e := 0; e < n; e++ {
			out = append(out, Employee{
				Dept:   dept,
				Emp:    fmt.Sprintf("%s-emp%03d", dept, e),
				Salary: int64(30000 + rng.Intn(90000)),
			})
		}
	}
	return out
}
