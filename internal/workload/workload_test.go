package workload

import (
	"math"
	"testing"

	"tdb/internal/interval"
	"tdb/internal/relation"
)

func TestIntervalsShape(t *testing.T) {
	cfg := Config{N: 5000, Lambda: 2, MeanDur: 15, Seed: 1}
	ivs := Intervals(cfg)
	if len(ivs) != cfg.N {
		t.Fatalf("got %d intervals", len(ivs))
	}
	var durSum float64
	last := interval.Time(-1)
	for _, iv := range ivs {
		if !iv.Valid() {
			t.Fatalf("invalid interval %v", iv)
		}
		if iv.Start < last {
			t.Fatal("arrivals not in ValidFrom order")
		}
		last = iv.Start
		durSum += float64(iv.Duration())
	}
	meanDur := durSum / float64(len(ivs))
	if math.Abs(meanDur-15.5) > 2 { // +0.5 from the ceil discretization
		t.Errorf("mean duration %.2f far from configured 15", meanDur)
	}
	// Arrival rate ≈ λ.
	spanChronons := float64(ivs[len(ivs)-1].Start - ivs[0].Start)
	gotLambda := float64(cfg.N-1) / spanChronons
	if gotLambda < 1.5 || gotLambda > 2.5 {
		t.Errorf("empirical λ %.2f far from configured 2", gotLambda)
	}
}

func TestIntervalsDeterministic(t *testing.T) {
	a := Intervals(Config{N: 50, Seed: 7})
	b := Intervals(Config{N: 50, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
	c := Intervals(Config{N: 50, Seed: 8})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestTuples(t *testing.T) {
	ts := Tuples(Config{N: 10, Seed: 3}, "x")
	if len(ts) != 10 {
		t.Fatalf("got %d tuples", len(ts))
	}
	seen := map[string]bool{}
	for _, tup := range ts {
		if err := tup.Check(); err != nil {
			t.Fatal(err)
		}
		if seen[tup.S] {
			t.Fatalf("duplicate surrogate %s", tup.S)
		}
		seen[tup.S] = true
	}
}

func TestNested(t *testing.T) {
	ivs := Nested(20, 5, 9)
	if len(ivs) != 100 {
		t.Fatalf("got %d intervals, want 100", len(ivs))
	}
	// Each group contributes a depth-5 chain: at least 4 strictly
	// contained intervals per group.
	contained := 0
	for _, a := range ivs {
		for _, b := range ivs {
			if a != b && b.Start < a.Start && a.End < b.End {
				contained++
				break
			}
		}
	}
	if contained < 20*4 {
		t.Errorf("only %d contained intervals; nesting too thin", contained)
	}
}

func TestFacultyConstraints(t *testing.T) {
	for _, continuous := range []bool{false, true} {
		rel := Faculty(FacultyConfig{N: 60, Continuous: continuous, Seed: 4})
		if err := rel.Check(); err != nil {
			t.Fatal(err)
		}
		// Group rows per member, check chronological rank ordering.
		rankIdx := map[string]int{"Assistant": 0, "Associate": 1, "Full": 2}
		type period struct {
			rank     int
			from, to interval.Time
		}
		byName := map[string][]period{}
		for i, row := range rel.Rows {
			sp := rel.Span(i)
			byName[row[0].AsString()] = append(byName[row[0].AsString()], period{
				rank: rankIdx[row[1].AsString()], from: sp.Start, to: sp.End,
			})
		}
		full := 0
		for name, ps := range byName {
			for i := 1; i < len(ps); i++ {
				if ps[i].rank != ps[i-1].rank+1 {
					t.Fatalf("%s: rank order violated", name)
				}
				if ps[i].from < ps[i-1].to {
					t.Fatalf("%s: overlapping rank periods", name)
				}
				if continuous && ps[i].from != ps[i-1].to {
					t.Fatalf("%s: gap despite continuous employment", name)
				}
			}
			if ps[0].rank != 0 {
				t.Fatalf("%s: career does not start as Assistant", name)
			}
			if len(ps) == 3 {
				full++
			}
		}
		if full == 0 {
			t.Error("no member reaches Full: Superstar query would be empty")
		}
	}
}

func TestEmployeesGrouped(t *testing.T) {
	emps := Employees(10, 8, 5)
	if len(emps) < 10 {
		t.Fatalf("too few employees: %d", len(emps))
	}
	seen := map[string]bool{}
	cur := ""
	for _, e := range emps {
		if e.Dept != cur {
			if seen[e.Dept] {
				t.Fatalf("department %s not contiguous", e.Dept)
			}
			seen[e.Dept] = true
			cur = e.Dept
		}
		if e.Salary < 30000 {
			t.Fatalf("salary out of range: %d", e.Salary)
		}
	}
	if len(seen) != 10 {
		t.Errorf("got %d departments, want 10", len(seen))
	}
}

// The generated relation round-trips through the 4-tuple view used by the
// stream algorithms.
func TestFacultySpans(t *testing.T) {
	rel := Faculty(FacultyConfig{N: 5, Seed: 11})
	for i := range rel.Rows {
		if !rel.Span(i).Valid() {
			t.Fatalf("row %d has invalid span", i)
		}
	}
	if rel.Schema != FacultySchema {
		t.Error("unexpected schema")
	}
	_ = relation.Order{relation.TSAsc} // keep the import honest
}
