package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValid(t *testing.T) {
	cases := []struct {
		iv   Interval
		want bool
	}{
		{New(0, 1), true},
		{New(5, 10), true},
		{New(-3, 7), true},
		{New(0, Forever), true},
		{New(3, 3), false},  // empty
		{New(10, 2), false}, // reversed
		{New(MinTime, 0), false},
		{New(0, MaxTime), false},
	}
	for _, c := range cases {
		if got := c.iv.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.iv, got, c.want)
		}
		if err := c.iv.Check(); (err == nil) != c.want {
			t.Errorf("Check(%v) = %v, want error=%v", c.iv, err, !c.want)
		}
	}
}

func TestDuration(t *testing.T) {
	if d := New(3, 10).Duration(); d != 7 {
		t.Errorf("Duration = %d, want 7", d)
	}
	if d := New(-5, 5).Duration(); d != 10 {
		t.Errorf("Duration = %d, want 10", d)
	}
}

func TestContainsAndSpans(t *testing.T) {
	iv := New(10, 20)
	for _, c := range []struct {
		t              Time
		contains, span bool
	}{
		{9, false, false},
		{10, true, false}, // endpoint included in lifespan, not spanned
		{11, true, true},
		{19, true, true},
		{20, false, false}, // half-open
		{21, false, false},
	} {
		if got := iv.Contains(c.t); got != c.contains {
			t.Errorf("Contains(%d) = %v, want %v", c.t, got, c.contains)
		}
		if got := iv.Spans(c.t); got != c.span {
			t.Errorf("Spans(%d) = %v, want %v", c.t, got, c.span)
		}
	}
}

func TestStringForm(t *testing.T) {
	if s := New(1, 5).String(); s != "[1,5)" {
		t.Errorf("String = %q", s)
	}
	if s := New(1, Forever).String(); s != "[1,∞)" {
		t.Errorf("String = %q", s)
	}
}

// Figure 2 worked examples: one canonical witness per relationship.
func TestFigure2Witnesses(t *testing.T) {
	type wit struct {
		rel  Relationship
		x, y Interval
	}
	wits := []wit{
		{RelEqual, New(2, 6), New(2, 6)},
		{RelMeets, New(2, 6), New(6, 9)},
		{RelStarts, New(2, 4), New(2, 9)},
		{RelFinishes, New(5, 9), New(2, 9)},
		{RelDuring, New(4, 6), New(2, 9)},
		{RelOverlaps, New(2, 6), New(4, 9)},
		{RelBefore, New(2, 4), New(6, 9)},
		{RelMetBy, New(6, 9), New(2, 6)},
		{RelStartedBy, New(2, 9), New(2, 4)},
		{RelFinishedBy, New(2, 9), New(5, 9)},
		{RelContains, New(2, 9), New(4, 6)},
		{RelOverlappedBy, New(4, 9), New(2, 6)},
		{RelAfter, New(6, 9), New(2, 4)},
	}
	if len(wits) != NumRelationships {
		t.Fatalf("have %d witnesses, want %d", len(wits), NumRelationships)
	}
	for _, w := range wits {
		if !w.rel.Holds(w.x, w.y) {
			t.Errorf("%v.Holds(%v, %v) = false, want true", w.rel, w.x, w.y)
		}
		if got := Classify(w.x, w.y); got != w.rel {
			t.Errorf("Classify(%v, %v) = %v, want %v", w.x, w.y, got, w.rel)
		}
		// No other relationship may hold for the same pair.
		for _, other := range Relationships() {
			if other != w.rel && other.Holds(w.x, w.y) {
				t.Errorf("%v and %v both hold for (%v, %v)", w.rel, other, w.x, w.y)
			}
		}
	}
}

func randInterval(r *rand.Rand) Interval {
	s := Time(r.Intn(40))
	d := Time(1 + r.Intn(40))
	return Interval{Start: s, End: s + d}
}

// Property: exactly one of the thirteen relationships holds between any two
// valid intervals, and it is the one Classify reports.
func TestExactlyOneRelationship(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randInterval(r), randInterval(r)
		var holding []Relationship
		for _, rel := range Relationships() {
			if rel.Holds(x, y) {
				holding = append(holding, rel)
			}
		}
		return len(holding) == 1 && holding[0] == Classify(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: the explicit constraint conjunction of Figure 2 agrees with the
// relationship predicate.
func TestConstraintsMatchPredicates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randInterval(r), randInterval(r)
		for _, rel := range Relationships() {
			if rel.Holds(x, y) != rel.EvalConstraints(x, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: X r Y ⇔ Y r⁻¹ X, and inversion is an involution.
func TestInverse(t *testing.T) {
	for _, rel := range Relationships() {
		if rel.Inverse().Inverse() != rel {
			t.Errorf("Inverse(Inverse(%v)) = %v", rel, rel.Inverse().Inverse())
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randInterval(r), randInterval(r)
		for _, rel := range Relationships() {
			if rel.Holds(x, y) != rel.Inverse().Holds(y, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: the general overlap (Intersects) holds exactly when the Allen
// relationship is one of the "sharing" relationships — footnote 6 of the
// paper: overlap in the TQuel sense also covers equal, starts, finishes,
// during (and their inverses and Allen's strict overlaps).
func TestIntersectsCoversSharingRelationships(t *testing.T) {
	sharing := map[Relationship]bool{
		RelEqual: true, RelStarts: true, RelStartedBy: true,
		RelFinishes: true, RelFinishedBy: true, RelDuring: true,
		RelContains: true, RelOverlaps: true, RelOverlappedBy: true,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randInterval(r), randInterval(r)
		return x.Intersects(y) == sharing[Classify(x, y)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: mirroring preserves "during" and "contains", swaps before/after,
// and maps start order to reverse end order. This is the Table 1 symmetry.
func TestMirrorSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randInterval(r), randInterval(r)
		mx, my := x.Mirror(), y.Mirror()
		if !mx.Valid() || !my.Valid() {
			return false
		}
		if x.During(y) != mx.During(my) {
			return false
		}
		if x.ContainsInterval(y) != mx.ContainsInterval(my) {
			return false
		}
		if x.Before(y) != mx.After(my) {
			return false
		}
		if x.Intersects(y) != mx.Intersects(my) {
			return false
		}
		// Sorting by TS ascending on mirrored data is sorting by TE
		// descending on the original.
		if (mx.Start < my.Start) != (x.End > y.End) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestMirrorInvolution(t *testing.T) {
	f := func(s int32, d uint8) bool {
		iv := Interval{Start: Time(s), End: Time(s) + Time(d%100) + 1}
		return iv.Mirror().Mirror() == iv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectionAndUnion(t *testing.T) {
	a, b := New(2, 8), New(5, 12)
	got, ok := a.Intersection(b)
	if !ok || got != New(5, 8) {
		t.Errorf("Intersection = %v,%v", got, ok)
	}
	if _, ok := New(0, 2).Intersection(New(2, 4)); ok {
		t.Error("meeting intervals must not intersect (half-open)")
	}
	u, ok := a.Union(b)
	if !ok || u != New(2, 12) {
		t.Errorf("Union = %v,%v", u, ok)
	}
	u, ok = New(0, 2).Union(New(2, 4))
	if !ok || u != New(0, 4) {
		t.Errorf("Union of meeting intervals = %v,%v", u, ok)
	}
	if _, ok := New(0, 2).Union(New(5, 9)); ok {
		t.Error("disjoint non-meeting intervals must not union")
	}
}

// Intersection is symmetric, contained in both operands, and idempotent.
func TestIntersectionProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randInterval(r), randInterval(r)
		i1, ok1 := x.Intersection(y)
		i2, ok2 := y.Intersection(x)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		if i1 != i2 || !i1.Valid() {
			return false
		}
		within := func(in, out Interval) bool {
			return out.Start <= in.Start && in.End <= out.End
		}
		if !within(i1, x) || !within(i1, y) {
			return false
		}
		self, _ := i1.Intersection(i1)
		return self == i1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestConstraintString(t *testing.T) {
	c := Constraint{TS, OpLT, TE}
	if s := c.String(); s != "X.TS<Y.TE" {
		t.Errorf("String = %q", s)
	}
	c = Constraint{TE, OpEQ, TS}
	if s := c.String(); s != "X.TE=Y.TS" {
		t.Errorf("String = %q", s)
	}
	c = Constraint{TS, OpGT, TS}
	if s := c.String(); s != "X.TS>Y.TS" {
		t.Errorf("String = %q", s)
	}
}

func TestRelationshipString(t *testing.T) {
	if RelDuring.String() != "during" || RelOverlappedBy.String() != "overlapped-by" {
		t.Error("unexpected relationship names")
	}
	bogus := Relationship(200)
	if bogus.String() == "" {
		t.Error("bogus relationship must still render")
	}
}

func TestHoldsPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid relationship")
		}
	}()
	Relationship(99).Holds(New(0, 1), New(0, 1))
}
