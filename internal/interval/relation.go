package interval

import "fmt"

// Relationship enumerates Allen's thirteen elementary relationships between
// two intervals (paper Figure 2). Exactly one relationship holds between any
// two valid intervals; Classify computes it.
type Relationship uint8

// The thirteen relationships. The first seven are the operators the paper
// lists; the remaining six are their inverses.
const (
	RelEqual Relationship = iota
	RelMeets
	RelStarts
	RelFinishes
	RelDuring
	RelOverlaps
	RelBefore
	RelMetBy
	RelStartedBy
	RelFinishedBy
	RelContains
	RelOverlappedBy
	RelAfter
	numRelationships
)

// NumRelationships is the number of elementary relationships (13).
const NumRelationships = int(numRelationships)

var relNames = [...]string{
	RelEqual:        "equal",
	RelMeets:        "meets",
	RelStarts:       "starts",
	RelFinishes:     "finishes",
	RelDuring:       "during",
	RelOverlaps:     "overlaps",
	RelBefore:       "before",
	RelMetBy:        "met-by",
	RelStartedBy:    "started-by",
	RelFinishedBy:   "finished-by",
	RelContains:     "contains",
	RelOverlappedBy: "overlapped-by",
	RelAfter:        "after",
}

// String returns the conventional name of the relationship.
func (r Relationship) String() string {
	if int(r) < len(relNames) {
		return relNames[r]
	}
	return fmt.Sprintf("Relationship(%d)", uint8(r))
}

// Inverse returns the relationship r⁻¹ such that X r Y ⇔ Y r⁻¹ X.
// Equal is its own inverse.
func (r Relationship) Inverse() Relationship {
	switch r {
	case RelEqual:
		return RelEqual
	case RelMeets:
		return RelMetBy
	case RelMetBy:
		return RelMeets
	case RelStarts:
		return RelStartedBy
	case RelStartedBy:
		return RelStarts
	case RelFinishes:
		return RelFinishedBy
	case RelFinishedBy:
		return RelFinishes
	case RelDuring:
		return RelContains
	case RelContains:
		return RelDuring
	case RelOverlaps:
		return RelOverlappedBy
	case RelOverlappedBy:
		return RelOverlaps
	case RelBefore:
		return RelAfter
	case RelAfter:
		return RelBefore
	}
	// lint:allow panic — unreachable: Relationship is a closed enum, the switch is exhaustive
	panic(fmt.Sprintf("interval: invalid relationship %d", uint8(r)))
}

// Holds evaluates the relationship predicate X r Y for the receiver r.
func (r Relationship) Holds(x, y Interval) bool {
	switch r {
	case RelEqual:
		return x.Equal(y)
	case RelMeets:
		return x.Meets(y)
	case RelStarts:
		return x.Starts(y)
	case RelFinishes:
		return x.Finishes(y)
	case RelDuring:
		return x.During(y)
	case RelOverlaps:
		return x.Overlaps(y)
	case RelBefore:
		return x.Before(y)
	case RelMetBy:
		return x.MetBy(y)
	case RelStartedBy:
		return x.StartedBy(y)
	case RelFinishedBy:
		return x.FinishedBy(y)
	case RelContains:
		return x.ContainsInterval(y)
	case RelOverlappedBy:
		return x.OverlappedBy(y)
	case RelAfter:
		return x.After(y)
	}
	// lint:allow panic — unreachable: Relationship is a closed enum, the switch is exhaustive
	panic(fmt.Sprintf("interval: invalid relationship %d", uint8(r)))
}

// Relationships returns all thirteen relationships in declaration order.
func Relationships() []Relationship {
	rs := make([]Relationship, NumRelationships)
	for i := range rs {
		rs[i] = Relationship(i)
	}
	return rs
}

// Classify returns the unique elementary relationship that holds between
// two valid intervals. It is the exhaustive-case oracle used by the tests
// of the predicate expander and by the Figure 2 harness.
func Classify(x, y Interval) Relationship {
	switch {
	case x.End < y.Start:
		return RelBefore
	case y.End < x.Start:
		return RelAfter
	case x.End == y.Start:
		return RelMeets
	case y.End == x.Start:
		return RelMetBy
	}
	// The lifespans share at least one chronon.
	switch {
	case x.Start == y.Start && x.End == y.End:
		return RelEqual
	case x.Start == y.Start:
		if x.End < y.End {
			return RelStarts
		}
		return RelStartedBy
	case x.End == y.End:
		if x.Start > y.Start {
			return RelFinishes
		}
		return RelFinishedBy
	case x.Start > y.Start && x.End < y.End:
		return RelDuring
	case y.Start > x.Start && y.End < x.End:
		return RelContains
	case x.Start < y.Start:
		return RelOverlaps
	default:
		return RelOverlappedBy
	}
}

// Constraint describes a relationship as the conjunction of endpoint
// (in)equalities in the "Explicit Constraints" column of Figure 2. Each
// atom compares one endpoint of X with one endpoint of Y.
type Constraint struct {
	Left  Endpoint // endpoint of X
	Op    CompareOp
	Right Endpoint // endpoint of Y
}

// Endpoint identifies one of the two temporal attributes of an operand.
type Endpoint uint8

// The two endpoints: TS abbreviates ValidFrom and TE ValidTo, following the
// paper.
const (
	TS Endpoint = iota // ValidFrom
	TE                 // ValidTo
)

// String returns "TS" or "TE".
func (e Endpoint) String() string {
	if e == TS {
		return "TS"
	}
	return "TE"
}

// CompareOp is the comparison operator of a constraint atom.
type CompareOp uint8

// The comparison operators occurring in Figure 2.
const (
	OpEQ CompareOp = iota // =
	OpLT                  // <
	OpGT                  // >
)

// String returns the operator symbol.
func (op CompareOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpLT:
		return "<"
	default:
		return ">"
	}
}

// String renders the atom as e.g. "X.TS<Y.TE".
func (c Constraint) String() string {
	return fmt.Sprintf("X.%s%sY.%s", c.Left, c.Op, c.Right)
}

// Eval evaluates the atom against concrete intervals.
func (c Constraint) Eval(x, y Interval) bool {
	l := endpointValue(x, c.Left)
	r := endpointValue(y, c.Right)
	switch c.Op {
	case OpEQ:
		return l == r
	case OpLT:
		return l < r
	default:
		return l > r
	}
}

func endpointValue(iv Interval, e Endpoint) Time {
	if e == TS {
		return iv.Start
	}
	return iv.End
}

// Constraints returns the explicit constraint conjunction of Figure 2 for
// the relationship, in the paper's order. Inverse relationships return the
// constraints of their inverse with the operands exchanged.
func (r Relationship) Constraints() []Constraint {
	switch r {
	case RelEqual:
		return []Constraint{{TS, OpEQ, TS}, {TE, OpEQ, TE}}
	case RelMeets:
		return []Constraint{{TE, OpEQ, TS}}
	case RelStarts:
		return []Constraint{{TS, OpEQ, TS}, {TE, OpLT, TE}}
	case RelFinishes:
		return []Constraint{{TE, OpEQ, TE}, {TS, OpGT, TS}}
	case RelDuring:
		return []Constraint{{TS, OpGT, TS}, {TE, OpLT, TE}}
	case RelOverlaps:
		return []Constraint{{TS, OpLT, TS}, {TE, OpGT, TS}, {TE, OpLT, TE}}
	case RelBefore:
		return []Constraint{{TE, OpLT, TS}}
	case RelMetBy:
		return []Constraint{{TS, OpEQ, TE}}
	case RelStartedBy:
		return []Constraint{{TS, OpEQ, TS}, {TE, OpGT, TE}}
	case RelFinishedBy:
		return []Constraint{{TE, OpEQ, TE}, {TS, OpLT, TS}}
	case RelContains:
		return []Constraint{{TS, OpLT, TS}, {TE, OpGT, TE}}
	case RelOverlappedBy:
		return []Constraint{{TS, OpGT, TS}, {TS, OpLT, TE}, {TE, OpGT, TE}}
	case RelAfter:
		return []Constraint{{TS, OpGT, TE}}
	}
	// lint:allow panic — unreachable: Relationship is a closed enum, the switch is exhaustive
	panic(fmt.Sprintf("interval: invalid relationship %d", uint8(r)))
}

// EvalConstraints evaluates the full conjunction for the relationship; it
// must agree with Holds for all valid intervals (property-tested).
func (r Relationship) EvalConstraints(x, y Interval) bool {
	for _, c := range r.Constraints() {
		if !c.Eval(x, y) {
			return false
		}
	}
	return true
}
