package interval

// This file implements the composition operation of Allen's interval
// algebra [All83], the paper's source for the thirteen relationships:
// given X r1 Y and Y r2 Z, Compose(r1, r2) is the exact set of
// relationships possible between X and Z. A temporal optimizer can use it
// to propagate operator knowledge across joins (if f1 is during f3 and f3
// is before f2, then f1 is before f2) without expanding to inequalities.
//
// The 13×13 table is derived once, at package initialization, by
// exhaustive enumeration of endpoint orderings: every relationship triple
// (r1, r2, result) is realizable with interval endpoints drawn from a
// small grid, because each relationship constrains only the relative order
// of at most eight endpoint values. A grid of 13 chronons therefore
// witnesses every possible configuration; the derivation is re-verified
// against random instances by the tests.

// RelationshipSet is a bitset over the thirteen relationships.
type RelationshipSet uint16

// Has reports membership.
func (s RelationshipSet) Has(r Relationship) bool { return s&(1<<uint(r)) != 0 }

// Add returns the set with r included.
func (s RelationshipSet) Add(r Relationship) RelationshipSet { return s | (1 << uint(r)) }

// Len returns the number of members.
func (s RelationshipSet) Len() int {
	n := 0
	for i := 0; i < NumRelationships; i++ {
		if s.Has(Relationship(i)) {
			n++
		}
	}
	return n
}

// Members lists the relationships in declaration order.
func (s RelationshipSet) Members() []Relationship {
	var out []Relationship
	for i := 0; i < NumRelationships; i++ {
		if s.Has(Relationship(i)) {
			out = append(out, Relationship(i))
		}
	}
	return out
}

// String renders the set as "{during, before}".
func (s RelationshipSet) String() string {
	out := "{"
	for i, r := range s.Members() {
		if i > 0 {
			out += ", "
		}
		out += r.String()
	}
	return out + "}"
}

// FullSet returns the set of all thirteen relationships.
func FullSet() RelationshipSet { return (1 << NumRelationships) - 1 }

var composeTable [NumRelationships][NumRelationships]RelationshipSet

func init() {
	// Enumerate all valid intervals over a small grid and accumulate the
	// witnessed compositions. The grid must offer enough chronons that
	// every ordering of the six distinct endpoints of (X, Y, Z) appears;
	// 13 points are ample (6 endpoints need ≤ 6 distinct values plus
	// strict gaps, and before/after need a separating chronon).
	const maxT = 13
	var ivs []Interval
	for s := Time(0); s < maxT; s++ {
		for e := s + 1; e <= maxT; e++ {
			ivs = append(ivs, Interval{Start: s, End: e})
		}
	}
	for _, x := range ivs {
		for _, y := range ivs {
			r1 := Classify(x, y)
			for _, z := range ivs {
				r2 := Classify(y, z)
				composeTable[r1][r2] = composeTable[r1][r2].Add(Classify(x, z))
			}
		}
	}
}

// Compose returns the set of relationships possible between X and Z given
// X r1 Y and Y r2 Z.
func Compose(r1, r2 Relationship) RelationshipSet {
	return composeTable[r1][r2]
}

// ComposeSets lifts composition to sets: the union of the compositions of
// all member pairs, for chaining constraint propagation.
func ComposeSets(s1, s2 RelationshipSet) RelationshipSet {
	var out RelationshipSet
	for _, a := range s1.Members() {
		for _, b := range s2.Members() {
			out |= Compose(a, b)
		}
	}
	return out
}
