package interval

import "testing"

// Exhaustive verification over every pair of valid intervals on a small
// grid: exactly one relationship holds, it matches Classify, the explicit
// constraints agree, inverses invert, and the general overlap coincides
// with a shared chronon existing.
func TestExhaustiveSmallGrid(t *testing.T) {
	const maxT = 7
	var all []Interval
	for s := Time(0); s < maxT; s++ {
		for e := s + 1; e <= maxT; e++ {
			all = append(all, New(s, e))
		}
	}
	sharesChronon := func(x, y Interval) bool {
		for c := Time(0); c < maxT; c++ {
			if x.Contains(c) && y.Contains(c) {
				return true
			}
		}
		return false
	}
	pairs := 0
	for _, x := range all {
		for _, y := range all {
			pairs++
			holding := -1
			for _, rel := range Relationships() {
				if rel.Holds(x, y) {
					if holding >= 0 {
						t.Fatalf("(%v,%v): both %v and %v hold", x, y, Relationship(holding), rel)
					}
					holding = int(rel)
				}
				if rel.Holds(x, y) != rel.EvalConstraints(x, y) {
					t.Fatalf("(%v,%v): %v constraints disagree", x, y, rel)
				}
				if rel.Holds(x, y) != rel.Inverse().Holds(y, x) {
					t.Fatalf("(%v,%v): %v inverse disagrees", x, y, rel)
				}
			}
			if holding < 0 {
				t.Fatalf("(%v,%v): no relationship holds", x, y)
			}
			if got := Classify(x, y); got != Relationship(holding) {
				t.Fatalf("(%v,%v): Classify=%v, holds=%v", x, y, got, Relationship(holding))
			}
			if x.Intersects(y) != sharesChronon(x, y) {
				t.Fatalf("(%v,%v): Intersects=%v, shared chronon=%v",
					x, y, x.Intersects(y), sharesChronon(x, y))
			}
			// Intersection is exactly the shared chronons.
			if iv, ok := x.Intersection(y); ok {
				for c := Time(-1); c <= maxT; c++ {
					if iv.Contains(c) != (x.Contains(c) && y.Contains(c)) {
						t.Fatalf("(%v,%v): intersection %v wrong at %d", x, y, iv, c)
					}
				}
			}
		}
	}
	if pairs != len(all)*len(all) {
		t.Fatalf("pairs = %d", pairs)
	}
}
