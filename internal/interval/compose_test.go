package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Soundness on instances far beyond the derivation grid: for random
// (x, y, z), Classify(x, z) must be a member of
// Compose(Classify(x,y), Classify(y,z)).
func TestComposeSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Interval {
			s := Time(rng.Intn(2000) - 1000)
			return New(s, s+Time(1+rng.Intn(500)))
		}
		x, y, z := mk(), mk(), mk()
		return Compose(Classify(x, y), Classify(y, z)).Has(Classify(x, z))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Spot checks against Allen's published table.
func TestComposeKnownEntries(t *testing.T) {
	cases := []struct {
		r1, r2 Relationship
		want   []Relationship
	}{
		// before ∘ before = {before}.
		{RelBefore, RelBefore, []Relationship{RelBefore}},
		// during ∘ before = {before}.
		{RelDuring, RelBefore, []Relationship{RelBefore}},
		// during ∘ during = {during}.
		{RelDuring, RelDuring, []Relationship{RelDuring}},
		// meets ∘ meets = {before}.
		{RelMeets, RelMeets, []Relationship{RelBefore}},
		// equal is the identity.
		{RelEqual, RelOverlaps, []Relationship{RelOverlaps}},
		{RelOverlaps, RelEqual, []Relationship{RelOverlaps}},
		// contains ∘ during = everything except... (Allen: "full" for
		// during∘contains is the 9 sharing + before/after/meets/met-by =
		// all 13); check contains∘during = the five "concur" relations
		// plus equal... verified against enumeration by construction, so
		// here assert only the well-known singletons above and the
		// identity row below.
	}
	for _, c := range cases {
		got := Compose(c.r1, c.r2)
		if got.Len() != len(c.want) {
			t.Errorf("Compose(%v, %v) = %v, want %v", c.r1, c.r2, got, c.want)
			continue
		}
		for _, w := range c.want {
			if !got.Has(w) {
				t.Errorf("Compose(%v, %v) = %v missing %v", c.r1, c.r2, got, w)
			}
		}
	}
	// Equal composed with anything is that thing, both sides.
	for _, r := range Relationships() {
		if got := Compose(RelEqual, r); got.Len() != 1 || !got.Has(r) {
			t.Errorf("equal∘%v = %v", r, got)
		}
		if got := Compose(r, RelEqual); got.Len() != 1 || !got.Has(r) {
			t.Errorf("%v∘equal = %v", r, got)
		}
	}
	// during ∘ contains is the famous full-set entry.
	if got := Compose(RelDuring, RelContains); got != FullSet() {
		t.Errorf("during∘contains = %v (%d members), want all 13", got, got.Len())
	}
}

// Every composition entry is non-empty and every claimed member has an
// explicit witness on a slightly larger grid (completeness of the
// derivation).
func TestComposeCompleteOnLargerGrid(t *testing.T) {
	const maxT = 16
	var ivs []Interval
	for s := Time(0); s < maxT; s++ {
		for e := s + 1; e <= maxT; e++ {
			ivs = append(ivs, New(s, e))
		}
	}
	var witnessed [NumRelationships][NumRelationships]RelationshipSet
	for _, x := range ivs {
		for _, y := range ivs {
			r1 := Classify(x, y)
			for _, z := range ivs {
				witnessed[r1][Classify(y, z)] =
					witnessed[r1][Classify(y, z)].Add(Classify(x, z))
			}
		}
	}
	for i := 0; i < NumRelationships; i++ {
		for j := 0; j < NumRelationships; j++ {
			got := Compose(Relationship(i), Relationship(j))
			if got.Len() == 0 {
				t.Fatalf("empty composition %v∘%v", Relationship(i), Relationship(j))
			}
			if got != witnessed[i][j] {
				t.Errorf("%v∘%v: table %v vs larger-grid %v",
					Relationship(i), Relationship(j), got, witnessed[i][j])
			}
		}
	}
}

func TestRelationshipSetOps(t *testing.T) {
	var s RelationshipSet
	s = s.Add(RelDuring).Add(RelBefore).Add(RelDuring)
	if s.Len() != 2 || !s.Has(RelDuring) || s.Has(RelAfter) {
		t.Errorf("set ops wrong: %v", s)
	}
	if s.String() != "{during, before}" {
		t.Errorf("String = %q", s.String())
	}
	if FullSet().Len() != 13 {
		t.Errorf("FullSet = %d members", FullSet().Len())
	}
	u := ComposeSets(s, FullSet())
	if u.Len() == 0 {
		t.Error("ComposeSets empty")
	}
}
