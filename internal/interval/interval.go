// Package interval implements the temporal domain of the paper: time as a
// sequence of discrete, totally ordered chronons, half-open validity
// intervals [ValidFrom, ValidTo), and the thirteen elementary interval
// relationships of Allen (paper Figure 2) together with the more general
// TQuel-style "overlap" used by the Superstar query.
//
// Every relationship is defined purely by endpoint (in)equalities, exactly
// as the "Explicit Constraints" column of Figure 2 prescribes; the
// relationship predicates here are the ground truth that the query
// optimizer's predicate expansion (internal/optimizer) and the stream
// algorithms (internal/core) are tested against.
package interval

import (
	"fmt"
	"math"
)

// Time is a chronon: one point of the discrete, totally ordered time line
// Time = {t0, t1, ..., now}. The paper treats the sequence as isomorphic to
// the natural numbers and leaves the unit unspecified; we use int64 so that
// arithmetic on timestamps (gap estimation, Little's-law workspace
// prediction) is exact.
type Time int64

// Sentinel chronons. MinTime and MaxTime are reserved and never appear as
// endpoints of a valid interval; Forever is the conventional ValidTo of a
// tuple that is current "until changed".
const (
	MinTime Time = math.MinInt64
	MaxTime Time = math.MaxInt64
	Forever Time = math.MaxInt64 - 1
)

// Interval is a half-open lifespan [Start, End): the object carries the
// associated value at every chronon t with Start <= t < End. Start plays the
// role of the paper's ValidFrom/TS and End the role of ValidTo/TE.
type Interval struct {
	Start Time // ValidFrom (TS)
	End   Time // ValidTo (TE)
}

// New returns the interval [start, end). It does not validate; use Valid or
// Check when the endpoints come from untrusted input.
func New(start, end Time) Interval { return Interval{Start: start, End: end} }

// Valid reports whether the interval satisfies the intra-tuple integrity
// constraint of the paper: ValidFrom < ValidTo, with endpoints inside the
// representable time line.
func (iv Interval) Valid() bool {
	return iv.Start < iv.End && iv.Start > MinTime && iv.End < MaxTime
}

// Check returns a descriptive error when the interval violates the
// intra-tuple constraint and nil otherwise.
func (iv Interval) Check() error {
	if iv.Valid() {
		return nil
	}
	return fmt.Errorf("interval %v violates ValidFrom < ValidTo", iv)
}

// Duration is the number of chronons in the lifespan, End - Start.
func (iv Interval) Duration() int64 { return int64(iv.End) - int64(iv.Start) }

// Contains reports whether chronon t lies in [Start, End).
func (iv Interval) Contains(t Time) bool { return iv.Start <= t && t < iv.End }

// Spans reports whether the lifespan spans the point t in the open sense
// used by the state characterizations of Table 1: Start < t < End. A tuple
// whose lifespan merely begins or ends at t does not span it.
func (iv Interval) Spans(t Time) bool { return iv.Start < t && t < iv.End }

// String renders the interval as "[s,e)"; Forever prints as "∞".
func (iv Interval) String() string {
	if iv.End == Forever {
		return fmt.Sprintf("[%d,∞)", iv.Start)
	}
	return fmt.Sprintf("[%d,%d)", iv.Start, iv.End)
}

// Mirror reflects the interval about the origin of the time line:
// [s, e) ↦ [-e, -s). Mirroring exchanges the roles of ValidFrom and
// ValidTo while preserving "during" and reversing "before"; it is the
// symmetry the paper invokes to derive the lower half of Table 1 from the
// upper half ("sorting both relations on ValidTo in descending order has
// the same effect as sorting them on ValidFrom in ascending order").
func (iv Interval) Mirror() Interval {
	return Interval{Start: -iv.End, End: -iv.Start}
}

// ---------------------------------------------------------------------------
// Allen's thirteen elementary relationships (paper Figure 2).
//
// The paper lists seven operators and obtains the other six as their
// inverses. We implement all thirteen; X r Y holds exactly when the listed
// endpoint constraints hold, assuming both intervals satisfy the intra-tuple
// constraint TS < TE.
// ---------------------------------------------------------------------------

// Equal reports X.TS=Y.TS ∧ X.TE=Y.TE (relationship 1).
func (iv Interval) Equal(o Interval) bool { return iv.Start == o.Start && iv.End == o.End }

// Meets reports X.TE=Y.TS (relationship 2): X ends exactly where Y starts.
func (iv Interval) Meets(o Interval) bool { return iv.End == o.Start }

// MetBy is the inverse of Meets: Y.TE=X.TS.
func (iv Interval) MetBy(o Interval) bool { return o.End == iv.Start }

// Starts reports X.TS=Y.TS ∧ X.TE<Y.TE (relationship 3).
func (iv Interval) Starts(o Interval) bool { return iv.Start == o.Start && iv.End < o.End }

// StartedBy is the inverse of Starts.
func (iv Interval) StartedBy(o Interval) bool { return o.Starts(iv) }

// Finishes reports X.TE=Y.TE ∧ X.TS>Y.TS (relationship 4).
func (iv Interval) Finishes(o Interval) bool { return iv.End == o.End && iv.Start > o.Start }

// FinishedBy is the inverse of Finishes.
func (iv Interval) FinishedBy(o Interval) bool { return o.Finishes(iv) }

// During reports X.TS>Y.TS ∧ X.TE<Y.TE (relationship 5): the lifespan of X
// is strictly contained in that of Y. Contain-join(Y,X) in the paper pairs
// Y with every X such that X During Y.
func (iv Interval) During(o Interval) bool { return iv.Start > o.Start && iv.End < o.End }

// ContainsInterval is the inverse of During: the lifespan of X strictly
// contains that of Y, i.e. X.TS<Y.TS ∧ Y.TE<X.TE.
func (iv Interval) ContainsInterval(o Interval) bool { return o.During(iv) }

// Overlaps reports the strict Allen overlap (relationship 6):
// X.TS<Y.TS ∧ X.TE>Y.TS ∧ X.TE<Y.TE. X begins first, the two lifespans
// share at least one chronon, and Y ends last.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start < o.Start && iv.End > o.Start && iv.End < o.End
}

// OverlappedBy is the inverse of Overlaps.
func (iv Interval) OverlappedBy(o Interval) bool { return o.Overlaps(iv) }

// Before reports X.TE<Y.TS (relationship 7): X ends strictly before Y
// begins, with a gap of at least one chronon.
func (iv Interval) Before(o Interval) bool { return iv.End < o.Start }

// After is the inverse of Before.
func (iv Interval) After(o Interval) bool { return o.End < iv.Start }

// BeforeOrMeets reports X.TE<=Y.TS: X is entirely over, with no shared
// chronon, by the time Y begins. It is the disjunction of Before and Meets
// and the negation of "Y starts strictly inside or before X's lifespan end";
// the sweep algorithms use it to decide when a state tuple can never again
// find a partner.
func (iv Interval) BeforeOrMeets(o Interval) bool { return iv.End <= o.Start }

// Intersects reports the general TQuel/Snodgrass "overlap" used by the
// Superstar query: the lifespans share at least one chronon,
// X.TS<Y.TE ∧ Y.TS<X.TE. Unlike Allen's Overlaps it is reflexive and
// symmetric and also covers equal, starts, finishes and during (footnote 6
// of the paper).
func (iv Interval) Intersects(o Interval) bool {
	return iv.Start < o.End && o.Start < iv.End
}

// Intersection returns the common sub-lifespan of two intersecting
// intervals and ok=false when they do not intersect.
func (iv Interval) Intersection(o Interval) (Interval, bool) {
	if !iv.Intersects(o) {
		return Interval{}, false
	}
	r := Interval{Start: maxTime(iv.Start, o.Start), End: minTime(iv.End, o.End)}
	return r, true
}

// Union returns the smallest interval covering both operands when they
// intersect or meet, and ok=false when a gap separates them.
func (iv Interval) Union(o Interval) (Interval, bool) {
	if !iv.Intersects(o) && !iv.Meets(o) && !o.Meets(iv) {
		return Interval{}, false
	}
	return Interval{Start: minTime(iv.Start, o.Start), End: maxTime(iv.End, o.End)}, true
}

// ---------------------------------------------------------------------------
// Endpoint comparators.
//
// Code outside this package must not compare Start/End fields of two
// different intervals directly (the tdblint interval-encapsulation rule
// enforces this): an endpoint inequality between two lifespans is an Allen
// relationship fragment, and spreading raw fragments through the tree is
// how a reproduction drifts from Figure 2. Sort orders and merge sweeps
// express their endpoint logic through these comparators instead.
// ---------------------------------------------------------------------------

// CmpStart three-way-compares the ValidFrom endpoints: -1 when a starts
// first, +1 when b starts first, 0 on equal starts.
func CmpStart(a, b Interval) int { return cmp(a.Start, b.Start) }

// CmpEnd three-way-compares the ValidTo endpoints: -1 when a ends first,
// +1 when b ends first, 0 on equal ends.
func CmpEnd(a, b Interval) int { return cmp(a.End, b.End) }

// Compare orders intervals lexicographically by (Start, End) — the
// canonical ValidFrom-ascending sort order of the paper's stream
// algorithms, with ValidTo as tiebreaker.
func Compare(a, b Interval) int {
	if c := cmp(a.Start, b.Start); c != 0 {
		return c
	}
	return cmp(a.End, b.End)
}

func cmp(a, b Time) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func minTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

func maxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
