package catalog

import (
	"testing"

	"tdb/internal/interval"
	"tdb/internal/workload"
)

func TestEquiDepthTSCutsBalance(t *testing.T) {
	tuples := workload.Tuples(workload.Config{N: 5000, Lambda: 1, MeanDur: 10, Seed: 5}, "x")
	spans := make([]interval.Interval, len(tuples))
	for i, tu := range tuples {
		spans[i] = tu.Span
	}
	s := FromSpans(spans)
	for _, k := range []int{2, 4, 8} {
		cuts := s.EquiDepthTSCuts(k)
		if len(cuts) != k-1 {
			t.Fatalf("k=%d: want %d cuts, got %v", k, k-1, cuts)
		}
		for i := 1; i < len(cuts); i++ {
			if cuts[i] <= cuts[i-1] {
				t.Fatalf("k=%d: cuts not strictly ascending: %v", k, cuts)
			}
		}
		// Equi-depth: counting by ValidFrom, every bucket holds roughly
		// n/k tuples (the sample quantizes, so allow a factor of two).
		counts := make([]int, k)
		for _, sp := range spans {
			b := 0
			for b < len(cuts) && sp.Start >= cuts[b] {
				b++
			}
			counts[b]++
		}
		want := len(spans) / k
		for b, c := range counts {
			if c < want/2 || c > want*2 {
				t.Errorf("k=%d: bucket %d holds %d tuples, want ≈%d", k, b, c, want)
			}
		}
	}
}

func TestEquiDepthTSCutsDegenerate(t *testing.T) {
	var nilStats *Stats
	if got := nilStats.EquiDepthTSCuts(4); got != nil {
		t.Errorf("nil stats: want no cuts, got %v", got)
	}
	if got := FromSpans(nil).EquiDepthTSCuts(4); got != nil {
		t.Errorf("empty relation: want no cuts, got %v", got)
	}
	// All tuples share one ValidFrom: no useful cut exists.
	same := make([]interval.Interval, 100)
	for i := range same {
		same[i] = interval.New(10, 20)
	}
	if got := FromSpans(same).EquiDepthTSCuts(4); got != nil {
		t.Errorf("single distinct ValidFrom: want no cuts, got %v", got)
	}
	// k=1 and k=0 ask for no partitioning at all.
	spans := []interval.Interval{interval.New(1, 2), interval.New(3, 4)}
	st := FromSpans(spans)
	if got := st.EquiDepthTSCuts(1); got != nil {
		t.Errorf("k=1: want no cuts, got %v", got)
	}
}

func TestTSSampleSortedAndBounded(t *testing.T) {
	tuples := workload.Tuples(workload.Config{N: 3000, Lambda: 2, MeanDur: 8, Seed: 11}, "x")
	spans := make([]interval.Interval, len(tuples))
	for i, tu := range tuples {
		spans[i] = tu.Span
	}
	s := FromSpans(spans)
	if len(s.TSSample) == 0 || len(s.TSSample) > tsSampleCap {
		t.Fatalf("sample size %d outside (0,%d]", len(s.TSSample), tsSampleCap)
	}
	for i := 1; i < len(s.TSSample); i++ {
		if s.TSSample[i] < s.TSSample[i-1] {
			t.Fatalf("sample not sorted at %d", i)
		}
	}
	if s.TSSample[0] < s.MinTS || s.TSSample[len(s.TSSample)-1] > s.MaxTS {
		t.Fatalf("sample outside [MinTS,MaxTS]")
	}
}
