package catalog

import (
	"math"
	"strings"
	"testing"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/value"
	"tdb/internal/workload"
)

func TestFromSpansBasics(t *testing.T) {
	spans := []interval.Interval{
		interval.New(0, 10),
		interval.New(5, 7),
		interval.New(20, 30),
	}
	s := FromSpans(spans)
	if s.Cardinality != 3 {
		t.Errorf("Cardinality = %d", s.Cardinality)
	}
	if s.MinTS != 0 || s.MaxTS != 20 || s.MinTE != 7 || s.MaxTE != 30 {
		t.Errorf("endpoint stats wrong: %+v", s)
	}
	if s.MeanDuration != (10+2+10)/3.0 {
		t.Errorf("MeanDuration = %f", s.MeanDuration)
	}
	if s.MaxDuration != 10 {
		t.Errorf("MaxDuration = %d", s.MaxDuration)
	}
	// λ = (3-1)/(20-0) = 0.1
	if math.Abs(s.Lambda-0.1) > 1e-9 {
		t.Errorf("Lambda = %f", s.Lambda)
	}
	if s.MaxConcurrency != 2 {
		t.Errorf("MaxConcurrency = %d", s.MaxConcurrency)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Errorf("String = %q", s.String())
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	s := FromSpans(nil)
	if s.Cardinality != 0 || s.Lambda != 0 || s.PredictedWorkspace() != 0 {
		t.Errorf("empty stats wrong: %+v", s)
	}
	if s.MeanGap() != 1 {
		t.Errorf("MeanGap on empty = %f", s.MeanGap())
	}
	s = FromSpans([]interval.Interval{interval.New(3, 9)})
	if s.Lambda != 0 || s.MaxConcurrency != 1 || s.MeanDuration != 6 {
		t.Errorf("singleton stats wrong: %+v", s)
	}
}

func TestMaxConcurrencyHalfOpen(t *testing.T) {
	// Meeting intervals do not overlap: [0,5) and [5,9).
	s := FromSpans([]interval.Interval{interval.New(0, 5), interval.New(5, 9)})
	if s.MaxConcurrency != 1 {
		t.Errorf("meeting intervals counted as concurrent: %d", s.MaxConcurrency)
	}
}

// Little's law: for a Poisson workload the prediction tracks the exact
// maximum concurrency within a small factor.
func TestPredictedWorkspaceTracksConcurrency(t *testing.T) {
	for _, lam := range []float64{0.2, 1, 5} {
		spans := workload.Intervals(workload.Config{N: 4000, Lambda: lam, MeanDur: 20, Seed: 42})
		s := FromSpans(spans)
		pred := s.PredictedWorkspace()
		if pred <= 0 {
			t.Fatalf("λ=%v: no prediction", lam)
		}
		ratio := float64(s.MaxConcurrency) / pred
		// The max of a Poisson-distributed occupancy exceeds its mean,
		// but by a modest factor at these scales.
		if ratio < 1 || ratio > 4 {
			t.Errorf("λ=%v: max/pred ratio %.2f outside [1,4] (max=%d pred=%.1f)",
				lam, ratio, s.MaxConcurrency, pred)
		}
	}
}

func TestCatalogAnalyzeAndLookup(t *testing.T) {
	rel := relation.FromTuples("R", []relation.Tuple{
		{S: "a", V: value.String_("v"), Span: interval.New(0, 4)},
		{S: "b", V: value.String_("v"), Span: interval.New(2, 9)},
	})
	c := New()
	s, err := c.Analyze(rel)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cardinality != 2 || !s.SortedTS {
		t.Errorf("analyze wrong: %+v", s)
	}
	if c.Lookup("R") != s {
		t.Error("Lookup did not return recorded stats")
	}
	if c.Lookup("missing") != nil {
		t.Error("Lookup invented stats")
	}

	snap := relation.New("S", relation.MustSchema([]relation.Column{{Name: "A", Kind: value.KindInt}}, -1, -1))
	if _, err := c.Analyze(snap); err == nil {
		t.Error("non-temporal relation analyzed")
	}
}

func TestSortedFlags(t *testing.T) {
	rel := relation.FromTuples("R", []relation.Tuple{
		{S: "a", V: value.String_("v"), Span: interval.New(5, 20)},
		{S: "b", V: value.String_("v"), Span: interval.New(7, 9)},
	})
	s, err := Collect(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !s.SortedTS || s.SortedTE {
		t.Errorf("sorted flags wrong: TS=%v TE=%v", s.SortedTS, s.SortedTE)
	}
}
