// Package catalog implements the statistical metadata the paper's
// Section 6 calls for: "in addition to conventional statistical information
// such as relation size ... estimating the amount of local workspace
// becomes necessary". For each temporal relation it derives the arrival
// rate λ (whose reciprocal the Contain-join read policy uses), duration
// moments, and the exact maximum concurrency; from λ and the mean duration
// it predicts the stream algorithms' workspace by Little's law — the
// number of lifespans in progress at a random instant is λ·E[duration] —
// which experiment E13 validates against measured high-water marks.
package catalog

import (
	"fmt"
	"sort"

	"tdb/internal/interval"
	"tdb/internal/relation"
)

// Stats summarizes the temporal shape of one relation.
type Stats struct {
	Cardinality  int
	MinTS, MaxTS interval.Time
	MinTE, MaxTE interval.Time
	MeanDuration float64
	MaxDuration  int64
	// Lambda is the arrival rate in tuples per chronon, estimated as
	// (n-1) / (MaxTS - MinTS): the reciprocal of the mean gap between
	// consecutive ValidFrom values, the 1/λ of Section 4.2.1.
	Lambda float64
	// MaxConcurrency is the exact maximum number of lifespans covering
	// any single chronon — the tight bound on the spanning-set state
	// components of Table 1.
	MaxConcurrency int
	// SortedTS / SortedTE report whether the relation is already stored
	// in ValidFrom / ValidTo ascending order, letting the planner skip a
	// sort.
	SortedTS, SortedTE bool
	// TSSample is a sorted, deterministic stride sample of ValidFrom
	// values (at most tsSampleCap of them) — the order-statistic summary
	// EquiDepthTSCuts consults to place time-range partition boundaries.
	TSSample []interval.Time
}

// tsSampleCap bounds the ValidFrom sample retained per relation. 512
// order statistics locate any quantile to within ~0.2% of the
// cardinality, plenty for equi-depth partition cuts.
const tsSampleCap = 512

// Collect computes statistics over the lifespans of a temporal relation.
func Collect(rel *relation.Relation) (*Stats, error) {
	if !rel.Schema.Temporal() {
		return nil, fmt.Errorf("catalog: relation %s is not temporal", rel.Name)
	}
	spans := make([]interval.Interval, rel.Cardinality())
	for i := range rel.Rows {
		spans[i] = rel.Span(i)
	}
	s := FromSpans(spans)
	s.SortedTS = rel.SortedBy(relation.Order{relation.TSAsc})
	s.SortedTE = rel.SortedBy(relation.Order{relation.TEAsc})
	return s, nil
}

// FromSpans computes statistics over raw lifespans.
func FromSpans(spans []interval.Interval) *Stats {
	s := &Stats{Cardinality: len(spans)}
	if len(spans) == 0 {
		return s
	}
	s.MinTS, s.MaxTS = spans[0].Start, spans[0].Start
	s.MinTE, s.MaxTE = spans[0].End, spans[0].End
	var durSum int64
	for _, iv := range spans {
		if iv.Start < s.MinTS {
			s.MinTS = iv.Start
		}
		if iv.Start > s.MaxTS {
			s.MaxTS = iv.Start
		}
		if iv.End < s.MinTE {
			s.MinTE = iv.End
		}
		if iv.End > s.MaxTE {
			s.MaxTE = iv.End
		}
		d := iv.Duration()
		durSum += d
		if d > s.MaxDuration {
			s.MaxDuration = d
		}
	}
	s.MeanDuration = float64(durSum) / float64(len(spans))
	if span := int64(s.MaxTS) - int64(s.MinTS); span > 0 && len(spans) > 1 {
		s.Lambda = float64(len(spans)-1) / float64(span)
	}
	s.MaxConcurrency = maxConcurrency(spans)
	stride := (len(spans) + tsSampleCap - 1) / tsSampleCap
	for i := 0; i < len(spans); i += stride {
		s.TSSample = append(s.TSSample, spans[i].Start)
	}
	sort.Slice(s.TSSample, func(i, j int) bool { return s.TSSample[i] < s.TSSample[j] })
	return s
}

// EquiDepthTSCuts returns up to k−1 ascending ValidFrom cut points that
// divide the relation into k time shards of roughly equal tuple count —
// the equi-depth histogram boundaries the parallel executor partitions
// on. Cuts that would create an empty leading shard (at or below MinTS)
// and duplicates (heavy ValidFrom ties) are dropped, so the result may
// hold fewer than k−1 cuts; Cardinality < k or a single distinct
// ValidFrom yields none.
func (s *Stats) EquiDepthTSCuts(k int) []interval.Time {
	if s == nil || k < 2 || len(s.TSSample) == 0 {
		return nil
	}
	var cuts []interval.Time
	for j := 1; j < k; j++ {
		c := s.TSSample[j*len(s.TSSample)/k]
		if c <= s.MinTS {
			continue
		}
		if len(cuts) > 0 && c == cuts[len(cuts)-1] {
			continue
		}
		cuts = append(cuts, c)
	}
	return cuts
}

func maxConcurrency(spans []interval.Interval) int {
	type ev struct {
		t     interval.Time
		delta int
	}
	evs := make([]ev, 0, 2*len(spans))
	for _, iv := range spans {
		evs = append(evs, ev{iv.Start, +1}, ev{iv.End, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].delta < evs[j].delta // close before open: half-open spans
	})
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

// PredictedWorkspace estimates the spanning-set state size by Little's law:
// the expected number of lifespans in progress is the arrival rate times
// the mean lifespan duration.
func (s *Stats) PredictedWorkspace() float64 {
	if s == nil {
		return 0
	}
	return s.Lambda * s.MeanDuration
}

// MeanGap returns 1/λ in chronons — the expected ValidFrom spacing used by
// the λ-guided read policy — or 1 when λ is unknown.
func (s *Stats) MeanGap() float64 {
	if s == nil || s.Lambda <= 0 {
		return 1
	}
	return 1 / s.Lambda
}

// String renders the statistics in one line.
func (s *Stats) String() string {
	return fmt.Sprintf("n=%d ts=[%d,%d] te=[%d,%d] λ=%.4f E[dur]=%.2f maxconc=%d predws=%.1f",
		s.Cardinality, s.MinTS, s.MaxTS, s.MinTE, s.MaxTE,
		s.Lambda, s.MeanDuration, s.MaxConcurrency, s.PredictedWorkspace())
}

// Catalog is the named collection of relation statistics the optimizer
// consults.
type Catalog struct {
	stats map[string]*Stats
}

// New returns an empty catalog.
func New() *Catalog { return &Catalog{stats: make(map[string]*Stats)} }

// Analyze computes and records statistics for the relation.
func (c *Catalog) Analyze(rel *relation.Relation) (*Stats, error) {
	s, err := Collect(rel)
	if err != nil {
		return nil, err
	}
	c.stats[rel.Name] = s
	return s, nil
}

// Lookup returns the recorded statistics for a relation name, or nil.
func (c *Catalog) Lookup(name string) *Stats { return c.stats[name] }
