package catalog

import "tdb/internal/interval"

// Incremental maintains the statistics of a relation under append-only,
// TS-ordered arrival without ever rescanning the relation: each Observe is
// O(log maxconc) for the concurrency sweep plus O(1) amortized for the
// moments and the sample. The live ingestion path owns one Incremental per
// table and republishes its snapshot into the Catalog after each batch, so
// standing-query admission always sees current λ and duration moments.
type Incremental struct {
	s      Stats
	durSum int64
	// ends is a min-heap of the ValidTo instants of lifespans still open
	// at the current arrival frontier. Under TS-ordered arrival, popping
	// every end ≤ the incoming start before pushing the new end makes the
	// heap size the exact concurrency at that start — the same value the
	// batch event sweep computes (close-before-open, half-open spans).
	ends []interval.Time
	// stride thins the ValidFrom sample: every stride-th arrival is kept,
	// and when the sample would exceed tsSampleCap it is halved and the
	// stride doubled, keeping a deterministic order-statistic summary.
	stride  int
	sinceTS int
	lastTS  interval.Time
	lastTE  interval.Time
}

// NewIncremental returns an empty incremental statistics accumulator.
func NewIncremental() *Incremental {
	return &Incremental{s: Stats{SortedTS: true, SortedTE: true}, stride: 1}
}

// Observe folds one appended lifespan into the statistics. Arrivals are
// expected in ValidFrom order (the live ingestion contract); an
// out-of-order span is still counted but clears SortedTS and may make
// MaxConcurrency a lower bound rather than exact.
func (inc *Incremental) Observe(iv interval.Interval) {
	s := &inc.s
	if s.Cardinality == 0 {
		s.MinTS, s.MaxTS = iv.Start, iv.Start
		s.MinTE, s.MaxTE = iv.End, iv.End
	} else {
		if iv.Start < inc.lastTS {
			s.SortedTS = false
		}
		if iv.End < inc.lastTE {
			s.SortedTE = false
		}
		if iv.Start < s.MinTS {
			s.MinTS = iv.Start
		}
		if iv.Start > s.MaxTS {
			s.MaxTS = iv.Start
		}
		if iv.End < s.MinTE {
			s.MinTE = iv.End
		}
		if iv.End > s.MaxTE {
			s.MaxTE = iv.End
		}
	}
	inc.lastTS, inc.lastTE = iv.Start, iv.End
	s.Cardinality++
	d := iv.Duration()
	inc.durSum += d
	if d > s.MaxDuration {
		s.MaxDuration = d
	}
	s.MeanDuration = float64(inc.durSum) / float64(s.Cardinality)
	if span := int64(s.MaxTS) - int64(s.MinTS); span > 0 && s.Cardinality > 1 {
		s.Lambda = float64(s.Cardinality-1) / float64(span)
	}

	// Concurrency sweep: retire lifespans that closed at or before this
	// arrival (half-open intervals: End == Start does not overlap).
	for len(inc.ends) > 0 && inc.ends[0] <= iv.Start {
		heapPopEnd(&inc.ends)
	}
	heapPushEnd(&inc.ends, iv.End)
	if len(inc.ends) > s.MaxConcurrency {
		s.MaxConcurrency = len(inc.ends)
	}

	// ValidFrom sample (arrivals are TS-ordered, so appending keeps it
	// sorted; out-of-order arrivals just make it approximately sorted,
	// matching the relaxed SortedTS contract above).
	inc.sinceTS++
	if inc.sinceTS >= inc.stride {
		inc.sinceTS = 0
		s.TSSample = append(s.TSSample, iv.Start)
		if len(s.TSSample) > tsSampleCap {
			half := s.TSSample[:0]
			for i := 1; i < len(s.TSSample); i += 2 {
				half = append(half, s.TSSample[i])
			}
			s.TSSample = half
			inc.stride *= 2
		}
	}
}

// Snapshot returns a copy of the current statistics, safe to publish into
// a Catalog while Observe continues.
func (inc *Incremental) Snapshot() *Stats {
	s := inc.s
	s.TSSample = append([]interval.Time(nil), inc.s.TSSample...)
	return &s
}

// ActiveSpans returns the number of lifespans still open at the arrival
// frontier — the instantaneous concurrency the workspace gauges report.
func (inc *Incremental) ActiveSpans() int { return len(inc.ends) }

// Put installs externally computed statistics for a relation name,
// replacing any previous entry — the republish path of live ingestion.
func (c *Catalog) Put(name string, s *Stats) { c.stats[name] = s }

// heapPushEnd / heapPopEnd maintain a slice as a binary min-heap of
// ValidTo instants (hand-rolled to avoid interface boxing on the hot
// ingestion path).
func heapPushEnd(h *[]interval.Time, t interval.Time) {
	*h = append(*h, t)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func heapPopEnd(h *[]interval.Time) {
	n := len(*h) - 1
	(*h)[0] = (*h)[n]
	*h = (*h)[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h)[l] < (*h)[small] {
			small = l
		}
		if r < n && (*h)[r] < (*h)[small] {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
}
