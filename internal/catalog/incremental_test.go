package catalog

import (
	"math/rand"
	"sort"
	"testing"

	"tdb/internal/interval"
)

// randomSortedSpans yields n lifespans with non-decreasing ValidFrom —
// the live ingestion arrival order.
func randomSortedSpans(rng *rand.Rand, n int) []interval.Interval {
	spans := make([]interval.Interval, n)
	ts := interval.Time(0)
	for i := range spans {
		ts += interval.Time(rng.Intn(4))
		dur := interval.Time(1 + rng.Intn(20))
		spans[i] = interval.Interval{Start: ts, End: ts + dur}
	}
	return spans
}

func TestIncrementalMatchesFromSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		spans := randomSortedSpans(rng, n)

		inc := NewIncremental()
		for _, iv := range spans {
			inc.Observe(iv)
		}
		got := inc.Snapshot()
		want := FromSpans(spans)

		if got.Cardinality != want.Cardinality {
			t.Fatalf("n=%d cardinality %d != %d", n, got.Cardinality, want.Cardinality)
		}
		if got.MinTS != want.MinTS || got.MaxTS != want.MaxTS ||
			got.MinTE != want.MinTE || got.MaxTE != want.MaxTE {
			t.Fatalf("n=%d bounds %v != %v", n, got, want)
		}
		if got.MeanDuration != want.MeanDuration || got.MaxDuration != want.MaxDuration {
			t.Fatalf("n=%d durations %v/%v != %v/%v", n,
				got.MeanDuration, got.MaxDuration, want.MeanDuration, want.MaxDuration)
		}
		if got.Lambda != want.Lambda {
			t.Fatalf("n=%d lambda %v != %v", n, got.Lambda, want.Lambda)
		}
		if got.MaxConcurrency != want.MaxConcurrency {
			t.Fatalf("n=%d maxconc %d != %d (exact heap sweep diverged from event sweep)",
				n, got.MaxConcurrency, want.MaxConcurrency)
		}
		if !got.SortedTS {
			t.Fatalf("n=%d SortedTS lost under ordered arrival", n)
		}
		if len(got.TSSample) == 0 || len(got.TSSample) > tsSampleCap {
			t.Fatalf("n=%d sample size %d out of range", n, len(got.TSSample))
		}
		if !sort.SliceIsSorted(got.TSSample, func(i, j int) bool {
			return got.TSSample[i] < got.TSSample[j]
		}) {
			t.Fatalf("n=%d TSSample not sorted", n)
		}
	}
}

func TestIncrementalSortedTEAndOutOfOrder(t *testing.T) {
	inc := NewIncremental()
	inc.Observe(interval.Interval{Start: 0, End: 10})
	inc.Observe(interval.Interval{Start: 1, End: 5}) // TE regresses
	if s := inc.Snapshot(); s.SortedTE {
		t.Error("SortedTE should clear when ValidTo regresses")
	}
	inc.Observe(interval.Interval{Start: 0, End: 20}) // TS regresses
	s := inc.Snapshot()
	if s.SortedTS {
		t.Error("SortedTS should clear when ValidFrom regresses")
	}
	if s.Cardinality != 3 || s.MaxTE != 20 {
		t.Errorf("counting under out-of-order arrival: %v", s)
	}
}

func TestIncrementalActiveSpans(t *testing.T) {
	inc := NewIncremental()
	inc.Observe(interval.Interval{Start: 0, End: 10})
	inc.Observe(interval.Interval{Start: 2, End: 4})
	if inc.ActiveSpans() != 2 {
		t.Fatalf("active = %d, want 2", inc.ActiveSpans())
	}
	inc.Observe(interval.Interval{Start: 5, End: 7}) // {0,10} stays, {2,4} retires
	if inc.ActiveSpans() != 2 {
		t.Fatalf("active = %d, want 2 after retirement", inc.ActiveSpans())
	}
	if s := inc.Snapshot(); s.MaxConcurrency != 2 {
		t.Fatalf("maxconc = %d, want 2", s.MaxConcurrency)
	}
}

func TestCatalogPut(t *testing.T) {
	c := New()
	s := &Stats{Cardinality: 7}
	c.Put("r", s)
	if c.Lookup("r") != s {
		t.Fatal("Put/Lookup roundtrip failed")
	}
}
