package storage

import (
	"encoding/binary"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/stream"
	"tdb/internal/value"
)

func TestDecodePageCorruption(t *testing.T) {
	schema := relation.TupleSchema
	// A well-formed page first.
	p := newPage()
	if !p.tryAdd(encodeRow(makeRow("s", "v", 1, 2))) {
		t.Fatal("row did not fit")
	}
	p.finalize()
	if rows, err := decodePage(p.buf[:], schema); err != nil || len(rows) != 1 {
		t.Fatalf("valid page rejected: %v %v", rows, err)
	}

	// Corrupt the used counter beyond the page.
	var corrupt [PageSize]byte
	copy(corrupt[:], p.buf[:])
	binary.LittleEndian.PutUint16(corrupt[2:4], PageSize+1)
	if _, err := decodePage(corrupt[:PageSize], schema); err == nil {
		t.Error("oversized used accepted")
	}

	// Claim more rows than encoded.
	copy(corrupt[:], p.buf[:])
	binary.LittleEndian.PutUint16(corrupt[0:2], 9)
	if _, err := decodePage(corrupt[:], schema); err == nil {
		t.Error("row-count overrun accepted")
	}

	// Short buffer.
	if _, err := decodePage([]byte{1, 2}, schema); err == nil {
		t.Error("short page accepted")
	}
}

func TestHeapFileRowTooBig(t *testing.T) {
	hf, err := Create(filepath.Join(t.TempDir(), "big.tdb"), relation.TupleSchema, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hf.Close()
	huge := relation.TupleToRow(relation.Tuple{
		S:    strings.Repeat("x", PageSize),
		V:    value.String_("v"),
		Span: interval.New(0, 1),
	})
	if err := hf.Append(huge); err == nil {
		t.Error("oversized row accepted")
	}
}

func TestCreateInMissingDir(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "nope", "f.tdb"), relation.TupleSchema, 1); err == nil {
		t.Error("create in missing directory succeeded")
	}
}

func TestExternalSortInputError(t *testing.T) {
	schema := relation.TupleSchema
	boom := errors.New("boom")
	rows := []relation.Row{makeRow("a", "v", 0, 1), makeRow("b", "v", 1, 2)}
	in := stream.FailAfter(stream.FromSlice(rows), 1, boom)
	_, err := ExternalSort(in, schema, func(a, b relation.Row) bool { return false }, 10, t.TempDir(), nil)
	if !errors.Is(err, boom) {
		t.Errorf("input failure not surfaced: %v", err)
	}
}

func TestExternalSortEmpty(t *testing.T) {
	out, err := ExternalSort(stream.Empty[relation.Row](), relation.TupleSchema,
		func(a, b relation.Row) bool { return false }, 4, t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stream.Collect(out)
	if err != nil || len(rows) != 0 {
		t.Errorf("empty sort: %v %v", rows, err)
	}
}

func TestSaveCSVToMissingDir(t *testing.T) {
	rel := relation.FromTuples("R", nil)
	if err := SaveCSV(filepath.Join(t.TempDir(), "nope", "r.csv"), rel); err == nil {
		t.Error("save into missing dir succeeded")
	}
	if _, err := LoadCSV(filepath.Join(t.TempDir(), "absent.csv"), "R", relation.TupleSchema); err == nil {
		t.Error("load of absent file succeeded")
	}
}
