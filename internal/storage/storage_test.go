package storage

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"tdb/internal/interval"
	"tdb/internal/obs"
	"tdb/internal/relation"
	"tdb/internal/stream"
	"tdb/internal/value"
)

func testSchema(t *testing.T) *relation.Schema {
	t.Helper()
	return relation.TupleSchema
}

func makeRow(s string, v string, from, to interval.Time) relation.Row {
	return relation.TupleToRow(relation.Tuple{S: s, V: value.String_(v), Span: interval.New(from, to)})
}

func TestRowCodecRoundTrip(t *testing.T) {
	schema := relation.MustSchema([]relation.Column{
		{Name: "A", Kind: value.KindString},
		{Name: "B", Kind: value.KindInt},
		{Name: "F", Kind: value.KindTime},
		{Name: "T", Kind: value.KindTime},
	}, 2, 3)
	f := func(a string, b int64, from int32, durRaw uint8) bool {
		if len(a) > 60000 {
			a = a[:60000]
		}
		dur := int64(durRaw) + 1
		row := relation.Row{
			value.String_(a), value.Int(b),
			value.TimeVal(interval.Time(from)), value.TimeVal(interval.Time(int64(from) + dur)),
		}
		enc := encodeRow(row)
		dec, n, err := decodeRow(enc, schema)
		return err == nil && n == len(enc) && dec.Equal(row)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRowTruncation(t *testing.T) {
	schema := testSchema(t)
	enc := encodeRow(makeRow("Smith", "Assistant", 1, 5))
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := decodeRow(enc[:cut], schema); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestHeapFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	hf, err := Create(filepath.Join(dir, "f.tdb"), testSchema(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer hf.Close()

	const n = 500
	var want []relation.Row
	for i := 0; i < n; i++ {
		row := makeRow("S", strings.Repeat("v", i%40), interval.Time(i), interval.Time(i+3))
		want = append(want, row)
		if err := hf.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	got, err := stream.Collect(hf.Scan())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d rows, want %d", len(got), n)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("row %d mismatch: %v vs %v", i, got[i], want[i])
		}
	}
	if hf.Pages() == 0 {
		t.Error("expected multiple pages for 500 rows")
	}
	if hf.Stats().PagesRead == 0 {
		t.Error("scan should read pages")
	}
}

func TestHeapFileTailOnly(t *testing.T) {
	dir := t.TempDir()
	hf, err := Create(filepath.Join(dir, "tail.tdb"), testSchema(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hf.Close()
	row := makeRow("S", "v", 0, 5)
	if err := hf.Append(row); err != nil {
		t.Fatal(err)
	}
	got, err := stream.Collect(hf.Scan())
	if err != nil || len(got) != 1 || !got[0].Equal(row) {
		t.Fatalf("tail scan: %v %v", got, err)
	}
	// Empty file scans cleanly too.
	hf2, err := Create(filepath.Join(dir, "empty.tdb"), testSchema(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hf2.Close()
	got, err = stream.Collect(hf2.Scan())
	if err != nil || len(got) != 0 {
		t.Fatalf("empty scan: %v %v", got, err)
	}
}

func TestBufferPoolCountsHits(t *testing.T) {
	dir := t.TempDir()
	hf, err := Create(filepath.Join(dir, "pool.tdb"), testSchema(t), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer hf.Close()
	for i := 0; i < 400; i++ {
		if err := hf.Append(makeRow("S", "value-string", interval.Time(i), interval.Time(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := stream.Collect(hf.Scan()); err != nil {
		t.Fatal(err)
	}
	firstReads := hf.Stats().PagesRead
	if _, err := stream.Collect(hf.Scan()); err != nil {
		t.Fatal(err)
	}
	if hf.Stats().PagesRead != firstReads {
		t.Errorf("second scan read %d more pages despite large pool", hf.Stats().PagesRead-firstReads)
	}
	if hf.Stats().PoolHits == 0 {
		t.Error("no pool hits recorded")
	}

	// A pool of 1 frame cannot serve a large re-scan.
	hf2, err := Create(filepath.Join(dir, "small.tdb"), testSchema(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer hf2.Close()
	for i := 0; i < 400; i++ {
		if err := hf2.Append(makeRow("S", "value-string", interval.Time(i), interval.Time(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	stream.Collect(hf2.Scan())
	r1 := hf2.Stats().PagesRead
	stream.Collect(hf2.Scan())
	if hf2.Stats().PagesRead <= r1 {
		t.Error("tiny pool should force re-reads")
	}
}

func TestExternalSort(t *testing.T) {
	schema := testSchema(t)
	lessTS := func(a, b relation.Row) bool {
		return a.Span(schema).Start < b.Span(schema).Start
	}
	rng := rand.New(rand.NewSource(5))
	for _, memRows := range []int{1, 7, 64, 100000} {
		var rows []relation.Row
		for i := 0; i < 300; i++ {
			s := interval.Time(rng.Intn(1000))
			rows = append(rows, makeRow("S", "v", s, s+1+interval.Time(rng.Intn(20))))
		}
		var stats SortStats
		out, err := ExternalSort(stream.FromSlice(rows), schema, lessTS, memRows, t.TempDir(), &stats)
		if err != nil {
			t.Fatal(err)
		}
		got, err := stream.Collect(out)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(rows) {
			t.Fatalf("memRows=%d: %d rows out, want %d", memRows, len(got), len(rows))
		}
		for i := 1; i < len(got); i++ {
			if got[i].Span(schema).Start < got[i-1].Span(schema).Start {
				t.Fatalf("memRows=%d: output unsorted at %d", memRows, i)
			}
		}
		wantRuns := (len(rows) + memRows - 1) / memRows
		if memRows >= len(rows) {
			wantRuns = 1
			if stats.PagesRead != 0 || stats.PagesWritten != 0 {
				t.Errorf("in-memory sort did I/O: %+v", stats)
			}
		}
		if stats.Runs != wantRuns {
			t.Errorf("memRows=%d: runs=%d want %d", memRows, stats.Runs, wantRuns)
		}
	}
}

// External sort is stable within runs and exact as a multiset.
func TestExternalSortMultiset(t *testing.T) {
	schema := testSchema(t)
	lessTS := func(a, b relation.Row) bool {
		return a.Span(schema).Start < b.Span(schema).Start
	}
	rng := rand.New(rand.NewSource(6))
	var rows []relation.Row
	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		s := interval.Time(rng.Intn(50))
		r := makeRow("S", "v", s, s+1)
		rows = append(rows, r)
		counts[r.Key()]++
	}
	out, err := ExternalSort(stream.FromSlice(rows), schema, lessTS, 13, t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		counts[r.Key()]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("multiset mismatch for %q: %d", k, c)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rel := relation.FromTuples("Faculty", []relation.Tuple{
		{S: "Smith", V: value.String_("Assistant"), Span: interval.New(1, 5)},
		{S: "Jones, Jr.", V: value.String_("Full \"tenured\""), Span: interval.New(3, interval.Forever)},
	})
	path := filepath.Join(t.TempDir(), "rel.csv")
	if err := SaveCSV(path, rel); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path, "Faculty", relation.TupleSchema)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cardinality() != 2 {
		t.Fatalf("round trip lost rows: %d", back.Cardinality())
	}
	for i := range rel.Rows {
		if !back.Rows[i].Equal(rel.Rows[i]) {
			t.Errorf("row %d: %v vs %v", i, back.Rows[i], rel.Rows[i])
		}
	}
}

func TestCSVValidation(t *testing.T) {
	schema := relation.TupleSchema
	cases := []struct {
		name, csv string
	}{
		{"wrong header name", "S,V,From,ValidTo\n"},
		{"wrong arity", "S,V,ValidFrom\n"},
		{"bad time", "S,V,ValidFrom,ValidTo\na,b,x,5\n"},
		{"violates intra-tuple", "S,V,ValidFrom,ValidTo\na,b,9,5\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.csv), "R", schema); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestObserveIOCounters(t *testing.T) {
	reg := obs.NewRegistry()
	ObserveIO(reg)
	defer ObserveIO(nil)

	dir := t.TempDir()
	schema := testSchema(t)
	hf, err := Create(filepath.Join(dir, "obs.tdb"), schema, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hf.Close() }()
	for i := 0; i < 500; i++ {
		s := interval.Time(i)
		if err := hf.Append(makeRow("S", "v", s, s+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := hf.Flush(); err != nil {
		t.Fatal(err)
	}
	for s := hf.Scan(); ; {
		if _, ok := s.Next(); !ok {
			if err := s.Err(); err != nil {
				t.Fatal(err)
			}
			break
		}
	}

	read := reg.Counter("tdb_storage_pages_read_total", "").Value()
	written := reg.Counter("tdb_storage_pages_written_total", "").Value()
	if read != hf.Stats().PagesRead || read == 0 {
		t.Errorf("live pages-read = %d, file stats = %d", read, hf.Stats().PagesRead)
	}
	if written != hf.Stats().PagesWritten || written == 0 {
		t.Errorf("live pages-written = %d, file stats = %d", written, hf.Stats().PagesWritten)
	}

	// External sort with a tiny memory budget produces counted run files.
	lessTS := func(a, b relation.Row) bool {
		return a.Span(schema).Start < b.Span(schema).Start
	}
	var stats SortStats
	out, err := ExternalSort(hf.Scan(), schema, lessTS, 50, dir, &stats)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := out.Next(); !ok {
			if err := out.Err(); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	runs := reg.Counter("tdb_storage_sort_runs_total", "").Value()
	if runs != int64(stats.Runs) || runs == 0 {
		t.Errorf("live sort-runs = %d, sort stats = %d", runs, stats.Runs)
	}

	// Turning observation off stops the counters.
	ObserveIO(nil)
	before := reg.Counter("tdb_storage_pages_read_total", "").Value()
	for s := hf.Scan(); ; {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if after := reg.Counter("tdb_storage_pages_read_total", "").Value(); after != before {
		t.Errorf("counters moved after ObserveIO(nil): %d -> %d", before, after)
	}
}
