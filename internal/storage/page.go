// Package storage implements the paged secondary-storage substrate under
// the stream processors: heap files of encoded rows on fixed-size pages, a
// buffer pool with LRU replacement and I/O accounting, sequential scans,
// external multiway merge sort, and CSV import/export.
//
// The paper's third stream processing tradeoff — multiple passes over input
// streams, i.e. the number of disk accesses (Section 4.1) — is what this
// package makes measurable: every page fetched from the backing file is
// counted, so the experiments can report the pass behaviour of pre-sorted
// single-scan plans against sort-then-stream plans.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/value"
)

// PageSize is the fixed page size in bytes.
const PageSize = 4096

// pageHeaderSize is the per-page bookkeeping: row count (2 bytes), used
// bytes (2 bytes), and an FNV-1a checksum of the payload (4 bytes). The
// checksum is what turns a torn (partial) page write into a detected
// ErrCorruptPage on the next read instead of rows silently decoded from
// zero-filled bytes.
const pageHeaderSize = 8

// ErrCorruptPage is wrapped by every page-decode failure: short page,
// impossible header, checksum mismatch, or truncated row.
var ErrCorruptPage = errors.New("storage: corrupt page")

// page is one fixed-size block of encoded rows, appended front to back.
type page struct {
	buf  [PageSize]byte
	rows int
	used int
}

func newPage() *page { return &page{used: pageHeaderSize} }

// tryAdd appends an encoded row; it reports false when the page is full.
func (p *page) tryAdd(enc []byte) bool {
	if p.used+len(enc) > PageSize {
		return false
	}
	copy(p.buf[p.used:], enc)
	p.used += len(enc)
	p.rows++
	return true
}

// finalize writes the header fields into the buffer.
func (p *page) finalize() {
	binary.LittleEndian.PutUint16(p.buf[0:2], uint16(p.rows))
	binary.LittleEndian.PutUint16(p.buf[2:4], uint16(p.used))
	binary.LittleEndian.PutUint32(p.buf[4:8], fnv32a(p.buf[pageHeaderSize:p.used]))
}

// fnv32a hashes a byte slice with 32-bit FNV-1a.
func fnv32a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// decodePage parses a finalized page image back into rows. Every failure
// wraps ErrCorruptPage.
func decodePage(buf []byte, schema *relation.Schema) ([]relation.Row, error) {
	if len(buf) < pageHeaderSize {
		return nil, fmt.Errorf("%w: short page (%d bytes)", ErrCorruptPage, len(buf))
	}
	n := int(binary.LittleEndian.Uint16(buf[0:2]))
	used := int(binary.LittleEndian.Uint16(buf[2:4]))
	if used > len(buf) || used < pageHeaderSize {
		return nil, fmt.Errorf("%w: used=%d", ErrCorruptPage, used)
	}
	if sum := binary.LittleEndian.Uint32(buf[4:8]); sum != fnv32a(buf[pageHeaderSize:used]) {
		return nil, fmt.Errorf("%w: checksum mismatch (torn write?)", ErrCorruptPage)
	}
	rows := make([]relation.Row, 0, n)
	off := pageHeaderSize
	for i := 0; i < n; i++ {
		row, sz, err := decodeRow(buf[off:used], schema)
		if err != nil {
			return nil, fmt.Errorf("%w: row %d: %v", ErrCorruptPage, i, err)
		}
		rows = append(rows, row)
		off += sz
	}
	return rows, nil
}

// encodeRow serializes a row: per column, ints and times as 8-byte
// little-endian, strings as a 2-byte length prefix plus bytes.
func encodeRow(row relation.Row) []byte {
	size := 0
	for _, v := range row {
		if v.Kind() == value.KindString {
			size += 2 + len(v.AsString())
		} else {
			size += 8
		}
	}
	out := make([]byte, 0, size)
	var scratch [8]byte
	for _, v := range row {
		switch v.Kind() {
		case value.KindString:
			s := v.AsString()
			binary.LittleEndian.PutUint16(scratch[:2], uint16(len(s)))
			out = append(out, scratch[:2]...)
			out = append(out, s...)
		default:
			binary.LittleEndian.PutUint64(scratch[:], uint64(v.AsInt()))
			out = append(out, scratch[:]...)
		}
	}
	return out
}

// decodeRow parses one row according to the schema, returning the row and
// the number of bytes consumed.
func decodeRow(buf []byte, schema *relation.Schema) (relation.Row, int, error) {
	row := make(relation.Row, 0, schema.Arity())
	off := 0
	for _, col := range schema.Cols {
		switch col.Kind {
		case value.KindString:
			if off+2 > len(buf) {
				return nil, 0, fmt.Errorf("truncated string length")
			}
			n := int(binary.LittleEndian.Uint16(buf[off : off+2]))
			off += 2
			if off+n > len(buf) {
				return nil, 0, fmt.Errorf("truncated string body")
			}
			row = append(row, value.String_(string(buf[off:off+n])))
			off += n
		case value.KindTime:
			if off+8 > len(buf) {
				return nil, 0, fmt.Errorf("truncated time")
			}
			row = append(row, value.TimeVal(interval.Time(binary.LittleEndian.Uint64(buf[off:off+8]))))
			off += 8
		default:
			if off+8 > len(buf) {
				return nil, 0, fmt.Errorf("truncated int")
			}
			row = append(row, value.Int(int64(binary.LittleEndian.Uint64(buf[off:off+8]))))
			off += 8
		}
	}
	return row, off, nil
}
