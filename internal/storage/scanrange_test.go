package storage

import (
	"path/filepath"
	"sync"
	"testing"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/stream"
)

// rangeFile builds a multi-page heap file with an unflushed tail row.
func rangeFile(t *testing.T, n int) (*HeapFile, []relation.Row) {
	t.Helper()
	hf, err := Create(filepath.Join(t.TempDir(), "r.tdb"), relation.TupleSchema, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hf.Close() })
	var want []relation.Row
	for i := 0; i < n; i++ {
		row := makeRow("S", "some-padding-value", interval.Time(i), interval.Time(i+3))
		want = append(want, row)
		if err := hf.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if hf.Pages() < 3 {
		t.Fatalf("test needs several flushed pages, got %d", hf.Pages())
	}
	return hf, want
}

// Contiguous ranges concatenated in order must reproduce Scan exactly,
// with the open tail page owned by whichever range reaches past Pages().
func TestScanRangePartitionsEqualScan(t *testing.T) {
	hf, want := rangeFile(t, 500)
	pages := hf.Pages()
	for _, k := range []int64{1, 2, 3, 5} {
		var got []relation.Row
		for i := int64(0); i < k; i++ {
			lo, hi := pages*i/k, pages*(i+1)/k
			if i == k-1 {
				hi = pages + 1 // the last shard drains the tail
			}
			rows, err := stream.Collect(hf.ScanRange(lo, hi))
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, rows...)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d rows, want %d", k, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("k=%d: row %d out of file order", k, i)
			}
		}
	}
}

// A range ending at Pages() excludes the unflushed tail; one reaching past
// it includes the tail; out-of-range bounds clamp rather than error.
func TestScanRangeTailAndClamping(t *testing.T) {
	hf, want := rangeFile(t, 500)
	pages := hf.Pages()

	flushedOnly, err := stream.Collect(hf.ScanRange(0, pages))
	if err != nil {
		t.Fatal(err)
	}
	withTail, err := stream.Collect(hf.ScanRange(0, pages+1))
	if err != nil {
		t.Fatal(err)
	}
	if len(withTail) != len(want) {
		t.Fatalf("tail-inclusive range: %d rows, want %d", len(withTail), len(want))
	}
	if tail := len(withTail) - len(flushedOnly); tail <= 0 {
		t.Fatalf("tail page not excluded from [0, Pages()): %d vs %d rows", len(flushedOnly), len(withTail))
	}
	if clamped, err := stream.Collect(hf.ScanRange(-3, pages*100)); err != nil || len(clamped) != len(want) {
		t.Fatalf("clamped range: %d rows, err %v", len(clamped), err)
	}
	if empty, err := stream.Collect(hf.ScanRange(2, 2)); err != nil || len(empty) != 0 {
		t.Fatalf("empty range produced %d rows, err %v", len(empty), err)
	}
}

// Disjoint ranges consumed concurrently (the parallel-scan access pattern)
// count every page exactly once through the shared pool and stats.
func TestScanRangeConcurrentDisjoint(t *testing.T) {
	hf, want := rangeFile(t, 500)
	pages := hf.Pages()
	const k = 4
	outs := make([][]relation.Row, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := int64(0); i < k; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			lo, hi := pages*i/k, pages*(i+1)/k
			if i == k-1 {
				hi = pages + 1
			}
			outs[i], errs[i] = stream.Collect(hf.ScanRange(lo, hi))
		}(i)
	}
	wg.Wait()
	var got []relation.Row
	for i := range outs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		got = append(got, outs[i]...)
	}
	if len(got) != len(want) {
		t.Fatalf("concurrent ranges: %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("concurrent ranges: row %d out of file order", i)
		}
	}
	if reads := hf.Stats().PagesRead; reads != pages {
		t.Errorf("disjoint ranges read %d pages, want exactly %d", reads, pages)
	}
}
