package storage

import (
	"fmt"
	"io"
	"os"
	"sync"

	"tdb/internal/fault"
	"tdb/internal/relation"
	"tdb/internal/stream"
)

func init() {
	fault.Declare("storage/page-read", "heap file page fetch (readPage)")
	fault.Declare("storage/page-write", "heap file page flush; torn mode writes a prefix")
}

// IOStats counts physical page traffic against the backing file and buffer
// pool hits.
type IOStats struct {
	PagesRead    int64
	PagesWritten int64
	PoolHits     int64
}

// HeapFile is an append-only paged file of encoded rows of one schema.
// Reads (Scan, ScanRange, readPage) are safe to run concurrently; writes
// (Append, Flush) are not, and must not overlap with reads.
type HeapFile struct {
	f      *os.File
	schema *relation.Schema
	pages  int64
	cur    *page
	stats  *IOStats
	pool   *bufferPool
	mu     sync.Mutex // guards pool and stats during concurrent reads
}

// Create creates (or truncates) a heap file at path with the given schema
// and a buffer pool of poolPages frames (minimum 1).
func Create(path string, schema *relation.Schema, poolPages int) (*HeapFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", path, err)
	}
	stats := &IOStats{}
	return &HeapFile{
		f:      f,
		schema: schema,
		cur:    newPage(),
		stats:  stats,
		pool:   newBufferPool(poolPages, stats),
	}, nil
}

// Schema returns the row schema of the file.
func (h *HeapFile) Schema() *relation.Schema { return h.schema }

// Stats returns the live I/O counters of the file.
func (h *HeapFile) Stats() *IOStats { return h.stats }

// Pages returns the number of full pages written so far (excluding the
// open tail page).
func (h *HeapFile) Pages() int64 { return h.pages }

// Append encodes and adds one row, spilling full pages to disk.
func (h *HeapFile) Append(row relation.Row) error {
	enc := encodeRow(row)
	if len(enc)+pageHeaderSize > PageSize {
		return fmt.Errorf("storage: row of %d bytes exceeds page size", len(enc))
	}
	if h.cur.tryAdd(enc) {
		return nil
	}
	if err := h.flushCurrent(); err != nil {
		return err
	}
	if !h.cur.tryAdd(enc) {
		return fmt.Errorf("storage: row does not fit an empty page")
	}
	return nil
}

// AppendAll appends every row of the slice.
func (h *HeapFile) AppendAll(rows []relation.Row) error {
	for _, r := range rows {
		if err := h.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// Flush forces the open tail page to disk (if it holds any rows).
func (h *HeapFile) Flush() error {
	if h.cur.rows == 0 {
		return nil
	}
	return h.flushCurrent()
}

func (h *HeapFile) flushCurrent() error {
	h.cur.finalize()
	// Failpoint: error mode fails the flush; torn mode persists only a
	// prefix of the page — the checksum catches it on the next read.
	n, ferr := fault.Torn("storage/page-write", PageSize)
	if ferr != nil {
		return fmt.Errorf("storage: write page %d: %w", h.pages, ferr)
	}
	if _, err := h.f.WriteAt(h.cur.buf[:n], h.pages*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", h.pages, err)
	}
	h.stats.PagesWritten++
	obsPageWritten()
	h.pages++
	h.cur = newPage()
	// The just-written page may be cached.
	return nil
}

// readPage returns the decoded rows of page i, through the buffer pool.
// Decoding runs outside the lock: parallel scan workers read disjoint page
// ranges, so the pool is contended only briefly per page.
func (h *HeapFile) readPage(i int64) ([]relation.Row, error) {
	h.mu.Lock()
	if rows, ok := h.pool.get(i); ok {
		h.mu.Unlock()
		return rows, nil
	}
	h.stats.PagesRead++
	h.mu.Unlock()
	obsPageRead()
	if ferr := fault.Check("storage/page-read"); ferr != nil {
		return nil, fmt.Errorf("storage: read page %d: %w", i, ferr)
	}
	var buf [PageSize]byte
	if _, err := h.f.ReadAt(buf[:], i*PageSize); err != nil && err != io.EOF {
		return nil, fmt.Errorf("storage: read page %d: %w", i, err)
	}
	rows, err := decodePage(buf[:], h.schema)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.pool.put(i, rows)
	h.mu.Unlock()
	return rows, nil
}

// Scan returns a stream over all rows, in file order. Each Scan that
// touches disk pages counts toward PagesRead unless served by the pool.
func (h *HeapFile) Scan() stream.Stream[relation.Row] {
	return h.ScanRange(0, h.pages+1)
}

// ScanRange returns a stream over the rows of flushed pages [lo, min(hi,
// Pages())), in file order. If hi exceeds Pages(), the open in-memory
// tail page is drained after the last flushed page, so ScanRange(0,
// Pages()+1) is equivalent to Scan(). Disjoint ranges may be consumed
// concurrently; each page read is counted once.
func (h *HeapFile) ScanRange(lo, hi int64) stream.Stream[relation.Row] {
	if lo < 0 {
		lo = 0
	}
	withTail := hi > h.pages
	if hi > h.pages {
		hi = h.pages
	}
	return &heapScan{h: h, page: lo, end: hi, tailDone: !withTail}
}

type heapScan struct {
	h        *HeapFile
	page     int64
	end      int64 // first flushed page beyond the range
	rows     []relation.Row
	i        int
	err      error
	tailDone bool
}

func (s *heapScan) Next() (relation.Row, bool) {
	for {
		if s.err != nil {
			return nil, false
		}
		if s.i < len(s.rows) {
			r := s.rows[s.i]
			s.i++
			return r, true
		}
		if s.page < s.end {
			rows, err := s.h.readPage(s.page)
			if err != nil {
				s.err = err
				return nil, false
			}
			s.rows, s.i = rows, 0
			s.page++
			continue
		}
		// All flushed pages of the range consumed: drain the open
		// in-memory tail page if the range extends past the file.
		if !s.tailDone {
			s.tailDone = true
			if s.h.cur.rows > 0 {
				s.h.cur.finalize()
				rows, err := decodePage(s.h.cur.buf[:], s.h.schema)
				if err != nil {
					s.err = err
					return nil, false
				}
				s.rows, s.i = rows, 0
				continue
			}
		}
		return nil, false
	}
}

func (s *heapScan) Err() error { return s.err }

// Close flushes and closes the backing file.
func (h *HeapFile) Close() error {
	if err := h.Flush(); err != nil {
		_ = h.f.Close() // best-effort cleanup; the flush error wins
		return err
	}
	return h.f.Close()
}

// bufferPool is a tiny LRU page cache.
type bufferPool struct {
	cap   int
	stats *IOStats
	pages map[int64][]relation.Row
	order []int64 // LRU order, least recent first
}

func newBufferPool(cap int, stats *IOStats) *bufferPool {
	if cap < 1 {
		cap = 1
	}
	return &bufferPool{cap: cap, stats: stats, pages: make(map[int64][]relation.Row)}
}

func (b *bufferPool) get(i int64) ([]relation.Row, bool) {
	rows, ok := b.pages[i]
	if !ok {
		return nil, false
	}
	b.stats.PoolHits++
	obsPoolHit()
	b.touch(i)
	return rows, true
}

func (b *bufferPool) put(i int64, rows []relation.Row) {
	if _, ok := b.pages[i]; !ok && len(b.pages) >= b.cap {
		victim := b.order[0]
		b.order = b.order[1:]
		delete(b.pages, victim)
	}
	b.pages[i] = rows
	b.touch(i)
}

func (b *bufferPool) touch(i int64) {
	for k, v := range b.order {
		if v == i {
			b.order = append(b.order[:k], b.order[k+1:]...)
			break
		}
	}
	b.order = append(b.order, i)
}
