package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"tdb/internal/relation"
)

// WriteCSV writes a relation as CSV with a header row of column names.
func WriteCSV(w io.Writer, rel *relation.Relation) error {
	cw := csv.NewWriter(w)
	header := make([]string, rel.Schema.Arity())
	for i, c := range rel.Schema.Cols {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("storage: csv header: %w", err)
	}
	rec := make([]string, rel.Schema.Arity())
	for _, row := range rel.Rows {
		for i, v := range row {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a relation from CSV produced by WriteCSV (or hand-written
// with the same header), validating the header against the schema and every
// row against the value kinds and the intra-tuple constraint.
func ReadCSV(r io.Reader, name string, schema *relation.Schema) (*relation.Relation, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: csv header: %w", err)
	}
	if len(header) != schema.Arity() {
		return nil, fmt.Errorf("storage: csv has %d columns, schema %s has %d", len(header), schema, schema.Arity())
	}
	for i, h := range header {
		if h != schema.Cols[i].Name {
			return nil, fmt.Errorf("storage: csv column %d is %q, schema expects %q", i, h, schema.Cols[i].Name)
		}
	}
	rel := relation.New(name, schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: csv line %d: %w", line, err)
		}
		row, err := relation.ParseRow(schema, rec)
		if err != nil {
			return nil, fmt.Errorf("storage: csv line %d: %w", line, err)
		}
		if err := rel.Insert(row); err != nil {
			return nil, fmt.Errorf("storage: csv line %d: %w", line, err)
		}
	}
	return rel, nil
}

// SaveCSV writes the relation to a file.
func SaveCSV(path string, rel *relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, rel); err != nil {
		_ = f.Close() // best-effort cleanup; the write error wins
		return err
	}
	return f.Close()
}

// LoadCSV reads a relation from a file.
func LoadCSV(path, name string, schema *relation.Schema) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, name, schema)
}
