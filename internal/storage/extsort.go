package storage

import (
	"container/heap"
	"fmt"
	"os"
	"path/filepath"

	"tdb/internal/relation"
	"tdb/internal/stream"
)

// SortStats reports the pass structure of an external sort: how many sorted
// runs were produced and how many times the data was read and written in
// total — the "multiple passes over input streams" cost of Section 4.1 that
// pre-sorted data avoids.
type SortStats struct {
	Runs         int
	PagesRead    int64
	PagesWritten int64
}

// ExternalSort sorts the rows of in by the comparison function using
// run generation bounded to memRows rows of workspace, followed by a single
// multiway merge of the run files in dir. It returns the sorted stream and
// fills stats (which may be nil).
//
// With memRows ≥ input size the sort degenerates to one in-memory run and
// no merge I/O; with smaller workspaces the experiments observe the extra
// read/write passes that buying the stream algorithms' sort order costs.
func ExternalSort(in stream.Stream[relation.Row], schema *relation.Schema,
	less func(a, b relation.Row) bool, memRows int, dir string, stats *SortStats) (stream.Stream[relation.Row], error) {
	if memRows < 1 {
		memRows = 1
	}

	var runs []*HeapFile
	cleanup := func() {
		for _, r := range runs {
			_ = r.Close() // best-effort teardown of temporary runs
		}
	}

	buf := make([]relation.Row, 0, memRows)
	flushRun := func() error {
		if len(buf) == 0 {
			return nil
		}
		sortRows(buf, less)
		path := filepath.Join(dir, fmt.Sprintf("run-%d.tdb", len(runs)))
		hf, err := Create(path, schema, 1)
		if err != nil {
			return err
		}
		if err := hf.AppendAll(buf); err != nil {
			_ = hf.Close() // best-effort cleanup; the append error wins
			return err
		}
		if err := hf.Flush(); err != nil {
			_ = hf.Close() // best-effort cleanup; the flush error wins
			return err
		}
		runs = append(runs, hf)
		obsSortRun()
		buf = buf[:0]
		return nil
	}

	for {
		row, ok := in.Next()
		if !ok {
			break
		}
		buf = append(buf, row)
		if len(buf) >= memRows {
			if err := flushRun(); err != nil {
				cleanup()
				return nil, err
			}
		}
	}
	if err := in.Err(); err != nil {
		cleanup()
		return nil, fmt.Errorf("storage: external sort input: %w", err)
	}

	// A single in-memory run needs no files at all.
	if len(runs) == 0 {
		sortRows(buf, less)
		if stats != nil {
			stats.Runs = 1
		}
		return stream.FromSlice(buf), nil
	}
	if err := flushRun(); err != nil {
		cleanup()
		return nil, err
	}

	if stats != nil {
		stats.Runs = len(runs)
		for _, r := range runs {
			stats.PagesWritten += r.Stats().PagesWritten
		}
	}
	return newMergeStream(runs, less, stats), nil
}

// sortRows is an in-place merge-insertion hybrid; the standard library sort
// cannot be used directly because rows compare through a closure — we wrap
// sort.Slice semantics with a simple top-down merge sort for stability.
func sortRows(rows []relation.Row, less func(a, b relation.Row) bool) {
	if len(rows) < 2 {
		return
	}
	tmp := make([]relation.Row, len(rows))
	var ms func(lo, hi int)
	ms = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		ms(lo, mid)
		ms(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if less(rows[j], rows[i]) {
				tmp[k] = rows[j]
				j++
			} else {
				tmp[k] = rows[i]
				i++
			}
			k++
		}
		for i < mid {
			tmp[k] = rows[i]
			i++
			k++
		}
		for j < hi {
			tmp[k] = rows[j]
			j++
			k++
		}
		copy(rows[lo:hi], tmp[lo:hi])
	}
	ms(0, len(rows))
}

// mergeStream is the k-way merge over run files, driven by a heap of run
// heads.
type mergeStream struct {
	runs  []*HeapFile
	scans []stream.Stream[relation.Row]
	h     runHeap
	less  func(a, b relation.Row) bool
	stats *SortStats
	err   error
	init  bool
}

type runHead struct {
	row relation.Row
	idx int
}

type runHeap struct {
	heads []runHead
	less  func(a, b relation.Row) bool
}

func (h runHeap) Len() int           { return len(h.heads) }
func (h runHeap) Less(i, j int) bool { return h.less(h.heads[i].row, h.heads[j].row) }
func (h runHeap) Swap(i, j int)      { h.heads[i], h.heads[j] = h.heads[j], h.heads[i] }
func (h *runHeap) Push(x any)        { h.heads = append(h.heads, x.(runHead)) }
func (h *runHeap) Pop() any {
	old := h.heads
	n := len(old)
	x := old[n-1]
	h.heads = old[:n-1]
	return x
}

func newMergeStream(runs []*HeapFile, less func(a, b relation.Row) bool, stats *SortStats) *mergeStream {
	return &mergeStream{runs: runs, less: less, stats: stats}
}

func (m *mergeStream) Next() (relation.Row, bool) {
	if m.err != nil {
		return nil, false
	}
	if !m.init {
		m.init = true
		m.h.less = m.less
		m.scans = make([]stream.Stream[relation.Row], len(m.runs))
		for i, r := range m.runs {
			m.scans[i] = r.Scan()
			if row, ok := m.scans[i].Next(); ok {
				m.h.heads = append(m.h.heads, runHead{row: row, idx: i})
			} else if err := m.scans[i].Err(); err != nil {
				m.fail(err)
				return nil, false
			}
		}
		heap.Init(&m.h)
	}
	if m.h.Len() == 0 {
		m.finish()
		return nil, false
	}
	top := m.h.heads[0]
	if row, ok := m.scans[top.idx].Next(); ok {
		m.h.heads[0] = runHead{row: row, idx: top.idx}
		heap.Fix(&m.h, 0)
	} else if err := m.scans[top.idx].Err(); err != nil {
		m.fail(err)
		return nil, false
	} else {
		heap.Pop(&m.h)
	}
	return top.row, true
}

func (m *mergeStream) Err() error { return m.err }

func (m *mergeStream) fail(err error) {
	m.err = err
	m.finish()
}

func (m *mergeStream) finish() {
	for _, r := range m.runs {
		if m.stats != nil {
			m.stats.PagesRead += r.Stats().PagesRead
		}
		name := r.f.Name()
		_ = r.Close()       // temporary run files; deletion below is the real cleanup
		_ = os.Remove(name) // best-effort: the OS reclaims temp dirs regardless
	}
	m.runs = nil
}
