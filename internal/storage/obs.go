package storage

import (
	"sync/atomic"

	"tdb/internal/obs"
)

// ioCounters is the set of live storage instruments. The per-file IOStats
// remain the source of truth for cost accounting; these counters add the
// process-wide running totals the /metrics endpoint exposes.
type ioCounters struct {
	pagesRead    *obs.Counter
	pagesWritten *obs.Counter
	poolHits     *obs.Counter
	sortRuns     *obs.Counter
}

// liveIO holds the registered counters; nil (the default) means metrics are
// off and the increment sites pay one atomic load plus a branch.
var liveIO atomic.Pointer[ioCounters]

// ObserveIO registers the storage layer's counters with reg and routes all
// subsequent page and sort-run traffic to them. Passing a nil registry
// turns the live counters off again. Safe to call while scans run.
func ObserveIO(reg *obs.Registry) {
	if reg == nil {
		liveIO.Store(nil)
		return
	}
	liveIO.Store(&ioCounters{
		pagesRead:    reg.Counter("tdb_storage_pages_read_total", "heap-file pages read from disk"),
		pagesWritten: reg.Counter("tdb_storage_pages_written_total", "heap-file pages written to disk"),
		poolHits:     reg.Counter("tdb_storage_pool_hits_total", "page reads served by the buffer pool"),
		sortRuns:     reg.Counter("tdb_storage_sort_runs_total", "external-sort run files created"),
	})
}

func obsPageRead() {
	if c := liveIO.Load(); c != nil {
		c.pagesRead.Inc()
	}
}

func obsPageWritten() {
	if c := liveIO.Load(); c != nil {
		c.pagesWritten.Inc()
	}
}

func obsPoolHit() {
	if c := liveIO.Load(); c != nil {
		c.poolHits.Inc()
	}
}

func obsSortRun() {
	if c := liveIO.Load(); c != nil {
		c.sortRuns.Inc()
	}
}
