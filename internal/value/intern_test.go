package value

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternerAssignsDenseStableIDs(t *testing.T) {
	in := NewInterner()
	a := in.ID("alpha")
	b := in.ID("beta")
	if a == b {
		t.Fatalf("distinct strings share id %d", a)
	}
	if a != 0 || b != 1 {
		t.Fatalf("ids not dense from zero: alpha=%d beta=%d", a, b)
	}
	if got := in.ID("alpha"); got != a {
		t.Fatalf("re-interning alpha changed id %d -> %d", a, got)
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
}

func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	words := []string{"", "x", "x", "λ·E[D]", "x\x1fy", "x"}
	for _, w := range words {
		id := in.ID(w)
		if got := in.Str(id); got != w {
			t.Fatalf("Str(ID(%q)) = %q", w, got)
		}
	}
	if in.Len() != 4 {
		t.Fatalf("Len = %d, want 4 distinct strings", in.Len())
	}
}

func TestInternerLookupDoesNotIntern(t *testing.T) {
	in := NewInterner()
	if _, ok := in.Lookup("ghost"); ok {
		t.Fatal("Lookup reported an unseen string")
	}
	if in.Len() != 0 {
		t.Fatalf("Lookup interned: Len = %d", in.Len())
	}
	id := in.ID("ghost")
	got, ok := in.Lookup("ghost")
	if !ok || got != id {
		t.Fatalf("Lookup(ghost) = %d,%v, want %d,true", got, ok, id)
	}
}

func TestInternerStrPanicsOnUnknownID(t *testing.T) {
	in := NewInterner()
	in.ID("only")
	defer func() {
		if recover() == nil {
			t.Fatal("Str on an unissued id did not panic")
		}
	}()
	in.Str(7)
}

func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	ids := make([][]uint32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]uint32, perWorker)
			for i := 0; i < perWorker; i++ {
				// Heavy overlap across workers exercises the double-checked
				// insert path.
				ids[w][i] = in.ID(fmt.Sprintf("s%d", i%50))
			}
		}(w)
	}
	wg.Wait()
	if in.Len() != 50 {
		t.Fatalf("Len = %d, want 50", in.Len())
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			want := in.ID(fmt.Sprintf("s%d", i%50))
			if ids[w][i] != want {
				t.Fatalf("worker %d saw id %d for s%d, want %d", w, ids[w][i], i%50, want)
			}
		}
	}
}
