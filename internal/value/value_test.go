package value

import (
	"testing"
	"testing/quick"

	"tdb/internal/interval"
)

func TestKindsAndAccessors(t *testing.T) {
	i := Int(42)
	s := String_("hello")
	tm := TimeVal(7)

	if i.Kind() != KindInt || s.Kind() != KindString || tm.Kind() != KindTime {
		t.Fatal("kinds wrong")
	}
	if i.AsInt() != 42 {
		t.Error("AsInt")
	}
	if s.AsString() != "hello" {
		t.Error("AsString")
	}
	if tm.AsTime() != 7 {
		t.Error("AsTime")
	}
	// Int reinterpretable as time.
	if i.AsTime() != 42 {
		t.Error("int AsTime")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt(string)", func() { String_("x").AsInt() })
	mustPanic("AsString(int)", func() { Int(1).AsString() })
	mustPanic("AsTime(string)", func() { String_("x").AsTime() })
	mustPanic("Compare(int,string)", func() { Int(1).Compare(String_("x")) })
}

func TestCompare(t *testing.T) {
	if Int(1).Compare(Int(2)) != -1 || Int(2).Compare(Int(1)) != 1 || Int(3).Compare(Int(3)) != 0 {
		t.Error("int compare")
	}
	if String_("a").Compare(String_("b")) != -1 || String_("b").Compare(String_("a")) != 1 {
		t.Error("string compare")
	}
	if String_("a").Compare(String_("a")) != 0 {
		t.Error("string compare equal")
	}
	// int and time are mutually comparable.
	if !Int(5).Comparable(TimeVal(5)) || !Int(5).Equal(TimeVal(5)) {
		t.Error("int/time comparability")
	}
	if Int(5).Comparable(String_("5")) {
		t.Error("int/string must not be comparable")
	}
	if !Int(1).Less(Int(2)) || Int(2).Less(Int(1)) {
		t.Error("Less")
	}
}

// Compare is a total order on each kind: antisymmetric and transitive.
func TestCompareProperties(t *testing.T) {
	f := func(a, b, c int64) bool {
		va, vb, vc := Int(a), Int(b), Int(c)
		if va.Compare(vb) != -vb.Compare(va) {
			return false
		}
		if va.Compare(vb) <= 0 && vb.Compare(vc) <= 0 && va.Compare(vc) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return String_(a).Compare(String_(b)) == -String_(b).Compare(String_(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	if Int(-3).String() != "-3" {
		t.Error("int rendering")
	}
	if String_("x").String() != "x" {
		t.Error("string rendering")
	}
	if TimeVal(12).String() != "12" {
		t.Error("time rendering")
	}
	if TimeVal(interval.Forever).String() != "∞" {
		t.Error("forever rendering")
	}
	if KindInt.String() != "int" || KindString.String() != "string" || KindTime.String() != "time" {
		t.Error("kind rendering")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind must render")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		kind Kind
		in   string
		want Value
		ok   bool
	}{
		{KindInt, "42", Int(42), true},
		{KindInt, "-7", Int(-7), true},
		{KindInt, "x", Value{}, false},
		{KindString, "anything", String_("anything"), true},
		{KindTime, "99", TimeVal(99), true},
		{KindTime, "forever", TimeVal(interval.Forever), true},
		{KindTime, "∞", TimeVal(interval.Forever), true},
		{KindTime, "soon", Value{}, false},
	}
	for _, c := range cases {
		got, err := Parse(c.kind, c.in)
		if (err == nil) != c.ok {
			t.Errorf("Parse(%v, %q) err = %v, want ok=%v", c.kind, c.in, err, c.ok)
			continue
		}
		if c.ok && !got.Equal(c.want) {
			t.Errorf("Parse(%v, %q) = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
	if _, err := Parse(Kind(9), "x"); err == nil {
		t.Error("unknown kind accepted")
	}
}

// Round trip: rendering then parsing is the identity for every kind.
func TestParseRoundTrip(t *testing.T) {
	f := func(i int64, s string) bool {
		vi, err1 := Parse(KindInt, Int(i).String())
		vt, err2 := Parse(KindTime, TimeVal(interval.Time(i)).String())
		vs, err3 := Parse(KindString, String_(s).String())
		return err1 == nil && err2 == nil && err3 == nil &&
			vi.Equal(Int(i)) && vt.Equal(TimeVal(interval.Time(i))) && vs.Equal(String_(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
