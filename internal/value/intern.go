package value

import "sync"

// Interner assigns dense uint32 ids to strings so the columnar batch
// representation (internal/relation.Batch) can store surrogate and value
// columns as integer ids: an equality between two interned columns is one
// integer compare inside the sweep instead of a byte-wise string compare
// through a boxed Value.
//
// Ids are assigned in first-sight order and are stable for the lifetime of
// the Interner. They carry *identity only*: comparing ids for anything but
// equality is meaningless (id order is arrival order, not lexicographic).
// Sort orders therefore keep using Value.Compare; the batch kernels only
// ever test interned columns for equality.
//
// An Interner is safe for concurrent use: parallel shard workers may
// rehydrate rows (read side) while a converter interns new strings.
type Interner struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	strs []string
}

// NewInterner returns an empty intern table.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]uint32)}
}

// ID returns the id of s, interning it on first sight.
func (in *Interner) ID(s string) uint32 {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[s]; ok {
		return id
	}
	id = uint32(len(in.strs))
	in.ids[s] = id
	in.strs = append(in.strs, s)
	return id
}

// Lookup returns the id of s without interning, and ok=false when s has
// never been seen.
func (in *Interner) Lookup(s string) (uint32, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	id, ok := in.ids[s]
	return id, ok
}

// Str returns the string behind an id handed out by ID. It panics on ids
// the table never issued, mirroring the accessor contract of Value.
func (in *Interner) Str(id uint32) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if int(id) >= len(in.strs) {
		// lint:allow panic — documented accessor contract, like a failed type assertion
		panic("value: Str on id never issued by this Interner")
	}
	return in.strs[id]
}

// Len reports the number of distinct strings interned.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.strs)
}
