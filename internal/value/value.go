// Package value implements the typed atomic values that populate the cells
// of temporal tuples: 64-bit integers, strings, and chronons (time points).
// The engine, the algebra and the Quel-like language all operate on these
// values; comparison follows the total order of each type so that values
// can serve as sort keys and as operands of the inequality predicates that
// dominate temporal queries.
package value

import (
	"fmt"
	"strconv"

	"tdb/internal/interval"
)

// Kind enumerates the value types.
type Kind uint8

// The supported kinds. KindTime is distinct from KindInt so that schema
// validation can insist that ValidFrom/ValidTo columns carry chronons.
const (
	KindInt Kind = iota
	KindString
	KindTime
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindTime:
		return "time"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a typed atomic value. The zero Value is the integer 0.
type Value struct {
	kind Kind
	i    int64 // int payload or chronon
	s    string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// String_ returns a string value. (Named with a trailing underscore because
// String is the Stringer method.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// TimeVal returns a chronon value.
func TimeVal(t interval.Time) Value { return Value{kind: KindTime, i: int64(t)} }

// Kind reports the type of the value.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload; it panics if the value is a string.
func (v Value) AsInt() int64 {
	if v.kind == KindString {
		// lint:allow panic — documented accessor contract, like a failed type assertion
		panic("value: AsInt on string value " + strconv.Quote(v.s))
	}
	return v.i
}

// AsString returns the string payload; it panics on non-string values.
func (v Value) AsString() string {
	if v.kind != KindString {
		// lint:allow panic — documented accessor contract, like a failed type assertion
		panic("value: AsString on " + v.kind.String() + " value")
	}
	return v.s
}

// AsTime returns the chronon payload; it panics on string values. Integers
// are accepted and reinterpreted, mirroring the paper's treatment of time
// points as natural numbers.
func (v Value) AsTime() interval.Time {
	if v.kind == KindString {
		// lint:allow panic — documented accessor contract, like a failed type assertion
		panic("value: AsTime on string value " + strconv.Quote(v.s))
	}
	return interval.Time(v.i)
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return v.s
	case KindTime:
		if interval.Time(v.i) == interval.Forever {
			return "∞"
		}
		return strconv.FormatInt(v.i, 10)
	default:
		return strconv.FormatInt(v.i, 10)
	}
}

// Comparable reports whether two values may be compared: identical kinds,
// or int/time which share the integer order.
func (v Value) Comparable(o Value) bool {
	if v.kind == o.kind {
		return true
	}
	numeric := func(k Kind) bool { return k == KindInt || k == KindTime }
	return numeric(v.kind) && numeric(o.kind)
}

// Compare returns -1, 0 or +1 following the total order of the common type.
// It panics when the values are not comparable; the analyzer rejects such
// queries before execution.
func (v Value) Compare(o Value) int {
	if !v.Comparable(o) {
		// lint:allow panic — unreachable at runtime: the semantic analyzer rejects mixed-kind comparisons before execution
		panic(fmt.Sprintf("value: comparing %s with %s", v.kind, o.kind))
	}
	if v.kind == KindString {
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		}
		return 0
	}
	switch {
	case v.i < o.i:
		return -1
	case v.i > o.i:
		return 1
	}
	return 0
}

// Equal reports v == o under Compare.
func (v Value) Equal(o Value) bool { return v.Comparable(o) && v.Compare(o) == 0 }

// Less reports v < o under Compare.
func (v Value) Less(o Value) bool { return v.Compare(o) < 0 }

// Parse interprets s as a value of the given kind. Time accepts either a
// decimal chronon or the symbol "forever"/"∞".
func Parse(kind Kind, s string) (Value, error) {
	switch kind {
	case KindString:
		return String_(s), nil
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: parsing %q as int: %w", s, err)
		}
		return Int(i), nil
	case KindTime:
		if s == "forever" || s == "∞" {
			return TimeVal(interval.Forever), nil
		}
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: parsing %q as time: %w", s, err)
		}
		return TimeVal(interval.Time(i)), nil
	}
	return Value{}, fmt.Errorf("value: unknown kind %v", kind)
}
