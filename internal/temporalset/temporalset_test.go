package temporalset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/value"
)

func k(key string, from, to interval.Time) Keyed {
	return Keyed{Key: key, Span: interval.New(from, to)}
}

func TestUnionBasics(t *testing.T) {
	xs := []Keyed{k("a", 0, 5), k("a", 10, 15)}
	ys := []Keyed{k("a", 4, 11), k("b", 0, 2)}
	got, err := Union(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := []Keyed{k("a", 0, 15), k("b", 0, 2)}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDiffBasics(t *testing.T) {
	xs := []Keyed{k("a", 0, 20)}
	ys := []Keyed{k("a", 3, 5), k("a", 8, 12)}
	got, err := Diff(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := []Keyed{k("a", 0, 3), k("a", 5, 8), k("a", 12, 20)}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Subtracting an uncovered key leaves x untouched.
	got, err = Diff(xs, []Keyed{k("b", 0, 100)})
	if err != nil || len(got) != 1 || got[0] != xs[0] {
		t.Errorf("diff with foreign key: %v %v", got, err)
	}
	// Full coverage removes everything.
	got, err = Diff(xs, []Keyed{k("a", 0, 20)})
	if err != nil || len(got) != 0 {
		t.Errorf("diff full coverage: %v %v", got, err)
	}
}

func TestIntersectBasics(t *testing.T) {
	xs := []Keyed{k("a", 0, 10), k("a", 20, 30)}
	ys := []Keyed{k("a", 5, 25)}
	got, err := Intersect(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := []Keyed{k("a", 5, 10), k("a", 20, 25)}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOrderingValidation(t *testing.T) {
	bad := []Keyed{k("a", 9, 12), k("a", 1, 3)}
	good := []Keyed{k("a", 0, 1)}
	if _, err := Union(bad, good); err == nil {
		t.Error("unsorted group accepted")
	}
	split := []Keyed{k("a", 0, 1), k("b", 0, 1), k("a", 5, 6)}
	if _, err := Union(split, good); err == nil {
		t.Error("non-contiguous key accepted")
	}
	if _, err := Union(good, bad); err == nil {
		t.Error("unsorted right group accepted")
	}
}

// The chronon oracle: every operator's output covers exactly the pointwise
// combination of the inputs' coverage, and outputs are coalesced (maximal,
// disjoint, non-meeting, ordered).
func TestChrononSemantics(t *testing.T) {
	gen := func(rng *rand.Rand) []Keyed {
		var out []Keyed
		for _, key := range []string{"a", "b"} {
			n := rng.Intn(8)
			var g []Keyed
			for i := 0; i < n; i++ {
				s := interval.Time(rng.Intn(30))
				g = append(g, k(key, s, s+interval.Time(1+rng.Intn(10))))
			}
			out = append(out, Normalize(g)...)
		}
		return out
	}
	covers := func(xs []Keyed, key string, c interval.Time) bool {
		for _, x := range xs {
			if x.Key == key && x.Span.Contains(c) {
				return true
			}
		}
		return false
	}
	coalesced := func(xs []Keyed) bool {
		for i := 1; i < len(xs); i++ {
			if xs[i].Key == xs[i-1].Key && xs[i].Span.Start <= xs[i-1].Span.End {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs, ys := gen(rng), gen(rng)
		u, err1 := Union(xs, ys)
		d, err2 := Diff(xs, ys)
		in, err3 := Intersect(xs, ys)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		if !coalesced(u) || !coalesced(d) || !coalesced(in) {
			return false
		}
		for _, key := range []string{"a", "b"} {
			for c := interval.Time(-1); c < 45; c++ {
				cx, cy := covers(xs, key, c), covers(ys, key, c)
				if covers(u, key, c) != (cx || cy) {
					return false
				}
				if covers(d, key, c) != (cx && !cy) {
					return false
				}
				if covers(in, key, c) != (cx && cy) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestFromTuples(t *testing.T) {
	ts := []relation.Tuple{
		{S: "smith", V: value.String_("Assistant"), Span: interval.New(0, 5)},
		{S: "smith", V: value.String_("Full"), Span: interval.New(5, 9)},
	}
	ks := FromTuples(ts)
	if len(ks) != 2 || ks[0].Key == ks[1].Key {
		t.Errorf("keys must separate values: %v", ks)
	}
	if ks[0].Span != interval.New(0, 5) {
		t.Errorf("span lost: %v", ks[0])
	}
}

// Algebraic identities on random inputs: x∖y ∪ (x∩y) covers exactly x;
// union is commutative; intersection distributes through coverage.
func TestAlgebraicIdentities(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var xs, ys []Keyed
		for i := 0; i < rng.Intn(10); i++ {
			s := interval.Time(rng.Intn(25))
			xs = append(xs, k("a", s, s+interval.Time(1+rng.Intn(8))))
		}
		for i := 0; i < rng.Intn(10); i++ {
			s := interval.Time(rng.Intn(25))
			ys = append(ys, k("a", s, s+interval.Time(1+rng.Intn(8))))
		}
		xs, ys = Normalize(xs), Normalize(ys)

		d, _ := Diff(xs, ys)
		in, _ := Intersect(xs, ys)
		rebuilt, err := Union(Normalize(d), Normalize(in))
		if err != nil {
			return false
		}
		canonX, err := Union(xs, nil)
		if err != nil {
			return false
		}
		if len(rebuilt) != len(canonX) {
			return false
		}
		for i := range rebuilt {
			if rebuilt[i] != canonX[i] {
				return false
			}
		}
		u1, _ := Union(xs, ys)
		u2, _ := Union(ys, xs)
		if len(u1) != len(u2) {
			return false
		}
		for i := range u1 {
			if u1[i] != u2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
