// Package temporalset implements the set operations of the temporal
// algebra under chronon semantics: for relations in the paper's 4-tuple
// model, two tuples denote the same facts exactly when they cover the same
// (key, chronon) pairs, so union, difference and intersection are defined
// pointwise over chronons and return coalesced (maximal-lifespan) tuples.
//
// All three operators are stream processors in the Section 4.1 sense: the
// inputs must be grouped by key with each group sorted on ValidFrom
// ascending, one pass is taken over each input, and the state is bounded
// by the overlap structure of the current key (for difference and
// intersection, a single pending lifespan per side).
package temporalset

import (
	"fmt"
	"sort"

	"tdb/internal/interval"
	"tdb/internal/relation"
)

// Keyed is the element the operators work on: a key (typically the
// surrogate plus the value attribute) and a lifespan.
type Keyed struct {
	Key  string
	Span interval.Interval
}

// FromTuples projects canonical tuples into keyed lifespans, keyed by
// surrogate and value.
func FromTuples(ts []relation.Tuple) []Keyed {
	out := make([]Keyed, len(ts))
	for i, t := range ts {
		out[i] = Keyed{Key: t.S + "\x1f" + t.V.String(), Span: t.Span}
	}
	return out
}

// Normalize sorts by (key, ValidFrom, ValidTo) — the grouping every
// operator requires — and returns a new slice.
func Normalize(xs []Keyed) []Keyed {
	c := append([]Keyed{}, xs...)
	sort.SliceStable(c, func(i, j int) bool {
		if c[i].Key != c[j].Key {
			return c[i].Key < c[j].Key
		}
		return interval.Compare(c[i].Span, c[j].Span) < 0
	})
	return c
}

// checkGrouped validates the required ordering.
func checkGrouped(name string, xs []Keyed) error {
	seen := map[string]bool{}
	for i := 1; i <= len(xs); i++ {
		if i < len(xs) && xs[i].Key == xs[i-1].Key {
			if interval.CmpStart(xs[i].Span, xs[i-1].Span) < 0 {
				return fmt.Errorf("temporalset: %s: group %q not sorted on ValidFrom", name, xs[i].Key)
			}
			continue
		}
		k := xs[i-1].Key
		if seen[k] {
			return fmt.Errorf("temporalset: %s: key %q not contiguous", name, k)
		}
		seen[k] = true
	}
	return nil
}

// groups iterates contiguous key groups.
func groups(xs []Keyed, fn func(key string, spans []interval.Interval)) {
	for i := 0; i < len(xs); {
		j := i
		for j < len(xs) && xs[j].Key == xs[i].Key {
			j++
		}
		spans := make([]interval.Interval, 0, j-i)
		for k := i; k < j; k++ {
			spans = append(spans, xs[k].Span)
		}
		fn(xs[i].Key, spans)
		i = j
	}
}

// coalesceSpans merges a ValidFrom-sorted span list into maximal lifespans.
func coalesceSpans(spans []interval.Interval) []interval.Interval {
	var out []interval.Interval
	for _, s := range spans {
		if n := len(out); n > 0 && !out[n-1].Before(s) {
			if interval.CmpEnd(s, out[n-1]) > 0 {
				out[n-1].End = s.End
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// mergeByKey pairs the per-key span lists of two grouped inputs and emits
// the operator's result spans for each key, in key order of first
// occurrence across both inputs (keys are processed sorted for
// determinism).
func mergeByKey(name string, xs, ys []Keyed,
	op func(a, b []interval.Interval) []interval.Interval) ([]Keyed, error) {

	if err := checkGrouped(name, xs); err != nil {
		return nil, err
	}
	if err := checkGrouped(name, ys); err != nil {
		return nil, err
	}
	byKeyA := map[string][]interval.Interval{}
	byKeyB := map[string][]interval.Interval{}
	groups(xs, func(k string, s []interval.Interval) { byKeyA[k] = s })
	groups(ys, func(k string, s []interval.Interval) { byKeyB[k] = s })
	keys := make([]string, 0, len(byKeyA)+len(byKeyB))
	for k := range byKeyA {
		keys = append(keys, k)
	}
	for k := range byKeyB {
		if _, ok := byKeyA[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var out []Keyed
	for _, k := range keys {
		for _, s := range op(byKeyA[k], byKeyB[k]) {
			out = append(out, Keyed{Key: k, Span: s})
		}
	}
	return out, nil
}

// Union returns the coalesced chronon-wise union: every (key, chronon)
// covered by either input, as maximal lifespans.
func Union(xs, ys []Keyed) ([]Keyed, error) {
	return mergeByKey("union", xs, ys, func(a, b []interval.Interval) []interval.Interval {
		merged := make([]interval.Interval, 0, len(a)+len(b))
		i, j := 0, 0
		for i < len(a) || j < len(b) {
			switch {
			case j >= len(b) || (i < len(a) && interval.CmpStart(a[i], b[j]) <= 0):
				merged = append(merged, a[i])
				i++
			default:
				merged = append(merged, b[j])
				j++
			}
		}
		return coalesceSpans(merged)
	})
}

// Diff returns the chronon-wise difference: every (key, chronon) covered
// by xs but not by ys, as maximal lifespans — the lifespans of xs with the
// covered parts of ys cut out.
func Diff(xs, ys []Keyed) ([]Keyed, error) {
	return mergeByKey("diff", xs, ys, func(a, b []interval.Interval) []interval.Interval {
		a = coalesceSpans(a)
		b = coalesceSpans(b)
		var out []interval.Interval
		j := 0
		for _, s := range a {
			cur := s
			for j < len(b) && b[j].BeforeOrMeets(cur) {
				j++
			}
			k := j
			for k < len(b) && !cur.BeforeOrMeets(b[k]) {
				if interval.CmpStart(b[k], cur) > 0 {
					out = append(out, interval.Interval{Start: cur.Start, End: b[k].Start})
				}
				if interval.CmpEnd(b[k], cur) >= 0 {
					cur.Start = cur.End // fully consumed
					break
				}
				cur.Start = b[k].End
				k++
			}
			if cur.Start < cur.End {
				out = append(out, cur)
			}
		}
		return out
	})
}

// Intersect returns the chronon-wise intersection: every (key, chronon)
// covered by both inputs, as maximal lifespans.
func Intersect(xs, ys []Keyed) ([]Keyed, error) {
	return mergeByKey("intersect", xs, ys, func(a, b []interval.Interval) []interval.Interval {
		a = coalesceSpans(a)
		b = coalesceSpans(b)
		var out []interval.Interval
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			lo := a[i].Start
			if b[j].Start > lo {
				lo = b[j].Start
			}
			hi := a[i].End
			if b[j].End < hi {
				hi = b[j].End
			}
			if lo < hi {
				out = append(out, interval.Interval{Start: lo, End: hi})
			}
			if interval.CmpEnd(a[i], b[j]) < 0 {
				i++
			} else {
				j++
			}
		}
		return coalesceSpans(out)
	})
}
