// Package baseline implements the conventional join strategies the paper
// contrasts the stream approach against (Section 3): the nested-loop θ-join
// — "traditionally the best strategy for processing less-than joins" — the
// Cartesian product followed by selection, and their semijoin forms. They
// serve both as performance baselines in the experiments and as oracles for
// the property tests of the stream algorithms.
package baseline

import (
	"sort"

	"tdb/internal/interval"
	"tdb/internal/metrics"
)

// NestedLoopJoin emits every pair (x, y) whose lifespans satisfy the θ
// predicate, scanning the inner relation once per outer tuple. This is the
// conventional strategy for a join qualification that is a conjunction of
// inequalities.
func NestedLoopJoin[T any](xs, ys []T, span func(T) interval.Interval,
	theta func(x, y interval.Interval) bool, probe *metrics.Probe, emit func(x, y T)) {
	probe.SetBuffers(2)
	for _, x := range xs {
		probe.IncReadLeft()
		sx := span(x)
		for _, y := range ys {
			probe.IncReadRight()
			probe.IncComparisons(1)
			if theta(sx, span(y)) {
				probe.IncEmitted(1)
				emit(x, y)
			}
		}
		probe.IncPasses() // one full scan of the inner per outer tuple
	}
}

// NestedLoopSemijoin emits every x for which some y satisfies θ, stopping
// the inner scan at the first witness.
func NestedLoopSemijoin[T any](xs, ys []T, span func(T) interval.Interval,
	theta func(x, y interval.Interval) bool, probe *metrics.Probe, emit func(T)) {
	probe.SetBuffers(2)
	for _, x := range xs {
		probe.IncReadLeft()
		sx := span(x)
		for _, y := range ys {
			probe.IncReadRight()
			probe.IncComparisons(1)
			if theta(sx, span(y)) {
				probe.IncEmitted(1)
				emit(x)
				break
			}
		}
		probe.IncPasses()
	}
}

// CartesianFilter materializes the full Cartesian product and then applies
// the selection — the literal reading of the unoptimized parse tree of
// Figure 3(a). It exists to measure what conventional algebraic
// optimization (pushing selections down, Figure 3(b)) buys before any
// stream processing is considered.
func CartesianFilter[T any](xs, ys []T, span func(T) interval.Interval,
	theta func(x, y interval.Interval) bool, probe *metrics.Probe, emit func(x, y T)) {
	type pair struct{ x, y T }
	product := make([]pair, 0, len(xs)*len(ys))
	for _, x := range xs {
		probe.IncReadLeft()
		for _, y := range ys {
			probe.IncReadRight()
			product = append(product, pair{x, y})
			probe.StateAdd(1)
		}
	}
	for _, p := range product {
		probe.IncComparisons(1)
		if theta(span(p.x), span(p.y)) {
			probe.IncEmitted(1)
			emit(p.x, p.y)
		}
	}
	probe.StateRemove(int64(len(product)))
}

// sortedBySpan returns a copy of xs stably sorted on (ValidFrom, ValidTo)
// ascending — the canonical ordering of the sort-merge band scans.
func sortedBySpan[T any](xs []T, span func(T) interval.Interval) []T {
	out := append([]T{}, xs...)
	sort.SliceStable(out, func(i, j int) bool {
		return interval.Compare(span(out[i]), span(out[j])) < 0
	})
	return out
}

// SortMergeJoin is the workspace-governed fallback join: both inputs are
// sorted on (ValidFrom, ValidTo) ascending and merged with a band scan that,
// for each x, examines only the y whose lifespans can still intersect it.
// Unlike the stream algorithms it retains no state beyond the two cursor
// positions — its workspace is bounded by construction, at the price of
// operating over fully materialized inputs. The θ predicate must imply
// lifespan intersection (the contain, contained and overlap conditions all
// do); predicates that can match disjoint lifespans (before, general θ)
// need NestedLoopJoin. Emission order is deterministic: x in span order,
// each with its y band in span order.
func SortMergeJoin[T any](xs, ys []T, span func(T) interval.Interval,
	theta func(x, y interval.Interval) bool, probe *metrics.Probe, emit func(x, y T)) {
	probe.SetBuffers(2)
	sx := sortedBySpan(xs, span)
	sy := sortedBySpan(ys, span)
	lo := 0
	for _, x := range sx {
		probe.IncReadLeft()
		ix := span(x)
		// y ending at or before this x starts can intersect neither it nor
		// any later x (ValidFrom ascending): retire it from the band.
		for lo < len(sy) && span(sy[lo]).BeforeOrMeets(ix) {
			probe.IncReadRight()
			lo++
		}
		for j := lo; j < len(sy); j++ {
			iy := span(sy[j])
			if ix.BeforeOrMeets(iy) {
				break // every later y starts at or after x ends
			}
			probe.IncComparisons(1)
			if theta(ix, iy) {
				probe.IncEmitted(1)
				emit(x, sy[j])
			}
		}
		probe.IncPasses()
	}
	for ; lo < len(sy); lo++ {
		probe.IncReadRight()
	}
}

// SortMergeSemijoin is the band-scan semijoin: each x is emitted (in span
// order) on its first witness y under θ. The same intersection-implying
// restriction on θ as SortMergeJoin applies.
func SortMergeSemijoin[T any](xs, ys []T, span func(T) interval.Interval,
	theta func(x, y interval.Interval) bool, probe *metrics.Probe, emit func(T)) {
	probe.SetBuffers(2)
	sx := sortedBySpan(xs, span)
	sy := sortedBySpan(ys, span)
	lo := 0
	for _, x := range sx {
		probe.IncReadLeft()
		ix := span(x)
		for lo < len(sy) && span(sy[lo]).BeforeOrMeets(ix) {
			probe.IncReadRight()
			lo++
		}
		for j := lo; j < len(sy); j++ {
			iy := span(sy[j])
			if ix.BeforeOrMeets(iy) {
				break
			}
			probe.IncComparisons(1)
			if theta(ix, iy) {
				probe.IncEmitted(1)
				emit(x)
				break
			}
		}
		probe.IncPasses()
	}
	for ; lo < len(sy); lo++ {
		probe.IncReadRight()
	}
}

// SelfJoinPairs emits every ordered pair (x_i, x_j), i ≠ j, of a single
// relation satisfying θ — the oracle for the self-semijoin algorithms.
func SelfJoinPairs[T any](xs []T, span func(T) interval.Interval,
	theta func(a, b interval.Interval) bool, probe *metrics.Probe, emit func(a, b T)) {
	for i, a := range xs {
		probe.IncReadLeft()
		sa := span(a)
		for j, b := range xs {
			if i == j {
				continue
			}
			probe.IncComparisons(1)
			if theta(sa, span(b)) {
				probe.IncEmitted(1)
				emit(a, b)
			}
		}
	}
}
