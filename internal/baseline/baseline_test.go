package baseline

import (
	"math/rand"
	"testing"

	"tdb/internal/interval"
	"tdb/internal/metrics"
)

type item struct {
	id int
	iv interval.Interval
}

func itemSpan(t item) interval.Interval { return t.iv }

func gen(rng *rand.Rand, n, base int) []item {
	out := make([]item, n)
	for i := range out {
		s := interval.Time(rng.Intn(60))
		out[i] = item{id: base + i, iv: interval.New(s, s+interval.Time(1+rng.Intn(25)))}
	}
	return out
}

func contain(a, b interval.Interval) bool { return a.Start < b.Start && b.End < a.End }

func TestNestedLoopJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs, ys := gen(rng, 20, 0), gen(rng, 25, 100)
	probe := &metrics.Probe{}
	pairs := map[[2]int]bool{}
	NestedLoopJoin(xs, ys, itemSpan, contain, probe, func(a, b item) {
		pairs[[2]int{a.id, b.id}] = true
	})
	// Exhaustive cross-check.
	want := 0
	for _, a := range xs {
		for _, b := range ys {
			if contain(a.iv, b.iv) {
				want++
				if !pairs[[2]int{a.id, b.id}] {
					t.Fatalf("missing pair %d,%d", a.id, b.id)
				}
			}
		}
	}
	if len(pairs) != want {
		t.Fatalf("pairs %d, want %d", len(pairs), want)
	}
	if probe.Comparisons != int64(len(xs)*len(ys)) {
		t.Errorf("comparisons %d, want %d", probe.Comparisons, len(xs)*len(ys))
	}
	if probe.Passes != int64(len(xs)) {
		t.Errorf("passes %d, want one inner scan per outer tuple (%d)", probe.Passes, len(xs))
	}
}

func TestNestedLoopSemijoin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs, ys := gen(rng, 30, 0), gen(rng, 30, 100)
	got := map[int]bool{}
	NestedLoopSemijoin(xs, ys, itemSpan, contain, nil, func(a item) {
		if got[a.id] {
			t.Fatalf("duplicate %d", a.id)
		}
		got[a.id] = true
	})
	for _, a := range xs {
		want := false
		for _, b := range ys {
			if contain(a.iv, b.iv) {
				want = true
				break
			}
		}
		if got[a.id] != want {
			t.Fatalf("id %d: got %v want %v", a.id, got[a.id], want)
		}
	}
}

// The semijoin stops its inner scan at the first witness.
func TestNestedLoopSemijoinEarlyExit(t *testing.T) {
	xs := []item{{0, interval.New(0, 100)}}
	ys := []item{{1, interval.New(1, 2)}, {2, interval.New(3, 4)}, {3, interval.New(5, 6)}}
	probe := &metrics.Probe{}
	NestedLoopSemijoin(xs, ys, itemSpan, contain, probe, func(item) {})
	if probe.Comparisons != 1 {
		t.Errorf("comparisons %d, want 1 (first witness)", probe.Comparisons)
	}
}

func TestCartesianFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs, ys := gen(rng, 15, 0), gen(rng, 17, 100)
	probe := &metrics.Probe{}
	n := 0
	CartesianFilter(xs, ys, itemSpan, contain, probe, func(a, b item) { n++ })
	if probe.StateHighWater != int64(len(xs)*len(ys)) {
		t.Errorf("materialized %d pairs, want full product %d", probe.StateHighWater, len(xs)*len(ys))
	}
	nl := 0
	NestedLoopJoin(xs, ys, itemSpan, contain, nil, func(a, b item) { nl++ })
	if n != nl {
		t.Errorf("cartesian-filter %d vs nested-loop %d", n, nl)
	}
}

// The governed-fallback band scans must agree with the nested loop for
// every intersection-implying θ, across many random inputs.
func TestSortMergeAgainstNestedLoop(t *testing.T) {
	thetas := map[string]func(a, b interval.Interval) bool{
		"contain":   contain,
		"contained": func(a, b interval.Interval) bool { return contain(b, a) },
		"overlap":   func(a, b interval.Interval) bool { return a.Intersects(b) },
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		xs, ys := gen(rng, 5+rng.Intn(40), 0), gen(rng, 5+rng.Intn(40), 1000)
		for name, theta := range thetas {
			want := map[[2]int]bool{}
			NestedLoopJoin(xs, ys, itemSpan, theta, nil, func(a, b item) {
				want[[2]int{a.id, b.id}] = true
			})
			got := map[[2]int]bool{}
			probe := &metrics.Probe{}
			SortMergeJoin(xs, ys, itemSpan, theta, probe, func(a, b item) {
				if got[[2]int{a.id, b.id}] {
					t.Fatalf("%s trial %d: duplicate pair %d,%d", name, trial, a.id, b.id)
				}
				got[[2]int{a.id, b.id}] = true
			})
			if len(got) != len(want) {
				t.Fatalf("%s trial %d: %d pairs, want %d", name, trial, len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("%s trial %d: missing pair %v", name, trial, p)
				}
			}
			if probe.StateHighWater != 0 {
				t.Errorf("%s: band scan retained state (%d); must be buffers-only", name, probe.StateHighWater)
			}

			wantSemi := map[int]bool{}
			NestedLoopSemijoin(xs, ys, itemSpan, theta, nil, func(a item) { wantSemi[a.id] = true })
			gotSemi := map[int]bool{}
			SortMergeSemijoin(xs, ys, itemSpan, theta, nil, func(a item) {
				if gotSemi[a.id] {
					t.Fatalf("%s trial %d: duplicate semijoin emit %d", name, trial, a.id)
				}
				gotSemi[a.id] = true
			})
			if len(gotSemi) != len(wantSemi) {
				t.Fatalf("%s trial %d: semijoin %d rows, want %d", name, trial, len(gotSemi), len(wantSemi))
			}
			for id := range wantSemi {
				if !gotSemi[id] {
					t.Fatalf("%s trial %d: semijoin missing %d", name, trial, id)
				}
			}
		}
	}
}

// The band scan's emission order is deterministic: x in (TS, TE) order,
// bands in (TS, TE) order — two runs produce identical sequences.
func TestSortMergeDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs, ys := gen(rng, 30, 0), gen(rng, 30, 100)
	run := func() [][2]int {
		var out [][2]int
		SortMergeJoin(xs, ys, itemSpan, func(a, b interval.Interval) bool { return a.Intersects(b) },
			nil, func(a, b item) { out = append(out, [2]int{a.id, b.id}) })
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSelfJoinPairs(t *testing.T) {
	xs := []item{
		{0, interval.New(0, 10)},
		{1, interval.New(2, 5)},
		{2, interval.New(3, 4)},
	}
	var pairs [][2]int
	SelfJoinPairs(xs, itemSpan, contain, nil, func(a, b item) {
		pairs = append(pairs, [2]int{a.id, b.id})
	})
	// 0⊃1, 0⊃2, 1⊃2.
	if len(pairs) != 3 {
		t.Fatalf("pairs %v", pairs)
	}
	for _, p := range pairs {
		if p[0] >= p[1] {
			t.Errorf("unexpected pair %v", p)
		}
	}
	// No self pairs even with duplicates of the same span.
	dup := []item{{0, interval.New(0, 10)}, {1, interval.New(0, 10)}}
	n := 0
	SelfJoinPairs(dup, itemSpan, func(a, b interval.Interval) bool { return true }, nil, func(a, b item) { n++ })
	if n != 2 {
		t.Errorf("ordered pairs over duplicates: %d, want 2", n)
	}
}
