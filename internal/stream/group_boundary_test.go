package stream

import (
	"errors"
	"testing"
)

// TestGroupReduceEmptyInput: an empty batch produces no groups at all —
// the never-started accumulator must not leak out as a zero-value pair.
func TestGroupReduceEmptyInput(t *testing.T) {
	got, err := Collect(GroupSum(FromSlice([]kv(nil)),
		func(x kv) string { return x.k }, func(x kv) int64 { return x.v }))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("groups over empty input = %v, want none", got)
	}
	// Polling past exhaustion stays exhausted.
	g := GroupCount(FromSlice([]kv{}), func(x kv) string { return x.k })
	for i := 0; i < 3; i++ {
		if p, ok := g.Next(); ok {
			t.Fatalf("Next() after empty exhaustion = %v, true", p)
		}
	}
}

// TestGroupReduceErrorSuppressesFinalGroup: when the input fails mid-group,
// the partial accumulator is not emitted as if the group had closed.
func TestGroupReduceErrorSuppressesFinalGroup(t *testing.T) {
	boom := errors.New("boom")
	in := &flaky{pre: []int{1, 2}, err: boom}
	g := GroupSum(in, func(int) string { return "g" }, func(x int) int64 { return int64(x) })
	var pairs []Pair[string, int64]
	for p, ok := g.Next(); ok; p, ok = g.Next() {
		pairs = append(pairs, p)
	}
	if !errors.Is(g.Err(), boom) {
		t.Fatalf("Err() = %v, want boom", g.Err())
	}
	if len(pairs) != 0 {
		t.Fatalf("partial group emitted despite input error: %v", pairs)
	}
}

// TestGroupReduceNonAdjacentKeys documents the grouped-input contract: a
// key recurring after an intervening group opens a fresh group rather than
// being merged backwards.
func TestGroupReduceNonAdjacentKeys(t *testing.T) {
	in := FromSlice([]kv{{"a", 1}, {"b", 2}, {"a", 4}})
	got, err := Collect(GroupSum(in, func(x kv) string { return x.k }, func(x kv) int64 { return x.v }))
	if err != nil {
		t.Fatal(err)
	}
	want := []Pair[string, int64]{{"a", 1}, {"b", 2}, {"a", 4}}
	if len(got) != len(want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("group %d = %v, want %v", i, got[i], want[i])
		}
	}
}
