// Package stream implements the stream processing substrate of Section 4.1
// of the paper: a stream is an ordered sequence of data objects consumed one
// element at a time in the specified ordering, and a stream processor is a
// function from input streams to output streams that may keep a small local
// state summarizing the portion of its inputs read so far.
//
// Streams here are pull-based and generic. Next reports the next element;
// after exhaustion, Err reports any failure encountered while producing the
// stream (the bufio.Scanner discipline, keeping the per-element hot path
// free of error plumbing). Stream processors are composed by wrapping, which
// directly mirrors the paper's view of function composition as connecting a
// network of processors.
package stream

import (
	"fmt"

	"tdb/internal/interval"
)

// Stream is an ordered sequence of elements, consumed front to back.
type Stream[T any] interface {
	// Next returns the next element, or ok=false when the stream is
	// exhausted or failed. After ok=false, Err distinguishes the two.
	Next() (T, bool)
	// Err returns the first error encountered, or nil on clean exhaustion.
	Err() error
}

// slice is an in-memory stream over a slice.
type slice[T any] struct {
	xs []T
	i  int
}

// FromSlice returns a stream yielding the elements of xs in order. The
// slice is not copied; callers must not mutate it during iteration.
func FromSlice[T any](xs []T) Stream[T] { return &slice[T]{xs: xs} }

func (s *slice[T]) Next() (T, bool) {
	if s.i >= len(s.xs) {
		var zero T
		return zero, false
	}
	x := s.xs[s.i]
	s.i++
	return x, true
}

func (s *slice[T]) Err() error { return nil }

// Empty returns a stream with no elements.
func Empty[T any]() Stream[T] { return FromSlice[T](nil) }

// Collect drains the stream into a slice, returning the stream's error.
func Collect[T any](s Stream[T]) ([]T, error) {
	var out []T
	for {
		x, ok := s.Next()
		if !ok {
			return out, s.Err()
		}
		out = append(out, x)
	}
}

// Func adapts a generator function to a Stream. The function returns
// ok=false on exhaustion; a non-nil error stops the stream.
type Func[T any] struct {
	F   func() (T, bool, error)
	err error
}

// Next implements Stream.
func (f *Func[T]) Next() (T, bool) {
	if f.err != nil {
		var zero T
		return zero, false
	}
	x, ok, err := f.F()
	if err != nil {
		f.err = err
		var zero T
		return zero, false
	}
	return x, ok
}

// Err implements Stream.
func (f *Func[T]) Err() error { return f.err }

// filter yields only elements satisfying the predicate.
type filter[T any] struct {
	in   Stream[T]
	pred func(T) bool
}

// Filter returns the sub-stream of elements satisfying pred, preserving
// order. A filter is itself a stream processor with empty state; note that
// filtering is order-preserving, the property Section 4.2.3 exploits when
// using a semijoin as a preprocessor for a join.
func Filter[T any](in Stream[T], pred func(T) bool) Stream[T] {
	return &filter[T]{in: in, pred: pred}
}

func (f *filter[T]) Next() (T, bool) {
	for {
		x, ok := f.in.Next()
		if !ok {
			var zero T
			return zero, false
		}
		if f.pred(x) {
			return x, true
		}
	}
}

func (f *filter[T]) Err() error { return f.in.Err() }

// mapped applies a function to every element.
type mapped[T, U any] struct {
	in Stream[T]
	f  func(T) U
}

// Map returns the stream of f(x) for each input element x, in order.
func Map[T, U any](in Stream[T], f func(T) U) Stream[U] {
	return &mapped[T, U]{in: in, f: f}
}

func (m *mapped[T, U]) Next() (U, bool) {
	x, ok := m.in.Next()
	if !ok {
		var zero U
		return zero, false
	}
	return m.f(x), true
}

func (m *mapped[T, U]) Err() error { return m.in.Err() }

// concat chains streams back to back.
type concat[T any] struct {
	parts []Stream[T]
	err   error
}

// Concat yields all elements of each stream in turn.
func Concat[T any](parts ...Stream[T]) Stream[T] { return &concat[T]{parts: parts} }

func (c *concat[T]) Next() (T, bool) {
	var zero T
	if c.err != nil {
		return zero, false
	}
	for len(c.parts) > 0 {
		x, ok := c.parts[0].Next()
		if ok {
			return x, true
		}
		if err := c.parts[0].Err(); err != nil {
			// Latch the failure and drop every part: a subsequent Next
			// must not re-drive the failed producer or skip into later
			// parts as if the prefix had been exhausted cleanly.
			c.err = err
			c.parts = nil
			return zero, false
		}
		c.parts = c.parts[1:]
	}
	return zero, false
}

func (c *concat[T]) Err() error { return c.err }

// take yields at most n elements.
type take[T any] struct {
	in Stream[T]
	n  int
}

// Take returns the stream of the first n elements.
func Take[T any](in Stream[T], n int) Stream[T] { return &take[T]{in: in, n: n} }

func (t *take[T]) Next() (T, bool) {
	if t.n <= 0 {
		var zero T
		return zero, false
	}
	t.n--
	return t.in.Next()
}

func (t *take[T]) Err() error { return t.in.Err() }

// counted counts elements as they pass.
type counted[T any] struct {
	in Stream[T]
	n  *int64
}

// Counting returns a pass-through stream that increments *n per element.
// The core algorithms use it to attribute reads to probe counters without
// knowing the concrete source.
func Counting[T any](in Stream[T], n *int64) Stream[T] { return &counted[T]{in: in, n: n} }

func (c *counted[T]) Next() (T, bool) {
	x, ok := c.in.Next()
	if ok {
		*c.n++
	}
	return x, ok
}

func (c *counted[T]) Err() error { return c.in.Err() }

// checked verifies the sort order of a stream as it is consumed.
type checked[T any] struct {
	in    Stream[T]
	span  func(T) interval.Interval
	cmp   func(a, b interval.Interval) int
	prev  interval.Interval
	begun bool
	err   error
	pos   int
}

// CheckOrdered wraps a stream of temporal elements and fails it with a
// descriptive error the moment two consecutive elements violate the
// comparison function. The stream algorithms require properly sorted input
// (Section 4.1); this adapter turns a silent wrong answer into a loud error.
func CheckOrdered[T any](in Stream[T], span func(T) interval.Interval, cmp func(a, b interval.Interval) int) Stream[T] {
	return &checked[T]{in: in, span: span, cmp: cmp}
}

func (c *checked[T]) Next() (T, bool) {
	if c.err != nil {
		var zero T
		return zero, false
	}
	x, ok := c.in.Next()
	if !ok {
		return x, false
	}
	s := c.span(x)
	if c.begun && c.cmp(c.prev, s) > 0 {
		c.err = fmt.Errorf("stream: element %d out of order: %v then %v", c.pos, c.prev, s)
		var zero T
		return zero, false
	}
	c.prev, c.begun = s, true
	c.pos++
	return x, true
}

func (c *checked[T]) Err() error {
	if c.err != nil {
		return c.err
	}
	return c.in.Err()
}

// failing is a stream that fails after yielding a prefix; tests use it to
// exercise error propagation through processor networks.
type failing[T any] struct {
	in   Stream[T]
	n    int
	fail error
	err  error
}

// FailAfter yields the first n elements of in and then fails with err.
func FailAfter[T any](in Stream[T], n int, err error) Stream[T] {
	return &failing[T]{in: in, n: n, fail: err}
}

func (f *failing[T]) Next() (T, bool) {
	if f.err != nil {
		var zero T
		return zero, false
	}
	if f.n <= 0 {
		f.err = f.fail
		var zero T
		return zero, false
	}
	f.n--
	return f.in.Next()
}

func (f *failing[T]) Err() error {
	if f.err != nil {
		return f.err
	}
	return f.in.Err()
}
