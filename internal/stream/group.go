package stream

// Pair is a generic two-field record, used by grouped reductions and by the
// join algorithms' output (a joined pair of tuples before concatenation).
type Pair[A, B any] struct {
	First  A
	Second B
}

// groupReduce is the Figure 4 stream processor generalized: on input grouped
// by key, it folds each group into an accumulator and emits one (key, acc)
// pair per group. Its local workspace is exactly one accumulator and the
// buffered element — the paper's point that for grouped input the state is
// summary information of constant size, independent of group length.
type groupReduce[T any, K comparable, A any] struct {
	in      Stream[T]
	key     func(T) K
	init    func() A
	step    func(A, T) A
	cur     K
	acc     A
	started bool
	done    bool
}

// GroupReduce returns the stream of per-group reductions of in, which must
// be grouped (all elements with equal keys adjacent). init produces a fresh
// accumulator; step folds one element into it.
func GroupReduce[T any, K comparable, A any](in Stream[T], key func(T) K, init func() A, step func(A, T) A) Stream[Pair[K, A]] {
	return &groupReduce[T, K, A]{in: in, key: key, init: init, step: step}
}

func (g *groupReduce[T, K, A]) Next() (Pair[K, A], bool) {
	if g.done {
		return Pair[K, A]{}, false
	}
	for {
		x, ok := g.in.Next()
		if !ok {
			g.done = true
			if g.in.Err() != nil || !g.started {
				return Pair[K, A]{}, false
			}
			return Pair[K, A]{First: g.cur, Second: g.acc}, true
		}
		k := g.key(x)
		switch {
		case !g.started:
			g.started = true
			g.cur, g.acc = k, g.step(g.init(), x)
		case k == g.cur:
			g.acc = g.step(g.acc, x)
		default:
			out := Pair[K, A]{First: g.cur, Second: g.acc}
			g.cur, g.acc = k, g.step(g.init(), x)
			return out, true
		}
	}
}

func (g *groupReduce[T, K, A]) Err() error { return g.in.Err() }

// GroupSum is the literal processor of Figure 4: it sums a numeric
// projection of each element per group of the grouped input.
func GroupSum[T any, K comparable](in Stream[T], key func(T) K, num func(T) int64) Stream[Pair[K, int64]] {
	return GroupReduce(in, key,
		func() int64 { return 0 },
		func(acc int64, x T) int64 { return acc + num(x) })
}

// GroupCount counts elements per group of the grouped input.
func GroupCount[T any, K comparable](in Stream[T], key func(T) K) Stream[Pair[K, int64]] {
	return GroupReduce(in, key,
		func() int64 { return 0 },
		func(acc int64, _ T) int64 { return acc + 1 })
}
