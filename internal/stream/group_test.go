package stream

import (
	"errors"
	"testing"
)

type kv struct {
	k string
	v int64
}

// TestGroupReduceBoundaries covers the group-closure cases: a group closed
// by the arrival of the next key, the final group closed by exhaustion, and
// singleton groups in between.
func TestGroupReduceBoundaries(t *testing.T) {
	in := FromSlice([]kv{
		{"a", 1}, {"a", 2}, {"a", 3}, // closed by the arrival of "b"
		{"b", 10},          // singleton, closed by "c"
		{"c", 5}, {"c", 5}, // closed by exhaustion
	})
	got, err := Collect(GroupSum(in, func(x kv) string { return x.k }, func(x kv) int64 { return x.v }))
	if err != nil {
		t.Fatal(err)
	}
	want := []Pair[string, int64]{{"a", 6}, {"b", 10}, {"c", 10}}
	if len(got) != len(want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("group %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestGroupReduceSingleGroup checks input that is one long group: exactly
// one pair, emitted at exhaustion.
func TestGroupReduceSingleGroup(t *testing.T) {
	xs := make([]kv, 100)
	for i := range xs {
		xs[i] = kv{"only", 1}
	}
	s := GroupCount(FromSlice(xs), func(x kv) string { return x.k })
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != (Pair[string, int64]{"only", 100}) {
		t.Errorf("single group = %v", got)
	}
	// The stream stays exhausted on further pulls.
	if _, ok := s.Next(); ok {
		t.Error("exhausted group stream yielded again")
	}
}

// TestGroupReduceEmpty checks that an empty input yields no groups — no
// spurious zero-value pair from the never-started accumulator.
func TestGroupReduceEmpty(t *testing.T) {
	got, err := Collect(GroupSum(Empty[kv](), func(x kv) string { return x.k }, func(x kv) int64 { return x.v }))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty input produced groups: %v", got)
	}
}

// TestGroupReduceErrorPropagation checks that an input error surfaces via
// Err() and suppresses the partially accumulated final group.
func TestGroupReduceErrorPropagation(t *testing.T) {
	boom := errors.New("disk on fire")
	i := 0
	src := &Func[kv]{F: func() (kv, bool, error) {
		i++
		if i > 3 {
			return kv{}, false, boom
		}
		return kv{"a", int64(i)}, true, nil
	}}
	g := GroupReduce(src, func(x kv) string { return x.k },
		func() int64 { return 0 },
		func(acc int64, x kv) int64 { return acc + x.v })
	if p, ok := g.Next(); ok {
		t.Errorf("errored stream emitted partial group %v", p)
	}
	if !errors.Is(g.Err(), boom) {
		t.Errorf("Err() = %v, want %v", g.Err(), boom)
	}
	// Exhausted-with-error stays that way.
	if _, ok := g.Next(); ok {
		t.Error("errored group stream yielded on re-pull")
	}
}
