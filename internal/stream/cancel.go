package stream

import "context"

// cancelEvery is the number of Next calls between context polls: frequent
// enough that an aborted worker stops within a bounded number of rows,
// sparse enough that the mutex inside ctx.Err stays off the per-row path.
const cancelEvery = 32

// Cancelable wraps a stream so cancellation of ctx surfaces as an
// end-of-stream with Err() = ctx.Err(). The single-pass operators already
// abort on a source error, so wrapping a worker's inputs is all it takes
// for first-error cancellation to unwind the whole shard promptly. With an
// un-canceled context the wrapper is transparent: it forwards every
// element and error unchanged.
func Cancelable[T any](ctx context.Context, s Stream[T]) Stream[T] {
	return &cancelable[T]{ctx: ctx, inner: s}
}

type cancelable[T any] struct {
	ctx   context.Context
	inner Stream[T]
	n     int
	err   error
}

func (c *cancelable[T]) Next() (T, bool) {
	var zero T
	if c.err != nil {
		return zero, false
	}
	if c.n%cancelEvery == 0 {
		if err := c.ctx.Err(); err != nil {
			c.err = err
			return zero, false
		}
	}
	c.n++
	return c.inner.Next()
}

func (c *cancelable[T]) Err() error {
	if c.err != nil {
		return c.err
	}
	return c.inner.Err()
}
