package stream

import (
	"errors"
	"testing"
)

// flaky fails once and then — misbehaving on purpose — starts producing
// again. Combinators must latch the first failure instead of re-driving
// such a producer.
type flaky struct {
	pre   []int
	post  []int
	err   error
	calls int
}

func (f *flaky) Next() (int, bool) {
	f.calls++
	if len(f.pre) > 0 {
		x := f.pre[0]
		f.pre = f.pre[1:]
		return x, true
	}
	if f.calls == 2 { // the call that observes the failure
		return 0, false
	}
	if len(f.post) > 0 {
		x := f.post[0]
		f.post = f.post[1:]
		return x, true
	}
	return 0, false
}

func (f *flaky) Err() error { return f.err }

// drain polls the stream a few extra times past exhaustion, the way a
// defensive consumer might, and returns everything it produced.
func drain(s Stream[int]) []int {
	var out []int
	for i := 0; i < 20; i++ {
		x, ok := s.Next()
		if ok {
			out = append(out, x)
		}
	}
	return out
}

func TestConcatDoesNotRedriveFailedPart(t *testing.T) {
	boom := errors.New("boom")
	bad := &flaky{pre: []int{1}, post: []int{99}, err: boom}
	c := Concat[int](bad, FromSlice([]int{7, 8}))
	got := drain(c)
	if !errors.Is(c.Err(), boom) {
		t.Fatalf("concat lost the part error: %v", c.Err())
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("concat produced %v after a part failure, want just [1]", got)
	}
}

func TestConcatErrVisibleAfterExhaustion(t *testing.T) {
	boom := errors.New("boom")
	c := Concat(FromSlice([]int{1}), FailAfter(FromSlice([]int{2, 3}), 1, boom))
	got := drain(c)
	if len(got) != 2 {
		t.Fatalf("want [1 2] before the failure, got %v", got)
	}
	if !errors.Is(c.Err(), boom) {
		t.Fatalf("Err after exhaustion = %v, want boom", c.Err())
	}
	// A clean concat reports nil.
	ok := Concat(FromSlice([]int{1}), FromSlice([]int{2}))
	drain(ok)
	if ok.Err() != nil {
		t.Fatalf("clean concat reports %v", ok.Err())
	}
}

func TestFilterErrVisibleAfterExhaustion(t *testing.T) {
	boom := errors.New("boom")
	f := Filter(FailAfter(FromSlice([]int{1, 2, 3, 4}), 2, boom), func(x int) bool { return x%2 == 0 })
	got := drain(f)
	if !errors.Is(f.Err(), boom) {
		t.Fatalf("filter lost the upstream error: %v", f.Err())
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("filter produced %v, want [2]", got)
	}
}

func TestMapErrVisibleAfterExhaustion(t *testing.T) {
	boom := errors.New("boom")
	m := Map(FailAfter(FromSlice([]int{1, 2, 3}), 1, boom), func(x int) int { return 10 * x })
	got := drain(m)
	if !errors.Is(m.Err(), boom) {
		t.Fatalf("map lost the upstream error: %v", m.Err())
	}
	if len(got) != 1 || got[0] != 10 {
		t.Fatalf("map produced %v, want [10]", got)
	}
}

func TestTakeErrVisibleAfterExhaustion(t *testing.T) {
	boom := errors.New("boom")
	// The failure happens within the taken prefix, so Take must surface it.
	tk := Take(FailAfter(FromSlice([]int{1, 2, 3}), 1, boom), 3)
	got := drain(tk)
	if !errors.Is(tk.Err(), boom) {
		t.Fatalf("take lost the upstream error: %v", tk.Err())
	}
	if len(got) != 1 {
		t.Fatalf("take produced %v, want [1]", got)
	}
}
