package stream

import (
	"tdb/internal/relation"
	"tdb/internal/value"
)

// DefaultBatchSize is the batch granularity of the batched iterators: large
// enough to amortize the per-batch Next through the interface, small enough
// that a batch's endpoint columns stay cache-resident during a sweep.
const DefaultBatchSize = 1024

// batched re-blocks a row stream into columnar batches.
type batched struct {
	in     Stream[relation.Row]
	schema *relation.Schema
	intern *value.Interner
	size   int
	done   bool
}

// Batched converts a row stream into a batch-at-a-time stream: each batch
// holds up to size rows (DefaultBatchSize when size <= 0) converted to
// columnar form over the given schema, interning strings into in (a private
// table when nil). Together with Unbatched it adapts row operators and
// batch operators in either direction.
func Batched(s Stream[relation.Row], schema *relation.Schema, in *value.Interner, size int) Stream[*relation.Batch] {
	if size <= 0 {
		size = DefaultBatchSize
	}
	if in == nil {
		in = value.NewInterner()
	}
	return &batched{in: s, schema: schema, intern: in, size: size}
}

func (b *batched) Next() (*relation.Batch, bool) {
	if b.done {
		return nil, false
	}
	out := relation.NewBatch(b.schema, b.intern, b.size)
	for out.Len() < b.size {
		r, ok := b.in.Next()
		if !ok {
			b.done = true
			break
		}
		out.AppendRow(r)
	}
	if out.Len() == 0 {
		return nil, false
	}
	return out, true
}

func (b *batched) Err() error { return b.in.Err() }

// unbatched flattens a batch stream back into rows.
type unbatched struct {
	in   Stream[*relation.Batch]
	rows []relation.Row
	i    int
}

// Unbatched converts a batch stream back into a row stream, rehydrating
// each batch in one block allocation and yielding its rows in order.
func Unbatched(s Stream[*relation.Batch]) Stream[relation.Row] {
	return &unbatched{in: s}
}

func (u *unbatched) Next() (relation.Row, bool) {
	for u.i >= len(u.rows) {
		b, ok := u.in.Next()
		if !ok {
			return nil, false
		}
		u.rows, u.i = b.Rows(), 0
	}
	r := u.rows[u.i]
	u.i++
	return r, true
}

func (u *unbatched) Err() error { return u.in.Err() }
