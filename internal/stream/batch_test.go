package stream

import (
	"errors"
	"fmt"
	"testing"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/value"
)

func batchTestRows(n int) []relation.Row {
	rows := make([]relation.Row, n)
	for i := range rows {
		rows[i] = relation.TupleToRow(relation.Tuple{
			S:    fmt.Sprintf("s%d", i%7),
			V:    value.String_(fmt.Sprintf("v%d", i%3)),
			Span: interval.Interval{Start: interval.Time(i), End: interval.Time(i + 5)},
		})
	}
	return rows
}

func TestBatchedUnbatchedRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 4, 5, 17} {
		rows := batchTestRows(n)
		out, err := Collect(Unbatched(Batched(FromSlice(rows), relation.TupleSchema, nil, 4)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(out) != n {
			t.Fatalf("n=%d: got %d rows back", n, len(out))
		}
		for i := range out {
			if out[i].Key() != rows[i].Key() {
				t.Fatalf("n=%d row %d: got %q want %q", n, i, out[i].Key(), rows[i].Key())
			}
		}
	}
}

func TestBatchedBlockSizes(t *testing.T) {
	rows := batchTestRows(10)
	bs := Batched(FromSlice(rows), relation.TupleSchema, nil, 4)
	var sizes []int
	for {
		b, ok := bs.Next()
		if !ok {
			break
		}
		sizes = append(sizes, b.Len())
	}
	if bs.Err() != nil {
		t.Fatal(bs.Err())
	}
	want := []int{4, 4, 2}
	if len(sizes) != len(want) {
		t.Fatalf("got %d batches %v, want %v", len(sizes), sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("batch sizes %v, want %v", sizes, want)
		}
	}
}

func TestBatchedPropagatesError(t *testing.T) {
	rows := batchTestRows(8)
	boom := errors.New("boom")
	src := FailAfter(FromSlice(rows), 6, boom)
	sink := Unbatched(Batched(src, relation.TupleSchema, nil, 4))
	var got int
	for {
		_, ok := sink.Next()
		if !ok {
			break
		}
		got++
	}
	if !errors.Is(sink.Err(), boom) {
		t.Fatalf("Err = %v, want boom", sink.Err())
	}
	if got != 6 {
		t.Fatalf("yielded %d rows before failing, want 6", got)
	}
}
