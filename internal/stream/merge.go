package stream

// kmerge is the order-preserving k-way merge the parallel executor uses
// to recombine per-shard outputs into one stream with the declared sort
// order intact.
type kmerge[T any] struct {
	cmp    func(a, b T) int
	parts  []Stream[T]
	heads  []T
	ok     []bool
	err    error
	primed bool
}

// MergeK merges individually ordered streams into one ordered stream
// under cmp. The merge is deterministic and stable: ties go to the
// earliest part, and elements of one part keep their relative order — so
// when the parts' key ranges ascend disjointly the output is exactly
// their concatenation. The first part failure fails the merged stream;
// the error remains visible from Err after exhaustion.
func MergeK[T any](cmp func(a, b T) int, parts ...Stream[T]) Stream[T] {
	return &kmerge[T]{
		cmp:   cmp,
		parts: parts,
		heads: make([]T, len(parts)),
		ok:    make([]bool, len(parts)),
	}
}

// fill reloads the buffered head of part i, capturing the first error.
func (m *kmerge[T]) fill(i int) {
	x, ok := m.parts[i].Next()
	if ok {
		m.heads[i], m.ok[i] = x, true
		return
	}
	m.ok[i] = false
	if err := m.parts[i].Err(); err != nil && m.err == nil {
		m.err = err
	}
}

func (m *kmerge[T]) Next() (T, bool) {
	var zero T
	if !m.primed {
		m.primed = true
		for i := range m.parts {
			m.fill(i)
		}
	}
	if m.err != nil {
		return zero, false
	}
	best := -1
	for i := range m.heads {
		if m.ok[i] && (best < 0 || m.cmp(m.heads[i], m.heads[best]) < 0) {
			best = i
		}
	}
	if best < 0 {
		return zero, false
	}
	x := m.heads[best]
	m.fill(best)
	if m.err != nil {
		// The refill failed: stop at the error rather than emitting an
		// element whose successors are unknown (bufio.Scanner discipline).
		return zero, false
	}
	return x, true
}

func (m *kmerge[T]) Err() error { return m.err }

// dedup suppresses consecutive duplicates.
type dedup[T any] struct {
	in    Stream[T]
	same  func(a, b T) bool
	prev  T
	begun bool
}

// Dedup drops every element equal (under same) to its immediate
// predecessor. After a position-ordered MergeK this removes the replicas
// of boundary-spanning tuples: all copies share a position tag, so they
// arrive adjacent and collapse to one.
func Dedup[T any](in Stream[T], same func(a, b T) bool) Stream[T] {
	return &dedup[T]{in: in, same: same}
}

func (d *dedup[T]) Next() (T, bool) {
	for {
		x, ok := d.in.Next()
		if !ok {
			var zero T
			return zero, false
		}
		if d.begun && d.same(d.prev, x) {
			continue
		}
		d.prev, d.begun = x, true
		return x, true
	}
}

func (d *dedup[T]) Err() error { return d.in.Err() }
