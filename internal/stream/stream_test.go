package stream

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tdb/internal/interval"
)

func ints(xs ...int) Stream[int] { return FromSlice(xs) }

func mustCollect[T any](t *testing.T, s Stream[T]) []T {
	t.Helper()
	out, err := Collect(s)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return out
}

func TestFromSliceAndCollect(t *testing.T) {
	got := mustCollect(t, ints(1, 2, 3))
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("got %v", got)
	}
	if got := mustCollect(t, Empty[int]()); len(got) != 0 {
		t.Errorf("Empty yielded %v", got)
	}
	// Exhausted stream keeps returning ok=false.
	s := ints(1)
	s.Next()
	if _, ok := s.Next(); ok {
		t.Error("stream yielded past end")
	}
	if _, ok := s.Next(); ok {
		t.Error("stream yielded past end twice")
	}
}

func TestFilterMapTakeConcat(t *testing.T) {
	even := Filter(ints(1, 2, 3, 4, 5, 6), func(x int) bool { return x%2 == 0 })
	if got := mustCollect(t, even); len(got) != 3 || got[0] != 2 || got[2] != 6 {
		t.Errorf("Filter: %v", got)
	}

	sq := Map(ints(1, 2, 3), func(x int) int { return x * x })
	if got := mustCollect(t, sq); got[2] != 9 {
		t.Errorf("Map: %v", got)
	}

	strs := Map(ints(7), func(x int) string { return strings.Repeat("a", x) })
	if got := mustCollect(t, strs); got[0] != "aaaaaaa" {
		t.Errorf("Map type change: %v", got)
	}

	if got := mustCollect(t, Take(ints(1, 2, 3, 4), 2)); len(got) != 2 || got[1] != 2 {
		t.Errorf("Take: %v", got)
	}
	if got := mustCollect(t, Take(ints(1), 5)); len(got) != 1 {
		t.Errorf("Take beyond end: %v", got)
	}

	c := Concat(ints(1, 2), Empty[int](), ints(3))
	if got := mustCollect(t, c); len(got) != 3 || got[2] != 3 {
		t.Errorf("Concat: %v", got)
	}
}

func TestFuncStream(t *testing.T) {
	i := 0
	f := &Func[int]{F: func() (int, bool, error) {
		i++
		if i > 3 {
			return 0, false, nil
		}
		return i * 10, true, nil
	}}
	if got := mustCollect(t, Stream[int](f)); len(got) != 3 || got[2] != 30 {
		t.Errorf("Func: %v", got)
	}

	boom := errors.New("boom")
	g := &Func[int]{F: func() (int, bool, error) { return 0, false, boom }}
	if _, ok := g.Next(); ok {
		t.Error("failing Func yielded")
	}
	if g.Err() != boom {
		t.Errorf("Err = %v", g.Err())
	}
	// Error is sticky.
	if _, ok := g.Next(); ok || g.Err() != boom {
		t.Error("error not sticky")
	}
}

func TestCounting(t *testing.T) {
	var n int64
	s := Counting(ints(1, 2, 3), &n)
	mustCollect(t, s)
	if n != 3 {
		t.Errorf("count = %d", n)
	}
}

func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	base := FailAfter(ints(1, 2, 3, 4), 2, boom)
	pipeline := Map(Filter(base, func(int) bool { return true }), func(x int) int { return x })
	var got []int
	for {
		x, ok := pipeline.Next()
		if !ok {
			break
		}
		got = append(got, x)
	}
	if len(got) != 2 {
		t.Errorf("got %v before failure", got)
	}
	if !errors.Is(pipeline.Err(), boom) {
		t.Errorf("Err = %v", pipeline.Err())
	}

	// Concat surfaces a part's error and stops.
	c := Concat[int](FailAfter(ints(1), 0, boom), ints(9))
	if _, ok := c.Next(); ok {
		t.Error("Concat yielded past failing part")
	}
	if !errors.Is(c.Err(), boom) {
		t.Errorf("Concat Err = %v", c.Err())
	}

	// Collect returns the error.
	if _, err := Collect[int](FailAfter(ints(1, 2), 1, boom)); !errors.Is(err, boom) {
		t.Errorf("Collect err = %v", err)
	}
}

func TestCheckOrdered(t *testing.T) {
	span := func(iv interval.Interval) interval.Interval { return iv }
	byStart := func(a, b interval.Interval) int {
		switch {
		case a.Start < b.Start:
			return -1
		case a.Start > b.Start:
			return 1
		}
		return 0
	}
	good := []interval.Interval{{Start: 1, End: 2}, {Start: 1, End: 9}, {Start: 4, End: 5}}
	s := CheckOrdered(FromSlice(good), span, byStart)
	if got := mustCollect(t, s); len(got) != 3 {
		t.Errorf("ordered stream truncated: %v", got)
	}

	bad := []interval.Interval{{Start: 4, End: 5}, {Start: 1, End: 2}}
	s = CheckOrdered(FromSlice(bad), span, byStart)
	x, ok := s.Next()
	if !ok || x.Start != 4 {
		t.Fatal("first element should pass")
	}
	if _, ok := s.Next(); ok {
		t.Error("out-of-order element yielded")
	}
	if s.Err() == nil || !strings.Contains(s.Err().Error(), "out of order") {
		t.Errorf("Err = %v", s.Err())
	}
	// Sticky.
	if _, ok := s.Next(); ok || s.Err() == nil {
		t.Error("order error not sticky")
	}
}

func TestGroupSumFigure4(t *testing.T) {
	// The Figure 4 processor: employees grouped by department; output one
	// (dept, sum-of-salaries) pair per department.
	type emp struct {
		dept   string
		salary int64
	}
	emps := []emp{
		{"cs", 10}, {"cs", 20}, {"ee", 5}, {"math", 7}, {"math", 3},
	}
	out := mustCollect(t, GroupSum(FromSlice(emps),
		func(e emp) string { return e.dept },
		func(e emp) int64 { return e.salary }))
	want := []Pair[string, int64]{{"cs", 30}, {"ee", 5}, {"math", 10}}
	if len(out) != len(want) {
		t.Fatalf("got %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("group %d: got %v, want %v", i, out[i], want[i])
		}
	}
}

func TestGroupReduceEdges(t *testing.T) {
	// Empty input: no groups.
	out := mustCollect(t, GroupCount(Empty[int](), func(x int) int { return x }))
	if len(out) != 0 {
		t.Errorf("empty input produced %v", out)
	}
	// Single group.
	out = mustCollect(t, GroupCount(ints(7, 7, 7), func(x int) int { return x }))
	if len(out) != 1 || out[0] != (Pair[int, int64]{7, 3}) {
		t.Errorf("single group: %v", out)
	}
	// Every element its own group.
	out = mustCollect(t, GroupCount(ints(1, 2, 3), func(x int) int { return x }))
	if len(out) != 3 || out[2] != (Pair[int, int64]{3, 1}) {
		t.Errorf("singleton groups: %v", out)
	}
	// Error during a group: no partial emission after error.
	boom := errors.New("boom")
	g := GroupCount(FailAfter(ints(1, 1, 1), 2, boom), func(x int) int { return x })
	if _, ok := g.Next(); ok {
		t.Error("group emitted despite failure")
	}
	if !errors.Is(g.Err(), boom) {
		t.Errorf("Err = %v", g.Err())
	}
}

// Property: GroupSum over grouped input equals a map-based sum, and output
// group order equals first-occurrence order.
func TestGroupSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60)
		type rec struct {
			k string
			v int64
		}
		var recs []rec
		key := 0
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				key++
			}
			recs = append(recs, rec{k: strings.Repeat("k", key%5+1), v: int64(rng.Intn(100))})
		}
		// Group input (adjacent equal keys) by stable reordering.
		grouped := make([]rec, 0, len(recs))
		seen := []string{}
		by := map[string][]rec{}
		for _, r := range recs {
			if _, ok := by[r.k]; !ok {
				seen = append(seen, r.k)
			}
			by[r.k] = append(by[r.k], r)
		}
		for _, k := range seen {
			grouped = append(grouped, by[k]...)
		}
		out, err := Collect(GroupSum(FromSlice(grouped),
			func(r rec) string { return r.k }, func(r rec) int64 { return r.v }))
		if err != nil {
			return false
		}
		if len(out) != len(seen) {
			return false
		}
		for i, k := range seen {
			var want int64
			for _, r := range by[k] {
				want += r.v
			}
			if out[i].First != k || out[i].Second != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
