package stream

import (
	"errors"
	"testing"
)

func intCmp(a, b int) int { return a - b }

func TestMergeKOrdersAndDrains(t *testing.T) {
	out, err := Collect(MergeK(intCmp,
		FromSlice([]int{1, 4, 7}),
		FromSlice([]int{2, 5, 8}),
		FromSlice([]int{3, 6, 9}),
	))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if len(out) != len(want) {
		t.Fatalf("got %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v, want %v", out, want)
		}
	}
}

// Ties must go to the earliest part — the stability that makes the merge
// deterministic regardless of goroutine completion order upstream.
func TestMergeKStableOnTies(t *testing.T) {
	type kv struct{ k, part int }
	cmp := func(a, b kv) int { return a.k - b.k }
	out, err := Collect(MergeK(cmp,
		FromSlice([]kv{{1, 0}, {2, 0}}),
		FromSlice([]kv{{1, 1}, {2, 1}}),
		FromSlice([]kv{{2, 2}}),
	))
	if err != nil {
		t.Fatal(err)
	}
	want := []kv{{1, 0}, {1, 1}, {2, 0}, {2, 1}, {2, 2}}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v, want %v", out, want)
		}
	}
}

// Disjoint ascending key ranges must reproduce plain concatenation — the
// shard-recombination property of the parallel join.
func TestMergeKDisjointRangesConcatenate(t *testing.T) {
	out, err := Collect(MergeK(intCmp,
		FromSlice([]int{1, 1, 2}),
		FromSlice([]int{5, 5}),
		FromSlice([]int{9}),
	))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 2, 5, 5, 9}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v, want %v", out, want)
		}
	}
}

func TestMergeKEmptyAndNoParts(t *testing.T) {
	if out, err := Collect(MergeK(intCmp)); err != nil || len(out) != 0 {
		t.Fatalf("no parts: got %v, %v", out, err)
	}
	if out, err := Collect(MergeK(intCmp, Empty[int](), FromSlice([]int{3}), Empty[int]())); err != nil || len(out) != 1 || out[0] != 3 {
		t.Fatalf("empty parts: got %v, %v", out, err)
	}
}

func TestMergeKPropagatesPartError(t *testing.T) {
	boom := errors.New("boom")
	m := MergeK(intCmp,
		FromSlice([]int{1, 4}),
		FailAfter(FromSlice([]int{2, 5, 6}), 1, boom),
	)
	var got []int
	for {
		x, ok := m.Next()
		if !ok {
			break
		}
		got = append(got, x)
	}
	if !errors.Is(m.Err(), boom) {
		t.Fatalf("merged stream lost the part error: %v", m.Err())
	}
	if m.Err() == nil || len(got) > 2 {
		t.Fatalf("stream kept producing after failure: %v", got)
	}
	// The error stays visible on repeated polling.
	if _, ok := m.Next(); ok || !errors.Is(m.Err(), boom) {
		t.Fatal("error not latched after exhaustion")
	}
}

func TestDedupDropsAdjacentReplicas(t *testing.T) {
	same := func(a, b int) bool { return a == b }
	out, err := Collect(Dedup(FromSlice([]int{1, 1, 2, 3, 3, 3, 4, 1}), same))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 1} // only adjacent duplicates collapse
	if len(out) != len(want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v, want %v", out, want)
		}
	}
}

func TestDedupPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	d := Dedup(FailAfter(FromSlice([]int{1, 1, 2}), 2, boom), func(a, b int) bool { return a == b })
	var n int
	for {
		if _, ok := d.Next(); !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("want 1 element before failure, got %d", n)
	}
	if !errors.Is(d.Err(), boom) {
		t.Fatalf("dedup lost the upstream error: %v", d.Err())
	}
}
