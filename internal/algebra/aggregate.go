package algebra

import (
	"fmt"
	"strings"

	"tdb/internal/relation"
	"tdb/internal/value"
)

// AggKind enumerates the aggregate functions.
type AggKind uint8

// The supported aggregates — the Figure 4 Sum plus its companions.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
)

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return fmt.Sprintf("AggKind(%d)", uint8(k))
}

// AggTerm is one aggregate output column.
type AggTerm struct {
	Kind AggKind
	Of   ColRef // ignored for Count
	As   string
}

// Aggregate groups its input by the listed columns and computes one row
// per group with the group columns followed by the aggregate terms — the
// Figure 4 stream processor lifted into the algebra. The result is a
// snapshot relation.
type Aggregate struct {
	Input   Expr
	GroupBy []ColRef
	Terms   []AggTerm
}

// Children implements Expr.
func (a *Aggregate) Children() []Expr { return []Expr{a.Input} }

// Label implements Expr.
func (a *Aggregate) Label() string {
	var parts []string
	for _, g := range a.GroupBy {
		parts = append(parts, g.String())
	}
	for _, t := range a.Terms {
		if t.Kind == AggCount {
			parts = append(parts, fmt.Sprintf("%s=count(*)", t.As))
		} else {
			parts = append(parts, fmt.Sprintf("%s=%s(%s)", t.As, t.Kind, t.Of))
		}
	}
	return "γ[" + strings.Join(parts, ", ") + "]"
}

// aggregateSchema computes the output schema of an aggregate given its
// input schema.
func aggregateSchema(a *Aggregate, in *relation.Schema) (*relation.Schema, error) {
	cols := make([]relation.Column, 0, len(a.GroupBy)+len(a.Terms))
	for _, g := range a.GroupBy {
		idx := in.ColumnIndex(g.Name())
		if idx < 0 {
			return nil, fmt.Errorf("algebra: group column %s not in %s", g, in)
		}
		cols = append(cols, relation.Column{Name: g.Name(), Kind: in.Cols[idx].Kind})
	}
	for _, t := range a.Terms {
		if t.As == "" {
			return nil, fmt.Errorf("algebra: aggregate term missing output name")
		}
		kind := value.KindInt
		if t.Kind != AggCount {
			idx := in.ColumnIndex(t.Of.Name())
			if idx < 0 {
				return nil, fmt.Errorf("algebra: aggregate column %s not in %s", t.Of, in)
			}
			switch t.Kind {
			case AggMin, AggMax:
				kind = in.Cols[idx].Kind
			default: // Sum over numeric columns only
				if in.Cols[idx].Kind == value.KindString {
					return nil, fmt.Errorf("algebra: sum over string column %s", t.Of)
				}
				kind = value.KindInt
			}
		}
		cols = append(cols, relation.Column{Name: t.As, Kind: kind})
	}
	return relation.NewSchema(cols, -1, -1)
}
