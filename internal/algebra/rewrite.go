package algebra

// This file implements the "well-known traditional algebraic manipulation
// methods" the paper applies in Figure 3(b): merging cascaded selections,
// pushing selection conjuncts as far down the parse tree as possible, and
// converting a selection over a Cartesian product into a θ-join carrying
// the cross-variable conjuncts.

// selectIf wraps e in a selection unless the predicate is trivially true.
func selectIf(e Expr, p Predicate) Expr {
	if p.True() {
		return e
	}
	return &Select{Input: e, Pred: p}
}

// PushDown rewrites the tree by the conventional rules and returns the
// optimized tree (inputs are not mutated; shared subtrees may be reused).
func PushDown(e Expr) Expr {
	switch n := e.(type) {
	case *Scan:
		return n
	case *Select:
		// Merge cascaded selections before distributing.
		input, pred := n.Input, n.Pred
		for {
			if s, ok := input.(*Select); ok {
				pred = pred.And(s.Pred)
				input = s.Input
				continue
			}
			break
		}
		switch child := input.(type) {
		case *Product:
			lp, rp, rest := pred.Split(VarSet(child.L), VarSet(child.R))
			l := PushDown(selectIf(child.L, lp))
			r := PushDown(selectIf(child.R, rp))
			if rest.True() {
				return &Product{L: l, R: r}
			}
			return &Join{L: l, R: r, Pred: rest}
		case *Join:
			lp, rp, rest := pred.Split(VarSet(child.L), VarSet(child.R))
			l := PushDown(selectIf(child.L, lp))
			r := PushDown(selectIf(child.R, rp))
			return &Join{L: l, R: r, Pred: child.Pred.And(rest)}
		case *Semijoin:
			// Conjuncts over the left side commute with the semijoin.
			lp, _, rest := pred.Split(VarSet(child.L), map[string]bool{})
			inner := &Semijoin{
				L:    PushDown(selectIf(child.L, lp)),
				R:    PushDown(child.R),
				Pred: child.Pred,
				Kind: child.Kind,
			}
			return selectIf(inner, rest)
		default:
			return selectIf(PushDown(input), pred)
		}
	case *Product:
		return &Product{L: PushDown(n.L), R: PushDown(n.R)}
	case *Join:
		return &Join{L: PushDown(n.L), R: PushDown(n.R), Pred: n.Pred}
	case *Semijoin:
		return &Semijoin{L: PushDown(n.L), R: PushDown(n.R), Pred: n.Pred, Kind: n.Kind}
	case *Project:
		return &Project{
			Input: PushDown(n.Input), Cols: n.Cols,
			TSName: n.TSName, TEName: n.TEName, Distinct: n.Distinct,
		}
	case *Aggregate:
		return &Aggregate{Input: PushDown(n.Input), GroupBy: n.GroupBy, Terms: n.Terms}
	}
	return e
}
