package algebra

import "fmt"

// CloneExpr returns a deep copy of the expression tree: every node,
// predicate, and output list is copied, so mutating the clone (parameter
// binding, optimizer rewrites) never aliases the original. Prepared
// statements rely on this — the cached parse tree is cloned per execution
// before placeholders are bound.
func CloneExpr(e Expr) Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *Scan:
		c := *n
		return &c
	case *Select:
		return &Select{Input: CloneExpr(n.Input), Pred: clonePred(n.Pred)}
	case *Product:
		return &Product{L: CloneExpr(n.L), R: CloneExpr(n.R)}
	case *Join:
		return &Join{
			L: CloneExpr(n.L), R: CloneExpr(n.R),
			Pred: clonePred(n.Pred), Kind: n.Kind,
			LSpan: n.LSpan, RSpan: n.RSpan,
		}
	case *Semijoin:
		return &Semijoin{
			L: CloneExpr(n.L), R: CloneExpr(n.R),
			Pred: clonePred(n.Pred), Kind: n.Kind,
			LSpan: n.LSpan, RSpan: n.RSpan, Self: n.Self,
		}
	case *Project:
		return &Project{
			Input:  CloneExpr(n.Input),
			Cols:   append([]Output{}, n.Cols...),
			TSName: n.TSName, TEName: n.TEName,
			Distinct: n.Distinct,
		}
	case *Aggregate:
		return &Aggregate{
			Input:   CloneExpr(n.Input),
			GroupBy: append([]ColRef{}, n.GroupBy...),
			Terms:   append([]AggTerm{}, n.Terms...),
		}
	}
	// lint:allow panic — unreachable: Expr is a closed union, the switch is exhaustive
	panic(fmt.Sprintf("algebra: CloneExpr of unknown node %T", e))
}

// clonePred deep-copies a predicate's conjunct slices.
func clonePred(p Predicate) Predicate {
	return Predicate{
		Atoms:    append([]Atom{}, p.Atoms...),
		Temporal: append([]TemporalAtom{}, p.Temporal...),
	}
}

// RewritePredicates walks the tree applying fn to every predicate in
// place (Select, Join, Semijoin). The walk is pre-order; fn may mutate the
// predicate it is handed. Parameter binding and parameter discovery are
// the two users.
func RewritePredicates(e Expr, fn func(p *Predicate)) {
	switch n := e.(type) {
	case nil:
		return
	case *Select:
		fn(&n.Pred)
		RewritePredicates(n.Input, fn)
	case *Join:
		fn(&n.Pred)
		RewritePredicates(n.L, fn)
		RewritePredicates(n.R, fn)
	case *Semijoin:
		fn(&n.Pred)
		RewritePredicates(n.L, fn)
		RewritePredicates(n.R, fn)
	default:
		for _, c := range e.Children() {
			RewritePredicates(c, fn)
		}
	}
}

// MaxParam returns the highest placeholder index appearing anywhere in the
// tree's predicates (0 when the tree is parameter-free).
func MaxParam(e Expr) int {
	max := 0
	RewritePredicates(e, func(p *Predicate) {
		for _, a := range p.Atoms {
			if a.L.Param > max {
				max = a.L.Param
			}
			if a.R.Param > max {
				max = a.R.Param
			}
		}
	})
	return max
}
