package algebra

import (
	"fmt"
	"strings"
	"testing"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/value"
)

type fixedSource map[string]*relation.Schema

func (f fixedSource) SchemaOf(name string) (*relation.Schema, error) {
	s, ok := f[name]
	if !ok {
		return nil, fmt.Errorf("unknown relation %s", name)
	}
	return s, nil
}

var facultySchema = relation.MustSchema([]relation.Column{
	{Name: "Name", Kind: value.KindString},
	{Name: "Rank", Kind: value.KindString},
	{Name: "ValidFrom", Kind: value.KindTime},
	{Name: "ValidTo", Kind: value.KindTime},
}, 2, 3)

func src() fixedSource { return fixedSource{"Faculty": facultySchema} }

// superstarTree builds the unoptimized Figure 3(a) expression.
func superstarTree() Expr {
	theta := Predicate{
		Atoms: []Atom{
			{Column("f1", "Name"), EQ, Column("f2", "Name")},
			{Column("f1", "Rank"), EQ, Const(value.String_("Assistant"))},
			{Column("f2", "Rank"), EQ, Const(value.String_("Full"))},
			{Column("f3", "Rank"), EQ, Const(value.String_("Associate"))},
			{Column("f1", "ValidFrom"), LT, Column("f3", "ValidTo")},
			{Column("f3", "ValidFrom"), LT, Column("f1", "ValidTo")},
			{Column("f2", "ValidFrom"), LT, Column("f3", "ValidTo")},
			{Column("f3", "ValidFrom"), LT, Column("f2", "ValidTo")},
		},
	}
	prod := &Product{
		L: &Product{L: &Scan{Relation: "Faculty", As: "f1"}, R: &Scan{Relation: "Faculty", As: "f2"}},
		R: &Scan{Relation: "Faculty", As: "f3"},
	}
	return &Project{
		Input: &Select{Input: prod, Pred: theta},
		Cols: []Output{
			{Name: "Name", From: ColRef{"f1", "Name"}},
			{Name: "ValidFrom", From: ColRef{"f1", "ValidFrom"}},
			{Name: "ValidTo", From: ColRef{"f2", "ValidTo"}},
		},
		TSName: "ValidFrom", TEName: "ValidTo",
	}
}

func TestPredicateRendering(t *testing.T) {
	a := Atom{Column("f1", "ValidFrom"), LT, Column("f3", "ValidTo")}
	if a.String() != "f1.ValidFrom<f3.ValidTo" {
		t.Errorf("atom: %q", a.String())
	}
	c := Atom{Column("f1", "Rank"), EQ, Const(value.String_("Full"))}
	if c.String() != `f1.Rank="Full"` {
		t.Errorf("const atom: %q", c.String())
	}
	ta := TemporalAtom{L: "f1", R: "f3", General: true}
	if ta.String() != "(f1 overlap f3)" {
		t.Errorf("temporal atom: %q", ta.String())
	}
	ta2 := TemporalAtom{L: "x", R: "y", Rel: interval.RelDuring}
	if ta2.String() != "(x during y)" {
		t.Errorf("temporal atom: %q", ta2.String())
	}
	var empty Predicate
	if !empty.True() || empty.String() != "true" {
		t.Error("empty predicate")
	}
}

func TestCmpOps(t *testing.T) {
	cases := []struct {
		op         CmpOp
		lt, eq, gt bool
	}{
		{EQ, false, true, false},
		{NE, true, false, true},
		{LT, true, false, false},
		{LE, true, true, false},
		{GT, false, false, true},
		{GE, false, true, true},
	}
	for _, c := range cases {
		if c.op.Eval(-1) != c.lt || c.op.Eval(0) != c.eq || c.op.Eval(1) != c.gt {
			t.Errorf("%v eval wrong", c.op)
		}
		// a op b ⇔ b Flip(op) a over all comparisons.
		for _, cmp := range []int{-1, 0, 1} {
			if c.op.Eval(cmp) != c.op.Flip().Eval(-cmp) {
				t.Errorf("%v flip wrong", c.op)
			}
		}
	}
}

func TestPredicateVarsAndSplit(t *testing.T) {
	p := Predicate{
		Atoms: []Atom{
			{Column("f1", "Rank"), EQ, Const(value.String_("Full"))},
			{Column("f2", "Rank"), EQ, Const(value.String_("Associate"))},
			{Column("f1", "ValidFrom"), LT, Column("f2", "ValidTo")},
		},
		Temporal: []TemporalAtom{{L: "f1", R: "f2", General: true}},
	}
	vs := p.Vars()
	if len(vs) != 2 || vs[0] != "f1" || vs[1] != "f2" {
		t.Errorf("Vars = %v", vs)
	}
	lp, rp, rest := p.Split(map[string]bool{"f1": true}, map[string]bool{"f2": true})
	if len(lp.Atoms) != 1 || lp.Atoms[0].L.Col.Var != "f1" {
		t.Errorf("left split: %v", lp)
	}
	if len(rp.Atoms) != 1 || rp.Atoms[0].L.Col.Var != "f2" {
		t.Errorf("right split: %v", rp)
	}
	if len(rest.Atoms) != 1 || len(rest.Temporal) != 1 {
		t.Errorf("rest split: %v", rest)
	}
}

func TestOutputSchemaSuperstar(t *testing.T) {
	tree := superstarTree()
	schema, err := OutputSchema(tree, src())
	if err != nil {
		t.Fatal(err)
	}
	if schema.Arity() != 3 {
		t.Fatalf("arity %d", schema.Arity())
	}
	if !schema.Temporal() || schema.TS != 1 || schema.TE != 2 {
		t.Errorf("temporal designation wrong: %s", schema)
	}
	if schema.Cols[0].Kind != value.KindString {
		t.Error("Name column kind wrong")
	}
}

func TestOutputSchemaErrors(t *testing.T) {
	if _, err := OutputSchema(&Scan{Relation: "Nope"}, src()); err == nil {
		t.Error("unknown relation accepted")
	}
	bad := &Project{
		Input: &Scan{Relation: "Faculty", As: "f"},
		Cols:  []Output{{Name: "X", From: ColRef{"f", "Missing"}}},
	}
	if _, err := OutputSchema(bad, src()); err == nil {
		t.Error("unknown projection column accepted")
	}
}

func TestVars(t *testing.T) {
	tree := superstarTree()
	vs := Vars(tree.(*Project).Input)
	if len(vs) != 3 {
		t.Fatalf("Vars = %v", vs)
	}
	semi := &Semijoin{
		L: &Scan{Relation: "Faculty", As: "a"},
		R: &Scan{Relation: "Faculty", As: "b"},
	}
	if vs := Vars(semi); len(vs) != 1 || vs[0] != "a" {
		t.Errorf("semijoin vars = %v", vs)
	}
}

func TestPushDownSuperstar(t *testing.T) {
	opt := PushDown(superstarTree())
	proj, ok := opt.(*Project)
	if !ok {
		t.Fatalf("root is %T", opt)
	}
	// The top of the optimized tree must be a join carrying only the
	// cross-variable inequalities; all Rank selections must sit directly
	// above the scans.
	join, ok := proj.Input.(*Join)
	if !ok {
		t.Fatalf("below project: %T\n%s", proj.Input, Format(opt))
	}
	for _, a := range join.Pred.Atoms {
		if a.L.IsConst || a.R.IsConst {
			t.Errorf("constant conjunct %v not pushed down", a)
		}
	}
	// Each leaf-side selection holds exactly one Rank constant.
	var countSelects func(e Expr) int
	countSelects = func(e Expr) int {
		n := 0
		if s, ok := e.(*Select); ok {
			for _, a := range s.Pred.Atoms {
				if a.R.IsConst {
					n++
				}
			}
		}
		for _, c := range e.Children() {
			n += countSelects(c)
		}
		return n
	}
	if got := countSelects(join); got != 3 {
		t.Errorf("pushed-down constant selections = %d, want 3\n%s", got, Format(opt))
	}
	// The schema is unchanged by optimization.
	s1, err1 := OutputSchema(superstarTree(), src())
	s2, err2 := OutputSchema(opt, src())
	if err1 != nil || err2 != nil || !s1.Equal(s2) {
		t.Errorf("schema changed by PushDown: %v %v %s vs %s", err1, err2, s1, s2)
	}
}

func TestPushDownMergesCascadedSelects(t *testing.T) {
	inner := &Select{
		Input: &Scan{Relation: "Faculty", As: "f"},
		Pred:  Predicate{Atoms: []Atom{{Column("f", "Rank"), EQ, Const(value.String_("Full"))}}},
	}
	outer := &Select{
		Input: inner,
		Pred:  Predicate{Atoms: []Atom{{Column("f", "Name"), EQ, Const(value.String_("x"))}}},
	}
	opt := PushDown(outer)
	s, ok := opt.(*Select)
	if !ok {
		t.Fatalf("got %T", opt)
	}
	if len(s.Pred.Atoms) != 2 {
		t.Errorf("cascade not merged: %v", s.Pred)
	}
	if _, ok := s.Input.(*Scan); !ok {
		t.Errorf("select not directly over scan: %T", s.Input)
	}
}

func TestPushDownThroughSemijoin(t *testing.T) {
	semi := &Semijoin{
		L:    &Scan{Relation: "Faculty", As: "a"},
		R:    &Scan{Relation: "Faculty", As: "b"},
		Kind: KindContained,
	}
	sel := &Select{
		Input: semi,
		Pred:  Predicate{Atoms: []Atom{{Column("a", "Rank"), EQ, Const(value.String_("Associate"))}}},
	}
	opt := PushDown(sel)
	top, ok := opt.(*Semijoin)
	if !ok {
		t.Fatalf("selection not commuted through semijoin: %T", opt)
	}
	if _, ok := top.L.(*Select); !ok {
		t.Errorf("selection not pushed to semijoin left input:\n%s", Format(opt))
	}
}

func TestFormatTree(t *testing.T) {
	out := Format(superstarTree())
	for _, frag := range []string{"π[", "σ[", "×", "Faculty f1", "Faculty f3", "└─", "├─"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Format missing %q:\n%s", frag, out)
		}
	}
	// Labels render the recognized semijoin kinds.
	semi := &Semijoin{L: &Scan{Relation: "R"}, R: &Scan{Relation: "S"}, Kind: KindContained}
	if !strings.Contains(semi.Label(), "⋉contained") {
		t.Errorf("semijoin label: %q", semi.Label())
	}
}
