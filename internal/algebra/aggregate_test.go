package algebra

import (
	"strings"
	"testing"

	"tdb/internal/value"
)

func TestAggregateLabelAndSchema(t *testing.T) {
	agg := &Aggregate{
		Input:   &Scan{Relation: "Faculty", As: "e"},
		GroupBy: []ColRef{{Var: "e", Col: "Rank"}},
		Terms: []AggTerm{
			{Kind: AggCount, As: "n"},
			{Kind: AggSum, Of: ColRef{Var: "e", Col: "ValidFrom"}, As: "s"},
			{Kind: AggMin, Of: ColRef{Var: "e", Col: "Name"}, As: "first"},
		},
	}
	label := agg.Label()
	for _, frag := range []string{"γ[", "e.Rank", "n=count(*)", "s=sum(e.ValidFrom)", "first=min(e.Name)"} {
		if !strings.Contains(label, frag) {
			t.Errorf("label %q missing %q", label, frag)
		}
	}
	if len(agg.Children()) != 1 {
		t.Error("children")
	}
	schema, err := OutputSchema(agg, src())
	if err != nil {
		t.Fatal(err)
	}
	if schema.Arity() != 4 || schema.Temporal() {
		t.Fatalf("schema %s", schema)
	}
	if schema.Cols[0].Name != "e.Rank" || schema.Cols[1].Name != "n" {
		t.Errorf("columns %s", schema)
	}
	// min over a string column keeps the string kind.
	if schema.Cols[3].Kind != value.KindString {
		t.Errorf("min kind: %v", schema.Cols[3].Kind)
	}
	// Kind strings.
	if AggCount.String() != "count" || AggSum.String() != "sum" ||
		AggMin.String() != "min" || AggMax.String() != "max" {
		t.Error("agg kind names")
	}
	if AggKind(9).String() == "" {
		t.Error("unknown agg kind must render")
	}
}

func TestAggregateSchemaErrors(t *testing.T) {
	bad := &Aggregate{
		Input:   &Scan{Relation: "Faculty", As: "e"},
		GroupBy: []ColRef{{Var: "e", Col: "Nope"}},
	}
	if _, err := OutputSchema(bad, src()); err == nil {
		t.Error("bad group column accepted")
	}
	bad = &Aggregate{
		Input: &Scan{Relation: "Faculty", As: "e"},
		Terms: []AggTerm{{Kind: AggSum, Of: ColRef{Var: "e", Col: "Name"}, As: "x"}},
	}
	if _, err := OutputSchema(bad, src()); err == nil {
		t.Error("sum over string accepted")
	}
	bad = &Aggregate{
		Input: &Scan{Relation: "Faculty", As: "e"},
		Terms: []AggTerm{{Kind: AggCount}},
	}
	if _, err := OutputSchema(bad, src()); err == nil {
		t.Error("unnamed aggregate accepted")
	}
	bad = &Aggregate{
		Input: &Scan{Relation: "Faculty", As: "e"},
		Terms: []AggTerm{{Kind: AggMax, Of: ColRef{Var: "e", Col: "Nope"}, As: "x"}},
	}
	if _, err := OutputSchema(bad, src()); err == nil {
		t.Error("unknown aggregate column accepted")
	}
}

func TestPushDownThroughAggregate(t *testing.T) {
	agg := &Aggregate{
		Input: &Select{
			Input: &Select{
				Input: &Scan{Relation: "Faculty", As: "e"},
				Pred:  Predicate{Atoms: []Atom{{Column("e", "Rank"), EQ, Const(value.String_("Full"))}}},
			},
			Pred: Predicate{Atoms: []Atom{{Column("e", "Name"), NE, Const(value.String_("x"))}}},
		},
		Terms: []AggTerm{{Kind: AggCount, As: "n"}},
	}
	opt := PushDown(agg)
	out, ok := opt.(*Aggregate)
	if !ok {
		t.Fatalf("got %T", opt)
	}
	sel, ok := out.Input.(*Select)
	if !ok || len(sel.Pred.Atoms) != 2 {
		t.Errorf("cascaded selects under aggregate not merged: %T", out.Input)
	}
}

func TestSpanRefString(t *testing.T) {
	sr := SpanRef{TS: ColRef{Var: "f1", Col: "ValidTo"}, TE: ColRef{Var: "f2", Col: "ValidFrom"}}
	if sr.String() != "[f1.ValidTo, f2.ValidFrom)" {
		t.Errorf("SpanRef = %q", sr.String())
	}
	if !sr.Valid() || (SpanRef{}).Valid() {
		t.Error("SpanRef validity")
	}
}

func TestTemporalKindStrings(t *testing.T) {
	if KindTheta.String() != "θ" || KindContain.String() != "contain" ||
		KindContained.String() != "contained" || KindOverlap.String() != "overlap" ||
		KindBefore.String() != "before" {
		t.Error("kind names")
	}
	j := &Join{L: &Scan{Relation: "R"}, R: &Scan{Relation: "S"},
		Kind:  KindOverlap,
		LSpan: SpanRef{TS: ColRef{Var: "r", Col: "A"}, TE: ColRef{Var: "r", Col: "B"}},
		RSpan: SpanRef{TS: ColRef{Var: "s", Col: "A"}, TE: ColRef{Var: "s", Col: "B"}},
	}
	if !strings.Contains(j.Label(), "⋈overlap") {
		t.Errorf("join label: %q", j.Label())
	}
	theta := &Join{L: &Scan{Relation: "R"}, R: &Scan{Relation: "S"}}
	if !strings.Contains(theta.Label(), "⋈[") {
		t.Errorf("theta label: %q", theta.Label())
	}
}
