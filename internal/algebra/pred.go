// Package algebra implements the relational algebra of the paper's
// Section 3: expressions over temporal relations (scan, selection,
// projection, product, θ-join, semijoin), predicates that are conjunctions
// of comparison atoms — the dominant shape of temporal qualifications — and
// temporal-operator atoms ("f1 overlap f3") prior to their expansion into
// inequalities, plus the parse-tree rendering of Figure 3.
package algebra

import (
	"fmt"
	"strings"

	"tdb/internal/interval"
	"tdb/internal/value"
)

// ColRef names a column of a range variable, e.g. f1.Name.
type ColRef struct {
	Var string // range variable; may be empty for single-relation queries
	Col string
}

// String renders the reference as "f1.Name" or bare "Name".
func (c ColRef) String() string {
	if c.Var == "" {
		return c.Col
	}
	return c.Var + "." + c.Col
}

// Name returns the qualified column name as it appears in resolved schemas.
func (c ColRef) Name() string { return c.String() }

// Operand is one side of a comparison atom: a column reference, a
// constant, or an unbound statement parameter ("$1").
type Operand struct {
	IsConst bool
	Const   value.Value
	Col     ColRef
	// Param is the 1-based placeholder index of a prepared-statement
	// parameter ("$1" → 1); zero for ordinary operands. A tree holding
	// param operands cannot execute — binding (quel.BindParams)
	// substitutes constants first.
	Param int
}

// Column returns a column operand.
func Column(v, col string) Operand { return Operand{Col: ColRef{Var: v, Col: col}} }

// Const returns a constant operand.
func Const(v value.Value) Operand { return Operand{IsConst: true, Const: v} }

// Param returns a placeholder operand for the 1-based index n.
func Param(n int) Operand { return Operand{Param: n} }

// String renders the operand.
func (o Operand) String() string {
	if o.Param > 0 {
		return fmt.Sprintf("$%d", o.Param)
	}
	if o.IsConst {
		if o.Const.Kind() == value.KindString {
			return fmt.Sprintf("%q", o.Const.String())
		}
		return o.Const.String()
	}
	return o.Col.String()
}

// CmpOp is a comparison operator.
type CmpOp uint8

// The comparison operators of the language.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

var cmpNames = [...]string{EQ: "=", NE: "≠", LT: "<", LE: "≤", GT: ">", GE: "≥"}

// String renders the operator symbol.
func (op CmpOp) String() string {
	if int(op) < len(cmpNames) {
		return cmpNames[op]
	}
	return fmt.Sprintf("CmpOp(%d)", uint8(op))
}

// Eval applies the operator to a three-way comparison result.
func (op CmpOp) Eval(cmp int) bool {
	switch op {
	case EQ:
		return cmp == 0
	case NE:
		return cmp != 0
	case LT:
		return cmp < 0
	case LE:
		return cmp <= 0
	case GT:
		return cmp > 0
	case GE:
		return cmp >= 0
	}
	// lint:allow panic — unreachable: CmpOp is a closed enum, the switch is exhaustive
	panic(fmt.Sprintf("algebra: invalid CmpOp %d", uint8(op)))
}

// Flip returns the operator with its operands exchanged: a op b ⇔ b Flip(op) a.
func (op CmpOp) Flip() CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return op
	}
}

// Atom is one comparison of the conjunction.
type Atom struct {
	L  Operand
	Op CmpOp
	R  Operand
}

// String renders the atom, e.g. "f1.ValidFrom<f3.ValidTo".
func (a Atom) String() string { return a.L.String() + a.Op.String() + a.R.String() }

// Vars returns the distinct range variables the atom references.
func (a Atom) Vars() []string {
	var vs []string
	if !a.L.IsConst {
		vs = append(vs, a.L.Col.Var)
	}
	if !a.R.IsConst && (a.L.IsConst || a.R.Col.Var != a.L.Col.Var) {
		vs = append(vs, a.R.Col.Var)
	}
	return vs
}

// TemporalAtom is an unexpanded temporal-operator application between two
// range variables — the syntactic sugar of Figure 2 plus the general TQuel
// overlap of the Superstar query.
type TemporalAtom struct {
	L, R string // range variables
	// Rel is the Allen relationship, meaningful when General is false.
	Rel interval.Relationship
	// General marks the TQuel "overlap": lifespans share a chronon.
	General bool
}

// String renders the atom in query syntax, e.g. "(f1 overlap f3)".
func (ta TemporalAtom) String() string {
	name := ta.Rel.String()
	if ta.General {
		name = "overlap"
	}
	return fmt.Sprintf("(%s %s %s)", ta.L, name, ta.R)
}

// Predicate is a conjunction of comparison atoms and (before expansion)
// temporal-operator atoms.
type Predicate struct {
	Atoms    []Atom
	Temporal []TemporalAtom
}

// True reports whether the predicate is the empty conjunction.
func (p Predicate) True() bool { return len(p.Atoms) == 0 && len(p.Temporal) == 0 }

// String renders the conjunction with ∧.
func (p Predicate) String() string {
	if p.True() {
		return "true"
	}
	parts := make([]string, 0, len(p.Atoms)+len(p.Temporal))
	for _, a := range p.Atoms {
		parts = append(parts, a.String())
	}
	for _, ta := range p.Temporal {
		parts = append(parts, ta.String())
	}
	return strings.Join(parts, " ∧ ")
}

// Vars returns the distinct range variables referenced by the predicate.
func (p Predicate) Vars() []string {
	seen := map[string]bool{}
	var out []string
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, a := range p.Atoms {
		for _, v := range a.Vars() {
			add(v)
		}
	}
	for _, ta := range p.Temporal {
		add(ta.L)
		add(ta.R)
	}
	return out
}

// And returns the conjunction of two predicates.
func (p Predicate) And(q Predicate) Predicate {
	return Predicate{
		Atoms:    append(append([]Atom{}, p.Atoms...), q.Atoms...),
		Temporal: append(append([]TemporalAtom{}, p.Temporal...), q.Temporal...),
	}
}

// Split partitions the conjunction by the range variables each conjunct
// needs: conjuncts entirely over vars in left, entirely over vars in right,
// and the residue spanning both (or neither side completely).
func (p Predicate) Split(left, right map[string]bool) (lp, rp, rest Predicate) {
	within := func(vs []string, side map[string]bool) bool {
		for _, v := range vs {
			if !side[v] {
				return false
			}
		}
		return len(vs) > 0
	}
	for _, a := range p.Atoms {
		vs := a.Vars()
		switch {
		case within(vs, left):
			lp.Atoms = append(lp.Atoms, a)
		case within(vs, right):
			rp.Atoms = append(rp.Atoms, a)
		default:
			rest.Atoms = append(rest.Atoms, a)
		}
	}
	for _, ta := range p.Temporal {
		vs := []string{ta.L, ta.R}
		switch {
		case within(vs, left):
			lp.Temporal = append(lp.Temporal, ta)
		case within(vs, right):
			rp.Temporal = append(rp.Temporal, ta)
		default:
			rest.Temporal = append(rest.Temporal, ta)
		}
	}
	return lp, rp, rest
}
