package algebra

import (
	"fmt"
	"strings"

	"tdb/internal/relation"
)

// Expr is a node of the relational algebra parse tree.
type Expr interface {
	// Children returns the operand subtrees.
	Children() []Expr
	// Label renders the node itself (without children) for the parse
	// tree display of Figure 3.
	Label() string
}

// Scan reads a base relation, binding it to a range variable. Multiple
// scans of the same relation with different variables express the paper's
// "several references to the same relation".
type Scan struct {
	Relation string
	As       string // range variable; empty means the bare relation name
}

// Var returns the effective range variable of the scan.
func (s *Scan) Var() string {
	if s.As != "" {
		return s.As
	}
	return s.Relation
}

// Children implements Expr.
func (s *Scan) Children() []Expr { return nil }

// Label implements Expr.
func (s *Scan) Label() string {
	if s.As == "" {
		return s.Relation
	}
	return s.Relation + " " + s.As
}

// Select filters its input by a conjunction.
type Select struct {
	Input Expr
	Pred  Predicate
}

// Children implements Expr.
func (s *Select) Children() []Expr { return []Expr{s.Input} }

// Label implements Expr.
func (s *Select) Label() string { return "σ[" + s.Pred.String() + "]" }

// Product is the Cartesian product.
type Product struct {
	L, R Expr
}

// Children implements Expr.
func (p *Product) Children() []Expr { return []Expr{p.L, p.R} }

// Label implements Expr.
func (p *Product) Label() string { return "×" }

// TemporalKind tags a join or semijoin with the temporal operator the
// optimizer recognized in its inequality conjunction, so the physical
// planner can pick the matching stream algorithm of Section 4.2.
type TemporalKind uint8

// The recognized operator flavors.
const (
	KindTheta     TemporalKind = iota // generic: fall back to nested loop
	KindContain                       // left lifespan contains a right lifespan
	KindContained                     // left lifespan contained in a right lifespan
	KindOverlap                       // lifespans share a chronon
	KindBefore                        // left lifespan wholly before a right one
)

// String names the kind.
func (k TemporalKind) String() string {
	switch k {
	case KindContain:
		return "contain"
	case KindContained:
		return "contained"
	case KindOverlap:
		return "overlap"
	case KindBefore:
		return "before"
	default:
		return "θ"
	}
}

// SpanRef names the pair of columns forming a side's lifespan in a
// recognized temporal operator. For a base temporal relation these are its
// ValidFrom/ValidTo columns; for a composite side they may be *derived* —
// the Superstar semijoin runs on the lifespan [f1.ValidTo, f2.ValidFrom),
// the period the promoted member spent as associate (Figure 8).
type SpanRef struct {
	TS, TE ColRef
}

// Valid reports whether both endpoints are set.
func (s SpanRef) Valid() bool { return s.TS.Col != "" && s.TE.Col != "" }

// String renders the span as "[a, b)".
func (s SpanRef) String() string { return "[" + s.TS.String() + ", " + s.TE.String() + ")" }

// Join is the θ-join: a product restricted by a predicate over both sides.
// Kind and the span annotations are filled by the optimizer's recognition
// pass when the predicate matches a temporal operator signature.
type Join struct {
	L, R Expr
	Pred Predicate
	Kind TemporalKind
	// LSpan/RSpan identify the lifespans the recognized operator
	// relates; meaningful when Kind != KindTheta.
	LSpan, RSpan SpanRef
}

// Children implements Expr.
func (j *Join) Children() []Expr { return []Expr{j.L, j.R} }

// Label implements Expr.
func (j *Join) Label() string {
	if j.Kind == KindTheta {
		return "⋈[" + j.Pred.String() + "]"
	}
	return fmt.Sprintf("⋈%s[%s ⟂ %s]", j.Kind, j.LSpan, j.RSpan)
}

// Semijoin keeps the left tuples that have at least one right partner under
// the predicate. Pred may retain residual atoms beyond the recognized kind.
type Semijoin struct {
	L, R Expr
	Pred Predicate
	Kind TemporalKind
	// LSpan/RSpan as for Join; meaningful when Kind != KindTheta.
	LSpan, RSpan SpanRef
	// Self marks a semijoin whose two sides are the same expression up to
	// range-variable renaming (with corresponding spans): the operand of
	// the paper's Section 4.2.3, executable by the single-scan
	// single-state-tuple algorithms of Figure 7.
	Self bool
}

// Children implements Expr.
func (s *Semijoin) Children() []Expr { return []Expr{s.L, s.R} }

// Label implements Expr.
func (s *Semijoin) Label() string {
	self := ""
	if s.Self {
		self = " self"
	}
	if s.Kind == KindTheta {
		return fmt.Sprintf("⋉%s%s[%s]", s.Kind, self, s.Pred.String())
	}
	return fmt.Sprintf("⋉%s%s[%s ⟂ %s]", s.Kind, self, s.LSpan, s.RSpan)
}

// Output is one column of a projection: a name bound to a source column.
type Output struct {
	Name string
	From ColRef
}

// Project renames and narrows columns. TSName/TEName designate which output
// columns carry the result's lifespan (both empty for a snapshot result),
// mirroring the retrieve clause of the Superstar query, which assembles the
// result lifespan from f1.ValidFrom and f2.ValidTo.
type Project struct {
	Input  Expr
	Cols   []Output
	TSName string
	TEName string
	// Distinct eliminates duplicate rows, restoring set semantics after
	// the projection.
	Distinct bool
}

// Children implements Expr.
func (p *Project) Children() []Expr { return []Expr{p.Input} }

// Label implements Expr.
func (p *Project) Label() string {
	parts := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		if c.Name == c.From.String() {
			parts[i] = c.Name
		} else {
			parts[i] = c.Name + "=" + c.From.String()
		}
	}
	return "π[" + strings.Join(parts, ", ") + "]"
}

// Vars returns the range variables bound beneath the expression.
func Vars(e Expr) []string {
	switch n := e.(type) {
	case *Scan:
		return []string{n.Var()}
	case *Semijoin:
		// A semijoin's output rows come from the left side only.
		return Vars(n.L)
	case *Project, *Aggregate:
		// These rename columns; the variables beneath are hidden.
		return nil
	}
	var out []string
	for _, c := range e.Children() {
		out = append(out, Vars(c)...)
	}
	return out
}

// VarSet returns Vars as a set.
func VarSet(e Expr) map[string]bool {
	m := map[string]bool{}
	for _, v := range Vars(e) {
		m[v] = true
	}
	return m
}

// Format renders the parse tree with box-drawing indentation, the textual
// equivalent of Figure 3.
func Format(e Expr) string {
	var b strings.Builder
	var walk func(n Expr, prefix string, last bool, root bool)
	walk = func(n Expr, prefix string, last, root bool) {
		if root {
			b.WriteString(n.Label() + "\n")
		} else {
			branch := "├─ "
			if last {
				branch = "└─ "
			}
			b.WriteString(prefix + branch + n.Label() + "\n")
		}
		kids := n.Children()
		for i, c := range kids {
			childPrefix := prefix
			if !root {
				if last {
					childPrefix += "   "
				} else {
					childPrefix += "│  "
				}
			}
			walk(c, childPrefix, i == len(kids)-1, false)
		}
	}
	walk(e, "", true, true)
	return b.String()
}

// SchemaSource resolves base relation names to their schemas.
type SchemaSource interface {
	SchemaOf(relationName string) (*relation.Schema, error)
}

// OutputSchema computes the schema an expression produces, qualifying base
// columns with their range variables exactly as predicates reference them.
func OutputSchema(e Expr, src SchemaSource) (*relation.Schema, error) {
	switch n := e.(type) {
	case *Scan:
		base, err := src.SchemaOf(n.Relation)
		if err != nil {
			return nil, err
		}
		return base.Rename(n.Var()), nil
	case *Select:
		return OutputSchema(n.Input, src)
	case *Product:
		return concatSchemas(n.L, n.R, src)
	case *Join:
		return concatSchemas(n.L, n.R, src)
	case *Semijoin:
		return OutputSchema(n.L, src)
	case *Aggregate:
		in, err := OutputSchema(n.Input, src)
		if err != nil {
			return nil, err
		}
		return aggregateSchema(n, in)
	case *Project:
		in, err := OutputSchema(n.Input, src)
		if err != nil {
			return nil, err
		}
		cols := make([]relation.Column, len(n.Cols))
		ts, te := -1, -1
		for i, out := range n.Cols {
			idx := in.ColumnIndex(out.From.Name())
			if idx < 0 {
				return nil, fmt.Errorf("algebra: projection references unknown column %s in %s", out.From, in)
			}
			cols[i] = relation.Column{Name: out.Name, Kind: in.Cols[idx].Kind}
			if out.Name == n.TSName {
				ts = i
			}
			if out.Name == n.TEName {
				te = i
			}
		}
		return relation.NewSchema(cols, ts, te)
	}
	return nil, fmt.Errorf("algebra: unknown expression %T", e)
}

func concatSchemas(l, r Expr, src SchemaSource) (*relation.Schema, error) {
	ls, err := OutputSchema(l, src)
	if err != nil {
		return nil, err
	}
	rs, err := OutputSchema(r, src)
	if err != nil {
		return nil, err
	}
	return relation.Concat(ls, rs, "", ""), nil
}
