package optimizer

import (
	"strings"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/interval"
	"tdb/internal/value"
)

// Semijoin introduction must swap sides when the projection needs only the
// right input, flipping contain↔contained and exchanging the spans.
func TestIntroduceSemijoinsSwapsSides(t *testing.T) {
	col := algebra.Column
	// j during i, but the projection keeps only j's columns: after the
	// swap the semijoin keeps j tuples contained in some i.
	q := &algebra.Project{
		Input: &algebra.Select{
			Input: &algebra.Product{
				L: &algebra.Scan{Relation: "Faculty", As: "i"},
				R: &algebra.Scan{Relation: "Faculty", As: "j"},
			},
			Pred: algebra.Predicate{Atoms: []algebra.Atom{
				{L: col("i", "ValidFrom"), Op: algebra.LT, R: col("j", "ValidFrom")},
				{L: col("j", "ValidTo"), Op: algebra.LT, R: col("i", "ValidTo")},
			}},
		},
		Cols: []algebra.Output{
			{Name: "Name", From: algebra.ColRef{Var: "j", Col: "Name"}},
			{Name: "ValidFrom", From: algebra.ColRef{Var: "j", Col: "ValidFrom"}},
			{Name: "ValidTo", From: algebra.ColRef{Var: "j", Col: "ValidTo"}},
		},
		TSName: "ValidFrom", TEName: "ValidTo",
		Distinct: true,
	}
	res, err := Optimize(q, src(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	semi, ok := res.Tree.(*algebra.Project).Input.(*algebra.Semijoin)
	if !ok {
		t.Fatalf("no semijoin:\n%s", algebra.Format(res.Tree))
	}
	// Original pattern: i contains j. After the swap (left = j side):
	// j contained in i.
	if semi.Kind != algebra.KindContained {
		t.Fatalf("kind after swap = %v", semi.Kind)
	}
	if semi.LSpan.TS.Var != "j" || semi.RSpan.TS.Var != "i" {
		t.Errorf("spans not exchanged: %v / %v", semi.LSpan, semi.RSpan)
	}
	if vs := algebra.Vars(semi); len(vs) != 1 || vs[0] != "j" {
		t.Errorf("semijoin output vars: %v", vs)
	}
}

// A projection needing both sides cannot become a semijoin.
func TestIntroduceSemijoinsKeepsJoinWhenBothSidesNeeded(t *testing.T) {
	col := algebra.Column
	q := &algebra.Project{
		Input: &algebra.Select{
			Input: &algebra.Product{
				L: &algebra.Scan{Relation: "Faculty", As: "i"},
				R: &algebra.Scan{Relation: "Faculty", As: "j"},
			},
			Pred: algebra.Predicate{Atoms: []algebra.Atom{
				{L: col("i", "ValidFrom"), Op: algebra.LT, R: col("j", "ValidFrom")},
				{L: col("j", "ValidTo"), Op: algebra.LT, R: col("i", "ValidTo")},
			}},
		},
		Cols: []algebra.Output{
			{Name: "A", From: algebra.ColRef{Var: "i", Col: "Name"}},
			{Name: "B", From: algebra.ColRef{Var: "j", Col: "Name"}},
		},
		Distinct: true,
	}
	res, err := Optimize(q, src(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Tree.(*algebra.Project).Input.(*algebra.Join); !ok {
		t.Errorf("join converted despite both sides needed:\n%s", algebra.Format(res.Tree))
	}
}

// Without Distinct the rewrite is unsound (duplicates differ) and must not
// fire.
func TestIntroduceSemijoinsRequiresDistinct(t *testing.T) {
	col := algebra.Column
	q := &algebra.Project{
		Input: &algebra.Select{
			Input: &algebra.Product{
				L: &algebra.Scan{Relation: "Faculty", As: "i"},
				R: &algebra.Scan{Relation: "Faculty", As: "j"},
			},
			Pred: algebra.Predicate{Atoms: []algebra.Atom{
				{L: col("i", "ValidFrom"), Op: algebra.LT, R: col("j", "ValidTo")},
				{L: col("j", "ValidFrom"), Op: algebra.LT, R: col("i", "ValidTo")},
			}},
		},
		Cols: []algebra.Output{
			{Name: "Name", From: algebra.ColRef{Var: "i", Col: "Name"}},
		},
		Distinct: false,
	}
	res, err := Optimize(q, src(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Tree.(*algebra.Project).Input.(*algebra.Semijoin); ok {
		t.Error("semijoin introduced without duplicate elimination")
	}
}

// ExpandTree handles temporal atoms inside Join and Semijoin predicates.
func TestExpandTreeJoinNodes(t *testing.T) {
	ctx, err := BuildContext(&algebra.Product{
		L: &algebra.Scan{Relation: "Faculty", As: "a"},
		R: &algebra.Scan{Relation: "Faculty", As: "b"},
	}, src(), nil)
	if err != nil {
		t.Fatal(err)
	}
	join := &algebra.Join{
		L:    &algebra.Scan{Relation: "Faculty", As: "a"},
		R:    &algebra.Scan{Relation: "Faculty", As: "b"},
		Pred: algebra.Predicate{Temporal: []algebra.TemporalAtom{{L: "a", R: "b", Rel: interval.RelMeets}}},
	}
	out, err := ExpandTree(join, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p := out.(*algebra.Join).Pred; len(p.Atoms) != 1 || len(p.Temporal) != 0 {
		t.Errorf("join pred expanded to %v", p)
	}
	semi := &algebra.Semijoin{
		L:    &algebra.Scan{Relation: "Faculty", As: "a"},
		R:    &algebra.Scan{Relation: "Faculty", As: "b"},
		Pred: algebra.Predicate{Temporal: []algebra.TemporalAtom{{L: "a", R: "b", General: true}}},
	}
	out, err = ExpandTree(semi, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p := out.(*algebra.Semijoin).Pred; len(p.Atoms) != 2 {
		t.Errorf("semijoin pred expanded to %v", p)
	}
	agg := &algebra.Aggregate{
		Input: &algebra.Scan{Relation: "Faculty", As: "a"},
		Terms: []algebra.AggTerm{{Kind: algebra.AggCount, As: "n"}},
	}
	if _, err := ExpandTree(agg, ctx); err != nil {
		t.Errorf("aggregate expansion: %v", err)
	}
}

// Estimates render and the fallback branch of the semijoin estimate holds.
func TestEstimateRendering(t *testing.T) {
	est := JoinEstimate{NestedLoop: 100, Stream: 2000, Sort: 0, Workspace: 5}
	if est.UseStream() {
		t.Error("stream chosen despite higher cost")
	}
	if got := est.String(); !strings.Contains(got, "nested-loop") {
		t.Errorf("rendering: %q", got)
	}
	_ = value.Int(0)
}
