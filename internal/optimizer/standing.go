package optimizer

import (
	"fmt"

	"tdb/internal/algebra"
	"tdb/internal/catalog"
)

// This file turns the paper's Tables 1–3 state characterizations into a
// live admission policy. A standing query is fed by ingestion in ValidFrom
// order on both sides — the (TS↑, TS↑) row of the tables — so an operator
// is admissible for incremental evaluation exactly when that row gives its
// retained state a garbage-collection criterion keeping it a subset of a
// spanning set. Spanning sets are bounded by the relation's maximum
// concurrency (with λ·E[duration] the Little's-law expectation), so the
// catalog statistics convert the qualitative table entry into a concrete
// tuple ceiling the runtime can be checked against. Operators whose (TS↑,
// TS↑) entry has no GC criterion ("–" in the tables) would retain one side
// in full — unbounded on an unbounded stream — and are declined or
// degraded to periodic batch re-execution.

// StandingEstimate is the admission verdict for evaluating one temporal
// join or semijoin incrementally over live TS-ordered arrival.
type StandingEstimate struct {
	// Bounded reports whether the retained state has a GC criterion under
	// (TS↑, TS↑) arrival — the feasibility condition for incremental
	// evaluation of an unbounded stream.
	Bounded bool
	// Bound is the analytic workspace ceiling in tuples; meaningful only
	// when Bounded. The core operators defer garbage collection to the
	// next opposite-side read, so a retained tuple is live at one of the
	// two GC frontiers bracketing the current read: the ceiling is twice
	// the spanning-set maximum of Tables 1–3, plus the input buffers.
	Bound float64
	// Predicted is the Little's-law expected occupancy λ·E[duration] of
	// the contributing spanning sets — the figure E13 validates.
	Predicted float64
	// Note explains the verdict in the vocabulary of Tables 1–3; it is
	// surfaced verbatim as the explain text of an accept/decline.
	Note string
}

// String renders the estimate as an explain note.
func (e StandingEstimate) String() string {
	if e.Bounded {
		return fmt.Sprintf("bounded: %s (ceiling %.0f tuples, Little's law %.1f)",
			e.Note, e.Bound, e.Predicted)
	}
	return "unbounded: " + e.Note
}

const standingBuffers = 2 // one lookahead head per input side

// EstimateStanding characterizes the workspace of the (kind, semijoin)
// operator under (TS↑, TS↑) live arrival with the given input statistics.
func EstimateStanding(kind algebra.TemporalKind, semijoin bool, sx, sy *catalog.Stats) StandingEstimate {
	mx, my := float64(sx.MaxConcurrency), float64(sy.MaxConcurrency)
	px, py := sx.PredictedWorkspace(), sy.PredictedWorkspace()
	if semijoin {
		switch kind {
		case algebra.KindContain:
			return StandingEstimate{Bounded: true, Bound: 2*mx + standingBuffers, Predicted: px,
				Note: "Table 1(c): retained state ⊆ X spanning set, GC on witness or y frontier"}
		case algebra.KindContained:
			return StandingEstimate{Bounded: true, Bound: 2*my + standingBuffers, Predicted: py,
				Note: "Table 1(c): retained state ⊆ Y spanning set, GC on x frontier"}
		case algebra.KindOverlap:
			return StandingEstimate{Bounded: true, Bound: standingBuffers, Predicted: 0,
				Note: "Table 2(b): input buffers only, no retained state"}
		case algebra.KindBefore:
			return StandingEstimate{Bounded: false,
				Note: "Table 3: before-semijoin needs the full X extent (two passes); no GC under TS↑ arrival"}
		}
		return StandingEstimate{Bounded: false,
			Note: "θ-semijoin has no temporal GC criterion; state grows with the stream"}
	}
	switch kind {
	case algebra.KindContain:
		return StandingEstimate{Bounded: true, Bound: 2*(mx+my) + standingBuffers, Predicted: px + py,
			Note: "Table 1(c): retained state ⊆ X spanning set (Y dead on arrival under sweep)"}
	case algebra.KindContained:
		return StandingEstimate{Bounded: true, Bound: 2*(mx+my) + standingBuffers, Predicted: px + py,
			Note: "Table 1(c) with sides swapped: retained state ⊆ Y spanning set"}
	case algebra.KindOverlap:
		return StandingEstimate{Bounded: true, Bound: 2*(mx+my) + standingBuffers, Predicted: px + py,
			Note: "Table 2(b): both spanning sets retained, GC on opposite frontier"}
	case algebra.KindBefore:
		return StandingEstimate{Bounded: false,
			Note: "Table 3: before-join output is near-Cartesian; X must be retained in full under TS↑ arrival"}
	}
	return StandingEstimate{Bounded: false,
		Note: "θ-join has no temporal GC criterion; state grows with the stream"}
}
