package optimizer

import (
	"fmt"

	"tdb/internal/catalog"
)

// This file extends the Section 6 cost model to time-range partitioned
// parallel execution. The paper's stream operators are single passes over
// sorted inputs, so k shards divide the per-shard stream cost by k; what
// parallelism adds back is the boundary replication (tuples whose
// lifespan crosses a cut run in every shard they intersect, predictable
// from λ and the duration moments by Little's law) plus a partition pass
// and a recombination merge. The estimate is what the executor records in
// the plan explain for every engaged or declined fan-out decision.

// partitionOverhead charges the partition pass and the order-preserving
// recombination merge, per tuple moved, in comparison units. The columnar
// drivers replicate int32 row indexes across shards (not rows) and merge
// 16-byte owned pairs, so both passes got cheaper than the 0.25 the
// row-replicating drivers were charged; the pinned round-trip benchmark
// puts the per-tuple move at roughly 0.15 of a predicate evaluation.
const partitionOverhead = 0.15

// MinParallelSpeedup is the predicted speedup below which a node stays
// serial: at break-even, shard setup is pure overhead. The columnar core
// made the serial baseline ~2-3× faster while the fixed fan-out costs
// (goroutines, span planning, column gathers) stayed put, so a fan-out
// now needs more predicted headroom before it pays.
const MinParallelSpeedup = 1.3

// ParallelEstimate predicts the effect of fanning one stream operator out
// across k time shards.
type ParallelEstimate struct {
	// Workers is the shard count the estimate is for.
	Workers int
	// Replication is the predicted boundary-replication rate — extra
	// tuple copies per input tuple. Each of the k−1 interior cuts is
	// expected to be spanned by λ·E[D] lifespans of each input.
	Replication float64
	// Serial and Parallel are costs in comparison units, the same unit as
	// JoinEstimate, so the two models compose.
	Serial, Parallel float64
}

// Speedup is the predicted serial/parallel cost ratio.
func (p ParallelEstimate) Speedup() float64 {
	if p.Parallel <= 0 {
		return 1
	}
	return p.Serial / p.Parallel
}

// Use reports whether the fan-out is predicted to pay.
func (p ParallelEstimate) Use() bool {
	return p.Workers >= 2 && p.Speedup() >= MinParallelSpeedup
}

// String renders the decision evidence for the plan explain.
func (p ParallelEstimate) String() string {
	return fmt.Sprintf("×%d predicted speedup %.1f× (boundary replication %.1f%%)",
		p.Workers, p.Speedup(), 100*p.Replication)
}

// EstimateParallel predicts the cost of running a stream operator whose
// serial estimate is e across k time shards of inputs X and Y. Per-shard
// inputs grow by the replication rate, the stream cost divides across the
// k workers, and the partition and merge passes charge per tuple moved.
func EstimateParallel(e JoinEstimate, sx, sy *catalog.Stats, k int) ParallelEstimate {
	p := ParallelEstimate{Workers: k, Serial: e.Stream, Parallel: e.Stream}
	n := float64(sx.Cardinality + sy.Cardinality)
	if k < 2 || n == 0 {
		p.Workers = 1
		return p
	}
	boundary := float64(k-1) * (sx.PredictedWorkspace() + sy.PredictedWorkspace())
	p.Replication = boundary / n
	inflated := n * (1 + p.Replication)
	p.Parallel = e.Stream*(1+p.Replication)/float64(k) + partitionOverhead*(inflated+n)
	return p
}
