package optimizer

import (
	"tdb/internal/algebra"
	"tdb/internal/constraints"
	"tdb/internal/value"
)

// SemanticResult reports what the semantic pass did.
type SemanticResult struct {
	Tree algebra.Expr
	// Removed lists the redundant conjuncts deleted from the tree —
	// for Superstar, f1.ValidFrom<f3.ValidTo and f3.ValidFrom<f2.ValidTo.
	Removed []algebra.Atom
	// Contradiction is set when the conjunction plus the integrity
	// constraints admit no assignment: the query is provably empty
	// without touching any data.
	Contradiction bool
}

// gatherAtoms collects every comparison atom from the Select/Join/Semijoin
// predicates of the tree.
func gatherAtoms(e algebra.Expr) []algebra.Atom {
	var out []algebra.Atom
	var walk func(n algebra.Expr)
	walk = func(n algebra.Expr) {
		switch t := n.(type) {
		case *algebra.Select:
			out = append(out, t.Pred.Atoms...)
		case *algebra.Join:
			out = append(out, t.Pred.Atoms...)
		case *algebra.Semijoin:
			out = append(out, t.Pred.Atoms...)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(e)
	return out
}

func atomEq(a, b algebra.Atom) bool {
	opEq := func(x, y algebra.Operand) bool {
		if x.IsConst != y.IsConst {
			return false
		}
		if x.IsConst {
			return x.Const.Comparable(y.Const) && x.Const.Equal(y.Const)
		}
		return x.Col == y.Col
	}
	return a.Op == b.Op && opEq(a.L, b.L) && opEq(a.R, b.R)
}

// buildSystem assembles the inference system from the given atoms plus the
// instantiated integrity constraints.
func buildSystem(atoms []algebra.Atom, ctx *Context) *constraints.System {
	sys := constraints.NewSystem()
	qc := ctx.queryContext()
	constraints.Instantiate(sys, atoms, qc, ctx.ICs)
	constraints.AddAtoms(sys, atoms, qc)
	return sys
}

// atomTerms converts a comparison atom over temporal columns into system
// terms; ok is false for atoms outside the time domain.
func atomTerms(a algebra.Atom, ctx *Context) (l, r constraints.Term, ok bool) {
	qc := ctx.queryContext()
	conv := func(o algebra.Operand) (constraints.Term, bool) {
		if o.IsConst {
			if o.Const.Kind() == value.KindString {
				return constraints.Term{}, false
			}
			return constraints.ConstT(o.Const.AsTime()), true
		}
		rel, bound := qc.Bindings[o.Col.Var]
		if !bound {
			return constraints.Term{}, false
		}
		tc, temporal := qc.Temporal[rel]
		if !temporal || (o.Col.Col != tc[0] && o.Col.Col != tc[1]) {
			return constraints.Term{}, false
		}
		return constraints.Col(o.Col.Var, o.Col.Col), true
	}
	lt, lok := conv(a.L)
	rt, rok := conv(a.R)
	return lt, rt, lok && rok
}

// SemanticOptimize performs the Section 5 pass over the whole tree: it
// first checks the full conjunction (plus integrity constraints) for
// contradiction, then greedily deletes every temporal comparison atom that
// is implied by the remaining atoms plus the integrity constraints,
// re-testing after each deletion so that mutually redundant pairs lose only
// one member.
func SemanticOptimize(e algebra.Expr, ctx *Context) *SemanticResult {
	res := &SemanticResult{Tree: e}
	all := gatherAtoms(e)

	if buildSystem(all, ctx).Contradictory() {
		res.Contradiction = true
		return res
	}

	// Greedy redundancy elimination over the global conjunction.
	kept := append([]algebra.Atom{}, all...)
	for i := 0; i < len(kept); {
		a := kept[i]
		lt, rt, ok := atomTerms(a, ctx)
		if !ok {
			i++
			continue
		}
		rest := append(append([]algebra.Atom{}, kept[:i]...), kept[i+1:]...)
		if buildSystem(rest, ctx).Implies(lt, a.Op, rt) {
			res.Removed = append(res.Removed, a)
			kept = rest
			continue // same index now holds the next atom
		}
		i++
	}

	if len(res.Removed) == 0 {
		return res
	}
	res.Tree = deleteAtoms(e, res.Removed)
	return res
}

// deleteAtoms returns a copy of the tree with the listed atoms removed from
// every predicate (each removed atom is deleted once).
func deleteAtoms(e algebra.Expr, removed []algebra.Atom) algebra.Expr {
	budget := append([]algebra.Atom{}, removed...)
	strip := func(p algebra.Predicate) algebra.Predicate {
		var keptAtoms []algebra.Atom
	atoms:
		for _, a := range p.Atoms {
			for i, r := range budget {
				if atomEq(a, r) {
					budget = append(budget[:i], budget[i+1:]...)
					continue atoms
				}
			}
			keptAtoms = append(keptAtoms, a)
		}
		return algebra.Predicate{Atoms: keptAtoms, Temporal: p.Temporal}
	}
	var walk func(n algebra.Expr) algebra.Expr
	walk = func(n algebra.Expr) algebra.Expr {
		switch t := n.(type) {
		case *algebra.Scan:
			return t
		case *algebra.Select:
			p := strip(t.Pred)
			in := walk(t.Input)
			if p.True() {
				return in
			}
			return &algebra.Select{Input: in, Pred: p}
		case *algebra.Product:
			return &algebra.Product{L: walk(t.L), R: walk(t.R)}
		case *algebra.Join:
			p := strip(t.Pred)
			l, r := walk(t.L), walk(t.R)
			if p.True() {
				return &algebra.Product{L: l, R: r}
			}
			return &algebra.Join{L: l, R: r, Pred: p}
		case *algebra.Semijoin:
			return &algebra.Semijoin{L: walk(t.L), R: walk(t.R), Pred: strip(t.Pred), Kind: t.Kind}
		case *algebra.Project:
			return &algebra.Project{
				Input: walk(t.Input), Cols: t.Cols,
				TSName: t.TSName, TEName: t.TEName, Distinct: t.Distinct,
			}
		case *algebra.Aggregate:
			return &algebra.Aggregate{Input: walk(t.Input), GroupBy: t.GroupBy, Terms: t.Terms}
		}
		return n
	}
	return walk(e)
}
