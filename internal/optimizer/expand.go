// Package optimizer implements temporal query optimization as the paper
// lays it out: expansion of the temporal operators of Figure 2 into their
// explicit inequality constraints ("syntactic sugaring", Section 3),
// conventional algebraic optimization (via internal/algebra), the semantic
// query optimization of Section 5 — redundant-inequality elimination and
// contradiction detection driven by integrity constraints — and the
// recognition of inequality conjunctions as temporal join/semijoin
// operators so the physical layer can use the stream algorithms of
// Section 4.
package optimizer

import (
	"fmt"

	"tdb/internal/algebra"
	"tdb/internal/constraints"
	"tdb/internal/interval"
	"tdb/internal/relation"
)

// Context carries what the optimizer knows about a query: which relation
// each range variable ranges over, each relation's schema, and the declared
// integrity constraints.
type Context struct {
	Bindings map[string]string // range variable → relation name
	Schemas  map[string]*relation.Schema
	ICs      []constraints.ChronOrder
}

// BuildContext derives bindings and schemas by walking the expression's
// scans.
func BuildContext(e algebra.Expr, src algebra.SchemaSource, ics []constraints.ChronOrder) (*Context, error) {
	ctx := &Context{
		Bindings: map[string]string{},
		Schemas:  map[string]*relation.Schema{},
		ICs:      ics,
	}
	var walk func(n algebra.Expr) error
	walk = func(n algebra.Expr) error {
		if s, ok := n.(*algebra.Scan); ok {
			if prev, dup := ctx.Bindings[s.Var()]; dup && prev != s.Relation {
				return fmt.Errorf("optimizer: range variable %s bound to both %s and %s", s.Var(), prev, s.Relation)
			}
			ctx.Bindings[s.Var()] = s.Relation
			if _, ok := ctx.Schemas[s.Relation]; !ok {
				sch, err := src.SchemaOf(s.Relation)
				if err != nil {
					return err
				}
				ctx.Schemas[s.Relation] = sch
			}
		}
		for _, c := range n.Children() {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	return ctx, nil
}

// queryContext converts to the constraints package's view.
func (c *Context) queryContext() constraints.QueryContext {
	qc := constraints.QueryContext{
		Bindings: c.Bindings,
		Temporal: map[string][2]string{},
	}
	for name, sch := range c.Schemas {
		if sch.Temporal() {
			qc.Temporal[name] = [2]string{sch.Cols[sch.TS].Name, sch.Cols[sch.TE].Name}
		}
	}
	return qc
}

// spanCols returns the ValidFrom/ValidTo column names of a range variable.
func (c *Context) spanCols(v string) (ts, te string, err error) {
	rel, ok := c.Bindings[v]
	if !ok {
		return "", "", fmt.Errorf("optimizer: unknown range variable %s", v)
	}
	sch := c.Schemas[rel]
	if sch == nil || !sch.Temporal() {
		return "", "", fmt.Errorf("optimizer: range variable %s over non-temporal relation %s", v, rel)
	}
	return sch.Cols[sch.TS].Name, sch.Cols[sch.TE].Name, nil
}

// ExpandPredicate replaces every temporal-operator atom by its explicit
// constraint conjunction from Figure 2 (or, for the general TQuel overlap,
// by X.TS<Y.TE ∧ Y.TS<X.TE), leaving comparison atoms untouched.
func ExpandPredicate(p algebra.Predicate, ctx *Context) (algebra.Predicate, error) {
	out := algebra.Predicate{Atoms: append([]algebra.Atom{}, p.Atoms...)}
	for _, ta := range p.Temporal {
		lts, lte, err := ctx.spanCols(ta.L)
		if err != nil {
			return out, err
		}
		rts, rte, err := ctx.spanCols(ta.R)
		if err != nil {
			return out, err
		}
		pick := func(v string, ts, te string, e interval.Endpoint) algebra.Operand {
			if e == interval.TS {
				return algebra.Column(v, ts)
			}
			return algebra.Column(v, te)
		}
		if ta.General {
			out.Atoms = append(out.Atoms,
				algebra.Atom{L: algebra.Column(ta.L, lts), Op: algebra.LT, R: algebra.Column(ta.R, rte)},
				algebra.Atom{L: algebra.Column(ta.R, rts), Op: algebra.LT, R: algebra.Column(ta.L, lte)},
			)
			continue
		}
		for _, con := range ta.Rel.Constraints() {
			var op algebra.CmpOp
			switch con.Op {
			case interval.OpEQ:
				op = algebra.EQ
			case interval.OpLT:
				op = algebra.LT
			default:
				op = algebra.GT
			}
			out.Atoms = append(out.Atoms, algebra.Atom{
				L:  pick(ta.L, lts, lte, con.Left),
				Op: op,
				R:  pick(ta.R, rts, rte, con.Right),
			})
		}
	}
	return out, nil
}

// ExpandTree expands the temporal atoms of every predicate in the tree.
func ExpandTree(e algebra.Expr, ctx *Context) (algebra.Expr, error) {
	switch n := e.(type) {
	case *algebra.Scan:
		return n, nil
	case *algebra.Select:
		in, err := ExpandTree(n.Input, ctx)
		if err != nil {
			return nil, err
		}
		p, err := ExpandPredicate(n.Pred, ctx)
		if err != nil {
			return nil, err
		}
		return &algebra.Select{Input: in, Pred: p}, nil
	case *algebra.Product:
		l, err := ExpandTree(n.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := ExpandTree(n.R, ctx)
		if err != nil {
			return nil, err
		}
		return &algebra.Product{L: l, R: r}, nil
	case *algebra.Join:
		l, err := ExpandTree(n.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := ExpandTree(n.R, ctx)
		if err != nil {
			return nil, err
		}
		p, err := ExpandPredicate(n.Pred, ctx)
		if err != nil {
			return nil, err
		}
		return &algebra.Join{L: l, R: r, Pred: p}, nil
	case *algebra.Semijoin:
		l, err := ExpandTree(n.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := ExpandTree(n.R, ctx)
		if err != nil {
			return nil, err
		}
		p, err := ExpandPredicate(n.Pred, ctx)
		if err != nil {
			return nil, err
		}
		return &algebra.Semijoin{L: l, R: r, Pred: p, Kind: n.Kind}, nil
	case *algebra.Project:
		in, err := ExpandTree(n.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &algebra.Project{
			Input: in, Cols: n.Cols,
			TSName: n.TSName, TEName: n.TEName, Distinct: n.Distinct,
		}, nil
	case *algebra.Aggregate:
		in, err := ExpandTree(n.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &algebra.Aggregate{Input: in, GroupBy: n.GroupBy, Terms: n.Terms}, nil
	}
	return nil, fmt.Errorf("optimizer: unknown expression %T", e)
}
