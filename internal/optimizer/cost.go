package optimizer

import (
	"fmt"
	"math"

	"tdb/internal/catalog"
)

// This file implements the statistics-driven plan choice the paper's
// Section 6 calls for: "in addition to conventional statistical information
// such as relation size ..., estimating the amount of local workspace
// becomes necessary". Costs are measured in predicate comparisons — the
// unit the experiments report — so estimates are directly checkable
// against metrics.Probe.

// JoinEstimate carries the predicted costs of evaluating one temporal join
// over two relations.
type JoinEstimate struct {
	// NestedLoop is the conventional cost: |X|·|Y| comparisons.
	NestedLoop float64
	// Stream is the single-pass cost: each read is compared against the
	// opposite retained state, whose expected size Little's law gives as
	// λ·E[duration] per contributing side.
	Stream float64
	// Sort is the comparison cost of establishing the required orders
	// for the inputs that do not already have them (n·log₂n each).
	Sort float64
	// Workspace predicts the stream state high-water mark in tuples.
	Workspace float64
}

// streamUnitCost converts a predicted stream comparison into nested-loop
// predicate-evaluation units at the UseStream decision. The columnar batch
// kernels run the sweep over flat int64 endpoint columns with gapless
// active lists, so one retained-state probe costs well under one row
// predicate evaluation: the E25 sweep and the pinned contain-join
// benchmark both measure the batch kernel at ~2.4× the row kernel's
// throughput on identical comparison counts, i.e. ~0.42 of a comparison
// each. Stream itself stays a raw comparison count — the E23 cost-model
// experiment validates it against metrics.Probe — only the plan choice
// applies the unit conversion. Sort is excluded from the discount: input
// ordering is still established row-at-a-time before batching.
const streamUnitCost = 0.42

// StreamTotal is the full stream-plan cost including sorting, in raw
// comparison counts (no unit conversion — directly checkable against
// measured probes).
func (e JoinEstimate) StreamTotal() float64 { return e.Stream + e.Sort }

// UseStream reports whether the stream plan is predicted cheaper, pricing
// stream comparisons at the columnar kernels' measured unit cost.
func (e JoinEstimate) UseStream() bool {
	return streamUnitCost*e.Stream+e.Sort < e.NestedLoop
}

// String renders the estimate.
func (e JoinEstimate) String() string {
	return fmt.Sprintf("nested-loop=%.0f stream=%.0f (+sort %.0f) workspace=%.1f → %s",
		e.NestedLoop, e.Stream, e.Sort, e.Workspace, map[bool]string{true: "stream", false: "nested-loop"}[e.UseStream()])
}

func sortCost(n int, sorted bool) float64 {
	if sorted || n < 2 {
		return 0
	}
	return float64(n) * math.Log2(float64(n))
}

// EstimateContainJoin predicts the cost of Contain-join(X,Y) under the
// (ValidFrom ↑, ValidFrom ↑) ordering. Under the sweep policy only the X
// side retains state, so the per-read comparison count is the expected X
// occupancy λx·E[Dx].
func EstimateContainJoin(sx, sy *catalog.Stats) JoinEstimate {
	nx, ny := float64(sx.Cardinality), float64(sy.Cardinality)
	state := sx.PredictedWorkspace()
	return JoinEstimate{
		NestedLoop: nx * ny,
		Stream:     (nx + ny) * math.Max(state, 1),
		Sort:       sortCost(sx.Cardinality, sx.SortedTS) + sortCost(sy.Cardinality, sy.SortedTS),
		Workspace:  state + 2,
	}
}

// EstimateOverlapJoin predicts Overlap-join(X,Y) under (TS ↑, TS ↑): both
// sides retain their spanning sets.
func EstimateOverlapJoin(sx, sy *catalog.Stats) JoinEstimate {
	nx, ny := float64(sx.Cardinality), float64(sy.Cardinality)
	state := sx.PredictedWorkspace() + sy.PredictedWorkspace()
	return JoinEstimate{
		NestedLoop: nx * ny,
		Stream:     (nx + ny) * math.Max(state/2, 1),
		Sort:       sortCost(sx.Cardinality, sx.SortedTS) + sortCost(sy.Cardinality, sy.SortedTS),
		Workspace:  state + 2,
	}
}

// EstimateSemijoin predicts the Figure 6 buffers-only semijoins: one
// comparison per tuple consumed, workspace of two buffers.
func EstimateSemijoin(sx, sy *catalog.Stats, sortedX, sortedY bool) JoinEstimate {
	nx, ny := float64(sx.Cardinality), float64(sy.Cardinality)
	return JoinEstimate{
		NestedLoop: nx * ny / 2, // expected early exit halves the inner scan
		Stream:     nx + ny,
		Sort:       sortCost(sx.Cardinality, sortedX) + sortCost(sy.Cardinality, sortedY),
		Workspace:  2,
	}
}
