package optimizer

import (
	"strings"
	"testing"

	"tdb/internal/catalog"
	"tdb/internal/core"
	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/relation"
	"tdb/internal/stream"
	"tdb/internal/workload"
)

func statsFor(n int, lambda, dur float64, seed int64) (*catalog.Stats, []relation.Tuple) {
	ts := workload.Tuples(workload.Config{N: n, Lambda: lambda, MeanDur: dur, Seed: seed}, "t")
	rel := relation.FromTuples("R", ts)
	st, err := catalog.Collect(rel)
	if err != nil {
		panic(err)
	}
	return st, ts
}

func tSpan(t relation.Tuple) interval.Interval { return t.Span }

func sortedCopy(ts []relation.Tuple, o relation.Order) []relation.Tuple {
	c := append([]relation.Tuple{}, ts...)
	relation.SortSpans(c, tSpan, o)
	return c
}

// The predicted comparison counts track the measured ones within a small
// factor, and the predicted winner wins on actual comparisons.
func TestContainJoinEstimateTracksMeasured(t *testing.T) {
	sx, xs := statsFor(3000, 1, 12, 1)
	sy, ys := statsFor(3000, 1, 12, 2)
	est := EstimateContainJoin(sx, sy)

	probe := &metrics.Probe{}
	err := core.ContainJoinTSTS(
		stream.FromSlice(sortedCopy(xs, relation.Order{relation.TSAsc})),
		stream.FromSlice(sortedCopy(ys, relation.Order{relation.TSAsc})),
		tSpan, core.Options{Probe: probe}, func(a, b relation.Tuple) {})
	if err != nil {
		t.Fatal(err)
	}

	ratio := float64(probe.Comparisons) / est.Stream
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("stream estimate off: measured %d vs predicted %.0f (ratio %.2f)",
			probe.Comparisons, est.Stream, ratio)
	}
	wsRatio := float64(probe.Workspace()) / est.Workspace
	if wsRatio < 0.2 || wsRatio > 5 {
		t.Errorf("workspace estimate off: measured %d vs predicted %.1f",
			probe.Workspace(), est.Workspace)
	}
	// At n=3000 and modest occupancy the stream plan must be predicted —
	// and actually is — far cheaper than the nested loop.
	if !est.UseStream() {
		t.Errorf("estimate picked nested loop: %v", est)
	}
	if nl := int64(sx.Cardinality) * int64(sy.Cardinality); probe.Comparisons >= nl {
		t.Errorf("stream measured %d not below nested loop %d", probe.Comparisons, nl)
	}
	if !strings.Contains(est.String(), "stream") {
		t.Errorf("estimate rendering: %s", est)
	}
}

// When the inputs are tiny and unsorted, sorting dominates and the model
// may prefer the nested loop; at scale the stream plan must win. The
// crossover must exist and be monotone.
func TestEstimateCrossover(t *testing.T) {
	unsorted := func(st *catalog.Stats) *catalog.Stats {
		c := *st
		c.SortedTS, c.SortedTE = false, false
		return &c
	}
	var prev float64
	wonAtScale := false
	for _, n := range []int{4, 64, 1024, 16384} {
		sx, _ := statsFor(n, 1, 40, 3)
		sy, _ := statsFor(n, 1, 40, 4)
		est := EstimateContainJoin(unsorted(sx), unsorted(sy))
		advantage := est.NestedLoop / est.StreamTotal()
		if advantage < prev {
			t.Errorf("n=%d: stream advantage %.2f not monotone (prev %.2f)", n, advantage, prev)
		}
		prev = advantage
		if n >= 1024 && est.UseStream() {
			wonAtScale = true
		}
	}
	if !wonAtScale {
		t.Error("stream never predicted to win at scale")
	}
}

func TestSemijoinEstimate(t *testing.T) {
	sx, _ := statsFor(2000, 1, 10, 5)
	sy, _ := statsFor(2000, 1, 10, 6)
	est := EstimateSemijoin(sx, sy, true, true)
	if est.Workspace != 2 {
		t.Errorf("buffers-only workspace predicted %v", est.Workspace)
	}
	if est.Sort != 0 {
		t.Errorf("sorted inputs predicted sort cost %v", est.Sort)
	}
	if !est.UseStream() {
		t.Errorf("semijoin estimate picked nested loop: %v", est)
	}
	// Unsorted inputs pay n·log n each.
	est2 := EstimateSemijoin(sx, sy, false, false)
	if est2.Sort <= 0 {
		t.Error("unsorted inputs predicted free")
	}
}

func TestOverlapEstimate(t *testing.T) {
	sx, xs := statsFor(2000, 2, 8, 7)
	sy, ys := statsFor(2000, 2, 8, 8)
	est := EstimateOverlapJoin(sx, sy)
	probe := &metrics.Probe{}
	err := core.OverlapJoin(
		stream.FromSlice(sortedCopy(xs, relation.Order{relation.TSAsc})),
		stream.FromSlice(sortedCopy(ys, relation.Order{relation.TSAsc})),
		tSpan, core.Options{Probe: probe}, func(a, b relation.Tuple) {})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(probe.Comparisons) / est.Stream
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("overlap estimate off: measured %d vs predicted %.0f", probe.Comparisons, est.Stream)
	}
}
