package optimizer

import (
	"tdb/internal/algebra"
	"tdb/internal/constraints"
)

// This file implements the recognition step of Section 5: "being able to
// recognize a Contained-semijoin allows the database system to make use of
// sort orderings and therefore the stream processing technique". A
// conjunction of strict inequalities between two sides is matched against
// the operator signatures of Figure 2 / Figure 8:
//
//	contain:    L.a < R.TS ∧ R.TE < L.b   with L.a ≤ L.b   (right during left)
//	contained:  R.TS < L.a ∧ L.b < R.TE   with L.a ≤ L.b   (left during right)
//	overlap:    L.a < R.TE ∧ R.TS < L.b   with L.a ≤ L.b   (lifespans share a chronon)
//	before:     L.b < R.TS                                 (left wholly precedes)
//
// The left lifespan [a, b) may be *derived*: in the Superstar query it is
// [f1.ValidTo, f2.ValidFrom), the associate period of the promoted member,
// whose well-formedness a ≤ b follows from the integrity constraints — so
// the classifier consults the constraint system rather than the schema.

// sideCols classifies an atom's operands: each must be a temporal column of
// a range variable of one side.
type sideCol struct {
	ref  algebra.ColRef
	isTS bool // ValidFrom column of its relation
}

// temporalColOf resolves an operand to a temporal column reference of one
// of the given variables.
func temporalColOf(o algebra.Operand, vars map[string]bool, ctx *Context) (sideCol, bool) {
	if o.IsConst || !vars[o.Col.Var] {
		return sideCol{}, false
	}
	ts, te, err := ctx.spanCols(o.Col.Var)
	if err != nil {
		return sideCol{}, false
	}
	switch o.Col.Col {
	case ts:
		return sideCol{ref: o.Col, isTS: true}, true
	case te:
		return sideCol{ref: o.Col, isTS: false}, true
	}
	return sideCol{}, false
}

// Pattern is a recognized temporal operator over a cross-side conjunction.
type Pattern struct {
	Kind         algebra.TemporalKind
	LSpan, RSpan algebra.SpanRef
}

// Classify matches the cross conjuncts of a join/semijoin predicate
// against the temporal operator signatures. atoms must all span both
// sides; sys supplies the ordering knowledge (integrity constraints plus
// the query's remaining conjuncts) used to orient the derived left
// lifespan. It returns KindTheta when no signature matches exactly.
func Classify(atoms []algebra.Atom, leftVars, rightVars map[string]bool,
	ctx *Context, sys *constraints.System) Pattern {

	theta := Pattern{Kind: algebra.KindTheta}

	// Normalize every atom to "smaller < larger" with sides identified.
	type edge struct {
		l      sideCol // left-side column
		r      sideCol // right-side column
		lFirst bool    // true: l < r; false: r < l
	}
	var edges []edge
	for _, a := range atoms {
		if a.Op != algebra.LT && a.Op != algebra.GT {
			return theta
		}
		lo, ro := a.L, a.R
		if a.Op == algebra.GT {
			lo, ro = a.R, a.L // now lo < ro
		}
		switch lc, lok := temporalColOf(lo, leftVars, ctx); {
		case lok:
			rc, rok := temporalColOf(ro, rightVars, ctx)
			if !rok {
				return theta
			}
			edges = append(edges, edge{l: lc, r: rc, lFirst: true})
		default:
			rc, rok := temporalColOf(lo, rightVars, ctx)
			lc2, lok2 := temporalColOf(ro, leftVars, ctx)
			if !rok || !lok2 {
				return theta
			}
			edges = append(edges, edge{l: lc2, r: rc, lFirst: false})
		}
	}

	rspanOf := func(v string) algebra.SpanRef {
		ts, te, _ := ctx.spanCols(v)
		return algebra.SpanRef{
			TS: algebra.ColRef{Var: v, Col: ts},
			TE: algebra.ColRef{Var: v, Col: te},
		}
	}
	orient := func(a, b algebra.ColRef) (algebra.SpanRef, bool) {
		ta, tb := constraints.Col(a.Var, a.Col), constraints.Col(b.Var, b.Col)
		if a == b || sys.Implies(ta, algebra.LE, tb) {
			return algebra.SpanRef{TS: a, TE: b}, true
		}
		if sys.Implies(tb, algebra.LE, ta) {
			return algebra.SpanRef{TS: b, TE: a}, true
		}
		return algebra.SpanRef{}, false
	}

	switch len(edges) {
	case 1:
		e := edges[0]
		// before: L.b < R.TS. (The mirrored "after" form R.TE < L.a is a
		// before-join with the operands exchanged; callers swap inputs.)
		if e.lFirst && e.r.isTS {
			return Pattern{
				Kind:  algebra.KindBefore,
				LSpan: algebra.SpanRef{TS: e.l.ref, TE: e.l.ref},
				RSpan: rspanOf(e.r.ref.Var),
			}
		}
		return theta
	case 2:
		e1, e2 := edges[0], edges[1]
		if e1.r.ref.Var != e2.r.ref.Var {
			return theta // right lifespan must come from one variable
		}
		rspan := rspanOf(e1.r.ref.Var)
		// Identify which edge touches R.TS and which R.TE.
		var tsEdge, teEdge *edge
		for i := range edges {
			if edges[i].r.isTS {
				tsEdge = &edges[i]
			} else {
				teEdge = &edges[i]
			}
		}
		if tsEdge == nil || teEdge == nil {
			return theta
		}
		switch {
		case !tsEdge.lFirst && teEdge.lFirst:
			// R.TS < L.p ∧ L.q < R.TE: contained (p before q) or overlap
			// (q before p).
			p, q := tsEdge.l.ref, teEdge.l.ref
			if span, ok := orient(p, q); ok {
				if span.TS == p {
					return Pattern{Kind: algebra.KindContained, LSpan: span, RSpan: rspan}
				}
				return Pattern{Kind: algebra.KindOverlap, LSpan: span, RSpan: rspan}
			}
			return theta
		case tsEdge.lFirst && !teEdge.lFirst:
			// L.a < R.TS ∧ R.TE < L.b: contain, provided a ≤ b.
			a, b := tsEdge.l.ref, teEdge.l.ref
			if span, ok := orient(a, b); ok && span.TS == a {
				return Pattern{Kind: algebra.KindContain, LSpan: span, RSpan: rspan}
			}
			return theta
		default:
			return theta
		}
	}
	return theta
}

// AnnotateJoins walks the tree and classifies every Join and Semijoin
// predicate, filling Kind and the span annotations when a temporal
// signature matches all of the node's cross conjuncts. The constraint
// system is built from the whole tree plus the integrity constraints, so a
// derived lifespan such as [f1.ValidTo, f2.ValidFrom) can be oriented.
func AnnotateJoins(e algebra.Expr, ctx *Context) algebra.Expr {
	sys := buildSystem(gatherAtoms(e), ctx)
	var walk func(n algebra.Expr) algebra.Expr
	walk = func(n algebra.Expr) algebra.Expr {
		switch t := n.(type) {
		case *algebra.Scan:
			return t
		case *algebra.Select:
			return &algebra.Select{Input: walk(t.Input), Pred: t.Pred}
		case *algebra.Product:
			return &algebra.Product{L: walk(t.L), R: walk(t.R)}
		case *algebra.Join:
			l, r := walk(t.L), walk(t.R)
			pat := Classify(t.Pred.Atoms, algebra.VarSet(l), algebra.VarSet(r), ctx, sys)
			return &algebra.Join{L: l, R: r, Pred: t.Pred, Kind: pat.Kind, LSpan: pat.LSpan, RSpan: pat.RSpan}
		case *algebra.Semijoin:
			l, r := walk(t.L), walk(t.R)
			pat := Classify(t.Pred.Atoms, algebra.VarSet(l), algebra.VarSet(r), ctx, sys)
			return &algebra.Semijoin{L: l, R: r, Pred: t.Pred, Kind: pat.Kind, LSpan: pat.LSpan, RSpan: pat.RSpan}
		case *algebra.Project:
			return &algebra.Project{
				Input: walk(t.Input), Cols: t.Cols,
				TSName: t.TSName, TEName: t.TEName, Distinct: t.Distinct,
			}
		case *algebra.Aggregate:
			return &algebra.Aggregate{Input: walk(t.Input), GroupBy: t.GroupBy, Terms: t.Terms}
		}
		return n
	}
	return walk(e)
}

// IntroduceSemijoins converts a Join directly beneath a duplicate-
// eliminating projection into a Semijoin when the projection (and the
// lifespan it assembles) needs columns of only one side — the step that
// turns the Superstar less-than join into a Contained-semijoin. The right
// side may be swapped into the left to make the conversion apply.
func IntroduceSemijoins(e algebra.Expr, ctx *Context) algebra.Expr {
	var walk func(n algebra.Expr) algebra.Expr
	walk = func(n algebra.Expr) algebra.Expr {
		switch t := n.(type) {
		case *algebra.Scan:
			return t
		case *algebra.Select:
			return &algebra.Select{Input: walk(t.Input), Pred: t.Pred}
		case *algebra.Product:
			return &algebra.Product{L: walk(t.L), R: walk(t.R)}
		case *algebra.Join:
			return &algebra.Join{L: walk(t.L), R: walk(t.R), Pred: t.Pred,
				Kind: t.Kind, LSpan: t.LSpan, RSpan: t.RSpan}
		case *algebra.Semijoin:
			return &algebra.Semijoin{L: walk(t.L), R: walk(t.R), Pred: t.Pred,
				Kind: t.Kind, LSpan: t.LSpan, RSpan: t.RSpan}
		case *algebra.Project:
			in := walk(t.Input)
			join, ok := in.(*algebra.Join)
			if !ok || !t.Distinct {
				return &algebra.Project{Input: in, Cols: t.Cols,
					TSName: t.TSName, TEName: t.TEName, Distinct: t.Distinct}
			}
			needed := map[string]bool{}
			for _, c := range t.Cols {
				needed[c.From.Var] = true
			}
			within := func(vars map[string]bool) bool {
				for v := range needed {
					if !vars[v] {
						return false
					}
				}
				return true
			}
			lv, rv := algebra.VarSet(join.L), algebra.VarSet(join.R)
			var semi *algebra.Semijoin
			switch {
			case within(lv):
				semi = &algebra.Semijoin{L: join.L, R: join.R, Pred: join.Pred,
					Kind: join.Kind, LSpan: join.LSpan, RSpan: join.RSpan}
			case within(rv):
				// Swap sides; the recognized kind flips between contain
				// and contained, and spans exchange.
				kind := join.Kind
				switch kind {
				case algebra.KindContain:
					kind = algebra.KindContained
				case algebra.KindContained:
					kind = algebra.KindContain
				case algebra.KindBefore:
					kind = algebra.KindTheta // "after-semijoin": keep generic
				}
				semi = &algebra.Semijoin{L: join.R, R: join.L, Pred: flipPred(join.Pred),
					Kind: kind, LSpan: join.RSpan, RSpan: join.LSpan}
			default:
				return &algebra.Project{Input: in, Cols: t.Cols,
					TSName: t.TSName, TEName: t.TEName, Distinct: t.Distinct}
			}
			return &algebra.Project{Input: semi, Cols: t.Cols,
				TSName: t.TSName, TEName: t.TEName, Distinct: t.Distinct}
		case *algebra.Aggregate:
			return &algebra.Aggregate{Input: walk(t.Input), GroupBy: t.GroupBy, Terms: t.Terms}
		}
		return n
	}
	return walk(e)
}

// flipPred exchanges the operand roles of each atom (a op b → b flip(op) a)
// so a side-swapped semijoin reads naturally; the conjunction is unchanged
// logically.
func flipPred(p algebra.Predicate) algebra.Predicate {
	out := algebra.Predicate{Temporal: p.Temporal}
	for _, a := range p.Atoms {
		out.Atoms = append(out.Atoms, algebra.Atom{L: a.R, Op: a.Op.Flip(), R: a.L})
	}
	return out
}
