package optimizer

import (
	"strings"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/interval"
	"tdb/internal/value"
)

// The Section 5 transformed query written directly: a during-semijoin of a
// selection of Faculty against an identical selection under another range
// variable must be detected as a self semijoin.
func selfQuery(rankL, rankR string) algebra.Expr {
	col := algebra.Column
	cons := func(s string) algebra.Operand { return algebra.Const(value.String_(s)) }
	pred := algebra.Predicate{Atoms: []algebra.Atom{
		{L: col("i", "Rank"), Op: algebra.EQ, R: cons(rankL)},
		{L: col("j", "Rank"), Op: algebra.EQ, R: cons(rankR)},
	}}
	return &algebra.Project{
		Input: &algebra.Select{
			Input: &algebra.Product{
				L: &algebra.Scan{Relation: "Faculty", As: "i"},
				R: &algebra.Scan{Relation: "Faculty", As: "j"},
			},
			Pred: pred.And(algebra.Predicate{
				Temporal: []algebra.TemporalAtom{{L: "i", R: "j", Rel: interval.RelDuring}},
			}),
		},
		Cols: []algebra.Output{
			{Name: "Name", From: algebra.ColRef{Var: "i", Col: "Name"}},
			{Name: "ValidFrom", From: algebra.ColRef{Var: "i", Col: "ValidFrom"}},
			{Name: "ValidTo", From: algebra.ColRef{Var: "i", Col: "ValidTo"}},
		},
		TSName: "ValidFrom", TEName: "ValidTo",
		Distinct: true,
	}
}

func TestSelfSemijoinDetected(t *testing.T) {
	res, err := Optimize(selfQuery("Associate", "Associate"), src(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	semi, ok := res.Tree.(*algebra.Project).Input.(*algebra.Semijoin)
	if !ok {
		t.Fatalf("no semijoin: %s", algebra.Format(res.Tree))
	}
	if semi.Kind != algebra.KindContained {
		t.Fatalf("kind %v", semi.Kind)
	}
	if !semi.Self {
		t.Fatalf("self not detected:\n%s", algebra.Format(res.Tree))
	}
	if !strings.Contains(semi.Label(), "self") {
		t.Errorf("label: %s", semi.Label())
	}
}

// Different selections on the two sides must not be detected as self.
func TestSelfSemijoinNotDetectedWhenSidesDiffer(t *testing.T) {
	res, err := Optimize(selfQuery("Associate", "Full"), src(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	semi, ok := res.Tree.(*algebra.Project).Input.(*algebra.Semijoin)
	if !ok {
		t.Fatalf("no semijoin: %s", algebra.Format(res.Tree))
	}
	if semi.Self {
		t.Error("differing sides detected as self")
	}
}

func TestEqualModVars(t *testing.T) {
	m := varMap{}
	a := &algebra.Select{
		Input: &algebra.Scan{Relation: "R", As: "x"},
		Pred: algebra.Predicate{Atoms: []algebra.Atom{
			{L: algebra.Column("x", "A"), Op: algebra.LT, R: algebra.Const(value.Int(5))},
		}},
	}
	b := &algebra.Select{
		Input: &algebra.Scan{Relation: "R", As: "y"},
		Pred: algebra.Predicate{Atoms: []algebra.Atom{
			{L: algebra.Column("y", "A"), Op: algebra.LT, R: algebra.Const(value.Int(5))},
		}},
	}
	if !equalModVars(a, b, m) {
		t.Error("renamed twins not equal")
	}
	if m["x"] != "y" {
		t.Errorf("renaming: %v", m)
	}
	// Different constant.
	c := &algebra.Select{
		Input: &algebra.Scan{Relation: "R", As: "y"},
		Pred: algebra.Predicate{Atoms: []algebra.Atom{
			{L: algebra.Column("y", "A"), Op: algebra.LT, R: algebra.Const(value.Int(6))},
		}},
	}
	if equalModVars(a, c, varMap{}) {
		t.Error("different constants equal")
	}
	// Different relation.
	d := &algebra.Scan{Relation: "S", As: "y"}
	if equalModVars(&algebra.Scan{Relation: "R", As: "x"}, d, varMap{}) {
		t.Error("different relations equal")
	}
	// Inconsistent renaming.
	m2 := varMap{}
	if !m2.bind("x", "y") || m2.bind("x", "z") {
		t.Error("varMap bind consistency broken")
	}
}
