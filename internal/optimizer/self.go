package optimizer

import (
	"tdb/internal/algebra"
)

// This file detects self semijoins: a recognized temporal semijoin whose
// two inputs are the same expression up to range-variable renaming, with
// the recognized lifespans corresponding under that renaming. Such an
// operator is the Contained-semijoin(X,X) / Contain-semijoin(X,X) of the
// paper's Section 4.2.3, and the engine evaluates it with the single-scan,
// single-state-tuple algorithms of Figure 7 — the transformed Superstar
// query of Section 5 written directly in the surface language then runs as
// "plan C" without any manual work.

// varMap accumulates the left→right range-variable correspondence.
type varMap map[string]string

// bind records l↦r, failing on conflicts.
func (m varMap) bind(l, r string) bool {
	if prev, ok := m[l]; ok {
		return prev == r
	}
	m[l] = r
	return true
}

// equalModVars reports whether two expressions are structurally identical
// up to a consistent renaming of range variables, accumulating the
// renaming. Only the node shapes the semijoin pipeline produces are
// compared; anything else is conservatively unequal.
func equalModVars(l, r algebra.Expr, m varMap) bool {
	switch a := l.(type) {
	case *algebra.Scan:
		b, ok := r.(*algebra.Scan)
		return ok && a.Relation == b.Relation && m.bind(a.Var(), b.Var())
	case *algebra.Select:
		b, ok := r.(*algebra.Select)
		return ok && equalModVars(a.Input, b.Input, m) && predEqualModVars(a.Pred, b.Pred, m)
	case *algebra.Product:
		b, ok := r.(*algebra.Product)
		return ok && equalModVars(a.L, b.L, m) && equalModVars(a.R, b.R, m)
	case *algebra.Join:
		b, ok := r.(*algebra.Join)
		return ok && a.Kind == b.Kind &&
			equalModVars(a.L, b.L, m) && equalModVars(a.R, b.R, m) &&
			predEqualModVars(a.Pred, b.Pred, m)
	}
	return false
}

func operandEqualModVars(a, b algebra.Operand, m varMap) bool {
	if a.IsConst != b.IsConst {
		return false
	}
	if a.IsConst {
		return a.Const.Comparable(b.Const) && a.Const.Equal(b.Const)
	}
	return a.Col.Col == b.Col.Col && m.bind(a.Col.Var, b.Col.Var)
}

func predEqualModVars(a, b algebra.Predicate, m varMap) bool {
	if len(a.Atoms) != len(b.Atoms) || len(a.Temporal) != len(b.Temporal) {
		return false
	}
	for i := range a.Atoms {
		if a.Atoms[i].Op != b.Atoms[i].Op ||
			!operandEqualModVars(a.Atoms[i].L, b.Atoms[i].L, m) ||
			!operandEqualModVars(a.Atoms[i].R, b.Atoms[i].R, m) {
			return false
		}
	}
	for i := range a.Temporal {
		ta, tb := a.Temporal[i], b.Temporal[i]
		if ta.General != tb.General || ta.Rel != tb.Rel ||
			!m.bind(ta.L, tb.L) || !m.bind(ta.R, tb.R) {
			return false
		}
	}
	return true
}

// spanCorresponds reports whether the left span maps onto the right span
// under the accumulated renaming.
func spanCorresponds(l, r algebra.SpanRef, m varMap) bool {
	return m[l.TS.Var] == r.TS.Var && l.TS.Col == r.TS.Col &&
		m[l.TE.Var] == r.TE.Var && l.TE.Col == r.TE.Col
}

// MarkSelfSemijoins walks the tree and sets Semijoin.Self on every
// recognized contain/contained semijoin whose sides coincide up to
// renaming with corresponding lifespans.
func MarkSelfSemijoins(e algebra.Expr) algebra.Expr {
	var walk func(n algebra.Expr) algebra.Expr
	walk = func(n algebra.Expr) algebra.Expr {
		switch t := n.(type) {
		case *algebra.Scan:
			return t
		case *algebra.Select:
			return &algebra.Select{Input: walk(t.Input), Pred: t.Pred}
		case *algebra.Product:
			return &algebra.Product{L: walk(t.L), R: walk(t.R)}
		case *algebra.Join:
			return &algebra.Join{L: walk(t.L), R: walk(t.R), Pred: t.Pred,
				Kind: t.Kind, LSpan: t.LSpan, RSpan: t.RSpan}
		case *algebra.Semijoin:
			out := &algebra.Semijoin{L: walk(t.L), R: walk(t.R), Pred: t.Pred,
				Kind: t.Kind, LSpan: t.LSpan, RSpan: t.RSpan}
			if out.Kind == algebra.KindContained || out.Kind == algebra.KindContain {
				m := varMap{}
				if equalModVars(out.L, out.R, m) && spanCorresponds(out.LSpan, out.RSpan, m) {
					out.Self = true
				}
			}
			return out
		case *algebra.Project:
			return &algebra.Project{Input: walk(t.Input), Cols: t.Cols,
				TSName: t.TSName, TEName: t.TEName, Distinct: t.Distinct}
		case *algebra.Aggregate:
			return &algebra.Aggregate{Input: walk(t.Input), GroupBy: t.GroupBy, Terms: t.Terms}
		}
		return n
	}
	return walk(e)
}
