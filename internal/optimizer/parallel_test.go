package optimizer

import (
	"math"
	"testing"

	"tdb/internal/catalog"
)

// parStats reuses cost_test.go's workload-backed statistics helper,
// keeping λ fixed at 1 so only the duration moments vary.
func parStats(n int, meanDur float64, seed int64) *catalog.Stats {
	st, _ := statsFor(n, 1, meanDur, seed)
	return st
}

// A state-heavy contain join should be predicted to speed up nearly
// linearly, with replication a small correction.
func TestEstimateParallelHeavyJoinEngages(t *testing.T) {
	sx := parStats(8000, 25, 1)
	sy := parStats(8000, 4, 2)
	e := EstimateContainJoin(sx, sy)
	p := EstimateParallel(e, sx, sy, 4)
	if !p.Use() {
		t.Fatalf("heavy join not parallelized: %v", p)
	}
	if p.Speedup() < 2 || p.Speedup() > 4 {
		t.Errorf("speedup %v outside (2,4) for k=4", p.Speedup())
	}
	if p.Replication <= 0 || p.Replication > 0.2 {
		t.Errorf("replication %v implausible for these durations", p.Replication)
	}
	// More workers must not predict a slower plan on this workload.
	p8 := EstimateParallel(e, sx, sy, 8)
	if p8.Speedup() < p.Speedup() {
		t.Errorf("k=8 speedup %v below k=4 %v", p8.Speedup(), p.Speedup())
	}
}

// A buffers-only semijoin does one comparison per tuple; two-way
// partitioning cannot pay for the partition+merge passes, wider fan-out
// can.
func TestEstimateParallelLightOperatorBreakEven(t *testing.T) {
	sx := parStats(8000, 10, 3)
	sy := parStats(8000, 10, 4)
	e := EstimateSemijoin(sx, sy, true, true)
	if p2 := EstimateParallel(e, sx, sy, 2); p2.Use() {
		t.Errorf("k=2 semijoin should not pay: %v", p2)
	}
	if p4 := EstimateParallel(e, sx, sy, 4); !p4.Use() {
		t.Errorf("k=4 semijoin should pay: %v", p4)
	}
}

func TestEstimateParallelDegenerate(t *testing.T) {
	sx := parStats(1000, 10, 5)
	sy := parStats(1000, 10, 6)
	e := EstimateContainJoin(sx, sy)
	p1 := EstimateParallel(e, sx, sy, 1)
	if p1.Workers != 1 || p1.Use() {
		t.Errorf("k=1 must stay serial: %v", p1)
	}
	if p1.Speedup() != 1 {
		t.Errorf("k=1 speedup = %v, want 1", p1.Speedup())
	}
	empty := catalog.FromSpans(nil)
	p0 := EstimateParallel(EstimateContainJoin(empty, empty), empty, empty, 4)
	if p0.Use() || math.IsNaN(p0.Speedup()) {
		t.Errorf("empty inputs must stay serial with a finite speedup: %v", p0)
	}
}

// The replication prediction must grow with both the cut count and the
// duration-to-gap ratio.
func TestEstimateParallelReplicationMonotone(t *testing.T) {
	sx := parStats(4000, 10, 7)
	sy := parStats(4000, 10, 8)
	e := EstimateContainJoin(sx, sy)
	r4 := EstimateParallel(e, sx, sy, 4).Replication
	r8 := EstimateParallel(e, sx, sy, 8).Replication
	if !(r8 > r4) {
		t.Errorf("replication not increasing in k: k4=%v k8=%v", r4, r8)
	}
	long := parStats(4000, 40, 9)
	rLong := EstimateParallel(EstimateContainJoin(long, sy), long, sy, 4).Replication
	if !(rLong > r4) {
		t.Errorf("longer durations must replicate more: %v vs %v", rLong, r4)
	}
}
