package optimizer

import (
	"fmt"
	"strings"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/constraints"
	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/value"
)

type fixedSource map[string]*relation.Schema

func (f fixedSource) SchemaOf(name string) (*relation.Schema, error) {
	s, ok := f[name]
	if !ok {
		return nil, fmt.Errorf("unknown relation %s", name)
	}
	return s, nil
}

var facultySchema = relation.MustSchema([]relation.Column{
	{Name: "Name", Kind: value.KindString},
	{Name: "Rank", Kind: value.KindString},
	{Name: "ValidFrom", Kind: value.KindTime},
	{Name: "ValidTo", Kind: value.KindTime},
}, 2, 3)

func src() fixedSource { return fixedSource{"Faculty": facultySchema} }

func rankIC(continuous bool) []constraints.ChronOrder {
	return []constraints.ChronOrder{{
		Relation: "Faculty", KeyCol: "Name", ValCol: "Rank",
		Order:      []string{"Assistant", "Associate", "Full"},
		Continuous: continuous,
	}}
}

// superstarQuery builds the canonical Figure 3(a) tree, with the overlap
// operators still in temporal-atom (sugar) form.
func superstarQuery() algebra.Expr {
	col := algebra.Column
	cons := func(s string) algebra.Operand { return algebra.Const(value.String_(s)) }
	theta := algebra.Predicate{
		Atoms: []algebra.Atom{
			{L: col("f1", "Name"), Op: algebra.EQ, R: col("f2", "Name")},
			{L: col("f1", "Rank"), Op: algebra.EQ, R: cons("Assistant")},
			{L: col("f2", "Rank"), Op: algebra.EQ, R: cons("Full")},
			{L: col("f3", "Rank"), Op: algebra.EQ, R: cons("Associate")},
		},
		Temporal: []algebra.TemporalAtom{
			{L: "f1", R: "f3", General: true},
			{L: "f2", R: "f3", General: true},
		},
	}
	prod := &algebra.Product{
		L: &algebra.Product{
			L: &algebra.Scan{Relation: "Faculty", As: "f1"},
			R: &algebra.Scan{Relation: "Faculty", As: "f2"},
		},
		R: &algebra.Scan{Relation: "Faculty", As: "f3"},
	}
	return &algebra.Project{
		Input: &algebra.Select{Input: prod, Pred: theta},
		Cols: []algebra.Output{
			{Name: "Name", From: algebra.ColRef{Var: "f1", Col: "Name"}},
			{Name: "ValidFrom", From: algebra.ColRef{Var: "f1", Col: "ValidFrom"}},
			{Name: "ValidTo", From: algebra.ColRef{Var: "f2", Col: "ValidTo"}},
		},
		TSName: "ValidFrom", TEName: "ValidTo",
		Distinct: true,
	}
}

func TestExpandPredicate(t *testing.T) {
	ctx, err := BuildContext(superstarQuery(), src(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := algebra.Predicate{Temporal: []algebra.TemporalAtom{{L: "f1", R: "f3", General: true}}}
	out, err := ExpandPredicate(p, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Atoms) != 2 || len(out.Temporal) != 0 {
		t.Fatalf("general overlap expanded to %v", out)
	}
	want := "f1.ValidFrom<f3.ValidTo ∧ f3.ValidFrom<f1.ValidTo"
	if out.String() != want {
		t.Errorf("expansion = %q, want %q", out.String(), want)
	}

	// Allen relationships expand to their Figure 2 constraints and agree
	// with the interval predicates (spot check: during).
	p = algebra.Predicate{Temporal: []algebra.TemporalAtom{{L: "f1", R: "f3", Rel: interval.RelDuring}}}
	out, err = ExpandPredicate(p, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "f1.ValidFrom>f3.ValidFrom ∧ f1.ValidTo<f3.ValidTo" {
		t.Errorf("during expansion = %q", out.String())
	}

	// Unknown variable errors.
	p = algebra.Predicate{Temporal: []algebra.TemporalAtom{{L: "zz", R: "f3", General: true}}}
	if _, err := ExpandPredicate(p, ctx); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestBuildContextRejectsConflicts(t *testing.T) {
	e := &algebra.Product{
		L: &algebra.Scan{Relation: "Faculty", As: "v"},
		R: &algebra.Scan{Relation: "Other", As: "v"},
	}
	if _, err := BuildContext(e, fixedSource{"Faculty": facultySchema, "Other": facultySchema}, nil); err == nil {
		t.Error("conflicting binding accepted")
	}
}

// The central Section 5 result: with the Rank ordering constraint, the two
// redundant inequalities disappear and the remaining less-than join is
// recognized as a Contained-semijoin over the derived lifespan
// [f1.ValidTo, f2.ValidFrom).
func TestSuperstarFullPipeline(t *testing.T) {
	res, err := Optimize(superstarQuery(), src(), Options{ICs: rankIC(false)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Contradiction {
		t.Fatal("superstar reported contradictory")
	}
	if len(res.Removed) != 2 {
		t.Fatalf("removed %d atoms, want 2: %v", len(res.Removed), res.Removed)
	}
	removed := map[string]bool{}
	for _, a := range res.Removed {
		removed[a.String()] = true
	}
	if !removed["f1.ValidFrom<f3.ValidTo"] || !removed["f3.ValidFrom<f2.ValidTo"] {
		t.Errorf("wrong atoms removed: %v", removed)
	}

	proj, ok := res.Tree.(*algebra.Project)
	if !ok {
		t.Fatalf("root %T", res.Tree)
	}
	semi, ok := proj.Input.(*algebra.Semijoin)
	if !ok {
		t.Fatalf("no semijoin introduced; got %T\n%s", proj.Input, algebra.Format(res.Tree))
	}
	if semi.Kind != algebra.KindContained {
		t.Fatalf("kind = %v, want contained\n%s", semi.Kind, algebra.Format(res.Tree))
	}
	wantL := algebra.SpanRef{
		TS: algebra.ColRef{Var: "f1", Col: "ValidTo"},
		TE: algebra.ColRef{Var: "f2", Col: "ValidFrom"},
	}
	if semi.LSpan != wantL {
		t.Errorf("left span = %v, want %v", semi.LSpan, wantL)
	}
	if semi.RSpan.TS.Var != "f3" || semi.RSpan.TE.Var != "f3" {
		t.Errorf("right span = %v", semi.RSpan)
	}
	// The left input remains the equi-join of assistant and full rows.
	if _, ok := semi.L.(*algebra.Join); !ok {
		t.Errorf("semijoin left input is %T", semi.L)
	}
}

// Without the integrity constraints nothing is removed and the four-atom
// conjunction matches no two-atom signature: the join stays generic.
func TestSuperstarWithoutConstraints(t *testing.T) {
	res, err := Optimize(superstarQuery(), src(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 0 {
		t.Fatalf("removed %v without constraints", res.Removed)
	}
	proj := res.Tree.(*algebra.Project)
	semi, ok := proj.Input.(*algebra.Semijoin)
	if !ok {
		t.Fatalf("semijoin introduction should not need constraints: %T", proj.Input)
	}
	if semi.Kind != algebra.KindTheta {
		t.Errorf("kind = %v, want θ (unrecognizable without constraint knowledge)", semi.Kind)
	}
}

func TestContradictionDetection(t *testing.T) {
	col := algebra.Column
	cons := func(s string) algebra.Operand { return algebra.Const(value.String_(s)) }
	// A full professor period ending before the same person's assistant
	// period begins contradicts the chronological ordering.
	pred := algebra.Predicate{Atoms: []algebra.Atom{
		{L: col("a", "Name"), Op: algebra.EQ, R: col("b", "Name")},
		{L: col("a", "Rank"), Op: algebra.EQ, R: cons("Assistant")},
		{L: col("b", "Rank"), Op: algebra.EQ, R: cons("Full")},
		{L: col("b", "ValidTo"), Op: algebra.LT, R: col("a", "ValidFrom")},
	}}
	e := &algebra.Select{
		Input: &algebra.Product{
			L: &algebra.Scan{Relation: "Faculty", As: "a"},
			R: &algebra.Scan{Relation: "Faculty", As: "b"},
		},
		Pred: pred,
	}
	res, err := Optimize(e, src(), Options{ICs: rankIC(false)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contradiction {
		t.Error("contradiction not detected")
	}
	// The same query without constraints is satisfiable.
	res, err = Optimize(e, src(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Contradiction {
		t.Error("false contradiction without constraints")
	}
}

func TestClassifySignatures(t *testing.T) {
	ctx := &Context{
		Bindings: map[string]string{"x": "Faculty", "y": "Faculty"},
		Schemas:  map[string]*relation.Schema{"Faculty": facultySchema},
	}
	sys := constraints.NewSystem()
	constraints.Instantiate(sys, nil, ctx.queryContext(), nil)
	col := algebra.Column
	lv := map[string]bool{"x": true}
	rv := map[string]bool{"y": true}

	cases := []struct {
		name  string
		atoms []algebra.Atom
		want  algebra.TemporalKind
	}{
		{
			"contain", []algebra.Atom{
				{L: col("x", "ValidFrom"), Op: algebra.LT, R: col("y", "ValidFrom")},
				{L: col("y", "ValidTo"), Op: algebra.LT, R: col("x", "ValidTo")},
			}, algebra.KindContain,
		},
		{
			"contained", []algebra.Atom{
				{L: col("y", "ValidFrom"), Op: algebra.LT, R: col("x", "ValidFrom")},
				{L: col("x", "ValidTo"), Op: algebra.LT, R: col("y", "ValidTo")},
			}, algebra.KindContained,
		},
		{
			"overlap", []algebra.Atom{
				{L: col("x", "ValidFrom"), Op: algebra.LT, R: col("y", "ValidTo")},
				{L: col("y", "ValidFrom"), Op: algebra.LT, R: col("x", "ValidTo")},
			}, algebra.KindOverlap,
		},
		{
			"before", []algebra.Atom{
				{L: col("x", "ValidTo"), Op: algebra.LT, R: col("y", "ValidFrom")},
			}, algebra.KindBefore,
		},
		{
			"gt-normalized contain", []algebra.Atom{
				{L: col("y", "ValidFrom"), Op: algebra.GT, R: col("x", "ValidFrom")},
				{L: col("y", "ValidTo"), Op: algebra.LT, R: col("x", "ValidTo")},
			}, algebra.KindContain,
		},
		{
			"non-strict op", []algebra.Atom{
				{L: col("x", "ValidFrom"), Op: algebra.LE, R: col("y", "ValidFrom")},
				{L: col("y", "ValidTo"), Op: algebra.LT, R: col("x", "ValidTo")},
			}, algebra.KindTheta,
		},
		{
			"non-temporal column", []algebra.Atom{
				{L: col("x", "Name"), Op: algebra.LT, R: col("y", "ValidFrom")},
			}, algebra.KindTheta,
		},
		{
			"three atoms", []algebra.Atom{
				{L: col("x", "ValidFrom"), Op: algebra.LT, R: col("y", "ValidFrom")},
				{L: col("y", "ValidTo"), Op: algebra.LT, R: col("x", "ValidTo")},
				{L: col("x", "ValidFrom"), Op: algebra.LT, R: col("y", "ValidTo")},
			}, algebra.KindTheta,
		},
	}
	for _, c := range cases {
		pat := Classify(c.atoms, lv, rv, ctx, sys)
		if pat.Kind != c.want {
			t.Errorf("%s: kind = %v, want %v", c.name, pat.Kind, c.want)
		}
		if c.want == algebra.KindContain && pat.LSpan.TS.Col != "ValidFrom" {
			t.Errorf("%s: left span %v", c.name, pat.LSpan)
		}
	}
}

func TestOptimizeStagesTrace(t *testing.T) {
	res, err := Optimize(superstarQuery(), src(), Options{ICs: rankIC(false)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) < 4 {
		t.Fatalf("only %d stages traced", len(res.Stages))
	}
	last := res.Stages[len(res.Stages)-1].Tree
	if !strings.Contains(last, "⋉contained") {
		t.Errorf("final stage missing recognized semijoin:\n%s", last)
	}
}

// With passes disabled, the pipeline degrades gracefully.
func TestOptimizeDisabledPasses(t *testing.T) {
	res, err := Optimize(superstarQuery(), src(), Options{
		ICs: rankIC(false), NoSemantic: true, NoConventional: true, NoRecognition: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 0 {
		t.Error("semantic ran though disabled")
	}
	proj := res.Tree.(*algebra.Project)
	if _, ok := proj.Input.(*algebra.Select); !ok {
		t.Errorf("tree restructured though passes disabled: %T", proj.Input)
	}
}
