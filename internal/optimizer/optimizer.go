package optimizer

import (
	"tdb/internal/algebra"
	"tdb/internal/constraints"
)

// Options selects the optimization passes. The zero value enables
// everything, matching the paper's full pipeline; experiments switch
// passes off to measure their individual contributions.
type Options struct {
	ICs []constraints.ChronOrder
	// NoSemantic disables the Section 5 pass.
	NoSemantic bool
	// NoConventional disables predicate pushdown (Figure 3(b)).
	NoConventional bool
	// NoRecognition disables temporal-operator recognition and semijoin
	// introduction.
	NoRecognition bool
}

// Stage is one snapshot of the tree after a pass, for EXPLAIN output.
type Stage struct {
	Name string
	Tree string
}

// Result is the outcome of optimization.
type Result struct {
	Tree algebra.Expr
	// Contradiction: the query is provably empty from the constraints
	// alone; Tree is the expanded tree and need not be executed.
	Contradiction bool
	// Removed lists conjuncts deleted as redundant by the semantic pass.
	Removed []algebra.Atom
	// Stages traces the tree through the passes.
	Stages []Stage
}

// Optimize runs the full pipeline of the paper over a logical tree:
// temporal-operator expansion (Section 3), semantic optimization
// (Section 5), conventional pushdown (Figure 3(b)), and temporal operator
// recognition with semijoin introduction (Figure 8).
func Optimize(e algebra.Expr, src algebra.SchemaSource, opt Options) (*Result, error) {
	ctx, err := BuildContext(e, src, opt.ICs)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	snap := func(name string, t algebra.Expr) {
		res.Stages = append(res.Stages, Stage{Name: name, Tree: algebra.Format(t)})
	}

	t, err := ExpandTree(e, ctx)
	if err != nil {
		return nil, err
	}
	snap("expand temporal operators", t)

	if !opt.NoSemantic {
		sem := SemanticOptimize(t, ctx)
		res.Removed = sem.Removed
		if sem.Contradiction {
			res.Tree = t
			res.Contradiction = true
			snap("semantic: contradiction — query is empty", t)
			return res, nil
		}
		t = sem.Tree
		snap("semantic optimization", t)
	}

	if !opt.NoConventional {
		t = algebra.PushDown(t)
		snap("conventional pushdown", t)
	}

	if !opt.NoRecognition {
		t = AnnotateJoins(t, ctx)
		t = IntroduceSemijoins(t, ctx)
		// A side swap during semijoin introduction may expose a pattern
		// annotated only generically; annotating again is idempotent.
		t = AnnotateJoins(t, ctx)
		t = MarkSelfSemijoins(t)
		snap("temporal operator recognition", t)
	}

	res.Tree = t
	return res, nil
}
