package quel

import (
	"fmt"
	"strings"

	"tdb/internal/algebra"
	"tdb/internal/value"
)

// Query is one translated retrieve statement.
type Query struct {
	Into string
	Tree algebra.Expr
	// Standing names a subscribe statement's standing query; empty for a
	// plain retrieve. The tree is registered with the live manager rather
	// than executed once.
	Standing string
	// NumParams is the number of "$N" placeholders the statement binds
	// ($1…$NumParams; zero for an ordinary statement). A tree with
	// NumParams > 0 must go through BindParams before optimization.
	NumParams int
	// ParamKinds records, per placeholder (index 0 is $1), the value
	// kind the statement's comparisons expect of it, inferred from the
	// opposing operand. KindsKnown marks which entries carry an
	// expectation ($1 = $2 comparisons leave both open).
	ParamKinds []value.Kind
	KindsKnown []bool
}

// Translate converts a parsed program into algebra trees, performing
// semantic analysis: range variables must be declared, referenced columns
// must exist, and comparisons must be type-compatible. As in Quel, a
// retrieve ranges over exactly the variables it references, and range
// declarations persist across subsequent retrieves.
func Translate(prog *Program, src algebra.SchemaSource) ([]Query, error) {
	ranges := map[string]string{} // var → relation
	order := []string{}           // declaration order
	var queries []Query

	for _, st := range prog.Stmts {
		switch s := st.(type) {
		case *RangeStmt:
			if _, err := src.SchemaOf(s.Relation); err != nil {
				return nil, fmt.Errorf("quel: range of %s: %w", s.Var, err)
			}
			if _, dup := ranges[s.Var]; !dup {
				order = append(order, s.Var)
			}
			ranges[s.Var] = s.Relation

		case *RetrieveStmt:
			q, err := translateRetrieve(s, ranges, order, src)
			if err != nil {
				return nil, err
			}
			queries = append(queries, *q)

		case *SubscribeStmt:
			q, err := translateRetrieve(s.Retrieve, ranges, order, src)
			if err != nil {
				return nil, fmt.Errorf("quel: subscribe %s: %w", s.Name, err)
			}
			// A standing query's deltas form an append-only stream:
			// global duplicate elimination would have to remember every
			// row ever emitted, so subscribes keep multiset semantics.
			if pr, ok := q.Tree.(*algebra.Project); ok {
				pr.Distinct = false
			}
			q.Standing = s.Name
			queries = append(queries, *q)
		}
	}
	return queries, nil
}

func translateRetrieve(st *RetrieveStmt, ranges map[string]string, order []string, src algebra.SchemaSource) (*Query, error) {
	// An explicit "valid from … to …" clause becomes the two lifespan
	// targets, exactly as the paper rewrites the TQuel Superstar query.
	if st.HasValid {
		st = &RetrieveStmt{
			Into: st.Into,
			Targets: append(append([]Target{}, st.Targets...),
				Target{Name: "ValidFrom", From: st.ValidFrom},
				Target{Name: "ValidTo", From: st.ValidTo},
			),
			Where: st.Where,
		}
	}

	// Determine the referenced variables, in declaration order.
	used := map[string]bool{}
	noteRef := func(ref algebra.ColRef) error {
		if ref.Var == "" {
			return fmt.Errorf("quel: unqualified column %q: qualify with a range variable", ref.Col)
		}
		if _, ok := ranges[ref.Var]; !ok {
			return fmt.Errorf("quel: undeclared range variable %q", ref.Var)
		}
		used[ref.Var] = true
		return nil
	}
	for _, t := range st.Targets {
		if t.IsAgg && t.Agg == algebra.AggCount && t.From.Var == "" {
			// count(e): the "column" is a bare range variable.
			if _, ok := ranges[t.From.Col]; !ok {
				return nil, fmt.Errorf("quel: undeclared range variable %q in count", t.From.Col)
			}
			used[t.From.Col] = true
			continue
		}
		if err := noteRef(t.From); err != nil {
			return nil, err
		}
	}
	for _, a := range st.Where.Atoms {
		for _, o := range []algebra.Operand{a.L, a.R} {
			if !o.IsConst && o.Param == 0 {
				if err := noteRef(o.Col); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, ta := range st.Where.Temporal {
		for _, v := range []string{ta.L, ta.R} {
			if _, ok := ranges[v]; !ok {
				return nil, fmt.Errorf("quel: undeclared range variable %q in temporal operator", v)
			}
			used[v] = true
		}
	}
	if len(used) == 0 {
		return nil, fmt.Errorf("quel: retrieve references no range variables")
	}

	// Validate columns and comparison types against the schemas.
	colKind := func(ref algebra.ColRef) (value.Kind, error) {
		sch, err := src.SchemaOf(ranges[ref.Var])
		if err != nil {
			return 0, err
		}
		idx := sch.ColumnIndex(ref.Col)
		if idx < 0 {
			return 0, fmt.Errorf("quel: relation %s has no column %q", ranges[ref.Var], ref.Col)
		}
		return sch.Cols[idx].Kind, nil
	}
	for _, t := range st.Targets {
		if t.IsAgg && t.Agg == algebra.AggCount && t.From.Var == "" {
			continue
		}
		k, err := colKind(t.From)
		if err != nil {
			return nil, err
		}
		if t.IsAgg && t.Agg == algebra.AggSum && k == value.KindString {
			return nil, fmt.Errorf("quel: sum over string column %s", t.From)
		}
	}
	kindOf := func(o algebra.Operand) (value.Kind, error) {
		if o.IsConst {
			return o.Const.Kind(), nil
		}
		return colKind(o.Col)
	}
	// Placeholders adopt a kind expectation from the opposing operand; a
	// placeholder compared against both a string and a numeric column in
	// one statement can never bind consistently, so that is an error now
	// rather than at every execute.
	var paramKinds []value.Kind
	var kindsKnown []bool
	growParams := func(idx int) {
		for len(paramKinds) < idx {
			paramKinds = append(paramKinds, value.KindString)
			kindsKnown = append(kindsKnown, false)
		}
	}
	noteParam := func(idx int, k value.Kind) error {
		growParams(idx)
		i := idx - 1
		if !kindsKnown[i] {
			paramKinds[i], kindsKnown[i] = k, true
			return nil
		}
		if (paramKinds[i] == value.KindString) != (k == value.KindString) {
			return fmt.Errorf("quel: parameter $%d is compared against both %v and %v operands", idx, paramKinds[i], k)
		}
		return nil
	}
	for _, a := range st.Where.Atoms {
		if a.L.Param > 0 || a.R.Param > 0 {
			for _, side := range []struct{ p, other algebra.Operand }{{a.L, a.R}, {a.R, a.L}} {
				if side.p.Param == 0 {
					continue
				}
				if side.other.Param > 0 {
					// "$1 = $2": no expectation either way; still track
					// the indexes so NumParams covers them.
					growParams(side.p.Param)
					continue
				}
				k, err := kindOf(side.other)
				if err != nil {
					return nil, err
				}
				if err := noteParam(side.p.Param, k); err != nil {
					return nil, err
				}
			}
			continue
		}
		lk, err := kindOf(a.L)
		if err != nil {
			return nil, err
		}
		rk, err := kindOf(a.R)
		if err != nil {
			return nil, err
		}
		numeric := func(k value.Kind) bool { return k != value.KindString }
		if (lk == value.KindString) != (rk == value.KindString) || (numeric(lk) != numeric(rk)) {
			return nil, fmt.Errorf("quel: comparing %v with %v in %s", lk, rk, a)
		}
	}

	// Build the left-deep product over the used variables.
	var tree algebra.Expr
	for _, v := range order {
		if !used[v] {
			continue
		}
		scan := &algebra.Scan{Relation: ranges[v], As: v}
		if tree == nil {
			tree = scan
		} else {
			tree = &algebra.Product{L: tree, R: scan}
		}
	}
	if !st.Where.True() {
		tree = &algebra.Select{Input: tree, Pred: st.Where}
	}

	// Aggregate retrieve: the plain targets become the grouping key, the
	// aggregate targets the terms (the Figure 4 processor declaratively).
	hasAgg := false
	for _, t := range st.Targets {
		if t.IsAgg {
			hasAgg = true
		}
	}
	if hasAgg {
		agg := &algebra.Aggregate{Input: tree}
		for _, t := range st.Targets {
			if t.IsAgg {
				agg.Terms = append(agg.Terms, algebra.AggTerm{Kind: t.Agg, Of: t.From, As: t.Name})
			} else {
				agg.GroupBy = append(agg.GroupBy, t.From)
			}
		}
		// Rename to the declared target order and names.
		outs := make([]algebra.Output, len(st.Targets))
		for i, t := range st.Targets {
			src := t.Name
			if !t.IsAgg {
				src = t.From.Name()
			}
			outs[i] = algebra.Output{Name: t.Name, From: algebra.ColRef{Col: src}}
		}
		return &Query{Into: st.Into, Tree: &algebra.Project{Input: agg, Cols: outs},
			NumParams: len(paramKinds), ParamKinds: paramKinds, KindsKnown: kindsKnown}, nil
	}

	// Projection: output columns named ValidFrom/ValidTo of time kind
	// designate the result lifespan, matching the paper's Superstar
	// retrieve clause.
	outs := make([]algebra.Output, len(st.Targets))
	tsName, teName := "", ""
	for i, t := range st.Targets {
		outs[i] = algebra.Output{Name: t.Name, From: t.From}
		k, err := colKind(t.From)
		if err != nil {
			return nil, err
		}
		if k == value.KindTime {
			if strings.EqualFold(t.Name, "ValidFrom") {
				tsName = t.Name
			}
			if strings.EqualFold(t.Name, "ValidTo") {
				teName = t.Name
			}
		}
	}
	if tsName == "" || teName == "" {
		tsName, teName = "", "" // snapshot result unless both present
	}
	tree = &algebra.Project{
		Input: tree, Cols: outs,
		TSName: tsName, TEName: teName,
		Distinct: true,
	}
	return &Query{Into: st.Into, Tree: tree,
		NumParams: len(paramKinds), ParamKinds: paramKinds, KindsKnown: kindsKnown}, nil
}
