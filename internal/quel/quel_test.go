package quel

import (
	"fmt"
	"strings"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/value"
)

const superstarSrc = `
# The running example of the paper (Section 3).
range of f1 is Faculty
range of f2 is Faculty
range of f3 is Faculty
retrieve into Stars (Name=f1.Name, ValidFrom=f1.ValidFrom, ValidTo=f2.ValidTo)
where f3.Rank="Associate" and f1.Name=f2.Name and f1.Rank="Assistant"
  and f2.Rank="Full" and (f1 overlap f3) and (f2 overlap f3)
`

type fixedSource map[string]*relation.Schema

func (f fixedSource) SchemaOf(name string) (*relation.Schema, error) {
	s, ok := f[name]
	if !ok {
		return nil, fmt.Errorf("unknown relation %s", name)
	}
	return s, nil
}

var facultySchema = relation.MustSchema([]relation.Column{
	{Name: "Name", Kind: value.KindString},
	{Name: "Rank", Kind: value.KindString},
	{Name: "ValidFrom", Kind: value.KindTime},
	{Name: "ValidTo", Kind: value.KindTime},
}, 2, 3)

func src() fixedSource { return fixedSource{"Faculty": facultySchema} }

func TestLexer(t *testing.T) {
	toks, err := lexAll(`range of f1 is Faculty # comment
where f1.ValidFrom <= 42 and x != "hi there"`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	want := []string{"range", "of", "f1", "is", "Faculty", "where", "f1", ".", "ValidFrom", "<=", "42", "and", "x", "!=", "hi there"}
	if len(texts) != len(want) {
		t.Fatalf("tokens %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, bad := range []string{`"unterminated`, "a ! b", "€"} {
		if _, err := lexAll(bad); err == nil {
			t.Errorf("lexAll(%q) accepted", bad)
		}
	}
	// Unterminated string across newline.
	if _, err := lexAll("\"abc\ndef\""); err == nil {
		t.Error("multi-line string accepted")
	}
}

func TestParseSuperstar(t *testing.T) {
	prog, err := Parse(superstarSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 4 {
		t.Fatalf("%d statements", len(prog.Stmts))
	}
	r, ok := prog.Stmts[3].(*RetrieveStmt)
	if !ok {
		t.Fatalf("last stmt %T", prog.Stmts[3])
	}
	if r.Into != "Stars" || len(r.Targets) != 3 {
		t.Fatalf("retrieve parsed wrong: %+v", r)
	}
	if len(r.Where.Atoms) != 4 || len(r.Where.Temporal) != 2 {
		t.Fatalf("where parsed wrong: %d atoms %d temporal", len(r.Where.Atoms), len(r.Where.Temporal))
	}
	if !r.Where.Temporal[0].General {
		t.Error("overlap must be the general TQuel operator")
	}
}

func TestParseAllenOperators(t *testing.T) {
	for name, want := range temporalOps {
		src := fmt.Sprintf(`range of a is R
range of b is R
retrieve (a.S) where (a %s b)`, name)
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r := prog.Stmts[2].(*RetrieveStmt)
		ta := r.Where.Temporal[0]
		if ta.General != want.general || (!want.general && ta.Rel != want.rel) {
			t.Errorf("%s parsed as %+v", name, ta)
		}
	}
}

func TestParseParenthesizedConjunction(t *testing.T) {
	prog, err := Parse(`range of a is R
retrieve (a.S) where (a.ValidFrom < 5 and a.ValidTo > 2) and a.S = "x"`)
	if err != nil {
		t.Fatal(err)
	}
	r := prog.Stmts[1].(*RetrieveStmt)
	if len(r.Where.Atoms) != 3 {
		t.Fatalf("atoms: %v", r.Where)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"range f1 is Faculty",               // missing "of"
		"range of f1 Faculty",               // missing "is"
		"retrieve Name=f1.Name)",            // missing (
		"retrieve (Name=f1.Name",            // missing )
		"retrieve (f1.Name) where f1.Name",  // missing comparison
		"retrieve (f1.Name) where (f1 f2)",  // bad operator
		"bogus of x is Y",                   // unknown statement
		"retrieve (f1.Name) where f1.A = ,", // bad operand
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestTranslateSuperstar(t *testing.T) {
	prog, err := Parse(superstarSrc)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := Translate(prog, src())
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 || qs[0].Into != "Stars" {
		t.Fatalf("queries: %+v", qs)
	}
	proj, ok := qs[0].Tree.(*algebra.Project)
	if !ok {
		t.Fatalf("root %T", qs[0].Tree)
	}
	if !proj.Distinct {
		t.Error("set semantics lost")
	}
	if proj.TSName != "ValidFrom" || proj.TEName != "ValidTo" {
		t.Errorf("lifespan designation: %q %q", proj.TSName, proj.TEName)
	}
	sel, ok := proj.Input.(*algebra.Select)
	if !ok {
		t.Fatalf("below project: %T", proj.Input)
	}
	// Three range variables referenced → two products.
	if vs := algebra.Vars(sel.Input); len(vs) != 3 {
		t.Errorf("vars %v", vs)
	}
	// Schema checks out.
	sch, err := algebra.OutputSchema(qs[0].Tree, src())
	if err != nil {
		t.Fatal(err)
	}
	if !sch.Temporal() {
		t.Error("result lost its lifespan")
	}
}

// Unused range variables do not enter the product (Quel semantics).
func TestTranslateUsesOnlyReferencedRanges(t *testing.T) {
	prog, err := Parse(`range of a is Faculty
range of b is Faculty
retrieve (Name=a.Name) where a.Rank="Full"`)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := Translate(prog, src())
	if err != nil {
		t.Fatal(err)
	}
	proj := qs[0].Tree.(*algebra.Project)
	sel := proj.Input.(*algebra.Select)
	if _, ok := sel.Input.(*algebra.Scan); !ok {
		t.Errorf("unused range entered the product: %T", sel.Input)
	}
}

func TestTranslateErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown relation", "range of a is Nope\nretrieve (a.S)"},
		{"undeclared variable", `retrieve (x.Name) where x.Rank="Full"`},
		{"unknown column", "range of a is Faculty\nretrieve (a.Bogus)"},
		{"type mismatch", `range of a is Faculty
retrieve (a.Name) where a.Name < 42`},
		{"unqualified column", "range of a is Faculty\nretrieve (Name)"},
		{"no variables", `retrieve (x) where 1 = 1`},
		{"undeclared in temporal", "range of a is Faculty\nretrieve (a.Name) where (a overlap zz)"},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := Translate(prog, src()); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestTranslateNumericAndForever(t *testing.T) {
	prog, err := Parse(`range of a is Faculty
retrieve (Name=a.Name) where a.ValidTo = forever and a.ValidFrom >= 10`)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := Translate(prog, src())
	if err != nil {
		t.Fatal(err)
	}
	sel := qs[0].Tree.(*algebra.Project).Input.(*algebra.Select)
	if len(sel.Pred.Atoms) != 2 {
		t.Fatalf("atoms %v", sel.Pred)
	}
	if !sel.Pred.Atoms[0].R.Const.Equal(value.TimeVal(interval.Forever)) {
		t.Error("forever not parsed")
	}
}

func TestRangeRedeclaration(t *testing.T) {
	prog, err := Parse(`range of a is Faculty
range of a is Faculty
retrieve (Name=a.Name)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(prog, src()); err != nil {
		t.Fatalf("redeclaration rejected: %v", err)
	}
}

func TestBareTargetKeepsColumnName(t *testing.T) {
	prog, err := Parse(`range of a is Faculty
retrieve (a.Rank, From=a.ValidFrom)`)
	if err != nil {
		t.Fatal(err)
	}
	r := prog.Stmts[1].(*RetrieveStmt)
	if r.Targets[0].Name != "Rank" || r.Targets[1].Name != "From" {
		t.Errorf("targets: %+v", r.Targets)
	}
	// "From" is not "ValidFrom": result is snapshot.
	qs, err := Translate(prog, src())
	if err != nil {
		t.Fatal(err)
	}
	if qs[0].Tree.(*algebra.Project).TSName != "" {
		t.Error("partial lifespan designated")
	}
	if !strings.Contains(algebra.Format(qs[0].Tree), "π[") {
		t.Error("format")
	}
}
