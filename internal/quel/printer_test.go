package quel

import (
	"reflect"
	"strings"
	"testing"
)

// Round trip: parse → print → parse yields a structurally identical
// program, across the language's features.
func TestPrintRoundTrip(t *testing.T) {
	sources := []string{
		superstarSrc,
		tquelSuperstar,
		`range of e is Emp
retrieve into Totals (Dept=e.Dept, total=sum(e.Salary), n=count(e))
where e.Salary >= 50 and e.ValidTo = forever`,
		`range of a is R
retrieve (X=a.S) where a.ValidFrom != 3 and (a met-by a) and a.S > "m"`,
		"range of f is Faculty\nrange of g is Faculty\nsubscribe watch (Name=f.Name) where (f overlap g)",
	}
	for _, src := range sources {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		printed := Print(p1)
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse: %v\nprinted:\n%s", err, printed)
		}
		// The valid clause normalizes into the where-form targets only at
		// translation time, so the ASTs must match exactly here.
		if !reflect.DeepEqual(p1, p2) {
			t.Errorf("round trip changed the program:\noriginal: %#v\nreparsed: %#v\nprinted:\n%s",
				p1, p2, printed)
		}
	}
}

func TestPrintRendersClauses(t *testing.T) {
	prog, err := Parse(tquelSuperstar)
	if err != nil {
		t.Fatal(err)
	}
	out := Print(prog)
	for _, frag := range []string{
		"range of f1 is Faculty",
		"retrieve into Stars",
		"valid from f1.ValidFrom to f2.ValidTo",
		`f1.Rank="Assistant"`,
		"(f1 overlap a)",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("printed program missing %q:\n%s", frag, out)
		}
	}
}
