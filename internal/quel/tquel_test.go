package quel

import (
	"testing"

	"tdb/internal/algebra"
)

// The original TQuel query of the paper's footnote 5, with its valid
// clause and when clause, must parse and mean the same as the expanded
// where-form of Section 3.
const tquelSuperstar = `
range of f1 is Faculty
range of f2 is Faculty
range of a is Faculty
retrieve into Stars (Name=f1.Name)
valid from f1.ValidFrom to f2.ValidTo
where f1.Name=f2.Name and f1.Rank="Assistant" and f2.Rank="Full" and a.Rank="Associate"
when (f1 overlap a) and (f2 overlap a)
`

func TestTQuelValidAndWhenClauses(t *testing.T) {
	prog, err := Parse(tquelSuperstar)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.Stmts[3].(*RetrieveStmt)
	if !st.HasValid {
		t.Fatal("valid clause not parsed")
	}
	if st.ValidFrom.Var != "f1" || st.ValidTo.Var != "f2" {
		t.Errorf("valid clause refs: %v %v", st.ValidFrom, st.ValidTo)
	}
	// where (4 atoms) and when (2 temporal) are conjoined.
	if len(st.Where.Atoms) != 4 || len(st.Where.Temporal) != 2 {
		t.Fatalf("combined predicate: %d atoms, %d temporal", len(st.Where.Atoms), len(st.Where.Temporal))
	}

	qs, err := Translate(prog, src())
	if err != nil {
		t.Fatal(err)
	}
	proj := qs[0].Tree.(*algebra.Project)
	if proj.TSName != "ValidFrom" || proj.TEName != "ValidTo" {
		t.Errorf("lifespan designation: %q %q", proj.TSName, proj.TEName)
	}
	sch, err := algebra.OutputSchema(qs[0].Tree, src())
	if err != nil {
		t.Fatal(err)
	}
	if !sch.Temporal() || sch.Arity() != 3 {
		t.Errorf("schema: %s", sch)
	}
}

func TestValidClauseErrors(t *testing.T) {
	bad := []string{
		"range of a is Faculty\nretrieve (a.Name) valid from a.ValidFrom",         // missing to
		"range of a is Faculty\nretrieve (a.Name) valid a.ValidFrom to a.ValidTo", // missing from
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
	// valid clause referencing an unknown column fails at translation.
	prog, err := Parse("range of a is Faculty\nretrieve (a.Name) valid from a.Nope to a.ValidTo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(prog, src()); err == nil {
		t.Error("bad valid clause accepted")
	}
}

// A bare when clause (no where) also works.
func TestWhenOnly(t *testing.T) {
	prog, err := Parse(`range of a is Faculty
range of b is Faculty
retrieve (Name=a.Name) when (a during b)`)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.Stmts[2].(*RetrieveStmt)
	if len(st.Where.Temporal) != 1 {
		t.Fatalf("when-only predicate: %+v", st.Where)
	}
}
