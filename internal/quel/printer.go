package quel

import (
	"fmt"
	"strings"

	"tdb/internal/algebra"
	"tdb/internal/interval"
	"tdb/internal/value"
)

// Print renders a parsed program back to surface syntax. Parsing the
// output yields a structurally identical program (round-trip property,
// tested), which the shell uses to echo normalized statements.
func Print(prog *Program) string {
	var b strings.Builder
	for _, st := range prog.Stmts {
		switch s := st.(type) {
		case *RangeStmt:
			fmt.Fprintf(&b, "range of %s is %s\n", s.Var, s.Relation)
		case *SubscribeStmt:
			fmt.Fprintf(&b, "subscribe %s ", s.Name)
			printRetrieveBody(&b, s.Retrieve)
		case *RetrieveStmt:
			b.WriteString("retrieve ")
			if s.Into != "" {
				fmt.Fprintf(&b, "into %s ", s.Into)
			}
			printRetrieveBody(&b, s)
		}
	}
	return b.String()
}

// printRetrieveBody renders the targets/valid/where tail shared by retrieve
// and subscribe statements.
func printRetrieveBody(b *strings.Builder, s *RetrieveStmt) {
	b.WriteString("(")
	for i, t := range s.Targets {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(printTarget(t))
	}
	b.WriteString(")")
	if s.HasValid {
		fmt.Fprintf(b, " valid from %s to %s", s.ValidFrom, s.ValidTo)
	}
	if !s.Where.True() {
		b.WriteString(" where " + printPred(s.Where))
	}
	b.WriteString("\n")
}

func printTarget(t Target) string {
	if t.IsAgg {
		return fmt.Sprintf("%s=%s(%s)", t.Name, t.Agg, t.From)
	}
	return fmt.Sprintf("%s=%s", t.Name, t.From)
}

func printPred(p algebra.Predicate) string {
	var parts []string
	for _, a := range p.Atoms {
		parts = append(parts, printOperand(a.L)+printCmp(a.Op)+printOperand(a.R))
	}
	for _, ta := range p.Temporal {
		name := ta.Rel.String()
		if ta.General {
			name = "overlap"
		}
		parts = append(parts, fmt.Sprintf("(%s %s %s)", ta.L, name, ta.R))
	}
	return strings.Join(parts, " and ")
}

func printCmp(op algebra.CmpOp) string {
	switch op {
	case algebra.EQ:
		return "="
	case algebra.NE:
		return "!="
	case algebra.LT:
		return "<"
	case algebra.LE:
		return "<="
	case algebra.GT:
		return ">"
	default:
		return ">="
	}
}

func printOperand(o algebra.Operand) string {
	if !o.IsConst {
		return o.Col.String()
	}
	switch o.Const.Kind() {
	case value.KindString:
		return fmt.Sprintf("%q", o.Const.AsString())
	default:
		if o.Const.Kind() == value.KindTime && o.Const.AsTime() == interval.Forever {
			return "forever"
		}
		return o.Const.String()
	}
}
