package quel

import (
	"math/rand"
	"testing"
)

// The parser must reject or accept — never panic — on arbitrary token
// soup assembled from the language's own vocabulary.
func TestParserNeverPanics(t *testing.T) {
	vocab := []string{
		"range", "of", "is", "retrieve", "into", "where", "when", "valid",
		"from", "to", "and", "overlap", "during", "before", "count", "sum",
		"f1", "Faculty", "Name", "ValidFrom", "(", ")", ",", ".", "=",
		"<", "<=", ">", ">=", "!=", `"str"`, "42", "forever",
	}
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(25)
		src := ""
		for i := 0; i < n; i++ {
			src += vocab[rng.Intn(len(vocab))] + " "
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			prog, err := Parse(src)
			if err == nil && prog != nil {
				// Accepted programs must also survive translation
				// attempts (errors fine, panics not).
				_, _ = Translate(prog, src2())
			}
		}()
	}
}

func src2() fixedSource { return src() }

// Mutilated versions of a valid query must never panic either.
func TestParserTruncationRobust(t *testing.T) {
	base := superstarSrc
	for cut := 0; cut < len(base); cut += 7 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at cut %d: %v", cut, r)
				}
			}()
			prog, err := Parse(base[:cut])
			if err == nil && prog != nil {
				_, _ = Translate(prog, src())
			}
		}()
	}
}
