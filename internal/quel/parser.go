package quel

import (
	"fmt"
	"strconv"
	"strings"

	"tdb/internal/algebra"
	"tdb/internal/interval"
	"tdb/internal/value"
)

// Program is a parsed sequence of statements.
type Program struct {
	Stmts []Stmt
}

// Stmt is a range or retrieve statement.
type Stmt interface{ isStmt() }

// RangeStmt binds a range variable to a relation:
// "range of f1 is Faculty".
type RangeStmt struct {
	Var      string
	Relation string
}

func (*RangeStmt) isStmt() {}

// Target is one output column of a retrieve: "Name=f1.Name", bare
// "f1.Name" (the column keeps its own name), or an aggregate
// "total=sum(e.Salary)" / "n=count(e)". Aggregates group the retrieve by
// its plain targets.
type Target struct {
	Name string
	From algebra.ColRef
	// IsAgg marks an aggregate target; Agg is its function. For count
	// the From column may be just a range variable.
	IsAgg bool
	Agg   algebra.AggKind
}

var aggNames = map[string]algebra.AggKind{
	"count": algebra.AggCount,
	"sum":   algebra.AggSum,
	"min":   algebra.AggMin,
	"max":   algebra.AggMax,
}

// RetrieveStmt is
//
//	retrieve [into R] (targets) [valid from col to col] [where pred] [when pred]
//
// matching the TQuel shape of the paper's footnote 5: the valid clause
// assembles the result lifespan from two timestamp columns, and "when"
// carries the temporal conjuncts (it is conjoined with "where"). Set
// semantics (duplicate elimination) follow the paper's model of a temporal
// relation as a set of tuples.
type RetrieveStmt struct {
	Into    string
	Targets []Target
	Where   algebra.Predicate
	// HasValid marks an explicit "valid from … to …" clause.
	HasValid           bool
	ValidFrom, ValidTo algebra.ColRef
}

func (*RetrieveStmt) isStmt() {}

// SubscribeStmt registers a retrieve as a standing query over live
// ingestion:
//
//	subscribe NAME (targets) [valid from col to col] [where pred]
//
// The body is a full retrieve (minus "into" — deltas stream to the
// subscriber instead of a stored relation); the name addresses the
// standing query for polling and deregistration.
type SubscribeStmt struct {
	Name     string
	Retrieve *RetrieveStmt
}

func (*SubscribeStmt) isStmt() {}

// temporalOps maps infix operator names to Figure 2 relationships; overlap
// is the general TQuel operator of footnote 6.
var temporalOps = map[string]struct {
	rel     interval.Relationship
	general bool
}{
	"overlap":       {general: true},
	"equal":         {rel: interval.RelEqual},
	"meets":         {rel: interval.RelMeets},
	"met-by":        {rel: interval.RelMetBy},
	"starts":        {rel: interval.RelStarts},
	"started-by":    {rel: interval.RelStartedBy},
	"finishes":      {rel: interval.RelFinishes},
	"finished-by":   {rel: interval.RelFinishedBy},
	"during":        {rel: interval.RelDuring},
	"contains":      {rel: interval.RelContains},
	"overlaps":      {rel: interval.RelOverlaps},
	"overlapped-by": {rel: interval.RelOverlappedBy},
	"before":        {rel: interval.RelBefore},
	"after":         {rel: interval.RelAfter},
}

var cmpOps = map[string]algebra.CmpOp{
	"=": algebra.EQ, "!=": algebra.NE,
	"<": algebra.LT, "<=": algebra.LE,
	">": algebra.GT, ">=": algebra.GE,
}

type parser struct {
	toks []token
	i    int
	src  string
}

// Parse parses a program.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	prog := &Program{}
	for !p.at(tokEOF, "") {
		kw, err := p.keyword("range", "retrieve", "subscribe")
		if err != nil {
			return nil, err
		}
		var stmt Stmt
		switch kw {
		case "range":
			stmt, err = p.rangeStmt()
		case "subscribe":
			stmt, err = p.subscribeStmt()
		default:
			stmt, err = p.retrieveStmt()
		}
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, stmt)
	}
	return prog, nil
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) take() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind != kind {
		return false
	}
	if text == "" {
		return true
	}
	if kind == tokIdent {
		return strings.EqualFold(t.text, text)
	}
	return t.text == text
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	got := t.text
	if t.kind == tokEOF {
		got = "end of input"
	}
	return fmt.Errorf("quel: line %d: %s (at %q)", t.line, fmt.Sprintf(format, args...), got)
}

// keyword consumes one of the listed keywords (case-insensitive).
func (p *parser) keyword(names ...string) (string, error) {
	for _, n := range names {
		if p.at(tokIdent, n) {
			p.take()
			return n, nil
		}
	}
	return "", p.errf("expected %s", strings.Join(names, " or "))
}

func (p *parser) symbol(s string) error {
	if p.at(tokSymbol, s) {
		p.take()
		return nil
	}
	return p.errf("expected %q", s)
}

func (p *parser) ident() (string, error) {
	if p.peek().kind != tokIdent {
		return "", p.errf("expected identifier")
	}
	return p.take().text, nil
}

// rangeStmt parses "of VAR is REL" (after the consumed "range").
func (p *parser) rangeStmt() (*RangeStmt, error) {
	if _, err := p.keyword("of"); err != nil {
		return nil, err
	}
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.keyword("is"); err != nil {
		return nil, err
	}
	rel, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &RangeStmt{Var: v, Relation: rel}, nil
}

// subscribeStmt parses "NAME (targets) [valid …] [where pred]" (after the
// consumed "subscribe") by delegating the body to retrieveStmt.
func (p *parser) subscribeStmt() (*SubscribeStmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st, err := p.retrieveStmt()
	if err != nil {
		return nil, err
	}
	if st.Into != "" {
		return nil, fmt.Errorf("quel: subscribe %s: \"into\" is not allowed — deltas stream to the subscriber", name)
	}
	// Standing queries are admitted once against their state
	// characterization; a placeholder would make the admission decision
	// depend on a value that is not known yet, so parameters are not yet
	// legal anywhere in a subscribe.
	for _, a := range st.Where.Atoms {
		for _, o := range []algebra.Operand{a.L, a.R} {
			if o.Param > 0 {
				return nil, fmt.Errorf("quel: subscribe %s: parameter $%d is not legal in a subscribe statement (standing queries are admitted once; bind values before subscribing)", name, o.Param)
			}
		}
	}
	return &SubscribeStmt{Name: name, Retrieve: st}, nil
}

// retrieveStmt parses "[into R] (targets) [where pred]".
func (p *parser) retrieveStmt() (*RetrieveStmt, error) {
	st := &RetrieveStmt{}
	if p.at(tokIdent, "into") {
		p.take()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Into = name
	}
	if err := p.symbol("("); err != nil {
		return nil, err
	}
	for {
		tgt, err := p.target()
		if err != nil {
			return nil, err
		}
		st.Targets = append(st.Targets, tgt)
		if p.at(tokSymbol, ",") {
			p.take()
			continue
		}
		break
	}
	if err := p.symbol(")"); err != nil {
		return nil, err
	}
	if p.at(tokIdent, "valid") {
		p.take()
		if _, err := p.keyword("from"); err != nil {
			return nil, err
		}
		from, err := p.colRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.keyword("to"); err != nil {
			return nil, err
		}
		to, err := p.colRef()
		if err != nil {
			return nil, err
		}
		st.HasValid, st.ValidFrom, st.ValidTo = true, from, to
	}
	for p.at(tokIdent, "where") || p.at(tokIdent, "when") {
		p.take()
		pred, err := p.conjunction()
		if err != nil {
			return nil, err
		}
		st.Where = st.Where.And(pred)
	}
	return st, nil
}

// target parses "Name=var.Col", "Name=sum(var.Col)", "Name=count(var)",
// or bare "var.Col".
func (p *parser) target() (Target, error) {
	first, err := p.ident()
	if err != nil {
		return Target{}, err
	}
	if p.at(tokSymbol, "=") {
		p.take()
		// Aggregate: IDENT "(" colref ")" with IDENT an aggregate name.
		if p.peek().kind == tokIdent && p.i+1 < len(p.toks) &&
			p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
			if kind, ok := aggNames[strings.ToLower(p.peek().text)]; ok {
				p.take() // aggregate name
				p.take() // "("
				ref, err := p.colRef()
				if err != nil {
					return Target{}, err
				}
				if err := p.symbol(")"); err != nil {
					return Target{}, err
				}
				return Target{Name: first, From: ref, IsAgg: true, Agg: kind}, nil
			}
		}
		ref, err := p.colRef()
		if err != nil {
			return Target{}, err
		}
		return Target{Name: first, From: ref}, nil
	}
	if p.at(tokSymbol, ".") {
		p.take()
		col, err := p.ident()
		if err != nil {
			return Target{}, err
		}
		return Target{Name: col, From: algebra.ColRef{Var: first, Col: col}}, nil
	}
	return Target{Name: first, From: algebra.ColRef{Col: first}}, nil
}

// colRef parses "var.Col" or a bare column.
func (p *parser) colRef() (algebra.ColRef, error) {
	first, err := p.ident()
	if err != nil {
		return algebra.ColRef{}, err
	}
	if p.at(tokSymbol, ".") {
		p.take()
		col, err := p.ident()
		if err != nil {
			return algebra.ColRef{}, err
		}
		return algebra.ColRef{Var: first, Col: col}, nil
	}
	return algebra.ColRef{Col: first}, nil
}

// conjunction parses "term (and term)*".
func (p *parser) conjunction() (algebra.Predicate, error) {
	var pred algebra.Predicate
	for {
		if err := p.term(&pred); err != nil {
			return pred, err
		}
		if p.at(tokIdent, "and") {
			p.take()
			continue
		}
		return pred, nil
	}
}

// term parses "(v1 OP v2)" temporal sugar, a parenthesized conjunction, or
// a comparison atom.
func (p *parser) term(pred *algebra.Predicate) error {
	if p.at(tokSymbol, "(") {
		// Lookahead: "(ident temporalOp ident)" is sugar; otherwise a
		// parenthesized conjunction.
		save := p.i
		p.take()
		if p.peek().kind == tokIdent {
			v1 := p.take().text
			if p.peek().kind == tokIdent {
				opName := strings.ToLower(p.peek().text)
				if op, ok := temporalOps[opName]; ok {
					p.take()
					v2, err := p.ident()
					if err != nil {
						return err
					}
					if err := p.symbol(")"); err != nil {
						return err
					}
					pred.Temporal = append(pred.Temporal, algebra.TemporalAtom{
						L: v1, R: v2, Rel: op.rel, General: op.general,
					})
					return nil
				}
			}
			_ = v1
		}
		// Not sugar: rewind and parse "( conjunction )".
		p.i = save
		p.take() // "("
		inner, err := p.conjunction()
		if err != nil {
			return err
		}
		if err := p.symbol(")"); err != nil {
			return err
		}
		*pred = pred.And(inner)
		return nil
	}

	l, err := p.operand()
	if err != nil {
		return err
	}
	t := p.peek()
	op, ok := cmpOps[t.text]
	if t.kind != tokSymbol || !ok {
		return p.errf("expected comparison operator")
	}
	p.take()
	r, err := p.operand()
	if err != nil {
		return err
	}
	pred.Atoms = append(pred.Atoms, algebra.Atom{L: l, Op: op, R: r})
	return nil
}

// operand parses a column reference, string, number, "forever", or a
// "$1"-style placeholder.
func (p *parser) operand() (algebra.Operand, error) {
	t := p.peek()
	switch t.kind {
	case tokParam:
		p.take()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return algebra.Operand{}, fmt.Errorf("quel: line %d: bad parameter $%s: indexes start at $1", t.line, t.text)
		}
		return algebra.Param(n), nil
	case tokString:
		p.take()
		return algebra.Const(value.String_(t.text)), nil
	case tokNumber:
		p.take()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return algebra.Operand{}, p.errf("bad number %q", t.text)
		}
		return algebra.Const(value.TimeVal(interval.Time(n))), nil
	case tokIdent:
		if strings.EqualFold(t.text, "forever") {
			p.take()
			return algebra.Const(value.TimeVal(interval.Forever)), nil
		}
		ref, err := p.colRef()
		if err != nil {
			return algebra.Operand{}, err
		}
		return algebra.Operand{Col: ref}, nil
	}
	return algebra.Operand{}, p.errf("expected operand")
}
