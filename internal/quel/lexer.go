// Package quel implements a small Quel-style temporal query language — the
// surface syntax of the paper's Section 3 — with range statements, retrieve
// statements, conjunctive where clauses, and the temporal operators of
// Figure 2 as infix sugar:
//
//	range of f1 is Faculty
//	range of f2 is Faculty
//	range of f3 is Faculty
//	retrieve into Stars (Name=f1.Name, ValidFrom=f1.ValidFrom, ValidTo=f2.ValidTo)
//	where f3.Rank="Associate" and f1.Name=f2.Name and f1.Rank="Assistant"
//	  and f2.Rank="Full" and (f1 overlap f3) and (f2 overlap f3)
//
// Queries are parsed to an AST and translated to internal/algebra trees the
// optimizer and engine consume.
package quel

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokSymbol // one of = != < <= > >= ( ) , .
	tokParam  // "$1"-style prepared-statement placeholder; text is the index digits
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
	line int
}

type lexer struct {
	src  string
	i    int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (lx *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("quel: line %d: %s", lx.lineAt(pos), fmt.Sprintf(format, args...))
}

func (lx *lexer) lineAt(pos int) int {
	line := 1
	for i := 0; i < pos && i < len(lx.src); i++ {
		if lx.src[i] == '\n' {
			line++
		}
	}
	return line
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	for lx.i < len(lx.src) {
		c := lx.src[lx.i]
		switch {
		case c == '\n':
			lx.line++
			lx.i++
		case c == ' ' || c == '\t' || c == '\r':
			lx.i++
		case c == '#': // comment to end of line
			for lx.i < len(lx.src) && lx.src[lx.i] != '\n' {
				lx.i++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: lx.i, line: lx.line}, nil

scan:
	start := lx.i
	c := lx.src[lx.i]
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		for lx.i < len(lx.src) && (isIdentChar(lx.src[lx.i])) {
			lx.i++
		}
		return token{kind: tokIdent, text: lx.src[start:lx.i], pos: start, line: lx.line}, nil
	case c >= '0' && c <= '9' || c == '-' && lx.i+1 < len(lx.src) && lx.src[lx.i+1] >= '0' && lx.src[lx.i+1] <= '9':
		lx.i++
		for lx.i < len(lx.src) && lx.src[lx.i] >= '0' && lx.src[lx.i] <= '9' {
			lx.i++
		}
		return token{kind: tokNumber, text: lx.src[start:lx.i], pos: start, line: lx.line}, nil
	case c == '"':
		lx.i++
		var b strings.Builder
		for lx.i < len(lx.src) && lx.src[lx.i] != '"' {
			if lx.src[lx.i] == '\n' {
				return token{}, lx.errf(start, "unterminated string")
			}
			b.WriteByte(lx.src[lx.i])
			lx.i++
		}
		if lx.i >= len(lx.src) {
			return token{}, lx.errf(start, "unterminated string")
		}
		lx.i++ // closing quote
		return token{kind: tokString, text: b.String(), pos: start, line: lx.line}, nil
	case c == '!' || c == '<' || c == '>':
		lx.i++
		if lx.i < len(lx.src) && lx.src[lx.i] == '=' {
			lx.i++
		} else if c == '!' {
			return token{}, lx.errf(start, "expected != after !")
		}
		return token{kind: tokSymbol, text: lx.src[start:lx.i], pos: start, line: lx.line}, nil
	case strings.ContainsRune("=(),.", rune(c)):
		lx.i++
		return token{kind: tokSymbol, text: string(c), pos: start, line: lx.line}, nil
	case c == '$':
		lx.i++
		ds := lx.i
		for lx.i < len(lx.src) && lx.src[lx.i] >= '0' && lx.src[lx.i] <= '9' {
			lx.i++
		}
		if lx.i == ds {
			return token{}, lx.errf(start, "expected a parameter index after $ (as in $1)")
		}
		return token{kind: tokParam, text: lx.src[ds:lx.i], pos: start, line: lx.line}, nil
	}
	return token{}, lx.errf(start, "unexpected character %q", string(c))
}

func isIdentChar(c byte) bool {
	return unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' || c == '-'
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
