package quel

import (
	"fmt"

	"tdb/internal/algebra"
	"tdb/internal/value"
)

// BindParams returns a deep copy of the query's tree with every "$N"
// placeholder replaced by the corresponding constant (params[0] binds $1).
// The original tree is untouched, so a prepared statement binds fresh
// values per execution against the one cached parse. Arity and kind are
// checked: too few or too many values is an error, and a value whose
// string-ness contradicts the kind the statement's comparisons expect
// (Query.ParamKinds) is rejected before execution rather than comparing
// incomparably at runtime.
func BindParams(q *Query, params []value.Value) (algebra.Expr, error) {
	if q.NumParams == 0 {
		if len(params) != 0 {
			return nil, fmt.Errorf("quel: statement takes no parameters, got %d", len(params))
		}
		return q.Tree, nil
	}
	if len(params) != q.NumParams {
		return nil, fmt.Errorf("quel: statement wants %d parameters ($1…$%d), got %d", q.NumParams, q.NumParams, len(params))
	}
	for i, v := range params {
		if i < len(q.KindsKnown) && q.KindsKnown[i] {
			want := q.ParamKinds[i]
			if (want == value.KindString) != (v.Kind() == value.KindString) {
				return nil, fmt.Errorf("quel: parameter $%d wants a %v value, got %v", i+1, want, v.Kind())
			}
		}
	}
	tree := algebra.CloneExpr(q.Tree)
	var bindErr error
	algebra.RewritePredicates(tree, func(p *algebra.Predicate) {
		for i := range p.Atoms {
			for _, o := range []*algebra.Operand{&p.Atoms[i].L, &p.Atoms[i].R} {
				if o.Param == 0 {
					continue
				}
				if o.Param > len(params) {
					bindErr = fmt.Errorf("quel: placeholder $%d exceeds the %d bound parameters", o.Param, len(params))
					return
				}
				*o = algebra.Const(params[o.Param-1])
			}
		}
	})
	if bindErr != nil {
		return nil, bindErr
	}
	return tree, nil
}
