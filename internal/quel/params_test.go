package quel

import (
	"strings"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/value"
)

type paramSource map[string]*relation.Schema

func (s paramSource) SchemaOf(name string) (*relation.Schema, error) {
	if sch, ok := s[name]; ok {
		return sch, nil
	}
	return nil, &unknownRelError{name}
}

type unknownRelError struct{ name string }

func (e *unknownRelError) Error() string { return "unknown relation " + e.name }

func facultySource() paramSource {
	return paramSource{"Faculty": relation.MustSchema([]relation.Column{
		{Name: "Name", Kind: value.KindString},
		{Name: "Rank", Kind: value.KindString},
		{Name: "ValidFrom", Kind: value.KindTime},
		{Name: "ValidTo", Kind: value.KindTime},
	}, 2, 3)}
}

const paramQuery = `
range of f is Faculty
retrieve (f.Name) where f.Rank=$1 and f.ValidFrom>=$2
`

func TestParseAndTranslateParams(t *testing.T) {
	prog, err := Parse(paramQuery)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	qs, err := Translate(prog, facultySource())
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	q := qs[0]
	if q.NumParams != 2 {
		t.Fatalf("NumParams = %d, want 2", q.NumParams)
	}
	if !q.KindsKnown[0] || q.ParamKinds[0] != value.KindString {
		t.Errorf("$1 expectation = %v known=%v, want string", q.ParamKinds[0], q.KindsKnown[0])
	}
	if !q.KindsKnown[1] || q.ParamKinds[1] != value.KindTime {
		t.Errorf("$2 expectation = %v known=%v, want time", q.ParamKinds[1], q.KindsKnown[1])
	}
}

func TestBindParamsSubstitutes(t *testing.T) {
	prog, err := Parse(paramQuery)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	qs, err := Translate(prog, facultySource())
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	bound, err := BindParams(&qs[0], []value.Value{
		value.String_("Full"), value.TimeVal(interval.Time(10)),
	})
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	s := algebra.Format(bound)
	if !strings.Contains(s, `"Full"`) || strings.Contains(s, "$1") {
		t.Errorf("bound tree still holds placeholders:\n%s", s)
	}
	// The cached tree is untouched: a second bind with different values
	// must not see the first bind's constants.
	if orig := algebra.Format(qs[0].Tree); !strings.Contains(orig, "$1") {
		t.Errorf("original tree mutated by binding:\n%s", orig)
	}
	bound2, err := BindParams(&qs[0], []value.Value{
		value.String_("Assistant"), value.TimeVal(interval.Time(99)),
	})
	if err != nil {
		t.Fatalf("second bind: %v", err)
	}
	if s2 := algebra.Format(bound2); !strings.Contains(s2, `"Assistant"`) || strings.Contains(s2, "Full") {
		t.Errorf("rebinding leaked earlier values:\n%s", s2)
	}
}

func TestBindParamsErrors(t *testing.T) {
	prog, err := Parse(paramQuery)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	qs, err := Translate(prog, facultySource())
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	if _, err := BindParams(&qs[0], []value.Value{value.String_("Full")}); err == nil {
		t.Error("bind with too few values succeeded")
	}
	if _, err := BindParams(&qs[0], []value.Value{
		value.String_("Full"), value.TimeVal(1), value.TimeVal(2),
	}); err == nil {
		t.Error("bind with too many values succeeded")
	}
	// $1 is compared against a string column; a time value can never
	// compare and is rejected at bind time.
	if _, err := BindParams(&qs[0], []value.Value{
		value.TimeVal(3), value.TimeVal(4),
	}); err == nil {
		t.Error("bind with a kind-mismatched value succeeded")
	}
}

func TestParamsIllegalInSubscribe(t *testing.T) {
	_, err := Parse(`
range of f is Faculty
subscribe watch (f.Name) where f.Rank=$1
`)
	if err == nil {
		t.Fatal("subscribe with a placeholder parsed")
	}
	if !strings.Contains(err.Error(), "not legal in a subscribe") {
		t.Errorf("error does not name the restriction: %v", err)
	}
}

func TestParamLexErrors(t *testing.T) {
	if _, err := Parse(`range of f is Faculty
retrieve (f.Name) where f.Rank=$`); err == nil {
		t.Error("bare $ lexed")
	}
	if _, err := Parse(`range of f is Faculty
retrieve (f.Name) where f.Rank=$0`); err == nil {
		t.Error("$0 accepted; indexes start at $1")
	}
}

func TestParamConflictingKindsRejected(t *testing.T) {
	_, err := Parse(`
range of f is Faculty
retrieve (f.Name) where f.Rank=$1 and f.ValidFrom=$1
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, _ := Parse(`
range of f is Faculty
retrieve (f.Name) where f.Rank=$1 and f.ValidFrom=$1
`)
	if _, err := Translate(prog, facultySource()); err == nil {
		t.Error("conflicting kind expectations for one placeholder accepted")
	}
}

func TestParamGapCountsThroughMaxIndex(t *testing.T) {
	prog, err := Parse(`
range of f is Faculty
retrieve (f.Name) where f.Rank=$2
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	qs, err := Translate(prog, facultySource())
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	if qs[0].NumParams != 2 {
		t.Fatalf("NumParams = %d, want 2 (indexes run through the highest placeholder)", qs[0].NumParams)
	}
}
