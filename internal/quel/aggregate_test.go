package quel

import (
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/relation"
	"tdb/internal/value"
)

var salarySchema = relation.MustSchema([]relation.Column{
	{Name: "Dept", Kind: value.KindString},
	{Name: "Emp", Kind: value.KindString},
	{Name: "Salary", Kind: value.KindInt},
	{Name: "ValidFrom", Kind: value.KindTime},
	{Name: "ValidTo", Kind: value.KindTime},
}, 3, 4)

func salarySrc() fixedSource {
	return fixedSource{"Emp": salarySchema, "Faculty": facultySchema}
}

func TestParseAggregateTargets(t *testing.T) {
	prog, err := Parse(`range of e is Emp
retrieve (Dept=e.Dept, total=sum(e.Salary), n=count(e), lo=min(e.Salary))`)
	if err != nil {
		t.Fatal(err)
	}
	r := prog.Stmts[1].(*RetrieveStmt)
	if len(r.Targets) != 4 {
		t.Fatalf("targets: %+v", r.Targets)
	}
	if r.Targets[0].IsAgg {
		t.Error("plain target marked aggregate")
	}
	if !r.Targets[1].IsAgg || r.Targets[1].Agg != algebra.AggSum {
		t.Errorf("sum target: %+v", r.Targets[1])
	}
	if !r.Targets[2].IsAgg || r.Targets[2].Agg != algebra.AggCount || r.Targets[2].From.Col != "e" {
		t.Errorf("count target: %+v", r.Targets[2])
	}
	if !r.Targets[3].IsAgg || r.Targets[3].Agg != algebra.AggMin {
		t.Errorf("min target: %+v", r.Targets[3])
	}
}

func TestTranslateAggregate(t *testing.T) {
	prog, err := Parse(`range of e is Emp
retrieve into Totals (Dept=e.Dept, total=sum(e.Salary), n=count(e))
where e.Salary >= 50`)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := Translate(prog, salarySrc())
	if err != nil {
		t.Fatal(err)
	}
	proj, ok := qs[0].Tree.(*algebra.Project)
	if !ok {
		t.Fatalf("root %T", qs[0].Tree)
	}
	agg, ok := proj.Input.(*algebra.Aggregate)
	if !ok {
		t.Fatalf("below project: %T", proj.Input)
	}
	if len(agg.GroupBy) != 1 || agg.GroupBy[0].Name() != "e.Dept" {
		t.Errorf("group by: %v", agg.GroupBy)
	}
	if len(agg.Terms) != 2 || agg.Terms[0].Kind != algebra.AggSum || agg.Terms[1].Kind != algebra.AggCount {
		t.Errorf("terms: %+v", agg.Terms)
	}
	// Schema resolves end to end.
	sch, err := algebra.OutputSchema(qs[0].Tree, salarySrc())
	if err != nil {
		t.Fatal(err)
	}
	if sch.Arity() != 3 || sch.Cols[0].Name != "Dept" || sch.Cols[1].Name != "total" {
		t.Errorf("schema: %s", sch)
	}
	if sch.Temporal() {
		t.Error("aggregate result must be snapshot")
	}
	// The where clause survives beneath the aggregate.
	if _, ok := agg.Input.(*algebra.Select); !ok {
		t.Errorf("selection lost: %T", agg.Input)
	}
}

func TestTranslateAggregateErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"sum over string", `range of e is Emp
retrieve (x=sum(e.Dept))`},
		{"count of undeclared var", `range of e is Emp
retrieve (n=count(zz))`},
		{"agg over unknown column", `range of e is Emp
retrieve (x=sum(e.Nope))`},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		if _, err := Translate(prog, salarySrc()); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// A non-aggregate name followed by "(" still parses as an error, not as a
// silent misread.
func TestNonAggregateCallRejected(t *testing.T) {
	_, err := Parse(`range of e is Emp
retrieve (x=median(e.Salary))`)
	if err == nil {
		t.Error("unknown function accepted")
	}
}
