// Package metrics implements the instrumentation through which the
// experiments observe the stream algorithms: tuples read per input, output
// cardinality, predicate comparisons, garbage-collection activity, scan
// (pass) counts, and — central to the paper's Tables 1–3 — the local
// workspace high-water mark, measured in retained tuples so that results
// are directly comparable to the paper's analytic state characterizations.
//
// All methods are nil-receiver safe: production code paths pass a nil
// *Probe and pay only a branch.
package metrics

import (
	"fmt"
	"strings"
)

// Probe accumulates the observable costs of one operator execution.
type Probe struct {
	ReadLeft    int64 // tuples read from the left (X) input
	ReadRight   int64 // tuples read from the right (Y) input
	Emitted     int64 // result tuples produced
	Comparisons int64 // predicate evaluations
	GCDiscarded int64 // state tuples discarded by garbage collection
	Passes      int64 // complete scans taken over inputs

	// Workspace accounting. State counts tuples retained beyond the
	// one-tuple input buffers; Buffers is the fixed buffer count of the
	// algorithm (typically 2). The high-water marks are what Tables 1–3
	// characterize.
	state          int64
	StateHighWater int64
	Buffers        int64

	// Hot-loop counters, fed by the //tdb:hotpath sweep loops. StateGrows
	// counts appends that grew a state slice's backing array (each one is
	// an allocation plus a copy inside the sweep); ActivePeak is the
	// largest single active-list length observed — unlike StateHighWater
	// it tracks one list, not the sum of both sides, which is what the
	// cache-efficiency rewrite needs to size gapless lists.
	StateGrows int64
	ActivePeak int64
}

// IncReadLeft notes a tuple read from the left input.
func (p *Probe) IncReadLeft() {
	if p != nil {
		p.ReadLeft++
	}
}

// IncReadRight notes a tuple read from the right input.
func (p *Probe) IncReadRight() {
	if p != nil {
		p.ReadRight++
	}
}

// IncEmitted notes n result tuples.
func (p *Probe) IncEmitted(n int64) {
	if p != nil {
		p.Emitted += n
	}
}

// IncComparisons notes n predicate evaluations.
func (p *Probe) IncComparisons(n int64) {
	if p != nil {
		p.Comparisons += n
	}
}

// IncPasses notes a completed scan over an input.
func (p *Probe) IncPasses() {
	if p != nil {
		p.Passes++
	}
}

// SetBuffers records the algorithm's fixed buffer count.
func (p *Probe) SetBuffers(n int64) {
	if p != nil {
		p.Buffers = n
	}
}

// StateAdd notes n tuples entering the retained state and updates the
// high-water mark.
func (p *Probe) StateAdd(n int64) {
	if p == nil {
		return
	}
	p.state += n
	if p.state > p.StateHighWater {
		p.StateHighWater = p.state
	}
}

// StateRemove notes n tuples leaving the retained state via garbage
// collection.
func (p *Probe) StateRemove(n int64) {
	if p == nil {
		return
	}
	p.state -= n
	p.GCDiscarded += n
	if p.state < 0 {
		// lint:allow panic — accounting invariant: an operator removed state it never added
		panic(fmt.Sprintf("metrics: state went negative (%d)", p.state))
	}
}

// IncStateGrow notes an append that grew a state slice's backing array.
func (p *Probe) IncStateGrow() {
	if p != nil {
		p.StateGrows++
	}
}

// ObserveActive notes the current length n of one active list and keeps
// the peak.
func (p *Probe) ObserveActive(n int64) {
	if p == nil {
		return
	}
	if n > p.ActivePeak {
		p.ActivePeak = n
	}
}

// StateNow returns the currently retained tuple count.
func (p *Probe) StateNow() int64 {
	if p == nil {
		return 0
	}
	return p.state
}

// Workspace returns the workspace high-water mark: retained state plus the
// fixed buffers. For the buffers-only algorithms of Table 1 case (d) this
// is exactly Buffers.
func (p *Probe) Workspace() int64 {
	if p == nil {
		return 0
	}
	return p.StateHighWater + p.Buffers
}

// TuplesRead returns the total input tuples consumed.
func (p *Probe) TuplesRead() int64 {
	if p == nil {
		return 0
	}
	return p.ReadLeft + p.ReadRight
}

// Merge folds another probe's totals into p, for aggregating per-operator
// probes into plan-level totals. Additive counters sum; the workspace
// marks combine by maximum, since child operators run as one pipeline and
// the plan's workspace is bounded by its largest resident operator.
func (p *Probe) Merge(other *Probe) {
	if p == nil {
		return
	}
	if other == nil {
		return
	}
	p.ReadLeft += other.ReadLeft
	p.ReadRight += other.ReadRight
	p.Emitted += other.Emitted
	p.Comparisons += other.Comparisons
	p.GCDiscarded += other.GCDiscarded
	p.Passes += other.Passes
	p.StateGrows += other.StateGrows
	if other.StateHighWater > p.StateHighWater {
		p.StateHighWater = other.StateHighWater
	}
	if other.Buffers > p.Buffers {
		p.Buffers = other.Buffers
	}
	if other.ActivePeak > p.ActivePeak {
		p.ActivePeak = other.ActivePeak
	}
}

// Snapshot returns a copy of the probe's current totals. The copy carries
// the exported counters and high-water marks only — the live retained-state
// level stays with the original, so a snapshot is a value safe to store in
// cost records and trace spans.
func (p *Probe) Snapshot() Probe {
	if p == nil {
		return Probe{}
	}
	c := *p
	c.state = 0
	return c
}

// Reset zeroes the probe for reuse across benchmark iterations.
func (p *Probe) Reset() {
	if p != nil {
		*p = Probe{}
	}
}

// String renders a compact one-line report.
func (p *Probe) String() string {
	if p == nil {
		return "probe(nil)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "read=%d+%d emitted=%d cmp=%d gc=%d passes=%d state-hwm=%d buffers=%d workspace=%d",
		p.ReadLeft, p.ReadRight, p.Emitted, p.Comparisons, p.GCDiscarded, p.Passes,
		p.StateHighWater, p.Buffers, p.Workspace())
	return b.String()
}
