package metrics

import (
	"reflect"
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var p *Probe
	p.IncReadLeft()
	p.IncReadRight()
	p.IncEmitted(3)
	p.IncComparisons(5)
	p.IncPasses()
	p.SetBuffers(2)
	p.StateAdd(4)
	p.StateRemove(0)
	if p.StateNow() != 0 || p.Workspace() != 0 || p.TuplesRead() != 0 {
		t.Error("nil probe must report zeros")
	}
	p.Reset()
	if p.String() != "probe(nil)" {
		t.Errorf("String = %q", p.String())
	}
}

// TestNilSafetyExhaustive enumerates the pointer method set by
// reflection and calls every exported method on a nil receiver with
// zero-valued arguments, so a method added without the nil guard fails
// this test even if TestNilSafety's hand-written list lags behind.
func TestNilSafetyExhaustive(t *testing.T) {
	typ := reflect.TypeOf((*Probe)(nil))
	nilProbe := reflect.Zero(typ)
	if typ.NumMethod() == 0 {
		t.Fatal("no exported methods on *Probe")
	}
	for i := 0; i < typ.NumMethod(); i++ {
		m := typ.Method(i)
		args := []reflect.Value{nilProbe}
		for a := 1; a < m.Func.Type().NumIn(); a++ {
			args = append(args, reflect.Zero(m.Func.Type().In(a)))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("(*Probe)(nil).%s panicked: %v", m.Name, r)
				}
			}()
			m.Func.Call(args)
		}()
	}
}

func TestAccounting(t *testing.T) {
	p := &Probe{}
	p.SetBuffers(2)
	p.IncReadLeft()
	p.IncReadLeft()
	p.IncReadRight()
	p.IncEmitted(7)
	p.IncComparisons(11)
	p.IncPasses()

	p.StateAdd(3)
	p.StateAdd(2)
	p.StateRemove(4)
	p.StateAdd(1)

	if p.StateNow() != 2 {
		t.Errorf("StateNow = %d, want 2", p.StateNow())
	}
	if p.StateHighWater != 5 {
		t.Errorf("StateHighWater = %d, want 5", p.StateHighWater)
	}
	if p.Workspace() != 7 {
		t.Errorf("Workspace = %d, want 7", p.Workspace())
	}
	if p.GCDiscarded != 4 {
		t.Errorf("GCDiscarded = %d, want 4", p.GCDiscarded)
	}
	if p.TuplesRead() != 3 {
		t.Errorf("TuplesRead = %d, want 3", p.TuplesRead())
	}
	if p.Emitted != 7 || p.Comparisons != 11 || p.Passes != 1 {
		t.Error("simple counters wrong")
	}

	s := p.String()
	for _, frag := range []string{"read=2+1", "emitted=7", "state-hwm=5", "workspace=7"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String %q missing %q", s, frag)
		}
	}

	p.Reset()
	if p.Workspace() != 0 || p.TuplesRead() != 0 || p.StateNow() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestNegativeStatePanics(t *testing.T) {
	p := &Probe{}
	p.StateAdd(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative state")
		}
	}()
	p.StateRemove(2)
}

func TestMerge(t *testing.T) {
	var a, b Probe
	a.IncReadLeft()
	a.IncEmitted(2)
	a.StateAdd(5) // hwm 5
	a.SetBuffers(2)
	b.IncReadRight()
	b.IncComparisons(7)
	b.IncPasses()
	b.StateAdd(3) // hwm 3
	b.SetBuffers(4)
	b.StateRemove(3)

	a.Merge(&b)
	if a.ReadLeft != 1 || a.ReadRight != 1 || a.Emitted != 2 || a.Comparisons != 7 {
		t.Errorf("additive counters wrong after merge: %s", a.String())
	}
	if a.GCDiscarded != 3 || a.Passes != 1 {
		t.Errorf("gc/passes wrong after merge: %s", a.String())
	}
	if a.StateHighWater != 5 || a.Buffers != 4 {
		t.Errorf("workspace marks must combine by max: hwm=%d buffers=%d",
			a.StateHighWater, a.Buffers)
	}

	// Nil receiver and nil argument are both inert.
	var nilP *Probe
	nilP.Merge(&b)
	before := a.Snapshot()
	a.Merge(nil)
	if a.Snapshot() != before {
		t.Error("Merge(nil) must not change the probe")
	}
}

func TestSnapshot(t *testing.T) {
	var p Probe
	p.IncReadLeft()
	p.StateAdd(4)
	s := p.Snapshot()
	if s.ReadLeft != 1 || s.StateHighWater != 4 {
		t.Errorf("snapshot = %s", s.String())
	}
	if s.StateNow() != 0 {
		t.Errorf("snapshot must not carry live state, got %d", s.StateNow())
	}
	// The snapshot is detached from the original.
	p.IncReadLeft()
	if s.ReadLeft != 1 {
		t.Error("snapshot aliased the original")
	}
	var nilP *Probe
	if nilP.Snapshot() != (Probe{}) {
		t.Error("nil snapshot must be zero")
	}
}
