package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event kinds emitted by the engine and the live subsystem. Detail maps
// carry the kind-specific fields; encoding/json sorts map keys, so the
// wire form of an event is deterministic.
const (
	EventSlowQuery    = "slow-query"
	EventGovernor     = "governor-fallback"
	EventBreakerTrip  = "breaker-trip"
	EventBackpressure = "backpressure"
)

// Event is one structured journal entry.
type Event struct {
	Seq    int64             `json:"seq"`
	TimeNS int64             `json:"time_ns"`
	Kind   string            `json:"kind"`
	Query  string            `json:"query,omitempty"`
	Detail map[string]string `json:"detail,omitempty"`
}

// EventLog is a bounded in-memory journal of operational events —
// slow queries, governor fallbacks, breaker trips, backpressure
// suspensions — with an optional streaming JSONL sink. The newest
// events win: when the ring is full the oldest entry is dropped and
// Dropped counts the loss. All methods are nil-receiver safe, so
// un-instrumented paths pay only a branch.
type EventLog struct {
	mu      sync.Mutex
	ring    []Event
	start   int // index of the oldest entry
	n       int // entries currently held
	seq     int64
	dropped int64
	sink    io.Writer
	clock   func() int64
}

// DefaultEventCap bounds the journal when NewEventLog is given a
// non-positive capacity.
const DefaultEventCap = 256

// NewEventLog returns an empty journal holding at most capacity events.
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventLog{
		ring:  make([]Event, capacity),
		clock: func() int64 { return time.Now().UnixNano() },
	}
}

// SetSink streams every subsequent event to w as one JSON line, in
// addition to buffering it. Pass nil to stop streaming. Writes happen
// under the log's lock, serializing lines from concurrent emitters.
func (l *EventLog) SetSink(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = w
}

// Emit appends an event. The detail map is retained, not copied; callers
// hand over ownership.
func (l *EventLog) Emit(kind, query string, detail map[string]string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e := Event{Seq: l.seq, TimeNS: l.clock(), Kind: kind, Query: query, Detail: detail}
	if l.n == len(l.ring) {
		l.start = (l.start + 1) % len(l.ring)
		l.n--
		l.dropped++
	}
	l.ring[(l.start+l.n)%len(l.ring)] = e
	l.n++
	if l.sink != nil {
		b, err := json.Marshal(e)
		if err == nil {
			b = append(b, '\n')
			_, _ = l.sink.Write(b)
		}
	}
}

// Events returns the buffered events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[(l.start+i)%len(l.ring)])
	}
	return out
}

// Len returns the number of buffered events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total returns the number of events ever emitted.
func (l *EventLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dropped returns the number of events the ring has evicted.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// WriteJSONL writes the buffered events, oldest first, one JSON object
// per line.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, e := range l.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
