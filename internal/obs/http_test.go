package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"tdb/internal/metrics"
	"tdb/internal/obs/prof"
)

// TestMetricsDeterministicOrder asserts two properties of the /metrics
// exposition: consecutive scrapes of an unchanged registry are
// byte-identical (families render name-sorted, buckets bound-sorted),
// and the expvar snapshot carries the same cumulative bucket counts as
// the Prometheus text, so the two exposition paths cannot drift.
func TestMetricsDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tdb_z_total", "last family").Add(1)
	reg.Counter("tdb_a_total", "first family").Add(2)
	h := reg.Histogram("tdb_mid_hist", "a histogram", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5000)

	var one, two strings.Builder
	if err := reg.WritePrometheus(&one); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatalf("consecutive scrapes differ:\n%s\n---\n%s", one.String(), two.String())
	}
	if strings.Index(one.String(), "tdb_a_total") > strings.Index(one.String(), "tdb_z_total") {
		t.Errorf("families not name-sorted:\n%s", one.String())
	}

	snap := reg.Snapshot()
	buckets, ok := snap["tdb_mid_hist_bucket"].(map[string]uint64)
	if !ok {
		t.Fatalf("snapshot has no bucket map: %T", snap["tdb_mid_hist_bucket"])
	}
	for le, want := range map[string]uint64{"1": 1, "10": 2, "100": 2, "+Inf": 3} {
		if buckets[le] != want {
			t.Errorf("snapshot bucket le=%s = %d, want %d", le, buckets[le], want)
		}
		promLine := "tdb_mid_hist_bucket{le=\"" + le + "\"} "
		if !strings.Contains(one.String(), promLine) {
			t.Errorf("prometheus text missing %q", promLine)
			continue
		}
		rest := one.String()[strings.Index(one.String(), promLine)+len(promLine):]
		if got := strings.Fields(rest)[0]; got != jsonUint(want) {
			t.Errorf("prometheus le=%s = %s, snapshot %d: the expositions drifted", le, got, want)
		}
	}
}

func jsonUint(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestConcurrentScrapeDuringTracing scrapes /metrics and /debug/vars
// while queries trace and publish probes — the race detector audits the
// registry, tracer and event log under concurrent exposition.
func TestConcurrentScrapeDuringTracing(t *testing.T) {
	reg := NewRegistry()
	srv, addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	scrape := func(path string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return // server racing shutdown; the detector has seen enough
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}

	events := NewEventLog(8)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				scrape("/metrics")
				scrape("/debug/vars")
			}
		}()
	}
	for i := 0; i < 50; i++ {
		tr := NewTracer()
		root := tr.BeginQuery("q")
		span := tr.Begin(root, "scan")
		var p metrics.Probe
		p.IncReadLeft()
		p.StateAdd(2)
		p.IncStateGrow()
		span.Finish(tr, p, NodeStats{Algorithm: "heap-scan", OutRows: 1})
		root.Finish(tr, metrics.Probe{}, NodeStats{})
		reg.PublishProbe(&p)
		events.Emit(EventSlowQuery, "q", map[string]string{"elapsed_ms": "1"})
	}
	wg.Wait()

	if got := reg.Counter(MetricOperatorStateGrows, "").Value(); got != 50 {
		t.Errorf("state-grows counter = %d, want 50", got)
	}
}

// TestProfFieldsRoundTripJSONL runs a profiled span over a real
// allocation burst and checks the resource-accounting fields survive the
// EXPLAIN ANALYZE JSON wire format.
func TestProfFieldsRoundTripJSONL(t *testing.T) {
	prof.SetEnabled(true)
	defer prof.SetEnabled(false)

	tr := NewTracer()
	root := tr.BeginQuery("select … go")
	root.ProfBegin()
	span := tr.Begin(root, "join")
	span.ProfBegin()
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	var p metrics.Probe
	p.IncStateGrow()
	p.ObserveActive(7)
	span.Finish(tr, p, NodeStats{Algorithm: "contain-join", OutRows: 1})
	root.Finish(tr, metrics.Probe{}, NodeStats{})

	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d, want 2", len(lines))
	}
	var m struct {
		Profiled   bool  `json:"profiled"`
		Allocs     int64 `json:"allocs"`
		AllocBytes int64 `json:"alloc_bytes"`
		Probe      struct {
			StateGrows int64 `json:"state_grows"`
			ActivePeak int64 `json:"active_peak"`
		} `json:"probe"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatal(err)
	}
	if !m.Profiled {
		t.Fatal("join span not marked profiled")
	}
	if m.Allocs < 32 || m.AllocBytes < 32*1024 {
		t.Errorf("join span missed the allocation burst: allocs=%d bytes=%d", m.Allocs, m.AllocBytes)
	}
	if m.Probe.StateGrows != 1 || m.Probe.ActivePeak != 7 {
		t.Errorf("hot-loop counters did not round-trip: %+v", m.Probe)
	}

	// The root line reports the query inclusively, so the Tree header can
	// show whole-query totals.
	tree := tr.Tree()
	if !strings.Contains(tree, "allocs/op=") || !strings.Contains(tree, "B/op=") {
		t.Errorf("tree missing prof columns:\n%s", tree)
	}
	if !strings.Contains(tree, "grows=1 peak=7") {
		t.Errorf("tree missing hot-loop counters:\n%s", tree)
	}
}

// TestUnprofiledSpansOmitProfFields: without ProfBegin the wire form
// carries no prof keys at all (omitempty), so existing trace consumers
// see byte-compatible output.
func TestUnprofiledSpansOmitProfFields(t *testing.T) {
	tr := NewTracer()
	root := tr.BeginQuery("q")
	root.Finish(tr, metrics.Probe{}, NodeStats{})
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"profiled"`, `"allocs"`, `"alloc_bytes"`, `"state_grows"`, `"active_peak"`} {
		if strings.Contains(b.String(), key) {
			t.Errorf("unprofiled span leaked %s: %s", key, b.String())
		}
	}
}
