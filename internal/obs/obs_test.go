package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"tdb/internal/metrics"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "dup"); again != c {
		t.Fatalf("counter not shared by name")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilInstrumentsAreNoops(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments must read zero")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil registry snapshot = %v", snap)
	}
}

func TestKindMismatchReturnsNil(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	if g := r.Gauge("m", ""); g != nil {
		t.Fatalf("gauge under counter name must be nil")
	}
	if h := r.Histogram("m", "", nil); h != nil {
		t.Fatalf("histogram under counter name must be nil")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// le="1" catches 0.5 and 1 (boundary inclusive); cumulative counts follow.
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="100"} 5`,
		`lat_bucket{le="+Inf"} 6`,
		`lat_sum 1066.5`,
		`lat_count 6`,
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("shared_total", "")
			h := r.Histogram("shared_hist", "", []float64{1, 2, 4})
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 5))
				if j%100 == 0 {
					_ = r.WritePrometheus(io.Discard)
					_ = r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("shared_hist", "", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestStateSamplerBoundedAndEndsWithLast(t *testing.T) {
	s := NewStateSampler(8)
	const n = 1000
	for i := 0; i < n; i++ {
		s.Observe(int64(i), int64(i%37))
	}
	got := s.Samples()
	if len(got) > 9 { // max retained + possibly the trailing observation
		t.Fatalf("retained %d samples, want <= 9", len(got))
	}
	if s.Seen() != n {
		t.Fatalf("seen = %d", s.Seen())
	}
	if got[0].Tick != 0 {
		t.Fatalf("first sample tick = %d, want 0", got[0].Tick)
	}
	last := got[len(got)-1]
	if last.Tick != n-1 || last.State != (n-1)%37 {
		t.Fatalf("last sample = %+v, want tick %d state %d", last, n-1, (n-1)%37)
	}
	// Ticks must be strictly increasing.
	for i := 1; i < len(got); i++ {
		if got[i].Tick <= got[i-1].Tick {
			t.Fatalf("ticks not increasing at %d: %+v", i, got)
		}
	}
}

func TestStateSamplerMaxState(t *testing.T) {
	s := NewStateSampler(4)
	peaks := []int64{1, 5, 3, 9, 2}
	for i, p := range peaks {
		s.Observe(int64(i), p)
	}
	if m := s.MaxState(); m < 2 || m > 9 {
		t.Fatalf("MaxState = %d out of observed range", m)
	}
	var nilS *StateSampler
	nilS.Observe(1, 1)
	if nilS.Samples() != nil || nilS.Seen() != 0 || nilS.MaxState() != 0 {
		t.Fatalf("nil sampler must be inert")
	}
}

func TestSampleJSON(t *testing.T) {
	b, err := json.Marshal([]Sample{{Tick: 3, State: 12}, {Tick: 40, State: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(b); got != "[[3,12],[40,-1]]" {
		t.Fatalf("sample json = %s", got)
	}
}

func TestTracerSpansAndJSONL(t *testing.T) {
	tr := NewTracer()
	var tick int64
	tr.clock = func() int64 { tick += 10; return tick }

	root := tr.BeginQuery("select … go")
	child := tr.Begin(root, "join F1xF2")
	grand := tr.Begin(child, "scan F1")

	sam := grand.Sampler()
	sam.Observe(0, 1)
	sam.Observe(1, 2)

	var p metrics.Probe
	p.IncReadLeft()
	p.IncReadLeft()
	p.IncEmitted(1)
	grand.Finish(tr, p, NodeStats{Algorithm: "heap-scan", OutRows: 2, PagesRead: 1})
	child.Finish(tr, p, NodeStats{Algorithm: "event-join", OutRows: 2, Notes: []string{"order verified"}})
	root.Finish(tr, metrics.Probe{}, NodeStats{})

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[1].ParentID != root.ID || spans[2].ParentID != child.ID {
		t.Fatalf("parentage wrong: %+v", spans)
	}
	if spans[0].QueryID != spans[2].QueryID {
		t.Fatalf("query ids differ")
	}

	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines int
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not json: %v", lines, err)
		}
		if _, ok := m["probe"]; !ok {
			t.Fatalf("line %d missing probe: %s", lines, sc.Text())
		}
	}
	if lines != 3 {
		t.Fatalf("jsonl lines = %d, want 3", lines)
	}
	// The scan span's probe totals round-trip.
	var m struct {
		Probe struct {
			ReadLeft int64 `json:"read_left"`
			Emitted  int64 `json:"emitted"`
		} `json:"probe"`
		Curve [][2]int64 `json:"state_curve"`
	}
	scanLine := strings.Split(strings.TrimSpace(b.String()), "\n")[2]
	if err := json.Unmarshal([]byte(scanLine), &m); err != nil {
		t.Fatal(err)
	}
	if m.Probe.ReadLeft != 2 || m.Probe.Emitted != 1 {
		t.Fatalf("probe round-trip = %+v", m.Probe)
	}
	if len(m.Curve) != 2 || m.Curve[1] != [2]int64{1, 2} {
		t.Fatalf("curve round-trip = %v", m.Curve)
	}

	tree := tr.Tree()
	for _, want := range []string{"query #1", "join F1xF2", "[event-join]", "scan F1", "order verified", "└─"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestTracerNilAndFail(t *testing.T) {
	var tr *Tracer
	s := tr.BeginQuery("q")
	if s != nil {
		t.Fatalf("nil tracer must hand out nil spans")
	}
	c := tr.Begin(s, "child")
	if c != nil {
		t.Fatalf("nil tracer Begin must be nil")
	}
	s.Finish(tr, metrics.Probe{}, NodeStats{})
	s.Fail(tr, errors.New("x"))
	if s.Sampler() != nil {
		t.Fatalf("nil span sampler must be nil")
	}
	if err := tr.WriteJSONL(io.Discard); err != nil {
		t.Fatal(err)
	}
	if tr.Tree() != "" || tr.Spans() != nil {
		t.Fatalf("nil tracer must render empty")
	}

	live := NewTracer()
	q := live.BeginQuery("q")
	n := live.Begin(q, "node")
	n.Fail(live, errors.New("stream order violated"))
	n.Finish(live, metrics.Probe{}, NodeStats{OutRows: 99}) // second finish ignored
	if n.Node.OutRows != 0 || n.Err != "stream order violated" {
		t.Fatalf("Fail then Finish: %+v", n)
	}
	q.Finish(live, metrics.Probe{}, NodeStats{})
	if !strings.Contains(live.Tree(), "! stream order violated") {
		t.Fatalf("tree must show error:\n%s", live.Tree())
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tdb_test_total", "test counter").Add(3)
	reg.Histogram("tdb_test_hist", "test hist", []float64{1, 2}).Observe(1.5)

	srv, addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("metrics content-type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE tdb_test_total counter",
		"tdb_test_total 3",
		`tdb_test_hist_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, _ = get("/debug/vars")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not json: %v", err)
	}
	if _, ok := vars["tdb"]; !ok {
		t.Errorf("/debug/vars missing tdb snapshot: %s", body)
	}

	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "heap") {
		t.Errorf("pprof index missing heap profile:\n%s", body)
	}

	body, _ = get("/")
	if !strings.Contains(body, "/metrics") {
		t.Errorf("index page: %s", body)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, _, err := Serve("256.0.0.1:99999", NewRegistry()); err == nil {
		t.Fatal("want error for bad address")
	}
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	r.Counter("tdb_pages_read_total", "pages read").Add(2)
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	fmt.Print(b.String())
	// Output:
	// # HELP tdb_pages_read_total pages read
	// # TYPE tdb_pages_read_total counter
	// tdb_pages_read_total 2
}
