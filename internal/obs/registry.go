package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter is a no-op sink.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge is a no-op sink.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add applies a delta.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// buckets are upper bounds, counts are cumulative at exposition). A nil
// *Histogram is a no-op sink.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // sorted upper bounds, excluding +Inf
	counts  []uint64  // per-bucket (non-cumulative) counts; len = len(bounds)+1
	sum     float64
	samples uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.samples++
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Buckets returns the histogram's upper bounds (excluding +Inf) and the
// cumulative count at each bound plus the +Inf total — the exact values
// the Prometheus exposition prints.
func (h *Histogram) Buckets() ([]float64, []uint64) {
	if h == nil {
		return nil, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds := append([]float64{}, h.bounds...)
	cums := make([]uint64, len(h.counts))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		cums[i] = cum
	}
	return bounds, cums
}

// ExpBuckets returns n upper bounds starting at start and growing by
// factor — the usual decade/octave histogram layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metric is one registered instrument with its exposition metadata.
type metric struct {
	name string
	help string
	kind string // "counter", "gauge", "histogram"
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named collection of instruments. Instruments are created
// on first use and shared by name thereafter; all methods are safe for
// concurrent use and a nil *Registry hands out nil (no-op) instruments.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// Counter returns the counter registered under name, creating it with the
// given help text on first use. Returns nil (a no-op counter) on a nil
// registry or if name is registered as a different kind.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, "counter")
	if m == nil {
		return nil
	}
	return m.c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, "gauge")
	if m == nil {
		return nil
	}
	return m.g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (buckets are sorted and
// deduplicated; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != "histogram" {
			return nil
		}
		return m.h
	}
	bounds := append([]float64{}, buckets...)
	sort.Float64s(bounds)
	bounds = dedupFloats(bounds)
	h := &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	r.metrics[name] = &metric{name: name, help: help, kind: "histogram", h: h}
	return h
}

// lookup finds or creates a scalar instrument under the registry lock.
func (r *Registry) lookup(name, help, kind string) *metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			return nil
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case "counter":
		m.c = &Counter{}
	case "gauge":
		m.g = &Gauge{}
	}
	r.metrics[name] = m
	return m
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	ms := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		ms = append(ms, r.metrics[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, m := range ms {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		switch m.kind {
		case "counter":
			fmt.Fprintf(&b, "%s %d\n", m.name, m.c.Value())
		case "gauge":
			fmt.Fprintf(&b, "%s %d\n", m.name, m.g.Value())
		case "histogram":
			m.h.write(&b, m.name)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// write renders the histogram's cumulative buckets, sum and count.
func (h *Histogram) write(b *strings.Builder, name string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, strconv.FormatFloat(h.sum, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count %d\n", name, h.samples)
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot returns a plain name → value map of every instrument for
// expvar exposition. Histograms appear as name_sum, name_count and a
// name_bucket map keyed by the same le bound strings — with the same
// cumulative counts — that the Prometheus exposition prints, so the two
// renderings of one snapshot carry identical values. The JSON encoding
// of the map is deterministic: encoding/json sorts object keys.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return map[string]any{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.metrics))
	for name, m := range r.metrics {
		switch m.kind {
		case "counter":
			out[name] = m.c.Value()
		case "gauge":
			out[name] = m.g.Value()
		case "histogram":
			out[name+"_sum"] = m.h.Sum()
			out[name+"_count"] = m.h.Count()
			bounds, cums := m.h.Buckets()
			buckets := make(map[string]uint64, len(cums))
			for i, bound := range bounds {
				buckets[formatBound(bound)] = cums[i]
			}
			buckets["+Inf"] = cums[len(cums)-1]
			out[name+"_bucket"] = buckets
		}
	}
	return out
}
