package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"tdb/internal/metrics"
)

func TestEventLogRingAndDropped(t *testing.T) {
	l := NewEventLog(3)
	l.clock = func() int64 { return 42 }
	for i := 0; i < 5; i++ {
		l.Emit(EventSlowQuery, "q", map[string]string{"i": string(rune('0' + i))})
	}
	if l.Len() != 3 || l.Total() != 5 || l.Dropped() != 2 {
		t.Fatalf("len=%d total=%d dropped=%d, want 3/5/2", l.Len(), l.Total(), l.Dropped())
	}
	evs := l.Events()
	if evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Errorf("ring kept wrong window: %+v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Errorf("events out of order: %+v", evs)
		}
	}
}

func TestEventLogSinkStreamsJSONL(t *testing.T) {
	l := NewEventLog(4)
	l.clock = func() int64 { return 7 }
	var sink strings.Builder
	l.SetSink(&sink)
	l.Emit(EventGovernor, "join F1xF2", map[string]string{"workspace": "900", "ceiling": "512"})
	l.Emit(EventBreakerTrip, "Hot", nil)

	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink lines = %d, want 2", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != EventGovernor || e.Query != "join F1xF2" || e.Detail["ceiling"] != "512" || e.TimeNS != 7 {
		t.Errorf("streamed event mangled: %+v", e)
	}

	// The buffer still holds both; WriteJSONL replays them.
	var replay strings.Builder
	if err := l.WriteJSONL(&replay); err != nil {
		t.Fatal(err)
	}
	if replay.String() != sink.String() {
		t.Errorf("replay differs from stream:\n%s\n---\n%s", replay.String(), sink.String())
	}

	l.SetSink(nil)
	l.Emit(EventBackpressure, "Hot", nil)
	if strings.Count(sink.String(), "\n") != 2 {
		t.Error("emit after SetSink(nil) still streamed")
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit(EventSlowQuery, "q", nil)
	l.SetSink(&strings.Builder{})
	if l.Events() != nil || l.Len() != 0 || l.Total() != 0 || l.Dropped() != 0 {
		t.Error("nil log not inert")
	}
	if err := l.WriteJSONL(&strings.Builder{}); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
}

func TestPublishProbeSingleExportPath(t *testing.T) {
	reg := NewRegistry()
	var p metrics.Probe
	p.SetBuffers(2)
	p.StateAdd(30)
	p.IncComparisons(100)
	p.StateRemove(10)
	p.IncStateGrow()
	p.IncStateGrow()
	reg.PublishProbe(&p)

	if got := reg.Counter(MetricOperatorComparisons, "").Value(); got != 100 {
		t.Errorf("comparisons = %d, want 100", got)
	}
	if got := reg.Counter(MetricOperatorGCDiscarded, "").Value(); got != 10 {
		t.Errorf("gc-discarded = %d, want 10", got)
	}
	if got := reg.Counter(MetricOperatorStateGrows, "").Value(); got != 2 {
		t.Errorf("state-grows = %d, want 2", got)
	}
	h := reg.Histogram(MetricOperatorWorkspace, "", WorkspaceBuckets())
	if h.Count() != 1 || h.Sum() != 32 {
		t.Errorf("workspace histogram count=%d sum=%v, want one observation of 32", h.Count(), h.Sum())
	}

	// Nil registry and nil probe are inert.
	var nilReg *Registry
	nilReg.PublishProbe(&p)
	reg.PublishProbe(nil)
	if got := reg.Counter(MetricOperatorComparisons, "").Value(); got != 100 {
		t.Errorf("nil publish mutated the registry: %d", got)
	}
}
