package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-wide expvar publication of the registry
// snapshot: expvar.Publish panics on duplicate names, and tests may build
// several muxes in one process.
var (
	expvarOnce sync.Once
	expvarMu   sync.Mutex
	expvarReg  *Registry
)

// NewMux returns an http.ServeMux exposing the registry:
//
//	/metrics          Prometheus text exposition (format 0.0.4)
//	/debug/vars       expvar JSON (includes the registry snapshot as "tdb")
//	/debug/pprof/...  net/http/pprof profiles
//	/                 a plain-text index of the above
//
// The handlers are registered on an explicit mux — nothing touches
// http.DefaultServeMux — so embedding applications stay in control.
func NewMux(reg *Registry) *http.ServeMux {
	expvarOnce.Do(func() {
		expvar.Publish("tdb", expvar.Func(func() any {
			expvarMu.Lock()
			defer expvarMu.Unlock()
			return expvarReg.Snapshot()
		}))
	})
	expvarMu.Lock()
	expvarReg = reg
	expvarMu.Unlock()

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = fmt.Fprint(w, "tdb observability endpoint\n",
			"  /metrics          Prometheus text exposition\n",
			"  /debug/vars       expvar JSON\n",
			"  /debug/pprof/     runtime profiles\n")
	})
	return mux
}

// Serve starts the exposition endpoint on addr (e.g. ":8080" or
// "127.0.0.1:0") and returns the running server together with the bound
// address. The caller shuts it down with srv.Close or srv.Shutdown.
func Serve(addr string, reg *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: NewMux(reg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
