package obs

// Sample is one observation of an operator's retained state: the state
// level at a point of the operator's logical clock (input tuples consumed
// so far). Using the logical clock rather than wall time keeps traces
// deterministic — the same query over the same data yields the same curve.
type Sample struct {
	Tick  int64 // input tuples consumed when observed
	State int64 // retained state tuples at that point
}

// MarshalJSON renders the sample as the compact pair [tick, state].
func (s Sample) MarshalJSON() ([]byte, error) {
	return []byte("[" + itoa(s.Tick) + "," + itoa(s.State) + "]"), nil
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	var buf [21]byte
	i := len(buf)
	for n != 0 {
		i--
		d := n % 10
		if d < 0 {
			d = -d
		}
		buf[i] = byte('0' + d)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// StateSampler records a bounded, deterministic downsampling of an
// operator's state(t) curve — the quantity the paper's Tables 1–3
// characterize analytically. It keeps every stride-th observation; when the
// buffer fills it discards every other retained sample and doubles the
// stride, so memory stays bounded at maxSamples while the curve keeps its
// overall shape. The final observation is always retained.
//
// A StateSampler belongs to one operator on one goroutine (the Probe
// discipline); a nil *StateSampler is a no-op sink.
type StateSampler struct {
	max     int
	stride  int64
	seen    int64
	samples []Sample
	last    Sample
	haveEnd bool
}

// DefaultSamples is the per-operator curve capacity used by the tracer.
const DefaultSamples = 512

// NewStateSampler returns a sampler retaining at most max points
// (minimum 2: the curve must keep its first and last observation).
func NewStateSampler(max int) *StateSampler {
	if max < 2 {
		max = 2
	}
	return &StateSampler{max: max, stride: 1}
}

// Observe records one state observation at the given logical tick.
func (s *StateSampler) Observe(tick, state int64) {
	if s == nil {
		return
	}
	s.last = Sample{Tick: tick, State: state}
	s.haveEnd = true
	if s.seen%s.stride == 0 {
		if len(s.samples) >= s.max {
			s.compact()
		}
		s.samples = append(s.samples, s.last)
		s.haveEnd = false
	}
	s.seen++
}

// compact drops every other retained sample and doubles the stride.
func (s *StateSampler) compact() {
	if s == nil {
		return
	}
	kept := s.samples[:0]
	for i, x := range s.samples {
		if i%2 == 0 {
			kept = append(kept, x)
		}
	}
	s.samples = kept
	s.stride *= 2
}

// Seen returns the total number of observations made.
func (s *StateSampler) Seen() int64 {
	if s == nil {
		return 0
	}
	return s.seen
}

// Samples returns the retained curve, always ending with the most recent
// observation. The returned slice is a copy.
func (s *StateSampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	out := append([]Sample{}, s.samples...)
	if s.haveEnd {
		out = append(out, s.last)
	}
	return out
}

// MaxState returns the largest state level among the retained samples — a
// lower bound on the true high-water mark (downsampling can drop the exact
// peak; metrics.Probe.StateHighWater holds the exact value).
func (s *StateSampler) MaxState() int64 {
	if s == nil {
		return 0
	}
	var m int64
	for _, x := range s.samples {
		if x.State > m {
			m = x.State
		}
	}
	if s.haveEnd && s.last.State > m {
		m = s.last.State
	}
	return m
}
