package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"tdb/internal/metrics"
	"tdb/internal/obs/prof"
)

// NodeStats carries a plan node's execution outcome into its span — the
// fields of the engine's per-operator cost record that are not part of the
// probe itself.
type NodeStats struct {
	Algorithm  string
	OutRows    int64
	SortedRows int64
	SortRuns   int
	SortPages  int64
	PagesRead  int64
	Notes      []string
}

// Span is one traced plan-node execution. Fields are written by the query
// goroutine between Begin and Finish and read only afterwards.
type Span struct {
	QueryID  int64
	ID       int64
	ParentID int64 // 0 for a query root
	Label    string
	StartNS  int64
	EndNS    int64
	Probe    metrics.Probe
	Node     NodeStats
	Curve    []Sample
	Err      string

	// Resource accounting (internal/obs/prof). Allocs/AllocBytes are the
	// heap-allocation deltas of this node's own execution, exclusive of
	// finished child spans: the runtime counters are process-global, so a
	// parent's window contains its children's, and Finish subtracts the
	// inclusive child totals accumulated in childAllocs/childBytes. Only
	// spans whose ProfBegin ran (serial nodes and the query root — never
	// concurrent worker spans, whose windows would overlap) carry deltas;
	// Profiled marks them so zero is distinguishable from "off".
	Allocs     int64
	AllocBytes int64
	Profiled   bool

	profStart   prof.Snap
	parent      *Span
	childAllocs int64
	childBytes  int64

	sampler *StateSampler
	done    bool
}

// ProfBegin snapshots the allocation counters at span start. The engine
// calls it only where the delta is attributable: on the query goroutine
// for serial node spans and the query root. With accounting disabled
// (prof.SetEnabled(false)) it is one atomic load and the span stays
// unprofiled.
func (s *Span) ProfBegin() {
	if s == nil {
		return
	}
	s.profStart = prof.ReadSnap()
}

// Tracer collects the spans of one or more queries. Spans are appended
// under a lock so a tracer may outlive many queries; the spans themselves
// follow the single-goroutine Probe discipline. A nil *Tracer hands out
// nil spans, making tracing free when disabled.
type Tracer struct {
	mu      sync.Mutex
	nextID  int64
	queries int64
	spans   []*Span
	clock   func() int64
}

// NewTracer returns an empty tracer stamping spans with wall-clock
// nanoseconds.
func NewTracer() *Tracer {
	return &Tracer{clock: func() int64 { return time.Now().UnixNano() }}
}

// BeginQuery opens a new query and returns its root span.
func (t *Tracer) BeginQuery(label string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.queries++
	return t.beginLocked(nil, t.queries, label)
}

// Begin opens a span under parent (nil parent attaches to the most recent
// query as a root-level span).
func (t *Tracer) Begin(parent *Span, label string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	qid := t.queries
	if parent != nil {
		qid = parent.QueryID
	}
	return t.beginLocked(parent, qid, label)
}

// beginLocked allocates a span; the caller holds the tracer lock.
func (t *Tracer) beginLocked(parent *Span, query int64, label string) *Span {
	if t == nil {
		return nil
	}
	t.nextID++
	s := &Span{
		QueryID: query,
		ID:      t.nextID,
		Label:   label,
		StartNS: t.clock(),
		parent:  parent,
	}
	if parent != nil {
		s.ParentID = parent.ID
	}
	t.spans = append(t.spans, s)
	return s
}

// now reads the tracer clock.
func (t *Tracer) now() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clock()
}

// Sampler returns the span's state sampler, allocating it on first use so
// only traced operators pay for curve collection.
func (s *Span) Sampler() *StateSampler {
	if s == nil {
		return nil
	}
	if s.sampler == nil {
		s.sampler = NewStateSampler(DefaultSamples)
	}
	return s.sampler
}

// Finish stamps the end time and records the node outcome: the final probe
// snapshot, the cost fields, and the sampled state curve. Finishing twice
// keeps the first outcome.
func (s *Span) Finish(t *Tracer, probe metrics.Probe, node NodeStats) {
	if s == nil {
		return
	}
	if s.done {
		return
	}
	s.done = true
	s.EndNS = t.now()
	s.Probe = probe
	s.Node = node
	s.Curve = s.sampler.Samples()
	s.settleProf()
}

// Fail stamps the end time and records the error that aborted the node.
func (s *Span) Fail(t *Tracer, err error) {
	if s == nil {
		return
	}
	if s.done {
		return
	}
	s.done = true
	s.EndNS = t.now()
	if err != nil {
		s.Err = err.Error()
	}
	s.Curve = s.sampler.Samples()
	s.settleProf()
}

// settleProf closes the allocation window: records this span's delta,
// subtracts the inclusive totals its finished children pushed up, and
// pushes the span's own inclusive delta to its parent. Runs only on the
// query goroutine (worker spans never take a profStart), so the parent
// fields need no lock.
func (s *Span) settleProf() {
	if s == nil {
		return
	}
	if !s.profStart.Taken {
		return
	}
	a, by := prof.Since(s.profStart)
	s.Profiled = true
	s.Allocs = max64(a-s.childAllocs, 0)
	s.AllocBytes = max64(by-s.childBytes, 0)
	if s.parent != nil {
		s.parent.childAllocs += a
		s.parent.childBytes += by
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// spanJSON is the JSONL wire form of a span.
type spanJSON struct {
	Query      int64     `json:"query"`
	Span       int64     `json:"span"`
	Parent     int64     `json:"parent,omitempty"`
	Label      string    `json:"label"`
	Algorithm  string    `json:"algorithm,omitempty"`
	StartNS    int64     `json:"start_ns"`
	DurNS      int64     `json:"dur_ns"`
	OutRows    int64     `json:"out_rows"`
	SortedRows int64     `json:"sorted_rows,omitempty"`
	SortRuns   int       `json:"sort_runs,omitempty"`
	SortPages  int64     `json:"sort_pages,omitempty"`
	PagesRead  int64     `json:"pages_read,omitempty"`
	Notes      []string  `json:"notes,omitempty"`
	Err        string    `json:"error,omitempty"`
	Profiled   bool      `json:"profiled,omitempty"`
	Allocs     int64     `json:"allocs,omitempty"`
	AllocBytes int64     `json:"alloc_bytes,omitempty"`
	Probe      probeJSON `json:"probe"`
	Curve      []Sample  `json:"state_curve,omitempty"`
}

// probeJSON mirrors the metrics.Probe totals of the printed cost tables.
type probeJSON struct {
	ReadLeft    int64 `json:"read_left"`
	ReadRight   int64 `json:"read_right"`
	Emitted     int64 `json:"emitted"`
	Comparisons int64 `json:"comparisons"`
	GCDiscarded int64 `json:"gc_discarded"`
	Passes      int64 `json:"passes"`
	StateHWM    int64 `json:"state_hwm"`
	Buffers     int64 `json:"buffers"`
	Workspace   int64 `json:"workspace"`
	StateGrows  int64 `json:"state_grows,omitempty"`
	ActivePeak  int64 `json:"active_peak,omitempty"`
}

func (s *Span) wire() spanJSON {
	if s == nil {
		return spanJSON{}
	}
	p := &s.Probe
	return spanJSON{
		Query:      s.QueryID,
		Span:       s.ID,
		Parent:     s.ParentID,
		Label:      s.Label,
		Algorithm:  s.Node.Algorithm,
		StartNS:    s.StartNS,
		DurNS:      s.EndNS - s.StartNS,
		OutRows:    s.Node.OutRows,
		SortedRows: s.Node.SortedRows,
		SortRuns:   s.Node.SortRuns,
		SortPages:  s.Node.SortPages,
		PagesRead:  s.Node.PagesRead,
		Notes:      s.Node.Notes,
		Err:        s.Err,
		Profiled:   s.Profiled,
		Allocs:     s.Allocs,
		AllocBytes: s.AllocBytes,
		Curve:      s.Curve,
		Probe: probeJSON{
			ReadLeft:    p.ReadLeft,
			ReadRight:   p.ReadRight,
			Emitted:     p.Emitted,
			Comparisons: p.Comparisons,
			GCDiscarded: p.GCDiscarded,
			Passes:      p.Passes,
			StateHWM:    p.StateHighWater,
			Buffers:     p.Buffers,
			Workspace:   p.Workspace(),
			StateGrows:  p.StateGrows,
			ActivePeak:  p.ActivePeak,
		},
	}
}

// Spans returns the collected spans in begin order.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span{}, t.spans...)
}

// WriteJSONL writes every span as one JSON object per line, in begin
// order — the machine-readable trace export.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, s := range t.Spans() {
		if err := enc.Encode(s.wire()); err != nil {
			return err
		}
	}
	return nil
}

// Tree renders every traced query as a human EXPLAIN ANALYZE-style tree:
// one line per span with its algorithm, duration, output cardinality and
// probe totals, children indented under parents, notes beneath.
func (t *Tracer) Tree() string {
	if t == nil {
		return ""
	}
	spans := t.Spans()
	children := map[int64][]*Span{}
	var roots []*Span
	for _, s := range spans {
		if s.ParentID == 0 {
			roots = append(roots, s)
			continue
		}
		children[s.ParentID] = append(children[s.ParentID], s)
	}
	var b strings.Builder
	var walk func(s *Span, prefix string, last bool)
	walk = func(s *Span, prefix string, last bool) {
		branch, childPrefix := "├─ ", prefix+"│  "
		if last {
			branch, childPrefix = "└─ ", prefix+"   "
		}
		if s.ParentID == 0 {
			branch, childPrefix = "", ""
			fmt.Fprintf(&b, "query #%d  %s  (%.3fms", s.QueryID, s.Label, ms(s))
			if s.Profiled {
				// The root line reports the query's inclusive totals.
				fmt.Fprintf(&b, " allocs=%d B=%d", s.Allocs+s.childAllocs, s.AllocBytes+s.childBytes)
			}
			b.WriteString(")\n")
		} else {
			fmt.Fprintf(&b, "%s%s%s", prefix, branch, s.Label)
			if s.Node.Algorithm != "" {
				fmt.Fprintf(&b, "  [%s]", s.Node.Algorithm)
			}
			fmt.Fprintf(&b, "  %.3fms out=%d %s", ms(s), s.Node.OutRows, s.Probe.String())
			if s.Profiled {
				fmt.Fprintf(&b, " allocs/op=%d B/op=%d", s.Allocs, s.AllocBytes)
			}
			if p := &s.Probe; p.StateGrows > 0 || p.ActivePeak > 0 {
				fmt.Fprintf(&b, " grows=%d peak=%d", p.StateGrows, p.ActivePeak)
			}
			if p := &s.Probe; p.Emitted > 0 && p.Comparisons > 0 {
				fmt.Fprintf(&b, " cmp/row=%.1f", float64(p.Comparisons)/float64(p.Emitted))
			}
			if n := len(s.Curve); n > 0 {
				fmt.Fprintf(&b, " curve=%dpt", n)
			}
			b.WriteString("\n")
			for _, note := range s.Node.Notes {
				fmt.Fprintf(&b, "%s   · %s\n", childPrefix, note)
			}
			if s.Err != "" {
				fmt.Fprintf(&b, "%s   ! %s\n", childPrefix, s.Err)
			}
		}
		kids := children[s.ID]
		for i, k := range kids {
			walk(k, childPrefix, i == len(kids)-1)
		}
	}
	for _, r := range roots {
		walk(r, "", true)
	}
	return b.String()
}

func ms(s *Span) float64 {
	if s == nil {
		return 0
	}
	return float64(s.EndNS-s.StartNS) / 1e6
}
