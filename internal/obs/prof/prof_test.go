package prof

import (
	"bytes"
	"runtime/pprof"
	"strings"
	"testing"
)

func TestDisabledPathReturnsZeroSnap(t *testing.T) {
	SetEnabled(false)
	s := ReadSnap()
	if s.Taken || s.Allocs != 0 || s.Bytes != 0 {
		t.Fatalf("disabled ReadSnap = %+v, want zero", s)
	}
	if a, b := Since(s); a != 0 || b != 0 {
		t.Fatalf("Since(untaken) = %d, %d, want 0, 0", a, b)
	}
}

func TestEnabledSnapDeltaSeesAllocations(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	before := ReadSnap()
	if !before.Taken {
		t.Fatal("enabled ReadSnap not taken")
	}
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	allocs, bytes := Since(before)
	if allocs < 64 {
		t.Fatalf("allocs delta = %d, want >= 64", allocs)
	}
	if bytes < 64*1024 {
		t.Fatalf("bytes delta = %d, want >= %d", bytes, 64*1024)
	}
	_ = sink
}

func TestSinceAcrossDisableYieldsZero(t *testing.T) {
	SetEnabled(true)
	before := ReadSnap()
	SetEnabled(false)
	if a, b := Since(before); a != 0 || b != 0 {
		t.Fatalf("Since across disable = %d, %d, want 0, 0", a, b)
	}
}

func TestDoAttachesLabels(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	// Goroutine labels are only readable through a profile dump: the
	// debug=1 goroutine profile prints a "labels: {...}" line for each
	// labeled goroutine, so capture one from inside f.
	var dump bytes.Buffer
	Do("q1", "n3", "contain-join", func() {
		if err := pprof.Lookup("goroutine").WriteTo(&dump, 1); err != nil {
			t.Errorf("goroutine profile: %v", err)
		}
	})
	got := dump.String()
	for _, want := range []string{
		`"tdb.query":"q1"`,
		`"tdb.node":"n3"`,
		`"tdb.op":"contain-join"`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("goroutine profile missing label %s:\n%s", want, got)
		}
	}
}

func TestDoDisabledRunsPlain(t *testing.T) {
	SetEnabled(false)
	ran := false
	Do("q", "n", "op", func() { ran = true })
	if !ran {
		t.Fatal("Do did not run f when disabled")
	}
}

func BenchmarkReadSnap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = readSnapAlways()
	}
}

func BenchmarkDisabledReadSnap(b *testing.B) {
	SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ReadSnap()
	}
}
