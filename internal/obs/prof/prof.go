// Package prof is the per-query resource-accounting layer beneath the
// tracer: cheap heap-allocation snapshots from runtime/metrics and
// pprof goroutine labels that slice CPU and heap profiles by plan
// operator.
//
// Attribution model. The runtime exposes process-wide allocation
// totals, not per-goroutine ones, so attribution follows the execution
// structure instead:
//
//   - A serial plan node runs exclusively on the query goroutine
//     between its span's begin and finish, so the snapshot delta over
//     that window is the node's own allocation (its children are
//     bracketed by their own spans and evaluated before the parent's
//     loop body runs; the engine subtracts child windows where they
//     nest).
//   - A parallel node aggregates its shard workers at the node span:
//     the workers are the only goroutines allocating inside the node's
//     window, so the node-level delta is the per-worker aggregate.
//     Individual worker spans carry no allocation delta — concurrent
//     windows over a process-wide counter would double-count.
//
// Per-operator profile slicing does not depend on that approximation:
// Do tags the executing goroutine with pprof labels (tdb.query,
// tdb.node, tdb.op), which the runtime attaches to every CPU and heap
// profile sample taken while the operator runs, so
// /debug/pprof/profile and /debug/pprof/heap cut exactly.
//
// Disabled-path cost. Accounting is off unless the engine run asks for
// it; the off path is one atomic load per span. The enabled path reads
// runtime.ReadMemStats — deliberately, over the cheaper runtime/metrics
// counters: those are flushed from per-P caches in span-sized batches,
// so a plan-node-sized window often reads a zero delta, while
// ReadMemStats flushes the caches and is exact. The read briefly stops
// the world, which is acceptable because it runs once per plan node on
// explicitly profiled runs only — never per tuple, never inside a sweep
// loop, and never when accounting is off.
package prof

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
)

// enabled is the process-wide master switch. The engine turns it on for
// profiled runs; when off, ReadSnap returns the zero Snap and Do runs
// its function without labels, so the disabled path costs one atomic
// load.
var enabled atomic.Bool

// SetEnabled turns resource accounting on or off process-wide.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether resource accounting is on.
func Enabled() bool { return enabled.Load() }

// Snap is a point-in-time reading of the cumulative heap-allocation
// counters. The zero Snap means "not taken" (Taken false), which keeps
// unprofiled spans from reporting garbage deltas.
type Snap struct {
	Allocs uint64
	Bytes  uint64
	Taken  bool
}

// ReadSnap reads the current allocation totals. With accounting
// disabled it returns the zero Snap without touching the runtime.
func ReadSnap() Snap {
	if !enabled.Load() {
		return Snap{}
	}
	return readSnapAlways()
}

// readSnapAlways reads the totals regardless of the master switch —
// benchmarks and tests measure the read itself. It runs once per plan
// node on profiled runs; the MemStats buffer is a fixed-size local (no
// allocation), which the hotpath-alloc deep rule audits.
//
//tdb:hotpath
func readSnapAlways() Snap {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Snap{Allocs: ms.Mallocs, Bytes: ms.TotalAlloc, Taken: true}
}

// Since returns the allocation-count and byte deltas between before and
// now. A before that was never taken (accounting was off at span begin)
// yields zeros, as does a window during which accounting was switched
// off.
func Since(before Snap) (allocs, bytes int64) {
	if !before.Taken {
		return 0, 0
	}
	now := ReadSnap()
	if !now.Taken {
		return 0, 0
	}
	return int64(now.Allocs - before.Allocs), int64(now.Bytes - before.Bytes)
}

// Label keys attached by Do. Profiles taken while an operator runs can
// be sliced by any of them (go tool pprof -tagfocus tdb.op=...).
const (
	LabelQuery = "tdb.query"
	LabelNode  = "tdb.node"
	LabelOp    = "tdb.op"
)

// Do runs f with the executing goroutine labeled (tdb.query, tdb.node,
// tdb.op) so concurrent CPU/heap profile samples attribute to the plan
// operator. With accounting disabled it calls f directly — no context,
// no label set, one atomic load.
func Do(query, node, op string, f func()) {
	if !enabled.Load() {
		f()
		return
	}
	pprof.Do(context.Background(), pprof.Labels(
		LabelQuery, query,
		LabelNode, node,
		LabelOp, op,
	), func(context.Context) { f() })
}
