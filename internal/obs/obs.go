// Package obs is the observability layer of the engine: a per-query tracer
// producing one span per plan node (with final metrics.Probe snapshots and
// time-sampled state curves), a registry of named counters, gauges and
// fixed-bucket histograms with Prometheus text exposition, and an HTTP
// endpoint serving /metrics, expvar and net/http/pprof while queries run.
//
// The paper's evaluation (Tables 1–3) is a characterization of local
// workspace *state over time*; the seed reproduction only kept a scalar
// high-water mark per operator. This package turns those characterizations
// into observable trajectories: each stream operator can be given a
// StateSampler that records state(t) against the operator's logical clock,
// and every plan node's cost record is exported both as JSONL and as a
// human EXPLAIN ANALYZE-style tree.
//
// PR 7 adds the resource-accounting layer: the internal/obs/prof
// subpackage reads runtime/metrics allocation counters and attaches pprof
// labels per operator; spans opened with ProfBegin carry per-node
// alloc/bytes deltas into EXPLAIN ANALYZE; an EventLog journals
// operational events (slow queries, governor fallbacks, breaker trips,
// backpressure suspensions) as deterministic JSONL; and PublishProbe is
// the single export path from a metrics.Probe to the registry.
//
// Everything here is stdlib-only, and every pointer-receiver method on the
// instrument types (Tracer, Span, StateSampler, Counter, Gauge, Histogram,
// Registry, EventLog) is nil-receiver safe: production code paths pass nil
// hooks and pay only a branch — the same discipline as metrics.Probe,
// enforced by the tdblint probe-nil-safety rule.
//
// Like metrics.Probe, a Tracer's spans and a StateSampler belong to the
// single goroutine executing the query; the Registry and its instruments
// are safe for concurrent use, so the HTTP endpoint can scrape /metrics
// while queries run.
package obs
