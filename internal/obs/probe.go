package obs

import "tdb/internal/metrics"

// Per-operator metric names and bucket layout. PublishProbe is the one
// export path from a metrics.Probe to the registry: the engine calls it
// once per finished plan node, so no caller re-implements (and none can
// double-report) the per-operator counter set.
const (
	MetricOperatorWorkspace   = "tdb_operator_workspace_tuples"
	MetricOperatorComparisons = "tdb_operator_comparisons_total"
	MetricOperatorGCDiscarded = "tdb_operator_gc_discarded_total"
	MetricOperatorStateGrows  = "tdb_operator_state_grows_total"
)

// WorkspaceBuckets returns the shared bucket layout of the per-operator
// workspace histogram.
func WorkspaceBuckets() []float64 { return ExpBuckets(1, 4, 10) }

// PublishProbe exports one operator probe's totals: the workspace
// high-water mark into the shared histogram (preserving the Tables 1–3
// semantics — one observation per operator execution, never a running
// sum) and the additive counters into their families. Safe on a nil
// registry or probe.
func (r *Registry) PublishProbe(p *metrics.Probe) {
	if r == nil {
		return
	}
	if p == nil {
		return
	}
	r.Histogram(MetricOperatorWorkspace, "per-operator workspace high-water marks",
		WorkspaceBuckets()).Observe(float64(p.Workspace()))
	r.Counter(MetricOperatorComparisons, "predicate evaluations across operators").Add(p.Comparisons)
	r.Counter(MetricOperatorGCDiscarded, "state tuples discarded by operator GC").Add(p.GCDiscarded)
	r.Counter(MetricOperatorStateGrows, "sweep-state appends that grew a backing array").Add(p.StateGrows)
}
