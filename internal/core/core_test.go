package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/relation"
	"tdb/internal/stream"
)

// item is a test element: a lifespan with an identity, so that oracle
// comparisons distinguish duplicates of the same span.
type item struct {
	id int
	iv interval.Interval
}

func itemSpan(t item) interval.Interval { return t.iv }

func (t item) String() string { return fmt.Sprintf("#%d%v", t.id, t.iv) }

// genItems draws a random workload: starts form a random walk (so data can
// be sorted any way we need), durations mix short and long so containment
// and overlap are both well represented.
func genItems(rng *rand.Rand, n int, idBase int) []item {
	items := make([]item, n)
	start := interval.Time(0)
	for i := range items {
		start += interval.Time(rng.Intn(4))
		dur := interval.Time(1 + rng.Intn(12))
		if rng.Intn(4) == 0 {
			dur += interval.Time(rng.Intn(40)) // occasional long interval
		}
		items[i] = item{id: idBase + i, iv: interval.New(start, start+dur)}
	}
	// Shuffle so tests must sort explicitly.
	rng.Shuffle(n, func(i, j int) { items[i], items[j] = items[j], items[i] })
	return items
}

func sorted(items []item, o relation.Order) []item {
	c := append([]item(nil), items...)
	relation.SortSpans(c, itemSpan, o)
	return c
}

func streamOf(items []item) stream.Stream[item] { return stream.FromSlice(items) }

// pairKey canonicalizes a joined pair for set comparison.
func pairKey(x, y item) string { return fmt.Sprintf("%d|%d", x.id, y.id) }

func collectPairs(t *testing.T, run func(emit func(x, y item)) error) map[string]bool {
	t.Helper()
	got := map[string]bool{}
	if err := run(func(x, y item) {
		k := pairKey(x, y)
		if got[k] {
			t.Fatalf("pair %s emitted twice", k)
		}
		got[k] = true
	}); err != nil {
		t.Fatalf("join failed: %v", err)
	}
	return got
}

func collectSemi(t *testing.T, run func(emit func(item)) error) map[int]bool {
	t.Helper()
	got := map[int]bool{}
	if err := run(func(x item) {
		if got[x.id] {
			t.Fatalf("tuple #%d emitted twice", x.id)
		}
		got[x.id] = true
	}); err != nil {
		t.Fatalf("semijoin failed: %v", err)
	}
	return got
}

// oraclePairs computes the reference join result by exhaustive enumeration.
func oraclePairs(xs, ys []item, theta func(x, y interval.Interval) bool) map[string]bool {
	want := map[string]bool{}
	for _, x := range xs {
		for _, y := range ys {
			if theta(x.iv, y.iv) {
				want[pairKey(x, y)] = true
			}
		}
	}
	return want
}

func oracleSemi(xs, ys []item, theta func(x, y interval.Interval) bool) map[int]bool {
	want := map[int]bool{}
	for _, x := range xs {
		for _, y := range ys {
			if theta(x.iv, y.iv) {
				want[x.id] = true
				break
			}
		}
	}
	return want
}

func samePairs(t *testing.T, name string, got, want map[string]bool, xs, ys []item) {
	t.Helper()
	if len(got) == len(want) {
		equal := true
		for k := range want {
			if !got[k] {
				equal = false
				break
			}
		}
		if equal {
			return
		}
	}
	t.Errorf("%s: got %d pairs, want %d\nX=%v\nY=%v\ngot=%v\nwant=%v",
		name, len(got), len(want), xs, ys, keys(got), keys(want))
}

func sameSemi(t *testing.T, name string, got, want map[int]bool, xs, ys []item) {
	t.Helper()
	if len(got) == len(want) {
		equal := true
		for k := range want {
			if !got[k] {
				equal = false
				break
			}
		}
		if equal {
			return
		}
	}
	t.Errorf("%s: got %d tuples, want %d\nX=%v\nY=%v\ngot=%v want=%v",
		name, len(got), len(want), xs, ys, got, want)
}

func keys(m map[string]bool) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// maxCoverage returns the maximum number of lifespans covering any single
// chronon — the analytic bound for the spanning-set state components of
// Table 1.
func maxCoverage(items []item) int {
	type ev struct {
		t     interval.Time
		delta int
	}
	var evs []ev
	for _, it := range items {
		evs = append(evs, ev{it.iv.Start, +1}, ev{it.iv.End, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].delta < evs[j].delta // ends before starts at ties
	})
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

// overlapTheta is the general TQuel overlap predicate.
func overlapTheta(x, y interval.Interval) bool { return x.Intersects(y) }

// containedTheta: x strictly inside y.
func containedTheta(x, y interval.Interval) bool { return containMatch(y, x) }

func newProbe() *metrics.Probe { return &metrics.Probe{} }
