package core

import (
	"errors"
	"math/rand"
	"testing"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/stream"
)

// Hand-checked Contain-join example in the spirit of Figure 5.
func TestContainJoinTSTSExample(t *testing.T) {
	xs := []item{
		{1, interval.New(0, 20)},
		{2, interval.New(3, 6)},
		{3, interval.New(5, 30)},
	}
	ys := []item{
		{14, interval.New(0, 40)},  // inside nothing
		{10, interval.New(1, 4)},   // inside x1
		{11, interval.New(4, 5)},   // inside x1
		{12, interval.New(6, 20)},  // inside x3 only (x1 shares the end)
		{13, interval.New(25, 29)}, // inside x3
	}
	probe := newProbe()
	got := collectPairs(t, func(emit func(x, y item)) error {
		return ContainJoinTSTS(streamOf(xs), streamOf(ys), itemSpan,
			Options{Probe: probe, VerifyOrder: true}, emit)
	})
	want := map[string]bool{"1|10": true, "1|11": true, "2|11": true, "3|12": true, "3|13": true}
	samePairs(t, "contain-join example", got, want, xs, ys)
	if probe.ReadLeft != int64(len(xs)) {
		t.Errorf("X read %d times, want single pass over %d", probe.ReadLeft, len(xs))
	}
	if probe.ReadRight != int64(len(ys)) {
		t.Errorf("Y read %d tuples, want %d", probe.ReadRight, len(ys))
	}
}

func containJoinVariants() map[string]struct {
	orderX, orderY relation.Order
	run            func(xs, ys stream.Stream[item], opt Options, emit func(x, y item)) error
} {
	type variant = struct {
		orderX, orderY relation.Order
		run            func(xs, ys stream.Stream[item], opt Options, emit func(x, y item)) error
	}
	return map[string]variant{
		"TS↑,TS↑": {
			relation.Order{relation.TSAsc}, relation.Order{relation.TSAsc},
			func(xs, ys stream.Stream[item], opt Options, emit func(x, y item)) error {
				return ContainJoinTSTS(xs, ys, itemSpan, opt, emit)
			},
		},
		"TS↑,TE↑": {
			relation.Order{relation.TSAsc}, relation.Order{relation.TEAsc},
			func(xs, ys stream.Stream[item], opt Options, emit func(x, y item)) error {
				return ContainJoinTSTE(xs, ys, itemSpan, opt, emit)
			},
		},
		"TE↓,TE↓": {
			relation.Order{relation.TEDesc}, relation.Order{relation.TEDesc},
			func(xs, ys stream.Stream[item], opt Options, emit func(x, y item)) error {
				return ContainJoinTEDesc(xs, ys, itemSpan, opt, emit)
			},
		},
		"TE↓,TS↓": {
			relation.Order{relation.TEDesc}, relation.Order{relation.TSDesc},
			func(xs, ys stream.Stream[item], opt Options, emit func(x, y item)) error {
				return ContainJoinTEDescTSDesc(xs, ys, itemSpan, opt, emit)
			},
		},
	}
}

// Property: every Contain-join variant agrees with the exhaustive oracle
// under both read policies, across random instances including empty and
// tiny inputs.
func TestContainJoinMatchesOracle(t *testing.T) {
	variants := containJoinVariants()
	for name, v := range variants {
		for _, policy := range []ReadPolicy{ReadSweep, ReadLambda} {
			name, v, policy := name, v, policy
			t.Run(name+"/"+policy.String(), func(t *testing.T) {
				rng := rand.New(rand.NewSource(42))
				for trial := 0; trial < 250; trial++ {
					xs := genItems(rng, rng.Intn(30), 0)
					ys := genItems(rng, rng.Intn(30), 1000)
					sx, sy := sorted(xs, v.orderX), sorted(ys, v.orderY)
					opt := Options{Policy: policy, VerifyOrder: true, LambdaX: 0.5, LambdaY: 0.5}
					got := collectPairs(t, func(emit func(x, y item)) error {
						return v.run(streamOf(sx), streamOf(sy), opt, emit)
					})
					want := oraclePairs(xs, ys, containMatch)
					samePairs(t, name, got, want, sx, sy)
					if t.Failed() {
						return
					}
				}
			})
		}
	}
}

// sweepPeakBound computes, per consumed y of the sweep, the set of x that
// could be retained just before y is consumed — {x : x.TS ≤ y.TS, x.TE >
// previous GC frontier} — and returns the maximum. It is the analytic
// upper bound on the sweep-policy state (the spanning-set characterization
// of Table 1 with the lookahead between consecutive y tuples included).
func sweepPeakBound(xs, ys []item, orderY relation.Order, gcKey func(interval.Interval) interval.Time) int64 {
	sy := sorted(ys, orderY)
	prev := interval.MinTime
	maxTS := interval.MinTime // heads seen so far drive the X read frontier
	var best int64
	for _, y := range sy {
		if y.iv.Start > maxTS {
			maxTS = y.iv.Start
		}
		var cnt int64
		for _, x := range xs {
			if x.iv.Start <= maxTS && x.iv.End > prev {
				cnt++
			}
		}
		if cnt > best {
			best = cnt
		}
		prev = gcKey(y.iv)
	}
	return best
}

// Property: the sweep-policy state never exceeds the analytic peak bound —
// the spanning-set characterization (a)/(b) of Table 1 with an empty
// Y-side lookahead component.
func TestContainJoinSweepStateBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tsKeyF := func(s interval.Interval) interval.Time { return s.Start }
	teKeyF := func(s interval.Interval) interval.Time { return s.End }
	for trial := 0; trial < 150; trial++ {
		xs := genItems(rng, 5+rng.Intn(40), 0)
		ys := genItems(rng, 5+rng.Intn(40), 1000)

		probe := newProbe()
		err := ContainJoinTSTS(streamOf(sorted(xs, relation.Order{relation.TSAsc})),
			streamOf(sorted(ys, relation.Order{relation.TSAsc})), itemSpan,
			Options{Probe: probe, Policy: ReadSweep}, func(a, b item) {})
		if err != nil {
			t.Fatal(err)
		}
		if bound := sweepPeakBound(xs, ys, relation.Order{relation.TSAsc}, tsKeyF); probe.StateHighWater > bound {
			t.Fatalf("TS↑,TS↑: state high water %d exceeds analytic peak %d", probe.StateHighWater, bound)
		}

		probe = newProbe()
		err = ContainJoinTSTE(streamOf(sorted(xs, relation.Order{relation.TSAsc})),
			streamOf(sorted(ys, relation.Order{relation.TEAsc})), itemSpan,
			Options{Probe: probe, Policy: ReadSweep}, func(a, b item) {})
		if err != nil {
			t.Fatal(err)
		}
		if bound := sweepPeakBound(xs, ys, relation.Order{relation.TEAsc}, teKeyF); probe.StateHighWater > bound {
			t.Fatalf("TS↑,TE↑: state high water %d exceeds analytic peak %d", probe.StateHighWater, bound)
		}
	}
}

func TestOverlapJoinMatchesOracle(t *testing.T) {
	for _, policy := range []ReadPolicy{ReadSweep, ReadLambda} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 250; trial++ {
				xs := genItems(rng, rng.Intn(30), 0)
				ys := genItems(rng, rng.Intn(30), 1000)
				opt := Options{Policy: policy, VerifyOrder: true, LambdaX: 0.3, LambdaY: 0.7}
				got := collectPairs(t, func(emit func(x, y item)) error {
					return OverlapJoin(streamOf(sorted(xs, relation.Order{relation.TSAsc})),
						streamOf(sorted(ys, relation.Order{relation.TSAsc})), itemSpan, opt, emit)
				})
				want := oraclePairs(xs, ys, overlapTheta)
				samePairs(t, "overlap-join", got, want, xs, ys)
				if t.Failed() {
					return
				}
			}
		})
	}
}

func TestOverlapJoinTEDescMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 150; trial++ {
		xs := genItems(rng, rng.Intn(25), 0)
		ys := genItems(rng, rng.Intn(25), 1000)
		got := collectPairs(t, func(emit func(x, y item)) error {
			return OverlapJoinTEDesc(streamOf(sorted(xs, relation.Order{relation.TEDesc})),
				streamOf(sorted(ys, relation.Order{relation.TEDesc})), itemSpan,
				Options{VerifyOrder: true}, emit)
		})
		want := oraclePairs(xs, ys, overlapTheta)
		samePairs(t, "overlap-join TE↓", got, want, xs, ys)
		if t.Failed() {
			return
		}
	}
}

// The overlap sweep state is bounded by the joint concurrency of both
// inputs (Table 2 case (a)).
func TestOverlapJoinStateBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		xs := genItems(rng, 5+rng.Intn(40), 0)
		ys := genItems(rng, 5+rng.Intn(40), 1000)
		probe := newProbe()
		err := OverlapJoin(streamOf(sorted(xs, relation.Order{relation.TSAsc})),
			streamOf(sorted(ys, relation.Order{relation.TSAsc})), itemSpan,
			Options{Probe: probe}, func(a, b item) {})
		if err != nil {
			t.Fatal(err)
		}
		bound := int64(maxCoverage(xs) + maxCoverage(ys))
		if probe.StateHighWater > bound {
			t.Fatalf("state high water %d exceeds joint concurrency %d", probe.StateHighWater, bound)
		}
	}
}

func TestBufferedLoopJoinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 100; trial++ {
		xs := genItems(rng, rng.Intn(25), 0)
		ys := genItems(rng, rng.Intn(25), 1000)
		probe := newProbe()
		got := collectPairs(t, func(emit func(x, y item)) error {
			return BufferedLoopJoin(streamOf(xs), streamOf(ys), itemSpan, containMatch,
				Options{Probe: probe}, emit)
		})
		want := oraclePairs(xs, ys, containMatch)
		samePairs(t, "buffered-loop", got, want, xs, ys)
		if probe.StateHighWater != int64(len(xs)) {
			t.Fatalf("buffered-loop state %d, want |X|=%d", probe.StateHighWater, len(xs))
		}
		if t.Failed() {
			return
		}
	}
}

// Joins must reject out-of-order input when verification is on, instead of
// silently producing a wrong answer. The companion data forces the sweep to
// actually reach the out-of-order element (an algorithm may legitimately
// terminate before consuming all of a stream).
func TestJoinVerifyOrder(t *testing.T) {
	bad := []item{{1, interval.New(9, 12)}, {2, interval.New(3, 5)}} // TS descending
	goodY := []item{{3, interval.New(1, 2)}, {4, interval.New(10, 11)}, {5, interval.New(20, 21)}}
	err := ContainJoinTSTS(streamOf(bad), streamOf(goodY), itemSpan,
		Options{VerifyOrder: true}, func(a, b item) {})
	if err == nil {
		t.Fatal("unsorted X accepted")
	}
	goodX := []item{{6, interval.New(1, 30)}}
	err = ContainJoinTSTS(streamOf(goodX), streamOf(bad), itemSpan,
		Options{VerifyOrder: true}, func(a, b item) {})
	if err == nil {
		t.Fatal("unsorted Y accepted")
	}
}

// Stream failures must surface as errors from the join.
func TestJoinErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	xs := sorted([]item{{1, interval.New(0, 5)}, {2, interval.New(1, 6)}}, relation.Order{relation.TSAsc})
	ys := sorted([]item{{3, interval.New(2, 4)}, {4, interval.New(3, 5)}}, relation.Order{relation.TSAsc})

	err := ContainJoinTSTS(stream.FailAfter(streamOf(xs), 1, boom), streamOf(ys), itemSpan,
		Options{}, func(a, b item) {})
	if !errors.Is(err, boom) {
		t.Errorf("X failure not surfaced: %v", err)
	}
	err = ContainJoinTSTS(streamOf(xs), stream.FailAfter(streamOf(ys), 1, boom), itemSpan,
		Options{}, func(a, b item) {})
	if !errors.Is(err, boom) {
		t.Errorf("Y failure not surfaced: %v", err)
	}
	err = BufferedLoopJoin(stream.FailAfter(streamOf(xs), 0, boom), streamOf(ys), itemSpan,
		containMatch, Options{}, func(a, b item) {})
	if !errors.Is(err, boom) {
		t.Errorf("buffered-loop X failure not surfaced: %v", err)
	}
}

// Single-pass guarantee: every stream algorithm reads each input at most
// once in total.
func TestJoinSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	xs := genItems(rng, 50, 0)
	ys := genItems(rng, 60, 1000)
	probe := newProbe()
	err := ContainJoinTSTS(streamOf(sorted(xs, relation.Order{relation.TSAsc})),
		streamOf(sorted(ys, relation.Order{relation.TSAsc})), itemSpan,
		Options{Probe: probe}, func(a, b item) {})
	if err != nil {
		t.Fatal(err)
	}
	if probe.ReadLeft > int64(len(xs)) || probe.ReadRight > int64(len(ys)) {
		t.Errorf("reads %d/%d exceed input sizes %d/%d", probe.ReadLeft, probe.ReadRight, len(xs), len(ys))
	}
}

// Extreme λ hints must not break the λ-guided policy: gaps saturate and
// the output stays exact.
func TestLambdaPolicyExtremeRates(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	xs := genItems(rng, 40, 0)
	ys := genItems(rng, 40, 1000)
	want := oraclePairs(xs, ys, containMatch)
	for _, lam := range []float64{0, 1e-12, 1e12} {
		opt := Options{Policy: ReadLambda, LambdaX: lam, LambdaY: lam}
		got := collectPairs(t, func(emit func(x, y item)) error {
			return ContainJoinTSTS(streamOf(sorted(xs, relation.Order{relation.TSAsc})),
				streamOf(sorted(ys, relation.Order{relation.TSAsc})), itemSpan, opt, emit)
		})
		samePairs(t, "extreme lambda", got, want, xs, ys)
	}
}

// Empty-input edges.
func TestJoinEmptyInputs(t *testing.T) {
	some := []item{{1, interval.New(0, 10)}}
	runs := []func(x, y stream.Stream[item]) (int, error){
		func(x, y stream.Stream[item]) (int, error) {
			n := 0
			err := ContainJoinTSTS(x, y, itemSpan, Options{}, func(a, b item) { n++ })
			return n, err
		},
		func(x, y stream.Stream[item]) (int, error) {
			n := 0
			err := ContainJoinTSTE(x, y, itemSpan, Options{}, func(a, b item) { n++ })
			return n, err
		},
		func(x, y stream.Stream[item]) (int, error) {
			n := 0
			err := OverlapJoin(x, y, itemSpan, Options{}, func(a, b item) { n++ })
			return n, err
		},
	}
	for i, run := range runs {
		if n, err := run(stream.Empty[item](), streamOf(some)); err != nil || n != 0 {
			t.Errorf("run %d empty X: n=%d err=%v", i, n, err)
		}
		if n, err := run(streamOf(some), stream.Empty[item]()); err != nil || n != 0 {
			t.Errorf("run %d empty Y: n=%d err=%v", i, n, err)
		}
		if n, err := run(stream.Empty[item](), stream.Empty[item]()); err != nil || n != 0 {
			t.Errorf("run %d both empty: n=%d err=%v", i, n, err)
		}
	}
}
