package core

import (
	"errors"
	"testing"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/stream"
)

func TestGoRunPairsPipelines(t *testing.T) {
	xs := sorted([]item{{1, interval.New(0, 20)}, {2, interval.New(2, 9)}}, relation.Order{relation.TSAsc})
	ys := sorted([]item{{10, interval.New(1, 5)}, {11, interval.New(3, 8)}}, relation.Order{relation.TSAsc})

	s := GoRunPairs(func(emit func(x, y item)) error {
		return ContainJoinTSTS(streamOf(xs), streamOf(ys), itemSpan, Options{}, emit)
	})
	pairs, err := stream.Collect[stream.Pair[item, item]](s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 { // x1⊃y10, x1⊃y11, x2⊃y11
		t.Fatalf("got %d pairs: %v", len(pairs), pairs)
	}
	// The async stream composes with ordinary combinators.
	s2 := GoRunPairs(func(emit func(x, y item)) error {
		return ContainJoinTSTS(streamOf(xs), streamOf(ys), itemSpan, Options{}, emit)
	})
	onlyX1 := stream.Filter[stream.Pair[item, item]](s2, func(p stream.Pair[item, item]) bool {
		return p.First.id == 1
	})
	got, err := stream.Collect(onlyX1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("filtered pipeline got %d", len(got))
	}
}

func TestGoRunError(t *testing.T) {
	boom := errors.New("boom")
	s := GoRun(func(emit func(int)) error {
		emit(1)
		return boom
	})
	var got []int
	for {
		x, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, x)
	}
	if len(got) != 1 || !errors.Is(s.Err(), boom) {
		t.Fatalf("got %v err %v", got, s.Err())
	}
}

func TestGoRunStop(t *testing.T) {
	// A producer much larger than the channel buffer must finish after
	// Stop rather than deadlock.
	done := make(chan struct{})
	s := GoRun(func(emit func(int)) error {
		defer close(done)
		for i := 0; i < 10000; i++ {
			emit(i)
		}
		return nil
	})
	if _, ok := s.Next(); !ok {
		t.Fatal("no first element")
	}
	s.Stop()
	s.Stop() // idempotent
	<-done   // producer ran to completion
}

func TestGoRunStopThenNext(t *testing.T) {
	// Once Stop has returned, every subsequent Next reports ok=false even
	// while buffered elements remain: Stop abandons the stream.
	s := GoRun(func(emit func(int)) error {
		for i := 0; i < 50; i++ {
			emit(i)
		}
		return nil
	})
	if _, ok := s.Next(); !ok {
		t.Fatal("no first element")
	}
	s.Stop()
	for i := 0; i < 10; i++ {
		if v, ok := s.Next(); ok {
			t.Fatalf("Next after Stop returned %v, want ok=false", v)
		}
	}
}

func TestGoRunErrConcurrent(t *testing.T) {
	// Err may be polled from another goroutine while the producer is still
	// running and writing its final error; the race detector verifies the
	// happens-before edge.
	boom := errors.New("boom")
	s := GoRun(func(emit func(int)) error {
		for i := 0; i < 1000; i++ {
			emit(i)
		}
		return boom
	})
	probing := make(chan struct{})
	go func() {
		defer close(probing)
		for i := 0; i < 100; i++ {
			_ = s.Err()
		}
	}()
	var n int
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	<-probing
	if n != 1000 || !errors.Is(s.Err(), boom) {
		t.Fatalf("drained %d err %v", n, s.Err())
	}
}
