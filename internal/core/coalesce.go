package core

import (
	"fmt"

	"tdb/internal/interval"
	"tdb/internal/stream"
)

// Coalesce merges value-equivalent tuples whose lifespans meet or overlap
// into maximal lifespans — the canonical form of a Time Sequence under
// stepwise-constant interpolation (the paper's Section 2 data construct,
// where an object's periods with the same attribute value are conceptually
// one). The input must be grouped by key (surrogate and value) with each
// group sorted on ValidFrom ascending; the output preserves that order and
// the operator is itself a stream processor with a single pending element
// of state, so its output can feed the join algorithms directly.
//
// rewrap produces the output element for a representative input element
// and its coalesced lifespan (e.g. rebuild a tuple with the merged span).
func Coalesce[T any, K comparable](in stream.Stream[T], key func(T) K, span Span[T],
	rewrap func(T, interval.Interval) T, opt Options, emit func(T)) error {

	const name = "coalesce"
	probe := opt.Probe
	probe.SetBuffers(1)

	var (
		curKey  K
		rep     T
		curSpan interval.Interval
		open    bool
	)
	flush := func() {
		if open {
			probe.IncEmitted(1)
			emit(rewrap(rep, curSpan))
			probe.StateRemove(1)
			open = false
		}
	}
	for {
		x, ok := in.Next()
		if !ok {
			break
		}
		probe.IncReadLeft()
		k, s := key(x), span(x)
		if open && k == curKey {
			if interval.CmpStart(s, curSpan) < 0 {
				return fmt.Errorf("%s: group not sorted on ValidFrom: %v after %v", name, s, curSpan)
			}
			probe.IncComparisons(1)
			if !curSpan.Before(s) { // meets or overlaps: extend
				if interval.CmpEnd(s, curSpan) > 0 {
					curSpan.End = s.End
				}
				continue
			}
		}
		flush()
		curKey, rep, curSpan, open = k, x, s, true
		probe.StateAdd(1)
		opt.observe()
	}
	flush()
	opt.observe()
	return orderError(name, in.Err())
}
