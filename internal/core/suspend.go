package core

import (
	"sync"

	"tdb/internal/stream"
)

// Runner makes the package's single-pass operators resumable: it runs an
// unchanged operator function in a goroutine whose input streams are
// append-fed Feeders that *suspend* (block) when they run dry instead of
// reporting exhaustion. The operator keeps its local workspace alive across
// suspensions, so feeding more input later resumes the very same run — the
// paper's stream processors applied to unbounded application-time streams.
//
// The live subsystem builds standing temporal queries on top of this: each
// registered query is one Runner whose feeders are attached to ingestion
// tables and whose emissions accumulate as result deltas.
//
// Determinism: a Runner presents its operator exactly the input sequences
// it was fed, in order, regardless of how the feeding was interleaved in
// wall-clock time; since the operators are deterministic functions of
// their input sequences, the emission sequence of an incremental run is at
// every moment a byte-identical prefix of the one batch execution over the
// final inputs — the property the live delta protocol relies on.
//
// Synchronization is a single mutex + condition variable shared by the
// feeders, the emit path, and the control methods; the operator goroutine
// never sends on a channel, so abandonment can never leak a blocked
// producer (the concern the goroutine-hygiene lint rule polices).
type Runner[T any] struct {
	rc runnerCore

	// pending is the emission buffer (the delta log of a standing query);
	// total counts emissions ever made. When pending reaches maxPending
	// the emit path blocks — backpressure: a lagging consumer suspends
	// the operator rather than growing the buffer without bound.
	pending    []T
	total      int64
	maxPending int
}

// runnerCore is the shared synchronization state of a Runner and its
// feeders. It is type-free so feeders of any element type can attach to a
// runner of any output type.
type runnerCore struct {
	mu   sync.Mutex
	cond *sync.Cond

	feeders []feederCtl

	started  bool
	stopped  bool
	done     bool
	emitWait bool
	err      error
}

// feederCtl is the view of a Feeder the runner needs for quiescence
// detection and shutdown; both methods assume rc.mu is held.
type feederCtl interface {
	dryOpenWaiting() bool
	closeLocked()
}

// DefaultMaxPending bounds the emission buffer of a Runner when the caller
// passes no explicit capacity.
const DefaultMaxPending = 4096

// NewRunner returns a Runner whose emission buffer holds at most
// maxPending elements before the operator is suspended (0 means
// DefaultMaxPending).
func NewRunner[T any](maxPending int) *Runner[T] {
	if maxPending <= 0 {
		maxPending = DefaultMaxPending
	}
	r := &Runner[T]{maxPending: maxPending}
	r.rc.cond = sync.NewCond(&r.rc.mu)
	return r
}

// Feeder is a suspendable input stream attached to a Runner. Next blocks
// while the buffer is empty until more elements are fed or the feeder is
// closed; only after Close does it report exhaustion to the operator.
type Feeder[I any] struct {
	rc      *runnerCore
	buf     []I
	pos     int
	fed     int64
	closed  bool
	waiting bool
}

// Attach returns a new suspendable input of element type I attached to the
// runner. All feeders must be attached before Start.
func Attach[I, T any](r *Runner[T]) *Feeder[I] {
	rc := &r.rc
	rc.mu.Lock()
	defer rc.mu.Unlock()
	f := &Feeder[I]{rc: rc}
	rc.feeders = append(rc.feeders, f)
	return f
}

// Next implements stream.Stream. It suspends the calling operator while
// the feeder is dry and neither closed nor stopped.
func (f *Feeder[I]) Next() (I, bool) {
	rc := f.rc
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for f.pos >= len(f.buf) && !f.closed && !rc.stopped {
		f.waiting = true
		rc.cond.Broadcast() // a quiescence point: wake any Quiesce waiter
		rc.cond.Wait()
	}
	f.waiting = false
	if f.pos < len(f.buf) && !rc.stopped {
		x := f.buf[f.pos]
		f.pos++
		// Compact the consumed prefix so a long-lived feeder's memory
		// tracks its unconsumed suffix, not its full history.
		if f.pos >= 1024 && f.pos*2 >= len(f.buf) {
			f.buf = append([]I(nil), f.buf[f.pos:]...)
			f.pos = 0
		}
		return x, true
	}
	var zero I
	return zero, false
}

// Err implements stream.Stream; feeding never fails.
func (f *Feeder[I]) Err() error { return nil }

// Feed appends elements to the feeder, resuming the operator if it was
// suspended on this input. Elements fed after Close or Stop are dropped.
func (f *Feeder[I]) Feed(xs ...I) {
	rc := f.rc
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if f.closed || rc.stopped {
		return
	}
	f.buf = append(f.buf, xs...)
	f.fed += int64(len(xs))
	rc.cond.Broadcast()
}

// Close marks the feeder exhausted: once its buffer drains, Next reports
// ok=false and the operator runs its end-of-stream logic. Idempotent.
func (f *Feeder[I]) Close() {
	rc := f.rc
	rc.mu.Lock()
	defer rc.mu.Unlock()
	f.closed = true
	rc.cond.Broadcast()
}

// Fed returns the number of elements ever fed — the replay offset a
// checkpoint records.
func (f *Feeder[I]) Fed() int64 {
	f.rc.mu.Lock()
	defer f.rc.mu.Unlock()
	return f.fed
}

// Backlog returns the number of fed-but-unconsumed elements.
func (f *Feeder[I]) Backlog() int {
	f.rc.mu.Lock()
	defer f.rc.mu.Unlock()
	return len(f.buf) - f.pos
}

func (f *Feeder[I]) dryOpenWaiting() bool {
	return f.waiting && f.pos >= len(f.buf) && !f.closed
}

func (f *Feeder[I]) closeLocked() { f.closed = true }

// Start launches the operator goroutine. run receives the emit callback
// whose emissions become the runner's pending output; it is invoked once.
func (r *Runner[T]) Start(run func(emit func(T)) error) {
	rc := &r.rc
	rc.mu.Lock()
	rc.started = true
	rc.mu.Unlock()
	emit := func(t T) {
		rc.mu.Lock()
		defer rc.mu.Unlock()
		for len(r.pending) >= r.maxPending && !rc.stopped {
			rc.emitWait = true
			rc.cond.Broadcast() // backpressure is a quiescence point too
			rc.cond.Wait()
		}
		rc.emitWait = false
		if !rc.stopped {
			r.pending = append(r.pending, t)
			r.total++
		}
	}
	// Cancellation flows through rc.stopped: Stop broadcasts the cond and
	// emit returns immediately once stopped, so the operator runs to
	// completion without blocking and never leaks.
	// lint:allow worker-context — cancellation via rc.stopped under the runner cond, see above.
	go func() {
		err := run(emit)
		rc.mu.Lock()
		rc.done = true
		if rc.err == nil {
			rc.err = err
		}
		rc.cond.Broadcast()
		rc.mu.Unlock()
	}()
}

// Drain removes and returns the pending emissions, unblocking an operator
// suspended on backpressure.
func (r *Runner[T]) Drain() []T {
	r.rc.mu.Lock()
	defer r.rc.mu.Unlock()
	out := r.pending
	r.pending = nil
	r.rc.cond.Broadcast()
	return out
}

// Emitted returns the number of elements ever emitted, drained or not.
func (r *Runner[T]) Emitted() int64 {
	r.rc.mu.Lock()
	defer r.rc.mu.Unlock()
	return r.total
}

// PendingLen returns the current emission backlog.
func (r *Runner[T]) PendingLen() int {
	r.rc.mu.Lock()
	defer r.rc.mu.Unlock()
	return len(r.pending)
}

// quiescentLocked reports whether the operator can make no further
// progress without outside action: it has finished, or it is suspended on
// a genuinely dry open input, or it is suspended on backpressure with the
// emission buffer still full.
func (r *Runner[T]) quiescentLocked() bool {
	rc := &r.rc
	if !rc.started || rc.done {
		return rc.started
	}
	if rc.emitWait && len(r.pending) >= r.maxPending {
		return true
	}
	for _, f := range rc.feeders {
		if f.dryOpenWaiting() {
			return true
		}
	}
	return false
}

// Quiesce blocks until the operator is suspended (awaiting input or
// drain) or has terminated. After Quiesce, every emission implied by the
// input fed so far that the operator can produce without more input is in
// the pending buffer. Start must have been called.
func (r *Runner[T]) Quiesce() {
	r.rc.mu.Lock()
	defer r.rc.mu.Unlock()
	for !r.quiescentLocked() {
		r.rc.cond.Wait()
	}
}

// Suspended reports why the runner is currently not consuming: "done",
// "input" (awaiting a dry feeder), "backpressure" (awaiting Drain), or
// "running".
func (r *Runner[T]) Suspended() string {
	r.rc.mu.Lock()
	defer r.rc.mu.Unlock()
	switch {
	case r.rc.done:
		return "done"
	case r.rc.emitWait && len(r.pending) >= r.maxPending:
		return "backpressure"
	default:
		for _, f := range r.rc.feeders {
			if f.dryOpenWaiting() {
				return "input"
			}
		}
		return "running"
	}
}

// Stop abandons the run: every feeder reports exhaustion, pending and
// future emissions are dropped, and the operator goroutine finishes its
// cleanup in the background. Idempotent; Wait() observes completion.
func (r *Runner[T]) Stop() {
	r.rc.mu.Lock()
	defer r.rc.mu.Unlock()
	r.rc.stopped = true
	r.pending = nil
	r.rc.cond.Broadcast()
}

// CloseAll closes every feeder, letting the operator drain and terminate
// normally — the graceful end-of-stream shutdown.
func (r *Runner[T]) CloseAll() {
	r.rc.mu.Lock()
	defer r.rc.mu.Unlock()
	for _, f := range r.rc.feeders {
		f.closeLocked()
	}
	r.rc.cond.Broadcast()
}

// Wait blocks until the operator goroutine has terminated and returns its
// error. Callers must have arranged termination (CloseAll or Stop).
func (r *Runner[T]) Wait() error {
	r.rc.mu.Lock()
	defer r.rc.mu.Unlock()
	for !r.rc.done {
		r.rc.cond.Wait()
	}
	return r.rc.err
}

// Done reports whether the operator goroutine has terminated.
func (r *Runner[T]) Done() bool {
	r.rc.mu.Lock()
	defer r.rc.mu.Unlock()
	return r.rc.done
}

// ensure Feeder satisfies the stream interface the operators consume.
var _ stream.Stream[int] = (*Feeder[int])(nil)
