package core

import (
	"tdb/internal/interval"
	"tdb/internal/stream"
)

// MirrorSpan composes a span accessor with the mirror transform
// [s,e) ↦ [-e,-s). Running an ascending-order algorithm with a mirrored
// span accessor on data sorted in the mirrored order realizes the
// descending-order rows of Tables 1–3: "sorting both relations on ValidTo
// in descending order has the same effect as sorting them on ValidFrom in
// ascending order" — containment is mirror-invariant while ValidFrom and
// ValidTo exchange roles.
func MirrorSpan[T any](span Span[T]) Span[T] {
	return func(t T) interval.Interval { return span(t).Mirror() }
}

// ContainJoinTEDesc evaluates Contain-join(X,Y) with both inputs sorted on
// ValidTo descending — the lower-half Table 1 case (a) — by mirroring into
// ContainJoinTSTS.
func ContainJoinTEDesc[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(x, y T)) error {
	return ContainJoinTSTS(xs, ys, MirrorSpan(span), opt, emit)
}

// ContainJoinTEDescTSDesc evaluates Contain-join(X,Y) with X sorted on
// ValidTo descending and Y on ValidFrom descending — the lower-half
// Table 1 case (b) — by mirroring into ContainJoinTSTE.
func ContainJoinTEDescTSDesc[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(x, y T)) error {
	return ContainJoinTSTE(xs, ys, MirrorSpan(span), opt, emit)
}

// ContainSemijoinTEDescTSDesc evaluates Contain-semijoin(X,Y) with X
// sorted on ValidTo descending and Y on ValidFrom descending (lower-half
// Table 1 case (d)).
func ContainSemijoinTEDescTSDesc[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	return ContainSemijoin(xs, ys, MirrorSpan(span), opt, emit)
}

// ContainedSemijoinTSDescTEDesc evaluates Contained-semijoin(X,Y) with X
// sorted on ValidFrom descending and Y on ValidTo descending (lower-half
// Table 1 case (d)).
func ContainedSemijoinTSDescTEDesc[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	return ContainedSemijoin(xs, ys, MirrorSpan(span), opt, emit)
}

// OverlapJoinTEDesc evaluates Overlap-join(X,Y) with both inputs sorted on
// ValidTo descending, the second appropriate ordering of Table 2.
func OverlapJoinTEDesc[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(x, y T)) error {
	return OverlapJoin(xs, ys, MirrorSpan(span), opt, emit)
}
